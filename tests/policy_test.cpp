// Tests for query policies (Sec. VI-B statistical-attack countermeasure and
// delegation-depth bounds) and the parallel server scan.
#include <gtest/gtest.h>

#include "cloud/server.h"

namespace apks {
namespace {

Schema small_schema() {
  return Schema({{"illness", nullptr, 2},
                 {"sex", nullptr, 1},
                 {"provider", nullptr, 1}});
}

Query q3(QueryTerm a = QueryTerm::any(), QueryTerm b = QueryTerm::any(),
         QueryTerm c = QueryTerm::any()) {
  return Query{{std::move(a), std::move(b), std::move(c)}};
}

TEST(QueryPolicy, ActiveDimCounting) {
  EXPECT_EQ(QueryPolicy::active_dims(q3()), 0u);
  EXPECT_EQ(QueryPolicy::active_dims(q3(QueryTerm::equals("Flu"))), 1u);
  EXPECT_EQ(QueryPolicy::active_dims(
                q3(QueryTerm::equals("Flu"), QueryTerm::equals("Male"))),
            2u);
  // Conjunction: overlapping dims counted once.
  const std::vector<Query> conj{
      q3(QueryTerm::equals("Flu")),
      q3(QueryTerm::equals("Diabetes"), QueryTerm::equals("Male"))};
  EXPECT_EQ(QueryPolicy::active_dims(conj), 2u);
}

TEST(QueryPolicy, AdmitsByMinDims) {
  QueryPolicy p;
  p.min_active_dims = 2;
  EXPECT_FALSE(p.admits({q3(QueryTerm::equals("Flu"))}));
  EXPECT_TRUE(p.admits({q3(QueryTerm::equals("Flu")),
                        q3(QueryTerm::any(), QueryTerm::equals("Male"))}));
  // Disabled policy admits anything.
  EXPECT_TRUE(QueryPolicy{}.admits({q3()}));
}

TEST(QueryPolicy, AdmitsByDepth) {
  QueryPolicy p;
  p.max_delegation_depth = 2;
  EXPECT_TRUE(p.admits({q3(), q3()}));
  EXPECT_FALSE(p.admits({q3(), q3(), q3()}));
}

class PolicyAuthorityTest : public ::testing::Test {
 protected:
  PolicyAuthorityTest()
      : e_(default_type_a_params()),
        apks_(e_, small_schema()),
        rng_("policy-test"),
        ta_(apks_, rng_) {
    lta_ = ta_.make_lta("clinic", q3(), rng_);  // unrestricted scope
    UserAttributes u;
    u.values["illness"] = {"Flu"};
    u.values["sex"] = {"Male"};
    u.values["provider"] = {"Hospital A"};
    lta_->register_user("u1", u);
  }
  Pairing e_;
  Apks apks_;
  ChaChaRng rng_;
  TrustedAuthority ta_;
  std::unique_ptr<LocalAuthority> lta_;
};

TEST_F(PolicyAuthorityTest, MinDimsRefusesBroadQueries) {
  QueryPolicy p;
  p.min_active_dims = 2;
  lta_->set_policy(p);
  // One active dimension: refused even though the user is eligible.
  EXPECT_FALSE(lta_->delegate_for_user("u1", q3(QueryTerm::equals("Flu")),
                                       rng_)
                   .has_value());
  // Two active dimensions: granted.
  EXPECT_TRUE(lta_->delegate_for_user(
                      "u1",
                      q3(QueryTerm::equals("Flu"), QueryTerm::equals("Male")),
                      rng_)
                  .has_value());
}

TEST_F(PolicyAuthorityTest, ScopeCountsTowardMinDims) {
  // An LTA whose scope already pins one dimension: a single-dim request
  // reaches the 2-dim minimum through the conjunction.
  auto scoped = ta_.make_lta(
      "hospital-A",
      q3(QueryTerm::any(), QueryTerm::any(), QueryTerm::equals("Hospital A")),
      rng_);
  UserAttributes u;
  u.values["illness"] = {"Flu"};
  u.values["sex"] = {"Male"};
  u.values["provider"] = {"Hospital A"};
  scoped->register_user("u1", u);
  QueryPolicy p;
  p.min_active_dims = 2;
  scoped->set_policy(p);
  EXPECT_TRUE(scoped->delegate_for_user("u1", q3(QueryTerm::equals("Flu")),
                                        rng_)
                  .has_value());
}

class ParallelScanTest : public ::testing::Test {
 protected:
  ParallelScanTest()
      : e_(default_type_a_params()),
        apks_(e_, small_schema()),
        rng_("parallel-test"),
        ta_(apks_, rng_) {
    CapabilityVerifier verifier(e_, ta_.ibs_params());
    server_ = std::make_unique<CloudServer>(apks_, std::move(verifier));
    const char* illnesses[] = {"Flu", "Diabetes", "Cancer"};
    for (int i = 0; i < 9; ++i) {
      PlainIndex row{{illnesses[i % 3], i % 2 == 0 ? "Male" : "Female",
                      "Hospital A"}};
      (void)server_->store(apks_.gen_index(ta_.public_key(), row, rng_),
                           "doc-" + std::to_string(i));
    }
  }
  Pairing e_;
  Apks apks_;
  ChaChaRng rng_;
  TrustedAuthority ta_;
  std::unique_ptr<CloudServer> server_;
};

TEST_F(ParallelScanTest, ParallelMatchesSequential) {
  const auto cap = ta_.issue(q3(QueryTerm::equals("Diabetes")), rng_);
  CloudServer::SearchStats seq_stats, par_stats;
  const auto seq = server_->search_unchecked(cap.cap, &seq_stats);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    const auto par =
        server_->search_parallel_unchecked(cap.cap, threads, &par_stats);
    EXPECT_EQ(par, seq) << threads;  // same order, same contents
    EXPECT_EQ(par_stats.scanned, seq_stats.scanned);
    EXPECT_EQ(par_stats.matched, seq_stats.matched);
  }
  // threads == 0 resolves to hardware concurrency.
  EXPECT_EQ(server_->search_parallel_unchecked(cap.cap, 0), seq);
}

}  // namespace
}  // namespace apks
