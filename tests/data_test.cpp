// Tests for the dataset and workload generators.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/phr.h"
#include "data/workload.h"

namespace apks {
namespace {

TEST(Nursery, ExactRowCountAndArity) {
  const auto rows = nursery_rows();
  EXPECT_EQ(rows.size(), 12960u);  // 3*5*4*4*3*2*3*3
  for (const auto& row : rows) {
    ASSERT_EQ(row.values.size(), 9u);
  }
}

TEST(Nursery, AttributeUniverseSizes) {
  const auto& attrs = nursery_attributes();
  ASSERT_EQ(attrs.size(), 9u);
  const std::vector<std::size_t> expected{3, 5, 4, 4, 3, 2, 3, 3, 5};
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    EXPECT_EQ(attrs[i].values.size(), expected[i]) << attrs[i].name;
  }
}

TEST(Nursery, RowsAreDistinctAndCoverProduct) {
  const auto rows = nursery_rows();
  std::set<std::string> seen;
  for (const auto& row : rows) {
    std::string key;
    for (std::size_t i = 0; i < 8; ++i) key += row.values[i] + "|";
    seen.insert(key);
  }
  EXPECT_EQ(seen.size(), 12960u);
}

TEST(Nursery, HealthNotRecomForcesClass) {
  const auto rows = nursery_rows();
  std::size_t forced = 0;
  for (const auto& row : rows) {
    if (row.values[7] == "not_recom") {
      EXPECT_EQ(row.values[8], "not_recom");
      ++forced;
    }
  }
  // Exactly one third of the dataset, as in the original.
  EXPECT_EQ(forced, 4320u);
}

TEST(Nursery, ClassDistributionUsesAllLabels) {
  const auto rows = nursery_rows();
  std::map<std::string, std::size_t> counts;
  for (const auto& row : rows) counts[row.values[8]]++;
  EXPECT_EQ(counts.size(), 5u);
  for (const auto& [label, count] : counts) {
    EXPECT_GT(count, 0u) << label;
  }
}

TEST(Nursery, SchemaShapesMatchPaper) {
  // m' = 9, n = 9d + 1.
  for (std::size_t d = 1; d <= 5; ++d) {
    const Schema s = nursery_schema(d);
    EXPECT_EQ(s.converted_dims(), 9u);
    EXPECT_EQ(s.vector_length(), 9 * d + 1);
  }
  // Duplication: m' = 9k, n = 9k + 1 at d = 1 — the paper's n = 10..73.
  for (std::size_t k = 1; k <= 8; ++k) {
    const Schema s = nursery_expanded_schema(k, 1);
    EXPECT_EQ(s.converted_dims(), 9 * k);
    EXPECT_EQ(s.vector_length(), 9 * k + 1);
  }
  EXPECT_THROW((void)nursery_expanded_schema(0, 1), std::invalid_argument);
}

TEST(Nursery, ExpandedRowsConvert) {
  const auto rows = nursery_rows();
  const Schema s = nursery_expanded_schema(3, 1);
  const PlainIndex expanded = expand_nursery_row(rows[0], 3);
  EXPECT_EQ(expanded.values.size(), 27u);
  EXPECT_NO_THROW((void)s.convert_index(expanded));
}

TEST(Workload, WorstCaseQueryShape) {
  ChaChaRng rng("wl1");
  const Schema s = nursery_schema(3);
  const Query q = nursery_worst_case_query(3, rng);
  ASSERT_EQ(q.terms.size(), 9u);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(q.terms[i].kind, QueryTerm::Kind::kSubset);
    EXPECT_EQ(q.terms[i].values.size(),
              std::min<std::size_t>(3, nursery_attributes()[i].values.size()));
  }
  EXPECT_NO_THROW((void)s.convert_query(q));
}

TEST(Workload, RealisticQueryHasDontCares) {
  ChaChaRng rng("wl2");
  const Query q = nursery_expanded_realistic_query(4, 1, rng);
  ASSERT_EQ(q.terms.size(), 36u);
  std::size_t active = 0;
  for (const auto& t : q.terms) {
    if (t.kind != QueryTerm::Kind::kAny) ++active;
  }
  EXPECT_EQ(active, 9u);
}

TEST(Workload, PointQueryMatchesOnlyItsRow) {
  ChaChaRng rng("wl3");
  const auto rows = nursery_rows();
  const Schema s = nursery_schema(1);
  const Query q = nursery_point_query(rows[100]);
  EXPECT_TRUE(s.matches_plain(rows[100], q));
  EXPECT_FALSE(s.matches_plain(rows[101], q));
}

TEST(Workload, SampleValuesDistinct) {
  ChaChaRng rng("wl4");
  const std::vector<std::string> universe{"a", "b", "c", "d", "e"};
  const auto picked = sample_values(universe, 3, rng);
  EXPECT_EQ(picked.size(), 3u);
  EXPECT_EQ(std::set<std::string>(picked.begin(), picked.end()).size(), 3u);
  EXPECT_THROW((void)sample_values(universe, 6, rng), std::invalid_argument);
}

TEST(Phr, SchemaAndRowsConsistent) {
  const PhrSchemaOptions opts{.max_or = 2, .with_time = true};
  const Schema s = phr_schema(opts);
  EXPECT_EQ(s.original_dims(), 6u);
  ChaChaRng rng("phr");
  const auto rows = generate_phr_rows(50, rng, opts);
  EXPECT_EQ(rows.size(), 50u);
  for (const auto& row : rows) {
    EXPECT_NO_THROW((void)s.convert_index(row));
  }
}

TEST(Phr, GeneratorIsDeterministicPerSeed) {
  ChaChaRng a("phr-seed"), b("phr-seed"), c("phr-other");
  const auto r1 = generate_phr_rows(5, a);
  const auto r2 = generate_phr_rows(5, b);
  const auto r3 = generate_phr_rows(5, c);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(r1[i].values, r2[i].values);
  }
  bool any_diff = false;
  for (std::size_t i = 0; i < 5; ++i) {
    any_diff = any_diff || r1[i].values != r3[i].values;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace apks
