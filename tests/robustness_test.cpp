// Failure-injection tests: tampered ciphertexts/keys, malformed objects and
// cross-instance misuse must fail safely (no match / explicit error), never
// silently succeed.
#include <gtest/gtest.h>

#include "core/apks_plus.h"
#include "ec/params.h"
#include "hpe/serialize.h"

namespace apks {
namespace {

Schema tiny_schema() {
  return Schema({{"a", nullptr, 1}, {"b", nullptr, 1}});
}

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest()
      : e_(default_type_a_params()),
        apks_(e_, tiny_schema()),
        rng_("robustness") {
    apks_.setup(rng_, pk_, msk_);
    row_ = {{"x", "y"}};
    query_ = Query{{QueryTerm::equals("x"), QueryTerm::equals("y")}};
    enc_ = apks_.gen_index(pk_, row_, rng_);
    cap_ = apks_.gen_cap(msk_, query_, rng_);
  }

  Pairing e_;
  Apks apks_;
  ChaChaRng rng_;
  ApksPublicKey pk_;
  ApksMasterKey msk_;
  PlainIndex row_;
  Query query_;
  EncryptedIndex enc_;
  Capability cap_;
};

TEST_F(RobustnessTest, BaselineMatches) {
  ASSERT_TRUE(apks_.search(cap_, enc_));
}

TEST_F(RobustnessTest, TamperedCiphertextVectorFailsToMatch) {
  // Corrupt each c1 coordinate in turn by adding the curve generator.
  for (std::size_t i = 0; i < enc_.ct.c1.size(); ++i) {
    EncryptedIndex tampered = enc_;
    tampered.ct.c1[i] =
        e_.curve().add(tampered.ct.c1[i], e_.curve().generator());
    EXPECT_FALSE(apks_.search(cap_, tampered)) << "coordinate " << i;
  }
}

TEST_F(RobustnessTest, TamperedGtComponentFailsToMatch) {
  EncryptedIndex tampered = enc_;
  tampered.ct.c2 = e_.gt_mul(tampered.ct.c2, e_.gt_generator());
  EXPECT_FALSE(apks_.search(cap_, tampered));
}

TEST_F(RobustnessTest, TamperedCapabilityFailsToMatch) {
  Capability tampered = cap_;
  tampered.key.dec[0] =
      e_.curve().add(tampered.key.dec[0], e_.curve().generator());
  EXPECT_FALSE(apks_.search(tampered, enc_));
}

TEST_F(RobustnessTest, CrossInstanceObjectsNeverMatch) {
  // A second, independently set-up system: its capabilities must not match
  // indexes of the first (different master keys, same schema).
  ApksPublicKey pk2;
  ApksMasterKey msk2;
  apks_.setup(rng_, pk2, msk2);
  const auto foreign_cap = apks_.gen_cap(msk2, query_, rng_);
  EXPECT_FALSE(apks_.search(foreign_cap, enc_));
  const auto foreign_enc = apks_.gen_index(pk2, row_, rng_);
  EXPECT_FALSE(apks_.search(cap_, foreign_enc));
}

TEST_F(RobustnessTest, DimensionMismatchedObjectsThrow) {
  const Apks bigger(e_, Schema({{"a", nullptr, 2}, {"b", nullptr, 2}}));
  ApksPublicKey pk_big;
  ApksMasterKey msk_big;
  bigger.setup(rng_, pk_big, msk_big);
  // Encrypting with a key of the wrong dimension must throw, not UB.
  EXPECT_THROW((void)apks_.gen_index({pk_big.hpe}, row_, rng_),
               std::invalid_argument);
  EXPECT_THROW((void)apks_.gen_cap({msk_big.hpe}, query_, rng_),
               std::invalid_argument);
}

TEST_F(RobustnessTest, CorruptedSerializedKeyRejectedOrHarmless) {
  auto data = serialize_key(e_, cap_.key);
  // Flip one byte inside a point encoding; either deserialization rejects
  // it (x not on curve / bad tag) or the resulting key fails to match.
  bool rejected_or_mismatch = false;
  data[40] ^= 0x5A;
  try {
    Capability mangled;
    mangled.key = deserialize_key(e_, data);
    rejected_or_mismatch = !apks_.search(mangled, enc_);
  } catch (const std::invalid_argument&) {
    rejected_or_mismatch = true;
  } catch (const std::out_of_range&) {
    rejected_or_mismatch = true;
  }
  EXPECT_TRUE(rejected_or_mismatch);
}

TEST_F(RobustnessTest, ProxyTransformWithWrongShareBreaksSearch) {
  const ApksPlus plus(e_, tiny_schema());
  const auto setup = plus.setup_plus(rng_);
  const auto cap = plus.gen_cap(setup.msk, query_, rng_);
  auto enc = plus.partial_gen_index(setup.pk, row_, rng_);
  // Transform with an unrelated scalar instead of r^{-1}.
  const Fq wrong = e_.fq().random_nonzero(rng_);
  enc = plus.proxy_transform(wrong, enc);
  EXPECT_FALSE(plus.search(cap, enc));
}

TEST_F(RobustnessTest, DoubleProxyTransformBreaksSearch) {
  // Applying the (correct) single-proxy transformation twice must not
  // yield a searchable index either.
  const ApksPlus plus(e_, tiny_schema());
  const auto setup = plus.setup_plus(rng_);
  const auto cap = plus.gen_cap(setup.msk, query_, rng_);
  auto enc = plus.partial_gen_index(setup.pk, row_, rng_);
  const Fq rinv = e_.fq().inv(setup.r);
  enc = plus.proxy_transform(rinv, enc);
  ASSERT_TRUE(plus.search(cap, enc));
  enc = plus.proxy_transform(rinv, enc);
  EXPECT_FALSE(plus.search(cap, enc));
}

}  // namespace
}  // namespace apks
