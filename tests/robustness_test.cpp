// Failure-injection tests: tampered ciphertexts/keys, malformed objects and
// cross-instance misuse must fail safely (no match / explicit error), never
// silently succeed.
#include <gtest/gtest.h>

#include "core/apks_plus.h"
#include "core/serialize_apks.h"
#include "ec/params.h"
#include "hpe/serialize.h"

namespace apks {
namespace {

Schema tiny_schema() {
  return Schema({{"a", nullptr, 1}, {"b", nullptr, 1}});
}

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest()
      : e_(default_type_a_params()),
        apks_(e_, tiny_schema()),
        rng_("robustness") {
    apks_.setup(rng_, pk_, msk_);
    row_ = {{"x", "y"}};
    query_ = Query{{QueryTerm::equals("x"), QueryTerm::equals("y")}};
    enc_ = apks_.gen_index(pk_, row_, rng_);
    cap_ = apks_.gen_cap(msk_, query_, rng_);
  }

  Pairing e_;
  Apks apks_;
  ChaChaRng rng_;
  ApksPublicKey pk_;
  ApksMasterKey msk_;
  PlainIndex row_;
  Query query_;
  EncryptedIndex enc_;
  Capability cap_;
};

TEST_F(RobustnessTest, BaselineMatches) {
  ASSERT_TRUE(apks_.search(cap_, enc_));
}

TEST_F(RobustnessTest, TamperedCiphertextVectorFailsToMatch) {
  // Corrupt each c1 coordinate in turn by adding the curve generator.
  for (std::size_t i = 0; i < enc_.ct.c1.size(); ++i) {
    EncryptedIndex tampered = enc_;
    tampered.ct.c1[i] =
        e_.curve().add(tampered.ct.c1[i], e_.curve().generator());
    EXPECT_FALSE(apks_.search(cap_, tampered)) << "coordinate " << i;
  }
}

TEST_F(RobustnessTest, TamperedGtComponentFailsToMatch) {
  EncryptedIndex tampered = enc_;
  tampered.ct.c2 = e_.gt_mul(tampered.ct.c2, e_.gt_generator());
  EXPECT_FALSE(apks_.search(cap_, tampered));
}

TEST_F(RobustnessTest, TamperedCapabilityFailsToMatch) {
  Capability tampered = cap_;
  tampered.key.dec[0] =
      e_.curve().add(tampered.key.dec[0], e_.curve().generator());
  EXPECT_FALSE(apks_.search(tampered, enc_));
}

TEST_F(RobustnessTest, CrossInstanceObjectsNeverMatch) {
  // A second, independently set-up system: its capabilities must not match
  // indexes of the first (different master keys, same schema).
  ApksPublicKey pk2;
  ApksMasterKey msk2;
  apks_.setup(rng_, pk2, msk2);
  const auto foreign_cap = apks_.gen_cap(msk2, query_, rng_);
  EXPECT_FALSE(apks_.search(foreign_cap, enc_));
  const auto foreign_enc = apks_.gen_index(pk2, row_, rng_);
  EXPECT_FALSE(apks_.search(cap_, foreign_enc));
}

TEST_F(RobustnessTest, DimensionMismatchedObjectsThrow) {
  const Apks bigger(e_, Schema({{"a", nullptr, 2}, {"b", nullptr, 2}}));
  ApksPublicKey pk_big;
  ApksMasterKey msk_big;
  bigger.setup(rng_, pk_big, msk_big);
  // Encrypting with a key of the wrong dimension must throw, not UB.
  EXPECT_THROW((void)apks_.gen_index({pk_big.hpe}, row_, rng_),
               std::invalid_argument);
  EXPECT_THROW((void)apks_.gen_cap({msk_big.hpe}, query_, rng_),
               std::invalid_argument);
}

TEST_F(RobustnessTest, CorruptedSerializedKeyRejectedOrHarmless) {
  auto data = serialize_key(e_, cap_.key);
  // Flip one byte inside a point encoding; either deserialization rejects
  // it (x not on curve / bad tag) or the resulting key fails to match.
  bool rejected_or_mismatch = false;
  data[40] ^= 0x5A;
  try {
    Capability mangled;
    mangled.key = deserialize_key(e_, data);
    rejected_or_mismatch = !apks_.search(mangled, enc_);
  } catch (const std::invalid_argument&) {
    rejected_or_mismatch = true;
  } catch (const std::out_of_range&) {
    rejected_or_mismatch = true;
  }
  EXPECT_TRUE(rejected_or_mismatch);
}

TEST_F(RobustnessTest, CorruptedSerializedIndexRejectedOrHarmless) {
  const auto good = serialize_index(e_, enc_);
  // Sweep a byte flip across the whole encoding (version byte, point tags,
  // coordinates, the Gt component): every mutation must either be rejected
  // at parse time or produce an index the capability no longer matches.
  for (std::size_t pos = 0; pos < good.size(); pos += 11) {
    auto bad = good;
    bad[pos] ^= 0x5A;
    bool rejected_or_mismatch = false;
    try {
      const EncryptedIndex mangled = deserialize_index(e_, bad);
      rejected_or_mismatch = !apks_.search(cap_, mangled);
    } catch (const std::exception&) {
      rejected_or_mismatch = true;
    }
    EXPECT_TRUE(rejected_or_mismatch) << "byte " << pos;
  }
  // Truncation anywhere must be an explicit parse error, never a partial
  // object.
  for (std::size_t len = 0; len < good.size(); len += 13) {
    EXPECT_THROW((void)deserialize_index(
                     e_, std::span<const std::uint8_t>(good.data(), len)),
                 std::exception)
        << "length " << len;
  }
}

TEST_F(RobustnessTest, CorruptedSerializedCapabilityRejectedOrHarmless) {
  const auto good = serialize_capability(e_, cap_);
  const EncryptedIndex miss = apks_.gen_index(pk_, {{"x", "z"}}, rng_);
  // Only the key's decryption vector participates in search; flips in the
  // ran/del components or the query history parse fine and leave behavior
  // unchanged. Layout: version u8 | keylen u32 | level u32 | dec count u32
  // | dec points...
  const std::size_t dec_begin = 1 + 4 + 4 + 4;
  const std::size_t dec_end =
      dec_begin + cap_.key.dec.size() * Curve::kCompressedSize;
  for (std::size_t pos = 0; pos < good.size(); pos += 11) {
    auto bad = good;
    bad[pos] ^= 0x5A;
    bool rejected_or_mismatch = false;
    bool false_positive = false;
    try {
      const Capability mangled = deserialize_capability(e_, bad);
      rejected_or_mismatch = !apks_.search(mangled, enc_);
      false_positive = apks_.search(mangled, miss);
    } catch (const std::exception&) {
      rejected_or_mismatch = true;
    }
    // A tampered capability must never match a row the original missed.
    EXPECT_FALSE(false_positive) << "byte " << pos;
    if (pos >= dec_begin && pos < dec_end) {
      // Inside the decryption vector, the flip must also break the match
      // (or be rejected outright).
      EXPECT_TRUE(rejected_or_mismatch) << "byte " << pos;
    }
  }
  for (std::size_t len = 0; len < good.size(); len += 13) {
    EXPECT_THROW(
        (void)deserialize_capability(
            e_, std::span<const std::uint8_t>(good.data(), len)),
        std::exception)
        << "length " << len;
  }
}

TEST_F(RobustnessTest, CodecRoundTripPreservesSearchBehavior) {
  // A round-tripped index/capability pair must behave exactly like the
  // originals: same match on the real row, same non-match elsewhere.
  const EncryptedIndex enc2 = deserialize_index(e_, serialize_index(e_, enc_));
  const Capability cap2 =
      deserialize_capability(e_, serialize_capability(e_, cap_));
  EXPECT_TRUE(apks_.search(cap2, enc2));
  const auto miss = apks_.gen_index(pk_, {{"x", "z"}}, rng_);
  EXPECT_FALSE(apks_.search(cap2, miss));
  ASSERT_EQ(cap2.history.size(), cap_.history.size());
}

TEST_F(RobustnessTest, ProxyTransformWithWrongShareBreaksSearch) {
  const ApksPlus plus(e_, tiny_schema());
  const auto setup = plus.setup_plus(rng_);
  const auto cap = plus.gen_cap(setup.msk, query_, rng_);
  auto enc = plus.partial_gen_index(setup.pk, row_, rng_);
  // Transform with an unrelated scalar instead of r^{-1}.
  const Fq wrong = e_.fq().random_nonzero(rng_);
  enc = plus.proxy_transform(wrong, enc);
  EXPECT_FALSE(plus.search(cap, enc));
}

TEST_F(RobustnessTest, DoubleProxyTransformBreaksSearch) {
  // Applying the (correct) single-proxy transformation twice must not
  // yield a searchable index either.
  const ApksPlus plus(e_, tiny_schema());
  const auto setup = plus.setup_plus(rng_);
  const auto cap = plus.gen_cap(setup.msk, query_, rng_);
  auto enc = plus.partial_gen_index(setup.pk, row_, rng_);
  const Fq rinv = e_.fq().inv(setup.r);
  enc = plus.proxy_transform(rinv, enc);
  ASSERT_TRUE(plus.search(cap, enc));
  enc = plus.proxy_transform(rinv, enc);
  EXPECT_FALSE(plus.search(cap, enc));
}

}  // namespace
}  // namespace apks
