// Parameterized property tests for the APKS core: for every (d, corpus)
// configuration, encrypted search must agree exactly with the plaintext
// reference semantics over randomized workloads, and the encodings must
// satisfy their algebraic invariants.
#include <gtest/gtest.h>

#include "core/apks.h"
#include "data/workload.h"
#include "ec/params.h"

namespace apks {
namespace {

// ---------- encoding invariants over an (m', d) grid ----------

struct EncodingParam {
  std::size_t fields;
  std::size_t degree;
};

class EncodingProperty : public ::testing::TestWithParam<EncodingParam> {
 protected:
  EncodingProperty()
      : fq_(default_type_a_params().q),
        schema_(make_schema(GetParam())),
        rng_("encoding-property") {}

  static Schema make_schema(const EncodingParam& p) {
    std::vector<Dimension> dims;
    for (std::size_t i = 0; i < p.fields; ++i) {
      dims.push_back({"f" + std::to_string(i), nullptr, p.degree});
    }
    return Schema(std::move(dims));
  }

  PlainIndex random_index() {
    PlainIndex idx;
    for (std::size_t i = 0; i < schema_.original_dims(); ++i) {
      idx.values.push_back("v" + std::to_string(rng_.next_below(6)));
    }
    return idx;
  }

  // Random query: each dim is any / equality / subset of <= d values.
  Query random_query() {
    Query q;
    for (std::size_t i = 0; i < schema_.original_dims(); ++i) {
      const std::uint64_t mode = rng_.next_below(3);
      if (mode == 0) {
        q.terms.push_back(QueryTerm::any());
      } else {
        const std::size_t count =
            1 + rng_.next_below(std::min<std::uint64_t>(
                    GetParam().degree, 3));
        std::vector<std::string> vals;
        for (std::size_t j = 0; j < count; ++j) {
          vals.push_back("v" + std::to_string((rng_.next_below(6) + j) % 6));
        }
        // Deduplicate (repeated roots are legal but make matching odd).
        std::sort(vals.begin(), vals.end());
        vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
        q.terms.push_back(QueryTerm::subset(vals));
      }
    }
    return q;
  }

  FqField fq_;
  Schema schema_;
  ChaChaRng rng_;
};

TEST_P(EncodingProperty, InnerProductZeroIffPlainMatch) {
  for (int trial = 0; trial < 25; ++trial) {
    const PlainIndex idx = random_index();
    const Query q = random_query();
    const auto x = psi_encode(
        fq_, schema_, hash_index(fq_, schema_, schema_.convert_index(idx)));
    const auto v = phi_encode(
        fq_, schema_, hash_query(fq_, schema_, schema_.convert_query(q)),
        rng_);
    ASSERT_EQ(x.size(), schema_.vector_length());
    ASSERT_EQ(v.size(), schema_.vector_length());
    EXPECT_EQ(inner_product(fq_, x, v).is_zero(),
              schema_.matches_plain(idx, q))
        << "trial " << trial;
  }
}

TEST_P(EncodingProperty, PredicateVectorIsFreshlyRandomized) {
  const Query q = random_query();
  const auto pred = hash_query(fq_, schema_, schema_.convert_query(q));
  bool any_active = false;
  for (const auto& p : pred) any_active = any_active || !p.dont_care;
  if (!any_active) GTEST_SKIP() << "all don't-care: deterministic zero";
  const auto v1 = phi_encode(fq_, schema_, pred, rng_);
  const auto v2 = phi_encode(fq_, schema_, pred, rng_);
  EXPECT_NE(v1, v2);  // random multipliers r_i
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EncodingProperty,
    ::testing::Values(EncodingParam{1, 1}, EncodingParam{1, 4},
                      EncodingParam{3, 2}, EncodingParam{5, 1},
                      EncodingParam{9, 3}),
    [](const auto& param_info) {
      return "m" + std::to_string(param_info.param.fields) + "d" +
             std::to_string(param_info.param.degree);
    });

// ---------- hierarchy invariants over (branching, depth) ----------

struct TreeParam {
  std::size_t branching;
  std::size_t depth;
  std::uint64_t domain;
};

class HierarchyProperty : public ::testing::TestWithParam<TreeParam> {
 protected:
  HierarchyProperty()
      : tree_(AttributeHierarchy::numeric("t", 0, GetParam().domain - 1,
                                          GetParam().branching,
                                          GetParam().depth)),
        rng_("hierarchy-property") {}
  AttributeHierarchy tree_;
  ChaChaRng rng_;
};

TEST_P(HierarchyProperty, EveryValueHasFullPathContainingIt) {
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint64_t v = rng_.next_below(GetParam().domain);
    const auto path = tree_.path_for_value(v);
    ASSERT_EQ(path.size(), tree_.height());
    for (const auto& label : path) {
      const auto idx = tree_.find(label);
      ASSERT_TRUE(idx.has_value());
      EXPECT_LE(tree_.node(*idx).lo, v);
      EXPECT_GE(tree_.node(*idx).hi, v);
    }
  }
}

TEST_P(HierarchyProperty, EachLevelPartitionsDomain) {
  for (std::size_t level = 1; level <= tree_.height(); ++level) {
    std::uint64_t total = 0;
    std::uint64_t prev_hi = 0;
    bool first = true;
    for (const auto& label : tree_.labels_at_level(level)) {
      const auto idx = tree_.find(label);
      ASSERT_TRUE(idx.has_value());
      const auto& node = tree_.node(*idx);
      total += node.hi - node.lo + 1;
      if (!first) {
        EXPECT_EQ(node.lo, prev_hi + 1);  // contiguous in order
      }
      prev_hi = node.hi;
      first = false;
    }
    EXPECT_EQ(total, GetParam().domain) << "level " << level;
  }
}

TEST_P(HierarchyProperty, CoverContainsValueIffInRange) {
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t a = rng_.next_below(GetParam().domain);
    const std::uint64_t b = rng_.next_below(GetParam().domain);
    const std::uint64_t lo = std::min(a, b), hi = std::max(a, b);
    const std::size_t level = 1 + rng_.next_below(tree_.height());
    const auto cover = tree_.cover_range(lo, hi, level);
    const std::uint64_t v = rng_.next_below(GetParam().domain);
    // Copy, not reference: the path vector is a temporary.
    const std::string level_label = tree_.path_for_value(v)[level - 1];
    const bool in_cover =
        std::find(cover.begin(), cover.end(), level_label) != cover.end();
    // Covers may over-approximate at node granularity, but they can never
    // miss a value actually inside the range.
    if (v >= lo && v <= hi) {
      EXPECT_TRUE(in_cover);
    }
    if (!in_cover) {
      EXPECT_TRUE(v < lo || v > hi);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HierarchyProperty,
    ::testing::Values(TreeParam{2, 4, 16}, TreeParam{3, 3, 27},
                      TreeParam{4, 3, 100}, TreeParam{2, 6, 50},
                      TreeParam{5, 2, 9}),
    [](const auto& param_info) {
      return "b" + std::to_string(param_info.param.branching) + "d" +
             std::to_string(param_info.param.depth) + "n" +
             std::to_string(param_info.param.domain);
    });

// ---------- end-to-end encrypted search consistency over d ----------

class ApksSearchProperty : public ::testing::TestWithParam<std::size_t> {
 protected:
  ApksSearchProperty()
      : e_(default_type_a_params()),
        schema_(small_nursery_schema(GetParam())),
        apks_(e_, schema_),
        rng_("apks-property-" + std::to_string(GetParam())) {
    apks_.setup(rng_, pk_, msk_);
  }

  // First 4 nursery attributes only, to keep n small and tests quick.
  static Schema small_nursery_schema(std::size_t d) {
    std::vector<Dimension> dims;
    const auto& attrs = nursery_attributes();
    for (std::size_t i = 0; i < 4; ++i) {
      dims.push_back({attrs[i].name, nullptr, d});
    }
    return Schema(std::move(dims));
  }

  PlainIndex random_row() {
    PlainIndex row;
    const auto& attrs = nursery_attributes();
    for (std::size_t i = 0; i < 4; ++i) {
      row.values.push_back(
          attrs[i].values[rng_.next_below(attrs[i].values.size())]);
    }
    return row;
  }

  Query random_query() {
    Query q;
    const auto& attrs = nursery_attributes();
    for (std::size_t i = 0; i < 4; ++i) {
      if (rng_.next_below(2) == 0) {
        q.terms.push_back(QueryTerm::any());
      } else {
        const std::size_t count =
            1 + rng_.next_below(std::min(GetParam(),
                                         attrs[i].values.size()));
        q.terms.push_back(
            QueryTerm::subset(sample_values(attrs[i].values, count, rng_)));
      }
    }
    return q;
  }

  Pairing e_;
  Schema schema_;
  Apks apks_;
  ChaChaRng rng_;
  ApksPublicKey pk_;
  ApksMasterKey msk_;
};

TEST_P(ApksSearchProperty, EncryptedSearchEqualsPlaintextSemantics) {
  std::vector<PlainIndex> corpus;
  std::vector<EncryptedIndex> encrypted;
  for (int i = 0; i < 3; ++i) {
    corpus.push_back(random_row());
    encrypted.push_back(apks_.gen_index(pk_, corpus.back(), rng_));
  }
  for (int trial = 0; trial < 3; ++trial) {
    const Query q = random_query();
    const auto cap = apks_.gen_cap(msk_, q, rng_);
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      EXPECT_EQ(apks_.search(cap, encrypted[i]),
                apks_.schema().matches_plain(corpus[i], q))
          << "trial " << trial << " row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(OrBudgets, ApksSearchProperty,
                         ::testing::Values(1, 2, 3),
                         [](const auto& param_info) {
                           return "d" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace apks
