// Parameterized property tests for MRQED^D over a (dimensions, tree-depth)
// grid: encrypted hyper-rectangle matching must agree with plaintext
// interval containment for randomized points and ranges.
#include <gtest/gtest.h>

#include "mrqed/mrqed.h"

namespace apks {
namespace {

struct MrqedParam {
  std::size_t dims;
  std::size_t depth;
};

class MrqedProperty : public ::testing::TestWithParam<MrqedParam> {
 protected:
  MrqedProperty()
      : e_(default_type_a_params()),
        scheme_(e_, GetParam().dims, GetParam().depth),
        rng_("mrqed-property-" + std::to_string(GetParam().dims) + "-" +
             std::to_string(GetParam().depth)) {
    scheme_.setup(rng_, pk_, msk_);
  }

  [[nodiscard]] std::uint64_t domain() const {
    return std::uint64_t{1} << GetParam().depth;
  }

  Pairing e_;
  Mrqed scheme_;
  ChaChaRng rng_;
  MrqedPublicKey pk_;
  MrqedMasterKey msk_;
};

TEST_P(MrqedProperty, RandomizedMatchConsistency) {
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<std::uint64_t> point;
    std::vector<MrqedRange> ranges;
    bool expect = true;
    for (std::size_t d = 0; d < GetParam().dims; ++d) {
      point.push_back(rng_.next_below(domain()));
      const std::uint64_t a = rng_.next_below(domain());
      const std::uint64_t b = rng_.next_below(domain());
      const MrqedRange r{std::min(a, b), std::max(a, b)};
      ranges.push_back(r);
      expect = expect && point[d] >= r.lo && point[d] <= r.hi;
    }
    const auto ct = scheme_.encrypt(pk_, point, rng_);
    const auto key = scheme_.gen_key(pk_, msk_, ranges, rng_);
    EXPECT_EQ(scheme_.match(ct, key), expect) << "trial " << trial;
  }
}

TEST_P(MrqedProperty, BoundaryRangesBehave) {
  // Point at the domain edges against single-point ranges.
  const std::uint64_t edge = domain() - 1;
  std::vector<std::uint64_t> point(GetParam().dims, edge);
  const auto ct = scheme_.encrypt(pk_, point, rng_);
  std::vector<MrqedRange> exact(GetParam().dims, {edge, edge});
  EXPECT_TRUE(scheme_.match(ct, scheme_.gen_key(pk_, msk_, exact, rng_)));
  std::vector<MrqedRange> adjacent(GetParam().dims, {0, edge - 1});
  EXPECT_FALSE(
      scheme_.match(ct, scheme_.gen_key(pk_, msk_, adjacent, rng_)));
}

TEST_P(MrqedProperty, PairingBudgetBounded) {
  // The probe count never exceeds 5 * (cover size + 1) per dimension —
  // the bound behind the paper's "5n pairings" cost model.
  std::vector<std::uint64_t> point(GetParam().dims, domain() - 1);
  std::vector<MrqedRange> ranges(GetParam().dims,
                                 {domain() > 2 ? 1u : 0u, domain() - 1});
  const auto ct = scheme_.encrypt(pk_, point, rng_);
  const auto key = scheme_.gen_key(pk_, msk_, ranges, rng_);
  std::size_t cover_nodes = 0;
  for (const auto& dim : key.dims) cover_nodes += dim.size();
  Mrqed::MatchStats stats;
  EXPECT_TRUE(scheme_.match(ct, key, &stats));
  EXPECT_LE(stats.pairings, 5 * (cover_nodes + GetParam().dims));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MrqedProperty,
    ::testing::Values(MrqedParam{1, 2}, MrqedParam{2, 3}, MrqedParam{3, 4},
                      MrqedParam{4, 2}),
    [](const auto& param_info) {
      return "D" + std::to_string(param_info.param.dims) + "L" +
             std::to_string(param_info.param.depth);
    });

}  // namespace
}  // namespace apks
