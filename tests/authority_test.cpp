// Tests for the TA/LTA authorization framework: scoped delegation,
// attribute-based eligibility, sub-LTAs and server-side verification.
#include <gtest/gtest.h>

#include "auth/authority.h"

namespace apks {
namespace {

Schema small_schema() {
  return Schema({{"illness", nullptr, 2},
                 {"sex", nullptr, 1},
                 {"provider", nullptr, 1}});
}

Query q_any(QueryTerm a = QueryTerm::any(), QueryTerm b = QueryTerm::any(),
            QueryTerm c = QueryTerm::any()) {
  return Query{{std::move(a), std::move(b), std::move(c)}};
}

class AuthorityTest : public ::testing::Test {
 protected:
  AuthorityTest()
      : e_(default_type_a_params()),
        apks_(e_, small_schema()),
        rng_("authority-test"),
        ta_(apks_, rng_) {
    // Hospital-A LTA: scope restricted to provider = Hospital A.
    lta_ = ta_.make_lta(
        "hospital-A",
        q_any(QueryTerm::any(), QueryTerm::any(),
              QueryTerm::equals("Hospital A")),
        rng_);
    // A diabetic patient of hospital A.
    UserAttributes peter;
    peter.values["illness"] = {"Diabetes"};
    peter.values["sex"] = {"Male"};
    peter.values["provider"] = {"Hospital A"};
    lta_->register_user("peter", peter);
  }

  EncryptedIndex enc(const PlainIndex& idx) {
    return apks_.gen_index(ta_.public_key(), idx, rng_);
  }

  Pairing e_;
  Apks apks_;
  ChaChaRng rng_;
  TrustedAuthority ta_;
  std::unique_ptr<LocalAuthority> lta_;
};

TEST_F(AuthorityTest, EligibilityFollowsAttributes) {
  // Peter may search for his own illness...
  EXPECT_TRUE(lta_->eligible(
      "peter", q_any(QueryTerm::equals("Diabetes"))));
  // ...but not for someone else's.
  EXPECT_FALSE(lta_->eligible("peter", q_any(QueryTerm::equals("Cancer"))));
  // Unknown users are never eligible.
  EXPECT_FALSE(lta_->eligible("mallory", q_any()));
  // Subset terms are satisfied if any held value matches.
  EXPECT_TRUE(lta_->eligible(
      "peter", q_any(QueryTerm::subset({"Cancer", "Diabetes"}))));
}

TEST_F(AuthorityTest, DelegatedCapabilityInheritsScope) {
  const auto signed_cap = lta_->delegate_for_user(
      "peter", q_any(QueryTerm::equals("Diabetes")), rng_);
  ASSERT_TRUE(signed_cap.has_value());
  // Matches a diabetic record at hospital A...
  EXPECT_TRUE(apks_.search(
      signed_cap->cap, enc({{"Diabetes", "Male", "Hospital A"}})));
  // ...but not the same record at hospital B (scope), nor flu at A (term).
  EXPECT_FALSE(apks_.search(
      signed_cap->cap, enc({{"Diabetes", "Male", "Hospital B"}})));
  EXPECT_FALSE(apks_.search(
      signed_cap->cap, enc({{"Flu", "Male", "Hospital A"}})));
}

TEST_F(AuthorityTest, IneligibleRequestDenied) {
  EXPECT_FALSE(lta_->delegate_for_user(
                       "peter", q_any(QueryTerm::equals("Cancer")), rng_)
                   .has_value());
  EXPECT_FALSE(
      lta_->delegate_for_user("nobody", q_any(), rng_).has_value());
}

TEST_F(AuthorityTest, SubLtaScopeNarrowsFurther) {
  // A ward-level sub-LTA restricted to male patients.
  auto ward = lta_->make_sub_lta(
      "hospital-A/ward-7", q_any(QueryTerm::any(), QueryTerm::equals("Male")),
      rng_);
  UserAttributes nurse;
  nurse.values["illness"] = {"Flu"};
  nurse.values["sex"] = {"Male"};
  nurse.values["provider"] = {"Hospital A"};
  ward->register_user("nurse", nurse);
  const auto cap =
      ward->delegate_for_user("nurse", q_any(QueryTerm::equals("Flu")), rng_);
  ASSERT_TRUE(cap.has_value());
  EXPECT_EQ(cap->cap.key.level, 3u);  // TA scope + ward scope + user query
  EXPECT_TRUE(apks_.search(cap->cap, enc({{"Flu", "Male", "Hospital A"}})));
  EXPECT_FALSE(apks_.search(cap->cap, enc({{"Flu", "Female", "Hospital A"}})));
  EXPECT_FALSE(apks_.search(cap->cap, enc({{"Flu", "Male", "Hospital B"}})));
}

TEST_F(AuthorityTest, ServerVerifiesSignatures) {
  CapabilityVerifier verifier(e_, ta_.ibs_params());
  verifier.register_authority("hospital-A");

  const auto good = lta_->delegate_for_user(
      "peter", q_any(QueryTerm::equals("Diabetes")), rng_);
  ASSERT_TRUE(good.has_value());
  EXPECT_TRUE(verifier.verify(*good));

  // Unregistered issuer: TA itself isn't registered here.
  const auto from_ta = ta_.issue(q_any(), rng_);
  EXPECT_FALSE(verifier.verify(from_ta));
  verifier.register_authority("TA");
  EXPECT_TRUE(verifier.verify(from_ta));

  // Tampered capability: swap in a different key.
  auto forged = *good;
  forged.cap = from_ta.cap;
  EXPECT_FALSE(verifier.verify(forged));

  // Spoofed issuer string.
  auto spoofed = *good;
  spoofed.issuer = "TA";
  EXPECT_FALSE(verifier.verify(spoofed));
}

TEST_F(AuthorityTest, SignedCapabilityWireRoundTrip) {
  const auto cap = lta_->delegate_for_user(
      "peter", q_any(QueryTerm::equals("Diabetes")), rng_);
  ASSERT_TRUE(cap.has_value());
  const auto wire = serialize_signed_capability(e_, *cap);
  const auto back = deserialize_signed_capability(e_, wire);
  EXPECT_EQ(back.issuer, cap->issuer);
  // The delegation history (the LTAs' audit trail) survives the wire.
  EXPECT_EQ(back.cap.history.size(), cap->cap.history.size());
  // Still verifies and still searches after the round trip.
  CapabilityVerifier verifier(e_, ta_.ibs_params());
  verifier.register_authority("hospital-A");
  EXPECT_TRUE(verifier.verify(back));
  EXPECT_TRUE(apks_.search(back.cap, enc({{"Diabetes", "Male",
                                           "Hospital A"}})));
  // Corrupting the issuer breaks verification but not parsing.
  auto wire2 = wire;
  wire2[wire2.size() - 10] ^= 1;  // inside the trailing signature point
  bool rejected = false;
  try {
    rejected = !verifier.verify(deserialize_signed_capability(e_, wire2));
  } catch (const std::invalid_argument&) {
    rejected = true;
  }
  EXPECT_TRUE(rejected);
}

TEST_F(AuthorityTest, TaDirectIssueSearches) {
  const auto cap = ta_.issue(q_any(QueryTerm::equals("Flu")), rng_);
  EXPECT_TRUE(apks_.search(cap.cap, enc({{"Flu", "Female", "Hospital C"}})));
  EXPECT_FALSE(apks_.search(cap.cap, enc({{"Cancer", "Female", "Hospital C"}})));
}

}  // namespace
}  // namespace apks
