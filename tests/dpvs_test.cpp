// Tests for dual pairing vector spaces: duality of the generated bases,
// linearity of vector operations, and inner products in the exponent.
#include <gtest/gtest.h>

#include "dpvs/dpvs.h"

namespace apks {
namespace {

class DpvsTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kDim = 5;
  DpvsTest()
      : e_(default_type_a_params()), dpvs_(e_, kDim), rng_("dpvs-test") {}
  Pairing e_;
  Dpvs dpvs_;
  ChaChaRng rng_;
};

TEST_F(DpvsTest, DualBasesAreOrthonormal) {
  const auto bases = dpvs_.gen_dual_bases(rng_);
  const GtEl& gt = e_.gt_generator();
  for (std::size_t i = 0; i < kDim; ++i) {
    for (std::size_t j = 0; j < kDim; ++j) {
      const GtEl v = dpvs_.pair_vec(bases.b[i], bases.bstar[j]);
      if (i == j) {
        EXPECT_EQ(v, gt) << i << "," << j;
      } else {
        EXPECT_TRUE(e_.gt_is_one(v)) << i << "," << j;
      }
    }
  }
}

TEST_F(DpvsTest, PairVecComputesInnerProductInExponent) {
  const auto bases = dpvs_.gen_dual_bases(rng_);
  const FqField& fq = e_.fq();
  // x = sum xi b_i, y = sum yi b*_i => e(x, y) = gT^{<x,y>}.
  std::vector<Fq> xs, ys;
  for (std::size_t i = 0; i < kDim; ++i) {
    xs.push_back(fq.random(rng_));
    ys.push_back(fq.random(rng_));
  }
  std::vector<const GVec*> brows, bsrows;
  for (std::size_t i = 0; i < kDim; ++i) {
    brows.push_back(&bases.b[i]);
    bsrows.push_back(&bases.bstar[i]);
  }
  const GVec x = dpvs_.lincomb(xs, brows);
  const GVec y = dpvs_.lincomb(ys, bsrows);
  const GtEl expect = e_.gt_pow(e_.gt_generator(), inner_product(fq, xs, ys));
  EXPECT_EQ(dpvs_.pair_vec(x, y), expect);
}

TEST_F(DpvsTest, OrthogonalVectorsPairToOne) {
  const auto bases = dpvs_.gen_dual_bases(rng_);
  const FqField& fq = e_.fq();
  // <(1, t, 0, ...), (-t, 1, 0, ...)> = 0.
  const Fq t = fq.random(rng_);
  std::vector<Fq> xs(kDim, fq.zero()), ys(kDim, fq.zero());
  xs[0] = fq.one();
  xs[1] = t;
  ys[0] = fq.neg(t);
  ys[1] = fq.one();
  std::vector<const GVec*> brows{&bases.b[0], &bases.b[1]};
  std::vector<const GVec*> bsrows{&bases.bstar[0], &bases.bstar[1]};
  const GVec x =
      dpvs_.lincomb({xs[0], xs[1]}, brows);
  const GVec y = dpvs_.lincomb({ys[0], ys[1]}, bsrows);
  EXPECT_TRUE(e_.gt_is_one(dpvs_.pair_vec(x, y)));
}

TEST_F(DpvsTest, AddAndScaleAreLinear) {
  const auto bases = dpvs_.gen_dual_bases(rng_);
  const FqField& fq = e_.fq();
  const Fq k = fq.random(rng_);
  // e(k*(b1 + b2), b*_1) == gT^k.
  const GVec sum = dpvs_.add(bases.b[0], bases.b[1]);
  const GVec scaled = dpvs_.scale(k, sum);
  EXPECT_EQ(dpvs_.pair_vec(scaled, bases.bstar[0]),
            e_.gt_pow(e_.gt_generator(), k));
  EXPECT_EQ(dpvs_.pair_vec(scaled, bases.bstar[1]),
            e_.gt_pow(e_.gt_generator(), k));
  EXPECT_TRUE(e_.gt_is_one(dpvs_.pair_vec(scaled, bases.bstar[2])));
}

TEST_F(DpvsTest, PreprocessedPairVecMatches) {
  const auto bases = dpvs_.gen_dual_bases(rng_);
  const FqField& fq = e_.fq();
  std::vector<Fq> xs, ys;
  std::vector<const GVec*> brows, bsrows;
  for (std::size_t i = 0; i < kDim; ++i) {
    xs.push_back(fq.random(rng_));
    ys.push_back(fq.random(rng_));
    brows.push_back(&bases.b[i]);
    bsrows.push_back(&bases.bstar[i]);
  }
  const GVec x = dpvs_.lincomb(xs, brows);
  const GVec y = dpvs_.lincomb(ys, bsrows);
  const auto pre = dpvs_.preprocess_vec(y);
  EXPECT_EQ(dpvs_.pair_vec_pre(pre, x), dpvs_.pair_vec(x, y));
}

TEST_F(DpvsTest, BasisFromMatrixIdentityIsCanonical) {
  const auto id = MatrixFq::identity(kDim, e_.fq());
  const auto basis = dpvs_.basis_from_matrix(id);
  const auto& g = e_.curve().generator();
  for (std::size_t i = 0; i < kDim; ++i) {
    for (std::size_t j = 0; j < kDim; ++j) {
      if (i == j) {
        EXPECT_EQ(basis[i][j], g);
      } else {
        EXPECT_TRUE(basis[i][j].inf);
      }
    }
  }
}

TEST_F(DpvsTest, DimensionMismatchesThrow) {
  const auto bases = dpvs_.gen_dual_bases(rng_);
  GVec bad(kDim - 1, AffinePoint::infinity());
  EXPECT_THROW((void)dpvs_.add(bad, bases.b[0]), std::invalid_argument);
  EXPECT_THROW((void)dpvs_.pair_vec(bad, bases.b[0]), std::invalid_argument);
  EXPECT_THROW((void)dpvs_.scale(e_.fq().one(), bad), std::invalid_argument);
  EXPECT_THROW((void)dpvs_.basis_from_matrix(
                   MatrixFq::identity(kDim - 1, e_.fq())),
               std::invalid_argument);
}

}  // namespace
}  // namespace apks
