// Tests for the MRQED^D baseline: interval-tree combinatorics, AIBE
// correctness/anonymity behaviour, and end-to-end multi-dimensional range
// matching with the 5-pairings-per-probe cost profile.
#include <gtest/gtest.h>

#include "mrqed/mrqed.h"
#include "mrqed/serialize.h"

namespace apks {
namespace {

TEST(IntervalTree, PathShape) {
  IntervalTree t(4);
  EXPECT_EQ(t.domain_size(), 16u);
  const auto path = t.path(11);  // 1011
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path[0], (IntervalNode{0, 0}));
  EXPECT_EQ(path[1], (IntervalNode{1, 1}));
  EXPECT_EQ(path[2], (IntervalNode{2, 2}));
  EXPECT_EQ(path[3], (IntervalNode{3, 5}));
  EXPECT_EQ(path[4], (IntervalNode{4, 11}));
  EXPECT_THROW((void)t.path(16), std::invalid_argument);
}

TEST(IntervalTree, CanonicalCoverIsExactAndDisjoint) {
  IntervalTree t(5);
  ChaChaRng rng("cover");
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t a = rng.next_below(32);
    const std::uint64_t b = rng.next_below(32);
    const std::uint64_t lo = std::min(a, b), hi = std::max(a, b);
    const auto cover = t.canonical_cover(lo, hi);
    ASSERT_FALSE(cover.empty());
    ASSERT_LE(cover.size(), 2 * t.depth());
    // Exact disjoint union: count each leaf exactly once.
    std::vector<int> hits(32, 0);
    for (const auto& n : cover) {
      for (std::uint64_t v = t.node_lo(n); v <= t.node_hi(n); ++v) {
        hits[v]++;
      }
    }
    for (std::uint64_t v = 0; v < 32; ++v) {
      EXPECT_EQ(hits[v], (v >= lo && v <= hi) ? 1 : 0) << v;
    }
  }
}

TEST(IntervalTree, CoverIntersectsPathAtExactlyOneNode) {
  // The structural property MRQED matching relies on.
  IntervalTree t(5);
  ChaChaRng rng("intersect");
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t a = rng.next_below(32);
    const std::uint64_t b = rng.next_below(32);
    const std::uint64_t lo = std::min(a, b), hi = std::max(a, b);
    const std::uint64_t v = rng.next_below(32);
    const auto cover = t.canonical_cover(lo, hi);
    const auto path = t.path(v);
    int intersections = 0;
    for (const auto& cn : cover) {
      for (const auto& pn : path) {
        if (cn == pn) ++intersections;
      }
    }
    EXPECT_EQ(intersections, (v >= lo && v <= hi) ? 1 : 0);
  }
}

TEST(IntervalTree, FullDomainCoverIsRoot) {
  IntervalTree t(4);
  const auto cover = t.canonical_cover(0, 15);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], (IntervalNode{0, 0}));
}

TEST(IntervalTree, ConstructionValidation) {
  EXPECT_THROW(IntervalTree(0), std::invalid_argument);
  EXPECT_THROW(IntervalTree(63), std::invalid_argument);
  IntervalTree t(3);
  EXPECT_THROW((void)t.canonical_cover(5, 2), std::invalid_argument);
  EXPECT_THROW((void)t.canonical_cover(0, 8), std::invalid_argument);
}

class AibeTest : public ::testing::Test {
 protected:
  AibeTest() : e_(default_type_a_params()), aibe_(e_), rng_("aibe-test") {
    auto s = aibe_.setup(rng_);
    params_ = s.params;
    msk_ = s.msk;
    base_ = aibe_.make_id_base(rng_);
  }
  Pairing e_;
  Aibe aibe_;
  ChaChaRng rng_;
  AibeParams params_;
  AibeMasterKey msk_;
  AibeIdBase base_;
};

TEST_F(AibeTest, DecryptsForMatchingIdentity) {
  const GtEl m = e_.gt_random(rng_);
  const auto key = aibe_.extract(msk_, base_, "node-42", rng_);
  const auto ct = aibe_.encrypt(params_, base_, "node-42", m, rng_);
  EXPECT_EQ(aibe_.decrypt(ct, key), m);
}

TEST_F(AibeTest, WrongIdentityGivesGarbage) {
  const GtEl m = e_.gt_random(rng_);
  const auto key = aibe_.extract(msk_, base_, "node-42", rng_);
  const auto ct = aibe_.encrypt(params_, base_, "node-43", m, rng_);
  EXPECT_NE(aibe_.decrypt(ct, key), m);
}

TEST_F(AibeTest, WrongBaseGivesGarbage) {
  const GtEl m = e_.gt_random(rng_);
  const auto base2 = aibe_.make_id_base(rng_);
  const auto key = aibe_.extract(msk_, base_, "node-42", rng_);
  const auto ct = aibe_.encrypt(params_, base2, "node-42", m, rng_);
  EXPECT_NE(aibe_.decrypt(ct, key), m);
}

TEST_F(AibeTest, FreshKeysAndCiphertextsDiffer) {
  const GtEl m = e_.gt_random(rng_);
  const auto k1 = aibe_.extract(msk_, base_, "id", rng_);
  const auto k2 = aibe_.extract(msk_, base_, "id", rng_);
  EXPECT_NE(k1.d0, k2.d0);
  const auto c1 = aibe_.encrypt(params_, base_, "id", m, rng_);
  const auto c2 = aibe_.encrypt(params_, base_, "id", m, rng_);
  EXPECT_NE(c1.c0, c2.c0);
  EXPECT_EQ(aibe_.decrypt(c1, k2), m);
  EXPECT_EQ(aibe_.decrypt(c2, k1), m);
}

class MrqedTest : public ::testing::Test {
 protected:
  MrqedTest()
      : e_(default_type_a_params()), scheme_(e_, 3, 4), rng_("mrqed-test") {
    scheme_.setup(rng_, pk_, msk_);
  }
  Pairing e_;
  Mrqed scheme_;
  ChaChaRng rng_;
  MrqedPublicKey pk_;
  MrqedMasterKey msk_;
};

TEST_F(MrqedTest, PointInsideHyperRectangleMatches) {
  const auto ct = scheme_.encrypt(pk_, {3, 9, 14}, rng_);
  const auto key = scheme_.gen_key(pk_, msk_,
                                   {{2, 5}, {8, 15}, {14, 14}}, rng_);
  Mrqed::MatchStats stats;
  EXPECT_TRUE(scheme_.match(ct, key, &stats));
  EXPECT_GT(stats.pairings, 0u);
}

TEST_F(MrqedTest, AnyDimensionOutsideFails) {
  const auto ct = scheme_.encrypt(pk_, {3, 9, 14}, rng_);
  // First dimension misses.
  EXPECT_FALSE(scheme_.match(
      ct, scheme_.gen_key(pk_, msk_, {{4, 5}, {8, 15}, {14, 14}}, rng_)));
  // Last dimension misses.
  EXPECT_FALSE(scheme_.match(
      ct, scheme_.gen_key(pk_, msk_, {{2, 5}, {8, 15}, {15, 15}}, rng_)));
}

TEST_F(MrqedTest, FullDomainKeyMatchesEverything) {
  const auto key = scheme_.gen_key(
      pk_, msk_, {{0, 15}, {0, 15}, {0, 15}}, rng_);
  for (int i = 0; i < 3; ++i) {
    std::vector<std::uint64_t> point{rng_.next_below(16),
                                     rng_.next_below(16),
                                     rng_.next_below(16)};
    EXPECT_TRUE(scheme_.match(scheme_.encrypt(pk_, point, rng_), key));
  }
}

TEST_F(MrqedTest, MatchesAgreeWithPlaintextSemantics) {
  ChaChaRng wl("mrqed-workload");
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<std::uint64_t> point;
    std::vector<MrqedRange> ranges;
    bool expect = true;
    for (std::size_t d = 0; d < 3; ++d) {
      point.push_back(wl.next_below(16));
      const std::uint64_t a = wl.next_below(16);
      const std::uint64_t b = wl.next_below(16);
      MrqedRange r{std::min(a, b), std::max(a, b)};
      ranges.push_back(r);
      expect = expect && point[d] >= r.lo && point[d] <= r.hi;
    }
    const auto ct = scheme_.encrypt(pk_, point, rng_);
    const auto key = scheme_.gen_key(pk_, msk_, ranges, rng_);
    EXPECT_EQ(scheme_.match(ct, key), expect) << "trial " << trial;
  }
}

TEST_F(MrqedTest, PairingCountIsFivePerProbe) {
  // A key whose first-dimension cover has k nodes costs at most
  // 5*(k + 1) pairings in that dimension (k check probes + 1 share).
  const auto ct = scheme_.encrypt(pk_, {0, 0, 0}, rng_);
  const auto key = scheme_.gen_key(pk_, msk_,
                                   {{0, 0}, {0, 0}, {0, 0}}, rng_);
  Mrqed::MatchStats stats;
  EXPECT_TRUE(scheme_.match(ct, key, &stats));
  // Single-node covers: exactly (5 check + 5 share) * 3 dims.
  EXPECT_EQ(stats.pairings, 30u);
}

TEST_F(MrqedTest, PreparedMatchAgreesWithPlain) {
  ChaChaRng wl("mrqed-prepared");
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<std::uint64_t> point;
    std::vector<MrqedRange> ranges;
    for (std::size_t d = 0; d < 3; ++d) {
      point.push_back(wl.next_below(16));
      const std::uint64_t a = wl.next_below(16);
      const std::uint64_t b = wl.next_below(16);
      ranges.push_back({std::min(a, b), std::max(a, b)});
    }
    const auto ct = scheme_.encrypt(pk_, point, rng_);
    const auto key = scheme_.gen_key(pk_, msk_, ranges, rng_);
    const auto prepared = scheme_.prepare(key);
    Mrqed::MatchStats s1, s2;
    EXPECT_EQ(scheme_.match_prepared(ct, prepared, &s1),
              scheme_.match(ct, key, &s2));
    EXPECT_EQ(s1.pairings, s2.pairings);
  }
}

TEST_F(MrqedTest, SerializationRoundTrip) {
  const auto ct = scheme_.encrypt(pk_, {3, 9, 14}, rng_);
  const auto key =
      scheme_.gen_key(pk_, msk_, {{2, 5}, {8, 15}, {14, 14}}, rng_);

  const auto ct2 =
      deserialize_mrqed_ciphertext(e_, serialize_mrqed_ciphertext(e_, ct));
  const auto key2 = deserialize_mrqed_key(e_, serialize_mrqed_key(e_, key));
  const auto pk2 =
      deserialize_mrqed_public_key(e_, serialize_mrqed_public_key(e_, pk_));
  EXPECT_EQ(pk2.aibe.omega, pk_.aibe.omega);
  EXPECT_EQ(pk2.bases.size(), pk_.bases.size());
  // Deserialized objects still match correctly.
  EXPECT_TRUE(scheme_.match(ct2, key2));
  const auto miss =
      scheme_.gen_key(pk_, msk_, {{4, 5}, {8, 15}, {14, 14}}, rng_);
  const auto miss2 =
      deserialize_mrqed_key(e_, serialize_mrqed_key(e_, miss));
  EXPECT_FALSE(scheme_.match(ct2, miss2));
  // Truncation rejected.
  auto bytes = serialize_mrqed_key(e_, key);
  bytes.pop_back();
  EXPECT_THROW((void)deserialize_mrqed_key(e_, bytes), std::out_of_range);
}

TEST_F(MrqedTest, ArityValidation) {
  EXPECT_THROW((void)scheme_.encrypt(pk_, {1, 2}, rng_),
               std::invalid_argument);
  EXPECT_THROW((void)scheme_.gen_key(pk_, msk_, {{0, 1}}, rng_),
               std::invalid_argument);
  EXPECT_THROW(Mrqed(e_, 0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace apks
