// Tests for matrix algebra over F_q, the substrate of DPVS dual bases.
#include <gtest/gtest.h>

#include "math/matrix_fq.h"

namespace apks {
namespace {

FqInt test_q() {
  FqInt q;
  q.w[0] = static_cast<std::uint64_t>(-47);  // 2^160 - 47
  q.w[1] = ~std::uint64_t{0};
  q.w[2] = 0xFFFFFFFFull;
  return q;
}

class MatrixTest : public ::testing::Test {
 protected:
  MatrixTest() : fq_(test_q()), rng_("matrix") {}
  FqField fq_;
  ChaChaRng rng_;
};

TEST_F(MatrixTest, IdentityActsAsIdentity) {
  const auto id = MatrixFq::identity(5, fq_);
  const auto m = MatrixFq::random(5, 5, fq_, rng_);
  EXPECT_EQ(id.mul(m, fq_), m);
  EXPECT_EQ(m.mul(id, fq_), m);
}

TEST_F(MatrixTest, TransposeInvolution) {
  const auto m = MatrixFq::random(3, 7, fq_, rng_);
  EXPECT_EQ(m.transpose().transpose(), m);
  EXPECT_EQ(m.transpose().rows(), 7u);
  EXPECT_EQ(m.transpose().cols(), 3u);
}

TEST_F(MatrixTest, TransposeOfProduct) {
  const auto a = MatrixFq::random(4, 4, fq_, rng_);
  const auto b = MatrixFq::random(4, 4, fq_, rng_);
  EXPECT_EQ(a.mul(b, fq_).transpose(),
            b.transpose().mul(a.transpose(), fq_));
}

TEST_F(MatrixTest, InverseTimesSelfIsIdentity) {
  for (const std::size_t n : {1u, 2u, 5u, 13u}) {
    const auto m = MatrixFq::random_invertible(n, fq_, rng_);
    MatrixFq inv;
    ASSERT_TRUE(m.inverse(fq_, inv));
    EXPECT_EQ(m.mul(inv, fq_), MatrixFq::identity(n, fq_)) << "n=" << n;
    EXPECT_EQ(inv.mul(m, fq_), MatrixFq::identity(n, fq_)) << "n=" << n;
  }
}

TEST_F(MatrixTest, SingularMatrixHasNoInverse) {
  MatrixFq m(3, 3, fq_);  // zero matrix
  MatrixFq inv;
  EXPECT_FALSE(m.inverse(fq_, inv));
  // Rank-deficient: duplicate rows.
  auto r = MatrixFq::random(3, 3, fq_, rng_);
  for (std::size_t j = 0; j < 3; ++j) r.at(2, j) = r.at(0, j);
  EXPECT_FALSE(r.inverse(fq_, inv));
}

TEST_F(MatrixTest, InverseTransposeCommutes) {
  // (X^T)^{-1} == (X^{-1})^T — the identity DPVS setup relies on.
  const auto x = MatrixFq::random_invertible(6, fq_, rng_);
  MatrixFq xinv, xt_inv;
  ASSERT_TRUE(x.inverse(fq_, xinv));
  ASSERT_TRUE(x.transpose().inverse(fq_, xt_inv));
  EXPECT_EQ(xt_inv, xinv.transpose());
}

TEST_F(MatrixTest, ApplyMatchesMul) {
  const auto m = MatrixFq::random(4, 6, fq_, rng_);
  std::vector<Fq> x;
  for (int i = 0; i < 6; ++i) x.push_back(fq_.random(rng_));
  const auto y = m.apply(x, fq_);
  ASSERT_EQ(y.size(), 4u);
  for (std::size_t r = 0; r < 4; ++r) {
    Fq acc = fq_.zero();
    for (std::size_t c = 0; c < 6; ++c) {
      acc = fq_.add(acc, fq_.mul(m.at(r, c), x[c]));
    }
    EXPECT_EQ(y[r], acc);
  }
}

TEST_F(MatrixTest, LinearityOfApply) {
  const auto m = MatrixFq::random(5, 5, fq_, rng_);
  std::vector<Fq> x, y, xy;
  for (int i = 0; i < 5; ++i) {
    x.push_back(fq_.random(rng_));
    y.push_back(fq_.random(rng_));
    xy.push_back(fq_.add(x.back(), y.back()));
  }
  const auto mx = m.apply(x, fq_);
  const auto my = m.apply(y, fq_);
  const auto mxy = m.apply(xy, fq_);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(mxy[i], fq_.add(mx[i], my[i]));
  }
}

TEST_F(MatrixTest, MulDimensionMismatchThrows) {
  const auto a = MatrixFq::random(2, 3, fq_, rng_);
  const auto b = MatrixFq::random(4, 2, fq_, rng_);
  EXPECT_THROW((void)a.mul(b, fq_), std::invalid_argument);
}

}  // namespace
}  // namespace apks
