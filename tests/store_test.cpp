// Storage engine tests: segment framing + CRC, IndexStore manifest /
// rotation / compaction, ShardedStore round trips, the APKS-level codecs,
// CloudServer persistence integration, and DocumentStore persistence +
// thread safety. Crash-recovery scenarios live in store_recovery_test.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <thread>

#include "cloud/docstore.h"
#include "cloud/server.h"
#include "common/crc32.h"
#include "core/serialize_apks.h"
#include "store/index_store.h"
#include "store/sharded_store.h"

namespace apks {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

// Fresh scratch directory per test, removed on teardown.
class StoreDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("apks-store-") + info->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST(Crc32Test, KnownAnswersAndChaining) {
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(bytes_of("")), 0u);
  // Chaining via seed equals one-shot over the concatenation.
  const auto all = bytes_of("hello, segment world");
  const std::span<const std::uint8_t> s(all);
  EXPECT_EQ(crc32(s.subspan(6), crc32(s.subspan(0, 6))), crc32(all));
}

TEST_F(StoreDirTest, SegmentRoundTripAndTornTail) {
  fs::create_directories(dir_);
  const fs::path seg = dir_ / "seg.apks";
  {
    SegmentWriter w(seg, /*shard_id=*/7, /*seq=*/3);
    w.append(bytes_of("alpha"));
    w.append(bytes_of(""));  // empty payloads are legal frames
    w.append(bytes_of("gamma"));
    w.sync();
  }
  std::vector<std::string> seen;
  SegmentScanResult scan =
      scan_segment(seg, [&](std::span<const std::uint8_t> p) {
        seen.emplace_back(p.begin(), p.end());
      });
  EXPECT_EQ(scan.info.shard_id, 7u);
  EXPECT_EQ(scan.info.seq, 3u);
  EXPECT_EQ(scan.records, 3u);
  EXPECT_FALSE(scan.torn_tail());
  EXPECT_EQ(seen, (std::vector<std::string>{"alpha", "", "gamma"}));

  // A torn tail (partial frame) is detected, not replayed...
  {
    std::FILE* f = std::fopen(seg.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const std::uint8_t torn[5] = {9, 0, 0, 0, 42};  // len=9, no payload
    std::fwrite(torn, 1, sizeof(torn), f);
    std::fclose(f);
  }
  scan = scan_segment(seg);
  EXPECT_EQ(scan.records, 3u);
  EXPECT_TRUE(scan.torn_tail());

  // ...and open_for_append truncates it and resumes cleanly.
  SegmentScanResult recovered;
  {
    SegmentWriter w = SegmentWriter::open_for_append(seg, &recovered);
    EXPECT_TRUE(recovered.torn_tail());
    w.append(bytes_of("delta"));
    w.sync();
  }
  scan = scan_segment(seg);
  EXPECT_EQ(scan.records, 4u);
  EXPECT_FALSE(scan.torn_tail());
}

TEST_F(StoreDirTest, SegmentCorruptFrameStopsScan) {
  fs::create_directories(dir_);
  const fs::path seg = dir_ / "seg.apks";
  std::uint64_t first_two_end = 0;
  {
    SegmentWriter w(seg, 0, 1);
    w.append(bytes_of("one"));
    w.append(bytes_of("two"));
    first_two_end = w.bytes();
    w.append(bytes_of("three"));
    w.sync();
  }
  // Flip a payload byte of the last frame: CRC must catch it.
  {
    std::FILE* f = std::fopen(seg.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(first_two_end + kFrameHeaderSize + 1),
               SEEK_SET);
    std::fputc('X', f);
    std::fclose(f);
  }
  const SegmentScanResult scan = scan_segment(seg);
  EXPECT_EQ(scan.records, 2u);
  EXPECT_TRUE(scan.torn_tail());
  EXPECT_EQ(scan.valid_bytes, first_two_end);
}

TEST_F(StoreDirTest, SegmentRejectsBadHeaderAndHugeLength) {
  fs::create_directories(dir_);
  const fs::path bad = dir_ / "bad.apks";
  {
    std::FILE* f = std::fopen(bad.c_str(), "wb");
    std::fputs("not a segment at all", f);
    std::fclose(f);
  }
  EXPECT_THROW((void)scan_segment(bad), std::runtime_error);

  // A frame whose length field exceeds the cap is a torn tail, not an
  // allocation request.
  const fs::path seg = dir_ / "seg.apks";
  {
    SegmentWriter w(seg, 0, 1);
    w.append(bytes_of("ok"));
    w.sync();
  }
  {
    std::FILE* f = std::fopen(seg.c_str(), "ab");
    const std::uint8_t bomb[8] = {0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0};
    std::fwrite(bomb, 1, sizeof(bomb), f);
    std::fclose(f);
  }
  const SegmentScanResult scan = scan_segment(seg);
  EXPECT_EQ(scan.records, 1u);
  EXPECT_TRUE(scan.torn_tail());
}

TEST_F(StoreDirTest, IndexStoreRotationAndReopen) {
  IndexStoreOptions opts;
  opts.segment_max_bytes = 128;  // force rotation every few records
  std::vector<std::string> written;
  {
    IndexStore store(dir_, /*shard_id=*/2, opts);
    for (int i = 0; i < 40; ++i) {
      written.push_back("record-" + std::to_string(i));
      store.put(bytes_of(written.back()));
    }
    store.sync();
    EXPECT_GT(store.segment_count(), 3u);
    EXPECT_EQ(store.record_count(), 40u);
  }
  // Reopen: manifest + chain replay everything in order.
  IndexStore reopened(dir_, 2, opts);
  EXPECT_EQ(reopened.record_count(), 40u);
  EXPECT_FALSE(reopened.recovery().torn_tail);
  std::vector<std::string> replayed;
  reopened.for_each([&](std::span<const std::uint8_t> p) {
    replayed.emplace_back(p.begin(), p.end());
  });
  EXPECT_EQ(replayed, written);

  // Shard id mismatch is refused (a store directory is not relabelable).
  EXPECT_THROW(IndexStore(dir_, 3, opts), std::runtime_error);
}

TEST_F(StoreDirTest, IndexStoreCompactCollapsesChain) {
  IndexStoreOptions opts;
  opts.segment_max_bytes = 96;
  IndexStore store(dir_, 0, opts);
  std::vector<std::string> written;
  for (int i = 0; i < 25; ++i) {
    written.push_back("payload-" + std::to_string(i));
    store.put(bytes_of(written.back()));
  }
  store.sync();
  const std::size_t segments_before = store.segment_count();
  ASSERT_GT(segments_before, 2u);

  // Compaction must not lose or reorder records; afterwards the chain is
  // one sealed segment + one empty active.
  (void)store.compact();
  EXPECT_EQ(store.segment_count(), 2u);
  EXPECT_EQ(store.record_count(), 25u);
  std::vector<std::string> replayed;
  store.for_each([&](std::span<const std::uint8_t> p) {
    replayed.emplace_back(p.begin(), p.end());
  });
  EXPECT_EQ(replayed, written);

  // Old segment files are gone; a reopen agrees with the live object.
  std::size_t seg_files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".apks") ++seg_files;
  }
  EXPECT_EQ(seg_files, 2u);
  IndexStore reopened(dir_, 0, opts);
  EXPECT_EQ(reopened.record_count(), 25u);
}

class ApksCodecTest : public ::testing::Test {
 protected:
  ApksCodecTest()
      : e_(default_type_a_params()),
        scheme_(e_, Schema({{"a", nullptr, 1}, {"b", nullptr, 2}})),
        rng_("store-codec") {
    scheme_.setup(rng_, pk_, msk_);
  }

  Pairing e_;
  Apks scheme_;
  ChaChaRng rng_;
  ApksPublicKey pk_;
  ApksMasterKey msk_;
};

TEST_F(ApksCodecTest, IndexRoundTripPreservesSearchResult) {
  const EncryptedIndex enc =
      scheme_.gen_index(pk_, PlainIndex{{"x", "y"}}, rng_);
  const auto data = serialize_index(e_, enc);
  EXPECT_EQ(data, serialize_index(e_, deserialize_index(e_, data)));

  const Capability cap = scheme_.gen_cap(
      msk_, Query{{QueryTerm::equals("x"), QueryTerm::equals("y")}}, rng_);
  EXPECT_TRUE(scheme_.search(cap, deserialize_index(e_, data)));
}

TEST_F(ApksCodecTest, CapabilityRoundTripKeepsHistory) {
  const Query q{{QueryTerm::equals("x"), QueryTerm::any()}};
  Capability cap = scheme_.gen_cap(msk_, q, rng_);
  cap = scheme_.delegate_cap(
      cap, Query{{QueryTerm::any(), QueryTerm::subset({"y", "z"})}}, rng_);
  const auto data = serialize_capability(e_, cap);
  const Capability back = deserialize_capability(e_, data);
  EXPECT_EQ(data, serialize_capability(e_, back));
  ASSERT_EQ(back.history.size(), 2u);
  EXPECT_EQ(back.history[0].terms[0].kind, QueryTerm::Kind::kEquality);
  EXPECT_EQ(back.history[0].terms[0].values,
            std::vector<std::string>{"x"});
  EXPECT_EQ(back.history[1].terms[1].kind, QueryTerm::Kind::kSubset);
  EXPECT_EQ(back.history[1].terms[1].values,
            (std::vector<std::string>{"y", "z"}));
  // The round-tripped key still searches.
  const EncryptedIndex enc =
      scheme_.gen_index(pk_, PlainIndex{{"x", "y"}}, rng_);
  EXPECT_TRUE(scheme_.search(back, enc));
}

TEST_F(ApksCodecTest, CodecsRejectGarbage) {
  EXPECT_THROW((void)deserialize_index(e_, {}), std::invalid_argument);
  const auto bad_version = bytes_of("\x7fgarbage");
  EXPECT_THROW((void)deserialize_index(e_, bad_version),
               std::invalid_argument);
  EXPECT_THROW((void)deserialize_capability(e_, bad_version),
               std::invalid_argument);
  // Hostile term count in a query must not allocate.
  ByteWriter w;
  w.u8(kCapabilityCodecVersion);
  const Capability cap = scheme_.gen_cap(
      msk_, Query{{QueryTerm::any(), QueryTerm::any()}}, rng_);
  w.bytes(serialize_key(e_, cap.key));
  w.u32(0xFFFFFFFFu);
  EXPECT_THROW((void)deserialize_capability(e_, w.data()),
               std::invalid_argument);
}

class ShardedStoreTest : public StoreDirTest {
 protected:
  ShardedStoreTest()
      : e_(default_type_a_params()),
        scheme_(e_, Schema({{"a", nullptr, 1}, {"b", nullptr, 1}})),
        rng_("sharded-store") {
    scheme_.setup(rng_, pk_, msk_);
  }

  [[nodiscard]] ShardedStoreOptions small_segments() const {
    ShardedStoreOptions opts;
    opts.shards = 3;
    opts.segment.segment_max_bytes = 4096;
    return opts;
  }

  Pairing e_;
  Apks scheme_;
  ChaChaRng rng_;
  ApksPublicKey pk_;
  ApksMasterKey msk_;
};

TEST_F(ShardedStoreTest, AppendReloadPreservesOrderAndBytes) {
  std::vector<std::vector<std::uint8_t>> original;
  {
    ShardedStore store(e_, dir_, small_segments());
    for (int i = 0; i < 10; ++i) {
      const EncryptedIndex enc = scheme_.gen_index(
          pk_, PlainIndex{{i % 2 == 0 ? "x" : "q", "y"}}, rng_);
      original.push_back(serialize_index(e_, enc));
      EXPECT_EQ(store.append("doc-" + std::to_string(i), enc),
                static_cast<std::uint64_t>(i + 1));
    }
    store.sync();
    EXPECT_EQ(store.record_count(), 10u);
    EXPECT_EQ(store.shard_count(), 3u);
  }
  // Reopen (options ask for 5 shards — the on-disk 3 must win).
  ShardedStoreOptions reopen_opts = small_segments();
  reopen_opts.shards = 5;
  ShardedStore store(e_, dir_, reopen_opts);
  EXPECT_EQ(store.shard_count(), 3u);
  EXPECT_EQ(store.next_id(), 11u);
  const std::vector<StoredIndexRecord> records = store.load_all();
  ASSERT_EQ(records.size(), 10u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].id, i + 1);
    EXPECT_EQ(records[i].doc_ref, "doc-" + std::to_string(i));
    // Byte-identical index round trip through disk.
    EXPECT_EQ(serialize_index(e_, records[i].index), original[i]);
  }
}

TEST_F(ShardedStoreTest, DiskSearchMatchesInMemoryServer) {
  CloudServer server(scheme_, CapabilityVerifier(e_, IbsPublicParams{}));
  ShardedStore store(e_, dir_, small_segments());
  server.attach_store(&store);
  for (int i = 0; i < 12; ++i) {
    const bool match = i % 3 == 0;
    (void)server.store(
        scheme_.gen_index(pk_, PlainIndex{{match ? "x" : "n", "y"}}, rng_),
        "doc-" + std::to_string(i));
  }
  store.sync();
  const Capability cap = scheme_.gen_cap(
      msk_, Query{{QueryTerm::equals("x"), QueryTerm::any()}}, rng_);

  CloudServer::SearchStats mem_stats;
  const auto mem = server.search_unchecked(cap, &mem_stats);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    StoreScanStats disk_stats;
    const auto disk = store.search(scheme_, cap, threads, &disk_stats);
    EXPECT_EQ(disk, mem) << threads << " threads";
    EXPECT_EQ(disk_stats.scanned, mem_stats.scanned);
    EXPECT_EQ(disk_stats.matched, mem_stats.matched);
  }
}

TEST_F(ShardedStoreTest, ServerRestartIsByteIdentical) {
  // Populate a server with write-through persistence...
  auto verifier = [&] {
    return CapabilityVerifier(e_, IbsPublicParams{});
  };
  CloudServer original(scheme_, verifier());
  {
    ShardedStore store(e_, dir_, small_segments());
    original.attach_store(&store);
    for (int i = 0; i < 8; ++i) {
      (void)original.store(
          scheme_.gen_index(pk_, PlainIndex{{i < 5 ? "x" : "n", "y"}}, rng_),
          "doc-" + std::to_string(i));
    }
    store.sync();
    original.attach_store(nullptr);
  }  // "crash": the store object goes away, only the files remain

  // ...restart from disk and compare against the never-restarted server.
  ShardedStore reopened(e_, dir_, small_segments());
  CloudServer restarted(scheme_, verifier());
  EXPECT_EQ(restarted.load_from(reopened), 8u);
  EXPECT_EQ(restarted.record_count(), original.record_count());

  const Capability cap = scheme_.gen_cap(
      msk_, Query{{QueryTerm::equals("x"), QueryTerm::any()}}, rng_);
  CloudServer::SearchStats stats_a;
  CloudServer::SearchStats stats_b;
  EXPECT_EQ(original.search_unchecked(cap, &stats_a),
            restarted.search_unchecked(cap, &stats_b));
  EXPECT_EQ(stats_a.scanned, stats_b.scanned);
  EXPECT_EQ(stats_a.matched, stats_b.matched);

  // New uploads on the restarted server continue the id sequence.
  ShardedStore store2(e_, dir_, small_segments());
  restarted.attach_store(&store2);
  const std::uint64_t id = restarted.store(
      scheme_.gen_index(pk_, PlainIndex{{"x", "y"}}, rng_), "doc-8");
  EXPECT_EQ(id, 9u);
}

TEST_F(ShardedStoreTest, ExplicitPutKeepsIdCounterAhead) {
  ShardedStore store(e_, dir_, small_segments());
  const EncryptedIndex enc =
      scheme_.gen_index(pk_, PlainIndex{{"x", "y"}}, rng_);
  store.put(41, "doc-41", enc);
  EXPECT_EQ(store.next_id(), 42u);
  EXPECT_EQ(store.append("doc-42", enc), 42u);
  store.flush();
  const auto records = store.load_all();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id, 41u);
  EXPECT_EQ(records[1].id, 42u);
}

TEST_F(ShardedStoreTest, CompactPreservesRecordsAcrossShards) {
  ShardedStore store(e_, dir_, small_segments());
  const EncryptedIndex enc =
      scheme_.gen_index(pk_, PlainIndex{{"x", "y"}}, rng_);
  for (int i = 0; i < 9; ++i) {
    (void)store.append("doc-" + std::to_string(i), enc);
  }
  store.sync();
  const auto before = store.load_all();
  (void)store.compact();
  const auto after = store.load_all();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].id, before[i].id);
    EXPECT_EQ(after[i].doc_ref, before[i].doc_ref);
  }
  // And the compacted store reopens.
  ShardedStore reopened(e_, dir_, small_segments());
  EXPECT_EQ(reopened.record_count(), 9u);
}

class DocStoreTest : public StoreDirTest {};

TEST_F(DocStoreTest, PersistReloadRoundTrip) {
  fs::create_directories(dir_);
  ChaChaRng rng("docstore-persist");
  const DocumentKey key = DocumentKey::random(rng);
  DocumentStore docs;
  docs.put("doc-a", key, std::string_view("hello world"), rng);
  docs.put("doc-b", key, std::string_view("second document"), rng);
  docs.persist(dir_ / "docs.apks");

  DocumentStore reloaded;
  EXPECT_EQ(reloaded.load(dir_ / "docs.apks"), 2u);
  EXPECT_EQ(reloaded.get_text("doc-a", key), "hello world");
  EXPECT_EQ(reloaded.get_text("doc-b", key), "second document");
  // Sealed blobs survive the disk trip bit-exactly: tampering detection
  // still works on the reloaded copy.
  auto* blob = reloaded.find("doc-b");
  ASSERT_NE(blob, nullptr);
  blob->sealed[0] ^= 1;
  EXPECT_FALSE(reloaded.get_text("doc-b", key).has_value());
}

TEST_F(DocStoreTest, ConcurrentPutAndGet) {
  ChaChaRng seed_rng("docstore-threads");
  const DocumentKey key = DocumentKey::random(seed_rng);
  DocumentStore docs;
  constexpr int kWriters = 4;
  constexpr int kDocsPerWriter = 25;
  std::vector<std::thread> pool;
  for (int w = 0; w < kWriters; ++w) {
    pool.emplace_back([&, w] {
      ChaChaRng rng("writer-" + std::to_string(w));
      for (int i = 0; i < kDocsPerWriter; ++i) {
        const std::string ref =
            "doc-" + std::to_string(w) + "-" + std::to_string(i);
        docs.put(ref, key, std::string_view("content of " + ref), rng);
        // Read-back through the shared-lock path while others write.
        EXPECT_EQ(docs.get_text(ref, key), "content of " + ref);
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(docs.size(),
            static_cast<std::size_t>(kWriters * kDocsPerWriter));
}

}  // namespace
}  // namespace apks
