// Group-law, scalar-multiplication and encoding tests for the type-A curve.
#include <gtest/gtest.h>

#include "ec/curve.h"

namespace apks {
namespace {

class CurveTest : public ::testing::Test {
 protected:
  CurveTest() : curve_(default_type_a_params()), rng_("curve-test") {}
  Curve curve_;
  ChaChaRng rng_;
};

TEST_F(CurveTest, DefaultParamsValidate) {
  ChaChaRng rng("validate");
  EXPECT_NO_THROW(validate_params(default_type_a_params(), rng));
}

TEST_F(CurveTest, GeneratorOnCurveWithOrderQ) {
  EXPECT_TRUE(curve_.on_curve(curve_.generator()));
  EXPECT_FALSE(curve_.generator().inf);
  EXPECT_TRUE(curve_.mul(curve_.generator(), curve_.params().q).inf);
}

TEST_F(CurveTest, AdditionCommutes) {
  const auto p = curve_.random_point(rng_);
  const auto q = curve_.random_point(rng_);
  EXPECT_EQ(curve_.add(p, q), curve_.add(q, p));
}

TEST_F(CurveTest, AdditionAssociates) {
  const auto p = curve_.random_point(rng_);
  const auto q = curve_.random_point(rng_);
  const auto r = curve_.random_point(rng_);
  EXPECT_EQ(curve_.add(curve_.add(p, q), r), curve_.add(p, curve_.add(q, r)));
}

TEST_F(CurveTest, IdentityAndInverse) {
  const auto p = curve_.random_point(rng_);
  EXPECT_EQ(curve_.add(p, AffinePoint::infinity()), p);
  EXPECT_EQ(curve_.add(AffinePoint::infinity(), p), p);
  EXPECT_TRUE(curve_.add(p, curve_.neg(p)).inf);
}

TEST_F(CurveTest, DoubleMatchesAdd) {
  const auto p = curve_.random_point(rng_);
  EXPECT_EQ(curve_.dbl(p), curve_.add(p, p));
}

TEST_F(CurveTest, ScalarMulMatchesRepeatedAdd) {
  const auto p = curve_.random_point(rng_);
  AffinePoint acc = AffinePoint::infinity();
  for (std::uint64_t k = 0; k <= 20; ++k) {
    EXPECT_EQ(curve_.mul(p, FqInt{k}), acc) << "k=" << k;
    acc = curve_.add(acc, p);
  }
}

TEST_F(CurveTest, ScalarMulDistributes) {
  const auto p = curve_.random_point(rng_);
  const auto& fq = curve_.fq();
  for (int i = 0; i < 5; ++i) {
    const Fq a = fq.random(rng_);
    const Fq b = fq.random(rng_);
    // (a+b)P == aP + bP with scalars reduced mod q.
    const auto lhs = curve_.mul_fq(p, fq.add(a, b));
    const auto rhs = curve_.add(curve_.mul_fq(p, a), curve_.mul_fq(p, b));
    EXPECT_EQ(lhs, rhs);
  }
}

TEST_F(CurveTest, ScalarMulComposes) {
  const auto p = curve_.random_point(rng_);
  const auto& fq = curve_.fq();
  const Fq a = fq.random(rng_);
  const Fq b = fq.random(rng_);
  EXPECT_EQ(curve_.mul_fq(curve_.mul_fq(p, a), b),
            curve_.mul_fq(p, fq.mul(a, b)));
}

TEST_F(CurveTest, RandomPointsHaveOrderQ) {
  for (int i = 0; i < 3; ++i) {
    const auto p = curve_.random_point(rng_);
    EXPECT_TRUE(curve_.on_curve(p));
    EXPECT_FALSE(p.inf);
    EXPECT_TRUE(curve_.mul(p, curve_.params().q).inf);
  }
}

TEST_F(CurveTest, MsmMatchesNaive) {
  const auto& fq = curve_.fq();
  std::vector<AffinePoint> pts;
  std::vector<Fq> ks;
  for (int i = 0; i < 4; ++i) {
    pts.push_back(curve_.random_point(rng_));
    ks.push_back(fq.random(rng_));
  }
  AffinePoint expect = AffinePoint::infinity();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    expect = curve_.add(expect, curve_.mul_fq(pts[i], ks[i]));
  }
  EXPECT_EQ(curve_.msm(pts, ks), expect);
}

TEST_F(CurveTest, MsmEmptyIsInfinity) {
  EXPECT_TRUE(curve_.msm({}, {}).inf);
}

TEST_F(CurveTest, MsmSizeMismatchThrows) {
  EXPECT_THROW((void)curve_.msm({curve_.generator()}, {}),
               std::invalid_argument);
}

TEST_F(CurveTest, HashToPointDeterministicOrderQ) {
  const auto p1 = curve_.hash_to_point("alice");
  const auto p2 = curve_.hash_to_point("alice");
  const auto p3 = curve_.hash_to_point("bob");
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1, p3);
  EXPECT_TRUE(curve_.on_curve(p1));
  EXPECT_TRUE(curve_.mul(p1, curve_.params().q).inf);
}

TEST_F(CurveTest, SerializeRoundTrip) {
  for (int i = 0; i < 5; ++i) {
    const auto p = curve_.random_point(rng_);
    std::array<std::uint8_t, Curve::kCompressedSize> buf{};
    curve_.serialize(p, buf);
    EXPECT_EQ(curve_.deserialize(buf), p);
  }
  // Infinity round-trips too.
  std::array<std::uint8_t, Curve::kCompressedSize> buf{};
  curve_.serialize(AffinePoint::infinity(), buf);
  EXPECT_TRUE(curve_.deserialize(buf).inf);
}

TEST_F(CurveTest, SerializedSizeMatchesPaper) {
  // The paper's size accounting uses 65-byte compressed group elements.
  EXPECT_EQ(Curve::kCompressedSize, 65u);
}

TEST_F(CurveTest, DeserializeRejectsGarbage) {
  std::array<std::uint8_t, Curve::kCompressedSize> buf{};
  buf[0] = 9;  // invalid tag
  EXPECT_THROW((void)curve_.deserialize(buf), std::invalid_argument);
  // x >= p
  buf[0] = 2;
  for (std::size_t i = 1; i < buf.size(); ++i) buf[i] = 0xFF;
  EXPECT_THROW((void)curve_.deserialize(buf), std::invalid_argument);
}


TEST_F(CurveTest, JacAddMatchesMixed) {
  const auto p = curve_.random_point(rng_);
  const auto q = curve_.random_point(rng_);
  // Randomize Z coordinates by scaling.
  const auto jp = curve_.to_jac(p);
  const auto jq = curve_.to_jac(q);
  EXPECT_EQ(curve_.to_affine(curve_.jac_add(jp, jq)), curve_.add(p, q));
  // Doubling case and identity cases.
  EXPECT_EQ(curve_.to_affine(curve_.jac_add(jp, jp)), curve_.dbl(p));
  const JacPoint inf = curve_.to_jac(AffinePoint::infinity());
  EXPECT_EQ(curve_.to_affine(curve_.jac_add(jp, inf)), p);
  EXPECT_EQ(curve_.to_affine(curve_.jac_add(inf, jq)), q);
  // Inverse case.
  const auto jnq = curve_.to_jac(curve_.neg(q));
  EXPECT_TRUE(curve_.jac_add(jq, jnq).is_infinity());
}

TEST_F(CurveTest, BatchNormalizeMatchesToAffine) {
  std::vector<JacPoint> pts;
  pts.push_back(curve_.to_jac(AffinePoint::infinity()));
  for (int i = 0; i < 5; ++i) {
    auto j = curve_.to_jac(curve_.random_point(rng_));
    // Un-normalize: scale by a random Z.
    const Fp z = curve_.fp().random(rng_);
    if (!z.is_zero()) {
      const Fp z2 = curve_.fp().sqr(z);
      j = {curve_.fp().mul(j.X, z2),
           curve_.fp().mul(j.Y, curve_.fp().mul(z2, z)),
           curve_.fp().mul(j.Z, z)};
    }
    pts.push_back(j);
  }
  const auto affine = curve_.batch_normalize(pts);
  ASSERT_EQ(affine.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(affine[i], curve_.to_affine(pts[i])) << i;
  }
}

TEST_F(CurveTest, MulBaseMatchesGenericLadder) {
  const auto& fq = curve_.fq();
  EXPECT_TRUE(curve_.mul_base(FqInt::zero()).inf);
  EXPECT_EQ(curve_.mul_base(FqInt{1}), curve_.generator());
  for (int i = 0; i < 10; ++i) {
    const Fq k = fq.random(rng_);
    EXPECT_EQ(curve_.mul_base_fq(k), curve_.mul_fq(curve_.generator(), k));
  }
  // Small scalars exercise single-window lookups.
  for (std::uint64_t k : {2ull, 255ull, 256ull, 65535ull}) {
    EXPECT_EQ(curve_.mul_base(FqInt{k}), curve_.mul(curve_.generator(), FqInt{k}))
        << k;
  }
}

TEST_F(CurveTest, GenerateFreshParamsSmall) {
  // Full generation is exercised by tools/gen_params; here make sure a
  // fresh (deterministic) generation validates end to end.
  ChaChaRng rng("fresh-params");
  const auto params = generate_type_a(rng);
  ChaChaRng rng2("fresh-params-check");
  EXPECT_NO_THROW(validate_params(params, rng2));
  EXPECT_NE(params.q, default_type_a_params().q);
}

TEST_F(CurveTest, RejectsBadGenerator) {
  auto params = default_type_a_params();
  params.gy = params.gx;  // almost surely not on curve
  EXPECT_THROW(Curve c(params), std::invalid_argument);
}

}  // namespace
}  // namespace apks
