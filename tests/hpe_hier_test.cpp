// Tests for the hierarchical-format HPE variant: format enforcement,
// correctness along the delegation path, and the key-size saving over the
// general-delegation scheme.
#include <gtest/gtest.h>

#include "hpe/hpe_hier.h"

namespace apks {
namespace {

class HpeHierTest : public ::testing::Test {
 protected:
  // Format (2, 3, 2): three blocks, n = 7.
  HpeHierTest()
      : e_(default_type_a_params()),
        scheme_(e_, HierFormat{{2, 3, 2}}),
        fq_(e_.fq()),
        rng_("hpe-hier") {
    scheme_.setup(rng_, pk_, msk_);
    msg_ = e_.gt_random(rng_);
  }

  // Block-supported vector with given nonzero entries (offset, value).
  std::vector<Fq> block_vec(std::size_t lo, std::size_t hi) {
    std::vector<Fq> v(scheme_.n(), fq_.zero());
    for (std::size_t i = lo; i < hi; ++i) v[i] = fq_.random_nonzero(rng_);
    return v;
  }

  // x orthogonal to all given block vectors: since blocks are disjoint,
  // solve each block independently (zero the last block coordinate).
  std::vector<Fq> orthogonal_to_all(const std::vector<std::vector<Fq>>& vs) {
    std::vector<Fq> x(scheme_.n(), fq_.zero());
    for (std::size_t i = 0; i < scheme_.n(); ++i) x[i] = fq_.random(rng_);
    for (const auto& v : vs) {
      // Find the last nonzero coordinate of v, solve x there.
      std::size_t pivot = scheme_.n();
      for (std::size_t i = 0; i < scheme_.n(); ++i) {
        if (!v[i].is_zero()) pivot = i;
      }
      Fq acc = fq_.zero();
      for (std::size_t i = 0; i < scheme_.n(); ++i) {
        if (i == pivot || v[i].is_zero()) continue;
        acc = fq_.add(acc, fq_.mul(x[i], v[i]));
      }
      x[pivot] = fq_.neg(fq_.mul(acc, fq_.inv(v[pivot])));
      EXPECT_TRUE(inner_product(fq_, x, v).is_zero());
    }
    return x;
  }

  Pairing e_;
  HpeHierarchical scheme_;
  const FqField& fq_;
  ChaChaRng rng_;
  HpePublicKey pk_;
  HpeMasterKey msk_;
  GtEl msg_;
};

TEST_F(HpeHierTest, FormatOffsets) {
  const HierFormat f{{2, 3, 2}};
  EXPECT_EQ(f.n(), 7u);
  EXPECT_EQ(f.levels(), 3u);
  EXPECT_EQ(f.block_offset(1), 0u);
  EXPECT_EQ(f.block_offset(2), 2u);
  EXPECT_EQ(f.block_offset(3), 5u);
  EXPECT_EQ(f.block_offset(4), 7u);
  EXPECT_THROW((void)f.block_offset(0), std::invalid_argument);
  EXPECT_THROW((void)f.block_offset(5), std::invalid_argument);
}

TEST_F(HpeHierTest, Level1MatchAndMismatch) {
  const auto v1 = block_vec(0, 2);
  const auto key = scheme_.gen_key(msk_, v1, rng_);
  EXPECT_EQ(key.level, 1u);
  EXPECT_EQ(key.del.size(), 5u);  // blocks 2 and 3 only
  const auto x = orthogonal_to_all({v1});
  EXPECT_EQ(scheme_.decrypt(scheme_.encrypt(pk_, x, msg_, rng_), key), msg_);
  std::vector<Fq> y(scheme_.n());
  for (auto& c : y) c = fq_.random(rng_);
  if (!inner_product(fq_, y, v1).is_zero()) {
    EXPECT_NE(scheme_.decrypt(scheme_.encrypt(pk_, y, msg_, rng_), key),
              msg_);
  }
}

TEST_F(HpeHierTest, FullDelegationChain) {
  const auto v1 = block_vec(0, 2);
  const auto v2 = block_vec(2, 5);
  const auto v3 = block_vec(5, 7);
  const auto k1 = scheme_.gen_key(msk_, v1, rng_);
  const auto k2 = scheme_.delegate(k1, v2, rng_);
  const auto k3 = scheme_.delegate(k2, v3, rng_);
  EXPECT_EQ(k2.level, 2u);
  EXPECT_EQ(k2.del.size(), 2u);  // only block 3 left
  EXPECT_EQ(k3.level, 3u);
  EXPECT_TRUE(k3.del.empty());   // format exhausted: no further delegation
  EXPECT_THROW((void)scheme_.delegate(k3, v3, rng_), std::invalid_argument);

  // x satisfying all three blocks: every level matches.
  const auto x = orthogonal_to_all({v1, v2, v3});
  const auto ct = scheme_.encrypt(pk_, x, msg_, rng_);
  EXPECT_EQ(scheme_.decrypt(ct, k1), msg_);
  EXPECT_EQ(scheme_.decrypt(ct, k2), msg_);
  EXPECT_EQ(scheme_.decrypt(ct, k3), msg_);

  // x satisfying only blocks 1-2: k3 must reject.
  auto y = orthogonal_to_all({v1, v2});
  if (!inner_product(fq_, y, v3).is_zero()) {
    const auto ct2 = scheme_.encrypt(pk_, y, msg_, rng_);
    EXPECT_EQ(scheme_.decrypt(ct2, k2), msg_);
    EXPECT_NE(scheme_.decrypt(ct2, k3), msg_);
  }
}

TEST_F(HpeHierTest, FormatViolationsRejected) {
  // Level-1 vector touching block 2.
  auto bad = block_vec(0, 2);
  bad[3] = fq_.one();
  EXPECT_THROW((void)scheme_.gen_key(msk_, bad, rng_), std::invalid_argument);
  // Zero block.
  std::vector<Fq> zero(scheme_.n(), fq_.zero());
  EXPECT_THROW((void)scheme_.gen_key(msk_, zero, rng_),
               std::invalid_argument);
  // Delegation with a vector on the wrong block.
  const auto k1 = scheme_.gen_key(msk_, block_vec(0, 2), rng_);
  EXPECT_THROW((void)scheme_.delegate(k1, block_vec(5, 7), rng_),
               std::invalid_argument);
  // Malformed constructions.
  EXPECT_THROW(HpeHierarchical(e_, HierFormat{{}}), std::invalid_argument);
  EXPECT_THROW(HpeHierarchical(e_, HierFormat{{2, 0}}),
               std::invalid_argument);
}

TEST_F(HpeHierTest, SmallerKeysThanGeneralScheme) {
  // The general scheme's level-1 key carries n delegation components; the
  // hierarchical one only n - d_1.
  const Hpe general(e_, scheme_.n());
  HpePublicKey gpk;
  HpeMasterKey gmsk;
  general.setup(rng_, gpk, gmsk);
  std::vector<Fq> v(scheme_.n(), fq_.zero());
  v[0] = fq_.one();
  v[1] = fq_.one();
  const auto gkey = general.gen_key(gmsk, v, rng_);
  const auto hkey = scheme_.gen_key(msk_, v, rng_);
  EXPECT_EQ(gkey.del.size(), scheme_.n());
  EXPECT_LT(hkey.del.size(), gkey.del.size());
}

}  // namespace
}  // namespace apks
