// Tests for the ChaCha20 deterministic generator and rejection sampling.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "common/hex.h"
#include "common/rng.h"

namespace apks {
namespace {

TEST(ChaChaRng, Rfc8439KeystreamBlock) {
  // RFC 8439 section 2.3.2 test vector uses a specific key/nonce/counter;
  // our RNG fixes nonce=0 and counter=0, so instead verify the all-zero-key
  // stream is deterministic and matches itself across instances.
  std::array<std::uint8_t, 32> seed{};
  ChaChaRng a(seed), b(seed);
  std::array<std::uint8_t, 128> s1{}, s2{};
  a.fill(s1);
  b.fill(s2);
  EXPECT_EQ(s1, s2);
  // And is not all zeros (the block function actually ran).
  EXPECT_TRUE(std::any_of(s1.begin(), s1.end(),
                          [](std::uint8_t v) { return v != 0; }));
}

TEST(ChaChaRng, DifferentSeedsDiverge) {
  ChaChaRng a("seed-a"), b("seed-b");
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(ChaChaRng, SameLabelSameStream) {
  ChaChaRng a("label", 7), b("label", 7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  ChaChaRng c("label", 8);
  EXPECT_NE(ChaChaRng("label", 7).next_u64(), c.next_u64());
}

TEST(ChaChaRng, UnalignedFills) {
  ChaChaRng a("unaligned"), b("unaligned");
  std::vector<std::uint8_t> one(200), parts(200);
  a.fill(one);
  b.fill(std::span<std::uint8_t>(parts.data(), 3));
  b.fill(std::span<std::uint8_t>(parts.data() + 3, 64));
  b.fill(std::span<std::uint8_t>(parts.data() + 67, 133));
  EXPECT_EQ(one, parts);
}

TEST(Rng, NextBelowInRangeAndCoversValues) {
  ChaChaRng rng("below");
  std::array<int, 10> seen{};
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    seen[v]++;
  }
  for (int i = 0; i < 10; ++i) EXPECT_GT(seen[static_cast<std::size_t>(i)], 0) << i;
}

TEST(Rng, NextBelowOneIsZero) {
  ChaChaRng rng("one");
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(SystemRng, ProducesBytes) {
  SystemRng rng;
  std::array<std::uint8_t, 32> a{}, b{};
  rng.fill(a);
  rng.fill(b);
  EXPECT_NE(a, b);  // astronomically unlikely to collide
}

}  // namespace
}  // namespace apks
