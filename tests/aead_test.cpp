// RFC 8439 known-answer tests for ChaCha20, Poly1305 and the AEAD, plus
// document-store behaviour.
#include <gtest/gtest.h>

#include "cloud/docstore.h"
#include "common/chacha.h"
#include "common/hex.h"

namespace apks {
namespace {

std::array<std::uint8_t, 32> key32(std::string_view hexstr) {
  const auto v = hex_decode(hexstr);
  std::array<std::uint8_t, 32> k{};
  std::copy(v.begin(), v.end(), k.begin());
  return k;
}

std::array<std::uint8_t, 12> nonce12(std::string_view hexstr) {
  const auto v = hex_decode(hexstr);
  std::array<std::uint8_t, 12> n{};
  std::copy(v.begin(), v.end(), n.begin());
  return n;
}

TEST(ChaCha20, Rfc8439BlockVector) {
  // RFC 8439 section 2.3.2.
  const auto key = key32(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const auto nonce = nonce12("000000090000004a00000000");
  std::array<std::uint8_t, 64> block{};
  chacha20_block(key, 1, nonce, block);
  EXPECT_EQ(hex_encode(block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439EncryptionVector) {
  // RFC 8439 section 2.4.2.
  const auto key = key32(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const auto nonce = nonce12("000000000000004a00000000");
  std::string msg =
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.";
  std::vector<std::uint8_t> data(msg.begin(), msg.end());
  chacha20_xor(key, 1, nonce, data);
  EXPECT_EQ(hex_encode(std::span<const std::uint8_t>(data.data(), 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
  // Round-trips.
  chacha20_xor(key, 1, nonce, data);
  EXPECT_EQ(std::string(data.begin(), data.end()), msg);
}

TEST(Poly1305, Rfc8439Vector) {
  // RFC 8439 section 2.5.2.
  const auto key = key32(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  const std::string msg = "Cryptographic Forum Research Group";
  const auto tag = poly1305(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(hex_encode(tag), "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Aead, Rfc8439SealVector) {
  // RFC 8439 section 2.8.2.
  const auto key = key32(
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  const auto nonce = nonce12("070000004041424344454647");
  const auto aad = hex_decode("50515253c0c1c2c3c4c5c6c7");
  const std::string msg =
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.";
  const auto sealed = aead_seal(
      key, nonce, aad,
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  ASSERT_EQ(sealed.size(), msg.size() + kAeadTagSize);
  EXPECT_EQ(hex_encode(std::span<const std::uint8_t>(
                sealed.data() + sealed.size() - 16, 16)),
            "1ae10b594f09e26a7e902ecbd0600691");
  // And opens again.
  const auto opened = aead_open(key, nonce, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(std::string(opened->begin(), opened->end()), msg);
}

TEST(Aead, RejectsTampering) {
  ChaChaRng rng("aead");
  std::array<std::uint8_t, kAeadKeySize> key{};
  std::array<std::uint8_t, kAeadNonceSize> nonce{};
  rng.fill(key);
  rng.fill(nonce);
  const std::vector<std::uint8_t> aad{1, 2, 3};
  const std::vector<std::uint8_t> pt{9, 8, 7, 6, 5};
  auto sealed = aead_seal(key, nonce, aad, pt);
  // Flip a ciphertext bit.
  auto bad = sealed;
  bad[0] ^= 1;
  EXPECT_FALSE(aead_open(key, nonce, aad, bad).has_value());
  // Flip a tag bit.
  bad = sealed;
  bad.back() ^= 1;
  EXPECT_FALSE(aead_open(key, nonce, aad, bad).has_value());
  // Wrong AAD.
  EXPECT_FALSE(aead_open(key, nonce, pt, sealed).has_value());
  // Too short.
  EXPECT_FALSE(aead_open(key, nonce, aad,
                         std::span<const std::uint8_t>(sealed.data(), 8))
                   .has_value());
  // Original still opens.
  EXPECT_TRUE(aead_open(key, nonce, aad, sealed).has_value());
}

TEST(Aead, EmptyPlaintextAndAad) {
  std::array<std::uint8_t, kAeadKeySize> key{};
  std::array<std::uint8_t, kAeadNonceSize> nonce{};
  const auto sealed = aead_seal(key, nonce, {}, {});
  EXPECT_EQ(sealed.size(), kAeadTagSize);
  const auto opened = aead_open(key, nonce, {}, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST(DocumentStore, PutGetRoundTrip) {
  ChaChaRng rng("docstore");
  DocumentStore store;
  const auto key = DocumentKey::random(rng);
  store.put("phr-bob", key, "blood glucose 7.2 mmol/L", rng);
  EXPECT_EQ(store.size(), 1u);
  const auto text = store.get_text("phr-bob", key);
  ASSERT_TRUE(text.has_value());
  EXPECT_EQ(*text, "blood glucose 7.2 mmol/L");
}

TEST(DocumentStore, WrongKeyOrRefFails) {
  ChaChaRng rng("docstore2");
  DocumentStore store;
  const auto key = DocumentKey::random(rng);
  const auto other = DocumentKey::random(rng);
  store.put("doc", key, "secret", rng);
  EXPECT_FALSE(store.get("doc", other).has_value());
  EXPECT_FALSE(store.get("nope", key).has_value());
}

TEST(DocumentStore, CloudTamperingDetected) {
  ChaChaRng rng("docstore3");
  DocumentStore store;
  const auto key = DocumentKey::random(rng);
  store.put("doc", key, "secret", rng);
  auto* blob = store.find("doc");
  ASSERT_NE(blob, nullptr);
  blob->sealed[0] ^= 0xFF;
  EXPECT_FALSE(store.get("doc", key).has_value());
}

}  // namespace
}  // namespace apks
