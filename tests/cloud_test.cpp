// Integration tests for the cloud server and proxy pipeline: the complete
// multi-owner / multi-user protocol of the paper's Figs. 1 and 6.
#include <gtest/gtest.h>

#include "cloud/proxy.h"
#include "cloud/server.h"
#include "data/phr.h"

namespace apks {
namespace {

Schema small_schema() {
  return Schema({{"illness", nullptr, 2},
                 {"sex", nullptr, 1},
                 {"provider", nullptr, 1}});
}

Query q3(QueryTerm a = QueryTerm::any(), QueryTerm b = QueryTerm::any(),
         QueryTerm c = QueryTerm::any()) {
  return Query{{std::move(a), std::move(b), std::move(c)}};
}

class CloudTest : public ::testing::Test {
 protected:
  CloudTest()
      : e_(default_type_a_params()),
        apks_(e_, small_schema()),
        rng_("cloud-test"),
        ta_(apks_, rng_) {
    lta_ = ta_.make_lta("hospital-A",
                        q3(QueryTerm::any(), QueryTerm::any(),
                           QueryTerm::equals("Hospital A")),
                        rng_);
    UserAttributes peter;
    peter.values["illness"] = {"Diabetes"};
    peter.values["sex"] = {"Male"};
    peter.values["provider"] = {"Hospital A"};
    lta_->register_user("peter", peter);

    CapabilityVerifier verifier(e_, ta_.ibs_params());
    verifier.register_authority("hospital-A");
    server_ = std::make_unique<CloudServer>(apks_, std::move(verifier));

    // Multiple owners upload.
    store({"Diabetes", "Male", "Hospital A"}, "doc-bob");
    store({"Diabetes", "Female", "Hospital A"}, "doc-carol");
    store({"Flu", "Male", "Hospital A"}, "doc-dave");
    store({"Diabetes", "Male", "Hospital B"}, "doc-erin");
  }

  void store(std::vector<std::string> values, std::string ref) {
    (void)server_->store(
        apks_.gen_index(ta_.public_key(), PlainIndex{std::move(values)}, rng_),
        std::move(ref));
  }

  Pairing e_;
  Apks apks_;
  ChaChaRng rng_;
  TrustedAuthority ta_;
  std::unique_ptr<LocalAuthority> lta_;
  std::unique_ptr<CloudServer> server_;
};

TEST_F(CloudTest, AuthorizedSearchReturnsMatchingDocs) {
  const auto cap = lta_->delegate_for_user(
      "peter", q3(QueryTerm::equals("Diabetes")), rng_);
  ASSERT_TRUE(cap.has_value());
  CloudServer::SearchStats stats;
  const auto docs = server_->search(*cap, &stats);
  EXPECT_TRUE(stats.authorized);
  EXPECT_EQ(stats.scanned, 4u);
  // Diabetes at Hospital A: bob and carol, not dave (flu) or erin (B).
  ASSERT_EQ(docs.size(), 2u);
  EXPECT_EQ(stats.matched, 2u);
  EXPECT_NE(std::find(docs.begin(), docs.end(), "doc-bob"), docs.end());
  EXPECT_NE(std::find(docs.begin(), docs.end(), "doc-carol"), docs.end());
}

TEST_F(CloudTest, UnsignedOrForgedCapabilityRejected) {
  // Capability minted by an unregistered authority ("TA" not registered).
  const auto rogue = ta_.issue(q3(), rng_);
  CloudServer::SearchStats stats;
  const auto docs = server_->search(rogue, &stats);
  EXPECT_FALSE(stats.authorized);
  EXPECT_TRUE(docs.empty());
  EXPECT_EQ(stats.scanned, 0u);
}

TEST_F(CloudTest, RecordCountGrows) {
  EXPECT_EQ(server_->record_count(), 4u);
  store({"Flu", "Female", "Hospital A"}, "doc-fay");
  EXPECT_EQ(server_->record_count(), 5u);
}

class CloudPlusTest : public ::testing::Test {
 protected:
  CloudPlusTest()
      : e_(default_type_a_params()),
        apks_(e_, small_schema()),
        rng_("cloud-plus-test") {
    setup_ = apks_.setup_plus(rng_);
    pipeline_ = std::make_unique<ProxyPipeline>(
        make_proxy_pipeline(apks_, setup_.r, 2, rng_));
  }

  Pairing e_;
  ApksPlus apks_;
  ChaChaRng rng_;
  ApksPlusSetupResult setup_;
  std::unique_ptr<ProxyPipeline> pipeline_;
};

TEST_F(CloudPlusTest, PipelineProducesSearchableIndexes) {
  const auto cap = apks_.gen_cap(setup_.msk,
                                 q3(QueryTerm::equals("Diabetes")), rng_);
  auto enc = apks_.partial_gen_index(
      setup_.pk, PlainIndex{{"Diabetes", "Male", "Hospital A"}}, rng_);
  EXPECT_FALSE(apks_.search(cap, enc));
  enc = pipeline_->process(enc);
  EXPECT_TRUE(apks_.search(cap, enc));
}

TEST_F(CloudPlusTest, RateLimitStopsProbeResponse) {
  ProxyServer limited(apks_, setup_.r, /*rate_limit=*/2);
  auto enc = apks_.partial_gen_index(
      setup_.pk, PlainIndex{{"Flu", "Male", "Hospital A"}}, rng_);
  (void)limited.transform(enc);
  (void)limited.transform(enc);
  EXPECT_EQ(limited.transformed_count(), 2u);
  EXPECT_THROW((void)limited.transform(enc), std::runtime_error);
}

}  // namespace
}  // namespace apks
