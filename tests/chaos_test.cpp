// Chaos suite: randomized, seeded fault schedules driven through the
// failpoint framework (common/failpoint.h).
//
//  - Store chaos: 100 seeded schedules of injected EIO/ENOSPC/short-write
//    faults over ingest -> crash -> recover cycles of an IndexStore,
//    asserting after every recovery that no acknowledged record is lost,
//    none is invented, and bytes/order match what a fault-free twin holds.
//  - Proxy chaos: APKS+ uploads through the ResilientProxyPipeline with
//    replicas killed mid-run — failover keeps transformed ciphertexts
//    byte-identical to the fault-free chain, parked uploads drain after
//    recovery with zero loss and byte-identical post-recovery search,
//    the strict path refunds budgets and throws typed errors, and the
//    per-replica circuit breaker opens/probes/closes.
//  - Serving chaos: per-query deadlines and cancellation stop the scan at
//    block boundaries (typed errors, partial-result mode) and admission
//    control sheds batches beyond max_inflight with Overloaded.
//  - Network chaos: torn frames, mid-search client disconnects, slow
//    clients and injected accept/read/write faults against a live
//    NetServer — a dying client must never leak an inflight slot or
//    poison the engine for the sessions that follow.
//
// Every schedule is deterministic: faults fire from seeded splitmix64
// streams and breaker cooldowns are measured in pipeline operations, so a
// failing seed replays exactly.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string_view>
#include <thread>

#include "cloud/proxy.h"
#include "cloud/proxy_pool.h"
#include "cloud/search_engine.h"
#include "cloud/server.h"
#include "common/failpoint.h"
#include "core/apks_backend.h"
#include "core/apks_plus.h"
#include "core/serialize_apks.h"
#include "data/nursery.h"
#include "data/workload.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "store/fs.h"
#include "store/index_store.h"
#include "store/sharded_store.h"

namespace apks {
namespace {

namespace fs = std::filesystem;

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Failpoints are process-global: every chaos test starts and ends clean.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::instance().clear_all();
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("apks-chaos-") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    Failpoints::instance().clear_all();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

// --- Store chaos ------------------------------------------------------------

std::vector<std::uint8_t> random_payload(std::uint64_t& rng) {
  std::vector<std::uint8_t> payload(8 + splitmix64(rng) % 64);
  for (auto& b : payload) b = static_cast<std::uint8_t>(splitmix64(rng));
  return payload;
}

std::vector<std::vector<std::uint8_t>> all_records(IndexStore& store) {
  std::vector<std::vector<std::uint8_t>> got;
  store.for_each([&](std::span<const std::uint8_t> payload) {
    got.emplace_back(payload.begin(), payload.end());
  });
  return got;
}

// One hundred seeded ingest -> fault -> crash -> recover schedules. The
// invariant after every recovery: the store holds every acknowledged
// record, in order, byte-identical — plus at most the one record that was
// in flight when the fault hit (its commit raced the fault; either way the
// recovered frame chain is intact).
TEST_F(ChaosTest, HundredSeededStoreFaultSchedules) {
  constexpr int kSeeds = 100;
  constexpr int kOpsPerSeed = 30;
  const std::array<std::string_view, 5> sites = {
      storefs::kSiteWrite, storefs::kSiteFlush, storefs::kSiteFsync,
      storefs::kSiteRename, storefs::kSiteDirsync};

  IndexStoreOptions opts;
  opts.segment_max_bytes = 256;  // rotate often: manifests in the blast zone

  for (int seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const fs::path d = dir_ / ("seed-" + std::to_string(seed));
    std::uint64_t rng =
        static_cast<std::uint64_t>(seed) * std::uint64_t{0x9e3779b9} + 1;

    std::vector<std::vector<std::uint8_t>> acked;  // fault-free twin content
    auto store = std::make_unique<IndexStore>(d, /*shard_id=*/0, opts);

    for (int op = 0; op < kOpsPerSeed; ++op) {
      const std::vector<std::uint8_t> payload = random_payload(rng);
      if (splitmix64(rng) % 3 == 0) {
        // Arm a one-shot fault somewhere in the store's syscall surface.
        FailpointPolicy p;
        p.max_hits = 1;
        const std::string_view site = sites[splitmix64(rng) % sites.size()];
        if (site == storefs::kSiteWrite && splitmix64(rng) % 2 == 0) {
          p.action = FailAction::kShortWrite;
          p.short_bytes = splitmix64(rng) % (payload.size() + 8);
        } else {
          p.action = FailAction::kError;
          p.error_code = splitmix64(rng) % 2 == 0 ? EIO : ENOSPC;
        }
        Failpoints::instance().set(site, p);
      }

      try {
        store->put(payload);
        store->sync();
        acked.push_back(payload);
      } catch (const StoreError&) {
        // The writer is poisoned mid-frame: hard-crash it (the destructor
        // abandons, no graceful close) and run recovery, exactly as a
        // restarted process would.
        Failpoints::instance().clear_all();
        store.reset();
        store = std::make_unique<IndexStore>(d, /*shard_id=*/0, opts);
        const auto got = all_records(*store);
        ASSERT_GE(got.size(), acked.size()) << "acknowledged record lost";
        ASSERT_LE(got.size(), acked.size() + 1) << "record invented";
        for (std::size_t i = 0; i < acked.size(); ++i) {
          ASSERT_EQ(got[i], acked[i]) << "record " << i << " bytes differ";
        }
        // The in-flight record's fate resolved at recovery: whatever the
        // store committed is what a restarted server serves from now on.
        acked = got;
      }
      Failpoints::instance().clear_all();
    }

    // Final restart with no faults: byte-identical to the twin.
    store.reset();
    store = std::make_unique<IndexStore>(d, /*shard_id=*/0, opts);
    EXPECT_EQ(all_records(*store), acked);
    EXPECT_EQ(store->record_count(), acked.size());
  }
}

// --- APKS+ proxy chaos ------------------------------------------------------

// The pairing/scheme setup and the owner-side partial ciphertexts are
// expensive; build them once and share them across the proxy and serving
// chaos tests (all of which treat them as read-mostly inputs).
struct PlusEnv {
  Pairing e;
  ApksPlus plus;
  ChaChaRng rng;
  ApksPlusSetupResult setup;
  TrustedAuthority ta;
  CapabilityVerifier verifier;
  std::vector<Fq> shares;                // r = shares[0]*shares[1]*shares[2]
  std::vector<EncryptedIndex> partials;  // owner uploads (pre-proxy)
  std::vector<std::string> refs;
  std::vector<EncryptedIndex> expected;  // fault-free fully transformed
  std::vector<std::vector<std::uint8_t>> expected_bytes;

  PlusEnv()
      : e(default_type_a_params()),
        plus(e, nursery_schema(1)),
        rng("chaos-plus"),
        setup(plus.setup_plus(rng)),
        ta(plus, setup.pk, setup.msk, rng),
        verifier(e, ta.ibs_params()) {
    verifier.register_authority("TA");
    shares = plus.split_secret(setup.r, 3, rng);
    const std::vector<PlainIndex> rows = nursery_rows();
    ProxyPipeline reference;
    for (const Fq& share : shares) reference.add(ProxyServer(plus, share));
    for (std::size_t i = 0; i < 4; ++i) {
      partials.push_back(plus.partial_gen_index(
          setup.pk, rows[(i * 1201) % rows.size()], rng));
      refs.push_back("row-" + std::to_string(i));
      expected.push_back(reference.process(partials[i]));
      expected_bytes.push_back(serialize_index(e, expected.back()));
    }
  }

  [[nodiscard]] const PlainIndex& target_row() const {
    static const std::vector<PlainIndex> rows = nursery_rows();
    return rows[1201 % rows.size()];  // the row behind partials[1]
  }
};

PlusEnv& plus_env() {
  static PlusEnv* env = new PlusEnv();
  return *env;
}

// A dead replica is invisible to uploads: the pool fails over to the
// share's live replica, and the output bytes are identical to the
// fault-free chain (shares commute; each replica holds the same r_i).
TEST_F(ChaosTest, ProxyFailoverKeepsTransformBytesIdentical) {
  PlusEnv& env = plus_env();
  ProxyPoolOptions opts;
  opts.replicas = 2;
  opts.breaker_threshold = 0;  // keep retrying the dead replica every op
  ResilientProxyPipeline pool(env.plus, env.shares, opts);

  FailpointPolicy dead;
  dead.action = FailAction::kThrow;
  Failpoints::instance().set("proxy.s1.r0", dead);  // kill share 1, replica 0

  for (std::size_t i = 0; i < env.partials.size(); ++i) {
    const auto out = pool.process(env.partials[i], env.refs[i]);
    ASSERT_TRUE(out.has_value()) << "upload " << i << " parked unexpectedly";
    EXPECT_EQ(serialize_index(env.e, *out), env.expected_bytes[i])
        << "upload " << i;
  }
  const ProxyPoolStats stats = pool.stats();
  EXPECT_EQ(stats.transformed, env.partials.size());
  EXPECT_EQ(stats.parked, 0u);
  EXPECT_EQ(stats.failovers, env.partials.size());  // s1.r0 -> s1.r1 each op
  EXPECT_EQ(stats.retries, env.partials.size());
}

// With every replica of one share dead, uploads park (progress on the
// other shares retained — shares commute) and drain after recovery. Zero
// indexes lost, and a server fed by the drained pool serves byte-identical
// results — same doc_refs, same order, same SearchStats — as a fault-free
// twin.
TEST_F(ChaosTest, ParkedUploadsDrainAfterRecoveryWithZeroLoss) {
  PlusEnv& env = plus_env();
  ProxyPoolOptions opts;
  opts.replicas = 1;  // single replica: killing it takes the share down
  opts.parking_capacity = 8;
  // The repeated parking failures would trip the dead replica's breaker and
  // stagger the drain across cooldown windows; this test isolates the
  // parking semantics (the breaker has its own test below).
  opts.breaker_threshold = 0;
  ResilientProxyPipeline pool(env.plus, env.shares, opts);

  ApksPlusBackend backend(env.plus);
  CloudServer faulty(backend, env.verifier);
  CloudServer twin(backend, env.verifier);

  FailpointPolicy dead;
  dead.action = FailAction::kThrow;
  Failpoints::instance().set("proxy.s1.r0", dead);

  for (std::size_t i = 0; i < env.partials.size(); ++i) {
    const auto out = pool.process(env.partials[i], env.refs[i]);
    EXPECT_FALSE(out.has_value()) << "share 1 is down; upload must park";
  }
  EXPECT_EQ(pool.parked_count(), env.partials.size());

  // Still down: drain completes nothing and loses nothing.
  EXPECT_EQ(pool.drain([](const std::string&, EncryptedIndex) {
    FAIL() << "nothing can complete while share 1 is down";
  }),
            0u);
  EXPECT_EQ(pool.parked_count(), env.partials.size());

  // Replica recovers: every parked upload completes, in FIFO order.
  Failpoints::instance().clear_all();
  const std::size_t drained =
      pool.drain([&](const std::string& tag, EncryptedIndex transformed) {
        (void)faulty.store(std::move(transformed), tag);
      });
  EXPECT_EQ(drained, env.partials.size());
  EXPECT_EQ(pool.parked_count(), 0u);
  EXPECT_EQ(faulty.record_count(), env.partials.size());
  const ProxyPoolStats stats = pool.stats();
  EXPECT_EQ(stats.parked, env.partials.size());
  EXPECT_EQ(stats.drained, env.partials.size());
  EXPECT_EQ(stats.transformed, env.partials.size());
  EXPECT_EQ(stats.rejected, 0u);

  // Fault-free twin ingests the same uploads in the same order.
  for (std::size_t i = 0; i < env.partials.size(); ++i) {
    (void)twin.store(env.expected[i], env.refs[i]);
  }

  const SignedCapability cap =
      env.ta.issue(nursery_point_query(env.target_row()), env.rng);
  CloudServer::SearchStats faulty_stats;
  CloudServer::SearchStats twin_stats;
  const auto faulty_hits = faulty.search(cap, &faulty_stats);
  const auto twin_hits = twin.search(cap, &twin_stats);
  ASSERT_FALSE(twin_hits.empty());
  EXPECT_EQ(faulty_hits, twin_hits);
  EXPECT_EQ(faulty_stats.authorized, twin_stats.authorized);
  EXPECT_EQ(faulty_stats.scanned, twin_stats.scanned);
  EXPECT_EQ(faulty_stats.matched, twin_stats.matched);
}

// A park beyond the queue bound is refused with the typed error, not
// silently dropped; the uploads already parked stay safe.
TEST_F(ChaosTest, FullParkingQueueRejectsWithProxyUnavailable) {
  PlusEnv& env = plus_env();
  ProxyPoolOptions opts;
  opts.replicas = 1;
  opts.parking_capacity = 1;
  ResilientProxyPipeline pool(env.plus, env.shares, opts);

  FailpointPolicy dead;
  dead.action = FailAction::kThrow;
  Failpoints::instance().set("proxy.s0.r0", dead);

  EXPECT_FALSE(pool.process(env.partials[0], "a").has_value());
  try {
    (void)pool.process(env.partials[1], "b");
    FAIL() << "second park must overflow the capacity-1 queue";
  } catch (const ProxyUnavailable& err) {
    EXPECT_EQ(err.code(), ErrorCode::kUnavailable);
    EXPECT_EQ(err.share(), 0u);
  }
  EXPECT_EQ(pool.stats().rejected, 1u);
  EXPECT_EQ(pool.parked_count(), 1u);
}

// The strict (backend-hook) path cannot park: it must refund the shares
// already charged and throw the typed error, so a retried upload is not
// double-billed against the proxies' rate budgets.
TEST_F(ChaosTest, StrictPathRefundsBudgetsAndThrowsTyped) {
  PlusEnv& env = plus_env();
  ProxyPoolOptions opts;
  opts.replicas = 1;
  opts.rate_limit = 5;  // per replica
  ResilientProxyPipeline pool(env.plus, env.shares, opts);

  FailpointPolicy dead;
  dead.action = FailAction::kThrow;
  Failpoints::instance().set("proxy.s2.r0", dead);
  try {
    (void)pool.process_strict(env.partials[0]);
    FAIL() << "share 2 is down; strict path must throw";
  } catch (const ProxyUnavailable& err) {
    EXPECT_EQ(err.share(), 2u);
  }
  Failpoints::instance().clear_all();

  // The failed upload charged shares 0 and 1 before share 2 refused — and
  // refunded them. With a budget of 5 per replica, exactly 5 more uploads
  // fit; without the refund only 4 would.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(serialize_index(env.e, pool.process_strict(env.partials[0])),
              env.expected_bytes[0])
        << "upload " << i;
  }
  try {
    (void)pool.process_strict(env.partials[0]);
    FAIL() << "budget of 5 must be exhausted by now";
  } catch (const ProxyUnavailable& err) {
    EXPECT_EQ(err.share(), 0u);  // first share to hit its exhausted budget
  }
}

// A persistently failing replica trips its circuit breaker: it stops being
// tried during the cooldown window (measured in pipeline operations), gets
// probed half-open afterwards, and closes again once a probe succeeds.
TEST_F(ChaosTest, CircuitBreakerOpensProbesAndRecovers) {
  PlusEnv& env = plus_env();
  ProxyPoolOptions opts;
  opts.replicas = 2;
  opts.breaker_threshold = 2;
  opts.breaker_cooldown_ops = 2;
  ResilientProxyPipeline pool(env.plus, env.shares, opts);
  auto& fp = Failpoints::instance();

  FailpointPolicy dead;
  dead.action = FailAction::kThrow;
  fp.set("proxy.s0.r0", dead);

  // Ops 1-2: r0 fails twice -> consecutive failures reach the threshold.
  (void)pool.process_strict(env.partials[0]);
  (void)pool.process_strict(env.partials[0]);
  EXPECT_EQ(pool.stats().breaker_opens, 1u);
  const std::uint64_t evals_at_open = fp.evaluations("proxy.s0.r0");

  // Op 3 is inside the cooldown: the dead replica is not even tried.
  (void)pool.process_strict(env.partials[0]);
  EXPECT_EQ(fp.evaluations("proxy.s0.r0"), evals_at_open);

  // Op 4: cooldown over -> half-open probe (still dead: fails, re-opens).
  (void)pool.process_strict(env.partials[0]);
  EXPECT_EQ(fp.evaluations("proxy.s0.r0"), evals_at_open + 1);
  EXPECT_GE(pool.stats().breaker_probes, 1u);

  // Replica recovers; op 5 is inside the renewed cooldown, op 6 probes
  // successfully and closes the breaker.
  fp.clear_all();
  (void)pool.process_strict(env.partials[0]);
  (void)pool.process_strict(env.partials[0]);
  for (const ProxyReplicaHealth& h : pool.health()) {
    EXPECT_FALSE(h.breaker_open)
        << "s" << h.share << ".r" << h.replica << " still open";
    if (h.share == 0 && h.replica == 0) {
      EXPECT_GE(h.successes, 1u);
    }
  }
  // Every upload came out byte-identical throughout.
  EXPECT_EQ(serialize_index(env.e, pool.process_strict(env.partials[0])),
            env.expected_bytes[0]);
}

// --- Deadline / cancellation / load-shedding chaos --------------------------

// A populated APKS+ server plus one raw capability for the engine's
// unchecked batch path.
struct ServingRig {
  explicit ServingRig(PlusEnv& env)
      : backend(env.plus), server(backend, env.verifier) {
    for (std::size_t i = 0; i < env.expected.size(); ++i) {
      (void)server.store(env.expected[i], env.refs[i]);
    }
    caps.push_back(env.plus.gen_cap(
        env.setup.msk, nursery_point_query(env.target_row()), env.rng));
  }
  ApksPlusBackend backend;
  CloudServer server;
  std::vector<Capability> caps;
};

TEST_F(ChaosTest, EngineDeadlineStopsAtBlockBoundary) {
  PlusEnv& env = plus_env();
  ServingRig rig(env);
  SearchEngine engine(rig.server, {.threads = 1, .block_records = 1});

  // Fault-free reference first (also warms the prepared-query cache).
  const auto full = engine.search_batch_unchecked(rig.caps);
  ASSERT_FALSE(full[0].empty());

  // Each block stalls 30 ms; a 40 ms deadline dies mid-scan.
  FailpointPolicy slow;
  slow.action = FailAction::kDelay;
  slow.delay_ms = 30;
  Failpoints::instance().set("engine.scan_block", slow);

  ServeControl ctl;
  ctl.deadline_ms = 40;
  BatchMetrics bm;
  EXPECT_THROW((void)engine.search_batch_unchecked(rig.caps, &bm, ctl),
               DeadlineExceeded);
  EXPECT_TRUE(bm.deadline_exceeded);
  EXPECT_FALSE(bm.cancelled);
  EXPECT_LT(bm.per_query[0].scanned, rig.server.record_count());
  EXPECT_TRUE(bm.per_query[0].deadline_exceeded);

  // Degraded mode: partial results are the matches from the blocks that
  // ran — a prefix of the fault-free results (one thread scans blocks in
  // record order).
  ctl.partial_ok = true;
  BatchMetrics partial_bm;
  const auto partial = engine.search_batch_unchecked(rig.caps, &partial_bm, ctl);
  EXPECT_TRUE(partial_bm.deadline_exceeded);
  EXPECT_LT(partial_bm.per_query[0].scanned, rig.server.record_count());
  ASSERT_LE(partial[0].size(), full[0].size());
  for (std::size_t i = 0; i < partial[0].size(); ++i) {
    EXPECT_EQ(partial[0][i], full[0][i]);
  }

  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.deadline_exceeded, 2u);
  EXPECT_EQ(counters.served, 1u);  // only the fault-free reference batch
}

TEST_F(ChaosTest, EngineCancellationTokenStopsScan) {
  PlusEnv& env = plus_env();
  ServingRig rig(env);
  SearchEngine engine(rig.server, {.threads = 1, .block_records = 1});

  std::atomic<bool> cancel{true};  // already cancelled at admission
  ServeControl ctl;
  ctl.cancel = &cancel;
  BatchMetrics bm;
  try {
    (void)engine.search_batch_unchecked(rig.caps, &bm, ctl);
    FAIL() << "cancelled batch must throw";
  } catch (const ServingError& err) {
    EXPECT_EQ(err.code(), ErrorCode::kCancelled);
  }
  EXPECT_TRUE(bm.cancelled);
  EXPECT_EQ(bm.per_query[0].scanned, 0u);
  EXPECT_EQ(engine.counters().cancelled, 1u);

  // Partial mode returns the (empty) prefix instead of throwing.
  ctl.partial_ok = true;
  const auto partial = engine.search_batch_unchecked(rig.caps, nullptr, ctl);
  EXPECT_TRUE(partial[0].empty());
  EXPECT_EQ(engine.counters().cancelled, 2u);
}

TEST_F(ChaosTest, AdmissionShedsBatchesBeyondMaxInflight) {
  PlusEnv& env = plus_env();
  ServingRig rig(env);
  SearchEngine engine(rig.server,
                      {.threads = 1, .block_records = 1, .max_inflight = 1});

  // Slow the scan down so the first batch reliably occupies the only slot.
  FailpointPolicy slow;
  slow.action = FailAction::kDelay;
  slow.delay_ms = 40;
  Failpoints::instance().set("engine.scan_block", slow);

  std::thread bg([&] {
    const auto hits = engine.search_batch_unchecked(rig.caps);
    EXPECT_FALSE(hits[0].empty());
  });
  // Wait (bounded) until the background batch is admitted.
  for (int spin = 0; spin < 2000 && engine.inflight() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(engine.inflight(), 1u) << "background batch never started";

  try {
    (void)engine.search_batch_unchecked(rig.caps);
    FAIL() << "second concurrent batch must be shed";
  } catch (const Overloaded& err) {
    EXPECT_EQ(err.code(), ErrorCode::kOverloaded);
  }
  bg.join();

  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.shed, 1u);
  EXPECT_EQ(counters.served, 1u);
  EXPECT_EQ(engine.inflight(), 0u);
}

// The shard-parallel disk scan honours the same ServeControl contract as
// the in-memory paths: a cancel token or deadline stops the workers at the
// next per-record poll — mid-shard, not after streaming every segment —
// with the typed error and the partial progress in the stats.
TEST_F(ChaosTest, StoreScanCancellationStopsMidShard) {
  PlusEnv& env = plus_env();
  ApksPlusBackend backend(env.plus);
  ShardedStoreOptions sopts;
  sopts.shards = 2;
  ShardedStore store(backend, dir_, sopts);
  for (std::size_t i = 0; i < env.expected.size(); ++i) {
    (void)store.append_any(env.refs[i],
                           AnyIndex::own(SchemeKind::kApksPlus,
                                         env.expected[i]));
  }
  store.sync();
  const Capability cap = env.plus.gen_cap(
      env.setup.msk, nursery_point_query(env.target_row()), env.rng);
  const AnyQuery query = AnyQuery::ref(SchemeKind::kApksPlus, &cap);

  // Fault-free reference: the whole store is scanned.
  StoreScanStats full_stats;
  const auto full = store.search_any(query, 2, &full_stats);
  ASSERT_EQ(full_stats.scanned, env.expected.size());
  ASSERT_FALSE(full.empty());

  // A pre-cancelled token stops the workers before the scan makes any
  // progress; the typed error carries the cancellation code.
  std::atomic<bool> cancel{true};
  ServeControl ctl;
  ctl.cancel = &cancel;
  StoreScanStats cancel_stats;
  try {
    (void)store.search_any(query, 2, &cancel_stats, ctl);
    FAIL() << "cancelled store scan must throw";
  } catch (const ServingError& err) {
    EXPECT_EQ(err.code(), ErrorCode::kCancelled);
  }
  EXPECT_TRUE(cancel_stats.cancelled);
  EXPECT_FALSE(cancel_stats.deadline_exceeded);
  EXPECT_LT(cancel_stats.scanned, full_stats.scanned);

  // Partial mode returns the prefix each worker reached instead.
  ctl.partial_ok = true;
  StoreScanStats partial_stats;
  const auto partial = store.search_any(query, 2, &partial_stats, ctl);
  EXPECT_TRUE(partial_stats.cancelled);
  EXPECT_LE(partial.size(), full.size());

  // Deadline mid-shard: stall every record decode; the scan gets through
  // some records but dies at a per-record poll well before the end —
  // proving the workers poll inside a shard's stream, not between shards.
  FailpointPolicy slow;
  slow.action = FailAction::kDelay;
  slow.delay_ms = 30;
  Failpoints::instance().set("store.scan_record", slow);
  ServeControl tight;
  tight.deadline_ms = 45;
  tight.partial_ok = true;
  StoreScanStats deadline_stats;
  (void)store.search_any(query, 1, &deadline_stats, tight);
  EXPECT_TRUE(deadline_stats.deadline_exceeded);
  EXPECT_FALSE(deadline_stats.cancelled);
  EXPECT_GT(deadline_stats.scanned, 0u);
  EXPECT_LT(deadline_stats.scanned, full_stats.scanned);
}

TEST_F(ChaosTest, CloudServerDeadlineAndCancellationThrowTyped) {
  PlusEnv& env = plus_env();
  ServingRig rig(env);
  const SignedCapability cap =
      env.ta.issue(nursery_point_query(env.target_row()), env.rng);

  // Fault-free: the deadline-aware overload with a generous budget is
  // byte-identical to the plain path.
  CloudServer::SearchStats plain_stats;
  const auto plain = rig.server.search(cap, &plain_stats);
  ServeControl relaxed;
  relaxed.deadline_ms = 60000;
  CloudServer::SearchStats relaxed_stats;
  EXPECT_EQ(rig.server.search(cap, relaxed, &relaxed_stats), plain);
  EXPECT_EQ(relaxed_stats.scanned, plain_stats.scanned);
  EXPECT_EQ(relaxed_stats.matched, plain_stats.matched);

  // Stall the scan; a tight deadline dies at a block boundary with the
  // typed error and the progress-so-far in the stats.
  FailpointPolicy slow;
  slow.action = FailAction::kDelay;
  slow.delay_ms = 50;
  Failpoints::instance().set("server.scan_block", slow);
  ServeControl tight;
  tight.deadline_ms = 25;
  CloudServer::SearchStats stats;
  EXPECT_THROW((void)rig.server.search(cap, tight, &stats), DeadlineExceeded);
  EXPECT_TRUE(stats.authorized);
  EXPECT_TRUE(stats.deadline_exceeded);
  EXPECT_LT(stats.scanned, rig.server.record_count());

  // Cancellation routes through the same boundary with its own code.
  Failpoints::instance().clear_all();
  std::atomic<bool> cancel{true};
  ServeControl cancelled;
  cancelled.cancel = &cancel;
  CloudServer::SearchStats cancel_stats;
  try {
    (void)rig.server.search(cap, cancelled, &cancel_stats);
    FAIL() << "cancelled search must throw";
  } catch (const ServingError& err) {
    EXPECT_EQ(err.code(), ErrorCode::kCancelled);
  }
  EXPECT_TRUE(cancel_stats.cancelled);
  EXPECT_FALSE(cancel_stats.deadline_exceeded);
}

// --- Network serving chaos ---------------------------------------------------

net::NetServerOptions net_unchecked() {
  net::NetServerOptions opts;
  opts.allow_unchecked = true;
  return opts;
}

std::vector<std::uint8_t> rig_query_bytes(const ServingRig& rig) {
  return rig.backend.encode_query(
      AnyQuery::ref(SchemeKind::kApksPlus, &rig.caps[0]));
}

// A frame-level raw client: NetClient refuses to send torn frames, a
// hostile (or dying) peer does not.
int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

void raw_send(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

// A client that dies mid-frame: the server sees the torn tail, closes the
// connection, and keeps serving well-formed sessions bit-for-bit.
TEST_F(ChaosTest, NetTornFrameDisconnectDoesNotPoisonServer) {
  PlusEnv& env = plus_env();
  ServingRig rig(env);
  SearchEngine engine(rig.server, {.threads = 1});
  const auto full = engine.search_batch_unchecked(rig.caps);
  ASSERT_FALSE(full[0].empty());
  net::NetServer server(engine, net_unchecked());

  {
    const int fd = raw_connect(server.port());
    raw_send(fd, net::encode_frame(
                     net::HelloMsg{net::kNetVersion, SchemeKind::kApksPlus}
                         .encode()));
    net::AuthMsg auth;
    auth.mode = net::AuthMsg::Mode::kUnchecked;
    auth.query = rig_query_bytes(rig);
    const auto frame = net::encode_frame(auth.encode());
    // Half an auth frame, then a hard close: the torn tail must evaporate.
    raw_send(fd, std::span<const std::uint8_t>(frame.data(), frame.size() / 2));
    ::close(fd);
  }
  for (int spin = 0; spin < 5000 && server.open_connections() != 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.open_connections(), 0u);

  net::NetClient client;
  client.connect("127.0.0.1", server.port(), 10000);
  ASSERT_EQ(client.hello(SchemeKind::kApksPlus).status, net::WireStatus::kOk);
  ASSERT_EQ(client.auth_unchecked(rig_query_bytes(rig)).status,
            net::WireStatus::kOk);
  const net::RemoteResult r = client.search();
  EXPECT_EQ(r.status, net::WireStatus::kOk);
  EXPECT_EQ(r.refs, full[0]);
  EXPECT_GE(server.stats().closed, 1u);
}

// A client that dies mid-batch: the disconnect fires the session's cancel
// token, the engine abandons the scan at a block boundary, and neither the
// engine inflight slot nor the server job slot leaks.
TEST_F(ChaosTest, NetMidSearchDisconnectFreesInflightSlot) {
  PlusEnv& env = plus_env();
  ServingRig rig(env);
  SearchEngine engine(rig.server,
                      {.threads = 1, .block_records = 1, .max_inflight = 1});
  const auto full = engine.search_batch_unchecked(rig.caps);
  net::NetServer server(engine, net_unchecked());

  FailpointPolicy slow;
  slow.action = FailAction::kDelay;
  slow.delay_ms = 30;
  Failpoints::instance().set("engine.scan_block", slow);

  const int fd = raw_connect(server.port());
  raw_send(fd, net::encode_frame(
                   net::HelloMsg{net::kNetVersion, SchemeKind::kApksPlus}
                       .encode()));
  net::AuthMsg auth;
  auth.mode = net::AuthMsg::Mode::kUnchecked;
  auth.query = rig_query_bytes(rig);
  raw_send(fd, net::encode_frame(auth.encode()));
  net::SearchMsg search;
  search.request_id = 1;
  search.partial_ok = true;
  raw_send(fd, net::encode_frame(search.encode()));

  for (int spin = 0; spin < 5000 && engine.inflight() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(engine.inflight(), 1u) << "remote search never started";
  ::close(fd);  // mid-scan disconnect

  // The cancel token stops the scan at the next block; both slots drain.
  for (int spin = 0; spin < 5000 && engine.inflight() != 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(engine.inflight(), 0u) << "engine inflight slot leaked";
  for (int spin = 0; spin < 5000 && server.inflight_jobs() != 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.inflight_jobs(), 0u) << "server job slot leaked";
  Failpoints::instance().clear_all();

  // max_inflight is 1: a leaked slot would shed this follow-up session.
  net::NetClient client;
  client.connect("127.0.0.1", server.port(), 10000);
  ASSERT_EQ(client.hello(SchemeKind::kApksPlus).status, net::WireStatus::kOk);
  ASSERT_EQ(client.auth_unchecked(rig_query_bytes(rig)).status,
            net::WireStatus::kOk);
  const net::RemoteResult r = client.search();
  EXPECT_EQ(r.status, net::WireStatus::kOk);
  EXPECT_EQ(r.refs, full[0]);
  EXPECT_EQ(server.stats().searches_overloaded, 0u);
}

// A client that stops draining its socket while results stream: the write
// buffer cap closes it (backpressure of last resort) instead of buffering
// without bound.
TEST_F(ChaosTest, NetSlowClientClosedAtWriteBufferCap) {
  PlusEnv& env = plus_env();
  ServingRig rig(env);
  SearchEngine engine(rig.server, {.threads = 1});
  net::NetServerOptions opts = net_unchecked();
  opts.write_buffer_cap = 32;  // hello-ack fits; the auth-ack frame cannot
  net::NetServer server(engine, opts);

  net::NetClient client;
  client.connect("127.0.0.1", server.port(), 10000);
  ASSERT_EQ(client.hello(SchemeKind::kApksPlus).status, net::WireStatus::kOk);
  EXPECT_THROW((void)client.auth_unchecked(rig_query_bytes(rig)),
               ServingError);
  for (int spin = 0; spin < 5000 && server.open_connections() != 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.stats().slow_client_closes, 1u);
  EXPECT_EQ(server.open_connections(), 0u);
  EXPECT_FALSE(server.stopped());
}

// Injected socket faults on the accept/read/write sites: each one costs
// exactly the affected connection, never the server.
TEST_F(ChaosTest, NetSocketFailpointsCloseOnlyTheAffectedConnection) {
  PlusEnv& env = plus_env();
  ServingRig rig(env);
  SearchEngine engine(rig.server, {.threads = 1});
  const auto full = engine.search_batch_unchecked(rig.caps);
  net::NetServer server(engine, net_unchecked());

  FailpointPolicy fault;
  fault.action = FailAction::kError;
  fault.max_hits = 1;

  // accept: the connection is accepted, then refused before any frame.
  Failpoints::instance().set(net::kSiteAccept, fault);
  {
    net::NetClient client;
    client.connect("127.0.0.1", server.port(), 10000);
    EXPECT_THROW((void)client.hello(SchemeKind::kApksPlus), ServingError);
  }
  EXPECT_GE(server.stats().refused_connections, 1u);

  // read: the session dies on its first readable event.
  Failpoints::instance().set(net::kSiteRead, fault);
  {
    net::NetClient client;
    client.connect("127.0.0.1", server.port(), 10000);
    EXPECT_THROW((void)client.hello(SchemeKind::kApksPlus), ServingError);
  }

  // write: the hello is read fine; the ack write fails and closes.
  Failpoints::instance().set(net::kSiteWrite, fault);
  {
    net::NetClient client;
    client.connect("127.0.0.1", server.port(), 10000);
    EXPECT_THROW((void)client.hello(SchemeKind::kApksPlus), ServingError);
  }
  Failpoints::instance().clear_all();

  // The server itself never died: a clean session serves full results.
  net::NetClient client;
  client.connect("127.0.0.1", server.port(), 10000);
  ASSERT_EQ(client.hello(SchemeKind::kApksPlus).status, net::WireStatus::kOk);
  ASSERT_EQ(client.auth_unchecked(rig_query_bytes(rig)).status,
            net::WireStatus::kOk);
  const net::RemoteResult r = client.search();
  EXPECT_EQ(r.status, net::WireStatus::kOk);
  EXPECT_EQ(r.refs, full[0]);
}

}  // namespace
}  // namespace apks
