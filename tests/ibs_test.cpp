// Tests for the identity-based signature scheme used on capabilities.
#include <gtest/gtest.h>

#include "auth/ibs.h"

namespace apks {
namespace {

class IbsTest : public ::testing::Test {
 protected:
  IbsTest() : e_(default_type_a_params()), ibs_(e_), rng_("ibs-test") {
    auto s = ibs_.setup(rng_);
    msk_ = s.msk;
    params_ = s.params;
  }

  static std::vector<std::uint8_t> bytes(std::string_view s) {
    return {s.begin(), s.end()};
  }

  Pairing e_;
  Ibs ibs_;
  ChaChaRng rng_;
  Fq msk_{};
  IbsPublicParams params_;
};

TEST_F(IbsTest, SignVerifyRoundTrip) {
  const auto key = ibs_.extract(msk_, "hospital-A");
  const auto msg = bytes("capability bytes");
  const auto sig = ibs_.sign(key, msg, rng_);
  EXPECT_TRUE(ibs_.verify(params_, "hospital-A", msg, sig));
}

TEST_F(IbsTest, WrongIdentityRejected) {
  const auto key = ibs_.extract(msk_, "hospital-A");
  const auto msg = bytes("capability bytes");
  const auto sig = ibs_.sign(key, msg, rng_);
  EXPECT_FALSE(ibs_.verify(params_, "hospital-B", msg, sig));
}

TEST_F(IbsTest, TamperedMessageRejected) {
  const auto key = ibs_.extract(msk_, "hospital-A");
  const auto sig = ibs_.sign(key, bytes("message"), rng_);
  EXPECT_FALSE(ibs_.verify(params_, "hospital-A", bytes("messagE"), sig));
}

TEST_F(IbsTest, TamperedSignatureRejected) {
  const auto key = ibs_.extract(msk_, "hospital-A");
  const auto msg = bytes("message");
  auto sig = ibs_.sign(key, msg, rng_);
  sig.v = e_.curve().add(sig.v, e_.curve().generator());
  EXPECT_FALSE(ibs_.verify(params_, "hospital-A", msg, sig));
  auto sig2 = ibs_.sign(key, msg, rng_);
  sig2.u = e_.curve().neg(sig2.u);
  EXPECT_FALSE(ibs_.verify(params_, "hospital-A", msg, sig2));
}

TEST_F(IbsTest, WrongAuthorityKeysRejected) {
  // A signature under a different master key must not verify.
  auto other = ibs_.setup(rng_);
  const auto key = ibs_.extract(other.msk, "hospital-A");
  const auto msg = bytes("message");
  const auto sig = ibs_.sign(key, msg, rng_);
  EXPECT_FALSE(ibs_.verify(params_, "hospital-A", msg, sig));
  EXPECT_TRUE(ibs_.verify(other.params, "hospital-A", msg, sig));
}

TEST_F(IbsTest, SignaturesAreRandomized) {
  const auto key = ibs_.extract(msk_, "hospital-A");
  const auto msg = bytes("message");
  const auto s1 = ibs_.sign(key, msg, rng_);
  const auto s2 = ibs_.sign(key, msg, rng_);
  EXPECT_NE(s1.u, s2.u);
  EXPECT_TRUE(ibs_.verify(params_, "hospital-A", msg, s1));
  EXPECT_TRUE(ibs_.verify(params_, "hospital-A", msg, s2));
}

TEST_F(IbsTest, InfinitySignatureRejected) {
  IbsSignature sig;
  sig.u = AffinePoint::infinity();
  sig.v = AffinePoint::infinity();
  EXPECT_FALSE(ibs_.verify(params_, "hospital-A", bytes("m"), sig));
}

}  // namespace
}  // namespace apks
