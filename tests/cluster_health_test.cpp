// Self-healing cluster tests (cluster/health.h + the coordinator/node
// reconfiguration paths; DESIGN.md §5j):
//
//  - FailureDetector: the consecutive-miss state machine is deterministic
//    (alive → suspect → dead, any pong snaps back).
//  - CircuitBreaker hardening: force-trip semantics, cooldown jitter
//    (range + determinism per seed), and a concurrent-caller hammer (the
//    TSan stage's main target).
//  - HealthMonitor: manual ticks track a node through kill and revive;
//    transition hooks fire; pongs report the node's map version.
//  - Coordinator + heartbeats: a node the detector declared dead is
//    pre-tripped and deprioritized BEFORE any search pays for it
//    (retries == 0), and a revived node returns to primary duty.
//  - Live reconfiguration: apply_map adds a node with graceful shard
//    handoff; a stale node is healed mid-search by a map push; a
//    coordinator behind the fleet gets a typed error.
//  - The chaos drill: node added AND node killed mid-query-stream, every
//    result byte-identical to the single-node scan.
//  - Hedged reads: a slow primary is raced against the next replica
//    within the hedge budget; results stay byte-identical.
//  - Edge auth LRU: hit/miss/eviction counters, negatives never cached.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/health.h"
#include "cluster/node.h"
#include "cluster/placement.h"
#include "common/breaker.h"
#include "common/failpoint.h"
#include "core/apks_backend.h"
#include "data/nursery.h"
#include "data/workload.h"

namespace apks {
namespace {

namespace fs = std::filesystem;
using cluster::ClusterMap;
using cluster::ClusterNode;
using cluster::ClusterNodeOptions;
using cluster::ClusterSearchStats;
using cluster::Coordinator;
using cluster::CoordinatorOptions;
using cluster::FailureDetector;
using cluster::FailureDetectorOptions;
using cluster::HealthMonitor;
using cluster::HealthMonitorOptions;
using cluster::NodeHealthSnapshot;
using cluster::NodeInfo;
using cluster::NodeLiveness;

constexpr std::uint32_t kShards = 4;

// One populated APKS rig shared by every test (read-only after setup) —
// the health machinery is scheme-agnostic, so one scheme suffices.
struct HealthEnv {
  Pairing e;
  ChaChaRng rng;
  Apks apks;
  TrustedAuthority ta;
  CapabilityVerifier verifier;
  ApksBackend backend;
  std::unique_ptr<ShardedStore> store;
  AnyQuery query;
  SignedCapability cap;        // signs `query`
  SignedCapability other_cap;  // a second distinct signed query

  static CapabilityVerifier make_verifier(const Pairing& e,
                                          const IbsPublicParams& params) {
    CapabilityVerifier v(e, params);
    v.register_authority("TA");
    return v;
  }

  HealthEnv()
      : e(default_type_a_params()),
        rng("cluster-health-test"),
        apks(e, nursery_schema(1)),
        ta(apks, rng),
        verifier(make_verifier(e, ta.ibs_params())),
        backend(apks) {
    // ctest runs each test as its own process, possibly in parallel:
    // the store directory must be per-process or one process's rebuild
    // races another's reads.
    const fs::path base =
        fs::temp_directory_path() /
        ("apks-cluster-health-env-" + std::to_string(::getpid()));
    fs::remove_all(base);
    const std::vector<PlainIndex> rows = nursery_rows();
    ShardedStoreOptions opts;
    opts.shards = kShards;
    store = std::make_unique<ShardedStore>(backend, base / "apks", opts);
    for (std::size_t i = 0; i < 10; ++i) {
      const PlainIndex& row = rows[(i * 769) % rows.size()];
      (void)store->append_any(
          "doc-" + std::to_string(i),
          AnyIndex::own(SchemeKind::kApks,
                        apks.gen_index(ta.public_key(), row, rng)));
    }
    cap = ta.issue(nursery_point_query(rows[769 % rows.size()]), rng);
    query = AnyQuery::own(SchemeKind::kApks, cap.cap);
    other_cap = ta.issue(nursery_point_query(rows[(2 * 769) % rows.size()]),
                         rng);
  }
};

HealthEnv& env() {
  static HealthEnv* e = new HealthEnv();
  return *e;
}

struct Fleet {
  std::vector<std::unique_ptr<ClusterNode>> nodes;
  ClusterMap map;
};

ClusterNodeOptions node_options() {
  ClusterNodeOptions opts;
  opts.engine.threads = 1;
  opts.net.allow_unchecked = true;
  return opts;
}

Fleet start_fleet(std::uint32_t replicas = 2, std::uint64_t version = 1) {
  std::vector<NodeInfo> infos = {{"node-a", "127.0.0.1", 0},
                                 {"node-b", "127.0.0.1", 0},
                                 {"node-c", "127.0.0.1", 0}};
  const ClusterMap port0(infos, kShards, replicas, version);
  Fleet f;
  for (std::uint32_t i = 0; i < infos.size(); ++i) {
    f.nodes.push_back(std::make_unique<ClusterNode>(
        *&env().backend, env().verifier, *env().store, port0, i,
        node_options()));
    infos[i].port = f.nodes[i]->port();
  }
  f.map = ClusterMap(std::move(infos), kShards, replicas, version);
  return f;
}

// The fleet grown by node-d: the v2 map over the same store. The new
// node is constructed against a port-0 copy of v2 (placement depends
// only on names), then the final map publishes every bound port.
ClusterMap grow_fleet(Fleet& f, std::uint64_t version = 2) {
  std::vector<NodeInfo> infos;
  for (std::size_t i = 0; i < f.map.nodes().size(); ++i) {
    infos.push_back(f.map.nodes()[i]);
  }
  infos.push_back({"node-d", "127.0.0.1", 0});
  const ClusterMap port0(infos, kShards, f.map.replicas(), version);
  f.nodes.push_back(std::make_unique<ClusterNode>(
      env().backend, env().verifier, *env().store, port0,
      static_cast<std::uint32_t>(infos.size() - 1), node_options()));
  infos.back().port = f.nodes.back()->port();
  return ClusterMap(std::move(infos), kShards, f.map.replicas(), version);
}

class ClusterHealthTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::instance().clear_all(); }
  void TearDown() override { Failpoints::instance().clear_all(); }
};

// --- failure detector --------------------------------------------------------

TEST_F(ClusterHealthTest, FailureDetectorStateMachine) {
  FailureDetectorOptions opts;
  opts.suspect_misses = 2;
  opts.dead_misses = 4;
  FailureDetector d(opts);
  EXPECT_EQ(d.liveness(), NodeLiveness::kAlive);
  EXPECT_EQ(d.on_miss(), NodeLiveness::kAlive);    // 1 miss
  EXPECT_EQ(d.on_miss(), NodeLiveness::kSuspect);  // 2
  EXPECT_EQ(d.on_miss(), NodeLiveness::kSuspect);  // 3
  EXPECT_EQ(d.on_miss(), NodeLiveness::kDead);     // 4
  EXPECT_EQ(d.misses(), 4u);
  // Any pong snaps straight back to alive, not through suspect.
  EXPECT_EQ(d.on_pong(), NodeLiveness::kAlive);
  EXPECT_EQ(d.misses(), 0u);
  EXPECT_EQ(d.on_miss(), NodeLiveness::kAlive);  // counter restarted
}

// --- breaker hardening -------------------------------------------------------

TEST_F(ClusterHealthTest, BreakerTripForcesOpenAndProbeRecovers) {
  BreakerOptions opts;
  opts.threshold = 3;
  opts.cooldown_ops = 2;
  CircuitBreaker b(opts);
  EXPECT_EQ(b.admit(1), CircuitBreaker::Gate::kClosed);
  // trip() opens without any recorded failure (the failure detector's
  // path) and reports the transition exactly once.
  EXPECT_TRUE(b.trip(1));
  EXPECT_FALSE(b.trip(1));
  EXPECT_EQ(b.admit(2), CircuitBreaker::Gate::kSkip);
  EXPECT_EQ(b.admit(3), CircuitBreaker::Gate::kProbe);  // cooldown elapsed
  b.on_success();
  EXPECT_EQ(b.admit(4), CircuitBreaker::Gate::kClosed);
  EXPECT_EQ(b.consecutive_failures(), 0u);
  // threshold == 0 disables tripping entirely.
  CircuitBreaker off(BreakerOptions{0, 2, 0});
  EXPECT_FALSE(off.trip(1));
  EXPECT_EQ(off.admit(2), CircuitBreaker::Gate::kClosed);
}

TEST_F(ClusterHealthTest, BreakerJitterStaysInRangeAndIsDeterministic) {
  BreakerOptions opts;
  opts.threshold = 1;
  opts.cooldown_ops = 4;
  opts.cooldown_jitter_ops = 3;
  const auto probe_op = [&](std::uint64_t seed) {
    CircuitBreaker b(opts);
    b.seed_jitter(seed);
    EXPECT_TRUE(b.on_failure(10));
    // First op at which a probe is admitted.
    for (std::uint64_t op = 11; op <= 30; ++op) {
      if (b.admit(op) == CircuitBreaker::Gate::kProbe) return op;
    }
    return std::uint64_t{0};
  };
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const std::uint64_t op = probe_op(seed);
    // Cooldown span is cooldown_ops + U[0, jitter]: probe between op 14
    // and op 17 inclusive (failure at 10).
    EXPECT_GE(op, 14u) << "seed " << seed;
    EXPECT_LE(op, 17u) << "seed " << seed;
    // Same seed, same schedule — chaos replays stay reproducible.
    EXPECT_EQ(op, probe_op(seed)) << "seed " << seed;
  }
}

TEST_F(ClusterHealthTest, BreakerSurvivesConcurrentCallers) {
  BreakerOptions opts;
  opts.threshold = 2;
  opts.cooldown_ops = 1;
  opts.cooldown_jitter_ops = 2;
  CircuitBreaker b(opts);
  b.seed_jitter(7);
  std::atomic<std::uint64_t> op{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&b, &op, t] {
      for (int i = 0; i < 2000; ++i) {
        const std::uint64_t now = op.fetch_add(1) + 1;
        switch (t % 4) {
          case 0: (void)b.admit(now); break;
          case 1: (void)b.on_failure(now); break;
          case 2: b.on_success(); break;
          default:
            (void)b.trip(now);
            (void)b.open_now(now);
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // The machine must land in a coherent state: after a success it is
  // closed with a zero failure count.
  b.on_success();
  EXPECT_EQ(b.consecutive_failures(), 0u);
  EXPECT_EQ(b.admit(op.load() + 1), CircuitBreaker::Gate::kClosed);
}

// --- health monitor ----------------------------------------------------------

TEST_F(ClusterHealthTest, HealthMonitorTracksKillAndRevive) {
  Fleet f = start_fleet();
  HealthMonitorOptions opts;
  opts.interval_ms = 0;  // manual ticks: fully deterministic
  opts.ping_timeout_ms = 400;
  opts.detector.suspect_misses = 1;
  opts.detector.dead_misses = 3;
  std::vector<std::string> transitions;
  HealthMonitor monitor(SchemeKind::kApks, f.map, opts,
                        [&](const std::string& node, NodeLiveness from,
                            NodeLiveness to) {
                          transitions.push_back(
                              node + ":" +
                              std::string(cluster::liveness_name(from)) +
                              ">" +
                              std::string(cluster::liveness_name(to)));
                        });

  monitor.tick();
  EXPECT_EQ(monitor.rounds(), 1u);
  std::vector<NodeHealthSnapshot> snap = monitor.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  for (const NodeHealthSnapshot& n : snap) {
    EXPECT_EQ(n.liveness, NodeLiveness::kAlive) << n.name;
    EXPECT_EQ(n.pongs, 1u) << n.name;
    EXPECT_EQ(n.map_version, 1u) << n.name;  // pong reports the node's map
  }
  EXPECT_TRUE(transitions.empty());  // no change, no hook

  // Kill node-c: one miss suspects it, three declare it dead.
  const std::uint16_t dead_port = f.nodes[2]->port();
  f.nodes[2]->stop();
  monitor.tick();
  EXPECT_EQ(monitor.liveness(2), NodeLiveness::kSuspect);
  monitor.tick();
  monitor.tick();
  EXPECT_EQ(monitor.liveness(2), NodeLiveness::kDead);
  EXPECT_EQ(monitor.liveness(0), NodeLiveness::kAlive);
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0], "node-c:alive>suspect");
  EXPECT_EQ(transitions[1], "node-c:suspect>dead");

  // Revive on the same port: the next pong snaps it back to alive.
  ClusterNodeOptions revived = node_options();
  revived.net.port = dead_port;
  f.nodes[2] = std::make_unique<ClusterNode>(env().backend, env().verifier,
                                             *env().store, f.map, 2, revived);
  monitor.tick();
  EXPECT_EQ(monitor.liveness(2), NodeLiveness::kAlive);
  EXPECT_EQ(transitions.back(), "node-c:dead>alive");

  for (auto& node : f.nodes) node->stop();
}

// --- coordinator + heartbeats ------------------------------------------------

TEST_F(ClusterHealthTest, HeartbeatPreTripsDeadNodeAndRevivedNodeReturns) {
  const std::vector<std::string> expected = env().store->search_any(env().query);
  Fleet f = start_fleet();

  CoordinatorOptions opts;
  opts.heartbeat_ms = 20;
  opts.ping_timeout_ms = 200;
  opts.detector.suspect_misses = 1;
  opts.detector.dead_misses = 2;
  opts.breaker.threshold = 2;
  opts.breaker.cooldown_ops = 1;
  Coordinator coord(env().backend, env().verifier, f.map, opts);
  ASSERT_NE(coord.health_monitor(), nullptr);
  ASSERT_EQ(coord.search_any(env().query), expected);

  // Kill node-b and wait for the detector (not a request!) to notice.
  const std::uint16_t dead_port = f.nodes[1]->port();
  f.nodes[1]->stop();
  for (int i = 0; i < 200 && coord.health()[1].liveness != NodeLiveness::kDead;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(coord.health()[1].liveness, NodeLiveness::kDead);

  // The search never touches the corpse: replicas were re-ordered and the
  // breaker pre-tripped, so zero RPCs fail and zero retries happen.
  ClusterSearchStats stats;
  EXPECT_EQ(coord.search_any(env().query, &stats), expected);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_FALSE(stats.partial);
  EXPECT_EQ(coord.health()[1].breaker_open, true);

  // Revive node-b on its old port; heartbeats close the loop and the node
  // serves primary traffic again without a single failed request.
  ClusterNodeOptions revived = node_options();
  revived.net.port = dead_port;
  f.nodes[1] = std::make_unique<ClusterNode>(env().backend, env().verifier,
                                             *env().store, f.map, 1, revived);
  for (int i = 0;
       i < 200 && coord.health()[1].liveness != NodeLiveness::kAlive; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(coord.health()[1].liveness, NodeLiveness::kAlive);

  // First search after revival may spend the breaker's half-open probe on
  // node-b; it must succeed and close the breaker for good.
  ClusterSearchStats after;
  EXPECT_EQ(coord.search_any(env().query, &after), expected);
  EXPECT_EQ(after.retries, 0u);
  ClusterSearchStats steady;
  EXPECT_EQ(coord.search_any(env().query, &steady), expected);
  EXPECT_EQ(steady.retries, 0u);
  EXPECT_EQ(steady.breaker_skips, 0u);
  EXPECT_FALSE(coord.health()[1].breaker_open);

  for (auto& node : f.nodes) node->stop();
}

// --- live reconfiguration ----------------------------------------------------

TEST_F(ClusterHealthTest, ApplyMapAddsNodeWithGracefulHandoff) {
  const std::vector<std::string> expected = env().store->search_any(env().query);
  Fleet f = start_fleet();
  Coordinator coord(env().backend, env().verifier, f.map);
  ASSERT_EQ(coord.search_any(env().query), expected);

  const ClusterMap v2 = grow_fleet(f);
  coord.apply_map(v2);
  EXPECT_EQ(coord.map().version(), 2u);

  // Every node adopted v2 (the eager push) and owns exactly what v2
  // assigns — de-assigned shards were unloaded, new ones loaded.
  for (std::uint32_t i = 0; i < f.nodes.size(); ++i) {
    EXPECT_EQ(f.nodes[i]->map_version(), 2u) << f.nodes[i]->name();
    EXPECT_EQ(f.nodes[i]->owned_shards(), v2.shards_of(i))
        << f.nodes[i]->name();
  }

  ClusterSearchStats stats;
  EXPECT_EQ(coord.search_any(env().query, &stats), expected);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.map_pushes, 0u);  // nobody is stale after the fan-out

  // Not-strictly-newer maps are refused at every layer.
  EXPECT_THROW(coord.apply_map(v2), std::invalid_argument);
  EXPECT_THROW(f.nodes[0]->apply_map(v2), std::invalid_argument);

  for (auto& node : f.nodes) node->stop();
}

TEST_F(ClusterHealthTest, StaleNodesHealedMidSearchByMapPush) {
  const std::vector<std::string> expected = env().store->search_any(env().query);
  Fleet f = start_fleet();

  // A coordinator born with v2 of the same member list, while every node
  // still holds v1: the first scatter gets `stale cluster map` refusals,
  // pushes its map, and retries — invisibly to the caller.
  const ClusterMap v2(
      {f.map.nodes()[0], f.map.nodes()[1], f.map.nodes()[2]}, kShards,
      f.map.replicas(), 2);
  Coordinator coord(env().backend, env().verifier, v2);
  ClusterSearchStats stats;
  EXPECT_EQ(coord.search_any(env().query, &stats), expected);
  EXPECT_GE(stats.map_pushes, 1u);
  // Only nodes the scatter actually hit (a shard's primary) were healed —
  // a node serving no primaries never refused and so was never pushed.
  for (std::uint32_t shard = 0; shard < kShards; ++shard) {
    EXPECT_EQ(f.nodes[v2.primary_of(shard)]->map_version(), 2u)
        << "primary of shard " << shard;
  }

  // Steady state: no more pushes.
  ClusterSearchStats steady;
  EXPECT_EQ(coord.search_any(env().query, &steady), expected);
  EXPECT_EQ(steady.map_pushes, 0u);

  for (auto& node : f.nodes) node->stop();
}

TEST_F(ClusterHealthTest, CoordinatorBehindTheFleetSurfacesTypedError) {
  Fleet f = start_fleet();
  Coordinator coord(env().backend, env().verifier, f.map);

  // The fleet moves ahead to v3 behind the coordinator's back. Its push
  // of the old map is refused — only a fresh map at the caller heals it.
  const ClusterMap v3(
      {f.map.nodes()[0], f.map.nodes()[1], f.map.nodes()[2]}, kShards,
      f.map.replicas(), 3);
  for (auto& node : f.nodes) node->apply_map(v3);

  try {
    (void)coord.search_any(env().query);
    FAIL() << "a coordinator behind the fleet must not harvest results";
  } catch (const ServingError& ex) {
    EXPECT_EQ(ex.code(), ErrorCode::kUnavailable);
    EXPECT_NE(std::string(ex.what()).find("refused"), std::string::npos)
        << ex.what();
  }

  // Handing it the fleet's map heals it.
  coord.apply_map(v3);
  EXPECT_EQ(coord.search_any(env().query),
            env().store->search_any(env().query));

  for (auto& node : f.nodes) node->stop();
}

// --- the chaos drill ---------------------------------------------------------

// Node added AND node killed mid-query-stream: every answer byte-identical
// to the single-node scan, zero fabricated or dropped shards.
TEST_F(ClusterHealthTest, ChaosDrillLiveRebalanceUnderQueryStream) {
  const std::vector<std::string> expected = env().store->search_any(env().query);
  Fleet f = start_fleet();

  CoordinatorOptions opts;
  opts.breaker.threshold = 2;
  opts.breaker.cooldown_ops = 2;
  Coordinator coord(env().backend, env().verifier, f.map);

  for (std::size_t i = 0; i < 12; ++i) {
    if (i == 4) {
      // Rebalance: node-d joins, shards hand off live.
      coord.apply_map(grow_fleet(f));
    }
    if (i == 8) {
      // And a node dies mid-stream (its shards have replicas).
      f.nodes[2]->stop();
    }
    ClusterSearchStats stats;
    const std::vector<std::string> refs =
        coord.search_any(env().query, &stats);
    ASSERT_EQ(refs, expected) << "query " << i;
    EXPECT_FALSE(stats.partial) << "query " << i;
    EXPECT_EQ(stats.shards_failed, 0u) << "query " << i;
  }

  for (auto& node : f.nodes) node->stop();
}

// --- hedged reads ------------------------------------------------------------

TEST_F(ClusterHealthTest, HedgedReadRacesSlowPrimaryWithinBudget) {
  const std::vector<std::string> expected = env().store->search_any(env().query);
  Fleet f = start_fleet();

  CoordinatorOptions opts;
  opts.hedge.enabled = true;
  opts.hedge.initial_delay_ms = 20;
  opts.hedge.min_delay_ms = 5;
  // The latency ring's quantile includes the scan itself; cap the hedge
  // delay well under the injected stall so the race is decisive.
  opts.hedge.max_delay_ms = 50;
  opts.hedge.budget = 4;
  Coordinator coord(env().backend, env().verifier, f.map, opts);
  // Warm the connections and the latency rings.
  ASSERT_EQ(coord.search_any(env().query), expected);

  // Every primary RPC of the next round stalls 2 s on the coordinator
  // side; the failpoint disarms after the primaries (max three nodes), so
  // the hedges launched off the (capped) latency quantile run at full
  // speed and win their shards long before the primaries wake.
  FailpointPolicy policy;
  policy.action = FailAction::kDelay;
  policy.delay_ms = 2000;
  policy.max_hits = 3;
  Failpoints::instance().set(cluster::kSiteScatter, policy);

  ClusterSearchStats stats;
  const std::vector<std::string> refs = coord.search_any(env().query, &stats);
  EXPECT_EQ(refs, expected);
  EXPECT_GE(stats.hedges, 1u);
  EXPECT_LE(stats.hedges, opts.hedge.budget);
  EXPECT_GE(stats.hedge_wins, 1u);
  EXPECT_EQ(stats.retries, 0u);  // nothing failed — one side was just slow
  EXPECT_FALSE(stats.partial);
  // Total RPCs stay within primaries + the hedge budget.
  EXPECT_LE(stats.rpcs, 3u + opts.hedge.budget);

  // With the failpoint gone, hedging stays quiet.
  Failpoints::instance().clear_all();
  ClusterSearchStats calm;
  EXPECT_EQ(coord.search_any(env().query, &calm), expected);
  EXPECT_FALSE(calm.partial);

  for (auto& node : f.nodes) node->stop();
}

// --- edge auth LRU -----------------------------------------------------------

TEST_F(ClusterHealthTest, AuthCacheMemoizesVerifiedQueriesAndEvicts) {
  const std::vector<std::string> expected = env().store->search_any(env().query);
  Fleet f = start_fleet();

  CoordinatorOptions opts;
  opts.auth_cache_capacity = 1;
  Coordinator coord(env().backend, env().verifier, f.map, opts);

  SignedQuery good{AnyQuery::ref(SchemeKind::kApks, &env().cap.cap),
                   env().cap.issuer, env().cap.sig};
  ClusterSearchStats stats;
  EXPECT_EQ(coord.search_signed(good, &stats), expected);
  EXPECT_TRUE(stats.authorized);
  EXPECT_EQ(coord.auth_cache_stats().misses, 1u);
  EXPECT_EQ(coord.auth_cache_stats().hits, 0u);

  // Same query again: served from the LRU, no second verification.
  EXPECT_EQ(coord.search_signed(good, &stats), expected);
  EXPECT_TRUE(stats.authorized);
  EXPECT_EQ(coord.auth_cache_stats().hits, 1u);
  EXPECT_EQ(coord.auth_cache_stats().size, 1u);

  // A rogue issuer is a miss AND is never cached (a later registration
  // change must be able to flip the verdict).
  SignedQuery rogue = good;
  rogue.issuer = "rogue";
  EXPECT_TRUE(coord.search_signed(rogue, &stats).empty());
  EXPECT_FALSE(stats.authorized);
  EXPECT_EQ(coord.auth_cache_stats().misses, 2u);
  EXPECT_EQ(coord.auth_cache_stats().size, 1u);

  // A second valid query evicts the first at capacity 1...
  SignedQuery other{AnyQuery::ref(SchemeKind::kApks, &env().other_cap.cap),
                    env().other_cap.issuer, env().other_cap.sig};
  (void)coord.search_signed(other, &stats);
  EXPECT_TRUE(stats.authorized);
  EXPECT_EQ(coord.auth_cache_stats().evictions, 1u);
  EXPECT_EQ(coord.auth_cache_stats().size, 1u);

  // ...so the first query misses (and re-verifies) again.
  EXPECT_EQ(coord.search_signed(good, &stats), expected);
  EXPECT_EQ(coord.auth_cache_stats().misses, 4u);

  for (auto& node : f.nodes) node->stop();
}

}  // namespace
}  // namespace apks
