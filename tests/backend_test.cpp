// Tests for the scheme-agnostic serving core (core/backend.h): all three
// constructions — APKS, APKS+, MRQED^D — through the one CloudServer /
// SearchEngine / ShardedStore path, the APKS+ ingest guard, the
// signed-query admission check, scheme-tag enforcement on persistent
// stores, and the legacy (untagged v1) on-disk migration.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "cloud/proxy.h"
#include "cloud/proxy_pool.h"
#include "cloud/search_engine.h"
#include "cloud/server.h"
#include "common/crc32.h"
#include "common/failpoint.h"
#include "core/apks_backend.h"
#include "core/apks_plus.h"
#include "core/serialize_apks.h"
#include "data/nursery.h"
#include "data/workload.h"
#include "mrqed/mrqed_backend.h"
#include "store/sharded_store.h"

namespace apks {
namespace {

namespace fs = std::filesystem;

ShardedStoreOptions two_shards() {
  ShardedStoreOptions opts;
  opts.shards = 2;
  return opts;
}

class BackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("apks-backend-") + info->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

// For the APKS family the backend's query_message must be byte-identical
// to capability_message, so a SignedCapability re-wrapped as a SignedQuery
// verifies against the very same signature bytes.
TEST_F(BackendTest, SignedCapabilityVerifiesAsSignedQuery) {
  const Pairing e(default_type_a_params());
  const Apks scheme(e, nursery_schema(1));
  ChaChaRng rng("backend-signed");
  TrustedAuthority ta(scheme, rng);
  CapabilityVerifier verifier(e, ta.ibs_params());
  verifier.register_authority("TA");

  const ApksBackend backend(scheme);
  const std::vector<PlainIndex> rows = nursery_rows();
  const SignedCapability cap = ta.issue(nursery_point_query(rows[7]), rng);

  const AnyQuery query = AnyQuery::ref(SchemeKind::kApks, &cap.cap);
  EXPECT_EQ(backend.query_message(query, cap.issuer),
            capability_message(e, cap.cap, cap.issuer));

  // The very same signature object admits the re-wrapped query...
  SignedQuery sq{AnyQuery::ref(SchemeKind::kApks, &cap.cap), cap.issuer,
                 cap.sig};
  EXPECT_TRUE(verifier.verify(cap));
  EXPECT_TRUE(verifier.verify(backend, sq));
  // ...and an unregistered issuer is still refused.
  sq.issuer = "rogue";
  EXPECT_FALSE(verifier.verify(backend, sq));
}

// The typed (SignedCapability) and scheme-agnostic (SignedQuery) serving
// paths return identical results and stats over the same record set.
TEST_F(BackendTest, ApksSignedQueryPathMatchesTypedPath) {
  const Pairing e(default_type_a_params());
  const Apks scheme(e, nursery_schema(1));
  ChaChaRng rng("backend-apks");
  TrustedAuthority ta(scheme, rng);
  CapabilityVerifier verifier(e, ta.ibs_params());
  verifier.register_authority("TA");

  const ApksBackend backend(scheme);
  CloudServer server(backend, verifier);
  const std::vector<PlainIndex> rows = nursery_rows();
  for (std::size_t i = 0; i < 8; ++i) {
    const PlainIndex& row = rows[(i * 769) % rows.size()];
    (void)server.store(scheme.gen_index(ta.public_key(), row, rng),
                       "row-" + std::to_string(i));
  }

  const SignedCapability cap =
      ta.issue(nursery_point_query(rows[769 % rows.size()]), rng);
  CloudServer::SearchStats typed_stats;
  const auto typed = server.search(cap, &typed_stats);
  ASSERT_FALSE(typed.empty());

  const SignedQuery sq{AnyQuery::ref(SchemeKind::kApks, &cap.cap), cap.issuer,
                       cap.sig};
  CloudServer::SearchStats generic_stats;
  EXPECT_EQ(server.search_signed(sq, &generic_stats), typed);
  EXPECT_TRUE(generic_stats.authorized);
  EXPECT_EQ(generic_stats.scanned, typed_stats.scanned);
  EXPECT_EQ(generic_stats.matched, typed_stats.matched);
}

// MRQED^D through the identical serving path: signed admission, correct
// range-match results and per-query stats, and the engine's blocked
// parallel batch agreeing with sequential scans.
TEST_F(BackendTest, MrqedServesThroughUnifiedServerAndEngine) {
  const Pairing e(default_type_a_params());
  const Mrqed mrqed(e, 2, 3);  // 2 dims over [0, 8)
  ChaChaRng rng("backend-mrqed");
  MrqedPublicKey pk;
  MrqedMasterKey msk;
  mrqed.setup(rng, pk, msk);

  // The TA's IBS layer is scheme-independent; an Apks instance only seeds
  // its capability side, which this test never touches.
  const Apks ibs_host(e, nursery_schema(1));
  TrustedAuthority ta(ibs_host, rng);
  CapabilityVerifier verifier(e, ta.ibs_params());
  verifier.register_authority("TA");

  const MrqedBackend backend(mrqed);
  CloudServer server(backend, verifier);
  const std::vector<std::vector<std::uint64_t>> points = {
      {0, 0}, {1, 5}, {3, 3}, {4, 7}, {6, 2}, {7, 7}};
  for (std::size_t i = 0; i < points.size(); ++i) {
    (void)server.store_any(
        AnyIndex::own(SchemeKind::kMrqed, mrqed.encrypt(pk, points[i], rng)),
        "pt-" + std::to_string(i));
  }

  struct Case {
    std::vector<MrqedRange> ranges;
    std::vector<std::string> expect;
  };
  const std::vector<Case> cases = {
      {{{0, 3}, {0, 7}}, {"pt-0", "pt-1", "pt-2"}},  // half-plane
      {{{4, 4}, {7, 7}}, {"pt-3"}},                  // point query
      {{{0, 7}, {0, 7}}, {"pt-0", "pt-1", "pt-2", "pt-3", "pt-4", "pt-5"}},
      {{{5, 5}, {0, 1}}, {}},                        // empty rectangle
  };

  std::vector<AnyQuery> queries;
  std::vector<std::vector<std::string>> sequential;
  std::vector<CloudServer::SearchStats> seq_stats(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    queries.push_back(AnyQuery::own(
        SchemeKind::kMrqed, mrqed.gen_key(pk, msk, cases[i].ranges, rng)));
    sequential.push_back(
        server.search_unchecked_any(queries[i], &seq_stats[i]));
    EXPECT_EQ(sequential[i], cases[i].expect) << "case " << i;
  }

  // Signed path: the authority signs the backend's query_message.
  const SignedQuery sq = ta.issue_query(backend, queries[0], rng);
  CloudServer::SearchStats signed_stats;
  EXPECT_EQ(server.search_signed(sq, &signed_stats), sequential[0]);
  EXPECT_TRUE(signed_stats.authorized);
  EXPECT_EQ(signed_stats.scanned, points.size());

  // Batch (parallel, blocked, cached) == sequential, with per-query stats.
  SearchEngine engine(server, {.threads = 3});
  BatchMetrics metrics;
  const auto batched = engine.search_batch_unchecked_any(queries, &metrics);
  ASSERT_EQ(batched.size(), cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(batched[i], sequential[i]) << "case " << i;
    EXPECT_EQ(metrics.per_query[i].scanned, seq_stats[i].scanned);
    EXPECT_EQ(metrics.per_query[i].matched, seq_stats[i].matched);
  }
  EXPECT_EQ(metrics.records, points.size());
}

// APKS+ through the unified ingest stage: owner-partial indexes traverse
// the proxy chain installed on the backend, the transformed records match
// under blinded-basis capabilities, and the canary refuses what a
// dictionary attacker can forge from pk alone.
TEST_F(BackendTest, ApksPlusIngestStageTransformsAndGuards) {
  const Pairing e(default_type_a_params());
  const ApksPlus plus(e, nursery_schema(1));
  ChaChaRng rng("backend-plus");
  const ApksPlusSetupResult setup = plus.setup_plus(rng);
  TrustedAuthority ta(plus, setup.pk, setup.msk, rng);
  CapabilityVerifier verifier(e, ta.ibs_params());
  verifier.register_authority("TA");

  ApksPlusBackend backend(plus);
  ProxyPipeline pipeline = make_proxy_pipeline(plus, setup.r, 2, rng);
  attach_ingest_pipeline(backend, pipeline);
  backend.set_ingest_canary(
      plus.gen_cap(setup.msk, make_canary_query(plus.schema()), rng));

  CloudServer server(backend, verifier);
  const std::vector<PlainIndex> rows = nursery_rows();
  for (std::size_t i = 0; i < 6; ++i) {
    const PlainIndex& row = rows[(i * 1201) % rows.size()];
    // partial_gen_index: what an owner can produce from pk alone.
    (void)server.store(plus.partial_gen_index(setup.pk, row, rng),
                       "row-" + std::to_string(i));
  }
  EXPECT_EQ(pipeline.size(), 2u);
  EXPECT_EQ(server.record_count(), 6u);

  const PlainIndex& target = rows[1201 % rows.size()];
  const SignedCapability cap = ta.issue(nursery_point_query(target), rng);
  CloudServer::SearchStats stats;
  const auto hits = server.search(cap, &stats);
  EXPECT_FALSE(hits.empty());
  EXPECT_EQ(hits[0], "row-1");
  EXPECT_EQ(stats.scanned, 6u);

  // A forged (never-transformed) ciphertext is refused at ingest: detach
  // the pipeline as an attacker bypassing the proxies would.
  ApksPlusBackend bypass(plus);
  bypass.set_ingest_canary(
      plus.gen_cap(setup.msk, make_canary_query(plus.schema()), rng));
  CloudServer open_door(bypass, verifier);
  EXPECT_THROW((void)open_door.store(
                   plus.partial_gen_index(setup.pk, target, rng), "forged"),
               std::invalid_argument);
  EXPECT_EQ(open_door.record_count(), 0u);

  // Even force-restored past the guard, the partial ciphertext stays dead:
  // it never matches a blinded-basis capability, so the dictionary attack
  // learns nothing from search results either.
  CloudServer unguarded(static_cast<const Apks&>(plus), verifier);
  unguarded.restore(1, plus.partial_gen_index(setup.pk, target, rng),
                    "forged");
  EXPECT_TRUE(unguarded.search(cap).empty());
}

// A store written under one scheme must be refused — with an error naming
// both schemes — when opened under another.
// Regression: proxies charge their rate budget on *success* only, and the
// chain is the unit of charging — when a later proxy refuses mid-chain,
// the earlier proxies refund, so retrying the same upload is not
// double-billed (the old code charged before transforming and leaked the
// budget on a mid-chain throw).
TEST_F(BackendTest, ProxyBudgetChargedOnSuccessOnlyWithMidChainRefund) {
  const Pairing e(default_type_a_params());
  const ApksPlus plus(e, nursery_schema(1));
  ChaChaRng rng("backend-budget");
  const ApksPlusSetupResult setup = plus.setup_plus(rng);
  const std::vector<Fq> shares = plus.split_secret(setup.r, 2, rng);

  ProxyPipeline pipeline;
  pipeline.add(ProxyServer(plus, shares[0], /*rate_limit=*/2));
  pipeline.add(ProxyServer(plus, shares[1], /*rate_limit=*/1));

  const std::vector<PlainIndex> rows = nursery_rows();
  const EncryptedIndex partial =
      plus.partial_gen_index(setup.pk, rows[0], rng);

  (void)pipeline.process(partial);
  EXPECT_EQ(pipeline.proxy(0).transformed_count(), 1u);
  EXPECT_EQ(pipeline.proxy(1).transformed_count(), 1u);

  // Second upload: proxy 0 transforms (briefly charged to 2), proxy 1's
  // budget of 1 is spent -> typed kExhausted, and proxy 0 refunds to 1.
  try {
    (void)pipeline.process(partial);
    FAIL() << "proxy 1's budget of 1 must be exhausted";
  } catch (const ServingError& err) {
    EXPECT_EQ(err.code(), ErrorCode::kExhausted);
  }
  EXPECT_EQ(pipeline.proxy(0).transformed_count(), 1u)
      << "mid-chain failure leaked proxy 0's budget";
  EXPECT_EQ(pipeline.proxy(1).transformed_count(), 1u);
}

// The multiplicative shares commute: any application order — the canonical
// chain, a permuted chain, an interleaved by-hand order, or a replicated
// pool failing over around dead replicas — yields the byte-identical
// transformed ciphertext. This is the property the resilient pool's
// failover and park/resume machinery relies on.
TEST_F(BackendTest, ProxyShareCommutativityUnderFailover) {
  const Pairing e(default_type_a_params());
  const ApksPlus plus(e, nursery_schema(1));
  ChaChaRng rng("backend-commute");
  const ApksPlusSetupResult setup = plus.setup_plus(rng);
  const std::vector<Fq> shares = plus.split_secret(setup.r, 3, rng);

  const std::vector<PlainIndex> rows = nursery_rows();
  const EncryptedIndex partial =
      plus.partial_gen_index(setup.pk, rows[42 % rows.size()], rng);

  ProxyPipeline canonical;
  for (const Fq& share : shares) canonical.add(ProxyServer(plus, share));
  const std::vector<std::uint8_t> expected =
      serialize_index(e, canonical.process(partial));

  // Permuted chain order.
  ProxyPipeline permuted;
  permuted.add(ProxyServer(plus, shares[2]));
  permuted.add(ProxyServer(plus, shares[0]));
  permuted.add(ProxyServer(plus, shares[1]));
  EXPECT_EQ(serialize_index(e, permuted.process(partial)), expected);

  // Interleaved by hand: share 1 first, then 2, then 0.
  ProxyServer p0(plus, shares[0]);
  ProxyServer p1(plus, shares[1]);
  ProxyServer p2(plus, shares[2]);
  EXPECT_EQ(serialize_index(e, p0.transform(p2.transform(p1.transform(
                                   partial)))),
            expected);

  // Replicated pool with replicas killed on different shares: failover
  // changes which replica serves (and in what retry order), never the
  // bytes. Clear the process-global failpoints even if an assertion fails.
  struct FailpointGuard {
    ~FailpointGuard() { Failpoints::instance().clear_all(); }
  } guard;
  FailpointPolicy dead;
  dead.action = FailAction::kThrow;
  Failpoints::instance().set("proxy.s0.r0", dead);
  Failpoints::instance().set("proxy.s2.r1", dead);
  ProxyPoolOptions opts;
  opts.replicas = 2;
  ResilientProxyPipeline pool(plus, shares, opts);
  const auto via_pool = pool.process(partial, "commute");
  ASSERT_TRUE(via_pool.has_value());
  EXPECT_EQ(serialize_index(e, *via_pool), expected);
  EXPECT_GE(pool.stats().failovers, 1u);
}

TEST_F(BackendTest, StoreSchemeMismatchRefused) {
  const Pairing e(default_type_a_params());
  const Apks scheme(e, nursery_schema(1));
  const Mrqed mrqed(e, 2, 3);
  ChaChaRng rng("backend-mismatch");
  ApksPublicKey pk;
  ApksMasterKey msk;
  scheme.setup(rng, pk, msk);

  const ApksBackend apks_backend(scheme);
  {
    ShardedStore store(apks_backend, dir_, two_shards());
    (void)store.append_any(
        "row",
        AnyIndex::own(SchemeKind::kApks,
                      scheme.gen_index(pk, nursery_rows()[0], rng)));
    store.sync();
  }

  const MrqedBackend mrqed_backend(mrqed);
  try {
    ShardedStore reopened(mrqed_backend, dir_, two_shards());
    FAIL() << "mrqed open of an apks store must throw";
  } catch (const std::invalid_argument& ex) {
    const std::string what = ex.what();
    EXPECT_NE(what.find("apks"), std::string::npos) << what;
    EXPECT_NE(what.find("mrqed"), std::string::npos) << what;
  }

  // Same-family confusion is refused too (apks+ records are on a blinded
  // basis; silently serving them as basic apks would mis-match).
  const ApksPlus plus(e, nursery_schema(1));
  const ApksPlusBackend plus_backend(plus);
  EXPECT_THROW(ShardedStore(plus_backend, dir_, two_shards()),
               std::invalid_argument);

  // The matching scheme still opens.
  ShardedStore again(apks_backend, dir_, two_shards());
  EXPECT_EQ(again.record_count(), 1u);
}

// Rewrites a v2 STORE/MANIFEST file as the pre-scheme-tag v1 layout: the
// version field drops to 1 and the scheme byte (immediately after the u32
// following the version) is removed; the trailing CRC is recomputed.
void downgrade_to_v1(const fs::path& file) {
  std::ifstream in(file, std::ios::binary);
  ASSERT_TRUE(in) << file;
  const std::vector<std::uint8_t> data{std::istreambuf_iterator<char>(in),
                                       std::istreambuf_iterator<char>()};
  in.close();
  ASSERT_GE(data.size(), 8u + 4 + 4 + 1 + 4);
  ByteReader r(std::span<const std::uint8_t>(data.data(), data.size() - 4));
  const auto magic = r.raw(8);
  const bool is_manifest = std::memcmp(magic.data(), "APKSMAN1", 8) == 0;
  const std::uint32_t version = r.u32();
  ASSERT_TRUE(version == 2 || version == 3) << file << " version " << version;
  const std::uint32_t id_field = r.u32();  // shard count / shard id
  (void)r.u8();                            // scheme byte: dropped in v1

  ByteWriter w;
  w.raw(magic);
  w.u32(1);  // v1
  w.u32(id_field);
  if (version == 3) {
    // v3 added the segment-epoch machinery (manifest) and the store uid
    // (STORE meta); both are dropped in v1.
    if (is_manifest) {
      (void)r.u64();   // epoch counter
      w.u64(r.u64());  // active seq
      w.u64(r.u64());  // next seq
      const std::uint32_t nsealed = r.u32();
      w.u32(nsealed);
      for (std::uint32_t i = 0; i < nsealed; ++i) {
        w.u64(r.u64());  // seq
        w.u64(r.u64());  // records
        w.u64(r.u64());  // bytes
        (void)r.u64();   // seal epoch
      }
    } else {
      (void)r.u64();  // store uid
    }
  } else {
    w.raw(r.raw(r.remaining()));
  }
  w.u32(crc32(w.data()));
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << file;
  out.write(reinterpret_cast<const char*>(w.data().data()),
            static_cast<std::streamsize>(w.size()));
}

// Pre-refactor stores carry no scheme tag. They must keep loading — as
// legacy basic APKS, serving byte-identical results — and must still be
// refused by non-APKS backends.
TEST_F(BackendTest, UntaggedV1StoreLoadsAsLegacyApks) {
  const Pairing e(default_type_a_params());
  const Apks scheme(e, nursery_schema(1));
  ChaChaRng rng("backend-v1");
  TrustedAuthority ta(scheme, rng);
  CapabilityVerifier verifier(e, ta.ibs_params());
  verifier.register_authority("TA");

  constexpr std::size_t kRecords = 6;
  const std::vector<PlainIndex> rows = nursery_rows();
  const SignedCapability cap =
      ta.issue(nursery_point_query(rows[997 % rows.size()]), rng);
  std::vector<std::string> original;
  CloudServer::SearchStats original_stats;
  {
    // Written through the pre-backend (Pairing-based) path, as PR 3 did.
    ShardedStore store(e, dir_, two_shards());
    CloudServer writer(scheme, verifier);
    writer.attach_store(&store);
    for (std::size_t i = 0; i < kRecords; ++i) {
      (void)writer.store(
          scheme.gen_index(ta.public_key(), rows[(i * 997) % rows.size()],
                           rng),
          "row-" + std::to_string(i));
    }
    store.sync();
    original = writer.search(cap, &original_stats);
    ASSERT_FALSE(original.empty());
  }

  // Strip the scheme tags, as if the store had been written pre-refactor.
  downgrade_to_v1(dir_ / "STORE");
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.is_directory()) downgrade_to_v1(entry.path() / "MANIFEST");
  }

  // Legacy open path and backend open path both accept it as basic APKS.
  const ApksBackend backend(scheme);
  for (const bool use_backend : {false, true}) {
    const ShardedStoreOptions opts = two_shards();
    auto reopened = use_backend
                        ? std::make_unique<ShardedStore>(backend, dir_, opts)
                        : std::make_unique<ShardedStore>(e, dir_, opts);
    EXPECT_EQ(reopened->scheme(), SchemeKind::kApks);
    EXPECT_EQ(reopened->record_count(), kRecords);
    CloudServer restarted(scheme, verifier);
    EXPECT_EQ(restarted.load_from(*reopened), kRecords);
    CloudServer::SearchStats stats;
    EXPECT_EQ(restarted.search(cap, &stats), original);
    EXPECT_EQ(stats.scanned, original_stats.scanned);
    EXPECT_EQ(stats.matched, original_stats.matched);
  }

  // A v1 store is still not up for grabs by other schemes.
  const Mrqed mrqed(e, 2, 3);
  const MrqedBackend mrqed_backend(mrqed);
  EXPECT_THROW(ShardedStore(mrqed_backend, dir_, two_shards()),
               std::invalid_argument);
}

}  // namespace
}  // namespace apks
