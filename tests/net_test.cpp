// Network serving layer tests (net/wire.h, net/server.h, net/client.h):
//
//  - Loopback end-to-end equivalence: a remote search over the wire returns
//    byte-identical doc_refs and equivalent stats to the in-process
//    SearchEngine, for all three schemes (APKS, APKS+, MRQED^D).
//  - Session auth: signed queries verify once per session; rogue issuers,
//    mangled signatures and unchecked mode against a strict server are
//    refused with distinct statuses.
//  - Wire-codec hostility: fuzz-style sweeps of truncated / bit-flipped /
//    oversized / bad-magic frames through FrameReassembler and the message
//    decoders (mirroring store_test's torn-tail sweeps), plus raw-socket
//    garbage against a live server — every malformed input yields a clean
//    status frame or disconnect, never a crash or allocation blowup.
//  - Backpressure on the wire: per-request deadlines and engine admission
//    control surface as kDeadlineExceeded / kOverloaded result statuses
//    with truncated-but-well-formed prefix results.
//  - Graceful shutdown: stop() drains inflight batches, notifies idle
//    connections, refuses new ones.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "cloud/proxy.h"
#include "cloud/search_engine.h"
#include "cloud/server.h"
#include "common/failpoint.h"
#include "core/apks_backend.h"
#include "core/apks_plus.h"
#include "data/nursery.h"
#include "data/workload.h"
#include "mrqed/mrqed_backend.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"

namespace apks {
namespace {

using net::NetClient;
using net::NetServer;
using net::NetServerOptions;
using net::RemoteResult;
using net::WireStatus;

// The pairing/scheme setup and record encryption are expensive; build all
// three populated servers once and share them (read-only) across tests.
struct NetEnv {
  Pairing e;
  ChaChaRng rng;

  // APKS: the TA also provides the IBS layer every signed session uses.
  Apks apks;
  TrustedAuthority ta;
  CapabilityVerifier verifier;
  ApksBackend apks_backend;
  CloudServer apks_server;
  AnyQuery apks_query;

  // APKS+ records are fully proxy-transformed before storage (the rig
  // pattern of the serving chaos tests).
  ApksPlus plus;
  ApksPlusSetupResult plus_setup;
  ApksPlusBackend plus_backend;
  CloudServer plus_server;
  AnyQuery plus_query;

  Mrqed mrqed;
  MrqedBackend mrqed_backend;
  CloudServer mrqed_server;
  AnyQuery mrqed_query;

  // CloudServer copies the verifier, so "TA" must be registered before the
  // servers are constructed, not after.
  static CapabilityVerifier make_verifier(const Pairing& e,
                                          const IbsPublicParams& params) {
    CapabilityVerifier v(e, params);
    v.register_authority("TA");
    return v;
  }

  NetEnv()
      : e(default_type_a_params()),
        rng("net-test"),
        apks(e, nursery_schema(1)),
        ta(apks, rng),
        verifier(make_verifier(e, ta.ibs_params())),
        apks_backend(apks),
        apks_server(apks_backend, verifier),
        plus(e, nursery_schema(1)),
        plus_setup(plus.setup_plus(rng)),
        plus_backend(plus),
        plus_server(plus_backend, verifier),
        mrqed(e, 2, 3),
        mrqed_backend(mrqed),
        mrqed_server(mrqed_backend, verifier) {
    const std::vector<PlainIndex> rows = nursery_rows();

    for (std::size_t i = 0; i < 6; ++i) {
      const PlainIndex& row = rows[(i * 769) % rows.size()];
      (void)apks_server.store(apks.gen_index(ta.public_key(), row, rng),
                              "apks-" + std::to_string(i));
    }
    const SignedCapability apks_cap =
        ta.issue(nursery_point_query(rows[769 % rows.size()]), rng);
    apks_query = AnyQuery::own(SchemeKind::kApks, apks_cap.cap);

    ProxyPipeline chain = make_proxy_pipeline(plus, plus_setup.r, 2, rng);
    for (std::size_t i = 0; i < 6; ++i) {
      const PlainIndex& row = rows[(i * 1201) % rows.size()];
      (void)plus_server.store(
          chain.process(plus.partial_gen_index(plus_setup.pk, row, rng)),
          "plus-" + std::to_string(i));
    }
    plus_query = AnyQuery::own(
        SchemeKind::kApksPlus,
        plus.gen_cap(plus_setup.msk,
                     nursery_point_query(rows[1201 % rows.size()]), rng));

    MrqedPublicKey pk;
    MrqedMasterKey msk;
    mrqed.setup(rng, pk, msk);
    const std::vector<std::vector<std::uint64_t>> points = {
        {0, 0}, {1, 5}, {3, 3}, {4, 7}, {6, 2}, {7, 7}};
    for (std::size_t i = 0; i < points.size(); ++i) {
      (void)mrqed_server.store_any(
          AnyIndex::own(SchemeKind::kMrqed, mrqed.encrypt(pk, points[i], rng)),
          "pt-" + std::to_string(i));
    }
    mrqed_query = AnyQuery::own(
        SchemeKind::kMrqed,
        mrqed.gen_key(pk, msk, {{0, 3}, {0, 7}}, rng));  // pt-0, pt-1, pt-2
  }
};

NetEnv& env() {
  static NetEnv* e = new NetEnv();
  return *e;
}

NetServerOptions unchecked_options() {
  NetServerOptions opts;
  opts.allow_unchecked = true;
  return opts;
}

// Failpoints are process-global: start and end every test clean.
class NetTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::instance().clear_all(); }
  void TearDown() override { Failpoints::instance().clear_all(); }
};

// The acceptance bar of the serving layer: the remote path returns
// byte-identical doc_refs and equivalent stats to the in-process engine.
void expect_loopback_equivalent(const CloudServer& server,
                                const AnyQuery& query, SchemeKind kind) {
  SearchEngine engine(server, {.threads = 2, .block_records = 2});
  const SearchBackend& backend = server.backend();

  BatchMetrics bm;
  const auto local = engine.search_batch_unchecked_any({&query, 1}, &bm);
  ASSERT_EQ(local.size(), 1u);

  NetServer net(engine, unchecked_options());
  NetClient client;
  client.connect("127.0.0.1", net.port(), /*timeout_ms=*/10000);
  const net::HelloAckMsg hello = client.hello(kind);
  ASSERT_EQ(hello.status, WireStatus::kOk) << hello.message;
  EXPECT_EQ(hello.scheme, kind);
  EXPECT_EQ(hello.records, server.record_count());

  const net::AuthAckMsg auth = client.auth_unchecked(backend.encode_query(query));
  ASSERT_EQ(auth.status, WireStatus::kOk) << auth.message;
  EXPECT_EQ(auth.digest, backend.digest(query));

  const RemoteResult remote = client.search();
  EXPECT_EQ(remote.status, WireStatus::kOk);
  EXPECT_EQ(remote.refs, local[0]);
  EXPECT_EQ(remote.scanned, bm.per_query[0].scanned);
  EXPECT_EQ(remote.matched, bm.per_query[0].matched);
  EXPECT_EQ(remote.refs.size(), remote.matched);
  EXPECT_EQ(remote.flags, 0u);

  // Second search on the same session: the digest-keyed prepared-query
  // cache serves it, and the results stay identical.
  const RemoteResult again = client.search();
  EXPECT_EQ(again.status, WireStatus::kOk);
  EXPECT_EQ(again.refs, local[0]);
  EXPECT_GE(engine.cache_hits(), 1u);

  const net::NetServerStats stats = net.stats();
  EXPECT_EQ(stats.auth_ok, 1u);
  EXPECT_EQ(stats.searches_ok, 2u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST_F(NetTest, ApksLoopbackEquivalence) {
  expect_loopback_equivalent(env().apks_server, env().apks_query,
                             SchemeKind::kApks);
}

TEST_F(NetTest, ApksPlusLoopbackEquivalence) {
  expect_loopback_equivalent(env().plus_server, env().plus_query,
                             SchemeKind::kApksPlus);
}

TEST_F(NetTest, MrqedLoopbackEquivalence) {
  expect_loopback_equivalent(env().mrqed_server, env().mrqed_query,
                             SchemeKind::kMrqed);
}

// A small result-chunk size forces multi-frame streaming; reassembly must
// hand back the same refs in the same order.
TEST_F(NetTest, ResultStreamingAcrossChunks) {
  NetEnv& e = env();
  SearchEngine engine(e.mrqed_server, {.threads = 1});
  const auto local =
      engine.search_batch_unchecked_any({&e.mrqed_query, 1}, nullptr);
  ASSERT_GE(local[0].size(), 2u);

  NetServerOptions opts = unchecked_options();
  opts.result_chunk_refs = 1;  // one doc_ref per kResultChunk frame
  NetServer net(engine, opts);
  NetClient client;
  client.connect("127.0.0.1", net.port(), 10000);
  ASSERT_EQ(client.hello(SchemeKind::kMrqed).status, WireStatus::kOk);
  ASSERT_EQ(client
                .auth_unchecked(
                    e.mrqed_backend.encode_query(e.mrqed_query))
                .status,
            WireStatus::kOk);
  const RemoteResult remote = client.search();
  EXPECT_EQ(remote.status, WireStatus::kOk);
  EXPECT_EQ(remote.refs, local[0]);
}

// --- session establishment ---------------------------------------------------

TEST_F(NetTest, SignedSessionAuthAcceptsAndRejects) {
  NetEnv& e = env();
  SearchEngine engine(e.apks_server, {.threads = 1});
  NetServerOptions opts;  // allow_unchecked stays false: strict server
  NetServer net(engine, opts);

  const std::vector<std::uint8_t> query_bytes =
      e.apks_backend.encode_query(e.apks_query);
  const SignedQuery sq = e.ta.issue_query(e.apks_backend, e.apks_query, e.rng);
  const std::vector<std::uint8_t> sig_bytes =
      net::encode_signature(e.e.curve(), sq.sig);

  NetClient client;
  client.connect("127.0.0.1", net.port(), 10000);
  ASSERT_EQ(client.hello(SchemeKind::kApks).status, WireStatus::kOk);

  // Unchecked mode against a strict server: refused before any crypto.
  EXPECT_EQ(client.auth_unchecked(query_bytes).status,
            WireStatus::kUnauthorized);
  // ...and with no authorized session, searches are refused too.
  EXPECT_EQ(client.search().status, WireStatus::kUnauthorized);

  // A rogue issuer's signature does not verify.
  EXPECT_EQ(client.auth_signed(query_bytes, "rogue", sig_bytes).status,
            WireStatus::kUnauthorized);

  // Mangled signature bytes are a malformed message, not a crash.
  std::vector<std::uint8_t> torn(sig_bytes.begin(),
                                 sig_bytes.begin() +
                                     static_cast<std::ptrdiff_t>(
                                         sig_bytes.size() / 2));
  EXPECT_EQ(client.auth_signed(query_bytes, sq.issuer, torn).status,
            WireStatus::kBadRequest);

  // The genuine signature establishes the session; searches then flow.
  const net::AuthAckMsg ok = client.auth_signed(query_bytes, sq.issuer,
                                                sig_bytes);
  ASSERT_EQ(ok.status, WireStatus::kOk) << ok.message;
  const RemoteResult remote = client.search();
  EXPECT_EQ(remote.status, WireStatus::kOk);
  EXPECT_FALSE(remote.refs.empty());

  const net::NetServerStats stats = net.stats();
  EXPECT_EQ(stats.auth_ok, 1u);
  EXPECT_EQ(stats.auth_rejected, 3u);
}

TEST_F(NetTest, SchemeAndVersionMismatchRefusedAtHello) {
  NetEnv& e = env();
  SearchEngine engine(e.apks_server, {.threads = 1});
  NetServer net(engine, unchecked_options());

  {
    NetClient client;
    client.connect("127.0.0.1", net.port(), 10000);
    const net::HelloAckMsg ack = client.hello(SchemeKind::kMrqed);
    EXPECT_EQ(ack.status, WireStatus::kBadRequest);
    EXPECT_EQ(ack.scheme, SchemeKind::kApks);  // the server names its scheme
    EXPECT_NE(ack.message.find("mismatch"), std::string::npos);
  }

  // An auth frame before hello is a protocol error: terminal status frame.
  {
    NetClient client;
    client.connect("127.0.0.1", net.port(), 10000);
    EXPECT_THROW((void)client.auth_unchecked({}), ServingError);
  }
}

// --- wire-codec hostility ----------------------------------------------------

// Every message type's encode() output, for sweep fodder.
std::vector<std::vector<std::uint8_t>> sample_payloads() {
  net::ResultChunkMsg chunk;
  chunk.request_id = 7;
  chunk.refs = {"alpha", "beta", "gamma"};
  net::ResultEndMsg end;
  end.request_id = 7;
  end.scanned = 100;
  end.matched = 3;
  net::AuthMsg auth;
  auth.mode = net::AuthMsg::Mode::kSigned;
  auth.query = {1, 2, 3, 4};
  auth.issuer = "TA";
  auth.sig = {9, 9, 9};
  net::AuthAckMsg auth_ack;
  net::SearchMsg search;
  search.request_id = 7;
  net::StatusMsg status{WireStatus::kShutdown, "bye"};
  net::ShardSearchMsg shard_search;
  shard_search.request_id = 7;
  shard_search.map_version = 3;
  shard_search.total_shards = 4;
  shard_search.shards = {0, 2};
  net::ShardChunkMsg shard_chunk;
  shard_chunk.request_id = 7;
  shard_chunk.hits = {{1, "alpha"}, {5, "beta"}, {9, "gamma"}};
  net::PingMsg ping{42};
  net::PongMsg pong{42, 3, 2};
  net::MapUpdateMsg map_update;
  map_update.map_bytes = {5, 4, 3, 2, 1};
  net::MapUpdateAckMsg map_ack;
  map_ack.status = WireStatus::kBadRequest;
  map_ack.version = 9;
  map_ack.message = "not newer";
  return {net::HelloMsg{}.encode(),  net::HelloAckMsg{}.encode(),
          auth.encode(),             auth_ack.encode(),
          search.encode(),           chunk.encode(),
          end.encode(),              status.encode(),
          shard_search.encode(),     shard_chunk.encode(),
          ping.encode(),             pong.encode(),
          map_update.encode(),       map_ack.encode()};
}

// Decoding a payload must either succeed or throw std::invalid_argument /
// std::out_of_range; anything else (crash, UB) fails the test harness.
void decode_hostile(std::span<const std::uint8_t> payload) {
  try {
    const net::ParsedFrame frame = net::parse_frame(payload);
    switch (frame.type) {
      case net::MsgType::kHello: (void)net::HelloMsg::decode(frame.body); break;
      case net::MsgType::kHelloAck:
        (void)net::HelloAckMsg::decode(frame.body);
        break;
      case net::MsgType::kAuth: (void)net::AuthMsg::decode(frame.body); break;
      case net::MsgType::kAuthAck:
        (void)net::AuthAckMsg::decode(frame.body);
        break;
      case net::MsgType::kSearch:
        (void)net::SearchMsg::decode(frame.body);
        break;
      case net::MsgType::kResultChunk:
        (void)net::ResultChunkMsg::decode(frame.body);
        break;
      case net::MsgType::kResultEnd:
        (void)net::ResultEndMsg::decode(frame.body);
        break;
      case net::MsgType::kStatus:
        (void)net::StatusMsg::decode(frame.body);
        break;
      case net::MsgType::kShardSearch:
        (void)net::ShardSearchMsg::decode(frame.body);
        break;
      case net::MsgType::kShardChunk:
        (void)net::ShardChunkMsg::decode(frame.body);
        break;
      case net::MsgType::kPing: (void)net::PingMsg::decode(frame.body); break;
      case net::MsgType::kPong: (void)net::PongMsg::decode(frame.body); break;
      case net::MsgType::kMapUpdate:
        (void)net::MapUpdateMsg::decode(frame.body);
        break;
      case net::MsgType::kMapUpdateAck:
        (void)net::MapUpdateAckMsg::decode(frame.body);
        break;
    }
  } catch (const std::invalid_argument&) {
  } catch (const std::out_of_range&) {
  }
}

// Torn-tail / bit-flip sweep over every message type, mirroring the
// store_test segment sweeps: truncations at every byte boundary and every
// single-bit flip, through both the frame layer and the decoders.
TEST_F(NetTest, HostileFrameSweepNeverCrashes) {
  for (const auto& payload : sample_payloads()) {
    const std::vector<std::uint8_t> frame = net::encode_frame(payload);

    // Truncations: an incomplete frame never yields a payload.
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
      net::FrameReassembler r;
      r.feed({frame.data(), cut});
      EXPECT_FALSE(r.next().has_value()) << "cut=" << cut;
    }

    // Bit flips: the frame layer (CRC/len) catches most; whatever slips
    // through to a decoder must throw cleanly.
    for (std::size_t byte = 0; byte < frame.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<std::uint8_t> mutated = frame;
        mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
        net::FrameReassembler r;
        r.feed(mutated);
        if (auto got = r.next(); got.has_value()) {
          decode_hostile(*got);
        }
      }
    }

    // Truncated payloads reframed with a valid CRC reach the decoders.
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      decode_hostile(std::span<const std::uint8_t>(payload.data(), cut));
    }
  }
}

TEST_F(NetTest, OversizedLengthIsAProtocolErrorNotAnAllocation) {
  net::FrameReassembler r;
  // A hostile length field: 4 GiB - 1. The reassembler must flag the error
  // on header arrival without buffering toward that length.
  const std::uint8_t header[8] = {0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0};
  r.feed(header);
  EXPECT_FALSE(r.next().has_value());
  EXPECT_TRUE(r.error());
  EXPECT_LT(r.buffered(), 64u);

  // A poisoned stream stays poisoned: later valid frames are not parsed.
  const auto good = net::encode_frame(net::HelloMsg{}.encode());
  r.feed(good);
  EXPECT_FALSE(r.next().has_value());
}

// Raw-socket garbage against a live server: each hostile client gets a
// clean disconnect, and the server keeps serving well-formed sessions.
TEST_F(NetTest, RawSocketGarbageDisconnectsCleanly) {
  NetEnv& e = env();
  SearchEngine engine(e.apks_server, {.threads = 1});
  NetServer net(engine, unchecked_options());

  const auto hostile_round = [&](std::span<const std::uint8_t> bytes) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(net.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    timeval tv{5, 0};
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    (void)::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    // Drain until the server hangs up (status frames included); the
    // disconnect — not a hang, not a crash — is the contract.
    std::uint8_t buf[4096];
    ssize_t n;
    do {
      n = ::recv(fd, buf, sizeof(buf), 0);
    } while (n > 0);
    EXPECT_EQ(n, 0) << "server did not close the hostile connection";
    ::close(fd);
  };

  // Bad magic / not-a-frame-at-all.
  const std::uint8_t junk[] = {'G', 'E', 'T', ' ', '/', '\r', '\n', '\r', '\n'};
  hostile_round(junk);
  // Oversized length header.
  const std::uint8_t huge[8] = {0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0};
  hostile_round(huge);
  // Valid frame, CRC mismatch.
  auto bad_crc = net::encode_frame(net::HelloMsg{}.encode());
  bad_crc[4] ^= 0x01;
  hostile_round(bad_crc);
  // Valid frame, unknown message type.
  hostile_round(net::encode_frame(std::vector<std::uint8_t>{0x7f, 1, 2}));
  // Valid frame, wrong scheme tag inside the hello.
  {
    auto payload = net::HelloMsg{}.encode();
    payload.back() = 0x7f;  // scheme byte is last
    hostile_round(net::encode_frame(payload));
  }

  EXPECT_GE(net.stats().protocol_errors, 4u);

  // The server is still healthy: a well-formed session serves results.
  NetClient client;
  client.connect("127.0.0.1", net.port(), 10000);
  ASSERT_EQ(client.hello(SchemeKind::kApks).status, WireStatus::kOk);
  ASSERT_EQ(client.auth_unchecked(e.apks_backend.encode_query(e.apks_query))
                .status,
            WireStatus::kOk);
  EXPECT_EQ(client.search().status, WireStatus::kOk);
}

// --- backpressure on the wire ------------------------------------------------

TEST_F(NetTest, DeadlineAndOverloadSurfaceAsDistinctWireStatuses) {
  NetEnv& e = env();
  SearchEngine engine(e.apks_server,
                      {.threads = 1, .block_records = 1, .max_inflight = 1});
  NetServer net(engine, unchecked_options());
  const std::vector<std::uint8_t> query_bytes =
      e.apks_backend.encode_query(e.apks_query);

  // Fault-free reference for prefix comparison.
  const auto full = engine.search_batch_unchecked_any({&e.apks_query, 1});

  // Each scan block stalls 30 ms (6 records, 1 per block: ~180 ms/scan).
  FailpointPolicy slow;
  slow.action = FailAction::kDelay;
  slow.delay_ms = 30;
  Failpoints::instance().set("engine.scan_block", slow);

  // Overload: a slow search holds the engine's only inflight slot; a
  // second session's search is shed with kOverloaded on the wire.
  std::thread holder([&] {
    NetClient client;
    client.connect("127.0.0.1", net.port(), 10000);
    ASSERT_EQ(client.hello(SchemeKind::kApks).status, WireStatus::kOk);
    ASSERT_EQ(client.auth_unchecked(query_bytes).status, WireStatus::kOk);
    const RemoteResult r = client.search();
    EXPECT_EQ(r.status, WireStatus::kOk);
    EXPECT_EQ(r.refs, full[0]);
  });
  for (int spin = 0; spin < 5000 && engine.inflight() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(engine.inflight(), 1u) << "holder search never started";

  NetClient shed;
  shed.connect("127.0.0.1", net.port(), 10000);
  ASSERT_EQ(shed.hello(SchemeKind::kApks).status, WireStatus::kOk);
  ASSERT_EQ(shed.auth_unchecked(query_bytes).status, WireStatus::kOk);
  const RemoteResult overloaded = shed.search();
  EXPECT_EQ(overloaded.status, WireStatus::kOverloaded);
  EXPECT_TRUE(overloaded.refs.empty());
  holder.join();

  // Deadline: a 40 ms budget dies mid-scan. With partial_ok the client
  // receives the truncated-but-well-formed prefix; without it, status only.
  const RemoteResult partial = shed.search(/*deadline_ms=*/40,
                                           /*partial_ok=*/true);
  EXPECT_EQ(partial.status, WireStatus::kDeadlineExceeded);
  EXPECT_NE(partial.flags & net::kResultDeadlineExceeded, 0);
  EXPECT_NE(partial.flags & net::kResultTruncated, 0);
  EXPECT_LT(partial.scanned, e.apks_server.record_count());
  ASSERT_LE(partial.refs.size(), full[0].size());
  for (std::size_t i = 0; i < partial.refs.size(); ++i) {
    EXPECT_EQ(partial.refs[i], full[0][i]);
  }

  const RemoteResult status_only = shed.search(/*deadline_ms=*/40,
                                               /*partial_ok=*/false);
  EXPECT_EQ(status_only.status, WireStatus::kDeadlineExceeded);
  EXPECT_TRUE(status_only.refs.empty());

  const net::NetServerStats stats = net.stats();
  EXPECT_EQ(stats.searches_overloaded, 1u);
  EXPECT_EQ(stats.searches_deadline, 2u);
  EXPECT_EQ(stats.searches_ok, 1u);
}

// --- graceful shutdown -------------------------------------------------------

TEST_F(NetTest, GracefulStopDrainsInflightAndRefusesNewConnections) {
  NetEnv& e = env();
  SearchEngine engine(e.apks_server, {.threads = 1, .block_records = 1});
  auto net = std::make_unique<NetServer>(engine, unchecked_options());
  const std::uint16_t port = net->port();
  const std::vector<std::uint8_t> query_bytes =
      e.apks_backend.encode_query(e.apks_query);

  // Slow scan so stop() genuinely overlaps an inflight batch.
  FailpointPolicy slow;
  slow.action = FailAction::kDelay;
  slow.delay_ms = 20;
  Failpoints::instance().set("engine.scan_block", slow);

  std::atomic<bool> finished{false};
  std::thread inflight([&] {
    NetClient client;
    client.connect("127.0.0.1", port, 10000);
    ASSERT_EQ(client.hello(SchemeKind::kApks).status, WireStatus::kOk);
    ASSERT_EQ(client.auth_unchecked(query_bytes).status, WireStatus::kOk);
    try {
      const RemoteResult r = client.search();
      // Drained within the grace window (kOk) or cancelled at a block
      // boundary (kCancelled): both are well-formed terminal frames.
      EXPECT_TRUE(r.status == WireStatus::kOk ||
                  r.status == WireStatus::kCancelled)
          << net::wire_status_name(r.status);
    } catch (const ServingError&) {
      // A kShutdown status frame (or close) mid-stream is also clean.
    }
    finished = true;
  });
  for (int spin = 0; spin < 5000 && net->inflight_jobs() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  net->stop(/*grace_ms=*/5000);
  EXPECT_TRUE(net->stopped());
  EXPECT_EQ(net->inflight_jobs(), 0u);
  inflight.join();
  EXPECT_TRUE(finished.load());

  // The listener is gone: new connections are refused.
  NetClient late;
  EXPECT_THROW(late.connect("127.0.0.1", port, 1000), ServingError);

  // stop() is idempotent (and the destructor tolerates a stopped server).
  net->stop(0);
  net.reset();
}

// --- client socket timeouts --------------------------------------------------

// A server whose io loop stalls (net.read delay) must trip the client's
// read timeout: the typed kDeadlineExceeded surfaces, and the connection
// is torn down — never reused with a half-read frame in its buffer.
TEST_F(NetTest, ClientReadTimeoutSurfacesTypedErrorAndDropsConnection) {
  NetEnv& e = env();
  SearchEngine engine(e.apks_server, {.threads = 1});
  NetServer net(engine, unchecked_options());

  NetClient client;
  client.connect("127.0.0.1", net.port(), /*timeout_ms=*/200);
  ASSERT_EQ(client.hello(SchemeKind::kApks).status, WireStatus::kOk);
  ASSERT_EQ(client.auth_unchecked(e.apks_backend.encode_query(e.apks_query))
                .status,
            WireStatus::kOk);

  // Every server-side read now stalls well past the client's 200 ms
  // socket budget.
  FailpointPolicy stall;
  stall.action = FailAction::kDelay;
  stall.delay_ms = 1500;
  Failpoints::instance().set(net::kSiteRead, stall);

  try {
    (void)client.search();
    FAIL() << "a stalled server must trip the client read timeout";
  } catch (const ServingError& ex) {
    EXPECT_EQ(ex.code(), ErrorCode::kDeadlineExceeded) << ex.what();
  }
  // The timed-out connection is NOT reusable: the socket was closed, and
  // another call reports the disconnection instead of misparsing bytes
  // from the abandoned exchange.
  EXPECT_FALSE(client.connected());
  try {
    (void)client.search();
    FAIL() << "a timed-out client must not silently reuse the socket";
  } catch (const ServingError& ex) {
    EXPECT_EQ(ex.code(), ErrorCode::kIo);
  }

  // A fresh connect (after the failpoint clears) works again.
  Failpoints::instance().clear_all();
  client.connect("127.0.0.1", net.port(), 10000);
  EXPECT_EQ(client.hello(SchemeKind::kApks).status, WireStatus::kOk);
}

// A full accept queue (the listener never calls accept) must trip the
// client's CONNECT timeout with the same typed error.
TEST_F(NetTest, ClientConnectTimeoutSurfacesTypedError) {
  // A raw listener with a minimal backlog that never accepts.
  const int listener = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, /*backlog=*/1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);

  // Fill the accept queue with throwaway connects so further SYNs are
  // dropped and the poll below can only time out.
  std::vector<int> fillers;
  for (int i = 0; i < 16; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0) break;
    (void)::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    fillers.push_back(fd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  NetClient client;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    client.connect("127.0.0.1", port, /*timeout_ms=*/300);
    // Kernels with a generous backlog may still take the connection —
    // then there is nothing to assert against.
  } catch (const ServingError& ex) {
    EXPECT_EQ(ex.code(), ErrorCode::kDeadlineExceeded) << ex.what();
    const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - t0);
    EXPECT_GE(waited.count(), 250);   // the timeout actually gated the wait
    EXPECT_LE(waited.count(), 5000);  // and it fired, not TCP's own timer
    EXPECT_FALSE(client.connected());
  }

  for (const int fd : fillers) ::close(fd);
  ::close(listener);
}

// abort() from another thread unblocks a client stuck reading a reply and
// surfaces as a transport error on the owning thread — the hedged-read
// loser-cancel path.
TEST_F(NetTest, CrossThreadAbortUnblocksAStalledRead) {
  NetEnv& e = env();
  SearchEngine engine(e.apks_server, {.threads = 1});
  NetServer net(engine, unchecked_options());

  NetClient client;
  client.connect("127.0.0.1", net.port(), /*timeout_ms=*/0);  // block forever
  ASSERT_EQ(client.hello(SchemeKind::kApks).status, WireStatus::kOk);
  ASSERT_EQ(client.auth_unchecked(e.apks_backend.encode_query(e.apks_query))
                .status,
            WireStatus::kOk);

  FailpointPolicy stall;
  stall.action = FailAction::kDelay;
  stall.delay_ms = 2000;
  Failpoints::instance().set(net::kSiteRead, stall);

  std::thread aborter([&client] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    client.abort();
  });
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW((void)client.search(), ServingError);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_LT(waited.count(), 1900);  // unblocked by abort, not the failpoint
  aborter.join();
  client.close();
  EXPECT_FALSE(client.connected());
}

}  // namespace
}  // namespace apks
