// Tests for attribute hierarchies (numeric range trees and semantic trees).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/hierarchy.h"

namespace apks {
namespace {

// The paper's Fig. 3(a): age 0-100 split into decades via two levels.
AttributeHierarchy age_hierarchy() {
  // Levels: 1 root [0,100]; 2: ~thirds; 3: ~tenths. Use branching 3, depth 3.
  return AttributeHierarchy::numeric("age", 0, 100, 3, 3);
}

// The paper's Fig. 3(b): region tree MA -> {East, Central, West} -> cities.
AttributeHierarchy region_hierarchy() {
  AttributeHierarchy::Spec spec{
      "MA",
      {{"East MA", {{"Boston", {}}, {"Quincy", {}}}},
       {"Central MA", {{"Worcester", {}}, {"Framingham", {}}}},
       {"West MA", {{"Springfield", {}}, {"Pittsfield", {}}}}}};
  return AttributeHierarchy::semantic("region", spec);
}

TEST(Hierarchy, NumericStructure) {
  const auto h = age_hierarchy();
  EXPECT_EQ(h.height(), 3u);
  EXPECT_TRUE(h.is_numeric());
  EXPECT_EQ(h.labels_at_level(1).size(), 1u);
  EXPECT_EQ(h.labels_at_level(2).size(), 3u);
  EXPECT_EQ(h.labels_at_level(3).size(), 9u);
  EXPECT_EQ(h.node(0).label, "0-100");
}

TEST(Hierarchy, NumericPathCoversValue) {
  const auto h = age_hierarchy();
  for (const std::uint64_t v : {0ull, 25ull, 33ull, 61ull, 100ull}) {
    const auto path = h.path_for_value(v);
    ASSERT_EQ(path.size(), 3u);
    EXPECT_EQ(path[0], "0-100");
    // Every node on the path contains v.
    for (const auto& label : path) {
      const auto idx = h.find(label);
      ASSERT_TRUE(idx.has_value());
      EXPECT_LE(h.node(*idx).lo, v);
      EXPECT_GE(h.node(*idx).hi, v);
    }
  }
}

TEST(Hierarchy, NumericPathRejectsOutOfDomain) {
  const auto h = age_hierarchy();
  EXPECT_THROW((void)h.path_for_value(101), std::invalid_argument);
}

TEST(Hierarchy, LevelsPartitionDomain) {
  const auto h = age_hierarchy();
  for (std::size_t level = 1; level <= 3; ++level) {
    std::uint64_t covered = 0;
    for (const auto& label : h.labels_at_level(level)) {
      const auto idx = h.find(label);
      ASSERT_TRUE(idx.has_value());
      covered += h.node(*idx).hi - h.node(*idx).lo + 1;
    }
    EXPECT_EQ(covered, 101u) << "level " << level;
  }
}

TEST(Hierarchy, CoverRangeMinimal) {
  const auto h = age_hierarchy();
  // Level 2 nodes are 0-33, 34-66, 67-100.
  const auto cover = h.cover_range(0, 66, 2);
  EXPECT_EQ(cover.size(), 2u);
  EXPECT_TRUE(h.range_is_exact(0, 66, 2));
  EXPECT_FALSE(h.range_is_exact(0, 50, 2));
  // A range inside one node needs just that node.
  EXPECT_EQ(h.cover_range(40, 60, 2).size(), 1u);
  // Finest level: single values when the tree bottoms out.
  const auto fine = h.cover_range(35, 36, 3);
  EXPECT_EQ(fine.size(), 1u);  // both fall into one level-3 bucket
}

TEST(Hierarchy, SingleValueLeavesWhenDeep) {
  const auto h = AttributeHierarchy::numeric("small", 0, 7, 2, 4);
  EXPECT_EQ(h.labels_at_level(4).size(), 8u);
  const auto path = h.path_for_value(5);
  EXPECT_EQ(path.back(), "5");
  EXPECT_TRUE(h.range_is_exact(5, 5, 4));
}

TEST(Hierarchy, SemanticStructureAndPaths) {
  const auto h = region_hierarchy();
  EXPECT_EQ(h.height(), 3u);
  EXPECT_FALSE(h.is_numeric());
  const auto path = h.path_for_leaf("Worcester");
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], "MA");
  EXPECT_EQ(path[1], "Central MA");
  EXPECT_EQ(path[2], "Worcester");
}

TEST(Hierarchy, SemanticRejectsNonLeafPaths) {
  const auto h = region_hierarchy();
  EXPECT_THROW((void)h.path_for_leaf("East MA"), std::invalid_argument);
  EXPECT_THROW((void)h.path_for_leaf("nowhere"), std::invalid_argument);
  EXPECT_THROW((void)h.path_for_value(3), std::logic_error);
  EXPECT_THROW((void)h.cover_range(0, 1, 2), std::logic_error);
}

TEST(Hierarchy, SemanticRequiresBalance) {
  AttributeHierarchy::Spec lopsided{
      "root", {{"a", {{"a1", {}}}}, {"b", {}}}};
  EXPECT_THROW((void)AttributeHierarchy::semantic("x", lopsided),
               std::invalid_argument);
}

TEST(Hierarchy, DuplicateLabelsRejected) {
  AttributeHierarchy::Spec dup{"root", {{"a", {}}, {"a", {}}}};
  EXPECT_THROW((void)AttributeHierarchy::semantic("x", dup),
               std::invalid_argument);
}

TEST(Hierarchy, MultiLevelCoverExactAndDisjoint) {
  const auto h = AttributeHierarchy::numeric("v", 0, 63, 2, 7);  // leaves=1
  ChaChaRng rng("mlc");
  for (int trial = 0; trial < 40; ++trial) {
    const std::uint64_t a = rng.next_below(64);
    const std::uint64_t b = rng.next_below(64);
    const std::uint64_t lo = std::min(a, b), hi = std::max(a, b);
    bool exact = false;
    const auto cover = h.multi_level_cover(lo, hi, &exact);
    EXPECT_TRUE(exact);  // single-value leaves: always exact
    std::vector<int> hits(64, 0);
    for (const std::size_t idx : cover) {
      const auto& node = h.node(idx);
      for (std::uint64_t v = node.lo; v <= node.hi; ++v) hits[v]++;
    }
    for (std::uint64_t v = 0; v < 64; ++v) {
      EXPECT_EQ(hits[v], (v >= lo && v <= hi) ? 1 : 0) << v;
    }
    // Canonical covers over a binary tree use at most 2*depth nodes.
    EXPECT_LE(cover.size(), 2 * (h.height() - 1));
  }
}

TEST(Hierarchy, MultiLevelCoverReportsOverApproximation) {
  // Tree bottoming out at width-2 leaves: odd endpoints cannot be exact.
  const auto h = AttributeHierarchy::numeric("v", 0, 15, 2, 4);
  bool exact = true;
  const auto cover = h.multi_level_cover(1, 14, &exact);
  EXPECT_FALSE(exact);
  EXPECT_FALSE(cover.empty());
  // An aligned range is exact.
  (void)h.multi_level_cover(2, 13, &exact);
  EXPECT_TRUE(exact);
  EXPECT_THROW((void)h.multi_level_cover(5, 2), std::invalid_argument);
}

TEST(Hierarchy, FindIsExact) {
  const auto h = region_hierarchy();
  EXPECT_TRUE(h.find("Boston").has_value());
  EXPECT_FALSE(h.find("boston").has_value());
  EXPECT_FALSE(h.find("Bost").has_value());
}

TEST(Hierarchy, ConstructorValidation) {
  EXPECT_THROW((void)AttributeHierarchy::numeric("x", 5, 4, 2, 2),
               std::invalid_argument);
  EXPECT_THROW((void)AttributeHierarchy::numeric("x", 0, 10, 1, 2),
               std::invalid_argument);
  EXPECT_THROW((void)AttributeHierarchy::numeric("x", 0, 10, 2, 0),
               std::invalid_argument);
}

TEST(Hierarchy, BadLevelArguments) {
  const auto h = age_hierarchy();
  EXPECT_THROW((void)h.cover_range(0, 10, 0), std::invalid_argument);
  EXPECT_THROW((void)h.cover_range(0, 10, 9), std::invalid_argument);
}

}  // namespace
}  // namespace apks
