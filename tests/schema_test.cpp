// Tests for index/query conversion (paper Fig. 4) and plaintext reference
// matching semantics.
#include <gtest/gtest.h>

#include "core/schema.h"
#include "core/time_attr.h"

namespace apks {
namespace {

std::shared_ptr<const AttributeHierarchy> age_h() {
  return std::make_shared<AttributeHierarchy>(
      AttributeHierarchy::numeric("age", 0, 100, 3, 3));
}

std::shared_ptr<const AttributeHierarchy> region_h() {
  AttributeHierarchy::Spec spec{
      "MA",
      {{"East MA", {{"Boston", {}}, {"Quincy", {}}}},
       {"Central MA", {{"Worcester", {}}, {"Framingham", {}}}},
       {"West MA", {{"Springfield", {}}, {"Pittsfield", {}}}}}};
  return std::make_shared<AttributeHierarchy>(
      AttributeHierarchy::semantic("region", spec));
}

// The paper's running example: age (hier), sex (flat), region (hier),
// illness (flat), provider (flat).
Schema phr_schema() {
  return Schema({{"age", age_h(), 2},
                 {"sex", nullptr, 1},
                 {"region", region_h(), 2},
                 {"illness", nullptr, 2},
                 {"provider", nullptr, 1}});
}

PlainIndex alice() {
  return {{"25", "Female", "Worcester", "Flu", "Hospital A"}};
}
PlainIndex bob() {
  return {{"61", "Male", "Boston", "Diabetes", "Hospital B"}};
}

TEST(Schema, ConvertedLayout) {
  const Schema s = phr_schema();
  EXPECT_EQ(s.original_dims(), 5u);
  // age expands to 3, region to 3, flats to 1 each: m' = 3+1+3+1+1 = 9.
  EXPECT_EQ(s.converted_dims(), 9u);
  // n = sum d_i + 1 = (3*2) + 1 + (3*2) + 2 + 1 + 1 = 17.
  EXPECT_EQ(s.vector_length(), 17u);
  EXPECT_EQ(s.fields()[0].name, "age#1");
  EXPECT_EQ(s.fields()[3].name, "sex");
  EXPECT_EQ(s.fields()[4].name, "region#1");
  EXPECT_EQ(s.fields()[8].name, "provider");
}

TEST(Schema, IndexConversionExpandsPaths) {
  const Schema s = phr_schema();
  const auto ci = s.convert_index(alice());
  ASSERT_EQ(ci.keywords.size(), 9u);
  EXPECT_EQ(ci.keywords[0], "0-100");  // age#1
  EXPECT_EQ(ci.keywords[3], "Female");
  EXPECT_EQ(ci.keywords[4], "MA");
  EXPECT_EQ(ci.keywords[5], "Central MA");
  EXPECT_EQ(ci.keywords[6], "Worcester");
  EXPECT_EQ(ci.keywords[8], "Hospital A");
}

TEST(Schema, QueryConversionRange) {
  const Schema s = phr_schema();
  Query q{{QueryTerm::range(0, 66, 2), QueryTerm::any(), QueryTerm::any(),
           QueryTerm::any(), QueryTerm::any()}};
  const auto cq = s.convert_query(q);
  // age#2 (field index 1) gets the two level-2 covers; everything else is
  // don't care.
  EXPECT_TRUE(cq.per_field[0].empty());
  EXPECT_EQ(cq.per_field[1].size(), 2u);
  EXPECT_TRUE(cq.per_field[2].empty());
  for (std::size_t f = 3; f < 9; ++f) EXPECT_TRUE(cq.per_field[f].empty());
}

TEST(Schema, QueryConversionSemantic) {
  const Schema s = phr_schema();
  Query q{{QueryTerm::any(), QueryTerm::equals("Male"),
           QueryTerm::semantic({"East MA"}), QueryTerm::any(),
           QueryTerm::any()}};
  const auto cq = s.convert_query(q);
  EXPECT_EQ(cq.per_field[3], std::vector<std::string>{"Male"});
  // region#2 is field index 5.
  EXPECT_EQ(cq.per_field[5], std::vector<std::string>{"East MA"});
  EXPECT_TRUE(cq.per_field[4].empty());
  EXPECT_TRUE(cq.per_field[6].empty());
}

TEST(Schema, EqualityOnHierarchicalFieldTargetsLeaf) {
  const Schema s = phr_schema();
  Query q{{QueryTerm::equals("25"), QueryTerm::any(), QueryTerm::any(),
           QueryTerm::any(), QueryTerm::any()}};
  const auto cq = s.convert_query(q);
  EXPECT_TRUE(cq.per_field[0].empty());
  EXPECT_TRUE(cq.per_field[1].empty());
  EXPECT_EQ(cq.per_field[2].size(), 1u);  // age#3 leaf bucket containing 25
}

TEST(Schema, MatchesPlainReferenceSemantics) {
  const Schema s = phr_schema();
  // The paper's example query: (31<=age<=100) & sex=Male & region in
  // East MA & provider=Hospital A — adjusted to our tree boundaries.
  Query q{{QueryTerm::range(34, 100, 2), QueryTerm::equals("Male"),
           QueryTerm::semantic({"East MA"}), QueryTerm::any(),
           QueryTerm::any()}};
  EXPECT_FALSE(s.matches_plain(alice(), q));  // female, 25, Central MA
  // Bob: 61 in [34,100], Male, Boston in East MA.
  EXPECT_TRUE(s.matches_plain(bob(), q));
}

TEST(Schema, SubsetQueryOnFlatField) {
  const Schema s = phr_schema();
  Query q{{QueryTerm::any(), QueryTerm::any(), QueryTerm::any(),
           QueryTerm::subset({"Flu", "Diabetes"}), QueryTerm::any()}};
  EXPECT_TRUE(s.matches_plain(alice(), q));
  EXPECT_TRUE(s.matches_plain(bob(), q));
  Query q2{{QueryTerm::any(), QueryTerm::any(), QueryTerm::any(),
            QueryTerm::subset({"Cancer", "Asthma"}), QueryTerm::any()}};
  EXPECT_FALSE(s.matches_plain(alice(), q2));
}

TEST(Schema, OrBudgetEnforced) {
  const Schema s = phr_schema();
  // illness has d=2; three ORs must be rejected.
  Query q{{QueryTerm::any(), QueryTerm::any(), QueryTerm::any(),
           QueryTerm::subset({"a", "b", "c"}), QueryTerm::any()}};
  EXPECT_THROW((void)s.convert_query(q), std::invalid_argument);
  // A range needing 3 level-3 nodes on age (d=2) must be rejected too.
  Query q2{{QueryTerm::range(0, 100, 3), QueryTerm::any(), QueryTerm::any(),
            QueryTerm::any(), QueryTerm::any()}};
  EXPECT_THROW((void)s.convert_query(q2), std::invalid_argument);
  // The same range at level 1 is a single node: fine.
  Query q3{{QueryTerm::range(0, 100, 1), QueryTerm::any(), QueryTerm::any(),
            QueryTerm::any(), QueryTerm::any()}};
  EXPECT_NO_THROW((void)s.convert_query(q3));
}

TEST(Schema, KindMismatchesRejected) {
  const Schema s = phr_schema();
  // Range on a flat field.
  Query q{{QueryTerm::any(), QueryTerm::range(0, 1, 1), QueryTerm::any(),
           QueryTerm::any(), QueryTerm::any()}};
  EXPECT_THROW((void)s.convert_query(q), std::invalid_argument);
  // Semantic on a flat field.
  Query q2{{QueryTerm::any(), QueryTerm::semantic({"x"}), QueryTerm::any(),
            QueryTerm::any(), QueryTerm::any()}};
  EXPECT_THROW((void)s.convert_query(q2), std::invalid_argument);
  // Semantic with mixed levels.
  Query q3{{QueryTerm::any(), QueryTerm::any(),
            QueryTerm::semantic({"MA", "Boston"}), QueryTerm::any(),
            QueryTerm::any()}};
  EXPECT_THROW((void)s.convert_query(q3), std::invalid_argument);
  // Unknown semantic node.
  Query q4{{QueryTerm::any(), QueryTerm::any(),
            QueryTerm::semantic({"Mars"}), QueryTerm::any(),
            QueryTerm::any()}};
  EXPECT_THROW((void)s.convert_query(q4), std::invalid_argument);
}

TEST(Schema, ArityMismatchesRejected) {
  const Schema s = phr_schema();
  EXPECT_THROW((void)s.convert_index(PlainIndex{{"25"}}),
               std::invalid_argument);
  EXPECT_THROW((void)s.convert_query(Query{{QueryTerm::any()}}),
               std::invalid_argument);
  EXPECT_THROW(Schema({}), std::invalid_argument);
  EXPECT_THROW(Schema({{"x", nullptr, 0}}), std::invalid_argument);
}

TEST(Schema, NonNumericValueOnNumericDimRejected) {
  const Schema s = phr_schema();
  EXPECT_THROW((void)s.convert_index(PlainIndex{
                   {"old", "Male", "Boston", "Flu", "A"}}),
               std::invalid_argument);
}

TEST(TimeAttr, MonthIndexAndPeriods) {
  EXPECT_EQ(month_index(2000, 1), 0u);
  EXPECT_EQ(month_index(2010, 3), 122u);
  EXPECT_THROW((void)month_index(1999, 12), std::invalid_argument);
  EXPECT_THROW((void)month_index(2090, 1), std::invalid_argument);

  Schema s({make_time_dimension(4), {"illness", nullptr, 1}});
  // Index created March 2010; capability valid for all of 2010 at leaf
  // level needs 12 leaves > d... use a coarser level instead.
  const PlainIndex idx{{time_value(2010, 3), "Flu"}};
  const auto h = make_time_hierarchy();
  // Find a level where [Jan2010, Dec2010] has a small cover.
  const std::uint64_t lo = month_index(2010, 1);
  const std::uint64_t hi = month_index(2010, 12);
  std::size_t level = kTimeHierarchyDepth;
  while (level > 1 && h->cover_range(lo, hi, level).size() > 4) --level;
  Query in_period{{QueryTerm::range(lo, hi, level), QueryTerm::any()}};
  EXPECT_TRUE(s.matches_plain(idx, in_period));

  // A 2012-only capability must not match (pick an exactly-representable
  // 2012 window at the same coarse level if possible; fall back to leaf).
  const std::uint64_t lo2 = month_index(2012, 1);
  Query later{{QueryTerm::range(lo2, lo2, kTimeHierarchyDepth),
               QueryTerm::any()}};
  EXPECT_FALSE(s.matches_plain(idx, later));
}

}  // namespace
}  // namespace apks
