// End-to-end tests for the APKS and APKS+ schemes: encrypted search must
// reproduce the plaintext matching semantics, delegation must restrict, and
// the time attribute must effect revocation.
#include <gtest/gtest.h>

#include "core/apks_plus.h"
#include "core/time_attr.h"

namespace apks {
namespace {

std::shared_ptr<const AttributeHierarchy> age_h() {
  return std::make_shared<AttributeHierarchy>(
      AttributeHierarchy::numeric("age", 0, 100, 3, 3));
}

std::shared_ptr<const AttributeHierarchy> region_h() {
  AttributeHierarchy::Spec spec{
      "MA",
      {{"East MA", {{"Boston", {}}, {"Quincy", {}}}},
       {"Central MA", {{"Worcester", {}}, {"Framingham", {}}}},
       {"West MA", {{"Springfield", {}}, {"Pittsfield", {}}}}}};
  return std::make_shared<AttributeHierarchy>(
      AttributeHierarchy::semantic("region", spec));
}

Schema phr_schema() {
  return Schema({{"age", age_h(), 2},
                 {"sex", nullptr, 1},
                 {"region", region_h(), 2},
                 {"illness", nullptr, 2},
                 {"provider", nullptr, 1}});
}

class ApksTest : public ::testing::Test {
 protected:
  ApksTest()
      : e_(default_type_a_params()),
        apks_(e_, phr_schema()),
        rng_("apks-test") {
    apks_.setup(rng_, pk_, msk_);
    alice_ = {{"25", "Female", "Worcester", "Flu", "Hospital A"}};
    bob_ = {{"61", "Male", "Boston", "Diabetes", "Hospital B"}};
    enc_alice_ = apks_.gen_index(pk_, alice_, rng_);
    enc_bob_ = apks_.gen_index(pk_, bob_, rng_);
  }

  // Encrypted search result must equal the plaintext reference for every
  // (query, index) pair we throw at it.
  void expect_consistent(const Query& q) {
    const auto cap = apks_.gen_cap(msk_, q, rng_);
    EXPECT_EQ(apks_.search(cap, enc_alice_),
              apks_.schema().matches_plain(alice_, q));
    EXPECT_EQ(apks_.search(cap, enc_bob_),
              apks_.schema().matches_plain(bob_, q));
  }

  Pairing e_;
  Apks apks_;
  ChaChaRng rng_;
  ApksPublicKey pk_;
  ApksMasterKey msk_;
  PlainIndex alice_, bob_;
  EncryptedIndex enc_alice_, enc_bob_;
};

TEST_F(ApksTest, EqualityQueries) {
  expect_consistent(Query{{QueryTerm::any(), QueryTerm::equals("Female"),
                           QueryTerm::any(), QueryTerm::any(),
                           QueryTerm::any()}});
  expect_consistent(Query{{QueryTerm::any(), QueryTerm::any(),
                           QueryTerm::any(), QueryTerm::equals("Diabetes"),
                           QueryTerm::any()}});
}

TEST_F(ApksTest, PaperExampleQuery) {
  // (34 <= age <= 100) AND sex = Male AND region in East MA.
  const Query q{{QueryTerm::range(34, 100, 2), QueryTerm::equals("Male"),
                 QueryTerm::semantic({"East MA"}), QueryTerm::any(),
                 QueryTerm::any()}};
  const auto cap = apks_.gen_cap(msk_, q, rng_);
  EXPECT_FALSE(apks_.search(cap, enc_alice_));
  EXPECT_TRUE(apks_.search(cap, enc_bob_));
}

TEST_F(ApksTest, RangeAndSubsetQueries) {
  expect_consistent(Query{{QueryTerm::range(0, 33, 2), QueryTerm::any(),
                           QueryTerm::any(), QueryTerm::any(),
                           QueryTerm::any()}});
  expect_consistent(Query{{QueryTerm::any(), QueryTerm::any(),
                           QueryTerm::any(),
                           QueryTerm::subset({"Flu", "Diabetes"}),
                           QueryTerm::any()}});
  expect_consistent(Query{{QueryTerm::any(), QueryTerm::any(),
                           QueryTerm::semantic({"Central MA", "West MA"}),
                           QueryTerm::any(), QueryTerm::any()}});
}

TEST_F(ApksTest, AllDontCareMatchesAll) {
  const Query q{{QueryTerm::any(), QueryTerm::any(), QueryTerm::any(),
                 QueryTerm::any(), QueryTerm::any()}};
  const auto cap = apks_.gen_cap(msk_, q, rng_);
  EXPECT_TRUE(apks_.search(cap, enc_alice_));
  EXPECT_TRUE(apks_.search(cap, enc_bob_));
}

TEST_F(ApksTest, PreparedSearchMatchesPlain) {
  const Query q{{QueryTerm::any(), QueryTerm::equals("Male"),
                 QueryTerm::any(), QueryTerm::any(), QueryTerm::any()}};
  const auto cap = apks_.gen_cap(msk_, q, rng_);
  const auto prepared = apks_.prepare(cap);
  EXPECT_EQ(apks_.search_prepared(prepared, enc_alice_),
            apks_.search(cap, enc_alice_));
  EXPECT_EQ(apks_.search_prepared(prepared, enc_bob_),
            apks_.search(cap, enc_bob_));
}

TEST_F(ApksTest, DelegationRestricts) {
  // TA capability: provider scope only (the paper's hospital-A example,
  // with Bob's hospital so something matches).
  const Query q1{{QueryTerm::any(), QueryTerm::any(), QueryTerm::any(),
                  QueryTerm::any(), QueryTerm::equals("Hospital B")}};
  const auto cap1 = apks_.gen_cap(msk_, q1, rng_);
  EXPECT_TRUE(apks_.search(cap1, enc_bob_));
  EXPECT_FALSE(apks_.search(cap1, enc_alice_));

  // LTA delegates: additionally require illness = Diabetes.
  const Query q2{{QueryTerm::any(), QueryTerm::any(), QueryTerm::any(),
                  QueryTerm::equals("Diabetes"), QueryTerm::any()}};
  const auto cap12 = apks_.delegate_cap(cap1, q2, rng_);
  EXPECT_EQ(cap12.history.size(), 2u);
  EXPECT_TRUE(apks_.search(cap12, enc_bob_));
  EXPECT_FALSE(apks_.search(cap12, enc_alice_));

  // Further restrict to a sex that doesn't match Bob: nothing matches.
  const Query q3{{QueryTerm::any(), QueryTerm::equals("Female"),
                  QueryTerm::any(), QueryTerm::any(), QueryTerm::any()}};
  const auto cap123 = apks_.delegate_cap(cap12, q3, rng_);
  EXPECT_FALSE(apks_.search(cap123, enc_bob_));
  EXPECT_FALSE(apks_.search(cap123, enc_alice_));
}

TEST_F(ApksTest, DelegatedCapabilityCannotWiden) {
  // Parent: illness = Flu (matches Alice only). The child adds provider =
  // Hospital B; since conjunction only narrows, the child cannot reach Bob.
  const Query q1{{QueryTerm::any(), QueryTerm::any(), QueryTerm::any(),
                  QueryTerm::equals("Flu"), QueryTerm::any()}};
  const auto parent = apks_.gen_cap(msk_, q1, rng_);
  const Query widen{{QueryTerm::any(), QueryTerm::any(), QueryTerm::any(),
                     QueryTerm::any(), QueryTerm::equals("Hospital B")}};
  const auto child = apks_.delegate_cap(parent, widen, rng_);
  EXPECT_FALSE(apks_.search(child, enc_bob_));   // Flu constraint remains
  EXPECT_FALSE(apks_.search(child, enc_alice_)); // provider B excludes Alice
}

TEST_F(ApksTest, FalsePositiveScanOverManyIndexes) {
  // A stricter consistency sweep across a small corpus.
  const std::vector<PlainIndex> corpus{
      {{"5", "Male", "Boston", "Flu", "Hospital A"}},
      {{"45", "Female", "Quincy", "Cancer", "Hospital B"}},
      {{"70", "Male", "Springfield", "Diabetes", "Hospital A"}},
      {{"33", "Female", "Worcester", "Asthma", "Hospital C"}},
  };
  const Query q{{QueryTerm::range(34, 100, 2), QueryTerm::any(),
                 QueryTerm::any(), QueryTerm::subset({"Cancer", "Diabetes"}),
                 QueryTerm::any()}};
  const auto cap = apks_.gen_cap(msk_, q, rng_);
  for (const auto& row : corpus) {
    const auto enc = apks_.gen_index(pk_, row, rng_);
    EXPECT_EQ(apks_.search(cap, enc), apks_.schema().matches_plain(row, q))
        << row.values[0] << " " << row.values[3];
  }
}

TEST_F(ApksTest, NIsMPrimeTimesDPlusOneShape) {
  // Paper: n = sum_i d_i + 1 over converted fields.
  EXPECT_EQ(apks_.n(), apks_.schema().vector_length());
  EXPECT_EQ(apks_.hpe().dim(), apks_.n() + 3);
}

class RevocationTest : public ::testing::Test {
 protected:
  RevocationTest()
      : e_(default_type_a_params()),
        schema_({make_time_dimension(2),
                 {"illness", nullptr, 1},
                 {"provider", nullptr, 1}}),
        apks_(e_, schema_),
        rng_("revocation") {
    apks_.setup(rng_, pk_, msk_);
  }

  Pairing e_;
  Schema schema_;
  Apks apks_;
  ChaChaRng rng_;
  ApksPublicKey pk_;
  ApksMasterKey msk_;
};

TEST_F(RevocationTest, ExpiredCapabilityCannotSearchNewIndexes) {
  // Index created 2010-03, re-encrypted (updated) 2011-07.
  const PlainIndex old_idx{{time_value(2010, 3), "Flu", "Hospital A"}};
  const PlainIndex new_idx{{time_value(2011, 7), "Flu", "Hospital A"}};
  const auto enc_old = apks_.gen_index(pk_, old_idx, rng_);
  const auto enc_new = apks_.gen_index(pk_, new_idx, rng_);

  // Capability authorized for a 4-month-aligned window covering early 2010
  // (level 5 nodes are 4-month blocks).
  const auto cap = apks_.gen_cap(
      msk_, Query{{time_period(2010, 1, 2010, 8, 5), QueryTerm::equals("Flu"),
                   QueryTerm::any()}},
      rng_);
  EXPECT_TRUE(apks_.search(cap, enc_old));
  EXPECT_FALSE(apks_.search(cap, enc_new));  // expired for the update
}

class ApksPlusTest : public ::testing::Test {
 protected:
  ApksPlusTest()
      : e_(default_type_a_params()),
        apks_(e_, phr_schema()),
        rng_("apks-plus-test") {
    setup_ = apks_.setup_plus(rng_);
    bob_ = {{"61", "Male", "Boston", "Diabetes", "Hospital B"}};
  }

  Pairing e_;
  ApksPlus apks_;
  ChaChaRng rng_;
  ApksPlusSetupResult setup_;
  PlainIndex bob_;
};

TEST_F(ApksPlusTest, EndToEndThroughProxy) {
  const Query q{{QueryTerm::any(), QueryTerm::equals("Male"),
                 QueryTerm::any(), QueryTerm::equals("Diabetes"),
                 QueryTerm::any()}};
  const auto cap = apks_.gen_cap(setup_.msk, q, rng_);
  auto enc = apks_.partial_gen_index(setup_.pk, bob_, rng_);
  // Not searchable before the proxy transformation.
  EXPECT_FALSE(apks_.search(cap, enc));
  enc = apks_.proxy_transform(e_.fq().inv(setup_.r), enc);
  EXPECT_TRUE(apks_.search(cap, enc));
}

TEST_F(ApksPlusTest, DictionaryAttackFails) {
  // The server knows pk and the keyword universe. It forges an encrypted
  // index for a guessed plaintext and tests the user's capability against
  // it. In basic APKS this reveals the query; in APKS+ the forged index
  // can never match.
  const Query q{{QueryTerm::any(), QueryTerm::equals("Male"),
                 QueryTerm::any(), QueryTerm::any(), QueryTerm::any()}};
  const auto cap = apks_.gen_cap(setup_.msk, q, rng_);
  // Forge every sex value; none may match without the proxy secret.
  for (const auto* guess : {"Male", "Female"}) {
    const PlainIndex forged{{"61", guess, "Boston", "Diabetes",
                             "Hospital B"}};
    const auto enc = apks_.partial_gen_index(setup_.pk, forged, rng_);
    EXPECT_FALSE(apks_.search(cap, enc)) << guess;
  }
}

TEST_F(ApksPlusTest, MultiProxyPipeline) {
  const Query q{{QueryTerm::any(), QueryTerm::any(), QueryTerm::any(),
                 QueryTerm::equals("Diabetes"), QueryTerm::any()}};
  const auto cap = apks_.gen_cap(setup_.msk, q, rng_);
  const auto shares = apks_.split_secret(setup_.r, 3, rng_);
  auto enc = apks_.partial_gen_index(setup_.pk, bob_, rng_);
  for (const auto& s : shares) {
    EXPECT_FALSE(apks_.search(cap, enc));  // not searchable mid-pipeline
    enc = apks_.proxy_transform(e_.fq().inv(s), enc);
  }
  EXPECT_TRUE(apks_.search(cap, enc));
}

TEST_F(ApksPlusTest, DelegationStillRestricts) {
  const Query q1{{QueryTerm::any(), QueryTerm::any(), QueryTerm::any(),
                  QueryTerm::any(), QueryTerm::equals("Hospital B")}};
  const Query q2{{QueryTerm::any(), QueryTerm::equals("Female"),
                  QueryTerm::any(), QueryTerm::any(), QueryTerm::any()}};
  const auto cap1 = apks_.gen_cap(setup_.msk, q1, rng_);
  const auto cap12 = apks_.delegate_cap(cap1, q2, rng_);
  auto enc = apks_.partial_gen_index(setup_.pk, bob_, rng_);
  enc = apks_.proxy_transform(e_.fq().inv(setup_.r), enc);
  EXPECT_TRUE(apks_.search(cap1, enc));
  EXPECT_FALSE(apks_.search(cap12, enc));  // Bob is Male
}

}  // namespace
}  // namespace apks
