// Correctness tests for HPE: match/non-match decryption, multi-level
// delegation semantics (AND restriction), randomizer structure, and the
// HPE+ proxy transformation.
#include <gtest/gtest.h>

#include "hpe/hpe_plus.h"

namespace apks {
namespace {

class HpeTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 4;
  HpeTest()
      : e_(default_type_a_params()),
        hpe_(e_, kN),
        fq_(e_.fq()),
        rng_("hpe-test") {
    hpe_.setup(rng_, pk_, msk_);
    msg_ = e_.gt_random(rng_);
  }

  // Builds an x-vector orthogonal to v by construction:
  // x = (x1.., xn) with random entries except the last, solved so x.v = 0.
  std::vector<Fq> orthogonal_to(const std::vector<Fq>& v) {
    std::vector<Fq> x(kN);
    // Find an index with nonzero v to solve for.
    std::size_t pivot = kN;
    for (std::size_t i = 0; i < kN; ++i) {
      if (!v[i].is_zero()) pivot = i;
    }
    EXPECT_LT(pivot, kN) << "v must be nonzero";
    Fq acc = fq_.zero();
    for (std::size_t i = 0; i < kN; ++i) {
      if (i == pivot) continue;
      x[i] = fq_.random(rng_);
      acc = fq_.add(acc, fq_.mul(x[i], v[i]));
    }
    x[pivot] = fq_.neg(fq_.mul(acc, fq_.inv(v[pivot])));
    EXPECT_TRUE(inner_product(fq_, x, v).is_zero());
    return x;
  }

  std::vector<Fq> random_vec() {
    std::vector<Fq> v(kN);
    for (auto& c : v) c = fq_.random(rng_);
    return v;
  }

  Pairing e_;
  Hpe hpe_;
  const FqField& fq_;
  ChaChaRng rng_;
  HpePublicKey pk_;
  HpeMasterKey msk_;
  GtEl msg_;
};

TEST_F(HpeTest, DecryptsOnMatch) {
  const auto v = random_vec();
  const auto x = orthogonal_to(v);
  const auto key = hpe_.gen_key(msk_, v, rng_);
  const auto ct = hpe_.encrypt(pk_, x, msg_, rng_);
  EXPECT_EQ(hpe_.decrypt(ct, key), msg_);
}

TEST_F(HpeTest, RejectsOnMismatch) {
  const auto v = random_vec();
  const auto x = random_vec();  // x.v != 0 with overwhelming probability
  ASSERT_FALSE(inner_product(fq_, x, v).is_zero());
  const auto key = hpe_.gen_key(msk_, v, rng_);
  const auto ct = hpe_.encrypt(pk_, x, msg_, rng_);
  EXPECT_NE(hpe_.decrypt(ct, key), msg_);
}

TEST_F(HpeTest, FreshKeysAndCiphertextsAreRandomized) {
  const auto v = random_vec();
  const auto x = orthogonal_to(v);
  const auto k1 = hpe_.gen_key(msk_, v, rng_);
  const auto k2 = hpe_.gen_key(msk_, v, rng_);
  EXPECT_NE(k1.dec, k2.dec);
  const auto c1 = hpe_.encrypt(pk_, x, msg_, rng_);
  const auto c2 = hpe_.encrypt(pk_, x, msg_, rng_);
  EXPECT_NE(c1.c1, c2.c1);
  // Both still decrypt.
  EXPECT_EQ(hpe_.decrypt(c1, k2), msg_);
  EXPECT_EQ(hpe_.decrypt(c2, k1), msg_);
}

TEST_F(HpeTest, DelegatedKeyRequiresBothPredicates) {
  const auto v1 = random_vec();
  const auto v2 = random_vec();
  const auto key1 = hpe_.gen_key(msk_, v1, rng_);
  const auto key12 = hpe_.delegate(key1, v2, rng_);
  EXPECT_EQ(key12.level, 2u);
  EXPECT_EQ(key12.ran.size(), 3u);

  // x orthogonal to both (solve two constraints on 4 unknowns).
  // Build from v1's orthogonal space then adjust: easier—random x with two
  // pivots solved. Use a direct solve: pick x3, x4 random, solve x1, x2.
  const auto& q = fq_;
  std::vector<Fq> x(kN);
  x[2] = q.random(rng_);
  x[3] = q.random(rng_);
  // Solve [v1_0 v1_1; v2_0 v2_1] [x0;x1] = -[c1; c2].
  const Fq c1 = q.add(q.mul(x[2], v1[2]), q.mul(x[3], v1[3]));
  const Fq c2 = q.add(q.mul(x[2], v2[2]), q.mul(x[3], v2[3]));
  const Fq det =
      q.sub(q.mul(v1[0], v2[1]), q.mul(v1[1], v2[0]));
  ASSERT_FALSE(det.is_zero());
  const Fq dinv = q.inv(det);
  x[0] = q.mul(q.sub(q.mul(v1[1], c2), q.mul(v2[1], c1)), dinv);
  x[1] = q.mul(q.sub(q.mul(v2[0], c1), q.mul(v1[0], c2)), dinv);
  ASSERT_TRUE(inner_product(q, x, v1).is_zero());
  ASSERT_TRUE(inner_product(q, x, v2).is_zero());

  const auto ct_both = hpe_.encrypt(pk_, x, msg_, rng_);
  EXPECT_EQ(hpe_.decrypt(ct_both, key1), msg_);
  EXPECT_EQ(hpe_.decrypt(ct_both, key12), msg_);

  // x orthogonal to v1 only: parent decrypts, child must not.
  const auto x1only = orthogonal_to(v1);
  if (!inner_product(q, x1only, v2).is_zero()) {
    const auto ct1 = hpe_.encrypt(pk_, x1only, msg_, rng_);
    EXPECT_EQ(hpe_.decrypt(ct1, key1), msg_);
    EXPECT_NE(hpe_.decrypt(ct1, key12), msg_);
  }
}

TEST_F(HpeTest, TwoLevelDelegation) {
  // Use vectors with disjoint support so a common orthogonal x is easy.
  // v1 = (a, b, 0, 0), v2 = (0, 0, c, d); x = (-b', a', -d', c') style.
  std::vector<Fq> v1(kN, fq_.zero()), v2(kN, fq_.zero()), v3(kN, fq_.zero());
  v1[0] = fq_.from_u64(3);
  v1[1] = fq_.from_u64(5);
  v2[2] = fq_.from_u64(7);
  v2[3] = fq_.from_u64(11);
  v3[0] = fq_.from_u64(1);
  v3[1] = fq_.zero();

  const auto k1 = hpe_.gen_key(msk_, v1, rng_);
  const auto k12 = hpe_.delegate(k1, v2, rng_);
  const auto k123 = hpe_.delegate(k12, v3, rng_);
  EXPECT_EQ(k123.level, 3u);
  EXPECT_EQ(k123.ran.size(), 4u);

  // x = (0, 0, 11, -7): orthogonal to v1 (trivially), v2, and v3.
  std::vector<Fq> x(kN, fq_.zero());
  x[2] = fq_.from_u64(11);
  x[3] = fq_.neg(fq_.from_u64(7));
  const auto ct = hpe_.encrypt(pk_, x, msg_, rng_);
  EXPECT_EQ(hpe_.decrypt(ct, k1), msg_);
  EXPECT_EQ(hpe_.decrypt(ct, k12), msg_);
  EXPECT_EQ(hpe_.decrypt(ct, k123), msg_);

  // y = (5, -3, 11, -7): orthogonal to v1 and v2 but not v3.
  std::vector<Fq> y = x;
  y[0] = fq_.from_u64(5);
  y[1] = fq_.neg(fq_.from_u64(3));
  const auto ct2 = hpe_.encrypt(pk_, y, msg_, rng_);
  EXPECT_EQ(hpe_.decrypt(ct2, k12), msg_);
  EXPECT_NE(hpe_.decrypt(ct2, k123), msg_);
}

TEST_F(HpeTest, PreprocessedDecryptMatches) {
  const auto v = random_vec();
  const auto x = orthogonal_to(v);
  const auto key = hpe_.gen_key(msk_, v, rng_);
  const auto pre = hpe_.preprocess_key(key);
  const auto ct = hpe_.encrypt(pk_, x, msg_, rng_);
  EXPECT_EQ(hpe_.decrypt_pre(ct, pre), hpe_.decrypt(ct, key));
  const auto ct_bad = hpe_.encrypt(pk_, random_vec(), msg_, rng_);
  EXPECT_EQ(hpe_.decrypt_pre(ct_bad, pre), hpe_.decrypt(ct_bad, key));
}

TEST_F(HpeTest, NaiveGenKeyIsEquivalent) {
  // Same correctness behaviour as the shared-sum path, on sparse and dense
  // predicate vectors.
  std::vector<Fq> sparse(kN, fq_.zero());
  sparse[1] = fq_.random_nonzero(rng_);
  for (const auto& v : {random_vec(), sparse}) {
    const auto key = hpe_.gen_key_naive(msk_, v, rng_);
    EXPECT_EQ(key.level, 1u);
    EXPECT_EQ(key.ran.size(), 2u);
    EXPECT_EQ(key.del.size(), kN);
    const auto x = orthogonal_to(v);
    EXPECT_EQ(hpe_.decrypt(hpe_.encrypt(pk_, x, msg_, rng_), key), msg_);
    const auto y = random_vec();
    if (!inner_product(fq_, y, v).is_zero()) {
      EXPECT_NE(hpe_.decrypt(hpe_.encrypt(pk_, y, msg_, rng_), key), msg_);
    }
  }
}

TEST_F(HpeTest, NaiveDelegateIsEquivalent) {
  std::vector<Fq> v1(kN, fq_.zero()), v2(kN, fq_.zero());
  v1[0] = fq_.from_u64(3);
  v1[1] = fq_.from_u64(5);
  v2[2] = fq_.from_u64(7);
  v2[3] = fq_.from_u64(11);
  // Mix naive and shared paths across the chain; they must interoperate.
  const auto k1 = hpe_.gen_key_naive(msk_, v1, rng_);
  const auto k12 = hpe_.delegate_naive(k1, v2, rng_);
  const auto k12b = hpe_.delegate(k1, v2, rng_);
  std::vector<Fq> x(kN, fq_.zero());
  x[0] = fq_.from_u64(5);
  x[1] = fq_.neg(fq_.from_u64(3));
  x[2] = fq_.from_u64(11);
  x[3] = fq_.neg(fq_.from_u64(7));
  const auto ct = hpe_.encrypt(pk_, x, msg_, rng_);
  EXPECT_EQ(hpe_.decrypt(ct, k12), msg_);
  EXPECT_EQ(hpe_.decrypt(ct, k12b), msg_);
  // Violate v2 only.
  auto y = x;
  y[2] = fq_.random_nonzero(rng_);
  const auto ct2 = hpe_.encrypt(pk_, y, msg_, rng_);
  EXPECT_EQ(hpe_.decrypt(ct2, k1), msg_);
  EXPECT_NE(hpe_.decrypt(ct2, k12), msg_);
}

TEST_F(HpeTest, InputValidation) {
  EXPECT_THROW(Hpe(e_, 0), std::invalid_argument);
  std::vector<Fq> short_vec(kN - 1, fq_.zero());
  EXPECT_THROW((void)hpe_.gen_key(msk_, short_vec, rng_),
               std::invalid_argument);
  EXPECT_THROW((void)hpe_.encrypt(pk_, short_vec, msg_, rng_),
               std::invalid_argument);
  const auto key = hpe_.gen_key(msk_, random_vec(), rng_);
  EXPECT_THROW((void)hpe_.delegate(key, short_vec, rng_),
               std::invalid_argument);
}

class HpePlusTest : public HpeTest {
 protected:
  HpePlusTest() : plus_(e_, kN) { setup_ = plus_.setup(rng_); }
  HpePlus plus_;
  HpePlusSetupResult setup_;
};

TEST_F(HpePlusTest, ProxyTransformedCiphertextDecrypts) {
  const auto v = random_vec();
  const auto x = orthogonal_to(v);
  const auto key = plus_.base().gen_key(setup_.msk, v, rng_);
  const auto partial = plus_.partial_enc(setup_.pk, x, msg_, rng_);
  const auto full = plus_.proxy_transform(fq_.inv(setup_.r), partial);
  EXPECT_EQ(plus_.base().decrypt(full, key), msg_);
}

TEST_F(HpePlusTest, PartialCiphertextDoesNotMatch) {
  // The dictionary attack: a ciphertext built from pk alone (never proxied)
  // must not decrypt under a real capability even on a predicate match.
  const auto v = random_vec();
  const auto x = orthogonal_to(v);
  const auto key = plus_.base().gen_key(setup_.msk, v, rng_);
  const auto partial = plus_.partial_enc(setup_.pk, x, msg_, rng_);
  EXPECT_NE(plus_.base().decrypt(partial, key), msg_);
}

TEST_F(HpePlusTest, NonMatchStillRejectedAfterTransform) {
  const auto v = random_vec();
  const auto key = plus_.base().gen_key(setup_.msk, v, rng_);
  const auto partial = plus_.partial_enc(setup_.pk, random_vec(), msg_, rng_);
  const auto full = plus_.proxy_transform(fq_.inv(setup_.r), partial);
  EXPECT_NE(plus_.base().decrypt(full, key), msg_);
}

TEST_F(HpePlusTest, MultiProxyChain) {
  const auto v = random_vec();
  const auto x = orthogonal_to(v);
  const auto key = plus_.base().gen_key(setup_.msk, v, rng_);
  for (const std::size_t parts : {1u, 2u, 4u}) {
    const auto shares = HpePlus::split_secret(fq_, setup_.r, parts, rng_);
    ASSERT_EQ(shares.size(), parts);
    // Product of shares is r.
    Fq prod = fq_.one();
    for (const auto& s : shares) prod = fq_.mul(prod, s);
    EXPECT_EQ(prod, setup_.r);
    // Chain the transformations through every proxy.
    auto ct = plus_.partial_enc(setup_.pk, x, msg_, rng_);
    for (const auto& s : shares) {
      ct = plus_.proxy_transform(fq_.inv(s), ct);
    }
    EXPECT_EQ(plus_.base().decrypt(ct, key), msg_);
  }
}

TEST_F(HpePlusTest, DelegationWorksOnBlindedKeys) {
  std::vector<Fq> v1(kN, fq_.zero()), v2(kN, fq_.zero());
  v1[0] = fq_.from_u64(2);
  v1[1] = fq_.from_u64(3);
  v2[2] = fq_.from_u64(5);
  v2[3] = fq_.from_u64(7);
  const auto k1 = plus_.base().gen_key(setup_.msk, v1, rng_);
  const auto k12 = plus_.base().delegate(k1, v2, rng_);
  std::vector<Fq> x(kN, fq_.zero());
  x[0] = fq_.from_u64(3);
  x[1] = fq_.neg(fq_.from_u64(2));
  x[2] = fq_.from_u64(7);
  x[3] = fq_.neg(fq_.from_u64(5));
  auto ct = plus_.partial_enc(setup_.pk, x, msg_, rng_);
  ct = plus_.proxy_transform(fq_.inv(setup_.r), ct);
  EXPECT_EQ(plus_.base().decrypt(ct, k12), msg_);
}

TEST_F(HpePlusTest, SplitSecretValidation) {
  EXPECT_THROW((void)HpePlus::split_secret(fq_, setup_.r, 0, rng_),
               std::invalid_argument);
}

}  // namespace
}  // namespace apks
