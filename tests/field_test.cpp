// Field-axiom and special-function tests for PrimeField, F_q helpers and
// F_p^2, plus Miller-Rabin sanity checks.
#include <gtest/gtest.h>

#include "math/fp2.h"
#include "math/fq.h"
#include "math/prime_field.h"

namespace apks {
namespace {

// A 160-bit prime (2^160 - 47 is prime).
FqInt test_q() {
  FqInt q;
  q.w[0] = static_cast<std::uint64_t>(-47);
  q.w[1] = ~std::uint64_t{0};
  q.w[2] = 0xFFFFFFFFull;
  return q;
}

// A 127-bit prime for fast exhaustive-ish property tests: 2^127 - 1.
BigInt<2> mersenne127() {
  BigInt<2> p;
  p.w[0] = ~std::uint64_t{0};
  p.w[1] = (~std::uint64_t{0}) >> 1;
  return p;
}

TEST(PrimeField, RejectsEvenModulus) {
  EXPECT_THROW(PrimeField<2>(BigInt<2>{4}), std::invalid_argument);
}

TEST(PrimeField, FieldAxioms) {
  PrimeField<2> f(mersenne127());
  ChaChaRng rng("axioms");
  for (int i = 0; i < 50; ++i) {
    const auto a = f.random(rng);
    const auto b = f.random(rng);
    const auto c = f.random(rng);
    EXPECT_EQ(f.add(a, b), f.add(b, a));
    EXPECT_EQ(f.mul(a, b), f.mul(b, a));
    EXPECT_EQ(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
    EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
    EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
    EXPECT_EQ(f.add(a, f.neg(a)), f.zero());
    EXPECT_EQ(f.mul(a, f.one()), a);
    EXPECT_EQ(f.sub(a, b), f.add(a, f.neg(b)));
    EXPECT_EQ(f.sqr(a), f.mul(a, a));
  }
}

TEST(PrimeField, InverseIsInverse) {
  PrimeField<2> f(mersenne127());
  ChaChaRng rng("inv");
  for (int i = 0; i < 30; ++i) {
    const auto a = f.random_nonzero(rng);
    EXPECT_EQ(f.mul(a, f.inv(a)), f.one());
  }
  EXPECT_THROW((void)f.inv(f.zero()), std::domain_error);
}

TEST(PrimeField, PowSmallCases) {
  PrimeField<2> f(BigInt<2>{101});
  const auto three = f.from_u64(3);
  EXPECT_EQ(f.to_int(f.pow(three, BigInt<1>{0})), BigInt<2>{1});
  EXPECT_EQ(f.to_int(f.pow(three, BigInt<1>{1})), BigInt<2>{3});
  EXPECT_EQ(f.to_int(f.pow(three, BigInt<1>{4})), BigInt<2>{81});
  EXPECT_EQ(f.to_int(f.pow(three, BigInt<1>{5})), BigInt<2>{243 % 101});
  // Fermat's little theorem.
  EXPECT_EQ(f.pow(three, BigInt<1>{100}), f.one());
}

TEST(PrimeField, FromBytesModReduces) {
  PrimeField<2> f(BigInt<2>{101});
  const std::array<std::uint8_t, 4> bytes{0x00, 0x00, 0x01, 0x00};  // 256
  EXPECT_EQ(f.to_int(f.from_bytes_mod(bytes)), BigInt<2>{256 % 101});
}

TEST(PrimeField, RandomIsUniformish) {
  PrimeField<2> f(BigInt<2>{101});
  ChaChaRng rng("uniform");
  std::array<int, 101> counts{};
  for (int i = 0; i < 2000; ++i) {
    counts[f.to_int(f.random(rng)).w[0]]++;
  }
  int nonzero_buckets = 0;
  for (int c : counts) nonzero_buckets += (c > 0);
  EXPECT_GT(nonzero_buckets, 90);  // nearly every residue hit
}

TEST(PrimeField, LegendreAndSqrt) {
  // p = 103 = 3 mod 4.
  PrimeField<1> f(BigInt<1>{103});
  int qr = 0, qnr = 0;
  for (std::uint64_t v = 1; v < 103; ++v) {
    const auto a = f.from_u64(v);
    const int leg = f.legendre(a);
    if (leg == 1) {
      ++qr;
      BigInt<1> root;
      ASSERT_TRUE(f.sqrt(a, root));
      EXPECT_EQ(f.sqr(root), a);
    } else {
      ++qnr;
      BigInt<1> root;
      EXPECT_FALSE(f.sqrt(a, root));
    }
  }
  EXPECT_EQ(qr, 51);
  EXPECT_EQ(qnr, 51);
}

TEST(PrimeField, SqrtOfZero) {
  PrimeField<1> f(BigInt<1>{103});
  BigInt<1> root{99};
  EXPECT_TRUE(f.sqrt(f.zero(), root));
  EXPECT_TRUE(root.is_zero());
}

TEST(MillerRabin, KnownPrimesAndComposites) {
  ChaChaRng rng("mr");
  EXPECT_TRUE(is_probable_prime(BigInt<2>{2}, rng));
  EXPECT_TRUE(is_probable_prime(BigInt<2>{3}, rng));
  EXPECT_TRUE(is_probable_prime(BigInt<2>{101}, rng));
  EXPECT_TRUE(is_probable_prime(mersenne127(), rng));
  EXPECT_TRUE(is_probable_prime(test_q(), rng));
  EXPECT_FALSE(is_probable_prime(BigInt<2>{1}, rng));
  EXPECT_FALSE(is_probable_prime(BigInt<2>{0}, rng));
  EXPECT_FALSE(is_probable_prime(BigInt<2>{100}, rng));
  EXPECT_FALSE(is_probable_prime(BigInt<2>{561}, rng));    // Carmichael
  EXPECT_FALSE(is_probable_prime(BigInt<2>{41041}, rng));  // Carmichael
  // Product of two near-64-bit primes.
  const auto semi = BigInt<1>::mul_wide(BigInt<1>{0xFFFFFFFFFFFFFFC5ull},
                                        BigInt<1>{0xFFFFFFFFFFFFFFEFull});
  EXPECT_FALSE(is_probable_prime(semi, rng));
}

TEST(Fq, HashToFqIsDeterministicAndInField) {
  FqField fq(test_q());
  const auto a = hash_to_fq(fq, "diabetes");
  const auto b = hash_to_fq(fq, "diabetes");
  const auto c = hash_to_fq(fq, "flu");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(fq.to_int(a), fq.modulus());
}

TEST(Fq, InnerProduct) {
  FqField fq(test_q());
  const std::vector<Fq> a{fq.from_u64(1), fq.from_u64(2), fq.from_u64(3)};
  const std::vector<Fq> b{fq.from_u64(4), fq.from_u64(5), fq.from_u64(6)};
  EXPECT_EQ(fq.to_int(inner_product(fq, a, b)), FqInt{32});
  // Orthogonal vectors.
  const std::vector<Fq> c{fq.from_u64(2), fq.neg(fq.from_u64(1)), fq.zero()};
  const std::vector<Fq> d{fq.from_u64(1), fq.from_u64(2), fq.from_u64(77)};
  EXPECT_TRUE(inner_product(fq, c, d).is_zero());
}

class Fp2Test : public ::testing::Test {
 protected:
  // 127-bit prime = 3 mod 4? 2^127 - 1 mod 4 = 3. Yes.
  Fp2Test() : fp_(to_fp(mersenne127())), f2_(fp_) {}
  static FpInt to_fp(const BigInt<2>& v) {
    FpInt r;
    r.w[0] = v.w[0];
    r.w[1] = v.w[1];
    return r;
  }
  FpField fp_;
  Fp2 f2_;
};

TEST_F(Fp2Test, FieldAxioms) {
  ChaChaRng rng("fp2");
  for (int i = 0; i < 30; ++i) {
    const Fp2El x{fp_.random(rng), fp_.random(rng)};
    const Fp2El y{fp_.random(rng), fp_.random(rng)};
    const Fp2El z{fp_.random(rng), fp_.random(rng)};
    EXPECT_EQ(f2_.mul(x, y), f2_.mul(y, x));
    EXPECT_EQ(f2_.mul(f2_.mul(x, y), z), f2_.mul(x, f2_.mul(y, z)));
    EXPECT_EQ(f2_.mul(x, f2_.add(y, z)),
              f2_.add(f2_.mul(x, y), f2_.mul(x, z)));
    EXPECT_EQ(f2_.sqr(x), f2_.mul(x, x));
    EXPECT_EQ(f2_.mul(x, f2_.one()), x);
    EXPECT_EQ(f2_.add(x, f2_.neg(x)), f2_.zero());
  }
}

TEST_F(Fp2Test, ImaginaryUnitSquaresToMinusOne) {
  const Fp2El i{fp_.zero(), fp_.one()};
  const Fp2El i2 = f2_.sqr(i);
  EXPECT_EQ(i2.a, fp_.neg(fp_.one()));
  EXPECT_TRUE(i2.b.is_zero());
}

TEST_F(Fp2Test, InverseAndConjugate) {
  ChaChaRng rng("fp2inv");
  for (int i = 0; i < 20; ++i) {
    Fp2El x{fp_.random(rng), fp_.random(rng)};
    if (f2_.is_zero(x)) x = f2_.one();
    EXPECT_EQ(f2_.mul(x, f2_.inv(x)), f2_.one());
    // x * conj(x) = norm(x) in the base field.
    const auto prod = f2_.mul(x, f2_.conj(x));
    EXPECT_EQ(prod.a, f2_.norm(x));
    EXPECT_TRUE(prod.b.is_zero());
  }
}

TEST_F(Fp2Test, PowMatchesRepeatedMul) {
  ChaChaRng rng("fp2pow");
  const Fp2El x{fp_.random(rng), fp_.random(rng)};
  Fp2El acc = f2_.one();
  for (std::uint64_t e = 0; e < 40; ++e) {
    EXPECT_EQ(f2_.pow(x, BigInt<1>{e}), acc) << e;
    acc = f2_.mul(acc, x);
  }
}

TEST_F(Fp2Test, FrobeniusIsPthPower) {
  ChaChaRng rng("frob");
  const Fp2El x{fp_.random(rng), fp_.random(rng)};
  BigInt<8> p8;
  p8.w[0] = mersenne127().w[0];
  p8.w[1] = mersenne127().w[1];
  EXPECT_EQ(f2_.frobenius(x), f2_.pow(x, p8));
}

}  // namespace
}  // namespace apks
