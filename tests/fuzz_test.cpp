// Deterministic fuzz tests: parsers and deserializers fed random and
// mutated inputs must either succeed or throw a std:: exception — never
// crash, hang, or return corrupt objects that later misbehave.
#include <gtest/gtest.h>

#include "common/hex.h"
#include "core/query_parser.h"
#include "core/serialize_apks.h"
#include "data/phr.h"
#include "hpe/serialize.h"
#include "mrqed/serialize.h"

namespace apks {
namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.next_below(max_len + 1));
  rng.fill(out);
  return out;
}

template <typename Fn>
void expect_no_crash(Fn&& fn) {
  try {
    fn();
  } catch (const std::exception&) {
    // Any std::exception is acceptable; crashes/UB are what we're hunting.
  }
}

TEST(Fuzz, HexDecoderOnRandomStrings) {
  ChaChaRng rng("fuzz-hex");
  for (int i = 0; i < 300; ++i) {
    std::string s;
    const std::size_t len = rng.next_below(40);
    for (std::size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>(32 + rng.next_below(95)));
    }
    expect_no_crash([&] { (void)hex_decode(s); });
  }
}

TEST(Fuzz, QueryParserOnRandomStrings) {
  const Schema schema = phr_schema({.max_or = 2});
  ChaChaRng rng("fuzz-query");
  const std::string alphabet = "abcxyzAGE age sex=*;:@-,0123456789 in under";
  for (int i = 0; i < 500; ++i) {
    std::string s;
    const std::size_t len = rng.next_below(60);
    for (std::size_t j = 0; j < len; ++j) {
      s.push_back(alphabet[rng.next_below(alphabet.size())]);
    }
    expect_no_crash([&] { (void)parse_query(schema, s); });
    expect_no_crash([&] { (void)parse_index(schema, s); });
  }
}

TEST(Fuzz, ByteReaderOnRandomBuffers) {
  ChaChaRng rng("fuzz-reader");
  for (int i = 0; i < 300; ++i) {
    const auto data = random_bytes(rng, 64);
    expect_no_crash([&] {
      ByteReader r(data);
      while (!r.done()) {
        switch (rng.next_below(4)) {
          case 0:
            (void)r.u8();
            break;
          case 1:
            (void)r.u32();
            break;
          case 2:
            (void)r.u64();
            break;
          default:
            (void)r.bytes();
            break;
        }
      }
    });
  }
}

class DeserializerFuzz : public ::testing::Test {
 protected:
  DeserializerFuzz() : e_(default_type_a_params()), rng_("fuzz-deser") {}
  Pairing e_;
  ChaChaRng rng_;
};

TEST_F(DeserializerFuzz, RandomBuffersRejected) {
  for (int i = 0; i < 60; ++i) {
    const auto data = random_bytes(rng_, 400);
    expect_no_crash([&] { (void)deserialize_ciphertext(e_, data); });
    expect_no_crash([&] { (void)deserialize_key(e_, data); });
    expect_no_crash([&] { (void)deserialize_public_key(e_, data); });
    expect_no_crash([&] { (void)deserialize_master_key(e_, data); });
    expect_no_crash([&] { (void)deserialize_mrqed_key(e_, data); });
    expect_no_crash([&] { (void)deserialize_mrqed_ciphertext(e_, data); });
    expect_no_crash([&] { (void)deserialize_index(e_, data); });
    expect_no_crash([&] { (void)deserialize_capability(e_, data); });
  }
}

// Bit-flip and truncation sweeps over the APKS-level codecs
// (serialize_index / serialize_capability): every mutation must either be
// rejected with a std:: exception or yield an object that is still safely
// usable — never crash or corrupt memory.
class ApksCodecFuzz : public DeserializerFuzz {
 protected:
  ApksCodecFuzz()
      : scheme_(e_, Schema({{"a", nullptr, 2}, {"b", nullptr, 1}})) {
    scheme_.setup(rng_, pk_, msk_);
  }
  Apks scheme_;
  ApksPublicKey pk_;
  ApksMasterKey msk_;
};

TEST_F(ApksCodecFuzz, IndexBitFlipAndTruncationSweep) {
  const EncryptedIndex enc =
      scheme_.gen_index(pk_, PlainIndex{{"u", "v"}}, rng_);
  const Capability cap = scheme_.gen_cap(
      msk_, Query{{QueryTerm::equals("u"), QueryTerm::any()}}, rng_);
  const auto good = serialize_index(e_, enc);
  // Truncation sweep: every prefix length.
  for (std::size_t len = 0; len < good.size(); ++len) {
    expect_no_crash([&] {
      (void)deserialize_index(
          e_, std::span<const std::uint8_t>(good.data(), len));
    });
  }
  // Bit-flip sweep: every byte gets one deterministic single-bit flip,
  // plus random multi-byte mutations.
  for (std::size_t pos = 0; pos < good.size(); ++pos) {
    auto bad = good;
    bad[pos] ^= static_cast<std::uint8_t>(1u << (pos % 8));
    expect_no_crash([&] {
      const EncryptedIndex parsed = deserialize_index(e_, bad);
      (void)scheme_.search(cap, parsed);
    });
  }
  for (int i = 0; i < 60; ++i) {
    auto bad = good;
    const std::size_t mutations = 1 + rng_.next_below(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      bad[rng_.next_below(bad.size())] ^=
          static_cast<std::uint8_t>(1 + rng_.next_below(255));
    }
    expect_no_crash([&] {
      const EncryptedIndex parsed = deserialize_index(e_, bad);
      (void)scheme_.search(cap, parsed);
    });
  }
}

TEST_F(ApksCodecFuzz, CapabilityBitFlipAndTruncationSweep) {
  Capability cap = scheme_.gen_cap(
      msk_, Query{{QueryTerm::subset({"u", "w"}), QueryTerm::any()}}, rng_);
  cap = scheme_.delegate_cap(
      cap, Query{{QueryTerm::any(), QueryTerm::equals("v")}}, rng_);
  const EncryptedIndex enc =
      scheme_.gen_index(pk_, PlainIndex{{"u", "v"}}, rng_);
  const auto good = serialize_capability(e_, cap);
  for (std::size_t len = 0; len < good.size(); ++len) {
    expect_no_crash([&] {
      (void)deserialize_capability(
          e_, std::span<const std::uint8_t>(good.data(), len));
    });
  }
  // The full sweep would be slow (each surviving parse may run a search);
  // stride through the buffer instead, hitting every region.
  for (std::size_t pos = 0; pos < good.size(); pos += 7) {
    auto bad = good;
    bad[pos] ^= static_cast<std::uint8_t>(1u << (pos % 8));
    expect_no_crash([&] {
      const Capability parsed = deserialize_capability(e_, bad);
      (void)scheme_.search(parsed, enc);
    });
  }
}

TEST_F(DeserializerFuzz, MutatedValidCiphertexts) {
  const Hpe hpe(e_, 2);
  HpePublicKey pk;
  HpeMasterKey msk;
  hpe.setup(rng_, pk, msk);
  std::vector<Fq> x{e_.fq().random(rng_), e_.fq().random(rng_)};
  const auto ct = hpe.encrypt(pk, x, e_.gt_random(rng_), rng_);
  const auto good = serialize_ciphertext(e_, ct);
  for (int i = 0; i < 120; ++i) {
    auto bad = good;
    // 1-3 random byte mutations, occasionally a truncation or extension.
    const std::size_t mutations = 1 + rng_.next_below(3);
    for (std::size_t m = 0; m < mutations; ++m) {
      bad[rng_.next_below(bad.size())] ^=
          static_cast<std::uint8_t>(1 + rng_.next_below(255));
    }
    if (rng_.next_below(4) == 0 && bad.size() > 8) {
      bad.resize(bad.size() - 1 - rng_.next_below(8));
    } else if (rng_.next_below(7) == 0) {
      bad.push_back(0);
    }
    expect_no_crash([&] {
      // If deserialization accepts the mutation (e.g. a y-sign flip that
      // still decompresses), the object must still be safely usable.
      const auto parsed = deserialize_ciphertext(e_, bad);
      const auto key = hpe.gen_key(msk, x, rng_);
      (void)hpe.decrypt(parsed, key);
    });
  }
}

TEST_F(DeserializerFuzz, LengthFieldBombs) {
  // Hostile length prefixes must be rejected, not allocated.
  ByteWriter w;
  w.u32(0xFFFFFFFFu);  // ciphertext vector claims 4 billion points
  const auto data = w.take();
  EXPECT_THROW((void)deserialize_ciphertext(e_, data), std::exception);
  EXPECT_THROW((void)deserialize_key(e_, data), std::exception);
}

}  // namespace
}  // namespace apks
