// Deterministic fuzz tests: parsers and deserializers fed random and
// mutated inputs must either succeed or throw a std:: exception — never
// crash, hang, or return corrupt objects that later misbehave.
#include <gtest/gtest.h>

#include "common/hex.h"
#include "core/query_parser.h"
#include "data/phr.h"
#include "hpe/serialize.h"
#include "mrqed/serialize.h"

namespace apks {
namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.next_below(max_len + 1));
  rng.fill(out);
  return out;
}

template <typename Fn>
void expect_no_crash(Fn&& fn) {
  try {
    fn();
  } catch (const std::exception&) {
    // Any std::exception is acceptable; crashes/UB are what we're hunting.
  }
}

TEST(Fuzz, HexDecoderOnRandomStrings) {
  ChaChaRng rng("fuzz-hex");
  for (int i = 0; i < 300; ++i) {
    std::string s;
    const std::size_t len = rng.next_below(40);
    for (std::size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>(32 + rng.next_below(95)));
    }
    expect_no_crash([&] { (void)hex_decode(s); });
  }
}

TEST(Fuzz, QueryParserOnRandomStrings) {
  const Schema schema = phr_schema({.max_or = 2});
  ChaChaRng rng("fuzz-query");
  const std::string alphabet = "abcxyzAGE age sex=*;:@-,0123456789 in under";
  for (int i = 0; i < 500; ++i) {
    std::string s;
    const std::size_t len = rng.next_below(60);
    for (std::size_t j = 0; j < len; ++j) {
      s.push_back(alphabet[rng.next_below(alphabet.size())]);
    }
    expect_no_crash([&] { (void)parse_query(schema, s); });
    expect_no_crash([&] { (void)parse_index(schema, s); });
  }
}

TEST(Fuzz, ByteReaderOnRandomBuffers) {
  ChaChaRng rng("fuzz-reader");
  for (int i = 0; i < 300; ++i) {
    const auto data = random_bytes(rng, 64);
    expect_no_crash([&] {
      ByteReader r(data);
      while (!r.done()) {
        switch (rng.next_below(4)) {
          case 0:
            (void)r.u8();
            break;
          case 1:
            (void)r.u32();
            break;
          case 2:
            (void)r.u64();
            break;
          default:
            (void)r.bytes();
            break;
        }
      }
    });
  }
}

class DeserializerFuzz : public ::testing::Test {
 protected:
  DeserializerFuzz() : e_(default_type_a_params()), rng_("fuzz-deser") {}
  Pairing e_;
  ChaChaRng rng_;
};

TEST_F(DeserializerFuzz, RandomBuffersRejected) {
  for (int i = 0; i < 60; ++i) {
    const auto data = random_bytes(rng_, 400);
    expect_no_crash([&] { (void)deserialize_ciphertext(e_, data); });
    expect_no_crash([&] { (void)deserialize_key(e_, data); });
    expect_no_crash([&] { (void)deserialize_public_key(e_, data); });
    expect_no_crash([&] { (void)deserialize_master_key(e_, data); });
    expect_no_crash([&] { (void)deserialize_mrqed_key(e_, data); });
    expect_no_crash([&] { (void)deserialize_mrqed_ciphertext(e_, data); });
  }
}

TEST_F(DeserializerFuzz, MutatedValidCiphertexts) {
  const Hpe hpe(e_, 2);
  HpePublicKey pk;
  HpeMasterKey msk;
  hpe.setup(rng_, pk, msk);
  std::vector<Fq> x{e_.fq().random(rng_), e_.fq().random(rng_)};
  const auto ct = hpe.encrypt(pk, x, e_.gt_random(rng_), rng_);
  const auto good = serialize_ciphertext(e_, ct);
  for (int i = 0; i < 120; ++i) {
    auto bad = good;
    // 1-3 random byte mutations, occasionally a truncation or extension.
    const std::size_t mutations = 1 + rng_.next_below(3);
    for (std::size_t m = 0; m < mutations; ++m) {
      bad[rng_.next_below(bad.size())] ^=
          static_cast<std::uint8_t>(1 + rng_.next_below(255));
    }
    if (rng_.next_below(4) == 0 && bad.size() > 8) {
      bad.resize(bad.size() - 1 - rng_.next_below(8));
    } else if (rng_.next_below(7) == 0) {
      bad.push_back(0);
    }
    expect_no_crash([&] {
      // If deserialization accepts the mutation (e.g. a y-sign flip that
      // still decompresses), the object must still be safely usable.
      const auto parsed = deserialize_ciphertext(e_, bad);
      const auto key = hpe.gen_key(msk, x, rng_);
      (void)hpe.decrypt(parsed, key);
    });
  }
}

TEST_F(DeserializerFuzz, LengthFieldBombs) {
  // Hostile length prefixes must be rejected, not allocated.
  ByteWriter w;
  w.u32(0xFFFFFFFFu);  // ciphertext vector claims 4 billion points
  const auto data = w.take();
  EXPECT_THROW((void)deserialize_ciphertext(e_, data), std::exception);
  EXPECT_THROW((void)deserialize_key(e_, data), std::exception);
}

}  // namespace
}  // namespace apks
