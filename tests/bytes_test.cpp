// Round-trip tests for the binary serialization helpers and hex codec.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/hex.h"

namespace apks {
namespace {

TEST(Bytes, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.str("hello");
  const auto data = w.take();

  ByteReader r(data);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(Bytes, LengthPrefixedBuffers) {
  ByteWriter w;
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  w.bytes(payload);
  w.bytes({});
  const auto data = w.take();
  EXPECT_EQ(data.size(), 4 + 5 + 4 + 0u);

  ByteReader r(data);
  const auto got = r.bytes();
  EXPECT_TRUE(std::equal(got.begin(), got.end(), payload.begin()));
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.done());
}

TEST(Bytes, TruncatedInputThrows) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow
  const auto data = w.take();
  ByteReader r(data);
  EXPECT_THROW((void)r.bytes(), std::out_of_range);
}

TEST(Bytes, ReaderTracksRemaining) {
  ByteWriter w;
  w.u64(1);
  w.u64(2);
  const auto data = w.take();
  ByteReader r(data);
  EXPECT_EQ(r.remaining(), 16u);
  (void)r.u64();
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.u64();
  EXPECT_TRUE(r.done());
}

TEST(Hex, EncodeDecode) {
  const std::vector<std::uint8_t> data{0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(hex_encode(data), "0001abff");
  EXPECT_EQ(hex_decode("0001abff"), data);
  EXPECT_EQ(hex_decode("0001ABFF"), data);
  EXPECT_TRUE(hex_decode("").empty());
}

TEST(Hex, RejectsBadInput) {
  EXPECT_THROW((void)hex_decode("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW((void)hex_decode("zz"), std::invalid_argument);    // bad digit
}

}  // namespace
}  // namespace apks
