// Cluster-mode tests (cluster/placement.h, cluster/node.h,
// cluster/coordinator.h):
//
//  - Placement: rendezvous hashing is deterministic, spreads shards with
//    R unique owners each, and only moves the affected shards when the
//    member list changes; maps serialize byte-exactly and refuse damage.
//  - Merge property: ANY partition of the id space across shards —
//    modulo, random, adversarial — k-way merges back to the exact upload
//    order (the byte-identity invariant the coordinator relies on).
//  - Loopback equivalence: a 3-node / R=2 cluster over a real ShardedStore
//    returns byte-identical doc_refs and equivalent scanned/matched
//    stats to the single-node ShardedStore::search_any scan, for all
//    three schemes (APKS, APKS+, MRQED^D).
//  - Failover: a killed node's shards are served by their replicas; the
//    result stays byte-identical and the breaker/retry stats say why.
//  - Compatibility: a legacy v1 client still gets plain kSearch service
//    from a shard-backed node (the node's subset, merged by id).
//  - Chaos (ClusterChaos*, run under the CI cluster stage): scatter
//    failpoints (mid-batch node faults, slow replicas), partial scatter
//    with every replica down, and the stale-map drill — partial results
//    are always correct prefix unions, never silently wrong.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cloud/proxy.h"
#include "cluster/coordinator.h"
#include "cluster/node.h"
#include "cluster/placement.h"
#include "common/failpoint.h"
#include "core/apks_backend.h"
#include "core/apks_plus.h"
#include "data/nursery.h"
#include "data/workload.h"
#include "mrqed/mrqed_backend.h"
#include "net/client.h"

namespace apks {
namespace {

namespace fs = std::filesystem;
using cluster::ClusterMap;
using cluster::ClusterNode;
using cluster::ClusterNodeOptions;
using cluster::ClusterSearchStats;
using cluster::Coordinator;
using cluster::CoordinatorOptions;
using cluster::merge_by_id;
using cluster::NodeInfo;
using net::WireStatus;

constexpr std::uint32_t kShards = 4;

// One populated scheme: a backend, a 4-shard on-disk store, and a query
// with a known non-empty answer.
struct SchemeRig {
  const SearchBackend* backend = nullptr;
  std::unique_ptr<ShardedStore> store;
  AnyQuery query;
};

// The pairing setup and record encryption are expensive; build the three
// scheme rigs once and share them (read-only after construction).
struct ClusterEnv {
  Pairing e;
  ChaChaRng rng;

  Apks apks;
  TrustedAuthority ta;
  CapabilityVerifier verifier;
  ApksBackend apks_backend;

  ApksPlus plus;
  ApksPlusSetupResult plus_setup;
  ApksPlusBackend plus_backend;

  Mrqed mrqed;
  MrqedBackend mrqed_backend;

  SchemeRig apks_rig;
  SchemeRig plus_rig;
  SchemeRig mrqed_rig;
  SignedCapability apks_cap;  // for the signed-edge test

  static CapabilityVerifier make_verifier(const Pairing& e,
                                          const IbsPublicParams& params) {
    CapabilityVerifier v(e, params);
    v.register_authority("TA");
    return v;
  }

  ClusterEnv()
      : e(default_type_a_params()),
        rng("cluster-test"),
        apks(e, nursery_schema(1)),
        ta(apks, rng),
        verifier(make_verifier(e, ta.ibs_params())),
        apks_backend(apks),
        plus(e, nursery_schema(1)),
        plus_setup(plus.setup_plus(rng)),
        plus_backend(plus),
        mrqed(e, 2, 3),
        mrqed_backend(mrqed) {
    const fs::path base =
        fs::temp_directory_path() / "apks-cluster-test-env";
    fs::remove_all(base);
    const std::vector<PlainIndex> rows = nursery_rows();

    ShardedStoreOptions opts;
    opts.shards = kShards;

    apks_rig.backend = &apks_backend;
    apks_rig.store =
        std::make_unique<ShardedStore>(apks_backend, base / "apks", opts);
    for (std::size_t i = 0; i < 10; ++i) {
      const PlainIndex& row = rows[(i * 769) % rows.size()];
      (void)apks_rig.store->append_any(
          "apks-" + std::to_string(i),
          AnyIndex::own(SchemeKind::kApks,
                        apks.gen_index(ta.public_key(), row, rng)));
    }
    apks_cap = ta.issue(nursery_point_query(rows[769 % rows.size()]), rng);
    apks_rig.query = AnyQuery::own(SchemeKind::kApks, apks_cap.cap);

    plus_rig.backend = &plus_backend;
    plus_rig.store =
        std::make_unique<ShardedStore>(plus_backend, base / "plus", opts);
    ProxyPipeline chain = make_proxy_pipeline(plus, plus_setup.r, 2, rng);
    for (std::size_t i = 0; i < 10; ++i) {
      const PlainIndex& row = rows[(i * 1201) % rows.size()];
      (void)plus_rig.store->append_any(
          "plus-" + std::to_string(i),
          AnyIndex::own(SchemeKind::kApksPlus,
                        chain.process(plus.partial_gen_index(plus_setup.pk,
                                                             row, rng))));
    }
    plus_rig.query = AnyQuery::own(
        SchemeKind::kApksPlus,
        plus.gen_cap(plus_setup.msk,
                     nursery_point_query(rows[1201 % rows.size()]), rng));

    MrqedPublicKey pk;
    MrqedMasterKey msk;
    mrqed.setup(rng, pk, msk);
    mrqed_rig.backend = &mrqed_backend;
    mrqed_rig.store =
        std::make_unique<ShardedStore>(mrqed_backend, base / "mrqed", opts);
    const std::vector<std::vector<std::uint64_t>> points = {
        {0, 0}, {1, 5}, {3, 3}, {4, 7}, {6, 2},
        {7, 7}, {2, 1}, {5, 5}, {0, 6}, {3, 7}};
    for (std::size_t i = 0; i < points.size(); ++i) {
      (void)mrqed_rig.store->append_any(
          "pt-" + std::to_string(i),
          AnyIndex::own(SchemeKind::kMrqed,
                        mrqed.encrypt(pk, points[i], rng)));
    }
    mrqed_rig.query = AnyQuery::own(
        SchemeKind::kMrqed, mrqed.gen_key(pk, msk, {{0, 3}, {0, 7}}, rng));
  }
};

ClusterEnv& env() {
  static ClusterEnv* e = new ClusterEnv();
  return *e;
}

// A running 3-node loopback cluster plus the map (with bound ports) a
// coordinator dials.
struct Cluster {
  std::vector<std::unique_ptr<ClusterNode>> nodes;
  ClusterMap map;
};

Cluster start_cluster(const SchemeRig& rig, std::uint32_t replicas = 2,
                      std::uint64_t version = 1) {
  std::vector<NodeInfo> infos = {{"node-a", "127.0.0.1", 0},
                                 {"node-b", "127.0.0.1", 0},
                                 {"node-c", "127.0.0.1", 0}};
  // Placement depends only on node names, so build ownership first, bind
  // ephemerally, then publish the bound ports in the map coordinators use.
  const ClusterMap port0(infos, rig.store->shard_count(), replicas, version);
  ClusterNodeOptions opts;
  opts.engine.threads = 1;
  opts.net.allow_unchecked = true;  // trusted internal tier
  Cluster c;
  for (std::uint32_t i = 0; i < infos.size(); ++i) {
    c.nodes.push_back(std::make_unique<ClusterNode>(
        *rig.backend, env().verifier, *rig.store, port0, i, opts));
    infos[i].port = c.nodes[i]->port();
  }
  c.map = ClusterMap(std::move(infos), rig.store->shard_count(), replicas,
                     version);
  return c;
}

// Failpoints are process-global: start and end every test clean.
class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::instance().clear_all(); }
  void TearDown() override { Failpoints::instance().clear_all(); }
};

// --- placement ---------------------------------------------------------------

TEST_F(ClusterTest, PlacementIsDeterministicWithUniqueReplicaSets) {
  const std::vector<NodeInfo> nodes = {{"alpha", "h1", 1},
                                       {"beta", "h2", 2},
                                       {"gamma", "h3", 3}};
  const ClusterMap a(nodes, 16, 2, 7);
  const ClusterMap b(nodes, 16, 2, 7);
  std::vector<std::size_t> owner_counts(nodes.size(), 0);
  for (std::uint32_t shard = 0; shard < 16; ++shard) {
    const std::vector<std::uint32_t>& owners = a.replicas_of(shard);
    EXPECT_EQ(owners, b.replicas_of(shard)) << "shard " << shard;
    ASSERT_EQ(owners.size(), 2u);
    EXPECT_NE(owners[0], owners[1]);
    EXPECT_EQ(owners[0], a.primary_of(shard));
    for (const std::uint32_t owner : owners) ++owner_counts[owner];
  }
  // HRW should give every node some work (16 shards, 3 nodes, R=2).
  for (std::size_t i = 0; i < owner_counts.size(); ++i) {
    EXPECT_GT(owner_counts[i], 0u) << "node " << i << " owns nothing";
  }
  // shards_of inverts replicas_of.
  for (std::uint32_t node = 0; node < nodes.size(); ++node) {
    for (const std::uint32_t shard : a.shards_of(node)) {
      const std::vector<std::uint32_t>& owners = a.replicas_of(shard);
      EXPECT_NE(std::find(owners.begin(), owners.end(), node), owners.end());
    }
  }
}

TEST_F(ClusterTest, PlacementOnlyMovesAffectedShardsWhenMembershipGrows) {
  const std::vector<NodeInfo> three = {{"alpha", "h", 1},
                                       {"beta", "h", 2},
                                       {"gamma", "h", 3}};
  std::vector<NodeInfo> four = three;
  four.push_back({"delta", "h", 4});
  const ClusterMap before(three, 64, 2, 1);
  const ClusterMap after(four, 64, 2, 2);
  // HRW: a shard's owners change only when the new node out-scores one of
  // the incumbents — surviving owners keep their relative order, so any
  // owner of `after` that is not `delta` must already own the shard in
  // `before`.
  std::size_t moved = 0;
  for (std::uint32_t shard = 0; shard < 64; ++shard) {
    const auto& a = before.replicas_of(shard);
    const auto& b = after.replicas_of(shard);
    if (a != b) ++moved;
    for (const std::uint32_t owner : b) {
      if (owner == 3) continue;  // the newcomer
      EXPECT_NE(std::find(a.begin(), a.end(), owner), a.end())
          << "shard " << shard << " reshuffled an incumbent owner";
    }
  }
  // Some shards must move to the new node, but never all of them.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, 64u);
}

TEST_F(ClusterTest, MapSerializationRoundTripsAndRefusesDamage) {
  const std::vector<NodeInfo> nodes = {{"alpha", "10.0.0.1", 7001},
                                       {"beta", "10.0.0.2", 7002}};
  const ClusterMap map(nodes, 8, 2, 42);
  const std::vector<std::uint8_t> bytes = map.serialize();

  const ClusterMap back = ClusterMap::deserialize(bytes);
  EXPECT_EQ(map, back);
  EXPECT_EQ(back.version(), 42u);
  EXPECT_EQ(back.total_shards(), 8u);
  EXPECT_EQ(back.nodes()[1].host, "10.0.0.2");
  for (std::uint32_t shard = 0; shard < 8; ++shard) {
    EXPECT_EQ(map.replicas_of(shard), back.replicas_of(shard));
  }
  // Re-serialization is byte-exact — every party agrees on the map bytes.
  EXPECT_EQ(back.serialize(), bytes);

  // Bit flips and truncations are refused, never misparsed.
  for (std::size_t i = 0; i < bytes.size(); i += 7) {
    std::vector<std::uint8_t> bad = bytes;
    bad[i] ^= 0x40;
    EXPECT_THROW((void)ClusterMap::deserialize(bad), std::exception)
        << "flipped byte " << i;
  }
  for (std::size_t cut = 0; cut < bytes.size(); cut += 5) {
    EXPECT_THROW(
        (void)ClusterMap::deserialize({bytes.data(), cut}), std::exception)
        << "cut " << cut;
  }
}

// --- merge property ----------------------------------------------------------

// ANY partition of the ids across shards — not just id % S — merges back
// to the exact upload order. This is the invariant that makes the
// coordinator's gather byte-identical to a single-node scan.
TEST_F(ClusterTest, MergeRestoresUploadOrderForArbitraryPartitions) {
  ChaChaRng rng("cluster-merge-property");
  for (std::size_t round = 0; round < 32; ++round) {
    const std::size_t n = 1 + rng.next_below(64);
    const std::size_t parts_count = 1 + rng.next_below(7);

    // Upload order: ascending ids with random gaps (ids need not be
    // dense, only unique and increasing).
    std::vector<net::ShardHit> upload;
    std::uint64_t id = 0;
    for (std::size_t i = 0; i < n; ++i) {
      id += 1 + rng.next_below(5);
      upload.push_back({id, "doc-" + std::to_string(id)});
    }
    std::vector<std::string> expected;
    for (const net::ShardHit& hit : upload) expected.push_back(hit.ref);

    // Adversarial partition: each record lands in a random part; parts
    // keep ascending-id order internally (what every shard stream
    // guarantees) but are otherwise arbitrary — including empty parts.
    std::vector<std::vector<net::ShardHit>> parts(parts_count);
    for (const net::ShardHit& hit : upload) {
      parts[rng.next_below(parts_count)].push_back(hit);
    }
    EXPECT_EQ(merge_by_id(std::move(parts)), expected) << "round " << round;
  }
}

// --- loopback cluster equivalence -------------------------------------------

void expect_cluster_equivalent(const SchemeRig& rig) {
  // Single-node ground truth: the direct disk scan.
  StoreScanStats local;
  const std::vector<std::string> expected =
      rig.store->search_any(rig.query, 1, &local);
  ASSERT_FALSE(expected.empty());

  Cluster c = start_cluster(rig);
  Coordinator coord(*rig.backend, env().verifier, c.map);
  ClusterSearchStats stats;
  const std::vector<std::string> refs =
      coord.search_any(rig.query, &stats);

  EXPECT_EQ(refs, expected);  // byte-identical, same order
  EXPECT_EQ(stats.scanned, local.scanned);
  EXPECT_EQ(stats.matched, local.matched);
  EXPECT_EQ(stats.matched, refs.size());
  EXPECT_EQ(stats.shards_ok, kShards);
  EXPECT_EQ(stats.shards_failed, 0u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_FALSE(stats.partial);

  // A second search reuses the pooled connections.
  const std::size_t first_rpcs = stats.rpcs;
  const std::vector<std::string> again = coord.search_any(rig.query, &stats);
  EXPECT_EQ(again, expected);
  EXPECT_LE(stats.rpcs, first_rpcs);

  for (auto& node : c.nodes) node->stop();
}

TEST_F(ClusterTest, ApksClusterMatchesSingleNodeByteForByte) {
  expect_cluster_equivalent(env().apks_rig);
}

TEST_F(ClusterTest, ApksPlusClusterMatchesSingleNodeByteForByte) {
  expect_cluster_equivalent(env().plus_rig);
}

TEST_F(ClusterTest, MrqedClusterMatchesSingleNodeByteForByte) {
  expect_cluster_equivalent(env().mrqed_rig);
}

TEST_F(ClusterTest, SignedQueryAuthenticatesOnceAtTheEdge) {
  const SchemeRig& rig = env().apks_rig;
  const std::vector<std::string> expected = rig.store->search_any(rig.query);

  Cluster c = start_cluster(rig);
  Coordinator coord(*rig.backend, env().verifier, c.map);

  SignedQuery sq{AnyQuery::ref(SchemeKind::kApks, &env().apks_cap.cap),
                 env().apks_cap.issuer, env().apks_cap.sig};
  ClusterSearchStats stats;
  EXPECT_EQ(coord.search_signed(sq, &stats), expected);
  EXPECT_TRUE(stats.authorized);

  // A rogue issuer is refused at the edge: empty result, zero scatter.
  sq.issuer = "rogue";
  const std::vector<std::string> refused = coord.search_signed(sq, &stats);
  EXPECT_TRUE(refused.empty());
  EXPECT_FALSE(stats.authorized);
  EXPECT_EQ(stats.rpcs, 0u);
  EXPECT_EQ(stats.scanned, 0u);

  for (auto& node : c.nodes) node->stop();
}

TEST_F(ClusterTest, KilledNodeFailsOverToReplicas) {
  const SchemeRig& rig = env().apks_rig;
  const std::vector<std::string> expected = rig.store->search_any(rig.query);

  Cluster c = start_cluster(rig);  // R=2: every shard has a standby
  Coordinator coord(*rig.backend, env().verifier, c.map);

  // Warm the connection pool, then kill a node that is the PRIMARY of at
  // least one shard (killing a pure standby would never be noticed).
  ClusterSearchStats stats;
  EXPECT_EQ(coord.search_any(rig.query, &stats), expected);
  const std::uint32_t victim = c.map.primary_of(0);
  c.nodes[victim]->stop();

  const std::vector<std::string> refs = coord.search_any(rig.query, &stats);
  EXPECT_EQ(refs, expected);  // still byte-identical
  EXPECT_FALSE(stats.partial);
  EXPECT_EQ(stats.shards_failed, 0u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.failovers, 0u);

  for (auto& node : c.nodes) node->stop();
}

TEST_F(ClusterTest, LegacyV1ClientIsServedTheNodeSubset) {
  const SchemeRig& rig = env().apks_rig;
  Cluster c = start_cluster(rig);

  // The node's view: matches among the shards it owns, ascending by id.
  const std::vector<std::string> full = rig.store->search_any(rig.query);

  net::NetClient client;
  client.connect("127.0.0.1", c.nodes[1]->port(), 10000);
  const net::HelloAckMsg hello = client.hello(rig.backend->kind(), 1);
  ASSERT_EQ(hello.status, WireStatus::kOk) << hello.message;
  EXPECT_EQ(hello.version, 1);  // the server negotiated down
  EXPECT_EQ(hello.records, c.nodes[1]->record_count());

  const std::vector<std::uint8_t> qbytes =
      rig.backend->encode_query(rig.query);
  ASSERT_EQ(client.auth_unchecked(qbytes).status, WireStatus::kOk);
  const net::RemoteResult remote = client.search();
  ASSERT_EQ(remote.status, WireStatus::kOk) << remote.message;

  // Every ref the node returns is a full-scan match, in full-scan order
  // (the node's subset preserves ascending-id order).
  std::size_t cursor = 0;
  for (const std::string& ref : remote.refs) {
    while (cursor < full.size() && full[cursor] != ref) ++cursor;
    ASSERT_LT(cursor, full.size())
        << "ref '" << ref << "' not a full-scan match (or out of order)";
    ++cursor;
  }
  EXPECT_EQ(remote.scanned, c.nodes[1]->record_count());

  // v2-only messages on a v1 session are a protocol error.
  EXPECT_THROW(
      (void)client.shard_search(c.nodes[1]->owned_shards(), c.map.version(),
                                c.map.total_shards()),
      ServingError);

  for (auto& node : c.nodes) node->stop();
}

TEST_F(ClusterTest, ShardSearchAgainstPlainServerIsRefused) {
  // A non-cluster NetServer must refuse shard RPCs, not misroute them.
  const SchemeRig& rig = env().apks_rig;
  Cluster c = start_cluster(rig, /*replicas=*/2);

  net::NetClient client;
  client.connect("127.0.0.1", c.nodes[0]->port(), 10000);
  ASSERT_EQ(client.hello(rig.backend->kind()).status, WireStatus::kOk);
  const std::vector<std::uint8_t> qbytes =
      rig.backend->encode_query(rig.query);
  ASSERT_EQ(client.auth_unchecked(qbytes).status, WireStatus::kOk);

  // Wrong map version → typed stale-map refusal, not a wrong answer.
  const net::ShardRemoteResult stale = client.shard_search(
      c.nodes[0]->owned_shards(), c.map.version() + 1, c.map.total_shards());
  EXPECT_EQ(stale.status, WireStatus::kBadRequest);
  EXPECT_TRUE(stale.hits.empty());
  EXPECT_NE(stale.message.find("stale cluster map"), std::string::npos)
      << stale.message;
  // Unowned shard → refusal.
  const std::vector<std::uint32_t> owned = c.nodes[0]->owned_shards();
  std::uint32_t unowned = 0;
  while (std::find(owned.begin(), owned.end(), unowned) != owned.end()) {
    ++unowned;
  }
  if (unowned < c.map.total_shards()) {
    const net::ShardRemoteResult refused = client.shard_search(
        {&unowned, 1}, c.map.version(), c.map.total_shards());
    EXPECT_EQ(refused.status, WireStatus::kBadRequest);
    EXPECT_TRUE(refused.hits.empty());
  }

  for (auto& node : c.nodes) node->stop();
}

// --- chaos -------------------------------------------------------------------

TEST_F(ClusterTest, ClusterChaosMidBatchNodeFaultFailsOver) {
  const SchemeRig& rig = env().apks_rig;
  const std::vector<std::string> expected = rig.store->search_any(rig.query);

  Cluster c = start_cluster(rig);
  Coordinator coord(*rig.backend, env().verifier, c.map);

  // Exactly one engine scan block throws mid-batch (whichever node's scan
  // reaches it first): that RPC fails, its shards fail over, the merged
  // result must still be byte-identical.
  FailpointPolicy policy;
  policy.action = FailAction::kThrow;
  policy.max_hits = 1;
  Failpoints::instance().set("engine.scan_block", policy);

  ClusterSearchStats stats;
  const std::vector<std::string> refs = coord.search_any(rig.query, &stats);
  EXPECT_EQ(refs, expected);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_FALSE(stats.partial);
  EXPECT_EQ(Failpoints::instance().fires("engine.scan_block"), 1u);

  for (auto& node : c.nodes) node->stop();
}

TEST_F(ClusterTest, ClusterChaosScatterFaultFailsOver) {
  const SchemeRig& rig = env().apks_rig;
  const std::vector<std::string> expected = rig.store->search_any(rig.query);

  Cluster c = start_cluster(rig);
  Coordinator coord(*rig.backend, env().verifier, c.map);

  // The first scatter RPC dies on the coordinator side before sending.
  FailpointPolicy policy;
  policy.action = FailAction::kThrow;
  policy.max_hits = 1;
  Failpoints::instance().set(cluster::kSiteScatter, policy);

  ClusterSearchStats stats;
  EXPECT_EQ(coord.search_any(rig.query, &stats), expected);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_GE(stats.failovers, 1u);

  for (auto& node : c.nodes) node->stop();
}

TEST_F(ClusterTest, ClusterChaosSlowReplicaHonoursPartialDeadline) {
  const SchemeRig& rig = env().apks_rig;
  const std::vector<std::string> expected = rig.store->search_any(rig.query);

  Cluster c = start_cluster(rig);
  Coordinator coord(*rig.backend, env().verifier, c.map);
  // Warm connections so the delay hits the scatter, not the dial.
  ASSERT_EQ(coord.search_any(rig.query), expected);

  // Every scatter RPC stalls 300 ms against a 50 ms budget.
  FailpointPolicy policy;
  policy.action = FailAction::kDelay;
  policy.delay_ms = 300;
  Failpoints::instance().set(cluster::kSiteScatter, policy);

  ServeControl control;
  control.deadline_ms = 50;
  control.partial_ok = true;
  ClusterSearchStats stats;
  const std::vector<std::string> refs =
      coord.search_any(rig.query, &stats, control);
  EXPECT_TRUE(stats.deadline_exceeded || stats.partial ||
              refs == expected);
  // Whatever came back is a correct subset in the correct order.
  std::size_t cursor = 0;
  for (const std::string& ref : refs) {
    while (cursor < expected.size() && expected[cursor] != ref) ++cursor;
    ASSERT_LT(cursor, expected.size()) << "spurious ref '" << ref << "'";
    ++cursor;
  }

  // Without partial_ok the same squeeze throws the typed error.
  Failpoints::instance().set(cluster::kSiteScatter, policy);
  ServeControl strict;
  strict.deadline_ms = 50;
  EXPECT_THROW((void)coord.search_any(rig.query, nullptr, strict),
               ServingError);

  for (auto& node : c.nodes) node->stop();
}

TEST_F(ClusterTest, ClusterChaosPartialScatterNeverFabricatesResults) {
  const SchemeRig& rig = env().apks_rig;
  Cluster c = start_cluster(rig);
  Coordinator coord(*rig.backend, env().verifier, c.map);

  // Every scatter RPC fails: all replicas exhausted.
  FailpointPolicy policy;
  policy.action = FailAction::kThrow;
  Failpoints::instance().set(cluster::kSiteScatter, policy);

  // Without partial_ok: typed unavailability, no fabricated rows.
  try {
    (void)coord.search_any(rig.query);
    FAIL() << "scatter with every replica down must not succeed";
  } catch (const ServingError& ex) {
    EXPECT_EQ(ex.code(), ErrorCode::kUnavailable);
    EXPECT_NE(std::string(ex.what()).find("unavailable"), std::string::npos);
  }

  // With partial_ok: an empty (but honest) result, every shard marked.
  ServeControl control;
  control.partial_ok = true;
  ClusterSearchStats stats;
  const std::vector<std::string> refs =
      coord.search_any(rig.query, &stats, control);
  EXPECT_TRUE(refs.empty());
  EXPECT_TRUE(stats.partial);
  EXPECT_EQ(stats.shards_failed, kShards);
  EXPECT_EQ(stats.shards_ok, 0u);
  EXPECT_GT(stats.retries, 0u);

  for (auto& node : c.nodes) node->stop();
}

TEST_F(ClusterTest, ClusterChaosStaleMapSurfacesTypedError) {
  const SchemeRig& rig = env().apks_rig;
  Cluster c = start_cluster(rig);
  Coordinator coord(*rig.backend, env().verifier, c.map);

  // The coordinator advertises a version the nodes don't hold.
  FailpointPolicy policy;
  policy.action = FailAction::kError;
  Failpoints::instance().set(cluster::kSiteStaleMap, policy);

  try {
    (void)coord.search_any(rig.query);
    FAIL() << "stale map must abort the search";
  } catch (const ServingError& ex) {
    EXPECT_EQ(ex.code(), ErrorCode::kUnavailable);
    EXPECT_NE(std::string(ex.what()).find("stale cluster map"),
              std::string::npos)
        << ex.what();
  }

  // Disarm: the same coordinator heals immediately.
  Failpoints::instance().clear_all();
  EXPECT_EQ(coord.search_any(rig.query), rig.store->search_any(rig.query));

  for (auto& node : c.nodes) node->stop();
}

TEST_F(ClusterTest, ClusterChaosBreakerSkipsRepeatedlyDeadNode) {
  const SchemeRig& rig = env().apks_rig;
  const std::vector<std::string> expected = rig.store->search_any(rig.query);

  Cluster c = start_cluster(rig);
  CoordinatorOptions opts;
  opts.breaker.threshold = 2;
  opts.breaker.cooldown_ops = 2;
  Coordinator coord(*rig.backend, env().verifier, c.map, opts);

  c.nodes[2]->stop();  // dead for good
  if (c.nodes[2]->owned_shards().empty()) {
    return;  // placement gave it nothing to own; nothing to assert
  }

  ClusterSearchStats totals;
  for (std::size_t i = 0; i < 6; ++i) {
    ClusterSearchStats stats;
    EXPECT_EQ(coord.search_any(rig.query, &stats), expected) << "op " << i;
    totals.retries += stats.retries;
    totals.breaker_opens += stats.breaker_opens;
    totals.breaker_skips += stats.breaker_skips;
    totals.breaker_probes += stats.breaker_probes;
  }
  // Two consecutive failures open the breaker; cooled-down ops skip the
  // dead node outright (no dial, no timeout) and later ops probe it.
  EXPECT_GE(totals.breaker_opens, 1u);
  EXPECT_GE(totals.breaker_skips, 1u);
  EXPECT_GE(totals.breaker_probes, 1u);

  const std::vector<cluster::NodeHealth> health = coord.health();
  EXPECT_EQ(health.size(), 3u);
  EXPECT_GT(health[2].consecutive_failures, 0u);

  for (auto& node : c.nodes) node->stop();
}

}  // namespace
}  // namespace apks
