// Parameterized over freshly generated type-A parameter sets: the whole
// stack (curve, pairing, DPVS, HPE, APKS) must be correct for any valid
// parameters, not just the embedded defaults.
#include <gtest/gtest.h>

#include "core/apks.h"

namespace apks {
namespace {

class ParamDiversity : public ::testing::TestWithParam<const char*> {
 protected:
  ParamDiversity()
      : params_(make_params(GetParam())),
        e_(params_),
        rng_(std::string("param-div-") + GetParam()) {}

  static TypeAParams make_params(const char* seed) {
    ChaChaRng rng(seed);
    return generate_type_a(rng);
  }

  TypeAParams params_;
  Pairing e_;
  ChaChaRng rng_;
};

TEST_P(ParamDiversity, ParamsValidate) {
  ChaChaRng check("param-check");
  EXPECT_NO_THROW(validate_params(params_, check));
  EXPECT_EQ(params_.q.bit_length(), 160u);
  EXPECT_GE(params_.p.bit_length(), 510u);
  EXPECT_NE(params_.q, default_type_a_params().q);
}

TEST_P(ParamDiversity, PairingBilinear) {
  const auto& fq = e_.fq();
  const Fq a = fq.random(rng_);
  const Fq b = fq.random(rng_);
  const auto& g = e_.curve().generator();
  EXPECT_EQ(e_.pair(e_.curve().mul_fq(g, a), e_.curve().mul_fq(g, b)),
            e_.gt_pow(e_.gt_generator(), fq.mul(a, b)));
  EXPECT_FALSE(e_.gt_is_one(e_.gt_generator()));
}

TEST_P(ParamDiversity, FixedBaseCombAgrees) {
  const Fq k = e_.fq().random(rng_);
  EXPECT_EQ(e_.curve().mul_base_fq(k),
            e_.curve().mul_fq(e_.curve().generator(), k));
}

TEST_P(ParamDiversity, ApksEndToEnd) {
  const Schema schema({{"a", nullptr, 1}, {"b", nullptr, 1}});
  const Apks scheme(e_, schema);
  ApksPublicKey pk;
  ApksMasterKey msk;
  scheme.setup(rng_, pk, msk);
  const PlainIndex row{{"x", "y"}};
  const auto enc = scheme.gen_index(pk, row, rng_);
  const auto hit = scheme.gen_cap(
      msk, Query{{QueryTerm::equals("x"), QueryTerm::any()}}, rng_);
  const auto miss = scheme.gen_cap(
      msk, Query{{QueryTerm::equals("z"), QueryTerm::any()}}, rng_);
  EXPECT_TRUE(scheme.search(hit, enc));
  EXPECT_FALSE(scheme.search(miss, enc));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParamDiversity,
                         ::testing::Values("alpha", "beta", "gamma"),
                         [](const auto& param_info) {
                           return std::string(param_info.param);
                         });

}  // namespace
}  // namespace apks
