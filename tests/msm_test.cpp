// Property tests for the windowed scalar-multiplication engine
// (src/ec/fixed_base.h, src/dpvs/precomp_basis.h): every engine must be
// bit-identical to the naive sum_i k_i * P_i reference — affine coordinates
// are canonical, so group equality IS byte equality — and the cached-table
// machinery must stay within its memory budget and be safe under
// concurrent lazy builds.
#include <gtest/gtest.h>

#include <thread>

#include "dpvs/precomp_basis.h"
#include "ec/fixed_base.h"
#include "hpe/hpe.h"
#include "hpe/serialize.h"

namespace apks {
namespace {

class MsmTest : public ::testing::Test {
 protected:
  MsmTest() : e_(default_type_a_params()), rng_("msm-test") {}

  [[nodiscard]] std::vector<AffinePoint> random_points(std::size_t m) {
    std::vector<AffinePoint> pts;
    pts.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
      pts.push_back(e_.curve().random_point(rng_));
    }
    return pts;
  }
  [[nodiscard]] std::vector<Fq> random_scalars(std::size_t m) {
    std::vector<Fq> ks;
    ks.reserve(m);
    for (std::size_t i = 0; i < m; ++i) ks.push_back(e_.fq().random(rng_));
    return ks;
  }
  // The definitional reference: sum of independent scalar multiplications.
  [[nodiscard]] AffinePoint reference_sum(const std::vector<AffinePoint>& pts,
                                          const std::vector<Fq>& ks) {
    AffinePoint acc = AffinePoint::infinity();
    for (std::size_t i = 0; i < pts.size(); ++i) {
      acc = e_.curve().add(acc, e_.curve().mul_fq(pts[i], ks[i]));
    }
    return acc;
  }

  Pairing e_;
  ChaChaRng rng_;
};

TEST_F(MsmTest, WindowedMsmMatchesNaiveAndReference) {
  for (const std::size_t m : {1u, 2u, 5u, 20u}) {
    const auto pts = random_points(m);
    const auto ks = random_scalars(m);
    const AffinePoint ref = reference_sum(pts, ks);
    EXPECT_EQ(e_.curve().msm(pts, ks), ref);
    EXPECT_EQ(e_.curve().msm_naive(pts, ks), ref);
  }
}

TEST_F(MsmTest, EdgeCases) {
  const Curve& curve = e_.curve();
  const FqField& fq = e_.fq();
  // Empty input.
  EXPECT_EQ(curve.msm({}, {}), AffinePoint::infinity());
  // All-zero scalars.
  const auto pts = random_points(4);
  const std::vector<Fq> zeros(4, fq.zero());
  EXPECT_EQ(curve.msm(pts, zeros), AffinePoint::infinity());
  // Point-at-infinity entries mixed in.
  std::vector<AffinePoint> with_inf = pts;
  with_inf[1] = AffinePoint::infinity();
  with_inf[3] = AffinePoint::infinity();
  const auto ks = random_scalars(4);
  EXPECT_EQ(curve.msm(with_inf, ks), reference_sum(with_inf, ks));
  // Duplicate points (k1 P + k2 P = (k1+k2) P exercises the doubling branch
  // of the shared chain).
  const std::vector<AffinePoint> dup{pts[0], pts[0], pts[0]};
  const auto dks = random_scalars(3);
  EXPECT_EQ(curve.msm(dup, dks), reference_sum(dup, dks));
  // Mismatched sizes still throw.
  EXPECT_THROW((void)curve.msm(pts, dks), std::invalid_argument);
}

TEST_F(MsmTest, ChainHandlesScalarsAboveGroupOrder) {
  const Curve& curve = e_.curve();
  const AffinePoint p = curve.random_point(rng_);
  // q, q+3, and the all-ones 192-bit value: recoding must not assume k < q.
  std::vector<FqInt> ks{curve.fq().modulus(),
                        curve.fq().modulus() + FqInt(3)};
  FqInt ones;
  for (auto& wl : ones.w) wl = ~std::uint64_t{0};
  ks.push_back(ones);
  for (const FqInt& k : ks) {
    const AffinePoint want = curve.mul(p, k);
    for (unsigned w = WindowTables::kMinWindow; w <= WindowTables::kMaxWindow;
         ++w) {
      const WindowTables tables(curve, std::span<const AffinePoint>(&p, 1), w,
                                false);
      const RecodedScalar rk = RecodedScalar::recode(k, w);
      const ChainTerm term{&tables, 0, &rk};
      EXPECT_EQ(curve.to_affine(windowed_chain(
                    curve, std::span<const ChainTerm>(&term, 1))),
                want)
          << "window " << w;
    }
  }
}

TEST_F(MsmTest, LincombEnginesAgreeOnMixedTerms) {
  const Dpvs dpvs(e_, 5);
  const FqField& fq = e_.fq();
  auto random_vec = [&] {
    GVec v;
    for (std::size_t j = 0; j < 5; ++j) {
      v.push_back(e_.curve().random_point(rng_));
    }
    return v;
  };
  std::vector<GVec> rows{random_vec(), random_vec(), random_vec()};
  const auto basis =
      PrecomputedBasis::build(dpvs, rows, PrecomputedBasis::Options{});
  ASSERT_TRUE(basis->has_tables());
  const GVec loose = random_vec();

  // Basis rows (one duplicated), a loose vector, and a zero coefficient.
  const std::vector<Dpvs::LcTerm> terms{
      {fq.random(rng_), basis.get(), 0, nullptr},
      {fq.random(rng_), basis.get(), 2, nullptr},
      {fq.random(rng_), basis.get(), 2, nullptr},
      {fq.zero(), basis.get(), 1, nullptr},
      {fq.random(rng_), nullptr, 0, &loose},
  };
  const GVec naive = dpvs.lincomb_terms(terms, ScalarEngine::kNaive);
  EXPECT_EQ(dpvs.lincomb_terms(terms, ScalarEngine::kWindowed), naive);
  EXPECT_EQ(dpvs.lincomb_terms(terms, ScalarEngine::kPrecomputed), naive);
  // Empty combination.
  EXPECT_EQ(dpvs.lincomb_terms({}, ScalarEngine::kPrecomputed),
            dpvs.zero_vec());
}

TEST_F(MsmTest, PrecomputedBasisRespectsMemoryBudget) {
  const Dpvs dpvs(e_, 4);
  std::vector<GVec> rows(3);
  for (auto& r : rows) {
    for (std::size_t j = 0; j < 4; ++j) {
      r.push_back(e_.curve().random_point(rng_));
    }
  }
  const std::size_t npts = 12;
  // A budget that admits exactly w = 3.
  PrecomputedBasis::Options opts;
  opts.max_table_bytes = WindowTables::table_bytes(npts, 3);
  const auto b3 = PrecomputedBasis::build(dpvs, rows, opts);
  ASSERT_TRUE(b3->has_tables());
  EXPECT_EQ(b3->window(), 3u);
  EXPECT_LE(b3->memory_bytes(), opts.max_table_bytes);
  // A budget below the narrowest window: no tables, lincombs still correct.
  opts.max_table_bytes = 1;
  const auto b0 = PrecomputedBasis::build(dpvs, rows, opts);
  EXPECT_FALSE(b0->has_tables());
  const std::vector<Dpvs::LcTerm> terms{
      {e_.fq().random(rng_), b0.get(), 0, nullptr},
      {e_.fq().random(rng_), b0.get(), 1, nullptr},
  };
  const std::vector<Dpvs::LcTerm> with_tables{
      {terms[0].coeff, b3.get(), 0, nullptr},
      {terms[1].coeff, b3.get(), 1, nullptr},
  };
  EXPECT_EQ(dpvs.lincomb_terms(terms, ScalarEngine::kPrecomputed),
            dpvs.lincomb_terms(with_tables, ScalarEngine::kNaive));
}

TEST_F(MsmTest, CacheIsLazySharedAndMutationAware) {
  const Dpvs dpvs(e_, 3);
  std::vector<GVec> rows(2);
  for (auto& r : rows) {
    for (std::size_t j = 0; j < 3; ++j) {
      r.push_back(e_.curve().random_point(rng_));
    }
  }
  const BasisPrecompCache cache;
  // Concurrent first builds converge on one shared basis.
  std::vector<std::shared_ptr<const PrecomputedBasis>> got(8);
  {
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < got.size(); ++i) {
      threads.emplace_back([&, i] {
        got[i] = cache.get_or_build(dpvs, rows, PrecomputedBasis::Options{});
      });
    }
    for (auto& t : threads) t.join();
  }
  for (const auto& b : got) EXPECT_EQ(b, got[0]);
  // Mutating the basis in place (as HPE+ does to B*) invalidates the cache.
  rows[0] = dpvs.scale(e_.fq().random(rng_), rows[0]);
  const auto rebuilt =
      cache.get_or_build(dpvs, rows, PrecomputedBasis::Options{});
  EXPECT_NE(rebuilt, got[0]);
  EXPECT_EQ(rebuilt->row(0)[0], rows[0][0]);
  // Copying the cache yields a cold one (fresh build, same contents).
  const BasisPrecompCache copy(cache);
  const auto from_copy =
      copy.get_or_build(dpvs, rows, PrecomputedBasis::Options{});
  EXPECT_NE(from_copy, rebuilt);
}

TEST_F(MsmTest, CofactorClearingIsCountedSeparately) {
  const Curve& curve = e_.curve();
  curve.reset_op_counts();
  (void)curve.hash_to_point("msm-test-cofactor");
  EXPECT_GE(curve.cofactor_mul_count(), 1u);
  EXPECT_EQ(curve.scalar_mul_count(), 0u);
  EXPECT_EQ(curve.op_counts().cofactor_mul, curve.cofactor_mul_count());
}

// The acceptance bar for the optimization: under the same seed, every
// engine must emit byte-identical ciphertexts and keys.
TEST_F(MsmTest, HpeOutputsBitIdenticalAcrossEngines) {
  constexpr std::size_t kN = 4;
  const GtEl msg = e_.gt_generator();
  struct Artifacts {
    std::vector<std::uint8_t> ct, key, child, key_naive, child_naive;
  };
  auto run = [&](ScalarEngine engine) {
    const Hpe hpe(e_, kN, HpeOptions{engine});
    ChaChaRng rng("msm-bit-identity");
    HpePublicKey pk;
    HpeMasterKey msk;
    hpe.setup(rng, pk, msk);
    std::vector<Fq> x, v;
    for (std::size_t i = 0; i < kN; ++i) {
      x.push_back(e_.fq().random(rng));
      v.push_back(e_.fq().random(rng));
    }
    // x.v = 0 not required: we compare bytes, not decryption results.
    Artifacts a;
    a.ct = serialize_ciphertext(e_, hpe.encrypt(pk, x, msg, rng));
    const HpeKey key = hpe.gen_key(msk, v, rng);
    a.key = serialize_key(e_, key);
    a.child = serialize_key(e_, hpe.delegate(key, v, rng));
    const HpeKey keyn = hpe.gen_key_naive(msk, v, rng);
    a.key_naive = serialize_key(e_, keyn);
    a.child_naive = serialize_key(e_, hpe.delegate_naive(keyn, v, rng));
    return a;
  };
  const Artifacts naive = run(ScalarEngine::kNaive);
  for (const ScalarEngine engine :
       {ScalarEngine::kWindowed, ScalarEngine::kPrecomputed}) {
    const Artifacts got = run(engine);
    EXPECT_EQ(got.ct, naive.ct);
    EXPECT_EQ(got.key, naive.key);
    EXPECT_EQ(got.child, naive.child);
    EXPECT_EQ(got.key_naive, naive.key_naive);
    EXPECT_EQ(got.child_naive, naive.child_naive);
  }
}

}  // namespace
}  // namespace apks
