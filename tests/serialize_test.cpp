// Round-trip tests for HPE wire encodings, plus checks that serialized
// object sizes follow the paper's element-count formulas.
#include <gtest/gtest.h>

#include "hpe/serialize.h"

namespace apks {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 3;
  SerializeTest()
      : e_(default_type_a_params()), hpe_(e_, kN), rng_("serialize-test") {
    hpe_.setup(rng_, pk_, msk_);
  }

  std::vector<Fq> random_vec() {
    std::vector<Fq> v(kN);
    for (auto& c : v) c = e_.fq().random(rng_);
    return v;
  }

  Pairing e_;
  Hpe hpe_;
  ChaChaRng rng_;
  HpePublicKey pk_;
  HpeMasterKey msk_;
};

TEST_F(SerializeTest, FqRoundTrip) {
  for (int i = 0; i < 20; ++i) {
    const Fq v = e_.fq().random(rng_);
    ByteWriter w;
    write_fq(e_.fq(), v, w);
    EXPECT_EQ(w.size(), 20u);  // the paper's 20-byte scalars
    const auto data = w.take();
    ByteReader r(data);
    EXPECT_EQ(read_fq(e_.fq(), r), v);
  }
}

TEST_F(SerializeTest, PointRoundTripIncludingInfinity) {
  ByteWriter w;
  write_point(e_.curve(), AffinePoint::infinity(), w);
  const auto p = e_.curve().random_point(rng_);
  write_point(e_.curve(), p, w);
  const auto data = w.take();
  ByteReader r(data);
  EXPECT_TRUE(read_point(e_.curve(), r).inf);
  EXPECT_EQ(read_point(e_.curve(), r), p);
}

TEST_F(SerializeTest, CiphertextRoundTripAndSize) {
  const auto ct = hpe_.encrypt(pk_, random_vec(), e_.gt_random(rng_), rng_);
  const auto data = serialize_ciphertext(e_, ct);
  const auto back = deserialize_ciphertext(e_, data);
  EXPECT_EQ(back.c1, ct.c1);
  EXPECT_EQ(back.c2, ct.c2);
  // Paper: 65(n0 + 1) payload bytes; we add a 4-byte length header.
  const std::size_t n0 = kN + 3;
  EXPECT_EQ(data.size(), 65 * (n0 + 1) + 4);
}

TEST_F(SerializeTest, KeyRoundTripAndLevelGrowth) {
  const auto v = random_vec();
  const auto key = hpe_.gen_key(msk_, v, rng_);
  const auto data = serialize_key(e_, key);
  const auto back = deserialize_key(e_, data);
  EXPECT_EQ(back.level, key.level);
  EXPECT_EQ(back.dec, key.dec);
  EXPECT_EQ(back.ran.size(), key.ran.size());
  EXPECT_EQ(back.del.size(), key.del.size());
  for (std::size_t i = 0; i < key.del.size(); ++i) {
    EXPECT_EQ(back.del[i], key.del[i]);
  }

  // A delegated key is strictly larger (one more randomizer).
  const auto child = hpe_.delegate(key, random_vec(), rng_);
  EXPECT_GT(serialize_key(e_, child).size(), data.size());
}

TEST_F(SerializeTest, DeserializedKeyStillDecrypts) {
  // v = (1, t, 0) ⊥ x = (-t, 1, 0).
  const Fq t = e_.fq().random(rng_);
  std::vector<Fq> v{e_.fq().one(), t, e_.fq().zero()};
  std::vector<Fq> x{e_.fq().neg(t), e_.fq().one(), e_.fq().zero()};
  const auto key = hpe_.gen_key(msk_, v, rng_);
  const GtEl msg = e_.gt_random(rng_);
  const auto ct = hpe_.encrypt(pk_, x, msg, rng_);
  const auto key2 = deserialize_key(e_, serialize_key(e_, key));
  const auto ct2 = deserialize_ciphertext(e_, serialize_ciphertext(e_, ct));
  EXPECT_EQ(hpe_.decrypt(ct2, key2), msg);
}

TEST_F(SerializeTest, PublicKeyRoundTrip) {
  const auto data = serialize_public_key(e_, pk_);
  const auto back = deserialize_public_key(e_, data);
  EXPECT_EQ(back.n, pk_.n);
  ASSERT_EQ(back.bhat.size(), pk_.bhat.size());
  for (std::size_t i = 0; i < pk_.bhat.size(); ++i) {
    EXPECT_EQ(back.bhat[i], pk_.bhat[i]);
  }
}

TEST_F(SerializeTest, MasterKeyRoundTrip) {
  const auto data = serialize_master_key(e_, msk_);
  const auto back = deserialize_master_key(e_, data);
  EXPECT_EQ(back.x, msk_.x);
  ASSERT_EQ(back.bstar.size(), msk_.bstar.size());
  for (std::size_t i = 0; i < msk_.bstar.size(); ++i) {
    EXPECT_EQ(back.bstar[i], msk_.bstar[i]);
  }
}

TEST_F(SerializeTest, TruncatedInputsRejected) {
  const auto ct = hpe_.encrypt(pk_, random_vec(), e_.gt_random(rng_), rng_);
  auto data = serialize_ciphertext(e_, ct);
  data.pop_back();
  EXPECT_THROW((void)deserialize_ciphertext(e_, data), std::out_of_range);
  data.push_back(0);
  data.push_back(0);  // trailing garbage
  EXPECT_THROW((void)deserialize_ciphertext(e_, data), std::invalid_argument);
}

}  // namespace
}  // namespace apks
