// SearchEngine: batched multi-query serving must be observationally
// identical to independent CloudServer::search calls, with the metrics
// layers (authorization / preprocessing-cache / scan) each filling only
// their own fields.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "cloud/search_engine.h"
#include "cloud/server.h"
#include "common/failpoint.h"
#include "store/sharded_store.h"

namespace apks {
namespace {

Schema small_schema() {
  return Schema({{"illness", nullptr, 2},
                 {"sex", nullptr, 1},
                 {"provider", nullptr, 1}});
}

Query q3(QueryTerm a = QueryTerm::any(), QueryTerm b = QueryTerm::any(),
         QueryTerm c = QueryTerm::any()) {
  return Query{{std::move(a), std::move(b), std::move(c)}};
}

class SearchEngineTest : public ::testing::Test {
 protected:
  SearchEngineTest()
      : e_(default_type_a_params()),
        apks_(e_, small_schema()),
        rng_("search-engine-test"),
        ta_(apks_, rng_) {
    lta_ = ta_.make_lta("hospital-A",
                        q3(QueryTerm::any(), QueryTerm::any(),
                           QueryTerm::equals("Hospital A")),
                        rng_);
    UserAttributes peter;
    peter.values["illness"] = {"Diabetes", "Flu"};
    peter.values["sex"] = {"Male"};
    peter.values["provider"] = {"Hospital A"};
    lta_->register_user("peter", peter);

    CapabilityVerifier verifier(e_, ta_.ibs_params());
    verifier.register_authority("hospital-A");
    server_ = std::make_unique<CloudServer>(apks_, std::move(verifier));

    store({"Diabetes", "Male", "Hospital A"}, "doc-bob");
    store({"Diabetes", "Female", "Hospital A"}, "doc-carol");
    store({"Flu", "Male", "Hospital A"}, "doc-dave");
    store({"Diabetes", "Male", "Hospital B"}, "doc-erin");
    store({"Flu", "Female", "Hospital A"}, "doc-fay");
  }

  void store(std::vector<std::string> values, std::string ref) {
    (void)server_->store(
        apks_.gen_index(ta_.public_key(), PlainIndex{std::move(values)}, rng_),
        std::move(ref));
  }

  [[nodiscard]] SignedCapability issue(const Query& q) {
    auto cap = lta_->delegate_for_user("peter", q, rng_);
    EXPECT_TRUE(cap.has_value());
    return *cap;
  }

  Pairing e_;
  Apks apks_;
  ChaChaRng rng_;
  TrustedAuthority ta_;
  std::unique_ptr<LocalAuthority> lta_;
  std::unique_ptr<CloudServer> server_;
};

TEST_F(SearchEngineTest, BatchMatchesIndependentSearches) {
  std::vector<SignedCapability> caps;
  caps.push_back(issue(q3(QueryTerm::equals("Diabetes"))));
  caps.push_back(issue(q3(QueryTerm::any(), QueryTerm::equals("Male"))));
  caps.push_back(ta_.issue(q3(), rng_));  // "TA" is not registered: rejected
  caps.push_back(issue(q3()));
  caps.push_back(caps[0]);  // duplicate of the first (hot key)

  SearchEngine engine(*server_, {.threads = 2, .block_records = 2});
  BatchMetrics metrics;
  const auto batch = engine.search_batch(caps, &metrics);

  ASSERT_EQ(batch.size(), caps.size());
  ASSERT_EQ(metrics.per_query.size(), caps.size());
  EXPECT_EQ(metrics.queries, caps.size());
  EXPECT_EQ(metrics.authorized, caps.size() - 1);
  EXPECT_EQ(metrics.records, server_->record_count());

  for (std::size_t i = 0; i < caps.size(); ++i) {
    CloudServer::SearchStats stats;
    const auto expect = server_->search(caps[i], &stats);
    EXPECT_EQ(batch[i], expect) << "query " << i;  // same docs, same order
    EXPECT_EQ(metrics.per_query[i].authorized, stats.authorized);
    EXPECT_EQ(metrics.per_query[i].scanned, stats.scanned);
    EXPECT_EQ(metrics.per_query[i].matched, stats.matched);
  }
}

TEST_F(SearchEngineTest, UnauthorizedQueryIsNeverScanned) {
  const SignedCapability forged = ta_.issue(q3(), rng_);
  SearchEngine engine(*server_);
  ServerMetrics m;
  const auto docs = engine.search(forged, &m);
  EXPECT_TRUE(docs.empty());
  EXPECT_FALSE(m.authorized);
  EXPECT_EQ(m.scanned, 0u);
  EXPECT_EQ(m.matched, 0u);
  EXPECT_EQ(m.prepare_calls, 0u);
  EXPECT_EQ(m.ops.miller, 0u);
  EXPECT_EQ(m.ops.final_exp, 0u);
}

TEST_F(SearchEngineTest, RepeatedCapabilitySkipsPreprocessing) {
  const SignedCapability cap = issue(q3(QueryTerm::equals("Diabetes")));
  std::vector<SignedCapability> caps(4, cap);

  SearchEngine engine(*server_, {.threads = 2});
  BatchMetrics metrics;
  const auto batch = engine.search_batch(caps, &metrics);

  EXPECT_EQ(metrics.prepare_calls, 1u);  // one miss, Q-1 hits
  EXPECT_EQ(metrics.cache_hits, caps.size() - 1);
  for (std::size_t i = 1; i < batch.size(); ++i) EXPECT_EQ(batch[i], batch[0]);

  // A later batch with the same capability hits the cache across batches.
  BatchMetrics again;
  (void)engine.search_batch({&cap, 1}, &again);
  EXPECT_EQ(again.prepare_calls, 0u);
  EXPECT_EQ(again.cache_hits, 1u);
  EXPECT_EQ(engine.cache_misses(), 1u);
  EXPECT_EQ(engine.cache_hits(), caps.size());
}

TEST_F(SearchEngineTest, DeterministicAcrossThreadAndBlockCounts) {
  std::vector<SignedCapability> caps;
  caps.push_back(issue(q3(QueryTerm::equals("Diabetes"))));
  caps.push_back(issue(q3(QueryTerm::equals("Flu"))));

  std::vector<std::vector<std::string>> reference;
  for (const auto& cap : caps) reference.push_back(server_->search(cap));

  for (const std::size_t threads : {1u, 2u, 4u, 0u}) {
    for (const std::size_t block : {1u, 3u, 16u}) {
      SearchEngine engine(*server_,
                          {.threads = threads, .block_records = block});
      EXPECT_EQ(engine.search_batch(caps), reference)
          << "threads=" << threads << " block=" << block;
    }
  }
}

TEST_F(SearchEngineTest, MetricsReportPairingWork) {
  const SignedCapability cap = issue(q3(QueryTerm::equals("Diabetes")));
  SearchEngine engine(*server_, {.threads = 1});
  ServerMetrics m;
  const auto docs = engine.search(cap, &m);
  // Diabetes at Hospital A (LTA scope): bob and carol, not erin (B).
  EXPECT_EQ(docs.size(), 2u);
  EXPECT_TRUE(m.authorized);
  EXPECT_EQ(m.scanned, server_->record_count());
  EXPECT_EQ(m.matched, docs.size());
  EXPECT_EQ(m.prepare_calls, 1u);
  // The scan pairs every record (n+3 Miller loops each, >= 1 final exp).
  EXPECT_GE(m.ops.miller, server_->record_count());
  EXPECT_GE(m.ops.final_exp, server_->record_count());
  EXPECT_GT(m.wall_s, 0.0);
}

TEST_F(SearchEngineTest, VerifiedParallelServerPathChecksSignature) {
  const SignedCapability good = issue(q3(QueryTerm::equals("Diabetes")));
  const SignedCapability forged = ta_.issue(q3(), rng_);

  CloudServer::SearchStats stats;
  const auto docs = server_->search_parallel(good, 3, &stats);
  EXPECT_TRUE(stats.authorized);
  EXPECT_EQ(stats.scanned, server_->record_count());
  EXPECT_EQ(docs, server_->search(good));

  // Stale values in the caller's struct must not leak through either layer.
  stats = {true, 999, 999};
  const auto rejected = server_->search_parallel(forged, 3, &stats);
  EXPECT_TRUE(rejected.empty());
  EXPECT_FALSE(stats.authorized);
  EXPECT_EQ(stats.scanned, 0u);
  EXPECT_EQ(stats.matched, 0u);
}

TEST_F(SearchEngineTest, StatsLayersFillOnlyTheirOwnFields) {
  const SignedCapability cap = issue(q3(QueryTerm::equals("Diabetes")));
  CloudServer::SearchStats stats{true, 999, 999};
  (void)server_->search(cap, &stats);
  EXPECT_TRUE(stats.authorized);
  EXPECT_EQ(stats.scanned, server_->record_count());

  // The unchecked scan owns only scanned/matched: authorized is untouched.
  stats = {};
  (void)server_->search_unchecked(cap.cap, &stats);
  EXPECT_FALSE(stats.authorized);
  EXPECT_EQ(stats.scanned, server_->record_count());
}

// A disabled prepared-query cache (capacity 0) must stay out of the way —
// never cache, never hit — while keeping its hit/miss totals coherent with
// the engine's prepare_calls (every get is a counted miss).
TEST_F(SearchEngineTest, DisabledPreparedCacheCountsMissesWithoutCaching) {
  const SignedCapability cap = issue(q3(QueryTerm::equals("Diabetes")));
  std::vector<SignedCapability> caps(3, cap);

  SearchEngine engine(*server_, {.threads = 1, .cache_capacity = 0});
  BatchMetrics first;
  const auto a = engine.search_batch(caps, &first);
  EXPECT_EQ(first.prepare_calls, caps.size());  // every query re-prepares
  EXPECT_EQ(first.cache_hits, 0u);

  BatchMetrics second;
  const auto b = engine.search_batch(caps, &second);
  EXPECT_EQ(second.prepare_calls, caps.size());
  EXPECT_EQ(second.cache_hits, 0u);
  EXPECT_EQ(a, b);

  EXPECT_EQ(engine.cache_size(), 0u);
  EXPECT_EQ(engine.cache_hits(), 0u);
  EXPECT_EQ(engine.cache_misses(), 2 * caps.size());  // misses still counted
}

// Regression: a partial (cancelled or deadline-stopped) batch has holes in
// its hit matrix and must never memoize segment verdicts; only a complete
// pass populates the verdict cache.
TEST_F(SearchEngineTest, PartialScansNeverPopulateVerdictCache) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "apks-engine-vcache-partial";
  fs::remove_all(dir);
  ShardedStoreOptions sopts;
  sopts.shards = 1;
  sopts.segment.segment_max_bytes = 1;  // seal after every append
  ShardedStore store(e_, dir, sopts);
  auto put = [&](std::vector<std::string> values, std::string ref) {
    (void)store.append(std::move(ref),
                       apks_.gen_index(ta_.public_key(),
                                       PlainIndex{std::move(values)}, rng_));
  };
  put({"Diabetes", "Male", "Hospital A"}, "doc-bob");
  put({"Diabetes", "Female", "Hospital A"}, "doc-carol");
  put({"Flu", "Male", "Hospital A"}, "doc-dave");
  put({"Diabetes", "Male", "Hospital B"}, "doc-erin");
  store.sync();

  CapabilityVerifier verifier(e_, ta_.ibs_params());
  verifier.register_authority("hospital-A");
  CloudServer server(apks_, std::move(verifier));
  ASSERT_EQ(server.load_from(store), 4u);
  ASSERT_FALSE(server.segment_table().empty());

  SearchEngine::Options opts;
  opts.threads = 1;
  opts.block_records = 1;
  opts.verdict_cache_bytes = 1 << 20;
  SearchEngine engine(server, opts);
  ASSERT_NE(engine.verdict_cache(), nullptr);
  const SignedCapability cap = issue(q3(QueryTerm::equals("Diabetes")));

  // (a) Cancelled before any work: nothing may be memoized.
  std::atomic<bool> cancel{true};
  ServeControl ctl;
  ctl.cancel = &cancel;
  ctl.partial_ok = true;
  BatchMetrics cm;
  (void)engine.search_batch({&cap, 1}, &cm, ctl);
  EXPECT_TRUE(cm.cancelled);
  EXPECT_EQ(cm.verdict_puts, 0u);
  EXPECT_EQ(engine.verdict_cache()->stats().insertions, 0u);

  // (b) Deadline fires mid-scan (each block stalls 50 ms, budget 40 ms):
  // the hit matrix is incomplete, so population must be skipped.
  FailpointPolicy slow;
  slow.action = FailAction::kDelay;
  slow.delay_ms = 50;
  Failpoints::instance().set("engine.scan_block", slow);
  ServeControl tight;
  tight.deadline_ms = 40;
  tight.partial_ok = true;
  BatchMetrics dm;
  (void)engine.search_batch({&cap, 1}, &dm, tight);
  Failpoints::instance().clear_all();
  EXPECT_TRUE(dm.deadline_exceeded);
  EXPECT_LT(dm.per_query[0].scanned, server.record_count());
  EXPECT_EQ(dm.verdict_puts, 0u);
  EXPECT_EQ(engine.verdict_cache()->stats().insertions, 0u);

  // (c) A complete pass memoizes, and the repeat resolves from the cache
  // with byte-identical results.
  BatchMetrics full;
  const auto want = engine.search_batch({&cap, 1}, &full);
  EXPECT_GT(full.verdict_puts, 0u);
  BatchMetrics hot;
  const auto got = engine.search_batch({&cap, 1}, &hot);
  EXPECT_EQ(got, want);
  EXPECT_GT(hot.verdict_hits, 0u);
  EXPECT_EQ(hot.verdict_puts, 0u);
  fs::remove_all(dir);
}

// The lifetime counters are snapshotted under one lock; concurrent batches
// must produce a final snapshot whose outcome counts exactly add up (a torn
// view would undercount one field while overcounting another).
TEST_F(SearchEngineTest, CountersSnapshotAddsUpUnderConcurrency) {
  const SignedCapability cap = issue(q3(QueryTerm::equals("Diabetes")));
  SearchEngine engine(*server_, {.threads = 1});

  constexpr int kBatches = 3;
  std::atomic<bool> cancel{true};
  std::vector<std::thread> pool;
  for (int t = 0; t < kBatches; ++t) {
    pool.emplace_back([&] {
      (void)engine.search_batch({&cap, 1});  // served
      ServeControl ctl;
      ctl.cancel = &cancel;
      ctl.partial_ok = true;
      (void)engine.search_batch({&cap, 1}, nullptr, ctl);  // cancelled
      const EngineCounters mid = engine.counters();  // racing snapshot
      EXPECT_LE(mid.served + mid.cancelled, 2u * kBatches);
    });
  }
  for (auto& t : pool) t.join();

  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.served, static_cast<std::uint64_t>(kBatches));
  EXPECT_EQ(counters.cancelled, static_cast<std::uint64_t>(kBatches));
  EXPECT_EQ(counters.shed, 0u);
  EXPECT_EQ(counters.deadline_exceeded, 0u);
}

TEST_F(SearchEngineTest, ConcurrentStoreAndSearchAreSerialized) {
  // Writer uploads while readers scan: the shared_mutex must keep every
  // scan on a consistent snapshot (this is the TSan target of tools/ci.sh).
  const SignedCapability cap = issue(q3(QueryTerm::equals("Diabetes")));
  auto extra = apks_.gen_index(ta_.public_key(),
                               PlainIndex{{"Diabetes", "Male", "Hospital A"}},
                               rng_);
  const std::size_t before = server_->record_count();

  std::thread writer([&] {
    (void)server_->store(std::move(extra), "doc-late");
  });
  for (int i = 0; i < 3; ++i) {
    CloudServer::SearchStats stats;
    (void)server_->search_parallel(cap, 2, &stats);
    EXPECT_TRUE(stats.authorized);
    EXPECT_TRUE(stats.scanned == before || stats.scanned == before + 1);
  }
  writer.join();
  EXPECT_EQ(server_->record_count(), before + 1);
}

}  // namespace
}  // namespace apks
