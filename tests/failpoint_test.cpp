// Failpoint framework tests: triggers (every/after/probability/limit), the
// env-spec grammar, thread safety, the disarmed fast path, and the fs shim
// integration (injected EIO and short writes leaving real torn bytes).
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/failpoint.h"
#include "core/backend.h"
#include "store/fs.h"
#include "store/segment.h"

namespace apks {
namespace {

namespace fs = std::filesystem;

// Every test starts and ends with a disarmed registry: failpoints are
// process-global, so leaks would bleed into unrelated tests.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::instance().clear_all(); }
  void TearDown() override { Failpoints::instance().clear_all(); }
};

FailpointPolicy throw_policy() {
  FailpointPolicy p;
  p.action = FailAction::kThrow;
  return p;
}

TEST_F(FailpointTest, DisarmedSitesNeverFire) {
  EXPECT_FALSE(Failpoints::active());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(failpoint("test.nowhere").fired());
  }
  // The disarmed fast path does not even count evaluations (no lock, no
  // registry touch).
  EXPECT_EQ(Failpoints::instance().evaluations("test.nowhere"), 0u);
}

TEST_F(FailpointTest, ArmAndClear) {
  Failpoints::instance().set("test.a", throw_policy());
  EXPECT_TRUE(Failpoints::active());
  EXPECT_THROW((void)failpoint("test.a"), FailpointError);
  EXPECT_FALSE(failpoint("test.other").fired());  // other sites unaffected
  Failpoints::instance().clear("test.a");
  EXPECT_FALSE(Failpoints::active());
  EXPECT_NO_THROW((void)failpoint("test.a"));
}

TEST_F(FailpointTest, ThrowCarriesSiteName) {
  Failpoints::instance().set("test.site.name", throw_policy());
  try {
    (void)failpoint("test.site.name");
    FAIL() << "failpoint did not fire";
  } catch (const FailpointError& e) {
    EXPECT_EQ(e.site(), "test.site.name");
  }
}

TEST_F(FailpointTest, EveryNth) {
  FailpointPolicy p;
  p.action = FailAction::kError;
  p.error_code = EIO;
  p.every = 3;
  Failpoints::instance().set("test.every", p);
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(failpoint("test.every").fired());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
  EXPECT_EQ(Failpoints::instance().evaluations("test.every"), 9u);
  EXPECT_EQ(Failpoints::instance().fires("test.every"), 3u);
}

TEST_F(FailpointTest, AfterNSkipsWarmup) {
  FailpointPolicy p;
  p.action = FailAction::kError;
  p.after = 4;
  Failpoints::instance().set("test.after", p);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(failpoint("test.after").fired()) << "warmup evaluation " << i;
  }
  EXPECT_TRUE(failpoint("test.after").fired());
  EXPECT_TRUE(failpoint("test.after").fired());
}

TEST_F(FailpointTest, LimitDisarmsAfterMaxHits) {
  FailpointPolicy p;
  p.action = FailAction::kError;
  p.max_hits = 2;
  Failpoints::instance().set("test.limit", p);
  EXPECT_TRUE(failpoint("test.limit").fired());
  EXPECT_TRUE(failpoint("test.limit").fired());
  EXPECT_FALSE(failpoint("test.limit").fired());
  EXPECT_FALSE(failpoint("test.limit").fired());
  EXPECT_EQ(Failpoints::instance().fires("test.limit"), 2u);
}

TEST_F(FailpointTest, ProbabilityIsSeededAndDeterministic) {
  auto schedule = [](std::uint64_t seed) {
    Failpoints::instance().clear_all();
    FailpointPolicy p;
    p.action = FailAction::kError;
    p.probability = 0.5;
    p.seed = seed;
    Failpoints::instance().set("test.prob", p);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(failpoint("test.prob").fired());
    return fired;
  };
  const auto a = schedule(7);
  const auto b = schedule(7);
  const auto c = schedule(8);
  EXPECT_EQ(a, b) << "same seed must replay the same schedule";
  EXPECT_NE(a, c) << "different seeds should diverge";
  // Sanity: p=0.5 over 64 draws fires somewhere strictly between the
  // extremes.
  const auto hits = std::count(a.begin(), a.end(), true);
  EXPECT_GT(hits, 0);
  EXPECT_LT(hits, 64);
}

TEST_F(FailpointTest, ReArmingResetsTriggerState) {
  FailpointPolicy p;
  p.action = FailAction::kError;
  p.after = 1;
  Failpoints::instance().set("test.rearm", p);
  EXPECT_FALSE(failpoint("test.rearm").fired());
  EXPECT_TRUE(failpoint("test.rearm").fired());
  Failpoints::instance().set("test.rearm", p);  // reset: warmup starts over
  EXPECT_FALSE(failpoint("test.rearm").fired());
  EXPECT_TRUE(failpoint("test.rearm").fired());
}

TEST_F(FailpointTest, ConfigureSpecGrammar) {
  const std::size_t armed = Failpoints::instance().configure(
      "fs.write=short:12;every:2,fs.fsync=error:28;after:1;limit:3,"
      "proxy.s0.r0=throw;p:0.25;seed:42,engine.scan_block=delay:5");
  EXPECT_EQ(armed, 4u);
  // fs.write: second evaluation fires a 12-byte short write.
  EXPECT_FALSE(failpoint("fs.write").fired());
  const FailpointFire fire = failpoint("fs.write");
  EXPECT_EQ(fire.action, FailAction::kShortWrite);
  EXPECT_EQ(fire.short_bytes, 12u);
  // fs.fsync: errno 28 (ENOSPC) after one warmup evaluation.
  EXPECT_FALSE(failpoint("fs.fsync").fired());
  const FailpointFire fsync_fire = failpoint("fs.fsync");
  EXPECT_EQ(fsync_fire.action, FailAction::kError);
  EXPECT_EQ(fsync_fire.error_code, 28);
}

TEST_F(FailpointTest, ConfigureRejectsMalformedSpecs) {
  auto& fp = Failpoints::instance();
  EXPECT_THROW((void)fp.configure("=throw"), std::invalid_argument);
  EXPECT_THROW((void)fp.configure("site"), std::invalid_argument);
  EXPECT_THROW((void)fp.configure("site=explode"), std::invalid_argument);
  EXPECT_THROW((void)fp.configure("site=throw;p:1.5"), std::invalid_argument);
  EXPECT_THROW((void)fp.configure("site=throw;every:x"),
               std::invalid_argument);
  EXPECT_THROW((void)fp.configure("site=throw;bogus:1"),
               std::invalid_argument);
  EXPECT_FALSE(Failpoints::active()) << "failed configure must not arm sites";
}

TEST_F(FailpointTest, StatsEnumerateArmedSites) {
  Failpoints::instance().set("test.s1", throw_policy());
  FailpointPolicy off;
  off.action = FailAction::kError;
  Failpoints::instance().set("test.s2", off);
  EXPECT_THROW((void)failpoint("test.s1"), FailpointError);
  (void)failpoint("test.s2");
  const auto stats = Failpoints::instance().stats();
  ASSERT_EQ(stats.size(), 2u);
  for (const auto& s : stats) {
    EXPECT_EQ(s.evaluations, 1u) << s.site;
    EXPECT_EQ(s.fires, 1u) << s.site;
  }
}

TEST_F(FailpointTest, ConcurrentEvaluationIsThreadSafe) {
  FailpointPolicy p;
  p.action = FailAction::kError;
  p.every = 2;
  Failpoints::instance().set("test.mt", p);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::atomic<std::uint64_t> fired{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (failpoint("test.mt").fired()) {
          fired.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(Failpoints::instance().evaluations("test.mt"),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(fired.load(), static_cast<std::uint64_t>(kThreads * kPerThread / 2));
}

// --- fs shim integration ----------------------------------------------------

class FailpointFsTest : public FailpointTest {
 protected:
  void SetUp() override {
    FailpointTest::SetUp();
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("apks-failpoint-") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fs::remove_all(dir_);
    FailpointTest::TearDown();
  }

  fs::path dir_;
};

TEST_F(FailpointFsTest, InjectedWriteErrorSetsErrno) {
  FailpointPolicy p;
  p.action = FailAction::kError;
  p.error_code = ENOSPC;
  Failpoints::instance().set(storefs::kSiteWrite, p);
  std::FILE* f = storefs::open(dir_ / "f", "wb");
  ASSERT_NE(f, nullptr);
  const char data[4] = {'a', 'b', 'c', 'd'};
  errno = 0;
  EXPECT_FALSE(storefs::write(f, data, sizeof(data)));
  EXPECT_EQ(errno, ENOSPC);
  Failpoints::instance().clear_all();
  EXPECT_TRUE(storefs::write(f, data, sizeof(data)));
  EXPECT_TRUE(storefs::close(f));
}

TEST_F(FailpointFsTest, ShortWriteLeavesTornPrefixOnDisk) {
  const fs::path file = dir_ / "torn";
  std::FILE* f = storefs::open(file, "wb");
  ASSERT_NE(f, nullptr);
  FailpointPolicy p;
  p.action = FailAction::kShortWrite;
  p.short_bytes = 3;
  Failpoints::instance().set(storefs::kSiteWrite, p);
  const char data[8] = {'0', '1', '2', '3', '4', '5', '6', '7'};
  EXPECT_FALSE(storefs::write(f, data, sizeof(data)));
  Failpoints::instance().clear_all();
  EXPECT_TRUE(storefs::close(f));
  // Exactly the injected prefix reached the file — the torn-frame state a
  // crashed writer leaves.
  std::ifstream in(file, std::ios::binary);
  const std::string got((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  EXPECT_EQ(got, "012");
}

TEST_F(FailpointFsTest, SegmentWriterSurfacesInjectedFaultsAsStoreErrors) {
  const fs::path seg = dir_ / "seg.apks";
  SegmentWriter w(seg, /*shard_id=*/1, /*seq=*/1);
  const std::vector<std::uint8_t> payload(32, 0xAB);

  FailpointPolicy p;
  p.action = FailAction::kError;
  p.error_code = EIO;
  Failpoints::instance().set(storefs::kSiteWrite, p);
  try {
    w.append(payload);
    FAIL() << "append with injected EIO did not throw";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
    EXPECT_EQ(e.path(), seg.string());
  }
  Failpoints::instance().clear_all();

  Failpoints::instance().set(storefs::kSiteFsync, p);
  w.append(payload);
  EXPECT_THROW(w.sync(), StoreError);
  Failpoints::instance().clear_all();
  EXPECT_NO_THROW(w.sync());
  w.close();

  // The surviving file holds exactly the frames whose writes succeeded.
  const SegmentScanResult scan = scan_segment(seg);
  EXPECT_EQ(scan.records, 1u);
  EXPECT_FALSE(scan.torn_tail());
}

}  // namespace
}  // namespace apks
