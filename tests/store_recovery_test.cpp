// Crash-recovery tests for the storage engine (run under ASan in CI's
// store stage): a writer killed mid-append leaves a torn tail that reopen
// must truncate, recovering every fully-committed record — and a
// CloudServer restarted from the recovered store must return byte-identical
// search results (same doc_refs, same order, same SearchStats) to the
// in-memory server that never crashed.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>

#include "cloud/proxy.h"
#include "cloud/search_engine.h"
#include "cloud/server.h"
#include "core/apks_backend.h"
#include "data/nursery.h"
#include "data/workload.h"
#include "store/sharded_store.h"

namespace apks {
namespace {

namespace fs = std::filesystem;

// The active (largest-seq) segment file of a shard directory.
fs::path active_segment(const fs::path& shard_dir) {
  fs::path best;
  for (const auto& entry : fs::directory_iterator(shard_dir)) {
    if (entry.path().extension() != ".apks") continue;
    if (best.empty() || entry.path().filename() > best.filename()) {
      best = entry.path();
    }
  }
  return best;
}

void append_bytes(const fs::path& file,
                  std::span<const std::uint8_t> bytes) {
  std::FILE* f = std::fopen(file.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

class StoreRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("apks-recovery-") + info->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

// The acceptance scenario: a Nursery-workload server with write-through
// persistence crashes mid-append; the reopened store recovers all
// committed records and a server restarted from it is indistinguishable.
TEST_F(StoreRecoveryTest, TornWriteRecoveryMatchesPreCrashServer) {
  const Pairing e(default_type_a_params());
  const Apks scheme(e, nursery_schema(1));
  ChaChaRng rng("store-recovery");
  TrustedAuthority ta(scheme, rng);
  auto make_verifier = [&] {
    CapabilityVerifier v(e, ta.ibs_params());
    v.register_authority("TA");
    return v;
  };

  // Nursery workload: a spread of dataset rows, searched with signed
  // capabilities for point and worst-case queries.
  const std::vector<PlainIndex> rows = nursery_rows();
  constexpr std::size_t kRecords = 24;
  ShardedStoreOptions opts;
  opts.shards = 3;
  opts.segment.segment_max_bytes = 16 << 10;  // a few segments per shard

  CloudServer pre_crash(scheme, make_verifier());
  ShardedStore store(e, dir_, opts);
  pre_crash.attach_store(&store);
  std::vector<const PlainIndex*> stored;
  for (std::size_t i = 0; i < kRecords; ++i) {
    const PlainIndex& row = rows[(i * 541) % rows.size()];
    stored.push_back(&row);
    (void)pre_crash.store(scheme.gen_index(ta.public_key(), row, rng),
                          "row-" + std::to_string(i));
  }
  store.sync();  // all 24 records are fully committed

  std::vector<SignedCapability> caps;
  caps.push_back(ta.issue(nursery_point_query(*stored[3]), rng));
  caps.push_back(ta.issue(nursery_point_query(*stored[17]), rng));
  caps.push_back(ta.issue(nursery_worst_case_query(1, rng), rng));
  std::vector<std::vector<std::string>> pre_results;
  std::vector<CloudServer::SearchStats> pre_stats(caps.size());
  for (std::size_t i = 0; i < caps.size(); ++i) {
    pre_results.push_back(pre_crash.search(caps[i], &pre_stats[i]));
  }
  ASSERT_FALSE(pre_results[0].empty());  // point query hits its row

  // Crash mid-append of record 25: every shard's active segment gains a
  // torn tail — a partial frame, a bare frame header, stray garbage.
  pre_crash.attach_store(nullptr);
  const std::uint8_t partial_frame[9] = {200, 0, 0, 0,  // len = 200
                                         1,   2, 3, 4,  // bogus crc
                                         99};           // 1 of 200 bytes
  const std::uint8_t header_only[6] = {16, 0, 0, 0, 7, 7};
  const std::uint8_t garbage[3] = {0xDE, 0xAD, 0xBF};
  append_bytes(active_segment(dir_ / "shard-000"), partial_frame);
  append_bytes(active_segment(dir_ / "shard-001"), header_only);
  append_bytes(active_segment(dir_ / "shard-002"), garbage);

  // Reopen: recovery truncates all three tails and keeps all 24 records.
  ShardedStore recovered(e, dir_, opts);
  const RecoveryStats rec = recovered.recovery();
  EXPECT_TRUE(rec.torn_tail);
  EXPECT_EQ(rec.torn_bytes,
            sizeof(partial_frame) + sizeof(header_only) + sizeof(garbage));
  EXPECT_EQ(recovered.record_count(), kRecords);

  // A restarted server over the recovered store is byte-identical.
  CloudServer restarted(scheme, make_verifier());
  EXPECT_EQ(restarted.load_from(recovered), kRecords);
  for (std::size_t i = 0; i < caps.size(); ++i) {
    CloudServer::SearchStats stats;
    EXPECT_EQ(restarted.search(caps[i], &stats), pre_results[i]) << i;
    EXPECT_EQ(stats.authorized, pre_stats[i].authorized);
    EXPECT_EQ(stats.scanned, pre_stats[i].scanned);
    EXPECT_EQ(stats.matched, pre_stats[i].matched);
  }

  // The shard-parallel disk scan agrees with the in-memory servers too.
  StoreScanStats disk_stats;
  EXPECT_EQ(recovered.search(scheme, caps[0].cap, 3, &disk_stats),
            pre_results[0]);
  EXPECT_EQ(disk_stats.scanned, kRecords);

  // And the next upload starts where the pre-crash sequence left off.
  EXPECT_EQ(recovered.next_id(), kRecords + 1);
}

// The same acceptance scenario for APKS+ served through the backend
// interface: owner-partial indexes traverse the proxy chain at ingest, the
// *transformed* ciphertexts are persisted (the proxy transformation is
// randomized, so byte-identical restart results prove the store holds the
// transformed bytes, not re-derived ones), a crash leaves torn tails, and
// the recovered store serves byte-identical results and SearchStats.
TEST_F(StoreRecoveryTest, ApksPlusRestartServesIdenticalResults) {
  const Pairing e(default_type_a_params());
  const ApksPlus plus(e, nursery_schema(1));
  ChaChaRng rng("plus-recovery");
  const ApksPlusSetupResult setup = plus.setup_plus(rng);
  TrustedAuthority ta(plus, setup.pk, setup.msk, rng);
  auto make_verifier = [&] {
    CapabilityVerifier v(e, ta.ibs_params());
    v.register_authority("TA");
    return v;
  };

  ApksPlusBackend backend(plus);
  ProxyPipeline pipeline = make_proxy_pipeline(plus, setup.r, 2, rng);
  attach_ingest_pipeline(backend, pipeline);
  backend.set_ingest_canary(
      plus.gen_cap(setup.msk, make_canary_query(plus.schema()), rng));

  const std::vector<PlainIndex> rows = nursery_rows();
  constexpr std::size_t kRecords = 12;
  ShardedStoreOptions opts;
  opts.shards = 2;
  opts.segment.segment_max_bytes = 16 << 10;

  CloudServer pre_crash(backend, make_verifier());
  ShardedStore store(backend, dir_, opts);
  pre_crash.attach_store(&store);
  for (std::size_t i = 0; i < kRecords; ++i) {
    const PlainIndex& row = rows[(i * 433) % rows.size()];
    (void)pre_crash.store(plus.partial_gen_index(setup.pk, row, rng),
                          "row-" + std::to_string(i));
  }
  store.sync();
  ASSERT_EQ(pipeline.size(), 2u);

  std::vector<SignedCapability> caps;
  caps.push_back(ta.issue(nursery_point_query(rows[433 % rows.size()]), rng));
  caps.push_back(
      ta.issue(nursery_point_query(rows[(7 * 433) % rows.size()]), rng));
  caps.push_back(ta.issue(nursery_worst_case_query(1, rng), rng));
  std::vector<std::vector<std::string>> pre_results;
  std::vector<CloudServer::SearchStats> pre_stats(caps.size());
  for (std::size_t i = 0; i < caps.size(); ++i) {
    pre_results.push_back(pre_crash.search(caps[i], &pre_stats[i]));
  }
  ASSERT_FALSE(pre_results[0].empty());  // the transformed index matches

  // Crash mid-append: torn tails on both shards.
  pre_crash.attach_store(nullptr);
  const std::uint8_t partial_frame[7] = {64, 0, 0, 0, 9, 9, 9};
  const std::uint8_t garbage[2] = {0xBA, 0xD1};
  append_bytes(active_segment(dir_ / "shard-000"), partial_frame);
  append_bytes(active_segment(dir_ / "shard-001"), garbage);

  // Reopen under the same backend: the scheme tag matches, recovery
  // truncates the tails, and the persisted-transformed records serve
  // byte-identical results without re-running the proxy chain.
  ShardedStore recovered(backend, dir_, opts);
  EXPECT_EQ(recovered.scheme(), SchemeKind::kApksPlus);
  EXPECT_TRUE(recovered.recovery().torn_tail);
  EXPECT_EQ(recovered.record_count(), kRecords);

  CloudServer restarted(backend, make_verifier());
  EXPECT_EQ(restarted.load_from(recovered), kRecords);
  for (std::size_t i = 0; i < caps.size(); ++i) {
    CloudServer::SearchStats stats;
    EXPECT_EQ(restarted.search(caps[i], &stats), pre_results[i]) << i;
    EXPECT_EQ(stats.authorized, pre_stats[i].authorized);
    EXPECT_EQ(stats.scanned, pre_stats[i].scanned);
    EXPECT_EQ(stats.matched, pre_stats[i].matched);
  }

  // The shard-level parallel scan through the backend agrees too.
  StoreScanStats disk_stats;
  EXPECT_EQ(recovered.search_any(
                AnyQuery::ref(SchemeKind::kApksPlus, &caps[0].cap), 2,
                &disk_stats),
            pre_results[0]);
  EXPECT_EQ(disk_stats.scanned, kRecords);
}

// Verdict-cache equivalence across the events that change segment
// identities: a crash-reopen (identities survive — the cache keeps
// serving) and a compaction (identities are retired — the cache must not
// serve stale verdicts). One shared VerdictCache lives through all of it;
// at every step a cached engine must return byte-identical results to an
// uncached engine over the same server.
TEST_F(StoreRecoveryTest, VerdictCacheEquivalentAcrossCrashAndCompaction) {
  const Pairing e(default_type_a_params());
  const Apks scheme(e, nursery_schema(1));
  ChaChaRng rng("verdict-recovery");
  TrustedAuthority ta(scheme, rng);

  const std::vector<PlainIndex> rows = nursery_rows();
  constexpr std::size_t kRecords = 12;
  ShardedStoreOptions opts;
  opts.shards = 2;
  opts.segment.segment_max_bytes = 1;  // seal after every append

  {
    ShardedStore store(e, dir_, opts);
    for (std::size_t i = 0; i < kRecords; ++i) {
      const PlainIndex& row = rows[(i * 541) % rows.size()];
      (void)store.append("row-" + std::to_string(i),
                         scheme.gen_index(ta.public_key(), row, rng));
    }
    store.sync();
  }

  const std::vector<Capability> caps = {
      ta.issue(nursery_point_query(rows[541 % rows.size()]), rng).cap,
      ta.issue(nursery_worst_case_query(1, rng), rng).cap,
  };

  const auto vcache = std::make_shared<VerdictCache>(1u << 20);
  SearchEngine::Options copts;
  copts.verdict_cache = vcache;

  auto check_equivalent = [&](CloudServer& server, const char* what) {
    const SearchEngine cached(server, copts);
    const SearchEngine plain(server);
    const auto want = plain.search_batch_unchecked(caps);
    const auto got = cached.search_batch_unchecked(caps);
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << what << " query " << i;
    }
  };

  // Populate: first cached batch memoizes every sealed segment's verdict.
  {
    ShardedStore store(e, dir_, opts);
    CloudServer server(scheme, CapabilityVerifier(e, ta.ibs_params()));
    ASSERT_EQ(server.load_from(store), kRecords);
    ASSERT_FALSE(server.segment_table().empty());
    check_equivalent(server, "initial");
    EXPECT_GT(vcache->stats().insertions, 0u);
  }

  // Crash: torn tails on both shards, no shutdown ceremony. Sealed
  // identities are durable, so the SAME cache keeps serving the reopened
  // store — and must still match an uncached engine exactly.
  const std::uint8_t garbage[5] = {0xBA, 0xD0, 0xCA, 0xFE, 0x01};
  append_bytes(active_segment(dir_ / "shard-000"), garbage);
  append_bytes(active_segment(dir_ / "shard-001"), garbage);
  {
    ShardedStore recovered(e, dir_, opts);
    EXPECT_TRUE(recovered.recovery().torn_tail);
    ASSERT_EQ(recovered.record_count(), kRecords);
    CloudServer server(scheme, CapabilityVerifier(e, ta.ibs_params()));
    ASSERT_EQ(server.load_from(recovered), kRecords);
    const std::uint64_t hits_before = vcache->stats().hits;
    check_equivalent(server, "after crash-reopen");
    EXPECT_GT(vcache->stats().hits, hits_before);  // the cache did the work

    // Compaction retires every segment identity; the invalidation hook
    // drops the now-unreachable verdicts, and post-compaction identities
    // (fresh epochs) must re-memoize — never alias the retired ones.
    recovered.set_invalidation_hook(
        [&](std::span<const SegmentId> retired) {
          vcache->invalidate(retired);
        });
    (void)recovered.compact();
    EXPECT_GT(vcache->stats().invalidated, 0u);
    ASSERT_EQ(server.load_from(recovered), kRecords);
    check_equivalent(server, "after compaction");
  }
}

// Byte-level truncation sweep (payload-agnostic, no crypto): for a cut at
// any byte position, reopen recovers exactly the frames that were fully on
// disk — never a partial one, never fewer than the complete prefix.
TEST_F(StoreRecoveryTest, TruncationSweepRecoversCommittedPrefix) {
  constexpr std::size_t kRecords = 10;
  std::vector<std::vector<std::uint8_t>> payloads;
  std::vector<std::uint64_t> frame_end;  // file offset after frame i
  const fs::path writer_dir = dir_ / "writer";
  {
    IndexStore store(writer_dir, 0, {});
    for (std::size_t i = 0; i < kRecords; ++i) {
      std::vector<std::uint8_t> payload(5 + i * 3);
      for (std::size_t j = 0; j < payload.size(); ++j) {
        payload[j] = static_cast<std::uint8_t>(i * 31 + j);
      }
      store.put(payload);
      payloads.push_back(std::move(payload));
      frame_end.push_back(store.bytes());
    }
    store.sync();
  }
  const fs::path seg = active_segment(writer_dir);
  const std::uint64_t file_size = fs::file_size(seg);
  ASSERT_EQ(file_size, frame_end.back());

  // Sweep cuts: every frame boundary, plus positions inside each frame.
  std::vector<std::uint64_t> cuts;
  for (const std::uint64_t end : frame_end) {
    cuts.push_back(end);
    cuts.push_back(end - 1);           // mid-frame (chops CRC/payload)
    cuts.push_back(end - kFrameHeaderSize / 2);
  }
  for (const std::uint64_t cut : cuts) {
    if (cut < kSegmentHeaderSize) continue;
    const fs::path trial = dir_ / ("trial-" + std::to_string(cut));
    fs::copy(writer_dir, trial, fs::copy_options::recursive);
    fs::resize_file(active_segment(trial), cut);

    IndexStore reopened(trial, 0, {});
    std::size_t expected = 0;
    while (expected < kRecords && frame_end[expected] <= cut) ++expected;
    EXPECT_EQ(reopened.record_count(), expected) << "cut at " << cut;
    const std::uint64_t committed_end =
        expected == 0 ? kSegmentHeaderSize : frame_end[expected - 1];
    EXPECT_EQ(reopened.recovery().torn_tail, cut != committed_end)
        << "cut at " << cut;

    // The recovered prefix is byte-identical to what was written...
    std::vector<std::vector<std::uint8_t>> replayed;
    reopened.for_each([&](std::span<const std::uint8_t> p) {
      replayed.emplace_back(p.begin(), p.end());
    });
    ASSERT_EQ(replayed.size(), expected);
    for (std::size_t i = 0; i < expected; ++i) {
      EXPECT_EQ(replayed[i], payloads[i]);
    }
    // ...and the store accepts new appends after recovery.
    reopened.put(payloads[0]);
    reopened.sync();
    EXPECT_EQ(reopened.record_count(), expected + 1);
    fs::remove_all(trial);
  }
}

// A torn tail must also be recoverable repeatedly: crash, recover, crash
// again — each recovery preserves everything committed before it.
TEST_F(StoreRecoveryTest, RepeatedCrashesNeverLoseCommittedRecords) {
  const std::vector<std::uint8_t> garbage = {1, 2, 3};
  std::size_t committed = 0;
  for (int round = 0; round < 4; ++round) {
    {
      IndexStore store(dir_, 0, {});
      EXPECT_EQ(store.record_count(), committed);
      const std::string payload = "round-" + std::to_string(round);
      store.put(std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(payload.data()),
          payload.size()));
      store.sync();
      ++committed;
    }
    append_bytes(active_segment(dir_), garbage);  // crash mid-append
  }
  IndexStore store(dir_, 0, {});
  EXPECT_EQ(store.record_count(), committed);
  EXPECT_TRUE(store.recovery().torn_tail);
}

}  // namespace
}  // namespace apks
