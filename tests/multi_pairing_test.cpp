// Multi-pairing and SIMD lane-engine tests.
//
// Two contracts are checked here:
//   1. Algebra: multi_miller (+ one final_exp) equals the product of
//      individual pairings, for raw and preprocessed inputs, including the
//      degenerate cases (N = 0/1, infinity on either side).
//   2. Bit-identity: every lane engine produces canonical residues equal —
//      limb for limb — to the scalar reference at every operation, so the
//      BlockMultiPairing scan kernel returns byte-identical GT values no
//      matter which engine serves it. SIMD engines are exercised only when
//      the running CPU supports them (simd_level_detected()).
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "math/fp_lanes.h"
#include "pairing/pairing.h"
#include "pairing/pairing_block.h"

namespace apks {
namespace {

class MultiPairingTest : public ::testing::Test {
 protected:
  MultiPairingTest() : e_(default_type_a_params()), rng_("multi-pairing") {}

  std::vector<MillerPair> random_pairs(std::size_t n) {
    std::vector<MillerPair> ps(n);
    for (auto& pr : ps) {
      pr.p = e_.curve().random_point(rng_);
      pr.q = e_.curve().random_point(rng_);
    }
    return ps;
  }

  GtEl product_of_pairs(std::span<const MillerPair> ps) {
    GtEl acc = e_.fp2().one();
    for (const MillerPair& pr : ps) {
      acc = e_.gt_mul(acc, e_.pair(pr.p, pr.q));
    }
    return acc;
  }

  Pairing e_;
  ChaChaRng rng_;
};

TEST_F(MultiPairingTest, EqualsProductOfPairings) {
  for (const std::size_t n : {2u, 5u, 13u}) {
    const auto ps = random_pairs(n);
    const GtEl multi = e_.final_exp(e_.multi_miller(ps));
    EXPECT_EQ(multi, product_of_pairs(ps));
  }
}

TEST_F(MultiPairingTest, EmptyProductIsOne) {
  EXPECT_TRUE(
      e_.gt_is_one(e_.final_exp(e_.multi_miller(std::span<const MillerPair>{}))));
}

TEST_F(MultiPairingTest, SingletonEqualsPair) {
  const auto ps = random_pairs(1);
  EXPECT_EQ(e_.final_exp(e_.multi_miller(ps)), e_.pair(ps[0].p, ps[0].q));
}

TEST_F(MultiPairingTest, InfinitySlotsContributeOne) {
  auto ps = random_pairs(4);
  ps[1].p = AffinePoint::infinity();
  ps[3].q = AffinePoint::infinity();
  EXPECT_EQ(e_.final_exp(e_.multi_miller(ps)), product_of_pairs(ps));
  // All slots degenerate -> 1.
  for (auto& pr : ps) pr.q = AffinePoint::infinity();
  EXPECT_TRUE(e_.gt_is_one(e_.final_exp(e_.multi_miller(ps))));
}

TEST_F(MultiPairingTest, PreprocessedEqualsPairWithProduct) {
  const std::size_t n = 6;
  std::vector<PreprocessedPairing> pres;
  std::vector<AffinePoint> qs(n);
  pres.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    pres.push_back(e_.preprocess(e_.curve().random_point(rng_)));
    qs[s] = e_.curve().random_point(rng_);
  }
  qs[2] = AffinePoint::infinity();  // degenerate record slot
  GtEl expect = e_.fp2().one();
  for (std::size_t s = 0; s < n; ++s) {
    expect = e_.gt_mul(expect, pres[s].pair_with(qs[s]));
  }
  EXPECT_EQ(e_.final_exp(e_.multi_miller_pre(pres, qs)), expect);
}

TEST_F(MultiPairingTest, PreprocessedInfinitySlotIsInert) {
  std::vector<PreprocessedPairing> pres;
  pres.push_back(e_.preprocess(e_.curve().random_point(rng_)));
  pres.push_back(e_.preprocess(AffinePoint::infinity()));
  const std::array<AffinePoint, 2> qs = {e_.curve().random_point(rng_),
                                         e_.curve().random_point(rng_)};
  EXPECT_EQ(e_.final_exp(e_.multi_miller_pre(pres, qs)),
            pres[0].pair_with(qs[0]));
}

TEST_F(MultiPairingTest, CountsMillerPerSlotAndOneMultiMiller) {
  const auto c0 = e_.op_counts();
  const auto ps = random_pairs(5);
  (void)e_.final_exp(e_.multi_miller(ps));
  const auto d = e_.op_counts() - c0;
  EXPECT_EQ(d.miller, 5u);
  EXPECT_EQ(d.multi_miller, 1u);
  EXPECT_EQ(d.final_exp, 1u);
}

// --- BlockMultiPairing: the lane-parallel scan kernel --------------------

class PairingBlockTest : public MultiPairingTest {
 protected:
  // dim preprocessed P-slots plus `records` random Q-vectors, evaluated
  // (a) record-at-a-time through the scalar path and (b) through a kernel.
  struct Fixture {
    std::vector<PreprocessedPairing> pres;
    std::vector<std::vector<AffinePoint>> qrows;
    std::vector<const AffinePoint*> qvecs;
  };

  Fixture make_fixture(std::size_t dim, std::size_t records) {
    Fixture f;
    f.pres.reserve(dim);
    for (std::size_t s = 0; s < dim; ++s) {
      f.pres.push_back(e_.preprocess(e_.curve().random_point(rng_)));
    }
    f.qrows.resize(records);
    for (auto& row : f.qrows) {
      row.resize(dim);
      for (auto& q : row) q = e_.curve().random_point(rng_);
    }
    for (const auto& row : f.qrows) f.qvecs.push_back(row.data());
    return f;
  }

  std::vector<GtEl> scalar_reference(const Fixture& f) {
    std::vector<GtEl> out(f.qvecs.size());
    for (std::size_t r = 0; r < f.qvecs.size(); ++r) {
      out[r] = e_.final_exp(e_.multi_miller_pre(
          f.pres, std::span<const AffinePoint>(f.qvecs[r], f.pres.size())));
    }
    return out;
  }
};

TEST_F(PairingBlockTest, KernelMatchesScalarReference) {
  auto f = make_fixture(/*dim=*/5, /*records=*/11);
  const auto expect = scalar_reference(f);
  auto pres_copy = f.pres;  // kernel takes ownership
  const BlockMultiPairing kernel(e_, std::move(pres_copy));
  std::vector<GtEl> out(f.qvecs.size());
  kernel.run(f.qvecs.data(), f.qvecs.size(), out.data());
  for (std::size_t r = 0; r < out.size(); ++r) {
    EXPECT_EQ(out[r], expect[r]) << "record " << r << " via "
                                 << kernel.engine_name();
  }
}

TEST_F(PairingBlockTest, ScalarAndSimdKernelsBitIdentical) {
  auto f = make_fixture(/*dim=*/4, /*records=*/9);
  auto pres_a = f.pres;
  const BlockMultiPairing scalar_kernel(e_, std::move(pres_a),
                                        SimdLevel::kScalar);
  std::vector<GtEl> base(f.qvecs.size());
  scalar_kernel.run(f.qvecs.data(), f.qvecs.size(), base.data());
  for (const SimdLevel lvl : {SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (simd_level_detected() < lvl) continue;
    auto pres_b = f.pres;
    const BlockMultiPairing kernel(e_, std::move(pres_b), lvl);
    if (kernel.engine_level() != lvl) continue;  // built without ISA support
    std::vector<GtEl> out(f.qvecs.size());
    kernel.run(f.qvecs.data(), f.qvecs.size(), out.data());
    for (std::size_t r = 0; r < out.size(); ++r) {
      EXPECT_EQ(out[r], base[r]) << "record " << r << " via "
                                 << kernel.engine_name();
    }
  }
}

TEST_F(PairingBlockTest, InfinityRecordsFallBackCorrectly) {
  auto f = make_fixture(/*dim=*/3, /*records=*/6);
  f.qrows[1][2] = AffinePoint::infinity();  // poisons record 1's chunk
  f.qrows[4][0] = AffinePoint::infinity();
  const auto expect = scalar_reference(f);
  auto pres_copy = f.pres;
  const BlockMultiPairing kernel(e_, std::move(pres_copy));
  std::vector<GtEl> out(f.qvecs.size());
  kernel.run(f.qvecs.data(), f.qvecs.size(), out.data());
  for (std::size_t r = 0; r < out.size(); ++r) {
    EXPECT_EQ(out[r], expect[r]) << "record " << r;
  }
}

TEST_F(PairingBlockTest, InfinityPSlotIsInert) {
  auto f = make_fixture(/*dim=*/3, /*records=*/5);
  f.pres[1] = e_.preprocess(AffinePoint::infinity());
  const auto expect = scalar_reference(f);
  auto pres_copy = f.pres;
  const BlockMultiPairing kernel(e_, std::move(pres_copy));
  std::vector<GtEl> out(f.qvecs.size());
  kernel.run(f.qvecs.data(), f.qvecs.size(), out.data());
  for (std::size_t r = 0; r < out.size(); ++r) {
    EXPECT_EQ(out[r], expect[r]) << "record " << r;
  }
}

TEST_F(PairingBlockTest, CountsAreEngineInvariant) {
  auto f = make_fixture(/*dim=*/4, /*records=*/10);
  auto pres_a = f.pres;
  const BlockMultiPairing scalar_kernel(e_, std::move(pres_a),
                                        SimdLevel::kScalar);
  auto c0 = e_.op_counts();
  std::vector<GtEl> out(f.qvecs.size());
  scalar_kernel.run(f.qvecs.data(), f.qvecs.size(), out.data());
  const auto scalar_d = e_.op_counts() - c0;
  EXPECT_EQ(scalar_d.miller, f.qvecs.size() * f.pres.size());
  EXPECT_EQ(scalar_d.multi_miller, f.qvecs.size());
  EXPECT_EQ(scalar_d.final_exp, f.qvecs.size());

  auto pres_b = f.pres;
  const BlockMultiPairing kernel(e_, std::move(pres_b));
  c0 = e_.op_counts();
  kernel.run(f.qvecs.data(), f.qvecs.size(), out.data());
  const auto simd_d = e_.op_counts() - c0;
  EXPECT_EQ(simd_d, scalar_d) << "via " << kernel.engine_name();
}

// --- FpLaneEngine: cross-engine bit-identity -----------------------------

class FpLanesTest : public ::testing::Test {
 protected:
  FpLanesTest()
      : field_(default_type_a_params().p), rng_("fp-lanes-test") {}

  std::vector<LaneFp> random_values(std::size_t n) {
    std::vector<LaneFp> v(n);
    for (auto& x : v) x = field_.random(rng_);
    return v;
  }

  LaneField field_;
  ChaChaRng rng_;
};

TEST_F(FpLanesTest, ScalarEngineMatchesFieldOps) {
  const auto eng = make_fp_lane_engine(field_, SimdLevel::kScalar);
  ASSERT_EQ(eng->level(), SimdLevel::kScalar);
  const std::size_t w = eng->width();
  const auto a = random_values(w);
  const auto b = random_values(w);
  FpLaneVec va, vb, vr;
  eng->load(va, a.data(), w);
  eng->load(vb, b.data(), w);
  std::vector<LaneFp> r(w);
  eng->mul(vr, va, vb);
  eng->store(r.data(), vr, w);
  for (std::size_t l = 0; l < w; ++l) EXPECT_EQ(r[l], field_.mul(a[l], b[l]));
  eng->add(vr, va, vb);
  eng->store(r.data(), vr, w);
  for (std::size_t l = 0; l < w; ++l) EXPECT_EQ(r[l], field_.add(a[l], b[l]));
  eng->sub(vr, va, vb);
  eng->store(r.data(), vr, w);
  for (std::size_t l = 0; l < w; ++l) EXPECT_EQ(r[l], field_.sub(a[l], b[l]));
}

TEST_F(FpLanesTest, SimdEnginesBitIdenticalToScalar) {
  for (const SimdLevel lvl : {SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (simd_level_detected() < lvl) continue;
    const auto eng = make_fp_lane_engine(field_, lvl);
    if (eng->level() != lvl) continue;  // built without ISA support
    const std::size_t w = eng->width();
    // Edge values in the first lanes, random fill behind them.
    for (int round = 0; round < 25; ++round) {
      auto a = random_values(w);
      auto b = random_values(w);
      if (round == 0 && w >= 3) {
        a[0] = field_.zero();
        b[0] = field_.zero();
        a[1] = field_.one();
        b[2] = field_.neg(field_.one());  // p - R mod p: near-modulus limbs
      }
      FpLaneVec va, vb, vr;
      eng->load(va, a.data(), w);
      eng->load(vb, b.data(), w);
      std::vector<LaneFp> r(w);
      eng->mul(vr, va, vb);
      eng->store(r.data(), vr, w);
      for (std::size_t l = 0; l < w; ++l) {
        EXPECT_EQ(r[l], field_.mul(a[l], b[l])) << eng->name() << " mul";
      }
      eng->add(vr, va, vb);
      eng->store(r.data(), vr, w);
      for (std::size_t l = 0; l < w; ++l) {
        EXPECT_EQ(r[l], field_.add(a[l], b[l])) << eng->name() << " add";
      }
      eng->sub(vr, va, vb);
      eng->store(r.data(), vr, w);
      for (std::size_t l = 0; l < w; ++l) {
        EXPECT_EQ(r[l], field_.sub(a[l], b[l])) << eng->name() << " sub";
      }
    }
  }
}

TEST_F(FpLanesTest, BroadcastMatchesLoad) {
  for (const SimdLevel lvl :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (simd_level_detected() < lvl) continue;
    const auto eng = make_fp_lane_engine(field_, lvl);
    if (eng->level() != lvl) continue;
    const std::size_t w = eng->width();
    const LaneFp v = field_.random(rng_);
    FpLaneScalar s;
    eng->to_scalar(s, v);
    FpLaneVec vb;
    eng->broadcast(vb, s);
    // A broadcast lane must store back the exact canonical value, and
    // multiply like a loaded lane.
    std::vector<LaneFp> r(w);
    eng->store(r.data(), vb, w);
    for (std::size_t l = 0; l < w; ++l) EXPECT_EQ(r[l], v) << eng->name();
    const auto m = random_values(w);
    FpLaneVec vm, vr;
    eng->load(vm, m.data(), w);
    eng->mul(vr, vb, vm);
    eng->store(r.data(), vr, w);
    for (std::size_t l = 0; l < w; ++l) {
      EXPECT_EQ(r[l], field_.mul(v, m[l])) << eng->name();
    }
  }
}

TEST_F(FpLanesTest, PartialLoadLeavesTailZero) {
  const auto eng = make_fp_lane_engine(field_);
  const std::size_t w = eng->width();
  if (w < 2) GTEST_SKIP();
  const auto a = random_values(w - 1);
  FpLaneVec va;
  eng->load(va, a.data(), w - 1);
  std::vector<LaneFp> r(w);
  eng->store(r.data(), va, w);
  for (std::size_t l = 0; l + 1 < w; ++l) EXPECT_EQ(r[l], a[l]);
  EXPECT_TRUE(r[w - 1].is_zero());
}

}  // namespace
}  // namespace apks
