// Whole-system integration test: APKS+ deployment with a TA, two hospital
// LTAs (one with a sub-LTA), a two-proxy pipeline, an IBS-verifying cloud
// server, query policies and time-based revocation — every module working
// together, mirroring the paper's Figs. 1, 2 and 6 at once.
#include <gtest/gtest.h>

#include "cloud/proxy.h"
#include "cloud/server.h"
#include "core/time_attr.h"
#include "data/phr.h"

namespace apks {
namespace {

class SystemIntegrationTest : public ::testing::Test {
 protected:
  SystemIntegrationTest()
      : e_(default_type_a_params()),
        scheme_(e_, phr_schema({.max_or = 2, .with_time = true})),
        rng_("integration") {}

  Query q6() const {
    Query q;
    q.terms.assign(scheme_.schema().original_dims(), QueryTerm::any());
    return q;
  }

  Pairing e_;
  ApksPlus scheme_;
  ChaChaRng rng_;
};

TEST_F(SystemIntegrationTest, FullApksPlusDeployment) {
  // --- TA bootstraps APKS+ and hands the blinded master key to the
  // authorization hierarchy; r is split across two proxies. ---------------
  const auto setup = scheme_.setup_plus(rng_);
  TrustedAuthority ta(scheme_, setup.pk, setup.msk, rng_);
  auto pipeline = make_proxy_pipeline(scheme_, setup.r, 2, rng_);

  // Hospital A's LTA with a statistical-attack policy; ward sub-LTA.
  Query scope_a = q6();
  scope_a.terms[4] = QueryTerm::equals("Hospital A");
  auto hospital_a = ta.make_lta("hospital-A", scope_a, rng_);
  QueryPolicy policy;
  policy.min_active_dims = 2;
  hospital_a->set_policy(policy);

  Query ward_scope = q6();
  ward_scope.terms[1] = QueryTerm::equals("Male");
  auto ward = hospital_a->make_sub_lta("hospital-A/ward", ward_scope, rng_);

  // Hospital B's LTA (no policy).
  Query scope_b = q6();
  scope_b.terms[4] = QueryTerm::equals("Hospital B");
  auto hospital_b = ta.make_lta("hospital-B", scope_b, rng_);

  // --- Cloud server trusts only the two hospitals' LTAs. -----------------
  CapabilityVerifier verifier(e_, ta.ibs_params());
  verifier.register_authority("hospital-A");
  verifier.register_authority("hospital-A/ward");
  verifier.register_authority("hospital-B");
  CloudServer server(scheme_, std::move(verifier));

  // --- Owners encrypt partially; every upload crosses both proxies. ------
  struct Row {
    PlainIndex idx;
    const char* ref;
  };
  const std::vector<Row> rows{
      {{{"61", "Male", "Boston", "diabetes", "Hospital A",
         time_value(2010, 2)}},
       "bob"},
      {{{"58", "Female", "Quincy", "diabetes", "Hospital A",
         time_value(2010, 3)}},
       "carol"},
      {{{"70", "Male", "Boston", "diabetes", "Hospital B",
         time_value(2010, 2)}},
       "dave"},
      {{{"65", "Male", "Cambridge", "diabetes", "Hospital A",
         time_value(2012, 1)}},
       "erin-2012"},
  };
  for (const auto& row : rows) {
    auto enc = scheme_.partial_gen_index(ta.public_key(), row.idx, rng_);
    enc = pipeline.process(enc);
    (void)server.store(std::move(enc), row.ref);
  }
  ASSERT_EQ(server.record_count(), 4u);

  // --- A doctor in hospital A's ward requests a capability. --------------
  UserAttributes doc;
  doc.values["age"] = {"40"};
  doc.values["sex"] = {"Male"};
  doc.values["region"] = {"Boston"};
  doc.values["illness"] = {"diabetes"};
  doc.values["provider"] = {"Hospital A"};
  // Authorized to search indexes created in an aligned 4-month window of
  // early 2010.
  doc.values["time"] = {time_value(2010, 1)};
  ward->register_user("doc", doc);

  Query request = q6();
  request.terms[3] = QueryTerm::equals("diabetes");
  request.terms[5] = time_period(2010, 1, 2010, 4, /*level=*/5);
  const auto cap = ward->delegate_for_user("doc", request, rng_);
  ASSERT_TRUE(cap.has_value());
  EXPECT_EQ(cap->issuer, "hospital-A/ward");
  EXPECT_EQ(cap->cap.key.level, 3u);  // TA->LTA scope, ward scope, request

  // --- Server verifies and scans (sequentially and in parallel). ---------
  CloudServer::SearchStats stats;
  const auto docs = server.search(*cap, &stats);
  EXPECT_TRUE(stats.authorized);
  // bob: diabetic Male at Hospital A in window -> match.
  // carol: Female (ward scope excludes) -> no.
  // dave: Hospital B (LTA scope excludes) -> no.
  // erin-2012: outside the authorized time window (revoked) -> no.
  ASSERT_EQ(docs.size(), 1u);
  EXPECT_EQ(docs[0], "bob");
  EXPECT_EQ(server.search_parallel(*cap, 3), docs);

  // --- The policy refuses overly broad requests. --------------------------
  Query broad = q6();
  broad.terms[3] = QueryTerm::equals("diabetes");
  // Only one active dim in the request, but the ward+LTA scopes contribute
  // two more, so this passes...
  EXPECT_TRUE(hospital_a->eligible("doc", broad) == false);  // not ward user
  // ...while a fully unconstrained request at hospital B (no scope beyond
  // provider, policy-free) still works for its own users.
  UserAttributes nurse;
  nurse.values["provider"] = {"Hospital B"};
  hospital_b->register_user("nurse", nurse);
  const auto cap_b = hospital_b->delegate_for_user("nurse", q6(), rng_);
  ASSERT_TRUE(cap_b.has_value());
  const auto docs_b = server.search(*cap_b, &stats);
  EXPECT_TRUE(stats.authorized);
  ASSERT_EQ(docs_b.size(), 1u);  // only dave is at Hospital B
  EXPECT_EQ(docs_b[0], "dave");

  // --- Dictionary attack against the live deployment fails. ---------------
  // The server forges a partial index for a guessed record and tests the
  // doctor's capability: no proxy secret, no match.
  const auto forged = scheme_.partial_gen_index(
      ta.public_key(),
      PlainIndex{{"61", "Male", "Boston", "diabetes", "Hospital A",
                  time_value(2010, 2)}},
      rng_);
  EXPECT_FALSE(scheme_.search(cap->cap, forged));

  // --- An expired user needs a fresh capability (revocation). -------------
  Query late = request;
  late.terms[5] = time_period(2012, 1, 2012, 4, 5);
  // The doc's time attribute does not include 2012: refused.
  EXPECT_FALSE(ward->delegate_for_user("doc", late, rng_).has_value());
}

}  // namespace
}  // namespace apks
