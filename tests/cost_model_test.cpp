// Exact operation-count verification of the paper's complexity formulas.
// Counting exponentiations and pairings is noise-free, so these are
// assertions, not benchmarks:
//   Setup    : 2 (n+3)^2 generator exponentiations (two DPVS bases)
//   GenIndex : (n+3)(n+2) variable-base exponentiations (one MSM of n+2
//              terms per coordinate)
//   Search   : exactly n+3 Miller loops and 1 final exponentiation
//   MRQED    : 5 pairings per probe, O(n) exponentiations elsewhere
#include <gtest/gtest.h>

#include "core/apks.h"
#include "data/nursery.h"
#include "mrqed/mrqed.h"

namespace apks {
namespace {

class CostModelTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  CostModelTest()
      : e_(default_type_a_params()),
        apks_(e_, nursery_expanded_schema(GetParam(), 1)),
        rng_("cost-model") {}

  Pairing e_;
  Apks apks_;
  ChaChaRng rng_;
};

TEST_P(CostModelTest, SetupIsTwoNSquaredBaseExps) {
  const std::size_t n0 = apks_.n() + 3;
  e_.reset_op_counts();
  ApksPublicKey pk;
  ApksMasterKey msk;
  apks_.setup(rng_, pk, msk);
  EXPECT_EQ(e_.curve().base_mul_count(), 2 * n0 * n0);
  // Setup performs no variable-base exponentiations at all (the d_{n+1}
  // addition is a point add, not a mul).
  EXPECT_EQ(e_.curve().scalar_mul_count(), 0u);
}

TEST_P(CostModelTest, EncryptIsQuadraticMsm) {
  const std::size_t n0 = apks_.n() + 3;
  ApksPublicKey pk;
  ApksMasterKey msk;
  apks_.setup(rng_, pk, msk);
  const auto row = expand_nursery_row(nursery_rows()[0], GetParam());
  e_.reset_op_counts();
  (void)apks_.gen_index(pk, row, rng_);
  // One MSM of n+2 basis vectors per coordinate: (n+3)(n+2) exp units.
  EXPECT_EQ(e_.curve().scalar_mul_count(), n0 * (n0 - 1));
  EXPECT_EQ(e_.curve().base_mul_count(), 0u);
}

TEST_P(CostModelTest, SearchIsExactlyNPlusThreePairings) {
  ApksPublicKey pk;
  ApksMasterKey msk;
  apks_.setup(rng_, pk, msk);
  const auto row = expand_nursery_row(nursery_rows()[0], GetParam());
  const auto enc = apks_.gen_index(pk, row, rng_);
  Query q;
  q.terms.assign(apks_.schema().original_dims(), QueryTerm::any());
  q.terms[0] = QueryTerm::equals("usual");
  const auto cap = apks_.gen_cap(msk, q, rng_);

  e_.reset_op_counts();
  (void)apks_.search(cap, enc);
  EXPECT_EQ(e_.miller_count(), apks_.n() + 3);
  EXPECT_EQ(e_.final_exp_count(), 1u);

  // Preprocessed search: same pairing count (the preprocessing moved the
  // per-pairing cost, not the count).
  const auto prepared = apks_.prepare(cap);
  e_.reset_op_counts();
  (void)apks_.search_prepared(prepared, enc);
  EXPECT_EQ(e_.miller_count(), apks_.n() + 3);
  EXPECT_EQ(e_.final_exp_count(), 1u);
}

TEST_P(CostModelTest, NaiveGenCapCostsMoreThanShared) {
  ApksPublicKey pk;
  ApksMasterKey msk;
  apks_.setup(rng_, pk, msk);
  Query q;
  q.terms.assign(apks_.schema().original_dims(), QueryTerm::any());
  q.terms[0] = QueryTerm::equals("usual");

  e_.reset_op_counts();
  (void)apks_.gen_cap(msk, q, rng_);
  const std::uint64_t shared = e_.curve().scalar_mul_count();

  e_.reset_op_counts();
  (void)apks_.gen_cap_naive(msk, q, rng_);
  const std::uint64_t naive = e_.curve().scalar_mul_count();

  EXPECT_LT(shared, naive);
  // Both are Theta(n^2): bounded by a small multiple of (n+3)^2.
  const std::uint64_t n0 = apks_.n() + 3;
  EXPECT_LE(naive, 6 * n0 * n0);
  EXPECT_GE(shared, n0);  // and not trivially cheap
}

// The scalar-multiplication engine must not move the paper-facing counts:
// naive, windowed and precomputed serve the SAME exponentiations (the
// accounting unit of Fig. 8), only wall-clock differs. precomp_base_mul is
// bookkeeping on top — it records how many of those exponentiations the
// cached tables absorbed, and never exceeds them.
TEST_P(CostModelTest, EngineDoesNotChangeExponentiationCounts) {
  struct Counts {
    std::uint64_t setup_base, enc_scalar, cap_scalar, del_scalar;
  };
  auto run = [&](ScalarEngine engine) {
    const Apks scheme(e_, nursery_expanded_schema(GetParam(), 1),
                      HpeOptions{engine});
    ChaChaRng rng("cost-engine");
    ApksPublicKey pk;
    ApksMasterKey msk;
    Counts c{};
    e_.reset_op_counts();
    scheme.setup(rng, pk, msk);
    c.setup_base = e_.curve().base_mul_count();
    const auto row = expand_nursery_row(nursery_rows()[0], GetParam());
    e_.reset_op_counts();
    (void)scheme.gen_index(pk, row, rng);
    c.enc_scalar = e_.curve().scalar_mul_count();
    Query q;
    q.terms.assign(scheme.schema().original_dims(), QueryTerm::any());
    q.terms[0] = QueryTerm::equals("usual");
    e_.reset_op_counts();
    const auto cap = scheme.gen_cap_naive(msk, q, rng);
    c.cap_scalar = e_.curve().scalar_mul_count();
    EXPECT_LE(e_.curve().precomp_base_mul_count(), c.cap_scalar);
    Query q2;
    q2.terms.assign(scheme.schema().original_dims(), QueryTerm::any());
    q2.terms[1] = QueryTerm::equals("proper");
    e_.reset_op_counts();
    (void)scheme.delegate_cap_naive(cap, q2, rng);
    c.del_scalar = e_.curve().scalar_mul_count();
    return c;
  };

  const Counts naive = run(ScalarEngine::kNaive);
  const std::size_t n0 = apks_.n() + 3;
  EXPECT_EQ(naive.setup_base, 2 * n0 * n0);
  EXPECT_EQ(naive.enc_scalar, n0 * (n0 - 1));
  for (const ScalarEngine engine :
       {ScalarEngine::kWindowed, ScalarEngine::kPrecomputed}) {
    const Counts c = run(engine);
    EXPECT_EQ(c.setup_base, naive.setup_base);
    EXPECT_EQ(c.enc_scalar, naive.enc_scalar);
    EXPECT_EQ(c.cap_scalar, naive.cap_scalar);
    EXPECT_EQ(c.del_scalar, naive.del_scalar);
  }
}

// precomp_base_mul moves with the engine: zero unless tables serve the
// work, positive (and bounded by scalar_mul) when they do.
TEST_P(CostModelTest, PrecompCounterTracksTableServedWork) {
  auto encrypt_counts = [&](ScalarEngine engine) {
    const Apks scheme(e_, nursery_expanded_schema(GetParam(), 1),
                      HpeOptions{engine});
    ChaChaRng rng("cost-precomp");
    ApksPublicKey pk;
    ApksMasterKey msk;
    scheme.setup(rng, pk, msk);
    scheme.warm_precomp(pk);  // table build itself must not count
    const auto row = expand_nursery_row(nursery_rows()[0], GetParam());
    e_.reset_op_counts();
    (void)scheme.gen_index(pk, row, rng);
    return std::pair{e_.curve().scalar_mul_count(),
                     e_.curve().precomp_base_mul_count()};
  };
  const auto [nsc, npre] = encrypt_counts(ScalarEngine::kNaive);
  EXPECT_EQ(npre, 0u);
  const auto [wsc, wpre] = encrypt_counts(ScalarEngine::kWindowed);
  EXPECT_EQ(wpre, 0u);
  const auto [psc, ppre] = encrypt_counts(ScalarEngine::kPrecomputed);
  EXPECT_GT(ppre, 0u);
  EXPECT_EQ(ppre, psc);  // every encrypt term is served from Bhat's tables
  EXPECT_EQ(nsc, psc);
  EXPECT_EQ(wsc, psc);
}

INSTANTIATE_TEST_SUITE_P(Factors, CostModelTest, ::testing::Values(1, 2),
                         [](const auto& param_info) {
                           return "k" + std::to_string(param_info.param);
                         });

TEST(CostModelMrqed, FivePairingsPerProbe) {
  const Pairing e(default_type_a_params());
  const Mrqed mrqed(e, 2, 3);
  ChaChaRng rng("cost-mrqed");
  MrqedPublicKey pk;
  MrqedMasterKey msk;
  mrqed.setup(rng, pk, msk);
  const auto ct = mrqed.encrypt(pk, {0, 0}, rng);
  const auto key = mrqed.gen_key(pk, msk, {{0, 0}, {0, 0}}, rng);
  e.reset_op_counts();
  Mrqed::MatchStats stats;
  ASSERT_TRUE(mrqed.match(ct, key, &stats));
  // Reported probe accounting agrees with the real Miller-loop count.
  EXPECT_EQ(e.miller_count(), stats.pairings);
  EXPECT_EQ(stats.pairings % 5, 0u);
}

}  // namespace
}  // namespace apks
