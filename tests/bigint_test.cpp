// Unit and property tests for the multiprecision core (limbs, BigInt,
// Montgomery). Randomized checks use a fixed-seed ChaCha generator so
// failures are reproducible.
#include <gtest/gtest.h>

#include "common/bigint.h"
#include "common/montgomery.h"
#include "common/rng.h"

namespace apks {
namespace {

using B2 = BigInt<2>;
using B4 = BigInt<4>;
using B8 = BigInt<8>;

template <std::size_t L>
BigInt<L> random_bigint(Rng& rng) {
  BigInt<L> r;
  for (std::size_t i = 0; i < L; ++i) r.w[i] = rng.next_u64();
  return r;
}

TEST(BigInt, ZeroAndOne) {
  EXPECT_TRUE(B4::zero().is_zero());
  EXPECT_FALSE(B4::one().is_zero());
  EXPECT_TRUE(B4::one().is_odd());
  EXPECT_EQ(B4::one().bit_length(), 1u);
  EXPECT_EQ(B4::zero().bit_length(), 0u);
}

TEST(BigInt, Comparison) {
  const B4 a{5};
  const B4 b{7};
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, a);
  B4 big;
  big.w[3] = 1;
  EXPECT_GT(big, b);
}

TEST(BigInt, AddSubRoundTrip) {
  ChaChaRng rng("bigint-addsub");
  for (int i = 0; i < 200; ++i) {
    const auto a = random_bigint<4>(rng);
    const auto b = random_bigint<4>(rng);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a - b) + b, a);
  }
}

TEST(BigInt, AddCarryDetectsOverflow) {
  B4 max;
  for (auto& w : max.w) w = ~std::uint64_t{0};
  B4 r;
  EXPECT_EQ(B4::add_carry(r, max, B4::one()), 1u);
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(B4::sub_borrow(r, B4::zero(), B4::one()), 1u);
  EXPECT_EQ(r, max);
}

TEST(BigInt, MulWideMatchesSchoolbook64) {
  // Cross-check against native 128-bit arithmetic on 1-limb inputs.
  ChaChaRng rng("bigint-mul");
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = rng.next_u64();
    const auto r = BigInt<1>::mul_wide(BigInt<1>{a}, BigInt<1>{b});
    const unsigned __int128 expect =
        static_cast<unsigned __int128>(a) * b;
    EXPECT_EQ(r.w[0], static_cast<std::uint64_t>(expect));
    EXPECT_EQ(r.w[1], static_cast<std::uint64_t>(expect >> 64));
  }
}

TEST(BigInt, MulDistributes) {
  ChaChaRng rng("bigint-dist");
  for (int i = 0; i < 100; ++i) {
    const auto a = random_bigint<3>(rng);
    const auto b = random_bigint<3>(rng);
    const auto c = random_bigint<3>(rng);
    // a*(b+c) == a*b + a*c  when b+c does not overflow; force the top bit
    // clear so the sum is exact.
    auto b2 = b;
    auto c2 = c;
    b2.w[2] &= ~(std::uint64_t{1} << 63);
    c2.w[2] &= ~(std::uint64_t{1} << 63);
    const auto lhs = BigInt<3>::mul_wide(a, b2 + c2);
    const auto rhs = BigInt<3>::mul_wide(a, b2) + BigInt<3>::mul_wide(a, c2);
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(BigInt, ShiftRoundTrip) {
  ChaChaRng rng("bigint-shift");
  for (unsigned k : {0u, 1u, 7u, 63u, 64u, 65u, 100u, 190u}) {
    const auto a = random_bigint<4>(rng);
    // (a >> k) << k clears the low k bits only.
    const auto r = a.shr(k).shl(k);
    const auto masked = a.shr(k).shl(k);
    EXPECT_EQ(r, masked);
    // Shifting left then right loses only high bits.
    const auto r2 = a.shl(k).shr(k);
    for (std::size_t bit = 0; bit + k < 256; ++bit) {
      EXPECT_EQ(r2.bit(bit), a.bit(bit)) << "k=" << k << " bit=" << bit;
    }
  }
}

TEST(BigInt, HexRoundTrip) {
  ChaChaRng rng("bigint-hex");
  for (int i = 0; i < 50; ++i) {
    const auto a = random_bigint<4>(rng);
    EXPECT_EQ(bigint_from_hex<4>(to_hex(a)), a);
  }
  EXPECT_EQ(to_hex(B4::zero()), "0");
  EXPECT_EQ(to_hex(B4{0x1a2b}), "1a2b");
  EXPECT_EQ(bigint_from_hex<4>("00ff"), B4{0xff});
}

TEST(BigInt, BytesRoundTrip) {
  ChaChaRng rng("bigint-bytes");
  for (int i = 0; i < 50; ++i) {
    const auto a = random_bigint<4>(rng);
    std::array<std::uint8_t, 32> buf{};
    a.to_bytes(buf);
    EXPECT_EQ(B4::from_bytes(buf), a);
  }
}

TEST(BigInt, DivRemIdentity) {
  ChaChaRng rng("bigint-div");
  for (int i = 0; i < 300; ++i) {
    auto a = random_bigint<4>(rng);
    auto b = random_bigint<4>(rng);
    // Make the divisor span a random number of limbs to hit all paths.
    const std::size_t limbs = 1 + rng.next_below(4);
    for (std::size_t j = limbs; j < 4; ++j) b.w[j] = 0;
    if (b.is_zero()) b = B4::one();
    B4 q, r;
    divrem(a, b, q, r);
    EXPECT_LT(r, b);
    // a == q*b + r (checked in double width).
    const auto qb = B4::mul_wide(q, b);
    BigInt<8> rr;
    for (std::size_t j = 0; j < 4; ++j) rr.w[j] = r.w[j];
    BigInt<8> aa;
    for (std::size_t j = 0; j < 4; ++j) aa.w[j] = a.w[j];
    EXPECT_EQ(qb + rr, aa);
  }
}

TEST(BigInt, DivRemSingleLimbDivisor) {
  B4 a;
  a.w[0] = 0x123456789abcdef0ull;
  a.w[1] = 0xfedcba9876543210ull;
  const B4 b{0x10};
  B4 q, r;
  divrem(a, b, q, r);
  EXPECT_EQ(r, B4{0});
  EXPECT_EQ(q.w[0], 0x0123456789abcdefull);
}

TEST(BigInt, ModReducesWide) {
  ChaChaRng rng("bigint-mod");
  for (int i = 0; i < 100; ++i) {
    const auto a = random_bigint<8>(rng);
    auto m = random_bigint<4>(rng);
    if (m.is_zero()) m = B4::one();
    const auto r = mod(a, m);
    EXPECT_LT(r, m);
  }
}

TEST(BigInt, AddSubMod) {
  ChaChaRng rng("bigint-addmod");
  B4 m = bigint_from_hex<4>("ffffffffffffffffffffffffffffff61");  // arbitrary odd
  for (int i = 0; i < 100; ++i) {
    const auto a = mod(random_bigint<8>(rng), m);
    const auto b = mod(random_bigint<8>(rng), m);
    const auto s = add_mod(a, b, m);
    EXPECT_LT(s, m);
    EXPECT_EQ(sub_mod(s, b, m), a);
    EXPECT_EQ(sub_mod(s, a, m), b);
  }
}

TEST(Montgomery, N0InvCorrect) {
  ChaChaRng rng("mont-n0");
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t m0 = rng.next_u64() | 1;
    const std::uint64_t n0 = limb::mont_n0inv(m0);
    // m0 * n0 == -1 mod 2^64
    EXPECT_EQ(static_cast<std::uint64_t>(m0 * n0), ~std::uint64_t{0});
  }
}

TEST(Montgomery, RoundTrip) {
  const B4 m = bigint_from_hex<4>(
      "f000000000000000000000000000000000000000000000000000000000000055");
  MontCtx<4> ctx(m);
  ChaChaRng rng("mont-rt");
  for (int i = 0; i < 100; ++i) {
    const auto a = mod(random_bigint<8>(rng), m);
    EXPECT_EQ(ctx.from_mont(ctx.to_mont(a)), a);
  }
}

TEST(Montgomery, MulMatchesSchoolbook) {
  const B4 m = bigint_from_hex<4>(
      "c90102faa48f18b5eac1f76bb88da067298b0956478b09c0d5b6b9f28e9c3fa1");
  MontCtx<4> ctx(m);
  ChaChaRng rng("mont-mul");
  for (int i = 0; i < 200; ++i) {
    const auto a = mod(random_bigint<8>(rng), m);
    const auto b = mod(random_bigint<8>(rng), m);
    const auto expect = mul_mod(a, b, m);
    const auto got =
        ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)));
    EXPECT_EQ(got, expect);
  }
}

TEST(Montgomery, PowMatchesRepeatedMul) {
  const B2 m = bigint_from_hex<2>("ffffffffffffffffffffffffffffff61");
  MontCtx<2> ctx(m);
  ChaChaRng rng("mont-pow");
  for (int i = 0; i < 20; ++i) {
    const auto a = ctx.to_mont(mod(random_bigint<4>(rng), m));
    const std::uint64_t e = rng.next_below(500);
    B2 acc = ctx.r();
    for (std::uint64_t j = 0; j < e; ++j) acc = ctx.mul(acc, a);
    EXPECT_EQ(ctx.pow(a, B2{e}), acc) << "e=" << e;
  }
}

TEST(Montgomery, PowZeroExponentIsOne) {
  const B2 m = bigint_from_hex<2>("ffffffffffffffffffffffffffffff61");
  MontCtx<2> ctx(m);
  const auto a = ctx.to_mont(B2{12345});
  EXPECT_EQ(ctx.pow(a, B2::zero()), ctx.r());
}

TEST(Montgomery, BinaryInverseMatchesFermat) {
  B2 m;
  m.w[0] = ~std::uint64_t{0};
  m.w[1] = (~std::uint64_t{0}) >> 1;  // 2^127 - 1, prime
  MontCtx<2> ctx(m);
  ChaChaRng rng("mont-binv");
  for (int i = 0; i < 60; ++i) {
    auto a = mod(random_bigint<4>(rng), m);
    if (a.is_zero()) a = B2::one();
    const auto am = ctx.to_mont(a);
    EXPECT_EQ(ctx.inv_binary(am), ctx.inv_fermat(am));
    EXPECT_EQ(ctx.mul(am, ctx.inv_binary(am)), ctx.r());
  }
  // Edge cases: 1 and m-1.
  EXPECT_EQ(ctx.inv_binary(ctx.r()), ctx.r());
  const auto minus1 = ctx.to_mont(m - B2::one());
  EXPECT_EQ(ctx.mul(minus1, ctx.inv_binary(minus1)), ctx.r());
}

TEST(Montgomery, FermatInverse) {
  // Prime modulus (2^127 - 1 is prime; use 2 limbs).
  B2 m;
  m.w[0] = ~std::uint64_t{0};
  m.w[1] = (~std::uint64_t{0}) >> 1;
  MontCtx<2> ctx(m);
  ChaChaRng rng("mont-inv");
  for (int i = 0; i < 50; ++i) {
    auto a = mod(random_bigint<4>(rng), m);
    if (a.is_zero()) a = B2::one();
    const auto am = ctx.to_mont(a);
    const auto inv = ctx.inv_fermat(am);
    EXPECT_EQ(ctx.mul(am, inv), ctx.r());
  }
}

}  // namespace
}  // namespace apks
