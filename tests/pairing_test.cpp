// Bilinearity, non-degeneracy and preprocessing tests for the Tate pairing.
#include <gtest/gtest.h>

#include "pairing/pairing.h"

namespace apks {
namespace {

class PairingTest : public ::testing::Test {
 protected:
  PairingTest() : e_(default_type_a_params()), rng_("pairing-test") {}
  Pairing e_;
  ChaChaRng rng_;
};

TEST_F(PairingTest, NonDegenerate) {
  EXPECT_FALSE(e_.gt_is_one(e_.gt_generator()));
}

TEST_F(PairingTest, GtGeneratorHasOrderQ) {
  const auto& fq = e_.fq();
  // g_T^q == 1.
  const GtEl gq = e_.fp2().pow(e_.gt_generator(), e_.curve().params().q);
  EXPECT_TRUE(e_.gt_is_one(gq));
  // g_T^k != 1 for small k (q prime).
  EXPECT_FALSE(e_.gt_is_one(e_.gt_pow(e_.gt_generator(), fq.from_u64(12345))));
}

TEST_F(PairingTest, SymmetricOnRandomPoints) {
  const auto p = e_.curve().random_point(rng_);
  const auto q = e_.curve().random_point(rng_);
  EXPECT_EQ(e_.pair(p, q), e_.pair(q, p));
}

TEST_F(PairingTest, BilinearInScalars) {
  const auto& fq = e_.fq();
  const auto& g = e_.curve().generator();
  const Fq a = fq.random(rng_);
  const Fq b = fq.random(rng_);
  const auto ag = e_.curve().mul_fq(g, a);
  const auto bg = e_.curve().mul_fq(g, b);
  // e(aP, bP) == e(P, P)^{ab}
  const GtEl lhs = e_.pair(ag, bg);
  const GtEl rhs = e_.gt_pow(e_.gt_generator(), fq.mul(a, b));
  EXPECT_EQ(lhs, rhs);
  // e(aP, P) == e(P, aP) == e(P,P)^a
  EXPECT_EQ(e_.pair(ag, g), e_.gt_pow(e_.gt_generator(), a));
  EXPECT_EQ(e_.pair(g, ag), e_.gt_pow(e_.gt_generator(), a));
}

TEST_F(PairingTest, AdditiveInFirstArgument) {
  const auto p = e_.curve().random_point(rng_);
  const auto r = e_.curve().random_point(rng_);
  const auto q = e_.curve().random_point(rng_);
  const GtEl lhs = e_.pair(e_.curve().add(p, r), q);
  const GtEl rhs = e_.gt_mul(e_.pair(p, q), e_.pair(r, q));
  EXPECT_EQ(lhs, rhs);
}

TEST_F(PairingTest, AdditiveInSecondArgument) {
  const auto p = e_.curve().random_point(rng_);
  const auto q = e_.curve().random_point(rng_);
  const auto s = e_.curve().random_point(rng_);
  const GtEl lhs = e_.pair(p, e_.curve().add(q, s));
  const GtEl rhs = e_.gt_mul(e_.pair(p, q), e_.pair(p, s));
  EXPECT_EQ(lhs, rhs);
}

TEST_F(PairingTest, InfinityPairsToOne) {
  const auto p = e_.curve().random_point(rng_);
  EXPECT_TRUE(e_.gt_is_one(e_.pair(AffinePoint::infinity(), p)));
  EXPECT_TRUE(e_.gt_is_one(e_.pair(p, AffinePoint::infinity())));
}

TEST_F(PairingTest, NegationInverts) {
  const auto p = e_.curve().random_point(rng_);
  const auto q = e_.curve().random_point(rng_);
  const GtEl ab = e_.pair(p, q);
  const GtEl ab_neg = e_.pair(e_.curve().neg(p), q);
  EXPECT_TRUE(e_.gt_is_one(e_.gt_mul(ab, ab_neg)));
  // gt_inv (conjugation) agrees.
  EXPECT_EQ(ab_neg, e_.gt_inv(ab));
}

TEST_F(PairingTest, GtElementsAreUnitary) {
  const auto p = e_.curve().random_point(rng_);
  const auto q = e_.curve().random_point(rng_);
  const GtEl v = e_.pair(p, q);
  EXPECT_EQ(e_.fp().to_int(e_.fp2().norm(v)), FpInt{1});
}

TEST_F(PairingTest, PreprocessingMatchesPlain) {
  const auto p = e_.curve().random_point(rng_);
  const auto pre = e_.preprocess(p);
  for (int i = 0; i < 4; ++i) {
    const auto q = e_.curve().random_point(rng_);
    EXPECT_EQ(pre.pair_with(q), e_.pair(p, q));
  }
  EXPECT_TRUE(e_.gt_is_one(pre.pair_with(AffinePoint::infinity())));
}

TEST_F(PairingTest, PreprocessInfinity) {
  const auto pre = e_.preprocess(AffinePoint::infinity());
  const auto q = e_.curve().random_point(rng_);
  EXPECT_TRUE(e_.gt_is_one(pre.pair_with(q)));
}

TEST_F(PairingTest, GtPowHomomorphism) {
  const auto& fq = e_.fq();
  const Fq a = fq.random(rng_);
  const Fq b = fq.random(rng_);
  const GtEl g = e_.gt_generator();
  EXPECT_EQ(e_.gt_mul(e_.gt_pow(g, a), e_.gt_pow(g, b)),
            e_.gt_pow(g, fq.add(a, b)));
}

TEST_F(PairingTest, GtSerializeRoundTrip) {
  for (int i = 0; i < 5; ++i) {
    const GtEl v = e_.gt_random(rng_);
    std::array<std::uint8_t, Pairing::kGtCompressedSize> buf{};
    e_.gt_serialize(v, buf);
    EXPECT_EQ(e_.gt_deserialize(buf), v);
  }
}

TEST_F(PairingTest, GtDeserializeRejectsGarbage) {
  std::array<std::uint8_t, Pairing::kGtCompressedSize> buf{};
  buf[0] = 7;
  EXPECT_THROW((void)e_.gt_deserialize(buf), std::invalid_argument);
}

TEST_F(PairingTest, FinalExpKillsSubfield) {
  // Any element of F_p* (embedded in F_p^2) must map to 1 — this is what
  // justifies denominator elimination.
  const Fp a = e_.fp().random(rng_);
  const Fp2El sub = e_.fp2().from_base(a);
  EXPECT_TRUE(e_.gt_is_one(e_.final_exp(sub)));
}

}  // namespace
}  // namespace apks
