// Parameterized property tests for HPE across predicate-vector lengths and
// delegation depths: decryption correctness must hold for every n, and
// delegation must implement exact AND semantics at every level.
#include <gtest/gtest.h>

#include "hpe/hpe.h"

namespace apks {
namespace {

class HpeProperty : public ::testing::TestWithParam<std::size_t> {
 protected:
  HpeProperty()
      : e_(default_type_a_params()),
        hpe_(e_, GetParam()),
        fq_(e_.fq()),
        rng_("hpe-property-" + std::to_string(GetParam())) {
    hpe_.setup(rng_, pk_, msk_);
    msg_ = e_.gt_random(rng_);
  }

  std::vector<Fq> random_vec() {
    std::vector<Fq> v(hpe_.n());
    for (auto& c : v) c = fq_.random(rng_);
    return v;
  }

  // Solves the last nonzero coordinate so that x . v == 0.
  std::vector<Fq> orthogonal_to(const std::vector<Fq>& v) {
    std::vector<Fq> x(hpe_.n(), fq_.zero());
    std::size_t pivot = hpe_.n();
    for (std::size_t i = 0; i < hpe_.n(); ++i) {
      if (!v[i].is_zero()) pivot = i;
    }
    if (pivot == hpe_.n()) return x;  // v == 0: anything is orthogonal
    Fq acc = fq_.zero();
    for (std::size_t i = 0; i < hpe_.n(); ++i) {
      if (i == pivot) continue;
      x[i] = fq_.random(rng_);
      acc = fq_.add(acc, fq_.mul(x[i], v[i]));
    }
    x[pivot] = fq_.neg(fq_.mul(acc, fq_.inv(v[pivot])));
    return x;
  }

  Pairing e_;
  Hpe hpe_;
  const FqField& fq_;
  ChaChaRng rng_;
  HpePublicKey pk_;
  HpeMasterKey msk_;
  GtEl msg_;
};

TEST_P(HpeProperty, MatchAndMismatchSweep) {
  for (int trial = 0; trial < 3; ++trial) {
    const auto v = random_vec();
    const auto key = hpe_.gen_key(msk_, v, rng_);
    const auto x_match = orthogonal_to(v);
    EXPECT_EQ(hpe_.decrypt(hpe_.encrypt(pk_, x_match, msg_, rng_), key),
              msg_);
    const auto x_miss = random_vec();
    if (!inner_product(fq_, x_miss, v).is_zero()) {
      EXPECT_NE(hpe_.decrypt(hpe_.encrypt(pk_, x_miss, msg_, rng_), key),
                msg_);
    }
  }
}

TEST_P(HpeProperty, ScalingPredicateVectorKeepsSemantics) {
  // v and c*v define the same predicate.
  const auto v = random_vec();
  const Fq c = fq_.random_nonzero(rng_);
  std::vector<Fq> cv(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) cv[i] = fq_.mul(c, v[i]);
  const auto key = hpe_.gen_key(msk_, cv, rng_);
  const auto x = orthogonal_to(v);
  EXPECT_EQ(hpe_.decrypt(hpe_.encrypt(pk_, x, msg_, rng_), key), msg_);
}

TEST_P(HpeProperty, DelegationChainIsCumulativeAnd) {
  if (hpe_.n() < 2) GTEST_SKIP() << "need n >= 2 for two constraints";
  // Build a chain of keys for e_1-like vectors with disjoint support and
  // an x that zeroes all of them.
  const std::size_t depth = std::min<std::size_t>(3, hpe_.n());
  std::vector<std::vector<Fq>> vs;
  for (std::size_t l = 0; l < depth; ++l) {
    std::vector<Fq> v(hpe_.n(), fq_.zero());
    v[l] = fq_.random_nonzero(rng_);  // constrains x[l] == 0
    vs.push_back(std::move(v));
  }
  HpeKey key = hpe_.gen_key(msk_, vs[0], rng_);
  std::vector<HpeKey> chain{key};
  for (std::size_t l = 1; l < depth; ++l) {
    key = hpe_.delegate(key, vs[l], rng_);
    chain.push_back(key);
    EXPECT_EQ(key.level, l + 1);
    EXPECT_EQ(key.ran.size(), l + 2);
  }
  // x zero on the first `depth` coords, random elsewhere: all levels match.
  std::vector<Fq> x(hpe_.n(), fq_.zero());
  for (std::size_t i = depth; i < hpe_.n(); ++i) x[i] = fq_.random(rng_);
  const auto ct = hpe_.encrypt(pk_, x, msg_, rng_);
  for (const auto& k : chain) {
    EXPECT_EQ(hpe_.decrypt(ct, k), msg_) << "level " << k.level;
  }
  // Violating only the deepest constraint: all ancestors match, leaf fails.
  if (depth >= 2) {
    auto y = x;
    y[depth - 1] = fq_.random_nonzero(rng_);
    const auto ct2 = hpe_.encrypt(pk_, y, msg_, rng_);
    for (std::size_t l = 0; l + 1 < depth; ++l) {
      EXPECT_EQ(hpe_.decrypt(ct2, chain[l]), msg_) << "level " << l + 1;
    }
    EXPECT_NE(hpe_.decrypt(ct2, chain[depth - 1]), msg_);
  }
}

TEST_P(HpeProperty, PreprocessedAgreesOnBothOutcomes) {
  const auto v = random_vec();
  const auto key = hpe_.gen_key(msk_, v, rng_);
  const auto pre = hpe_.preprocess_key(key);
  const auto hit = hpe_.encrypt(pk_, orthogonal_to(v), msg_, rng_);
  const auto miss = hpe_.encrypt(pk_, random_vec(), msg_, rng_);
  EXPECT_EQ(hpe_.decrypt_pre(hit, pre), hpe_.decrypt(hit, key));
  EXPECT_EQ(hpe_.decrypt_pre(miss, pre), hpe_.decrypt(miss, key));
}

INSTANTIATE_TEST_SUITE_P(VectorLengths, HpeProperty,
                         ::testing::Values(1, 2, 3, 5, 8),
                         [](const auto& param_info) {
                           return "n" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace apks
