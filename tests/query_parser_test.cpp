// Tests for the textual query syntax.
#include <gtest/gtest.h>

#include "core/query_parser.h"
#include "data/phr.h"

namespace apks {
namespace {

class QueryParserTest : public ::testing::Test {
 protected:
  QueryParserTest() : schema_(phr_schema({.max_or = 2})) {}
  Schema schema_;
};

TEST_F(QueryParserTest, Equality) {
  const Query q = parse_query(schema_, "sex = Male");
  EXPECT_EQ(q.terms[1].kind, QueryTerm::Kind::kEquality);
  EXPECT_EQ(q.terms[1].values, std::vector<std::string>{"Male"});
  for (const std::size_t i : {0u, 2u, 3u, 4u}) {
    EXPECT_EQ(q.terms[i].kind, QueryTerm::Kind::kAny) << i;
  }
}

TEST_F(QueryParserTest, SubsetAndSpaces) {
  const Query q = parse_query(schema_, "  illness in diabetes , asthma  ");
  EXPECT_EQ(q.terms[3].kind, QueryTerm::Kind::kSubset);
  EXPECT_EQ(q.terms[3].values,
            (std::vector<std::string>{"diabetes", "asthma"}));
}

TEST_F(QueryParserTest, RangeWithAndWithoutLevel) {
  const Query q = parse_query(schema_, "age : 34-100 @ 2");
  EXPECT_EQ(q.terms[0].kind, QueryTerm::Kind::kRange);
  EXPECT_EQ(q.terms[0].lo, 34u);
  EXPECT_EQ(q.terms[0].hi, 100u);
  EXPECT_EQ(q.terms[0].level, 2u);
  // Default level = hierarchy height (leaf level).
  const Query q2 = parse_query(schema_, "age:40-41");
  EXPECT_EQ(q2.terms[0].level, phr_age_tree()->height());
}

TEST_F(QueryParserTest, Semantic) {
  const Query q = parse_query(schema_, "region under East MA");
  EXPECT_EQ(q.terms[2].kind, QueryTerm::Kind::kSemantic);
  EXPECT_EQ(q.terms[2].values, std::vector<std::string>{"East MA"});
}

TEST_F(QueryParserTest, MultiTermConjunction) {
  const Query q = parse_query(
      schema_,
      "age : 34-100 @ 2; sex = Male; illness in diabetes, hypertension");
  EXPECT_EQ(q.terms[0].kind, QueryTerm::Kind::kRange);
  EXPECT_EQ(q.terms[1].kind, QueryTerm::Kind::kEquality);
  EXPECT_EQ(q.terms[3].kind, QueryTerm::Kind::kSubset);
  EXPECT_EQ(q.terms[4].kind, QueryTerm::Kind::kAny);
  // The parsed query converts cleanly against the schema.
  EXPECT_NO_THROW((void)schema_.convert_query(q));
}

TEST_F(QueryParserTest, ExplicitDontCareAndEmpty) {
  const Query q = parse_query(schema_, "sex = *;; ;");
  for (const auto& t : q.terms) {
    EXPECT_EQ(t.kind, QueryTerm::Kind::kAny);
  }
  const Query q2 = parse_query(schema_, "");
  EXPECT_EQ(q2.terms.size(), schema_.original_dims());
}

TEST_F(QueryParserTest, Errors) {
  EXPECT_THROW((void)parse_query(schema_, "bogus = 1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_query(schema_, "sex Male"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_query(schema_, "sex ="), std::invalid_argument);
  EXPECT_THROW((void)parse_query(schema_, "sex = Male; sex = Female"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_query(schema_, "age : 10"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_query(schema_, "age : x-y"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_query(schema_, "illness in "),
               std::invalid_argument);
  EXPECT_THROW((void)parse_query(schema_, "sex : 1-2"),
               std::invalid_argument);  // range on flat dim
}

TEST_F(QueryParserTest, FormatRoundTrip) {
  const std::string text =
      "age : 34-100 @ 2; sex = Male; illness in diabetes, hypertension";
  const Query q = parse_query(schema_, text);
  const std::string rendered = format_query(schema_, q);
  const Query q2 = parse_query(schema_, rendered);
  // Round-trip through text preserves semantics (compare conversions).
  const auto c1 = schema_.convert_query(q);
  const auto c2 = schema_.convert_query(q2);
  EXPECT_EQ(c1.per_field, c2.per_field);
}

TEST_F(QueryParserTest, ParseIndex) {
  const PlainIndex idx =
      parse_index(schema_, "61, Male, Boston, diabetes, Hospital B");
  EXPECT_EQ(idx.values.size(), 5u);
  EXPECT_EQ(idx.values[0], "61");
  EXPECT_EQ(idx.values[4], "Hospital B");
  EXPECT_NO_THROW((void)schema_.convert_index(idx));
  EXPECT_THROW((void)parse_index(schema_, "61, Male"),
               std::invalid_argument);
}

}  // namespace
}  // namespace apks
