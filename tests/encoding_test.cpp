// Tests for the psi/phi polynomial encodings: x . v == 0 must coincide with
// plaintext CNF matching.
#include <gtest/gtest.h>

#include "core/encoding.h"
#include "ec/params.h"

namespace apks {
namespace {

class EncodingTest : public ::testing::Test {
 protected:
  EncodingTest()
      : fq_(default_type_a_params().q),
        schema_({{"a", nullptr, 2}, {"b", nullptr, 1}, {"c", nullptr, 3}}),
        rng_("encoding") {}

  [[nodiscard]] bool inner_is_zero(const PlainIndex& idx,
                                   const ConvertedQuery& q) {
    const auto x = psi_encode(fq_, schema_, hash_index(fq_, schema_,
                                                       schema_.convert_index(idx)));
    const auto v = phi_encode(fq_, schema_, hash_query(fq_, schema_, q), rng_);
    EXPECT_EQ(x.size(), schema_.vector_length());
    EXPECT_EQ(v.size(), schema_.vector_length());
    return inner_product(fq_, x, v).is_zero();
  }

  FqField fq_;
  Schema schema_;
  ChaChaRng rng_;
};

TEST_F(EncodingTest, PolyFromRootsSmall) {
  // (Z - 2)(Z - 3) = Z^2 - 5Z + 6.
  const std::vector<Fq> roots{fq_.from_u64(2), fq_.from_u64(3)};
  const auto c = poly_from_roots(fq_, roots);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], fq_.from_u64(6));
  EXPECT_EQ(c[1], fq_.neg(fq_.from_u64(5)));
  EXPECT_EQ(c[2], fq_.one());
  // Empty product is the constant 1.
  const auto unit = poly_from_roots(fq_, {});
  ASSERT_EQ(unit.size(), 1u);
  EXPECT_EQ(unit[0], fq_.one());
}

TEST_F(EncodingTest, PolyVanishesExactlyAtRoots) {
  std::vector<Fq> roots{fq_.random(rng_), fq_.random(rng_),
                        fq_.random(rng_)};
  const auto c = poly_from_roots(fq_, roots);
  auto eval = [&](const Fq& z) {
    Fq acc = fq_.zero();
    Fq zp = fq_.one();
    for (const auto& coeff : c) {
      acc = fq_.add(acc, fq_.mul(coeff, zp));
      zp = fq_.mul(zp, z);
    }
    return acc;
  };
  for (const auto& r : roots) EXPECT_TRUE(eval(r).is_zero());
  EXPECT_FALSE(eval(fq_.random(rng_)).is_zero());
}

TEST_F(EncodingTest, EqualityMatch) {
  const PlainIndex idx{{"x", "y", "z"}};
  ConvertedQuery q{{{"x"}, {}, {}}};
  EXPECT_TRUE(inner_is_zero(idx, q));
  ConvertedQuery q2{{{"w"}, {}, {}}};
  EXPECT_FALSE(inner_is_zero(idx, q2));
}

TEST_F(EncodingTest, ConjunctionAcrossDims) {
  const PlainIndex idx{{"x", "y", "z"}};
  ConvertedQuery all{{{"x"}, {"y"}, {"z"}}};
  EXPECT_TRUE(inner_is_zero(idx, all));
  ConvertedQuery one_wrong{{{"x"}, {"nope"}, {"z"}}};
  EXPECT_FALSE(inner_is_zero(idx, one_wrong));
}

TEST_F(EncodingTest, DisjunctionWithinDim) {
  const PlainIndex idx{{"x", "y", "z"}};
  // a in {w, x} — matches via second alternative; c in {z, q, r}.
  ConvertedQuery q{{{"w", "x"}, {}, {"z", "q", "r"}}};
  EXPECT_TRUE(inner_is_zero(idx, q));
  ConvertedQuery q2{{{"w", "v"}, {}, {}}};
  EXPECT_FALSE(inner_is_zero(idx, q2));
}

TEST_F(EncodingTest, AllDontCareMatchesEverything) {
  ConvertedQuery q{{{}, {}, {}}};
  EXPECT_TRUE(inner_is_zero(PlainIndex{{"x", "y", "z"}}, q));
  EXPECT_TRUE(inner_is_zero(PlainIndex{{"1", "2", "3"}}, q));
}

TEST_F(EncodingTest, PhiRejectsBudgetViolation) {
  // Field b has degree 1: two roots must throw.
  std::vector<FieldPredicate> preds(3);
  preds[1].dont_care = false;
  preds[1].roots = {fq_.random(rng_), fq_.random(rng_)};
  EXPECT_THROW((void)phi_encode(fq_, schema_, preds, rng_),
               std::invalid_argument);
  // Empty root list on a non-don't-care field is malformed.
  std::vector<FieldPredicate> preds2(3);
  preds2[0].dont_care = false;
  EXPECT_THROW((void)phi_encode(fq_, schema_, preds2, rng_),
               std::invalid_argument);
}

TEST_F(EncodingTest, ArityValidation) {
  EXPECT_THROW((void)psi_encode(fq_, schema_, std::vector<Fq>(2)),
               std::invalid_argument);
  EXPECT_THROW(
      (void)phi_encode(fq_, schema_, std::vector<FieldPredicate>(2), rng_),
      std::invalid_argument);
}

TEST_F(EncodingTest, VectorLengthIsSumDegreesPlusOne) {
  EXPECT_EQ(schema_.vector_length(), 2u + 1u + 3u + 1u);
  const PlainIndex idx{{"x", "y", "z"}};
  const auto x = psi_encode(
      fq_, schema_, hash_index(fq_, schema_, schema_.convert_index(idx)));
  EXPECT_EQ(x.back(), fq_.one());  // trailing 1 slot
}

TEST_F(EncodingTest, HashIndexIsPerFieldNamespaced) {
  // The same value string in different fields must hash differently,
  // otherwise cross-field collisions would create spurious matches.
  const PlainIndex idx{{"same", "same", "same"}};
  const auto keywords =
      hash_index(fq_, schema_, schema_.convert_index(idx));
  EXPECT_NE(keywords[0], keywords[1]);
  EXPECT_NE(keywords[1], keywords[2]);
}

}  // namespace
}  // namespace apks
