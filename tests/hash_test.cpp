// Known-answer and incremental-update tests for SHA-1 and SHA-256.
#include <gtest/gtest.h>

#include "common/hex.h"
#include "common/sha1.h"
#include "common/sha256.h"

namespace apks {
namespace {

std::string sha1_hex(std::string_view s) {
  const auto d = Sha1::hash(s);
  return hex_encode(d);
}

std::string sha256_hex(std::string_view s) {
  const auto d = Sha256::hash(s);
  return hex_encode(d);
}

TEST(Sha1, KnownAnswers) {
  EXPECT_EQ(sha1_hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(sha1_hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(sha1_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(sha1_hex("The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1, MillionA) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_encode(h.finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const std::string msg =
      "authorized private keyword search over encrypted data";
  Sha1 h;
  for (char c : msg) h.update(std::string_view(&c, 1));
  EXPECT_EQ(h.finish(), Sha1::hash(msg));
}

TEST(Sha1, ResetAfterFinish) {
  Sha1 h;
  h.update("first message");
  (void)h.finish();
  h.update("abc");
  EXPECT_EQ(hex_encode(h.finish()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha256, KnownAnswers) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_encode(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg(517, 'x');  // crosses several block boundaries
  Sha256 h;
  h.update(std::string_view(msg).substr(0, 63));
  h.update(std::string_view(msg).substr(63, 65));
  h.update(std::string_view(msg).substr(128));
  EXPECT_EQ(h.finish(), Sha256::hash(msg));
}

}  // namespace
}  // namespace apks
