# Empty compiler generated dependencies file for fig8c_capability.
# This may be replaced when dependencies are built.
