file(REMOVE_RECURSE
  "CMakeFiles/fig8c_capability.dir/fig8c_capability.cpp.o"
  "CMakeFiles/fig8c_capability.dir/fig8c_capability.cpp.o.d"
  "fig8c_capability"
  "fig8c_capability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8c_capability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
