# Empty compiler generated dependencies file for ablation_statistical_attack.
# This may be replaced when dependencies are built.
