file(REMOVE_RECURSE
  "CMakeFiles/ablation_statistical_attack.dir/ablation_statistical_attack.cpp.o"
  "CMakeFiles/ablation_statistical_attack.dir/ablation_statistical_attack.cpp.o.d"
  "ablation_statistical_attack"
  "ablation_statistical_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_statistical_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
