# Empty dependencies file for table_sizes.
# This may be replaced when dependencies are built.
