file(REMOVE_RECURSE
  "CMakeFiles/table_sizes.dir/table_sizes.cpp.o"
  "CMakeFiles/table_sizes.dir/table_sizes.cpp.o.d"
  "table_sizes"
  "table_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
