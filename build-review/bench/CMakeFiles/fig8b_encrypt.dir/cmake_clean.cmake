file(REMOVE_RECURSE
  "CMakeFiles/fig8b_encrypt.dir/fig8b_encrypt.cpp.o"
  "CMakeFiles/fig8b_encrypt.dir/fig8b_encrypt.cpp.o.d"
  "fig8b_encrypt"
  "fig8b_encrypt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_encrypt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
