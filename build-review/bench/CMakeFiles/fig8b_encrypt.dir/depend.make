# Empty dependencies file for fig8b_encrypt.
# This may be replaced when dependencies are built.
