file(REMOVE_RECURSE
  "CMakeFiles/micro_pairing.dir/micro_pairing.cpp.o"
  "CMakeFiles/micro_pairing.dir/micro_pairing.cpp.o.d"
  "micro_pairing"
  "micro_pairing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pairing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
