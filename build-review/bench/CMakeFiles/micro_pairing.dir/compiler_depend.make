# Empty compiler generated dependencies file for micro_pairing.
# This may be replaced when dependencies are built.
