file(REMOVE_RECURSE
  "CMakeFiles/bench_batch_search.dir/bench_batch_search.cpp.o"
  "CMakeFiles/bench_batch_search.dir/bench_batch_search.cpp.o.d"
  "bench_batch_search"
  "bench_batch_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batch_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
