# Empty dependencies file for bench_batch_search.
# This may be replaced when dependencies are built.
