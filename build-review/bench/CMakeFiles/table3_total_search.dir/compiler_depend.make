# Empty compiler generated dependencies file for table3_total_search.
# This may be replaced when dependencies are built.
