file(REMOVE_RECURSE
  "CMakeFiles/table3_total_search.dir/table3_total_search.cpp.o"
  "CMakeFiles/table3_total_search.dir/table3_total_search.cpp.o.d"
  "table3_total_search"
  "table3_total_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_total_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
