# Empty compiler generated dependencies file for cost_model_check.
# This may be replaced when dependencies are built.
