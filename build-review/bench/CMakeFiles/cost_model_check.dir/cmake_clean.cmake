file(REMOVE_RECURSE
  "CMakeFiles/cost_model_check.dir/cost_model_check.cpp.o"
  "CMakeFiles/cost_model_check.dir/cost_model_check.cpp.o.d"
  "cost_model_check"
  "cost_model_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_model_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
