# Empty dependencies file for bench_msm.
# This may be replaced when dependencies are built.
