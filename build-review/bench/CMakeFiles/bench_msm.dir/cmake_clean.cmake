file(REMOVE_RECURSE
  "CMakeFiles/bench_msm.dir/bench_msm.cpp.o"
  "CMakeFiles/bench_msm.dir/bench_msm.cpp.o.d"
  "bench_msm"
  "bench_msm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_msm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
