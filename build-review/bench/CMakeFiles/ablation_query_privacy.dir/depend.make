# Empty dependencies file for ablation_query_privacy.
# This may be replaced when dependencies are built.
