file(REMOVE_RECURSE
  "CMakeFiles/ablation_query_privacy.dir/ablation_query_privacy.cpp.o"
  "CMakeFiles/ablation_query_privacy.dir/ablation_query_privacy.cpp.o.d"
  "ablation_query_privacy"
  "ablation_query_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_query_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
