# Empty dependencies file for fig8a_setup.
# This may be replaced when dependencies are built.
