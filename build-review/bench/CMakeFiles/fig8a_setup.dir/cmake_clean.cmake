file(REMOVE_RECURSE
  "CMakeFiles/fig8a_setup.dir/fig8a_setup.cpp.o"
  "CMakeFiles/fig8a_setup.dir/fig8a_setup.cpp.o.d"
  "fig8a_setup"
  "fig8a_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
