
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8a_setup.cpp" "bench/CMakeFiles/fig8a_setup.dir/fig8a_setup.cpp.o" "gcc" "bench/CMakeFiles/fig8a_setup.dir/fig8a_setup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/apks_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/data/CMakeFiles/apks_data.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mrqed/CMakeFiles/apks_mrqed.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cloud/CMakeFiles/apks_cloud.dir/DependInfo.cmake"
  "/root/repo/build-review/src/auth/CMakeFiles/apks_auth.dir/DependInfo.cmake"
  "/root/repo/build-review/src/store/CMakeFiles/apks_store.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hpe/CMakeFiles/apks_hpe.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dpvs/CMakeFiles/apks_dpvs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/pairing/CMakeFiles/apks_pairing.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ec/CMakeFiles/apks_ec.dir/DependInfo.cmake"
  "/root/repo/build-review/src/math/CMakeFiles/apks_math.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/apks_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
