file(REMOVE_RECURSE
  "CMakeFiles/ablation_auth_overhead.dir/ablation_auth_overhead.cpp.o"
  "CMakeFiles/ablation_auth_overhead.dir/ablation_auth_overhead.cpp.o.d"
  "ablation_auth_overhead"
  "ablation_auth_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_auth_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
