# Empty compiler generated dependencies file for ablation_auth_overhead.
# This may be replaced when dependencies are built.
