# Empty compiler generated dependencies file for ablation_range_cover.
# This may be replaced when dependencies are built.
