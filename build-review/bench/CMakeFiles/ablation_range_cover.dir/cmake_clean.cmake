file(REMOVE_RECURSE
  "CMakeFiles/ablation_range_cover.dir/ablation_range_cover.cpp.o"
  "CMakeFiles/ablation_range_cover.dir/ablation_range_cover.cpp.o.d"
  "ablation_range_cover"
  "ablation_range_cover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_range_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
