# Empty compiler generated dependencies file for ablation_shared_sum.
# This may be replaced when dependencies are built.
