file(REMOVE_RECURSE
  "CMakeFiles/ablation_shared_sum.dir/ablation_shared_sum.cpp.o"
  "CMakeFiles/ablation_shared_sum.dir/ablation_shared_sum.cpp.o.d"
  "ablation_shared_sum"
  "ablation_shared_sum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shared_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
