file(REMOVE_RECURSE
  "CMakeFiles/bench_store.dir/bench_store.cpp.o"
  "CMakeFiles/bench_store.dir/bench_store.cpp.o.d"
  "bench_store"
  "bench_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
