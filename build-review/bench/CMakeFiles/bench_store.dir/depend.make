# Empty dependencies file for bench_store.
# This may be replaced when dependencies are built.
