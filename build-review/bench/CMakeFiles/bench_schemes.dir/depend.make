# Empty dependencies file for bench_schemes.
# This may be replaced when dependencies are built.
