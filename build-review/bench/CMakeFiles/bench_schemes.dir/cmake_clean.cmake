file(REMOVE_RECURSE
  "CMakeFiles/bench_schemes.dir/bench_schemes.cpp.o"
  "CMakeFiles/bench_schemes.dir/bench_schemes.cpp.o.d"
  "bench_schemes"
  "bench_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
