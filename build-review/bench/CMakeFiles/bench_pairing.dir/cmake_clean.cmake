file(REMOVE_RECURSE
  "CMakeFiles/bench_pairing.dir/bench_pairing.cpp.o"
  "CMakeFiles/bench_pairing.dir/bench_pairing.cpp.o.d"
  "bench_pairing"
  "bench_pairing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pairing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
