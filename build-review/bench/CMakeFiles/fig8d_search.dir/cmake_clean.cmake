file(REMOVE_RECURSE
  "CMakeFiles/fig8d_search.dir/fig8d_search.cpp.o"
  "CMakeFiles/fig8d_search.dir/fig8d_search.cpp.o.d"
  "fig8d_search"
  "fig8d_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8d_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
