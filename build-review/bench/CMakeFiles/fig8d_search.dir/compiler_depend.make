# Empty compiler generated dependencies file for fig8d_search.
# This may be replaced when dependencies are built.
