file(REMOVE_RECURSE
  "CMakeFiles/mrqed_test.dir/mrqed_test.cpp.o"
  "CMakeFiles/mrqed_test.dir/mrqed_test.cpp.o.d"
  "mrqed_test"
  "mrqed_test.pdb"
  "mrqed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrqed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
