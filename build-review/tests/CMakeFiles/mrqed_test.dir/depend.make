# Empty dependencies file for mrqed_test.
# This may be replaced when dependencies are built.
