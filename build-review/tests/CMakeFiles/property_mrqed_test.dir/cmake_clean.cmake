file(REMOVE_RECURSE
  "CMakeFiles/property_mrqed_test.dir/property_mrqed_test.cpp.o"
  "CMakeFiles/property_mrqed_test.dir/property_mrqed_test.cpp.o.d"
  "property_mrqed_test"
  "property_mrqed_test.pdb"
  "property_mrqed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_mrqed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
