# Empty dependencies file for property_mrqed_test.
# This may be replaced when dependencies are built.
