file(REMOVE_RECURSE
  "CMakeFiles/curve_test.dir/curve_test.cpp.o"
  "CMakeFiles/curve_test.dir/curve_test.cpp.o.d"
  "curve_test"
  "curve_test.pdb"
  "curve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
