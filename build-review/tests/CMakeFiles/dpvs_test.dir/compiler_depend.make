# Empty compiler generated dependencies file for dpvs_test.
# This may be replaced when dependencies are built.
