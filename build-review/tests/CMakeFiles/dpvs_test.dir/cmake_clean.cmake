file(REMOVE_RECURSE
  "CMakeFiles/dpvs_test.dir/dpvs_test.cpp.o"
  "CMakeFiles/dpvs_test.dir/dpvs_test.cpp.o.d"
  "dpvs_test"
  "dpvs_test.pdb"
  "dpvs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpvs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
