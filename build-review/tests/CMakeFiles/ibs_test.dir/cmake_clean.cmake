file(REMOVE_RECURSE
  "CMakeFiles/ibs_test.dir/ibs_test.cpp.o"
  "CMakeFiles/ibs_test.dir/ibs_test.cpp.o.d"
  "ibs_test"
  "ibs_test.pdb"
  "ibs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
