# Empty compiler generated dependencies file for ibs_test.
# This may be replaced when dependencies are built.
