file(REMOVE_RECURSE
  "CMakeFiles/hpe_hier_test.dir/hpe_hier_test.cpp.o"
  "CMakeFiles/hpe_hier_test.dir/hpe_hier_test.cpp.o.d"
  "hpe_hier_test"
  "hpe_hier_test.pdb"
  "hpe_hier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpe_hier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
