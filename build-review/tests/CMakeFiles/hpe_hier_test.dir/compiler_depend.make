# Empty compiler generated dependencies file for hpe_hier_test.
# This may be replaced when dependencies are built.
