file(REMOVE_RECURSE
  "CMakeFiles/multi_pairing_test.dir/multi_pairing_test.cpp.o"
  "CMakeFiles/multi_pairing_test.dir/multi_pairing_test.cpp.o.d"
  "multi_pairing_test"
  "multi_pairing_test.pdb"
  "multi_pairing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_pairing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
