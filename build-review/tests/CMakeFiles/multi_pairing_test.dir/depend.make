# Empty dependencies file for multi_pairing_test.
# This may be replaced when dependencies are built.
