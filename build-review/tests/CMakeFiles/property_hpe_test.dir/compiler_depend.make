# Empty compiler generated dependencies file for property_hpe_test.
# This may be replaced when dependencies are built.
