file(REMOVE_RECURSE
  "CMakeFiles/property_hpe_test.dir/property_hpe_test.cpp.o"
  "CMakeFiles/property_hpe_test.dir/property_hpe_test.cpp.o.d"
  "property_hpe_test"
  "property_hpe_test.pdb"
  "property_hpe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_hpe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
