file(REMOVE_RECURSE
  "CMakeFiles/aead_test.dir/aead_test.cpp.o"
  "CMakeFiles/aead_test.dir/aead_test.cpp.o.d"
  "aead_test"
  "aead_test.pdb"
  "aead_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aead_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
