# Empty compiler generated dependencies file for aead_test.
# This may be replaced when dependencies are built.
