file(REMOVE_RECURSE
  "CMakeFiles/property_core_test.dir/property_core_test.cpp.o"
  "CMakeFiles/property_core_test.dir/property_core_test.cpp.o.d"
  "property_core_test"
  "property_core_test.pdb"
  "property_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
