# Empty compiler generated dependencies file for property_core_test.
# This may be replaced when dependencies are built.
