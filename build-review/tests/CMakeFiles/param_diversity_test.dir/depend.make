# Empty dependencies file for param_diversity_test.
# This may be replaced when dependencies are built.
