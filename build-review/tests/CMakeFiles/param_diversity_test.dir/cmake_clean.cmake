file(REMOVE_RECURSE
  "CMakeFiles/param_diversity_test.dir/param_diversity_test.cpp.o"
  "CMakeFiles/param_diversity_test.dir/param_diversity_test.cpp.o.d"
  "param_diversity_test"
  "param_diversity_test.pdb"
  "param_diversity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_diversity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
