file(REMOVE_RECURSE
  "CMakeFiles/apks_test.dir/apks_test.cpp.o"
  "CMakeFiles/apks_test.dir/apks_test.cpp.o.d"
  "apks_test"
  "apks_test.pdb"
  "apks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
