# Empty dependencies file for apks_test.
# This may be replaced when dependencies are built.
