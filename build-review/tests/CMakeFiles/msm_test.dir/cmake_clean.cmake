file(REMOVE_RECURSE
  "CMakeFiles/msm_test.dir/msm_test.cpp.o"
  "CMakeFiles/msm_test.dir/msm_test.cpp.o.d"
  "msm_test"
  "msm_test.pdb"
  "msm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
