# Empty compiler generated dependencies file for msm_test.
# This may be replaced when dependencies are built.
