# Empty dependencies file for store_recovery_test.
# This may be replaced when dependencies are built.
