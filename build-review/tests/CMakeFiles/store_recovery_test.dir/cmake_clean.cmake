file(REMOVE_RECURSE
  "CMakeFiles/store_recovery_test.dir/store_recovery_test.cpp.o"
  "CMakeFiles/store_recovery_test.dir/store_recovery_test.cpp.o.d"
  "store_recovery_test"
  "store_recovery_test.pdb"
  "store_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
