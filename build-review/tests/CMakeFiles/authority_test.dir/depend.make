# Empty dependencies file for authority_test.
# This may be replaced when dependencies are built.
