file(REMOVE_RECURSE
  "CMakeFiles/authority_test.dir/authority_test.cpp.o"
  "CMakeFiles/authority_test.dir/authority_test.cpp.o.d"
  "authority_test"
  "authority_test.pdb"
  "authority_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authority_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
