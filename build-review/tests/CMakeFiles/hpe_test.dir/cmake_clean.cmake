file(REMOVE_RECURSE
  "CMakeFiles/hpe_test.dir/hpe_test.cpp.o"
  "CMakeFiles/hpe_test.dir/hpe_test.cpp.o.d"
  "hpe_test"
  "hpe_test.pdb"
  "hpe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
