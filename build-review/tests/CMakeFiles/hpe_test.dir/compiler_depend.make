# Empty compiler generated dependencies file for hpe_test.
# This may be replaced when dependencies are built.
