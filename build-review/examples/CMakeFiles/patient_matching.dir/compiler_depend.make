# Empty compiler generated dependencies file for patient_matching.
# This may be replaced when dependencies are built.
