file(REMOVE_RECURSE
  "CMakeFiles/patient_matching.dir/patient_matching.cpp.o"
  "CMakeFiles/patient_matching.dir/patient_matching.cpp.o.d"
  "patient_matching"
  "patient_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patient_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
