file(REMOVE_RECURSE
  "CMakeFiles/query_privacy.dir/query_privacy.cpp.o"
  "CMakeFiles/query_privacy.dir/query_privacy.cpp.o.d"
  "query_privacy"
  "query_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
