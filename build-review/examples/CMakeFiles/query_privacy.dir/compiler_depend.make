# Empty compiler generated dependencies file for query_privacy.
# This may be replaced when dependencies are built.
