# Empty compiler generated dependencies file for sealed_documents.
# This may be replaced when dependencies are built.
