file(REMOVE_RECURSE
  "CMakeFiles/sealed_documents.dir/sealed_documents.cpp.o"
  "CMakeFiles/sealed_documents.dir/sealed_documents.cpp.o.d"
  "sealed_documents"
  "sealed_documents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sealed_documents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
