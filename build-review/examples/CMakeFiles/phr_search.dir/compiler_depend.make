# Empty compiler generated dependencies file for phr_search.
# This may be replaced when dependencies are built.
