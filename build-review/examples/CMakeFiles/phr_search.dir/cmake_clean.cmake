file(REMOVE_RECURSE
  "CMakeFiles/phr_search.dir/phr_search.cpp.o"
  "CMakeFiles/phr_search.dir/phr_search.cpp.o.d"
  "phr_search"
  "phr_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phr_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
