file(REMOVE_RECURSE
  "libapks_hpe.a"
)
