file(REMOVE_RECURSE
  "CMakeFiles/apks_hpe.dir/hpe.cpp.o"
  "CMakeFiles/apks_hpe.dir/hpe.cpp.o.d"
  "CMakeFiles/apks_hpe.dir/hpe_hier.cpp.o"
  "CMakeFiles/apks_hpe.dir/hpe_hier.cpp.o.d"
  "CMakeFiles/apks_hpe.dir/hpe_plus.cpp.o"
  "CMakeFiles/apks_hpe.dir/hpe_plus.cpp.o.d"
  "CMakeFiles/apks_hpe.dir/serialize.cpp.o"
  "CMakeFiles/apks_hpe.dir/serialize.cpp.o.d"
  "libapks_hpe.a"
  "libapks_hpe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apks_hpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
