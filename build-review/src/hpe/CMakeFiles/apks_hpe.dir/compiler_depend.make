# Empty compiler generated dependencies file for apks_hpe.
# This may be replaced when dependencies are built.
