file(REMOVE_RECURSE
  "libapks_net.a"
)
