# Empty compiler generated dependencies file for apks_net.
# This may be replaced when dependencies are built.
