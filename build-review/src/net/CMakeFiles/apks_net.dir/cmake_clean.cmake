file(REMOVE_RECURSE
  "CMakeFiles/apks_net.dir/client.cpp.o"
  "CMakeFiles/apks_net.dir/client.cpp.o.d"
  "CMakeFiles/apks_net.dir/server.cpp.o"
  "CMakeFiles/apks_net.dir/server.cpp.o.d"
  "CMakeFiles/apks_net.dir/wire.cpp.o"
  "CMakeFiles/apks_net.dir/wire.cpp.o.d"
  "libapks_net.a"
  "libapks_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apks_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
