# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("math")
subdirs("ec")
subdirs("pairing")
subdirs("dpvs")
subdirs("hpe")
subdirs("core")
subdirs("store")
subdirs("auth")
subdirs("cloud")
subdirs("net")
subdirs("data")
subdirs("mrqed")
