# Empty compiler generated dependencies file for apks_ec.
# This may be replaced when dependencies are built.
