file(REMOVE_RECURSE
  "libapks_ec.a"
)
