
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ec/curve.cpp" "src/ec/CMakeFiles/apks_ec.dir/curve.cpp.o" "gcc" "src/ec/CMakeFiles/apks_ec.dir/curve.cpp.o.d"
  "/root/repo/src/ec/fixed_base.cpp" "src/ec/CMakeFiles/apks_ec.dir/fixed_base.cpp.o" "gcc" "src/ec/CMakeFiles/apks_ec.dir/fixed_base.cpp.o.d"
  "/root/repo/src/ec/params.cpp" "src/ec/CMakeFiles/apks_ec.dir/params.cpp.o" "gcc" "src/ec/CMakeFiles/apks_ec.dir/params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/math/CMakeFiles/apks_math.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/apks_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
