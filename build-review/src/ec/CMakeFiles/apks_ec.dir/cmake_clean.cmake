file(REMOVE_RECURSE
  "CMakeFiles/apks_ec.dir/curve.cpp.o"
  "CMakeFiles/apks_ec.dir/curve.cpp.o.d"
  "CMakeFiles/apks_ec.dir/fixed_base.cpp.o"
  "CMakeFiles/apks_ec.dir/fixed_base.cpp.o.d"
  "CMakeFiles/apks_ec.dir/params.cpp.o"
  "CMakeFiles/apks_ec.dir/params.cpp.o.d"
  "libapks_ec.a"
  "libapks_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apks_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
