file(REMOVE_RECURSE
  "CMakeFiles/apks_math.dir/fp_lanes.cpp.o"
  "CMakeFiles/apks_math.dir/fp_lanes.cpp.o.d"
  "CMakeFiles/apks_math.dir/fp_lanes_avx2.cpp.o"
  "CMakeFiles/apks_math.dir/fp_lanes_avx2.cpp.o.d"
  "CMakeFiles/apks_math.dir/fp_lanes_avx512.cpp.o"
  "CMakeFiles/apks_math.dir/fp_lanes_avx512.cpp.o.d"
  "CMakeFiles/apks_math.dir/matrix_fq.cpp.o"
  "CMakeFiles/apks_math.dir/matrix_fq.cpp.o.d"
  "libapks_math.a"
  "libapks_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apks_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
