# Empty dependencies file for apks_math.
# This may be replaced when dependencies are built.
