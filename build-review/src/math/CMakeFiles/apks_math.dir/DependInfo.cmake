
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/fp_lanes.cpp" "src/math/CMakeFiles/apks_math.dir/fp_lanes.cpp.o" "gcc" "src/math/CMakeFiles/apks_math.dir/fp_lanes.cpp.o.d"
  "/root/repo/src/math/fp_lanes_avx2.cpp" "src/math/CMakeFiles/apks_math.dir/fp_lanes_avx2.cpp.o" "gcc" "src/math/CMakeFiles/apks_math.dir/fp_lanes_avx2.cpp.o.d"
  "/root/repo/src/math/fp_lanes_avx512.cpp" "src/math/CMakeFiles/apks_math.dir/fp_lanes_avx512.cpp.o" "gcc" "src/math/CMakeFiles/apks_math.dir/fp_lanes_avx512.cpp.o.d"
  "/root/repo/src/math/matrix_fq.cpp" "src/math/CMakeFiles/apks_math.dir/matrix_fq.cpp.o" "gcc" "src/math/CMakeFiles/apks_math.dir/matrix_fq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/apks_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
