file(REMOVE_RECURSE
  "libapks_math.a"
)
