file(REMOVE_RECURSE
  "CMakeFiles/apks_data.dir/nursery.cpp.o"
  "CMakeFiles/apks_data.dir/nursery.cpp.o.d"
  "CMakeFiles/apks_data.dir/phr.cpp.o"
  "CMakeFiles/apks_data.dir/phr.cpp.o.d"
  "CMakeFiles/apks_data.dir/workload.cpp.o"
  "CMakeFiles/apks_data.dir/workload.cpp.o.d"
  "libapks_data.a"
  "libapks_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apks_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
