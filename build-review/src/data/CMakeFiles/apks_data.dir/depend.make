# Empty dependencies file for apks_data.
# This may be replaced when dependencies are built.
