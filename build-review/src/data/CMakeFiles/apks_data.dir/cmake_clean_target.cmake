file(REMOVE_RECURSE
  "libapks_data.a"
)
