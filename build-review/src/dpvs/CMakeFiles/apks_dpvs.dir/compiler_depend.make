# Empty compiler generated dependencies file for apks_dpvs.
# This may be replaced when dependencies are built.
