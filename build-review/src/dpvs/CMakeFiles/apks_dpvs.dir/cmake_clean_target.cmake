file(REMOVE_RECURSE
  "libapks_dpvs.a"
)
