file(REMOVE_RECURSE
  "CMakeFiles/apks_dpvs.dir/dpvs.cpp.o"
  "CMakeFiles/apks_dpvs.dir/dpvs.cpp.o.d"
  "CMakeFiles/apks_dpvs.dir/precomp_basis.cpp.o"
  "CMakeFiles/apks_dpvs.dir/precomp_basis.cpp.o.d"
  "libapks_dpvs.a"
  "libapks_dpvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apks_dpvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
