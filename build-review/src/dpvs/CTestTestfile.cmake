# CMake generated Testfile for 
# Source directory: /root/repo/src/dpvs
# Build directory: /root/repo/build-review/src/dpvs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
