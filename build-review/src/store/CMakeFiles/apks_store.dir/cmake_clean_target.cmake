file(REMOVE_RECURSE
  "libapks_store.a"
)
