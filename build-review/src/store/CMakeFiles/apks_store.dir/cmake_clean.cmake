file(REMOVE_RECURSE
  "CMakeFiles/apks_store.dir/fs.cpp.o"
  "CMakeFiles/apks_store.dir/fs.cpp.o.d"
  "CMakeFiles/apks_store.dir/index_store.cpp.o"
  "CMakeFiles/apks_store.dir/index_store.cpp.o.d"
  "CMakeFiles/apks_store.dir/segment.cpp.o"
  "CMakeFiles/apks_store.dir/segment.cpp.o.d"
  "CMakeFiles/apks_store.dir/sharded_store.cpp.o"
  "CMakeFiles/apks_store.dir/sharded_store.cpp.o.d"
  "libapks_store.a"
  "libapks_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apks_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
