# Empty dependencies file for apks_store.
# This may be replaced when dependencies are built.
