file(REMOVE_RECURSE
  "CMakeFiles/apks_cloud.dir/docstore.cpp.o"
  "CMakeFiles/apks_cloud.dir/docstore.cpp.o.d"
  "CMakeFiles/apks_cloud.dir/proxy_pool.cpp.o"
  "CMakeFiles/apks_cloud.dir/proxy_pool.cpp.o.d"
  "CMakeFiles/apks_cloud.dir/search_engine.cpp.o"
  "CMakeFiles/apks_cloud.dir/search_engine.cpp.o.d"
  "CMakeFiles/apks_cloud.dir/server.cpp.o"
  "CMakeFiles/apks_cloud.dir/server.cpp.o.d"
  "CMakeFiles/apks_cloud.dir/verdict_cache.cpp.o"
  "CMakeFiles/apks_cloud.dir/verdict_cache.cpp.o.d"
  "libapks_cloud.a"
  "libapks_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apks_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
