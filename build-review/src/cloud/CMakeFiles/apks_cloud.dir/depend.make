# Empty dependencies file for apks_cloud.
# This may be replaced when dependencies are built.
