file(REMOVE_RECURSE
  "libapks_cloud.a"
)
