file(REMOVE_RECURSE
  "libapks_pairing.a"
)
