# Empty dependencies file for apks_pairing.
# This may be replaced when dependencies are built.
