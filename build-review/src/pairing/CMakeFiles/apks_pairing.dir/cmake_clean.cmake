file(REMOVE_RECURSE
  "CMakeFiles/apks_pairing.dir/pairing.cpp.o"
  "CMakeFiles/apks_pairing.dir/pairing.cpp.o.d"
  "CMakeFiles/apks_pairing.dir/pairing_block.cpp.o"
  "CMakeFiles/apks_pairing.dir/pairing_block.cpp.o.d"
  "libapks_pairing.a"
  "libapks_pairing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apks_pairing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
