# Empty compiler generated dependencies file for apks_auth.
# This may be replaced when dependencies are built.
