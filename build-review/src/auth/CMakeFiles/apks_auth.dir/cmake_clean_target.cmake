file(REMOVE_RECURSE
  "libapks_auth.a"
)
