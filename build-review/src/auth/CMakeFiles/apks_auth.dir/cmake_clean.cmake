file(REMOVE_RECURSE
  "CMakeFiles/apks_auth.dir/authority.cpp.o"
  "CMakeFiles/apks_auth.dir/authority.cpp.o.d"
  "CMakeFiles/apks_auth.dir/ibs.cpp.o"
  "CMakeFiles/apks_auth.dir/ibs.cpp.o.d"
  "libapks_auth.a"
  "libapks_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apks_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
