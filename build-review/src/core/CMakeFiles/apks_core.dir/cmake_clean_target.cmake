file(REMOVE_RECURSE
  "libapks_core.a"
)
