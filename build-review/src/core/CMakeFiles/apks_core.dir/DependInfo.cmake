
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/apks.cpp" "src/core/CMakeFiles/apks_core.dir/apks.cpp.o" "gcc" "src/core/CMakeFiles/apks_core.dir/apks.cpp.o.d"
  "/root/repo/src/core/apks_backend.cpp" "src/core/CMakeFiles/apks_core.dir/apks_backend.cpp.o" "gcc" "src/core/CMakeFiles/apks_core.dir/apks_backend.cpp.o.d"
  "/root/repo/src/core/backend.cpp" "src/core/CMakeFiles/apks_core.dir/backend.cpp.o" "gcc" "src/core/CMakeFiles/apks_core.dir/backend.cpp.o.d"
  "/root/repo/src/core/capability_digest.cpp" "src/core/CMakeFiles/apks_core.dir/capability_digest.cpp.o" "gcc" "src/core/CMakeFiles/apks_core.dir/capability_digest.cpp.o.d"
  "/root/repo/src/core/encoding.cpp" "src/core/CMakeFiles/apks_core.dir/encoding.cpp.o" "gcc" "src/core/CMakeFiles/apks_core.dir/encoding.cpp.o.d"
  "/root/repo/src/core/hierarchy.cpp" "src/core/CMakeFiles/apks_core.dir/hierarchy.cpp.o" "gcc" "src/core/CMakeFiles/apks_core.dir/hierarchy.cpp.o.d"
  "/root/repo/src/core/query_parser.cpp" "src/core/CMakeFiles/apks_core.dir/query_parser.cpp.o" "gcc" "src/core/CMakeFiles/apks_core.dir/query_parser.cpp.o.d"
  "/root/repo/src/core/schema.cpp" "src/core/CMakeFiles/apks_core.dir/schema.cpp.o" "gcc" "src/core/CMakeFiles/apks_core.dir/schema.cpp.o.d"
  "/root/repo/src/core/serialize_apks.cpp" "src/core/CMakeFiles/apks_core.dir/serialize_apks.cpp.o" "gcc" "src/core/CMakeFiles/apks_core.dir/serialize_apks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/hpe/CMakeFiles/apks_hpe.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dpvs/CMakeFiles/apks_dpvs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/pairing/CMakeFiles/apks_pairing.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ec/CMakeFiles/apks_ec.dir/DependInfo.cmake"
  "/root/repo/build-review/src/math/CMakeFiles/apks_math.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/apks_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
