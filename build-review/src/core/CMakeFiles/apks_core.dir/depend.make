# Empty dependencies file for apks_core.
# This may be replaced when dependencies are built.
