file(REMOVE_RECURSE
  "CMakeFiles/apks_core.dir/apks.cpp.o"
  "CMakeFiles/apks_core.dir/apks.cpp.o.d"
  "CMakeFiles/apks_core.dir/apks_backend.cpp.o"
  "CMakeFiles/apks_core.dir/apks_backend.cpp.o.d"
  "CMakeFiles/apks_core.dir/backend.cpp.o"
  "CMakeFiles/apks_core.dir/backend.cpp.o.d"
  "CMakeFiles/apks_core.dir/capability_digest.cpp.o"
  "CMakeFiles/apks_core.dir/capability_digest.cpp.o.d"
  "CMakeFiles/apks_core.dir/encoding.cpp.o"
  "CMakeFiles/apks_core.dir/encoding.cpp.o.d"
  "CMakeFiles/apks_core.dir/hierarchy.cpp.o"
  "CMakeFiles/apks_core.dir/hierarchy.cpp.o.d"
  "CMakeFiles/apks_core.dir/query_parser.cpp.o"
  "CMakeFiles/apks_core.dir/query_parser.cpp.o.d"
  "CMakeFiles/apks_core.dir/schema.cpp.o"
  "CMakeFiles/apks_core.dir/schema.cpp.o.d"
  "CMakeFiles/apks_core.dir/serialize_apks.cpp.o"
  "CMakeFiles/apks_core.dir/serialize_apks.cpp.o.d"
  "libapks_core.a"
  "libapks_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apks_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
