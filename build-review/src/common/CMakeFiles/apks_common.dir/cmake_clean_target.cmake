file(REMOVE_RECURSE
  "libapks_common.a"
)
