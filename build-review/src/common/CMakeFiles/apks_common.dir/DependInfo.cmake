
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/aead.cpp" "src/common/CMakeFiles/apks_common.dir/aead.cpp.o" "gcc" "src/common/CMakeFiles/apks_common.dir/aead.cpp.o.d"
  "/root/repo/src/common/bytes.cpp" "src/common/CMakeFiles/apks_common.dir/bytes.cpp.o" "gcc" "src/common/CMakeFiles/apks_common.dir/bytes.cpp.o.d"
  "/root/repo/src/common/chacha.cpp" "src/common/CMakeFiles/apks_common.dir/chacha.cpp.o" "gcc" "src/common/CMakeFiles/apks_common.dir/chacha.cpp.o.d"
  "/root/repo/src/common/chacha_rng.cpp" "src/common/CMakeFiles/apks_common.dir/chacha_rng.cpp.o" "gcc" "src/common/CMakeFiles/apks_common.dir/chacha_rng.cpp.o.d"
  "/root/repo/src/common/cpu_features.cpp" "src/common/CMakeFiles/apks_common.dir/cpu_features.cpp.o" "gcc" "src/common/CMakeFiles/apks_common.dir/cpu_features.cpp.o.d"
  "/root/repo/src/common/crc32.cpp" "src/common/CMakeFiles/apks_common.dir/crc32.cpp.o" "gcc" "src/common/CMakeFiles/apks_common.dir/crc32.cpp.o.d"
  "/root/repo/src/common/failpoint.cpp" "src/common/CMakeFiles/apks_common.dir/failpoint.cpp.o" "gcc" "src/common/CMakeFiles/apks_common.dir/failpoint.cpp.o.d"
  "/root/repo/src/common/hex.cpp" "src/common/CMakeFiles/apks_common.dir/hex.cpp.o" "gcc" "src/common/CMakeFiles/apks_common.dir/hex.cpp.o.d"
  "/root/repo/src/common/limbs.cpp" "src/common/CMakeFiles/apks_common.dir/limbs.cpp.o" "gcc" "src/common/CMakeFiles/apks_common.dir/limbs.cpp.o.d"
  "/root/repo/src/common/sha1.cpp" "src/common/CMakeFiles/apks_common.dir/sha1.cpp.o" "gcc" "src/common/CMakeFiles/apks_common.dir/sha1.cpp.o.d"
  "/root/repo/src/common/sha256.cpp" "src/common/CMakeFiles/apks_common.dir/sha256.cpp.o" "gcc" "src/common/CMakeFiles/apks_common.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
