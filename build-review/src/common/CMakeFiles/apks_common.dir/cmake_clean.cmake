file(REMOVE_RECURSE
  "CMakeFiles/apks_common.dir/aead.cpp.o"
  "CMakeFiles/apks_common.dir/aead.cpp.o.d"
  "CMakeFiles/apks_common.dir/bytes.cpp.o"
  "CMakeFiles/apks_common.dir/bytes.cpp.o.d"
  "CMakeFiles/apks_common.dir/chacha.cpp.o"
  "CMakeFiles/apks_common.dir/chacha.cpp.o.d"
  "CMakeFiles/apks_common.dir/chacha_rng.cpp.o"
  "CMakeFiles/apks_common.dir/chacha_rng.cpp.o.d"
  "CMakeFiles/apks_common.dir/cpu_features.cpp.o"
  "CMakeFiles/apks_common.dir/cpu_features.cpp.o.d"
  "CMakeFiles/apks_common.dir/crc32.cpp.o"
  "CMakeFiles/apks_common.dir/crc32.cpp.o.d"
  "CMakeFiles/apks_common.dir/failpoint.cpp.o"
  "CMakeFiles/apks_common.dir/failpoint.cpp.o.d"
  "CMakeFiles/apks_common.dir/hex.cpp.o"
  "CMakeFiles/apks_common.dir/hex.cpp.o.d"
  "CMakeFiles/apks_common.dir/limbs.cpp.o"
  "CMakeFiles/apks_common.dir/limbs.cpp.o.d"
  "CMakeFiles/apks_common.dir/sha1.cpp.o"
  "CMakeFiles/apks_common.dir/sha1.cpp.o.d"
  "CMakeFiles/apks_common.dir/sha256.cpp.o"
  "CMakeFiles/apks_common.dir/sha256.cpp.o.d"
  "libapks_common.a"
  "libapks_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apks_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
