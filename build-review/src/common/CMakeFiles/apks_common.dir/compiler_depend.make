# Empty compiler generated dependencies file for apks_common.
# This may be replaced when dependencies are built.
