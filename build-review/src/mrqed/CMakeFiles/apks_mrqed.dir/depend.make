# Empty dependencies file for apks_mrqed.
# This may be replaced when dependencies are built.
