file(REMOVE_RECURSE
  "libapks_mrqed.a"
)
