file(REMOVE_RECURSE
  "CMakeFiles/apks_mrqed.dir/aibe.cpp.o"
  "CMakeFiles/apks_mrqed.dir/aibe.cpp.o.d"
  "CMakeFiles/apks_mrqed.dir/interval_tree.cpp.o"
  "CMakeFiles/apks_mrqed.dir/interval_tree.cpp.o.d"
  "CMakeFiles/apks_mrqed.dir/mrqed.cpp.o"
  "CMakeFiles/apks_mrqed.dir/mrqed.cpp.o.d"
  "CMakeFiles/apks_mrqed.dir/mrqed_backend.cpp.o"
  "CMakeFiles/apks_mrqed.dir/mrqed_backend.cpp.o.d"
  "CMakeFiles/apks_mrqed.dir/serialize.cpp.o"
  "CMakeFiles/apks_mrqed.dir/serialize.cpp.o.d"
  "libapks_mrqed.a"
  "libapks_mrqed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apks_mrqed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
