# Empty dependencies file for apks_cli.
# This may be replaced when dependencies are built.
