file(REMOVE_RECURSE
  "CMakeFiles/apks_cli.dir/apks_cli.cpp.o"
  "CMakeFiles/apks_cli.dir/apks_cli.cpp.o.d"
  "apks_cli"
  "apks_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apks_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
