file(REMOVE_RECURSE
  "CMakeFiles/gen_params.dir/gen_params.cpp.o"
  "CMakeFiles/gen_params.dir/gen_params.cpp.o.d"
  "gen_params"
  "gen_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
