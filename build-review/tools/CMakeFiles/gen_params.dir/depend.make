# Empty dependencies file for gen_params.
# This may be replaced when dependencies are built.
