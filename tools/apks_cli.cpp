// apks_cli — file-based command-line front end for the serving stack.
//
// Every command takes --scheme apks|apks+|mrqed (default apks) and runs
// through the scheme's SearchBackend, so all three constructions share the
// same ingest/serve/batch machinery:
//
//   apks_cli setup    --schema phr --dir KEYS
//   apks_cli genindex --schema phr --dir KEYS --values "61, Male, Boston, diabetes, Hospital B" --out idx.bin
//   apks_cli gencap   --schema phr --dir KEYS --query "sex = Male; illness in diabetes" --out cap.bin
//   apks_cli delegate --schema phr --cap cap.bin --query "provider = Hospital B" --out cap2.bin
//   apks_cli search   --schema phr --cap cap.bin idx1.bin idx2.bin ...
//   apks_cli batchsearch --schema phr --caps cap1.bin,cap2.bin [--threads T] idx1.bin ...
//   apks_cli ingest   --schema phr --store DB [--shards N] [--proxy-replicas R] idx1.bin idx2.bin ...
//   apks_cli serve    --schema phr --store DB --caps cap1.bin,cap2.bin [--threads T] [--deadline-ms MS] [--max-inflight N] [--verdict-cache-mb MB]
//   apks_cli serve    --schema phr --store DB --listen 127.0.0.1:7700 [--grace-ms MS] [--stats-interval-s S]
//   apks_cli rsearch  --schema phr --connect 127.0.0.1:7700 --cap cap.bin [--deadline-ms MS] [--partial-ok]
//   apks_cli cluster-serve --schema phr --store DB --nodes a=H:P,b=H:P --node-index 0 [--replicas R] [--map-version V]
//   apks_cli rsearch  --schema phr --cluster --nodes a=H:P,b=H:P --cap cap.bin --shards N
//                     [--heartbeat-ms MS] [--hedge-delay-ms MS] [--hedge-budget N]
//                     [--node-timeout-ms MS] [--deadline-ms MS] [--partial-ok]
//   apks_cli compact  --store DB
//
// `rsearch --cluster` exits 0 on a complete result, 1 on a fatal error
// (unauthorized query, no live replica for a shard without --partial-ok),
// and 2 on a partial result under --partial-ok.
//
// MRQED^D replaces --schema with --dims D --depth K; --values is a point
// ("3, 1") and --query one range per dimension ("0-3; 1" — `lo-hi`, a
// single value, or `*` for the full domain).
//
// APKS+ uses the same file formats as APKS, but `ingest` runs the backend's
// ingest stage: if KEYS/r.bin (written by `setup --scheme apks+`) is
// readable, every input traverses an in-process proxy pipeline holding
// shares of r; if KEYS/msk.bin is readable, an all-wildcard ingest canary
// is installed and owner-partial (untransformed) indexes are refused.
// With --proxy-replicas R (R > 1) the pipeline is the fault-tolerant
// replicated pool (cloud/proxy_pool.h): uploads fail over between replicas
// and park when a share has no live replica; ingest reports the
// parked/retried counts and drains the queue before exiting.
//
// `serve` degradation knobs: --deadline-ms bounds each batch's scan (the
// batch stops at a block boundary and reports DEADLINE) and --max-inflight
// sheds concurrent batches beyond the limit before any crypto runs.
// --verdict-cache-mb MB enables the per-segment verdict cache: repeated
// queries over sealed segments answer from memoized verdicts instead of
// re-running the pairing scan (stats are printed after the batch).
//
// `serve --listen HOST:PORT` runs the epoll network front end (net/server.h)
// over the loaded store instead of a one-shot batch: sessions authenticate
// with the capability file's query bytes (unchecked mode — the CLI's raw
// capability files carry no authority signature), searches stream back in
// chunks, and SIGINT/SIGTERM drains inflight batches (--grace-ms) before
// exiting 0. A stats thread prints one JSON line of engine/verdict-cache/
// network counters every --stats-interval-s seconds and on shutdown.
// `rsearch` is the matching remote client.
//
// `ingest` appends encrypted-index files into a persistent ShardedStore
// (creating it with --shards partitions on first use) stamped with the
// scheme tag; reopening a store under a different --scheme is refused.
// `serve` reopens the store — reporting crash recovery if the last writer
// died mid-append — loads it into a CloudServer and answers a query batch;
// `compact` collapses each shard's segment chain and reports the bytes
// reclaimed.
//
// Schemas: "phr" (the paper's PHR case study), "phr-time" (with the
// revocation time dimension), "nursery" (UCI Nursery, d = 2).
// Randomness comes from the OS; pass --seed LABEL for reproducible output.
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "cloud/proxy.h"
#include "cloud/proxy_pool.h"
#include "cluster/coordinator.h"
#include "cluster/node.h"
#include "common/failpoint.h"
#include "cloud/search_engine.h"
#include "cloud/server.h"
#include "core/apks.h"
#include "core/apks_backend.h"
#include "core/apks_plus.h"
#include "core/query_parser.h"
#include "data/nursery.h"
#include "data/phr.h"
#include "hpe/serialize.h"
#include "mrqed/mrqed_backend.h"
#include "mrqed/serialize.h"
#include "net/client.h"
#include "net/server.h"
#include "store/sharded_store.h"

namespace {

using namespace apks;

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "apks_cli: %s\n", msg.c_str());
  std::exit(1);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) die("cannot open " + path);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) die("cannot write " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

Schema make_schema(const std::string& name) {
  if (name == "phr") return phr_schema({.max_or = 2});
  if (name == "phr-time") return phr_schema({.max_or = 2, .with_time = true});
  if (name == "nursery") return nursery_schema(2);
  die("unknown schema '" + name + "' (use phr, phr-time or nursery)");
}

struct Args {
  std::string command;
  std::string scheme = "apks";
  std::string schema = "phr";
  std::string dir = ".";
  std::string out;
  std::string cap;
  std::vector<std::string> caps;
  std::string query;
  std::string values;
  std::string seed;
  std::string store;
  std::size_t shards = 4;
  std::size_t threads = 1;
  std::size_t dims = 2;   // mrqed only
  std::size_t depth = 4;  // mrqed only: domain [0, 2^depth)
  std::size_t proxies = 2;  // apks+ ingest pipeline size
  std::size_t proxy_replicas = 1;  // >1: replicated fault-tolerant pool
  std::uint64_t deadline_ms = 0;   // serve: per-batch scan budget (0 = none)
  std::size_t max_inflight = 0;    // serve: admission limit (0 = unlimited)
  std::size_t verdict_cache_mb = 0;  // serve: verdict cache budget (0 = off)
  std::string listen;   // serve: HOST:PORT to run the network front end
  std::string connect;  // rsearch: HOST:PORT of a serving apks_cli
  std::uint64_t grace_ms = 2000;      // serve --listen: shutdown drain budget
  std::uint64_t stats_interval_s = 10;  // serve --listen: JSON stats cadence
  bool partial_ok = false;  // rsearch: accept prefix results on deadline
  std::string nodes;        // cluster: NAME=HOST:PORT[,NAME=HOST:PORT...]
  std::size_t replicas = 2;     // cluster: replica factor R
  std::size_t node_index = 0;   // cluster-serve: which map entry is me
  std::uint64_t map_version = 1;  // cluster: map epoch (bump on reshape)
  bool cluster = false;           // rsearch: scatter via the coordinator
  std::uint64_t hedge_delay_ms = 0;   // rsearch --cluster: 0 = no hedging
  std::size_t hedge_budget = 2;       // rsearch --cluster: extra RPCs/search
  std::uint64_t heartbeat_ms = 0;     // rsearch --cluster: 0 = no monitor
  std::uint64_t node_timeout_ms = 0;  // rsearch --cluster: per-RPC socket cap
  std::vector<std::string> positional;
};

std::size_t parse_count(const std::string& arg, const std::string& v) {
  try {
    return static_cast<std::size_t>(std::stoul(v));
  } catch (const std::exception&) {
    die(arg + " needs a number, got '" + v + "'");
  }
}

Args parse_args(int argc, char** argv) {
  Args a;
  if (argc < 2) {
    die("usage: apks_cli <setup|genindex|gencap|delegate|search|batchsearch"
        "|ingest|serve|rsearch|cluster-serve|compact> "
        "[--scheme apks|apks+|mrqed] [options]");
  }
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) die("missing value after " + arg);
      return argv[++i];
    };
    if (arg == "--scheme") a.scheme = next();
    else if (arg == "--schema") a.schema = next();
    else if (arg == "--dir") a.dir = next();
    else if (arg == "--out") a.out = next();
    else if (arg == "--cap") a.cap = next();
    else if (arg == "--caps") {
      std::string list = next();
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        const std::string item = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!item.empty()) a.caps.push_back(item);
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (arg == "--threads") {
      a.threads = parse_count(arg, next());
    } else if (arg == "--store") {
      a.store = next();
    } else if (arg == "--shards") {
      a.shards = parse_count(arg, next());
      if (a.shards == 0) die("--shards must be at least 1");
    } else if (arg == "--dims") {
      a.dims = parse_count(arg, next());
      if (a.dims == 0) die("--dims must be at least 1");
    } else if (arg == "--depth") {
      a.depth = parse_count(arg, next());
      if (a.depth == 0 || a.depth > 32) die("--depth must be in [1, 32]");
    } else if (arg == "--proxies") {
      a.proxies = parse_count(arg, next());
      if (a.proxies == 0) die("--proxies must be at least 1");
    } else if (arg == "--proxy-replicas") {
      a.proxy_replicas = parse_count(arg, next());
      if (a.proxy_replicas == 0) die("--proxy-replicas must be at least 1");
    } else if (arg == "--deadline-ms") {
      a.deadline_ms = parse_count(arg, next());
    } else if (arg == "--max-inflight") {
      a.max_inflight = parse_count(arg, next());
    } else if (arg == "--verdict-cache-mb") {
      a.verdict_cache_mb = parse_count(arg, next());
    } else if (arg == "--listen") {
      a.listen = next();
    } else if (arg == "--connect") {
      a.connect = next();
    } else if (arg == "--grace-ms") {
      a.grace_ms = parse_count(arg, next());
    } else if (arg == "--stats-interval-s") {
      a.stats_interval_s = parse_count(arg, next());
    } else if (arg == "--partial-ok") {
      a.partial_ok = true;
    } else if (arg == "--nodes") {
      a.nodes = next();
    } else if (arg == "--replicas") {
      a.replicas = parse_count(arg, next());
      if (a.replicas == 0) die("--replicas must be at least 1");
    } else if (arg == "--node-index") {
      a.node_index = parse_count(arg, next());
    } else if (arg == "--map-version") {
      a.map_version = parse_count(arg, next());
      if (a.map_version == 0) die("--map-version must be at least 1");
    } else if (arg == "--cluster") {
      a.cluster = true;
    } else if (arg == "--hedge-delay-ms") {
      a.hedge_delay_ms = parse_count(arg, next());
    } else if (arg == "--hedge-budget") {
      a.hedge_budget = parse_count(arg, next());
    } else if (arg == "--heartbeat-ms") {
      a.heartbeat_ms = parse_count(arg, next());
    } else if (arg == "--node-timeout-ms") {
      a.node_timeout_ms = parse_count(arg, next());
    }
    else if (arg == "--query") a.query = next();
    else if (arg == "--values") a.values = next();
    else if (arg == "--seed") a.seed = next();
    else if (arg.rfind("--", 0) == 0) die("unknown option " + arg);
    else a.positional.push_back(arg);
  }
  return a;
}

std::unique_ptr<Rng> make_rng(const Args& a) {
  if (!a.seed.empty()) return std::make_unique<ChaChaRng>(a.seed);
  return std::make_unique<SystemRng>();
}

// The CLI's per-scheme bundle: the scheme object plus its SearchBackend.
// The typed pointers stay alive for commands that need scheme-specific
// operations (key generation, delegation); everything downstream of the
// crypto goes through `backend`.
struct Runtime {
  SchemeKind kind = SchemeKind::kApks;
  const Pairing* e = nullptr;
  std::unique_ptr<Apks> apks;       // kApks
  std::unique_ptr<ApksPlus> plus;   // kApksPlus
  std::unique_ptr<Mrqed> mrqed;     // kMrqed
  std::unique_ptr<SearchBackend> backend;

  [[nodiscard]] const Apks& apks_scheme() const {
    if (plus != nullptr) return *plus;
    if (apks != nullptr) return *apks;
    die("this command supports only --scheme apks or apks+");
  }
};

Runtime make_runtime(const Pairing& e, const Args& a) {
  Runtime rt;
  rt.e = &e;
  rt.kind = parse_scheme_kind(a.scheme);
  switch (rt.kind) {
    case SchemeKind::kApks:
      rt.apks = std::make_unique<Apks>(e, make_schema(a.schema));
      rt.backend = std::make_unique<ApksBackend>(*rt.apks);
      break;
    case SchemeKind::kApksPlus:
      rt.plus = std::make_unique<ApksPlus>(e, make_schema(a.schema));
      rt.backend = std::make_unique<ApksPlusBackend>(*rt.plus);
      break;
    case SchemeKind::kMrqed:
      rt.mrqed = std::make_unique<Mrqed>(e, a.dims, a.depth);
      rt.backend = std::make_unique<MrqedBackend>(*rt.mrqed);
      break;
  }
  return rt;
}

// --- CLI file codecs ------------------------------------------------------
// APKS-family index/cap files stay at the HPE level (serialize_ciphertext /
// serialize_key — the formats earlier CLI versions wrote); MRQED files use
// the backend's wire codec directly.

AnyIndex load_index_file(const Runtime& rt, const std::string& path) {
  const std::vector<std::uint8_t> bytes = read_file(path);
  if (rt.kind == SchemeKind::kMrqed) return rt.backend->decode_index(bytes);
  EncryptedIndex enc;
  enc.ct = deserialize_ciphertext(*rt.e, bytes);
  return AnyIndex::own(rt.kind, std::move(enc));
}

AnyQuery load_query_file(const Runtime& rt, const std::string& path) {
  const std::vector<std::uint8_t> bytes = read_file(path);
  if (rt.kind == SchemeKind::kMrqed) return rt.backend->decode_query(bytes);
  Capability cap;
  cap.key = deserialize_key(*rt.e, bytes);
  return AnyQuery::own(rt.kind, std::move(cap));
}

// --- MRQED text formats ---------------------------------------------------

std::vector<std::uint64_t> parse_mrqed_point(const Mrqed& scheme,
                                             const std::string& text) {
  std::vector<std::uint64_t> point;
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t comma = text.find(',', pos);
    const std::string item = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    try {
      point.push_back(std::stoull(item));
    } catch (const std::exception&) {
      die("mrqed --values: expected a number, got '" + item + "'");
    }
    pos = comma == std::string::npos ? comma : comma + 1;
  }
  if (point.size() != scheme.dims()) {
    die("mrqed --values: expected " + std::to_string(scheme.dims()) +
        " coordinates, got " + std::to_string(point.size()));
  }
  return point;
}

std::vector<MrqedRange> parse_mrqed_query(const Mrqed& scheme,
                                          const std::string& text) {
  const std::uint64_t domain_max =
      (scheme.tree().depth() >= 64)
          ? ~0ull
          : (1ull << scheme.tree().depth()) - 1;
  std::vector<MrqedRange> ranges;
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t semi = text.find(';', pos);
    std::string item = text.substr(
        pos, semi == std::string::npos ? std::string::npos : semi - pos);
    // Trim surrounding spaces.
    const std::size_t b = item.find_first_not_of(" \t");
    const std::size_t f = item.find_last_not_of(" \t");
    item = b == std::string::npos ? "" : item.substr(b, f - b + 1);
    MrqedRange range;
    try {
      if (item == "*") {
        range = {0, domain_max};
      } else if (const std::size_t dash = item.find('-');
                 dash != std::string::npos) {
        range.lo = std::stoull(item.substr(0, dash));
        range.hi = std::stoull(item.substr(dash + 1));
      } else {
        range.lo = range.hi = std::stoull(item);
      }
    } catch (const std::exception&) {
      die("mrqed --query: expected `lo-hi`, a value, or `*`; got '" + item +
          "'");
    }
    if (range.lo > range.hi || range.hi > domain_max) {
      die("mrqed --query: range out of domain [0, " +
          std::to_string(domain_max) + "]");
    }
    ranges.push_back(range);
    pos = semi == std::string::npos ? semi : semi + 1;
  }
  if (ranges.size() != scheme.dims()) {
    die("mrqed --query: expected " + std::to_string(scheme.dims()) +
        " ranges, got " + std::to_string(ranges.size()));
  }
  return ranges;
}

// --- APKS+ ingest hooks ---------------------------------------------------
// Installed from whatever key material --dir holds: r.bin arms the proxy
// transformation stage, msk.bin arms the admission canary.

// The two proxy deployments `ingest` can arm: the plain chain (attached as
// the backend's synchronous ingest stage) or, with --proxy-replicas > 1,
// the replicated fault-tolerant pool (driven directly by cmd_ingest so
// uploads can park and drain instead of failing the whole run).
struct PlusIngest {
  std::unique_ptr<ProxyPipeline> chain;
  std::unique_ptr<ResilientProxyPipeline> pool;
};

void install_plus_ingest_hooks(Runtime& rt, const Args& a, Rng& rng,
                               PlusIngest& ingest) {
  if (rt.kind != SchemeKind::kApksPlus) return;
  auto& backend = static_cast<ApksPlusBackend&>(*rt.backend);
  if (std::filesystem::exists(a.dir + "/r.bin")) {
    const std::vector<std::uint8_t> r_bytes = read_file(a.dir + "/r.bin");
    ByteReader reader{std::span<const std::uint8_t>(r_bytes)};
    const Fq r = read_fq(rt.e->fq(), reader);
    if (a.proxy_replicas > 1) {
      ProxyPoolOptions opts;
      opts.replicas = a.proxy_replicas;
      ingest.pool = std::make_unique<ResilientProxyPipeline>(
          *rt.plus, rt.plus->split_secret(r, a.proxies, rng), opts);
      std::printf(
          "apks+: resilient proxy pool armed (%zu proxies x %zu replicas)\n",
          a.proxies, a.proxy_replicas);
    } else {
      ingest.chain = std::make_unique<ProxyPipeline>(
          make_proxy_pipeline(*rt.plus, r, a.proxies, rng));
      attach_ingest_pipeline(backend, *ingest.chain);
      std::printf("apks+: proxy pipeline armed (%zu proxies)\n", a.proxies);
    }
  }
  if (std::filesystem::exists(a.dir + "/msk.bin")) {
    const ApksMasterKey msk{
        deserialize_master_key(*rt.e, read_file(a.dir + "/msk.bin"))};
    const Query canary_q = make_canary_query(rt.plus->schema());
    backend.set_ingest_canary(rt.plus->gen_cap(msk, canary_q, rng));
    std::printf("apks+: ingest canary armed (partial indexes refused)\n");
  }
}

// --- commands -------------------------------------------------------------

int cmd_setup(Runtime& rt, const Args& a, Rng& rng) {
  const Pairing& e = *rt.e;
  if (rt.kind == SchemeKind::kMrqed) {
    MrqedPublicKey pk;
    MrqedMasterKey msk;
    rt.mrqed->setup(rng, pk, msk);
    write_file(a.dir + "/pk.bin", serialize_mrqed_public_key(e, pk));
    write_file(a.dir + "/msk.bin", serialize_mrqed_master_key(e, msk));
    std::printf("setup (mrqed): dims=%zu depth=%zu, wrote %s/{pk,msk}.bin\n",
                rt.mrqed->dims(), rt.mrqed->tree().depth(), a.dir.c_str());
    return 0;
  }
  if (rt.kind == SchemeKind::kApksPlus) {
    const ApksPlusSetupResult s = rt.plus->setup_plus(rng);
    write_file(a.dir + "/pk.bin", serialize_public_key(e, s.pk.hpe));
    write_file(a.dir + "/msk.bin", serialize_master_key(e, s.msk.hpe));
    ByteWriter w;
    write_fq(e.fq(), s.r, w);
    write_file(a.dir + "/r.bin", w.data());
    std::printf(
        "setup (apks+): n=%zu, wrote %s/{pk,msk,r}.bin (msk is blinded; r "
        "is the TA transformation secret)\n",
        rt.plus->n(), a.dir.c_str());
    return 0;
  }
  ApksPublicKey pk;
  ApksMasterKey msk;
  rt.apks->setup(rng, pk, msk);
  write_file(a.dir + "/pk.bin", serialize_public_key(e, pk.hpe));
  write_file(a.dir + "/msk.bin", serialize_master_key(e, msk.hpe));
  std::printf("setup: n=%zu, wrote %s/pk.bin and %s/msk.bin\n", rt.apks->n(),
              a.dir.c_str(), a.dir.c_str());
  return 0;
}

int cmd_genindex(Runtime& rt, const Args& a, Rng& rng) {
  if (a.values.empty() || a.out.empty()) die("genindex needs --values and --out");
  const Pairing& e = *rt.e;
  if (rt.kind == SchemeKind::kMrqed) {
    const MrqedPublicKey pk =
        deserialize_mrqed_public_key(e, read_file(a.dir + "/pk.bin"));
    const auto point = parse_mrqed_point(*rt.mrqed, a.values);
    const MrqedCiphertext ct = rt.mrqed->encrypt(pk, point, rng);
    const auto bytes = serialize_mrqed_ciphertext(e, ct);
    write_file(a.out, bytes);
    std::printf("encrypted point -> %s (%zu bytes)\n", a.out.c_str(),
                bytes.size());
    return 0;
  }
  const Apks& scheme = rt.apks_scheme();
  const ApksPublicKey pk{
      deserialize_public_key(e, read_file(a.dir + "/pk.bin"))};
  const PlainIndex row = parse_index(scheme.schema(), a.values);
  const EncryptedIndex enc = scheme.gen_index(pk, row, rng);
  const auto bytes = serialize_ciphertext(e, enc.ct);
  write_file(a.out, bytes);
  std::printf("encrypted index%s -> %s (%zu bytes)\n",
              rt.kind == SchemeKind::kApksPlus ? " (owner-partial)" : "",
              a.out.c_str(), bytes.size());
  return 0;
}

int cmd_gencap(Runtime& rt, const Args& a, Rng& rng) {
  if (a.query.empty() || a.out.empty()) die("gencap needs --query and --out");
  const Pairing& e = *rt.e;
  if (rt.kind == SchemeKind::kMrqed) {
    const MrqedPublicKey pk =
        deserialize_mrqed_public_key(e, read_file(a.dir + "/pk.bin"));
    const MrqedMasterKey msk =
        deserialize_mrqed_master_key(e, read_file(a.dir + "/msk.bin"));
    const auto ranges = parse_mrqed_query(*rt.mrqed, a.query);
    const MrqedKey key = rt.mrqed->gen_key(pk, msk, ranges, rng);
    const auto bytes = serialize_mrqed_key(e, key);
    write_file(a.out, bytes);
    std::printf("range key for [%s] -> %s (%zu bytes)\n", a.query.c_str(),
                a.out.c_str(), bytes.size());
    return 0;
  }
  const Apks& scheme = rt.apks_scheme();
  const ApksMasterKey msk{
      deserialize_master_key(e, read_file(a.dir + "/msk.bin"))};
  const Query q = parse_query(scheme.schema(), a.query);
  const Capability cap = scheme.gen_cap(msk, q, rng);
  write_file(a.out, serialize_key(e, cap.key));
  std::printf("capability for [%s] -> %s (%zu bytes)\n",
              format_query(scheme.schema(), q).c_str(), a.out.c_str(),
              serialize_key(e, cap.key).size());
  return 0;
}

int cmd_delegate(Runtime& rt, const Args& a, Rng& rng) {
  if (a.cap.empty() || a.query.empty() || a.out.empty()) {
    die("delegate needs --cap, --query and --out");
  }
  const Apks& scheme = rt.apks_scheme();  // delegation is APKS-family only
  const Pairing& e = *rt.e;
  Capability parent;
  parent.key = deserialize_key(e, read_file(a.cap));
  const Query q = parse_query(scheme.schema(), a.query);
  const Capability child = scheme.delegate_cap(parent, q, rng);
  write_file(a.out, serialize_key(e, child.key));
  std::printf("delegated (level %zu) with [%s] -> %s\n", child.key.level,
              format_query(scheme.schema(), q).c_str(), a.out.c_str());
  return 0;
}

int cmd_search(const Runtime& rt, const Args& a) {
  if (a.cap.empty() || a.positional.empty()) {
    die("search needs --cap and at least one index file");
  }
  const AnyQuery query = load_query_file(rt, a.cap);
  const AnyPrepared prepared = rt.backend->prepare(query);
  std::size_t hits = 0;
  for (const auto& path : a.positional) {
    const AnyIndex index = load_index_file(rt, path);
    const bool match = rt.backend->match(prepared, index);
    hits += match ? 1 : 0;
    std::printf("%s: %s\n", path.c_str(), match ? "MATCH" : "no match");
  }
  std::printf("%zu / %zu matched\n", hits, a.positional.size());
  return 0;
}

void print_batch(const Args& a,
                 const std::vector<std::vector<std::string>>& results,
                 const BatchMetrics& metrics) {
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%s: %zu / %zu matched\n", a.caps[i].c_str(),
                results[i].size(), metrics.records);
    for (const auto& ref : results[i]) std::printf("  %s\n", ref.c_str());
  }
  std::printf("batch: %zu queries, %zu records, %zu threads, %.4f s\n",
              metrics.queries, metrics.records, metrics.threads,
              metrics.wall_s);
  std::printf("prepare calls: %zu, cache hits: %zu\n", metrics.prepare_calls,
              metrics.cache_hits);
  std::printf("%-24s %8s %8s %10s %10s %6s %10s\n", "query", "scanned",
              "matched", "miller", "final_exp", "cache", "wall_s");
  for (std::size_t i = 0; i < metrics.per_query.size(); ++i) {
    const ServerMetrics& m = metrics.per_query[i];
    std::printf("%-24s %8zu %8zu %10" PRIu64 " %10" PRIu64 " %6s %10.4f\n",
                a.caps[i].c_str(), m.scanned, m.matched, m.ops.miller,
                m.ops.final_exp, m.cache_hit ? "hit" : "miss", m.wall_s);
  }
}

std::vector<AnyQuery> load_query_files(const Runtime& rt, const Args& a) {
  std::vector<AnyQuery> queries;
  queries.reserve(a.caps.size());
  for (const auto& path : a.caps) queries.push_back(load_query_file(rt, path));
  return queries;
}

int cmd_batchsearch(Runtime& rt, const Args& a) {
  if (a.caps.empty() || a.positional.empty()) {
    die("batchsearch needs --caps FILE[,FILE...] and at least one index file");
  }
  // The CLI works with raw capability/key files (no authority signatures),
  // so the server's verifier is a stub and the engine runs the unchecked
  // path.
  CloudServer server(*rt.backend,
                     CapabilityVerifier(*rt.e, IbsPublicParams{}));
  for (const auto& path : a.positional) {
    (void)server.store_any(load_index_file(rt, path), path);
  }
  const std::vector<AnyQuery> queries = load_query_files(rt, a);
  SearchEngine engine(server, {.threads = a.threads});
  BatchMetrics metrics;
  const auto results = engine.search_batch_unchecked_any(queries, &metrics);
  print_batch(a, results, metrics);
  return 0;
}

std::unique_ptr<ShardedStore> open_store(const Runtime& rt, const Args& a) {
  if (a.store.empty()) die(a.command + " needs --store DIR");
  ShardedStoreOptions opts;
  opts.shards = static_cast<std::uint32_t>(a.shards);
  auto store = std::make_unique<ShardedStore>(*rt.backend, a.store, opts);
  const RecoveryStats rec = store->recovery();
  if (rec.torn_tail) {
    std::printf(
        "recovery: truncated a torn tail (%" PRIu64
        " bytes) left by a crashed writer\n",
        rec.torn_bytes);
  }
  std::printf("store %s [%s]: %u shards, %zu segments, %zu records, %" PRIu64
              " bytes\n",
              a.store.c_str(), std::string(scheme_name(store->scheme())).c_str(),
              store->shard_count(), store->segment_count(),
              store->record_count(), store->bytes());
  return store;
}

int cmd_ingest(Runtime& rt, const Args& a, Rng& rng) {
  if (a.positional.empty()) die("ingest needs at least one index file");
  PlusIngest hooks;  // must outlive the backend's ingest-stage hook
  install_plus_ingest_hooks(rt, a, rng, hooks);
  const auto store_ptr = open_store(rt, a);
  ShardedStore& store = *store_ptr;
  std::size_t accepted = 0;

  // Validate (canary) + append, shared by both proxy deployments.
  const auto admit = [&](const std::string& path, AnyIndex index) {
    try {
      rt.backend->validate_ingest(index);
    } catch (const std::exception& ex) {
      std::printf("  %s REFUSED: %s\n", path.c_str(), ex.what());
      return;
    }
    const std::uint64_t id = store.append_any(path, index);
    ++accepted;
    std::printf("  %s -> record %" PRIu64 "\n", path.c_str(), id);
  };

  for (const auto& path : a.positional) {
    if (hooks.pool != nullptr) {
      // Replicated pool: the upload fails over between replicas and parks
      // (instead of failing the run) when a share has no live replica.
      const std::vector<std::uint8_t> bytes = read_file(path);
      EncryptedIndex partial;
      partial.ct = deserialize_ciphertext(*rt.e, bytes);
      try {
        auto transformed = hooks.pool->process(partial, path);
        if (!transformed.has_value()) {
          std::printf("  %s PARKED (a proxy share has no live replica)\n",
                      path.c_str());
          continue;
        }
        admit(path, AnyIndex::own(rt.kind, std::move(*transformed)));
      } catch (const ProxyUnavailable& ex) {
        std::printf("  %s REFUSED: %s\n", path.c_str(), ex.what());
      }
    } else {
      admit(path, rt.backend->ingest_transform(load_index_file(rt, path)));
    }
  }

  if (hooks.pool != nullptr) {
    // Give parked uploads one recovery pass before reporting.
    const std::size_t drained = hooks.pool->drain(
        [&](const std::string& tag, EncryptedIndex transformed) {
          admit(tag, AnyIndex::own(rt.kind, std::move(transformed)));
        });
    const ProxyPoolStats stats = hooks.pool->stats();
    std::printf(
        "proxy pool: %zu transformed, %zu retried, %zu failovers, %zu "
        "parked (%zu drained, %zu still parked)\n",
        stats.transformed, stats.retries, stats.failovers, stats.parked,
        drained, hooks.pool->parked_count());
  }

  store.sync();
  std::printf("ingested %zu/%zu indexes; store now holds %zu records (%" PRIu64
              " bytes)\n",
              accepted, a.positional.size(), store.record_count(),
              store.bytes());
  return 0;
}

// --- network serving ------------------------------------------------------

std::pair<std::string, std::uint16_t> parse_hostport(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  std::string host = "127.0.0.1";
  std::string port_text = spec;
  if (colon != std::string::npos) {
    host = spec.substr(0, colon);
    port_text = spec.substr(colon + 1);
  }
  try {
    const unsigned long port = std::stoul(port_text);
    if (port > 65535) throw std::out_of_range("port");
    return {host, static_cast<std::uint16_t>(port)};
  } catch (const std::exception&) {
    die("expected HOST:PORT (or a bare PORT), got '" + spec + "'");
  }
}

volatile std::sig_atomic_t g_shutdown = 0;

void on_shutdown_signal(int) { g_shutdown = 1; }

// One line of JSON counters — engine outcomes, verdict-cache behaviour and
// (in listen mode) the network front end — printed periodically and on
// shutdown so a long-running server is observable without a debugger.
void print_stats_json(const SearchEngine& engine, const net::NetServer* srv) {
  const EngineCounters c = engine.counters();
  std::printf("{\"stats\":\"apks_serve\",\"served\":%" PRIu64
              ",\"shed\":%" PRIu64 ",\"deadline_exceeded\":%" PRIu64
              ",\"cancelled\":%" PRIu64
              ",\"prepared_cache_hits\":%zu,\"prepared_cache_misses\":%zu",
              c.served, c.shed, c.deadline_exceeded, c.cancelled,
              engine.cache_hits(), engine.cache_misses());
  if (const VerdictCache* vcache = engine.verdict_cache(); vcache != nullptr) {
    const VerdictCacheStats vs = vcache->stats();
    std::printf(",\"verdict_hits\":%" PRIu64 ",\"verdict_misses\":%" PRIu64
                ",\"verdict_insertions\":%" PRIu64
                ",\"verdict_entries\":%zu,\"verdict_bytes\":%" PRIu64,
                vs.hits, vs.misses, vs.insertions, vs.entries, vs.bytes);
  }
  if (srv != nullptr) {
    const net::NetServerStats ns = srv->stats();
    std::printf(",\"connections\":%zu,\"accepted\":%" PRIu64
                ",\"closed\":%" PRIu64 ",\"auth_ok\":%" PRIu64
                ",\"auth_rejected\":%" PRIu64 ",\"searches_ok\":%" PRIu64
                ",\"searches_deadline\":%" PRIu64
                ",\"searches_overloaded\":%" PRIu64
                ",\"searches_cancelled\":%" PRIu64
                ",\"searches_error\":%" PRIu64 ",\"protocol_errors\":%" PRIu64
                ",\"slow_client_closes\":%" PRIu64 ",\"frames_in\":%" PRIu64
                ",\"frames_out\":%" PRIu64 ",\"bytes_in\":%" PRIu64
                ",\"bytes_out\":%" PRIu64 ",\"inflight\":%zu",
                srv->open_connections(), ns.accepted, ns.closed, ns.auth_ok,
                ns.auth_rejected, ns.searches_ok, ns.searches_deadline,
                ns.searches_overloaded, ns.searches_cancelled,
                ns.searches_error, ns.protocol_errors, ns.slow_client_closes,
                ns.frames_in, ns.frames_out, ns.bytes_in, ns.bytes_out,
                srv->inflight_jobs());
  }
  std::printf("}\n");
  std::fflush(stdout);
}

// serve --listen: run the epoll front end until SIGINT/SIGTERM, then drain.
int serve_listen(const SearchEngine& engine, const Args& a) {
  const auto [host, port] = parse_hostport(a.listen);
  net::NetServerOptions opts;
  opts.host = host;
  opts.port = port;
  // The CLI's capability files carry no authority signature, so its remote
  // sessions authenticate in unchecked mode (same trust model as the
  // one-shot serve path).
  opts.allow_unchecked = true;
  opts.default_deadline_ms = a.deadline_ms;
  net::NetServer server(engine, opts);
  std::printf("listening on %s:%u (scheme %s, pid %ld); SIGINT/SIGTERM "
              "drains and exits\n",
              server.host().c_str(), server.port(),
              std::string(engine.server().backend().name()).c_str(),
              static_cast<long>(::getpid()));
  std::fflush(stdout);

  std::signal(SIGINT, on_shutdown_signal);
  std::signal(SIGTERM, on_shutdown_signal);

  const auto interval = std::chrono::seconds(
      a.stats_interval_s == 0 ? 10 : a.stats_interval_s);
  auto next_stats = std::chrono::steady_clock::now() + interval;
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (std::chrono::steady_clock::now() >= next_stats) {
      print_stats_json(engine, &server);
      next_stats = std::chrono::steady_clock::now() + interval;
    }
  }

  std::printf("shutdown signal received; draining (grace %" PRIu64 " ms)\n",
              a.grace_ms);
  std::fflush(stdout);
  server.stop(a.grace_ms);
  print_stats_json(engine, &server);
  return 0;
}

// --- cluster serving ------------------------------------------------------

// --nodes NAME=HOST:PORT[,NAME=HOST:PORT...] -> the shared cluster map.
// Every node and every coordinator must be launched with the same --nodes,
// --replicas, --shards and --map-version: placement is derived from those
// four inputs, so agreeing on them IS agreeing on who owns what.
cluster::ClusterMap parse_cluster_map(const Args& a,
                                      std::uint32_t total_shards) {
  if (a.nodes.empty()) {
    die(a.command + " needs --nodes NAME=HOST:PORT[,NAME=HOST:PORT...]");
  }
  std::vector<cluster::NodeInfo> nodes;
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t comma = a.nodes.find(',', pos);
    const std::string item = a.nodes.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? comma : comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      die("--nodes: expected NAME=HOST:PORT, got '" + item + "'");
    }
    const auto [host, port] = parse_hostport(item.substr(eq + 1));
    nodes.push_back({item.substr(0, eq), host, port});
  }
  try {
    return cluster::ClusterMap(std::move(nodes), total_shards,
                               static_cast<std::uint32_t>(a.replicas),
                               a.map_version);
  } catch (const std::exception& ex) {
    die(std::string("--nodes: ") + ex.what());
  }
}

// cluster-serve: run ONE node of the scale-out tier. The store's on-disk
// shard partition (id % --shards) is the cluster's shard space, so every
// node opens the same store directory (shared filesystem or a copy) and
// loads only the shards the map assigns to it.
int cmd_cluster_serve(const Runtime& rt, const Args& a) {
  const auto store_ptr = open_store(rt, a);
  ShardedStore& store = *store_ptr;
  const cluster::ClusterMap map = parse_cluster_map(a, store.shard_count());
  if (a.node_index >= map.nodes().size()) {
    die("--node-index " + std::to_string(a.node_index) + " out of range (" +
        std::to_string(map.nodes().size()) + " nodes)");
  }
  const std::uint32_t self = static_cast<std::uint32_t>(a.node_index);

  cluster::ClusterNodeOptions opts;
  opts.engine.threads = a.threads;
  opts.engine.deadline_ms = a.deadline_ms;
  opts.engine.max_inflight = a.max_inflight;
  // Bind where the map says coordinators will dial us, unless --listen
  // overrides (e.g. bind 0.0.0.0 while the map advertises a routable IP).
  opts.net.host = map.nodes()[self].host;
  opts.net.port = map.nodes()[self].port;
  if (!a.listen.empty()) {
    const auto [host, port] = parse_hostport(a.listen);
    opts.net.host = host;
    opts.net.port = port;
  }
  // The internal hop re-sends the coordinator-verified query unchecked;
  // cluster nodes are the trusted tier that accepts it.
  opts.net.allow_unchecked = true;

  cluster::ClusterNode node(*rt.backend,
                            CapabilityVerifier(*rt.e, IbsPublicParams{}),
                            store, map, self, std::move(opts));
  std::string shard_list;
  for (const std::uint32_t shard : node.owned_shards()) {
    shard_list += (shard_list.empty() ? "" : ",") + std::to_string(shard);
  }
  std::printf("node '%s' (%zu of %zu) listening on %s:%u; owns shards [%s] "
              "(%" PRIu64 " of %zu records), map v%" PRIu64 " R=%u; "
              "SIGINT/SIGTERM drains and exits\n",
              map.nodes()[self].name.c_str(), a.node_index + 1,
              map.nodes().size(), node.server().host().c_str(), node.port(),
              shard_list.c_str(), node.record_count(), store.record_count(),
              map.version(), map.replicas());
  std::fflush(stdout);

  std::signal(SIGINT, on_shutdown_signal);
  std::signal(SIGTERM, on_shutdown_signal);
  const auto interval = std::chrono::seconds(
      a.stats_interval_s == 0 ? 10 : a.stats_interval_s);
  auto next_stats = std::chrono::steady_clock::now() + interval;
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (std::chrono::steady_clock::now() >= next_stats) {
      const net::NetServerStats ns = node.server().stats();
      std::printf("{\"stats\":\"apks_cluster_node\",\"connections\":%zu"
                  ",\"searches_ok\":%" PRIu64 ",\"searches_error\":%" PRIu64
                  ",\"frames_in\":%" PRIu64 ",\"frames_out\":%" PRIu64 "}\n",
                  node.server().open_connections(), ns.searches_ok,
                  ns.searches_error, ns.frames_in, ns.frames_out);
      std::fflush(stdout);
      next_stats = std::chrono::steady_clock::now() + interval;
    }
  }
  std::printf("shutdown signal received; draining (grace %" PRIu64 " ms)\n",
              a.grace_ms);
  std::fflush(stdout);
  node.stop(a.grace_ms);
  return 0;
}

// rsearch --cluster: scatter one query across the node fleet and merge.
//
// Self-healing knobs: --heartbeat-ms N runs the background failure
// detector (corpses are deprioritized and breaker-gated before the first
// RPC pays for finding them); --hedge-delay-ms N arms hedged shard reads
// (a primary slower than the node's latency quantile, seeded with N ms,
// is raced against the next replica — at most --hedge-budget extras per
// search); --node-timeout-ms caps each node RPC's socket waits.
//
// Exit codes: 0 = complete result; 1 = fatal (bad usage, unauthorized
// query, or a shard with no live replica without --partial-ok — the
// typed error is printed to stderr); 2 = partial result (--partial-ok
// and at least one shard was unavailable or out of budget).
int cmd_rsearch_cluster(const Runtime& rt, const Args& a) {
  if (a.cap.empty()) die("rsearch --cluster needs --cap FILE");
  const cluster::ClusterMap map =
      parse_cluster_map(a, static_cast<std::uint32_t>(a.shards));
  const AnyQuery query = load_query_file(rt, a.cap);

  cluster::CoordinatorOptions copts;
  copts.node_timeout_ms = a.node_timeout_ms;
  copts.heartbeat_ms = a.heartbeat_ms;
  if (a.hedge_delay_ms != 0) {
    copts.hedge.enabled = true;
    copts.hedge.initial_delay_ms = a.hedge_delay_ms;
    copts.hedge.budget = a.hedge_budget;
  }
  cluster::Coordinator coord(*rt.backend,
                             CapabilityVerifier(*rt.e, IbsPublicParams{}),
                             map, std::move(copts));
  ServeControl control;
  control.deadline_ms = a.deadline_ms;
  control.partial_ok = a.partial_ok;
  cluster::ClusterSearchStats stats;
  const std::vector<std::string> refs =
      coord.search_any(query, &stats, control);
  for (const auto& ref : refs) std::printf("  %s\n", ref.c_str());
  std::printf("%zu matched, %" PRIu64 " scanned across %zu/%u shards "
              "(%zu rpcs, %zu retries, %zu failovers)\n",
              refs.size(), stats.scanned, stats.shards_ok,
              map.total_shards(), stats.rpcs, stats.retries, stats.failovers);
  if (stats.hedges != 0) {
    std::printf("hedging: %zu launched, %zu won, %zu cancelled\n",
                stats.hedges, stats.hedge_wins, stats.hedge_cancelled);
  }
  if (stats.partial) {
    std::printf("PARTIAL: %zu shard(s) unavailable%s; results cover the "
                "answering shards only\n",
                stats.shards_failed,
                stats.deadline_exceeded ? " or out of budget" : "");
  }
  return stats.partial ? 2 : 0;
}

int cmd_rsearch(const Runtime& rt, const Args& a) {
  if (a.cluster) return cmd_rsearch_cluster(rt, a);
  if (a.connect.empty() || a.cap.empty()) {
    die("rsearch needs --connect HOST:PORT and --cap FILE");
  }
  const auto [host, port] = parse_hostport(a.connect);
  const AnyQuery query = load_query_file(rt, a.cap);
  const std::vector<std::uint8_t> query_bytes = rt.backend->encode_query(query);

  net::NetClient client;
  client.connect(host, port);
  const net::HelloAckMsg hello = client.hello(rt.kind);
  if (hello.status != net::WireStatus::kOk) {
    die("server refused session: " + hello.message);
  }
  std::printf("connected to %s:%u (%s, %" PRIu64 " records)\n", host.c_str(),
              port, std::string(scheme_name(hello.scheme)).c_str(),
              hello.records);
  const net::AuthAckMsg auth = client.auth_unchecked(query_bytes);
  if (auth.status != net::WireStatus::kOk) {
    die("server rejected query: " + auth.message);
  }
  const net::RemoteResult r = client.search(a.deadline_ms, a.partial_ok);
  for (const auto& ref : r.refs) std::printf("  %s\n", ref.c_str());
  std::printf("%s: %zu matched, %" PRIu64 " of %" PRIu64
              " records scanned, %.4f s server-side\n",
              std::string(net::wire_status_name(r.status)).c_str(),
              r.refs.size(), r.scanned, hello.records,
              static_cast<double>(r.wall_us) / 1e6);
  if ((r.flags & net::kResultTruncated) != 0) {
    std::printf("TRUNCATED: results cover the scanned prefix only\n");
  }
  return r.status == net::WireStatus::kOk ? 0 : 2;
}

int cmd_serve(Runtime& rt, const Args& a) {
  if (a.caps.empty() && a.listen.empty()) {
    die("serve needs --caps FILE[,FILE...] or --listen HOST:PORT");
  }
  const auto store_ptr = open_store(rt, a);
  ShardedStore& store = *store_ptr;

  // Restart path: rebuild the in-memory server from disk, then serve the
  // query batch through the SearchEngine (raw capability/key files, so the
  // signature layer is skipped as in batchsearch).
  CloudServer server(*rt.backend,
                     CapabilityVerifier(*rt.e, IbsPublicParams{}));
  const std::size_t loaded = server.load_from(store);
  std::printf("loaded %zu records into the cloud server\n", loaded);

  SearchEngine::Options opts;
  opts.threads = a.threads;
  opts.deadline_ms = a.deadline_ms;
  opts.max_inflight = a.max_inflight;
  opts.verdict_cache_bytes =
      static_cast<std::uint64_t>(a.verdict_cache_mb) * 1024 * 1024;
  SearchEngine engine(server, opts);
  if (VerdictCache* vcache = engine.verdict_cache(); vcache != nullptr) {
    // Rotations/compactions through this store drop their retired segments'
    // verdicts immediately (hygiene; correctness holds without it because
    // segment identities are never reused).
    store.set_invalidation_hook(
        [vcache](std::span<const SegmentId> retired) {
          vcache->invalidate(retired);
        });
  }
  if (!a.listen.empty()) return serve_listen(engine, a);

  const std::vector<AnyQuery> queries = load_query_files(rt, a);
  BatchMetrics metrics;
  ServeControl control;
  control.partial_ok = true;  // CLI: report truncation instead of throwing
  const auto results =
      engine.search_batch_unchecked_any(queries, &metrics, control);
  print_batch(a, results, metrics);
  if (metrics.deadline_exceeded) {
    std::printf("DEADLINE: scan stopped after %" PRIu64
                " ms; results cover %zu of %zu records\n",
                a.deadline_ms,
                metrics.per_query.empty() ? std::size_t{0}
                                          : metrics.per_query[0].scanned,
                metrics.records);
  }
  const EngineCounters counters = engine.counters();
  std::printf("serving outcomes: %" PRIu64 " served, %" PRIu64
              " deadline-exceeded, %" PRIu64 " shed\n",
              counters.served, counters.deadline_exceeded, counters.shed);
  if (const VerdictCache* vcache = engine.verdict_cache();
      vcache != nullptr) {
    const VerdictCacheStats vs = vcache->stats();
    std::printf("verdict cache: %" PRIu64 " hits, %" PRIu64 " misses, %" PRIu64
                " memoized (%zu entries, %" PRIu64 "/%" PRIu64 " bytes); "
                "batch resolved %zu records from cache\n",
                vs.hits, vs.misses, vs.insertions, vs.entries, vs.bytes,
                vcache->byte_budget(), metrics.verdict_hits);
  }
  print_stats_json(engine, nullptr);
  return 0;
}

int cmd_compact(const Runtime& rt, const Args& a) {
  const auto store_ptr = open_store(rt, a);
  ShardedStore& store = *store_ptr;
  const std::uint64_t before = store.bytes();
  const std::size_t segments_before = store.segment_count();
  const std::uint64_t reclaimed = store.compact();
  std::printf("compacted: %zu -> %zu segments, %" PRIu64 " -> %" PRIu64
              " bytes (%" PRIu64 " reclaimed)\n",
              segments_before, store.segment_count(), before, store.bytes(),
              reclaimed);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (const std::size_t armed = Failpoints::instance().configure_from_env();
        armed > 0) {
      std::fprintf(stderr, "apks_cli: %zu failpoint site(s) armed from APKS_FAILPOINTS\n",
                   armed);
    }
    const Pairing pairing(default_type_a_params());
    Runtime rt = make_runtime(pairing, args);
    const auto rng = make_rng(args);
    if (args.command == "setup") {
      return cmd_setup(rt, args, *rng);
    }
    if (args.command == "genindex") {
      return cmd_genindex(rt, args, *rng);
    }
    if (args.command == "gencap") {
      return cmd_gencap(rt, args, *rng);
    }
    if (args.command == "delegate") {
      return cmd_delegate(rt, args, *rng);
    }
    if (args.command == "search") {
      return cmd_search(rt, args);
    }
    if (args.command == "batchsearch") {
      return cmd_batchsearch(rt, args);
    }
    if (args.command == "ingest") {
      return cmd_ingest(rt, args, *rng);
    }
    if (args.command == "serve") {
      return cmd_serve(rt, args);
    }
    if (args.command == "rsearch") {
      return cmd_rsearch(rt, args);
    }
    if (args.command == "cluster-serve") {
      return cmd_cluster_serve(rt, args);
    }
    if (args.command == "compact") {
      return cmd_compact(rt, args);
    }
    die("unknown command '" + args.command + "'");
  } catch (const std::exception& ex) {
    die(ex.what());
  }
}
