// apks_cli — file-based command-line front end for the APKS scheme.
//
//   apks_cli setup    --schema phr --dir KEYS
//   apks_cli genindex --schema phr --dir KEYS --values "61, Male, Boston, diabetes, Hospital B" --out idx.bin
//   apks_cli gencap   --schema phr --dir KEYS --query "sex = Male; illness in diabetes" --out cap.bin
//   apks_cli delegate --schema phr --cap cap.bin --query "provider = Hospital B" --out cap2.bin
//   apks_cli search   --schema phr --cap cap.bin idx1.bin idx2.bin ...
//   apks_cli batchsearch --schema phr --caps cap1.bin,cap2.bin [--threads T] idx1.bin ...
//   apks_cli ingest   --schema phr --store DB [--shards N] idx1.bin idx2.bin ...
//   apks_cli serve    --schema phr --store DB --caps cap1.bin,cap2.bin [--threads T]
//   apks_cli compact  --store DB
//
// `batchsearch` serves all capabilities over a single pass of the indexes
// through the cloud SearchEngine (batched scan + prepared-capability
// cache, signature layer skipped: the CLI works with raw capability
// files) and prints the per-query server metrics — records scanned,
// matches, Miller-loop / final-exponentiation counts, cache behaviour.
//
// `ingest` appends encrypted-index files into a persistent ShardedStore
// (creating it with --shards partitions on first use); `serve` reopens the
// store — reporting crash recovery if the last writer died mid-append —
// loads it into a CloudServer and answers a capability batch; `compact`
// collapses each shard's segment chain and reports the bytes reclaimed.
//
// Schemas: "phr" (the paper's PHR case study), "phr-time" (with the
// revocation time dimension), "nursery" (UCI Nursery, d = 2).
// Randomness comes from the OS; pass --seed LABEL for reproducible output.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "cloud/search_engine.h"
#include "cloud/server.h"
#include "core/apks.h"
#include "core/query_parser.h"
#include "data/nursery.h"
#include "data/phr.h"
#include "hpe/serialize.h"
#include "store/sharded_store.h"

namespace {

using namespace apks;

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "apks_cli: %s\n", msg.c_str());
  std::exit(1);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) die("cannot open " + path);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) die("cannot write " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

Schema make_schema(const std::string& name) {
  if (name == "phr") return phr_schema({.max_or = 2});
  if (name == "phr-time") return phr_schema({.max_or = 2, .with_time = true});
  if (name == "nursery") return nursery_schema(2);
  die("unknown schema '" + name + "' (use phr, phr-time or nursery)");
}

struct Args {
  std::string command;
  std::string schema = "phr";
  std::string dir = ".";
  std::string out;
  std::string cap;
  std::vector<std::string> caps;
  std::string query;
  std::string values;
  std::string seed;
  std::string store;
  std::size_t shards = 4;
  std::size_t threads = 1;
  std::vector<std::string> positional;
};

Args parse_args(int argc, char** argv) {
  Args a;
  if (argc < 2) {
    die("usage: apks_cli <setup|genindex|gencap|delegate|search|batchsearch"
        "|ingest|serve|compact> [options]");
  }
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) die("missing value after " + arg);
      return argv[++i];
    };
    if (arg == "--schema") a.schema = next();
    else if (arg == "--dir") a.dir = next();
    else if (arg == "--out") a.out = next();
    else if (arg == "--cap") a.cap = next();
    else if (arg == "--caps") {
      std::string list = next();
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        const std::string item = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!item.empty()) a.caps.push_back(item);
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (arg == "--threads") {
      const std::string v = next();
      try {
        a.threads = static_cast<std::size_t>(std::stoul(v));
      } catch (const std::exception&) {
        die("--threads needs a number, got '" + v + "'");
      }
    } else if (arg == "--store") {
      a.store = next();
    } else if (arg == "--shards") {
      const std::string v = next();
      try {
        a.shards = static_cast<std::size_t>(std::stoul(v));
      } catch (const std::exception&) {
        die("--shards needs a number, got '" + v + "'");
      }
      if (a.shards == 0) die("--shards must be at least 1");
    }
    else if (arg == "--query") a.query = next();
    else if (arg == "--values") a.values = next();
    else if (arg == "--seed") a.seed = next();
    else if (arg.rfind("--", 0) == 0) die("unknown option " + arg);
    else a.positional.push_back(arg);
  }
  return a;
}

std::unique_ptr<Rng> make_rng(const Args& a) {
  if (!a.seed.empty()) return std::make_unique<ChaChaRng>(a.seed);
  return std::make_unique<SystemRng>();
}

int cmd_setup(const Apks& scheme, const Pairing& e, const Args& a, Rng& rng) {
  ApksPublicKey pk;
  ApksMasterKey msk;
  scheme.setup(rng, pk, msk);
  write_file(a.dir + "/pk.bin", serialize_public_key(e, pk.hpe));
  write_file(a.dir + "/msk.bin", serialize_master_key(e, msk.hpe));
  std::printf("setup: n=%zu, wrote %s/pk.bin and %s/msk.bin\n", scheme.n(),
              a.dir.c_str(), a.dir.c_str());
  return 0;
}

int cmd_genindex(const Apks& scheme, const Pairing& e, const Args& a,
                 Rng& rng) {
  if (a.values.empty() || a.out.empty()) die("genindex needs --values and --out");
  const ApksPublicKey pk{
      deserialize_public_key(e, read_file(a.dir + "/pk.bin"))};
  const PlainIndex row = parse_index(scheme.schema(), a.values);
  const EncryptedIndex enc = scheme.gen_index(pk, row, rng);
  write_file(a.out, serialize_ciphertext(e, enc.ct));
  std::printf("encrypted index -> %s (%zu bytes)\n", a.out.c_str(),
              serialize_ciphertext(e, enc.ct).size());
  return 0;
}

int cmd_gencap(const Apks& scheme, const Pairing& e, const Args& a, Rng& rng) {
  if (a.query.empty() || a.out.empty()) die("gencap needs --query and --out");
  const ApksMasterKey msk{
      deserialize_master_key(e, read_file(a.dir + "/msk.bin"))};
  const Query q = parse_query(scheme.schema(), a.query);
  const Capability cap = scheme.gen_cap(msk, q, rng);
  write_file(a.out, serialize_key(e, cap.key));
  std::printf("capability for [%s] -> %s (%zu bytes)\n",
              format_query(scheme.schema(), q).c_str(), a.out.c_str(),
              serialize_key(e, cap.key).size());
  return 0;
}

int cmd_delegate(const Apks& scheme, const Pairing& e, const Args& a,
                 Rng& rng) {
  if (a.cap.empty() || a.query.empty() || a.out.empty()) {
    die("delegate needs --cap, --query and --out");
  }
  Capability parent;
  parent.key = deserialize_key(e, read_file(a.cap));
  const Query q = parse_query(scheme.schema(), a.query);
  const Capability child = scheme.delegate_cap(parent, q, rng);
  write_file(a.out, serialize_key(e, child.key));
  std::printf("delegated (level %zu) with [%s] -> %s\n", child.key.level,
              format_query(scheme.schema(), q).c_str(), a.out.c_str());
  return 0;
}

int cmd_search(const Apks& scheme, const Pairing& e, const Args& a) {
  if (a.cap.empty() || a.positional.empty()) {
    die("search needs --cap and at least one index file");
  }
  Capability cap;
  cap.key = deserialize_key(e, read_file(a.cap));
  const PreparedCapability prepared = scheme.prepare(cap);
  std::size_t hits = 0;
  for (const auto& path : a.positional) {
    EncryptedIndex enc;
    enc.ct = deserialize_ciphertext(e, read_file(path));
    const bool match = scheme.search_prepared(prepared, enc);
    hits += match ? 1 : 0;
    std::printf("%s: %s\n", path.c_str(), match ? "MATCH" : "no match");
  }
  std::printf("%zu / %zu matched\n", hits, a.positional.size());
  return 0;
}

int cmd_batchsearch(const Apks& scheme, const Pairing& e, const Args& a) {
  if (a.caps.empty() || a.positional.empty()) {
    die("batchsearch needs --caps FILE[,FILE...] and at least one index file");
  }
  // The CLI works with raw capability files (no authority signatures), so
  // the server's verifier is a stub and the engine runs the unchecked path.
  CloudServer server(scheme, CapabilityVerifier(e, IbsPublicParams{}));
  for (const auto& path : a.positional) {
    EncryptedIndex enc;
    enc.ct = deserialize_ciphertext(e, read_file(path));
    (void)server.store(std::move(enc), path);
  }
  std::vector<Capability> caps(a.caps.size());
  for (std::size_t i = 0; i < a.caps.size(); ++i) {
    caps[i].key = deserialize_key(e, read_file(a.caps[i]));
  }

  SearchEngine engine(server, {.threads = a.threads});
  BatchMetrics metrics;
  const auto results = engine.search_batch_unchecked(caps, &metrics);

  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%s: %zu / %zu matched\n", a.caps[i].c_str(),
                results[i].size(), metrics.records);
    for (const auto& ref : results[i]) std::printf("  %s\n", ref.c_str());
  }
  std::printf("batch: %zu queries, %zu records, %zu threads, %.4f s\n",
              metrics.queries, metrics.records, metrics.threads,
              metrics.wall_s);
  std::printf("prepare calls: %zu, cache hits: %zu\n", metrics.prepare_calls,
              metrics.cache_hits);
  std::printf("%-24s %8s %8s %10s %10s %6s %10s\n", "capability", "scanned",
              "matched", "miller", "final_exp", "cache", "wall_s");
  for (std::size_t i = 0; i < metrics.per_query.size(); ++i) {
    const ServerMetrics& m = metrics.per_query[i];
    std::printf("%-24s %8zu %8zu %10" PRIu64 " %10" PRIu64 " %6s %10.4f\n",
                a.caps[i].c_str(), m.scanned, m.matched, m.ops.miller,
                m.ops.final_exp, m.cache_hit ? "hit" : "miss", m.wall_s);
  }
  return 0;
}

std::unique_ptr<ShardedStore> open_store(const Pairing& e, const Args& a) {
  if (a.store.empty()) die(a.command + " needs --store DIR");
  ShardedStoreOptions opts;
  opts.shards = static_cast<std::uint32_t>(a.shards);
  auto store = std::make_unique<ShardedStore>(e, a.store, opts);
  const RecoveryStats rec = store->recovery();
  if (rec.torn_tail) {
    std::printf(
        "recovery: truncated a torn tail (%" PRIu64
        " bytes) left by a crashed writer\n",
        rec.torn_bytes);
  }
  std::printf("store %s: %u shards, %zu segments, %zu records, %" PRIu64
              " bytes\n",
              a.store.c_str(), store->shard_count(), store->segment_count(),
              store->record_count(), store->bytes());
  return store;
}

int cmd_ingest(const Pairing& e, const Args& a) {
  if (a.positional.empty()) die("ingest needs at least one index file");
  const auto store_ptr = open_store(e, a);
  ShardedStore& store = *store_ptr;
  for (const auto& path : a.positional) {
    EncryptedIndex enc;
    enc.ct = deserialize_ciphertext(e, read_file(path));
    const std::uint64_t id = store.append(path, enc);
    std::printf("  %s -> record %" PRIu64 "\n", path.c_str(), id);
  }
  store.sync();
  std::printf("ingested %zu indexes; store now holds %zu records (%" PRIu64
              " bytes)\n",
              a.positional.size(), store.record_count(), store.bytes());
  return 0;
}

int cmd_serve(const Apks& scheme, const Pairing& e, const Args& a) {
  if (a.caps.empty()) die("serve needs --caps FILE[,FILE...]");
  const auto store_ptr = open_store(e, a);
  ShardedStore& store = *store_ptr;

  // Restart path: rebuild the in-memory server from disk, then serve the
  // capability batch through the SearchEngine (raw capability files, so
  // the signature layer is skipped as in batchsearch).
  CloudServer server(scheme, CapabilityVerifier(e, IbsPublicParams{}));
  const std::size_t loaded = server.load_from(store);
  std::printf("loaded %zu records into the cloud server\n", loaded);

  std::vector<Capability> caps(a.caps.size());
  for (std::size_t i = 0; i < a.caps.size(); ++i) {
    caps[i].key = deserialize_key(e, read_file(a.caps[i]));
  }
  SearchEngine engine(server, {.threads = a.threads});
  BatchMetrics metrics;
  const auto results = engine.search_batch_unchecked(caps, &metrics);
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%s: %zu / %zu matched\n", a.caps[i].c_str(),
                results[i].size(), metrics.records);
    for (const auto& ref : results[i]) std::printf("  %s\n", ref.c_str());
  }
  std::printf("batch: %zu queries, %zu records, %zu threads, %.4f s\n",
              metrics.queries, metrics.records, metrics.threads,
              metrics.wall_s);
  return 0;
}

int cmd_compact(const Pairing& e, const Args& a) {
  const auto store_ptr = open_store(e, a);
  ShardedStore& store = *store_ptr;
  const std::uint64_t before = store.bytes();
  const std::size_t segments_before = store.segment_count();
  const std::uint64_t reclaimed = store.compact();
  std::printf("compacted: %zu -> %zu segments, %" PRIu64 " -> %" PRIu64
              " bytes (%" PRIu64 " reclaimed)\n",
              segments_before, store.segment_count(), before, store.bytes(),
              reclaimed);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    const Pairing pairing(default_type_a_params());
    const Apks scheme(pairing, make_schema(args.schema));
    const auto rng = make_rng(args);
    if (args.command == "setup") {
      return cmd_setup(scheme, pairing, args, *rng);
    }
    if (args.command == "genindex") {
      return cmd_genindex(scheme, pairing, args, *rng);
    }
    if (args.command == "gencap") {
      return cmd_gencap(scheme, pairing, args, *rng);
    }
    if (args.command == "delegate") {
      return cmd_delegate(scheme, pairing, args, *rng);
    }
    if (args.command == "search") {
      return cmd_search(scheme, pairing, args);
    }
    if (args.command == "batchsearch") {
      return cmd_batchsearch(scheme, pairing, args);
    }
    if (args.command == "ingest") {
      return cmd_ingest(pairing, args);
    }
    if (args.command == "serve") {
      return cmd_serve(scheme, pairing, args);
    }
    if (args.command == "compact") {
      return cmd_compact(pairing, args);
    }
    die("unknown command '" + args.command + "'");
  } catch (const std::exception& ex) {
    die(ex.what());
  }
}
