// Generates a type-A pairing parameter set and prints it as the hex block
// embedded in src/ec/params.cpp. Deterministic for a fixed --seed.
#include <cstdio>
#include <string>

#include "ec/params.h"

int main(int argc, char** argv) {
  std::string seed = "apks-type-a-default";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--seed") seed = argv[i + 1];
  }
  apks::ChaChaRng rng(seed);
  const auto params = apks::generate_type_a(rng);
  apks::ChaChaRng check_rng(seed + "-validate");
  apks::validate_params(params, check_rng);
  std::printf("seed: %s\n", seed.c_str());
  std::printf("q  = %s\n", apks::to_hex(params.q).c_str());
  std::printf("h  = %s\n", apks::to_hex(params.h).c_str());
  std::printf("p  = %s\n", apks::to_hex(params.p).c_str());
  std::printf("gx = %s\n", apks::to_hex(params.gx).c_str());
  std::printf("gy = %s\n", apks::to_hex(params.gy).c_str());
  return 0;
}
