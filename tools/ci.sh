#!/usr/bin/env bash
# CI gate: the tier-1 verify (full build + test suite), an ASan build of the
# storage-engine tests (segment format, crash recovery) plus the store bench
# artifact, a ThreadSanitizer build of the cloud/server concurrency tests,
# a UBSan build of the scheme-backend surface (mrqed, proxy ingest,
# backend type-erasure), a UBSan pairing stage that runs the
# multi-pairing/SIMD-kernel tests with the lane engines forced on and off
# (APKS_FORCE_SCALAR), and a serving stage for the network layer (TSan
# server+client loopback tests, the ASan hostile-frame sweep, and the
# serving load-generator smoke artifact). Run from the repository root:
#
#   tools/ci.sh            # tier-1 + store + TSan + UBSan + pairing + chaos + serving
#   tools/ci.sh --store    # store stage only (ASan + crash recovery + bench)
#   tools/ci.sh --tsan     # TSan cloud tests only
#   tools/ci.sh --ubsan    # UBSan backend/mrqed/proxy tests only
#   tools/ci.sh --pairing  # UBSan pairing/SIMD tests + pairing bench artifact
#   tools/ci.sh --chaos    # ASan fault-injection suite + fault bench artifact
#   tools/ci.sh --serving  # network layer: TSan + ASan net tests + bench artifact
#   tools/ci.sh --cluster  # cluster tier: ASan multi-node loopback suite +
#                          #   cluster chaos filters, TSan self-healing suite
#                          #   (heartbeats/reconfig/hedged reads) + bench artifact
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}
STAGE=all
[[ "${1:-}" == "--tsan" ]] && STAGE=tsan
[[ "${1:-}" == "--store" ]] && STAGE=store
[[ "${1:-}" == "--ubsan" ]] && STAGE=ubsan
[[ "${1:-}" == "--pairing" ]] && STAGE=pairing
[[ "${1:-}" == "--chaos" ]] && STAGE=chaos
[[ "${1:-}" == "--serving" ]] && STAGE=serving
[[ "${1:-}" == "--cluster" ]] && STAGE=cluster

# configure DIR [extra cmake args...]
#
# Wraps `cmake -B DIR` with a staleness check: a build directory configured
# with a *different* APKS_SANITIZE value poisons incremental builds (objects
# compiled with the old flags link silently into new binaries), so wipe it
# and configure from scratch when the cached value disagrees.
configure() {
  local dir=$1
  shift
  local want=""
  for arg in "$@"; do
    [[ "$arg" == -DAPKS_SANITIZE=* ]] && want="${arg#-DAPKS_SANITIZE=}"
  done
  if [[ -f "$dir/CMakeCache.txt" ]]; then
    local have
    have=$(sed -n 's/^APKS_SANITIZE:[^=]*=//p' "$dir/CMakeCache.txt")
    if [[ "$have" != "$want" ]]; then
      echo "--- $dir: cached APKS_SANITIZE='$have' != wanted '$want'," \
           "reconfiguring from scratch ---"
      rm -rf "$dir"
    fi
  fi
  cmake -B "$dir" -S . "$@"
}

if [[ $STAGE == all ]]; then
  echo "=== tier-1: full build + ctest ==="
  configure build
  cmake --build build -j "$JOBS"
  (cd build && ctest --output-on-failure -j "$JOBS")

  echo "=== bench smoke: MSM engine comparison + JSON artifact ==="
  ./build/bench/bench_msm --smoke --json=BENCH_msm.json
  [[ -s BENCH_msm.json ]] || { echo "BENCH_msm.json missing/empty"; exit 1; }
  ./build/bench/fig8b_encrypt --smoke >/dev/null

  echo "=== bench smoke: cross-scheme serving comparison + JSON artifact ==="
  ./build/bench/bench_schemes --smoke --json=BENCH_schemes.json
  [[ -s BENCH_schemes.json ]] || { echo "BENCH_schemes.json missing/empty"; exit 1; }

  echo "=== bench smoke: pairing kernel / SIMD engines + JSON artifact ==="
  ./build/bench/bench_pairing --smoke --json=BENCH_pairing.json
  [[ -s BENCH_pairing.json ]] || { echo "BENCH_pairing.json missing/empty"; exit 1; }

  echo "=== bench smoke: verdict-cache speedup + equivalence + JSON artifact ==="
  ./build/bench/bench_cache --smoke --json=BENCH_cache.json
  [[ -s BENCH_cache.json ]] || { echo "BENCH_cache.json missing/empty"; exit 1; }
fi

if [[ $STAGE == all || $STAGE == store ]]; then
  echo "=== store: ASan storage-engine tests + crash recovery + bench ==="
  configure build-asan -DAPKS_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$JOBS" \
    --target store_test store_recovery_test bench_store
  for t in store_test store_recovery_test; do
    echo "--- $t (ASan) ---"
    ./build-asan/tests/"$t"
  done
  ./build-asan/bench/bench_store --smoke --json=BENCH_store.json
  [[ -s BENCH_store.json ]] || { echo "BENCH_store.json missing/empty"; exit 1; }
fi

if [[ $STAGE == all || $STAGE == tsan ]]; then
  echo "=== TSan: cloud server / search engine tests ==="
  configure build-tsan -DAPKS_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$JOBS" \
    --target cloud_test policy_test integration_test search_engine_test
  for t in cloud_test policy_test integration_test search_engine_test; do
    echo "--- $t (TSan) ---"
    ./build-tsan/tests/"$t"
  done
fi

if [[ $STAGE == all || $STAGE == ubsan ]]; then
  echo "=== UBSan: scheme backends (mrqed + proxy ingest + type erasure) ==="
  configure build-ubsan -DAPKS_SANITIZE=undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-ubsan -j "$JOBS" \
    --target mrqed_test property_mrqed_test backend_test integration_test
  for t in mrqed_test property_mrqed_test backend_test integration_test; do
    echo "--- $t (UBSan) ---"
    ./build-ubsan/tests/"$t"
  done
fi
if [[ $STAGE == all || $STAGE == pairing ]]; then
  echo "=== pairing: UBSan multi-pairing + SIMD lane engines (forced on/off) ==="
  configure build-ubsan -DAPKS_SANITIZE=undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-ubsan -j "$JOBS" \
    --target pairing_test multi_pairing_test bench_pairing
  for t in pairing_test multi_pairing_test; do
    echo "--- $t (UBSan, SIMD auto) ---"
    ./build-ubsan/tests/"$t"
    echo "--- $t (UBSan, APKS_FORCE_SCALAR=1) ---"
    APKS_FORCE_SCALAR=1 ./build-ubsan/tests/"$t"
  done
  ./build-ubsan/bench/bench_pairing --smoke >/dev/null
fi
if [[ $STAGE == all || $STAGE == chaos ]]; then
  echo "=== chaos: ASan fault-injection suite (fixed 100-seed schedule matrix) ==="
  configure build-asan -DAPKS_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$JOBS" \
    --target failpoint_test chaos_test bench_faults
  for t in failpoint_test chaos_test; do
    echo "--- $t (ASan) ---"
    ./build-asan/tests/"$t"
  done
  ./build-asan/bench/bench_faults --smoke --json=BENCH_faults.json
  [[ -s BENCH_faults.json ]] || { echo "BENCH_faults.json missing/empty"; exit 1; }
fi
if [[ $STAGE == all || $STAGE == serving ]]; then
  echo "=== serving: TSan network server/client loopback tests ==="
  configure build-tsan -DAPKS_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$JOBS" --target net_test
  echo "--- net_test (TSan) ---"
  ./build-tsan/tests/net_test

  echo "=== serving: ASan hostile-frame sweep + net chaos ==="
  configure build-asan -DAPKS_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$JOBS" --target net_test chaos_test
  echo "--- net_test (ASan, hostile frames) ---"
  ./build-asan/tests/net_test \
    --gtest_filter='*Hostile*:*Oversized*:*RawSocket*:*Mismatch*'
  echo "--- chaos_test (ASan, net chaos) ---"
  ./build-asan/tests/chaos_test --gtest_filter='ChaosTest.Net*'

  echo "=== bench smoke: serving load generator + JSON artifact ==="
  configure build
  cmake --build build -j "$JOBS" --target bench_serving
  ./build/bench/bench_serving --smoke --json=BENCH_serving.json
  [[ -s BENCH_serving.json ]] || { echo "BENCH_serving.json missing/empty"; exit 1; }
fi
if [[ $STAGE == all || $STAGE == cluster ]]; then
  echo "=== cluster: ASan multi-node loopback suite (placement + scatter-gather) ==="
  configure build-asan -DAPKS_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$JOBS" --target cluster_test cluster_health_test
  echo "--- cluster_test (ASan) ---"
  ./build-asan/tests/cluster_test
  echo "--- cluster_test (ASan, chaos drills) ---"
  ./build-asan/tests/cluster_test --gtest_filter='*ClusterChaos*'
  echo "--- cluster_health_test (ASan, self-healing suite) ---"
  ./build-asan/tests/cluster_health_test

  echo "=== cluster: TSan self-healing suite (heartbeats + hedged reads + live rebalance) ==="
  configure build-tsan -DAPKS_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$JOBS" --target cluster_health_test
  echo "--- cluster_health_test (TSan) ---"
  ./build-tsan/tests/cluster_health_test

  echo "=== bench smoke: cluster scatter-gather + JSON artifact ==="
  configure build
  cmake --build build -j "$JOBS" --target bench_cluster
  ./build/bench/bench_cluster --smoke --json=BENCH_cluster.json
  [[ -s BENCH_cluster.json ]] || { echo "BENCH_cluster.json missing/empty"; exit 1; }
fi
echo "CI OK"
