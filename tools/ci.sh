#!/usr/bin/env bash
# CI gate: the tier-1 verify (full build + test suite) followed by a
# ThreadSanitizer build of the cloud/server concurrency tests. Run from the
# repository root:
#
#   tools/ci.sh            # tier-1 + TSan cloud tests
#   tools/ci.sh --tsan     # TSan cloud tests only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}
TSAN_ONLY=0
[[ "${1:-}" == "--tsan" ]] && TSAN_ONLY=1

if [[ $TSAN_ONLY -eq 0 ]]; then
  echo "=== tier-1: full build + ctest ==="
  cmake -B build -S .
  cmake --build build -j "$JOBS"
  (cd build && ctest --output-on-failure -j "$JOBS")

  echo "=== bench smoke: MSM engine comparison + JSON artifact ==="
  ./build/bench/bench_msm --smoke --json=BENCH_msm.json
  [[ -s BENCH_msm.json ]] || { echo "BENCH_msm.json missing/empty"; exit 1; }
  ./build/bench/fig8b_encrypt --smoke >/dev/null
fi

echo "=== TSan: cloud server / search engine tests ==="
cmake -B build-tsan -S . -DAPKS_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$JOBS" \
  --target cloud_test policy_test integration_test search_engine_test
for t in cloud_test policy_test integration_test search_engine_test; do
  echo "--- $t (TSan) ---"
  ./build-tsan/tests/"$t"
done
echo "CI OK"
