// Micro-benchmark backing Section VII-B.4: single pairing cost with and
// without preprocessing (paper: 5.5 ms / 2.5 ms on type-A parameters), plus
// the primitive costs the higher-level numbers decompose into.
#include <benchmark/benchmark.h>

#include "pairing/pairing.h"

namespace apks {
namespace {

struct Fixture {
  Fixture() : e(default_type_a_params()), rng("micro-pairing") {
    p = e.curve().random_point(rng);
    q = e.curve().random_point(rng);
    k = e.fq().random(rng);
    pre = std::make_unique<PreprocessedPairing>(e.preprocess(p));
  }
  Pairing e;
  ChaChaRng rng;
  AffinePoint p, q;
  Fq k{};
  std::unique_ptr<PreprocessedPairing> pre;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_PairingPlain(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.e.pair(f.p, f.q));
  }
}
BENCHMARK(BM_PairingPlain)->Unit(benchmark::kMillisecond);

void BM_PairingPreprocessed(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.pre->pair_with(f.q));
  }
}
BENCHMARK(BM_PairingPreprocessed)->Unit(benchmark::kMillisecond);

void BM_Preprocess(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.e.preprocess(f.p));
  }
}
BENCHMARK(BM_Preprocess)->Unit(benchmark::kMillisecond);

void BM_MillerLoopOnly(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.e.miller(f.p, f.q));
  }
}
BENCHMARK(BM_MillerLoopOnly)->Unit(benchmark::kMillisecond);

void BM_FinalExpOnly(benchmark::State& state) {
  auto& f = fixture();
  const Fp2El m = f.e.miller(f.p, f.q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.e.final_exp(m));
  }
}
BENCHMARK(BM_FinalExpOnly)->Unit(benchmark::kMillisecond);

void BM_ScalarMult(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.e.curve().mul_fq(f.p, f.k));
  }
}
BENCHMARK(BM_ScalarMult)->Unit(benchmark::kMillisecond);

void BM_FixedBaseScalarMult(benchmark::State& state) {
  auto& f = fixture();
  (void)f.e.curve().mul_base_fq(f.k);  // force table construction
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.e.curve().mul_base_fq(f.k));
  }
}
BENCHMARK(BM_FixedBaseScalarMult)->Unit(benchmark::kMillisecond);

void BM_GtExponentiation(benchmark::State& state) {
  auto& f = fixture();
  const GtEl g = f.e.gt_generator();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.e.gt_pow(g, f.k));
  }
}
BENCHMARK(BM_GtExponentiation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace apks

BENCHMARK_MAIN();
