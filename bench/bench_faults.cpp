// Fault-injection bench: what resilience costs, and what degradation
// delivers, in numbers (DESIGN.md §5e).
//
// Three layers, one seeded fault schedule each, publishing the fault
// counters as BENCH_faults.json:
//
//   proxy   — APKS+ ingest through the ResilientProxyPipeline: fault-free
//             throughput vs failover (one replica dead) vs park+drain
//             (every replica of one share dead, then recovered). The
//             interesting number is the failover premium — it should be
//             one extra (cheap) failed attempt per upload, not a second
//             proxy_transform.
//   store   — IndexStore ingest under a seeded one-shot fault schedule
//             (injected EIO/ENOSPC/short writes across the syscall shim),
//             counting crashes, recoveries and recovered records; ingest
//             and recovery wall time show what the crash/recover cycle
//             costs relative to clean appends.
//   serving — SearchEngine batches under a per-block stall with a tight
//             deadline, a generous deadline, and admission pressure;
//             EngineCounters (served / shed / deadline_exceeded) plus scan
//             coverage show the degradation modes actually engaging.
//
// The schedule is deterministic (fixed failpoint seeds, op-count breaker
// cooldowns), so two runs on the same machine publish identical counters —
// only the timings move.
#include <atomic>
#include <cerrno>
#include <filesystem>
#include <memory>
#include <thread>
#include <unistd.h>

#include "bench/bench_util.h"
#include "cloud/proxy_pool.h"
#include "cloud/search_engine.h"
#include "cloud/server.h"
#include "common/failpoint.h"
#include "core/apks_backend.h"
#include "core/apks_plus.h"
#include "store/fs.h"
#include "store/index_store.h"

using namespace apks;
using namespace apks::bench;

namespace {

namespace fs = std::filesystem;

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct Timer {
  Clock::time_point start = Clock::now();
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start).count();
  }
};

void arm_throw(const char* site) {
  FailpointPolicy dead;
  dead.action = FailAction::kThrow;
  Failpoints::instance().set(site, dead);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "BENCH_faults.json");
  const std::size_t kUploads = args.smoke ? 4 : 16;
  const int kStoreOps = args.smoke ? 60 : 400;

  JsonReport report("bench_faults");
  report.set_meta("smoke", args.smoke ? 1 : 0);
  report.set_meta("uploads", kUploads);
  report.set_meta("store_ops", kStoreOps);

  // --- Proxy layer -----------------------------------------------------------
  print_header("Fault injection: resilient proxy chain",
               "Section V proxies made fault-tolerant; failover must not "
               "re-run the pairing-heavy transform chain");

  const Pairing e(default_type_a_params());
  const ApksPlus plus(e, nursery_schema(1));
  ChaChaRng rng("bench-faults");
  const ApksPlusSetupResult setup = plus.setup_plus(rng);
  const std::vector<Fq> shares = plus.split_secret(setup.r, 3, rng);
  const std::vector<PlainIndex> rows = nursery_rows();
  std::vector<EncryptedIndex> partials;
  for (std::size_t i = 0; i < kUploads; ++i) {
    partials.push_back(
        plus.partial_gen_index(setup.pk, rows[(i * 739) % rows.size()], rng));
  }

  ProxyPoolOptions pool_opts;
  pool_opts.replicas = 2;
  pool_opts.breaker_threshold = 0;  // measure raw failover, not skip-cost
  const auto run_pool = [&](const char* mode) {
    ResilientProxyPipeline pool(plus, shares, pool_opts);
    Timer t;
    std::size_t completed = 0;
    for (std::size_t i = 0; i < partials.size(); ++i) {
      if (pool.process(partials[i], "u" + std::to_string(i)).has_value()) {
        ++completed;
      }
    }
    const double wall = t.seconds();
    const ProxyPoolStats s = pool.stats();
    std::printf(
        "%-14s %7.1f ms/upload   transformed %zu  parked %zu  retries %zu  "
        "failovers %zu\n",
        mode, wall / static_cast<double>(partials.size()) * 1e3,
        s.transformed, s.parked, s.retries, s.failovers);
    report.add_row({{"section", "proxy"},
                    {"mode", mode},
                    {"s_per_upload", wall / static_cast<double>(
                                                partials.size())},
                    {"completed", completed},
                    {"transformed", s.transformed},
                    {"parked", s.parked},
                    {"retries", s.retries},
                    {"failovers", s.failovers}});
    return pool.parked_count();
  };

  Failpoints::instance().clear_all();
  (void)run_pool("fault-free");
  arm_throw("proxy.s1.r0");
  (void)run_pool("failover");

  // Park + drain: both replicas of share 1 dead during ingest, recovered
  // before the drain.
  {
    ProxyPoolOptions park_opts = pool_opts;
    park_opts.parking_capacity = kUploads;
    ResilientProxyPipeline pool(plus, shares, park_opts);
    arm_throw("proxy.s1.r0");
    arm_throw("proxy.s1.r1");
    Timer t_ingest;
    for (std::size_t i = 0; i < partials.size(); ++i) {
      (void)pool.process(partials[i], "u" + std::to_string(i));
    }
    const double ingest_wall = t_ingest.seconds();
    Failpoints::instance().clear_all();
    Timer t_drain;
    const std::size_t drained =
        pool.drain([](const std::string&, EncryptedIndex) {});
    const double drain_wall = t_drain.seconds();
    const ProxyPoolStats s = pool.stats();
    std::printf(
        "park+drain     %7.1f ms park, %7.1f ms drain   parked %zu  drained "
        "%zu  lost %zu\n",
        ingest_wall * 1e3, drain_wall * 1e3, s.parked, drained,
        s.parked - drained);
    report.add_row({{"section", "proxy"},
                    {"mode", "park-drain"},
                    {"s_park", ingest_wall},
                    {"s_drain", drain_wall},
                    {"parked", s.parked},
                    {"drained", drained},
                    {"lost", s.parked - drained}});
  }

  // --- Store layer -----------------------------------------------------------
  print_header("Fault injection: store crash/recover cycle",
               "segment+manifest machinery under injected EIO/ENOSPC/short "
               "writes; acknowledged records must all survive");

  const fs::path dir =
      fs::temp_directory_path() /
      ("apks-bench-faults-" + std::to_string(static_cast<unsigned>(getpid())));
  fs::remove_all(dir);
  {
    IndexStoreOptions store_opts;
    store_opts.segment_max_bytes = 4096;
    auto store = std::make_unique<IndexStore>(dir, 0, store_opts);
    std::uint64_t srng = 0x5eed;
    const char* sites[] = {storefs::kSiteWrite, storefs::kSiteFlush,
                           storefs::kSiteFsync, storefs::kSiteRename,
                           storefs::kSiteDirsync};
    std::vector<std::uint8_t> payload(96, 0xab);
    std::size_t acked = 0;
    std::size_t faults_armed = 0;
    std::size_t crashes = 0;
    double recovery_s = 0;
    Timer t_total;
    for (int op = 0; op < kStoreOps; ++op) {
      if (splitmix64(srng) % 8 == 0) {
        FailpointPolicy p;
        p.max_hits = 1;
        p.action = FailAction::kError;
        p.error_code = splitmix64(srng) % 2 == 0 ? EIO : ENOSPC;
        Failpoints::instance().set(sites[splitmix64(srng) % 5], p);
        ++faults_armed;
      }
      try {
        store->put(payload);
        store->sync();
        ++acked;
      } catch (const StoreError&) {
        ++crashes;
        Failpoints::instance().clear_all();
        Timer t_rec;
        store.reset();
        store = std::make_unique<IndexStore>(dir, 0, store_opts);
        recovery_s += t_rec.seconds();
        acked = store->record_count();
      }
      Failpoints::instance().clear_all();
    }
    const double total_s = t_total.seconds();
    std::printf(
        "ops %d  faults armed %zu  crashes %zu  recovered records %zu  "
        "segments %zu\n",
        kStoreOps, faults_armed, crashes, store->record_count(),
        store->segment_count());
    std::printf("total %.1f ms (recovery %.1f ms, %.2f ms/crash)\n",
                total_s * 1e3, recovery_s * 1e3,
                crashes == 0 ? 0.0
                             : recovery_s * 1e3 / static_cast<double>(crashes));
    report.add_row({{"section", "store"},
                    {"ops", kStoreOps},
                    {"faults_armed", faults_armed},
                    {"crashes", crashes},
                    {"acked_records", acked},
                    {"recovered_records", store->record_count()},
                    {"segments", store->segment_count()},
                    {"s_total", total_s},
                    {"s_recovery", recovery_s}});
  }
  fs::remove_all(dir);

  // --- Serving layer ---------------------------------------------------------
  print_header("Fault injection: deadline-aware serving",
               "admission control + per-query deadlines over the Section "
               "VII linear scan");

  ApksPlusBackend backend(plus);
  TrustedAuthority ta(plus, setup.pk, setup.msk, rng);
  CapabilityVerifier verifier(e, ta.ibs_params());
  CloudServer server(backend, verifier);
  ProxyPipeline chain;
  for (const Fq& share : shares) chain.add(ProxyServer(plus, share));
  for (std::size_t i = 0; i < kUploads; ++i) {
    (void)server.store(chain.process(partials[i]), "u" + std::to_string(i));
  }
  std::vector<Capability> caps;
  caps.push_back(
      plus.gen_cap(setup.msk, nursery_point_query(rows[739 % rows.size()]),
                   rng));

  SearchEngine::Options eng_opts;
  eng_opts.threads = 1;
  eng_opts.block_records = 1;
  SearchEngine engine(server, eng_opts);

  // Stall every block so the deadline modes are forced deterministically.
  FailpointPolicy slow;
  slow.action = FailAction::kDelay;
  slow.delay_ms = args.smoke ? 5 : 10;
  Failpoints::instance().set("engine.scan_block", slow);

  const auto serve = [&](const char* mode, std::uint64_t deadline_ms,
                         bool partial_ok) {
    ServeControl ctl;
    ctl.deadline_ms = deadline_ms;
    ctl.partial_ok = partial_ok;
    BatchMetrics bm;
    Timer t;
    std::size_t results = 0;
    bool deadline_hit = false;
    try {
      results = engine.search_batch_unchecked(caps, &bm, ctl)[0].size();
      deadline_hit = bm.deadline_exceeded;
    } catch (const DeadlineExceeded&) {
      deadline_hit = true;
    }
    std::printf("%-18s %7.1f ms  scanned %zu/%zu  results %zu  %s\n", mode,
                t.seconds() * 1e3, bm.per_query[0].scanned, kUploads, results,
                deadline_hit ? "deadline" : "completed");
    report.add_row({{"section", "serving"},
                    {"mode", mode},
                    {"deadline_ms", deadline_ms},
                    {"s_wall", t.seconds()},
                    {"scanned", bm.per_query[0].scanned},
                    {"records", kUploads},
                    {"results", results},
                    {"deadline_exceeded", deadline_hit ? 1 : 0}});
  };
  serve("no-deadline", 0, false);
  serve("generous", 60000, false);
  serve("tight-throw", slow.delay_ms * 2, false);
  serve("tight-partial", slow.delay_ms * 2, true);

  // Admission: one slot, a second batch arrives while the first is mid-scan.
  Failpoints::instance().clear_all();
  Failpoints::instance().set("engine.scan_block", slow);
  SearchEngine::Options strict_opts = eng_opts;
  strict_opts.max_inflight = 1;
  SearchEngine gated(server, strict_opts);
  std::atomic<bool> bg_done{false};
  std::thread bg([&] {
    (void)gated.search_batch_unchecked(caps);
    bg_done.store(true);
  });
  while (gated.inflight() == 0 && !bg_done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::size_t shed_seen = 0;
  try {
    (void)gated.search_batch_unchecked(caps);
  } catch (const Overloaded&) {
    shed_seen = 1;
  }
  bg.join();
  Failpoints::instance().clear_all();

  const EngineCounters ec = engine.counters();
  const EngineCounters gc = gated.counters();
  std::printf(
      "engine counters: served %llu  deadline_exceeded %llu  shed (gated "
      "engine) %llu\n",
      static_cast<unsigned long long>(ec.served),
      static_cast<unsigned long long>(ec.deadline_exceeded),
      static_cast<unsigned long long>(gc.shed));
  report.add_row({{"section", "serving"},
                  {"mode", "counters"},
                  {"served", static_cast<std::size_t>(ec.served)},
                  {"deadline_exceeded",
                   static_cast<std::size_t>(ec.deadline_exceeded)},
                  {"cancelled", static_cast<std::size_t>(ec.cancelled)},
                  {"shed", static_cast<std::size_t>(gc.shed)},
                  {"shed_observed", shed_seen}});

  if (args.json) {
    if (!report.write(args.json_path)) return 1;
  }
  return 0;
}
