// Pairing-kernel microbenchmarks: the per-operation costs behind the
// search hot path (Miller loop, final exponentiation, multi-pairing of a
// full capability's 13 slots) and the throughput of the lane-parallel
// BlockMultiPairing scan kernel on every engine the build and CPU support.
//
// The numbers quantify the two tentpole levers independently:
//   - algorithmic: multi_miller of N slots shares one accumulator squaring
//     chain and one final exponentiation, so it beats N independent pair()
//     calls well before any SIMD is involved;
//   - SIMD: the scan kernel drives W records through the shared Miller
//     loop with lane-parallel Montgomery arithmetic; scalar vs avx2 vs
//     avx512 rows isolate the vector speedup at identical outputs.
#include "bench/bench_util.h"
#include "math/fp_lanes.h"
#include "pairing/pairing_block.h"

using namespace apks;
using namespace apks::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "BENCH_pairing.json");
  const std::size_t kDim = 13;  // APKS capability slots on the bench schema
  const std::size_t kRecords = args.smoke ? 16 : 64;
  const double budget_ms = args.smoke ? 80 : 300;
  const int max_iters = args.smoke ? 4 : 8;

  const Pairing e(default_type_a_params());
  ChaChaRng rng("bench-pairing");
  const Curve& curve = e.curve();

  print_header("Pairing kernel microbenchmarks",
               "search probes are pairing products; per-record cost is one "
               "multi-pairing of n+3 slots, served scalar or SIMD with "
               "byte-identical GT output");

  JsonReport report("bench_pairing");
  report.set_meta("smoke", args.smoke ? 1 : 0);
  report.set_meta("dim", kDim);
  report.set_meta("records", kRecords);
  report.set_meta("simd_detected", simd_level_name(simd_level_detected()));
  report.set_meta("simd_effective", simd_level_name(simd_level()));

  const AffinePoint p = curve.random_point(rng);
  const AffinePoint q = curve.random_point(rng);
  const Fp2El mf = e.miller(p, q);

  const auto per_op = [&](const char* op, const std::function<void()>& fn) {
    const double s = time_op_median(fn, budget_ms, max_iters);
    std::printf("%-18s %9.3f ms  (%8.1f ops/s)\n", op, s * 1e3, 1.0 / s);
    report.add_row({{"op", op}, {"seconds", s}, {"ops_per_s", 1.0 / s}});
    return s;
  };

  per_op("pair", [&] { (void)e.pair(p, q); });
  per_op("miller", [&] { (void)e.miller(p, q); });
  per_op("final_exp", [&] { (void)e.final_exp(mf); });

  std::vector<MillerPair> pairs(kDim);
  std::vector<PreprocessedPairing> pres;
  std::vector<AffinePoint> qs(kDim);
  pres.reserve(kDim);
  for (std::size_t s = 0; s < kDim; ++s) {
    pairs[s].p = curve.random_point(rng);
    pairs[s].q = curve.random_point(rng);
    pres.push_back(e.preprocess(pairs[s].p));
    qs[s] = pairs[s].q;
  }
  per_op("multi_miller_13", [&] { (void)e.final_exp(e.multi_miller(pairs)); });
  per_op("multi_miller_pre_13",
         [&] { (void)e.final_exp(e.multi_miller_pre(pres, qs)); });

  // --- BlockMultiPairing scan-kernel throughput per engine ----------------
  std::vector<std::vector<AffinePoint>> qrows(kRecords);
  std::vector<const AffinePoint*> qvecs;
  for (auto& row : qrows) {
    row.resize(kDim);
    for (auto& pt : row) pt = curve.random_point(rng);
    qvecs.push_back(row.data());
  }
  std::vector<GtEl> out(kRecords);
  for (const SimdLevel lvl :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (simd_level_detected() < lvl) continue;
    auto pres_copy = pres;
    const BlockMultiPairing kernel(e, std::move(pres_copy), lvl);
    if (kernel.engine_level() != lvl) continue;  // built without ISA support
    const double s = time_op_median(
        [&] { kernel.run(qvecs.data(), qvecs.size(), out.data()); },
        budget_ms, max_iters);
    const double rec_s = static_cast<double>(kRecords) / s;
    std::printf("kernel[%-7s]    %9.3f ms/block  (%8.1f records/s, %zu lanes)\n",
                kernel.engine_name(), s * 1e3, rec_s, kernel.lane_width());
    report.add_row({{"op", "kernel_scan"},
                    {"engine", kernel.engine_name()},
                    {"lanes", kernel.lane_width()},
                    {"records", kRecords},
                    {"seconds", s},
                    {"records_per_s", rec_s},
                    {"millers_per_s", rec_s * static_cast<double>(kDim)}});
  }

  if (args.json) {
    if (!report.write(args.json_path)) return 1;
  }
  return 0;
}
