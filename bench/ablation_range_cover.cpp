// Range-expressiveness analysis (the design discussion of Section IV-C):
// why APKS restricts range queries to simple ranges from one level.
//
// For random ranges over a numeric domain we count the OR terms required by
// three strategies:
//   leaf-only   — one equality per value (the strawman the paper calls
//                 O(N) — query complexity linear in the domain);
//   single-level— the paper's simple-range queries: the best level whose
//                 node cover fits, counting its OR terms (coarsened when no
//                 level represents the range exactly);
//   multi-level — MRQED-style exact canonical cover across levels; tight,
//                 but every touched level consumes OR budget in a separate
//                 sub-field, so the required d is the *max per level* and
//                 several sub-fields are constrained at once.
// No cryptography runs here; this is a pure combinatorial ablation that
// quantifies the trade-off the paper states qualitatively.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"

using namespace apks;
using namespace apks::bench;

int main() {
  const std::uint64_t kDomain = 256;
  const auto tree = AttributeHierarchy::numeric("v", 0, kDomain - 1, 4, 5);
  ChaChaRng rng("range-cover");

  print_header("Ablation (Sec. IV-C): range-query expressiveness vs OR cost",
               "simple one-level ranges keep d small at the price of "
               "granularity; exact multi-level covers (MRQED-style) need "
               "more OR terms spread over several sub-fields");

  const int kTrials = 2000;
  double sum_leaf = 0, sum_single = 0, sum_multi = 0, sum_multi_levels = 0;
  int single_exact = 0;
  std::size_t worst_single = 0, worst_multi = 0;
  for (int t = 0; t < kTrials; ++t) {
    const std::uint64_t a = rng.next_below(kDomain);
    const std::uint64_t b = rng.next_below(kDomain);
    const std::uint64_t lo = std::min(a, b), hi = std::max(a, b);

    // leaf-only: one term per leaf bucket in range.
    const auto leaves = tree.cover_range(lo, hi, tree.height());
    sum_leaf += static_cast<double>(leaves.size());

    // single-level: deepest level whose cover is exact, else the deepest
    // level overall (over-approximate); cost = cover size at that level.
    std::size_t best_terms = 0;
    bool exact_found = false;
    for (std::size_t level = tree.height(); level >= 1; --level) {
      if (tree.range_is_exact(lo, hi, level)) {
        const auto cover = tree.cover_range(lo, hi, level);
        if (!exact_found || cover.size() < best_terms) {
          best_terms = cover.size();
        }
        exact_found = true;
      }
    }
    if (!exact_found) {
      best_terms = tree.cover_range(lo, hi, tree.height()).size();
    } else {
      ++single_exact;
    }
    sum_single += static_cast<double>(best_terms);
    worst_single = std::max(worst_single, best_terms);

    // multi-level exact cover.
    bool tight = false;
    const auto multi = tree.multi_level_cover(lo, hi, &tight);
    sum_multi += static_cast<double>(multi.size());
    worst_multi = std::max(worst_multi, multi.size());
    std::map<std::size_t, std::size_t> per_level;
    for (const std::size_t idx : multi) per_level[tree.node(idx).level]++;
    sum_multi_levels += static_cast<double>(per_level.size());
  }

  std::printf("domain [0,%lu], quaternary tree, %d random ranges\n",
              static_cast<unsigned long>(kDomain - 1), kTrials);
  std::printf("%-28s %14s %10s\n", "strategy", "avg OR terms", "worst");
  std::printf("%-28s %14.1f %10zu\n", "leaf-only equalities",
              sum_leaf / kTrials, static_cast<std::size_t>(0) + 255);
  std::printf("%-28s %14.1f %10zu   (exactly representable: %.0f%%)\n",
              "single-level simple range", sum_single / kTrials, worst_single,
              100.0 * single_exact / kTrials);
  std::printf("%-28s %14.1f %10zu   (avg %.1f levels touched)\n",
              "multi-level exact cover", sum_multi / kTrials, worst_multi,
              sum_multi_levels / kTrials);
  std::printf(
      "\nreading: the multi-level cover is exact but needs OR budget in "
      "~%.0f sub-fields simultaneously, inflating n; the paper's "
      "single-level ranges keep one active sub-field per dimension.\n",
      sum_multi_levels / kTrials);
  return 0;
}
