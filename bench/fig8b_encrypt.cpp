// Fig. 8(b): per-index encrypted index generation time against n.
//
// Paper: two sweeps confirming the time depends only on n = m'*d —
// (i) m' = 9 fixed, d = 1..5; (ii) d = 1 fixed, fields duplicated so
// m' = 9..45 — both O(n0^2), ~15 s at n=46 on the paper's hardware.
// MRQED encryption is O(n) (~2.3 s at n=46 there).
#include "bench/bench_util.h"
#include "mrqed/mrqed.h"

using namespace apks;
using namespace apks::bench;

int main() {
  const Pairing pairing(default_type_a_params());
  ChaChaRng rng("fig8b");
  const auto rows = nursery_rows();

  print_header("Fig. 8(b): Encrypted index generation time vs n",
               "APKS ~15s at n=46, O(n^2), same time for equal n=m'*d; "
               "MRQED ~2.3s at n=46, O(n)");

  std::printf("\nsweep (i): m'=9 fixed, d = 1..5 (n = 9d+1)\n");
  std::printf("%6s %6s %16s\n", "n", "d", "APKS_encrypt_s");
  std::vector<double> sweep1;
  for (std::size_t d = 1; d <= 5; ++d) {
    const Apks scheme(pairing, nursery_schema(d));
    ApksPublicKey pk;
    ApksMasterKey msk;
    scheme.setup(rng, pk, msk);
    std::size_t row = 0;
    const double s = time_op(
        [&] {
          (void)scheme.gen_index(pk, rows[(row += 97) % rows.size()], rng);
        },
        1500, 5);
    sweep1.push_back(s);
    std::printf("%6zu %6zu %16.3f\n", scheme.n(), d, s);
  }

  std::printf("\nsweep (ii): d=1 fixed, duplicated fields m' = 9k (n = 9k+1)\n");
  std::printf("%6s %6s %16s %15s\n", "n", "k", "APKS_encrypt_s",
              "MRQED_encrypt_s");
  std::size_t k = 0;
  for (const std::size_t n : paper_n_values(5)) {
    ++k;
    const Apks scheme(pairing, nursery_expanded_schema(k, 1));
    ApksPublicKey pk;
    ApksMasterKey msk;
    scheme.setup(rng, pk, msk);
    std::size_t row = 0;
    const double s = time_op(
        [&] {
          (void)scheme.gen_index(
              pk, expand_nursery_row(rows[(row += 97) % rows.size()], k),
              rng);
        },
        1500, 5);

    const Mrqed mrqed(pairing, 9, k);
    MrqedPublicKey mpk;
    MrqedMasterKey mmsk;
    mrqed.setup(rng, mpk, mmsk);
    const double ms_ = time_op(
        [&] {
          std::vector<std::uint64_t> point(9);
          for (auto& v : point) v = rng.next_below(std::uint64_t{1} << k);
          (void)mrqed.encrypt(mpk, point, rng);
        },
        1000, 5);
    std::printf("%6zu %6zu %16.3f %15.3f\n", n, k, s, ms_);
  }
  std::printf(
      "expectation: sweeps (i) and (ii) agree at equal n (encryption cost "
      "is a function of n only); APKS quadratic, MRQED linear and faster.\n");
  return 0;
}
