// Fig. 8(b): per-index encrypted index generation time against n.
//
// Paper: two sweeps confirming the time depends only on n = m'*d —
// (i) m' = 9 fixed, d = 1..5; (ii) d = 1 fixed, fields duplicated so
// m' = 9..45 — both O(n0^2), ~15 s at n=46 on the paper's hardware.
// MRQED encryption is O(n) (~2.3 s at n=46 there).
//
// Engine headline (this repo): the same GenIndex at the Nursery config
// n = 73 (k = 8) under each scalar-multiplication engine. Outputs are
// bit-identical under a shared seed (checked below); only wall-clock moves.
#include "bench/bench_util.h"
#include "hpe/serialize.h"
#include "mrqed/mrqed.h"

using namespace apks;
using namespace apks::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "BENCH_fig8b.json");
  const Pairing pairing(default_type_a_params());
  ChaChaRng rng("fig8b");
  const auto rows = nursery_rows();
  JsonReport report("fig8b_encrypt");
  report.set_meta("smoke", args.smoke ? 1 : 0);

  print_header("Fig. 8(b): Encrypted index generation time vs n",
               "APKS ~15s at n=46, O(n^2), same time for equal n=m'*d; "
               "MRQED ~2.3s at n=46, O(n)");

  const std::size_t max_d = args.smoke ? 2 : 5;
  const double budget = args.smoke ? 1 : 1500;
  const int iters = args.smoke ? 1 : 5;

  std::printf("\nsweep (i): m'=9 fixed, d = 1..%zu (n = 9d+1)\n", max_d);
  std::printf("%6s %6s %16s\n", "n", "d", "APKS_encrypt_s");
  for (std::size_t d = 1; d <= max_d; ++d) {
    const Apks scheme(pairing, nursery_schema(d));
    ApksPublicKey pk;
    ApksMasterKey msk;
    scheme.setup(rng, pk, msk);
    scheme.warm_precomp(pk);
    std::size_t row = 0;
    const double s = time_op(
        [&] {
          (void)scheme.gen_index(pk, rows[(row += 97) % rows.size()], rng);
        },
        budget, iters);
    std::printf("%6zu %6zu %16.3f\n", scheme.n(), d, s);
    report.add_row({{"section", "sweep_d"},
                    {"n", scheme.n()},
                    {"d", d},
                    {"apks_encrypt_s", s}});
  }

  std::printf("\nsweep (ii): d=1 fixed, duplicated fields m' = 9k (n = 9k+1)\n");
  std::printf("%6s %6s %16s %15s\n", "n", "k", "APKS_encrypt_s",
              "MRQED_encrypt_s");
  std::size_t k = 0;
  for (const std::size_t n : paper_n_values(max_d)) {
    ++k;
    const Apks scheme(pairing, nursery_expanded_schema(k, 1));
    ApksPublicKey pk;
    ApksMasterKey msk;
    scheme.setup(rng, pk, msk);
    scheme.warm_precomp(pk);
    std::size_t row = 0;
    const double s = time_op(
        [&] {
          (void)scheme.gen_index(
              pk, expand_nursery_row(rows[(row += 97) % rows.size()], k),
              rng);
        },
        budget, iters);

    const Mrqed mrqed(pairing, 9, k);
    MrqedPublicKey mpk;
    MrqedMasterKey mmsk;
    mrqed.setup(rng, mpk, mmsk);
    const double ms_ = time_op(
        [&] {
          std::vector<std::uint64_t> point(9);
          for (auto& v : point) v = rng.next_below(std::uint64_t{1} << k);
          (void)mrqed.encrypt(mpk, point, rng);
        },
        args.smoke ? 1 : 1000, iters);
    std::printf("%6zu %6zu %16.3f %15.3f\n", n, k, s, ms_);
    report.add_row({{"section", "sweep_k"},
                    {"n", n},
                    {"k", k},
                    {"apks_encrypt_s", s},
                    {"mrqed_encrypt_s", ms_}});
  }
  std::printf(
      "expectation: sweeps (i) and (ii) agree at equal n (encryption cost "
      "is a function of n only); APKS quadratic, MRQED linear and faster.\n");

  // --- engine headline: GenIndex at the Nursery config --------------------
  const std::size_t hk = args.smoke ? 1 : 8;
  const std::size_t hn = 9 * hk + 1;
  std::printf("\nengine headline: GenIndex at k=%zu (n=%zu)\n", hk, hn);
  std::printf("%14s %16s %9s\n", "engine", "APKS_encrypt_s", "speedup");
  double naive_s = 0;
  for (const ScalarEngine engine :
       {ScalarEngine::kNaive, ScalarEngine::kWindowed,
        ScalarEngine::kPrecomputed}) {
    const Apks scheme(pairing, nursery_expanded_schema(hk, 1),
                      HpeOptions{engine});
    ChaChaRng hrng("fig8b-headline");
    ApksPublicKey pk;
    ApksMasterKey msk;
    scheme.setup(hrng, pk, msk);
    scheme.warm_precomp(pk);
    std::size_t row = 0;
    const double s = time_op(
        [&] {
          (void)scheme.gen_index(
              pk, expand_nursery_row(rows[(row += 97) % rows.size()], hk),
              hrng);
        },
        args.smoke ? 1 : 2000, args.smoke ? 1 : 3);
    if (engine == ScalarEngine::kNaive) naive_s = s;
    std::printf("%14s %16.3f %8.2fx\n", engine_name(engine), s, naive_s / s);
    report.add_row({{"section", "engine_headline"},
                    {"k", hk},
                    {"n", hn},
                    {"engine", engine_name(engine)},
                    {"apks_encrypt_s", s},
                    {"speedup_vs_naive", naive_s / s}});
  }

  // --- bit-identity: same seed => same ciphertext bytes, every engine -----
  {
    std::vector<std::vector<std::uint8_t>> cts;
    for (const ScalarEngine engine :
         {ScalarEngine::kNaive, ScalarEngine::kWindowed,
          ScalarEngine::kPrecomputed}) {
      const Apks scheme(pairing, nursery_expanded_schema(1, 1),
                        HpeOptions{engine});
      ChaChaRng brng("fig8b-bit-identity");
      ApksPublicKey pk;
      ApksMasterKey msk;
      scheme.setup(brng, pk, msk);
      const auto enc =
          scheme.gen_index(pk, expand_nursery_row(rows[0], 1), brng);
      cts.push_back(serialize_ciphertext(pairing, enc.ct));
    }
    const bool identical = cts[1] == cts[0] && cts[2] == cts[0];
    std::printf("bit-identity across engines (k=1, seeded): %s\n",
                identical ? "yes" : "NO — ENGINE BUG");
    report.set_meta("bit_identical", identical ? 1 : 0);
    if (!identical) return 1;
  }

  if (args.json && !report.write(args.json_path)) return 1;
  return 0;
}
