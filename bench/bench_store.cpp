// Storage engine throughput: ingest, reload, and the disk-scan penalty.
//
// The paper's server is an in-memory linear scanner; the storage engine
// adds durability (CRC-framed segments, crash recovery) underneath it.
// This bench answers the questions that decide whether persistence is
// free: how fast records ingest through the write-through path (crypto
// excluded — records are pre-generated), how fast a cold server reloads
// from disk, and how much slower a shard-parallel scan over the on-disk
// segments is than the same scan over the in-memory record vector.
// Expected shape: ingest and reload are I/O-bound and orders of magnitude
// faster than gen_index; the disk-scan delta is small because pairing
// evaluations, not frame decoding, dominate the scan.
#include <filesystem>

#include "bench/bench_util.h"
#include "cloud/server.h"
#include "core/serialize_apks.h"
#include "store/sharded_store.h"

using namespace apks;
using namespace apks::bench;

namespace {

namespace fs = std::filesystem;

struct Timer {
  Clock::time_point start = Clock::now();
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start).count();
  }
};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "BENCH_store.json");
  const std::size_t kRecords = args.smoke ? 32 : 256;
  const std::uint32_t kShards = 4;

  const Pairing pairing(default_type_a_params());
  ChaChaRng rng("bench-store");
  const Apks scheme(pairing, nursery_schema(1));
  ApksPublicKey pk;
  ApksMasterKey msk;
  scheme.setup(rng, pk, msk);

  // Pre-generate the workload so ingest times I/O, not gen_index.
  const std::vector<PlainIndex> rows = nursery_rows();
  std::vector<EncryptedIndex> indexes;
  std::vector<std::string> refs;
  std::uint64_t payload_bytes = 0;
  for (std::size_t i = 0; i < kRecords; ++i) {
    const PlainIndex& row = rows[(i * 739) % rows.size()];
    indexes.push_back(scheme.gen_index(pk, row, rng));
    refs.push_back("doc-" + std::to_string(i));
    payload_bytes += serialize_index(pairing, indexes.back()).size();
  }
  const Capability cap =
      scheme.gen_cap(msk, nursery_worst_case_query(1, rng), rng);

  const fs::path dir =
      fs::temp_directory_path() /
      ("apks-bench-store-" + std::to_string(static_cast<unsigned>(getpid())));
  fs::remove_all(dir);

  print_header("Storage engine: ingest, reload, disk scan",
               "persistence layer under the Section VII server; the paper's "
               "scan cost is pairing-bound, so disk streaming should be "
               "nearly free");
  std::printf("records: %zu, shards: %u, payload: %.1f KiB\n", kRecords,
              kShards, static_cast<double>(payload_bytes) / 1024.0);

  JsonReport report("bench_store");
  report.set_meta("smoke", args.smoke ? 1 : 0);
  report.set_meta("records", kRecords);
  report.set_meta("shards", kShards);
  report.set_meta("payload_bytes", payload_bytes);

  // --- Ingest: append + sync through the sharded write path.
  double ingest_s = 0;
  {
    ShardedStoreOptions opts;
    opts.shards = kShards;
    ShardedStore store(pairing, dir, opts);
    const Timer t;
    for (std::size_t i = 0; i < kRecords; ++i) {
      (void)store.append(refs[i], indexes[i]);
    }
    store.sync();
    ingest_s = t.seconds();
  }
  const double ingest_rps = static_cast<double>(kRecords) / ingest_s;
  std::printf("ingest: %.4f s (%.0f records/s, %.2f MiB/s)\n", ingest_s,
              ingest_rps,
              static_cast<double>(payload_bytes) / ingest_s / (1 << 20));
  report.add_row({{"phase", "ingest"},
                  {"seconds", ingest_s},
                  {"records_per_s", ingest_rps}});

  // --- Reload: reopen (replays + checksums every frame) and rebuild the
  // in-memory server, as a restart would.
  Timer reload_timer;
  ShardedStoreOptions opts;
  opts.shards = kShards;
  ShardedStore store(pairing, dir, opts);
  CloudServer server(scheme, CapabilityVerifier(pairing, IbsPublicParams{}));
  const std::size_t loaded = server.load_from(store);
  const double reload_s = reload_timer.seconds();
  if (loaded != kRecords) {
    std::fprintf(stderr, "reload lost records: %zu != %zu\n", loaded,
                 kRecords);
    return 1;
  }
  const double reload_rps = static_cast<double>(kRecords) / reload_s;
  std::printf("reload: %.4f s (%.0f records/s)\n", reload_s, reload_rps);
  report.add_row({{"phase", "reload"},
                  {"seconds", reload_s},
                  {"records_per_s", reload_rps}});

  // --- Scan: on-disk shard-parallel stream vs the in-memory record vector,
  // same capability, same worst-case query.
  const double mem_s = time_op_median(
      [&] { (void)server.search_unchecked(cap); }, args.smoke ? 200 : 500,
      args.smoke ? 3 : 8);
  const double disk_s = time_op_median(
      [&] { (void)store.search(scheme, cap, 1); }, args.smoke ? 200 : 500,
      args.smoke ? 3 : 8);
  const double disk_par_s = time_op_median(
      [&] { (void)store.search(scheme, cap, kShards); },
      args.smoke ? 200 : 500, args.smoke ? 3 : 8);
  std::printf("scan in-memory: %.4f s; disk 1 thread: %.4f s (%.2fx); "
              "disk %u threads: %.4f s\n",
              mem_s, disk_s, disk_s / mem_s, kShards, disk_par_s);
  report.add_row({{"phase", "scan_memory"}, {"seconds", mem_s}});
  report.add_row({{"phase", "scan_disk"},
                  {"seconds", disk_s},
                  {"vs_memory", disk_s / mem_s}});
  report.add_row({{"phase", "scan_disk_parallel"},
                  {"seconds", disk_par_s},
                  {"threads", kShards},
                  {"vs_memory", disk_par_s / mem_s}});

  fs::remove_all(dir);
  if (args.json && !report.write(args.json_path)) return 1;
  return 0;
}
