// Scale-out cluster throughput: coordinator scatter-gather over N serving
// nodes on loopback (DESIGN.md §5i).
//
// The single-node serving bench (bench_serving) measures one engine behind
// one epoll front end; this bench partitions the same store across a node
// fleet with rendezvous-hash placement and drives it through Coordinators:
//
//   nodes=1: one node owns every shard — the scatter degenerates to a
//            single RPC and the node scans its shards sequentially.
//   nodes=3: shards spread across three processes' worth of engines, so
//            a full scatter runs shard scans on three nodes concurrently.
//
// Two kinds of scaling rows, because this bench runs the whole fleet on
// ONE box:
//
//   scatter: the raw pairing-CPU scan. On a multi-core host the 3-node
//            rows approach 3x the 1-node QPS; on a single core the
//            concurrent scans timeshare and the fan-out overhead makes
//            3 nodes slightly *slower* — that is the machine, not the
//            cluster.
//   iobound: the scan stalls a fixed delay per record (engine.scan_block
//            failpoint — modelling remote storage), so per-search wall
//            time is records/nodes * delay regardless of cores. This row
//            is where scatter-width itself shows: QPS scales ~Nx from
//            1 to 3 nodes even on one core, because stalls overlap.
//
// A failover row kills the primary of shard 0 mid-fleet and repeats the
// load: every search still returns the full (byte-identical) result via
// replicas, and the row reports the failover rate the breaker settles
// into.
//
// A final pair of slowtail rows stalls one node's scan per search
// (engine.scan_block kDelay) and runs the load with hedged reads off,
// then on: hedging races the shards' next replica after the node's
// latency quantile, so the on-row's p99 drops from ~the stall to ~the
// hedge delay while total RPCs stay within primaries + hedge budget.
//
// JSON artifact (BENCH_cluster.json): one row per (nodes, coordinators)
// plus the failover and slowtail rows, each with p50/p99 latency (ms)
// and QPS.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/coordinator.h"
#include "cluster/node.h"
#include "common/failpoint.h"
#include "core/apks_backend.h"
#include "data/nursery.h"
#include "store/sharded_store.h"

using namespace apks;
using namespace apks::bench;

namespace {

namespace fs = std::filesystem;

struct Timer {
  Clock::time_point start = Clock::now();
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start).count();
  }
};

double percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

struct LoadStats {
  std::vector<double> latencies_ms;  // sorted on finish()
  double wall_s = 0;
  std::uint64_t searches = 0;
  std::uint64_t rpcs = 0;
  std::uint64_t retries = 0;
  std::uint64_t failovers = 0;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;

  void finish() { std::sort(latencies_ms.begin(), latencies_ms.end()); }
  [[nodiscard]] double qps() const {
    return wall_s > 0 ? static_cast<double>(searches) / wall_s : 0;
  }
};

// A running fleet: in-process nodes bound to ephemeral loopback ports,
// plus the map (with real ports) coordinators dial.
struct Fleet {
  std::vector<std::unique_ptr<cluster::ClusterNode>> nodes;
  cluster::ClusterMap map{{{"seed", "127.0.0.1", 1}}, 1, 1};

  void stop() {
    for (auto& node : nodes) node->stop();
  }
};

Fleet start_fleet(const ApksBackend& backend, const Pairing& pairing,
                  ShardedStore& store, std::size_t node_count,
                  std::uint32_t replicas) {
  // Placement depends on names only, so build the map twice: once with
  // port 0 to learn ownership, again with the ports the nodes bound.
  std::vector<cluster::NodeInfo> infos;
  for (std::size_t i = 0; i < node_count; ++i) {
    infos.push_back({"bench-node-" + std::to_string(i), "127.0.0.1", 0});
  }
  const cluster::ClusterMap port0(infos, store.shard_count(), replicas);

  Fleet fleet;
  for (std::size_t i = 0; i < node_count; ++i) {
    cluster::ClusterNodeOptions opts;
    opts.engine.threads = 1;  // scaling must come from the fleet, not SMP
    opts.engine.block_records = 1;  // iobound rows: one stall per record
    opts.net.allow_unchecked = true;
    fleet.nodes.push_back(std::make_unique<cluster::ClusterNode>(
        backend, CapabilityVerifier(pairing, IbsPublicParams{}), store, port0,
        static_cast<std::uint32_t>(i), std::move(opts)));
    infos[i].port = fleet.nodes.back()->port();
  }
  fleet.map = cluster::ClusterMap(std::move(infos), store.shard_count(),
                                  replicas);
  return fleet;
}

// Closed loop: `coordinators` threads, each with its own Coordinator
// (matching its thread-affinity contract), each issuing `iters` searches.
LoadStats closed_loop(const ApksBackend& backend, const Pairing& pairing,
                      const cluster::ClusterMap& map, const AnyQuery& query,
                      std::size_t coordinators, std::size_t iters,
                      const std::vector<std::string>& expected) {
  LoadStats total;
  std::mutex merge_mutex;
  std::vector<std::thread> threads;
  bool all_exact = true;
  for (std::size_t c = 0; c < coordinators; ++c) {
    threads.emplace_back([&] {
      LoadStats local;
      bool exact = true;
      cluster::Coordinator coord(
          backend, CapabilityVerifier(pairing, IbsPublicParams{}), map);
      // Untimed warmup: dial every node, authorize the session query and
      // populate the engines' prepared-query caches, so the timed rows
      // measure the steady state (the coordinator keeps its connections
      // and session auth across searches).
      (void)coord.search_any(query);
      Timer loop;  // wall excludes the warmup: steady-state QPS
      for (std::size_t i = 0; i < iters; ++i) {
        Timer t;
        cluster::ClusterSearchStats stats;
        const std::vector<std::string> refs =
            coord.search_any(query, &stats);
        local.latencies_ms.push_back(t.seconds() * 1e3);
        ++local.searches;
        local.rpcs += stats.rpcs;
        local.retries += stats.retries;
        local.failovers += stats.failovers;
        exact = exact && refs == expected;
      }
      local.wall_s = loop.seconds();
      const std::lock_guard<std::mutex> lock(merge_mutex);
      total.latencies_ms.insert(total.latencies_ms.end(),
                                local.latencies_ms.begin(),
                                local.latencies_ms.end());
      total.searches += local.searches;
      total.rpcs += local.rpcs;
      total.retries += local.retries;
      total.failovers += local.failovers;
      total.wall_s = std::max(total.wall_s, local.wall_s);
      all_exact = all_exact && exact;
    });
  }
  for (auto& t : threads) t.join();
  total.finish();
  if (!all_exact) {
    std::printf("  WARNING: a cluster search diverged from the single-node "
                "result\n");
  }
  return total;
}

// The hedged-read tail row: one coordinator, every search has exactly ONE
// node scan stalled `stall_ms` server-side (engine.scan_block kDelay,
// re-armed with max_hits=1 per search — the first node to reach a block
// eats the delay, the rest run clean). The stall leaves the primary RPC
// parked in recv — exactly the slow-replica shape hedging is for, and a
// wait abort() can interrupt. With hedging off the stall IS the search's
// latency; with hedging on the coordinator races the shards' next
// replica after the node's latency quantile, the hedge wins, the stuck
// loser is aborted, and p99 collapses to ~(hedge delay + scan) while the
// per-search RPC count stays within primaries + hedge budget.
LoadStats slowtail_loop(const ApksBackend& backend, const Pairing& pairing,
                        const cluster::ClusterMap& map, const AnyQuery& query,
                        std::size_t iters, std::uint32_t stall_ms,
                        std::uint64_t hedge_delay_ms,
                        const std::vector<std::string>& expected) {
  const bool hedge_on = hedge_delay_ms != 0;
  cluster::CoordinatorOptions copts;
  if (hedge_on) {
    copts.hedge.enabled = true;
    // The delay window sits ABOVE a healthy scan (calibrated by the
    // caller) and far below the stall: healthy primaries finish before
    // their hedge deadline (no budget burned on them), the stalled one
    // trips it. The max clamp keeps the adaptive quantile from chasing
    // the very tail the hedges exist to cut once stall samples enter
    // the latency ring.
    copts.hedge.initial_delay_ms = hedge_delay_ms;
    copts.hedge.min_delay_ms = hedge_delay_ms;
    copts.hedge.max_delay_ms = hedge_delay_ms * 2;
    copts.hedge.budget = 2;
  }
  cluster::Coordinator coord(
      backend, CapabilityVerifier(pairing, IbsPublicParams{}), map,
      std::move(copts));
  (void)coord.search_any(query);  // warmup: dial + session auth, no stall
  LoadStats s;
  bool exact = true;
  Timer loop;
  for (std::size_t i = 0; i < iters; ++i) {
    FailpointPolicy slow;
    slow.action = FailAction::kDelay;
    slow.delay_ms = stall_ms;
    slow.max_hits = 1;
    Failpoints::instance().set("engine.scan_block", slow);
    Timer t;
    cluster::ClusterSearchStats stats;
    const std::vector<std::string> refs = coord.search_any(query, &stats);
    s.latencies_ms.push_back(t.seconds() * 1e3);
    ++s.searches;
    s.rpcs += stats.rpcs;
    s.retries += stats.retries;
    s.failovers += stats.failovers;
    s.hedges += stats.hedges;
    s.hedge_wins += stats.hedge_wins;
    exact = exact && refs == expected;
  }
  Failpoints::instance().clear_all();
  s.wall_s = loop.seconds();
  s.finish();
  if (!exact) {
    std::printf("  WARNING: a hedged cluster search diverged from the "
                "single-node result\n");
  }
  return s;
}

void print_row(const char* mode, std::size_t nodes, std::size_t coords,
               const LoadStats& s) {
  std::printf("  %-8s nodes=%zu coords=%zu  searches=%4" PRIu64
              "  qps=%7.2f  p50=%7.2f ms  p99=%7.2f ms"
              "  rpcs=%" PRIu64 " retries=%" PRIu64 " failovers=%" PRIu64 "\n",
              mode, nodes, coords, s.searches, s.qps(),
              percentile(s.latencies_ms, 0.50),
              percentile(s.latencies_ms, 0.99), s.rpcs, s.retries,
              s.failovers);
}

void add_row(JsonReport& report, const char* mode, std::size_t nodes,
             std::size_t coords, const LoadStats& s) {
  report.add_row({{"mode", mode},
                  {"nodes", nodes},
                  {"coordinators", coords},
                  {"searches", static_cast<std::size_t>(s.searches)},
                  {"qps", s.qps()},
                  {"p50_ms", percentile(s.latencies_ms, 0.50)},
                  {"p99_ms", percentile(s.latencies_ms, 0.99)},
                  {"rpcs", static_cast<std::size_t>(s.rpcs)},
                  {"retries", static_cast<std::size_t>(s.retries)},
                  {"failovers", static_cast<std::size_t>(s.failovers)}});
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "BENCH_cluster.json");
  const std::size_t kRecords = args.smoke ? 12 : 48;
  const std::size_t kIters = args.smoke ? 2 : 6;
  const std::vector<std::size_t> kCoordCounts =
      args.smoke ? std::vector<std::size_t>{1} : std::vector<std::size_t>{1, 4};
  constexpr std::uint32_t kShards = 6;

  const Pairing pairing(default_type_a_params());
  ChaChaRng rng("bench-cluster");
  const Apks scheme(pairing, nursery_schema(1));
  ApksPublicKey pk;
  ApksMasterKey msk;
  scheme.setup(rng, pk, msk);
  const ApksBackend backend(scheme);

  print_header(
      "Cluster scatter-gather: QPS scaling 1 -> 3 nodes, plus failover",
      "the same store partitioned by rendezvous hashing across a node "
      "fleet; the coordinator merges per-shard hits byte-identically to "
      "the single-node scan");

  const std::vector<PlainIndex> rows = nursery_rows();
  const fs::path dir =
      fs::temp_directory_path() /
      ("apks-bench-cluster-" + std::to_string(static_cast<unsigned>(getpid())));
  fs::remove_all(dir);
  ShardedStoreOptions store_opts;
  store_opts.shards = kShards;
  ShardedStore store(backend, dir, store_opts);
  for (std::size_t i = 0; i < kRecords; ++i) {
    (void)store.append("doc-" + std::to_string(i),
                       scheme.gen_index(pk, rows[(i * 739) % rows.size()], rng));
  }
  store.sync();

  // A point query for a row the ingest loop actually wrote, so the merge
  // path carries real hits (an empty result would make byte-identity
  // trivially true).
  const Capability cap =
      scheme.gen_cap(msk, nursery_point_query(rows[739 % rows.size()]), rng);
  const AnyQuery query = AnyQuery::ref(SchemeKind::kApks, &cap);
  const std::vector<std::string> expected = store.search_any(query);
  std::printf("records: %zu across %u shards, %zu match the bench query\n",
              store.record_count(), store.shard_count(), expected.size());

  JsonReport report("cluster");
  report.set_meta("records", store.record_count());
  report.set_meta("shards", kShards);
  report.set_meta("smoke", args.smoke ? 1 : 0);
  report.set_meta("iters", kIters);

  // --- scaling sweep: same load against 1-node and 3-node fleets -----------
  const std::uint32_t kStallMs = args.smoke ? 5u : 10u;
  for (const std::size_t node_count : {std::size_t{1}, std::size_t{3}}) {
    const std::uint32_t replicas = node_count >= 2 ? 2u : 1u;
    Fleet fleet = start_fleet(backend, pairing, store, node_count, replicas);
    for (const std::size_t coords : kCoordCounts) {
      const LoadStats s = closed_loop(backend, pairing, fleet.map, query,
                                      coords, kIters, expected);
      print_row("scatter", node_count, coords, s);
      add_row(report, "scatter", node_count, coords, s);
    }

    // Latency-bound scan: a fixed stall per record makes per-search wall
    // time (records / nodes) * stall — scatter-width scaling independent
    // of how many cores this box has.
    FailpointPolicy stall;
    stall.action = FailAction::kDelay;
    stall.delay_ms = kStallMs;
    Failpoints::instance().set("engine.scan_block", stall);
    const LoadStats io = closed_loop(backend, pairing, fleet.map, query,
                                     /*coordinators=*/1, kIters, expected);
    Failpoints::instance().clear_all();
    print_row("iobound", node_count, 1, io);
    add_row(report, "iobound", node_count, 1, io);

    fleet.stop();
  }

  // --- failover row: kill shard 0's primary, keep serving ------------------
  {
    Fleet fleet = start_fleet(backend, pairing, store, 3, /*replicas=*/2);
    fleet.nodes[fleet.map.primary_of(0)]->stop();
    const LoadStats s = closed_loop(backend, pairing, fleet.map, query,
                                    /*coordinators=*/1, kIters, expected);
    print_row("failover", 3, 1, s);
    add_row(report, "failover", 3, 1, s);
    if (s.failovers == 0) {
      std::printf("  note: expected failovers > 0 with the primary down\n");
    }
    fleet.stop();
  }

  // --- hedged-read rows: a slow replica's tail, hedge off vs on ------------
  // Every search stalls exactly one primary RPC; see slowtail_loop. The
  // off/on pair shares the fleet, so the p99 delta is the hedging.
  {
    const std::size_t kTailIters = args.smoke ? 6 : 16;
    Fleet fleet = start_fleet(backend, pairing, store, 3, /*replicas=*/2);

    // Calibrate the hedge deadline off THIS machine's healthy scatter
    // latency (fixed numbers would hedge clean primaries on a slow box
    // and never fire on a fast one): delay = 2x a healthy search, stall
    // covers the delay with a wide margin so the p99 contrast is the
    // hedging, not the calibration.
    double healthy_ms = 0;
    {
      cluster::Coordinator cal(
          backend, CapabilityVerifier(pairing, IbsPublicParams{}), fleet.map);
      (void)cal.search_any(query);  // warmup: dial + session auth
      constexpr std::size_t kCalIters = 3;
      Timer t;
      for (std::size_t i = 0; i < kCalIters; ++i) (void)cal.search_any(query);
      healthy_ms = t.seconds() * 1e3 / kCalIters;
    }
    const auto hedge_delay_ms =
        std::max<std::uint64_t>(30, static_cast<std::uint64_t>(2 * healthy_ms));
    const auto stall_ms = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(8 * hedge_delay_ms, 300));
    std::printf("  slowtail calibration: healthy=%.2f ms -> hedge delay %"
                PRIu64 " ms, stall %u ms\n",
                healthy_ms, hedge_delay_ms, stall_ms);

    const LoadStats off =
        slowtail_loop(backend, pairing, fleet.map, query, kTailIters,
                      stall_ms, /*hedge_delay_ms=*/0, expected);
    const LoadStats on =
        slowtail_loop(backend, pairing, fleet.map, query, kTailIters,
                      stall_ms, hedge_delay_ms, expected);
    fleet.stop();
    for (const auto* pair : {&off, &on}) {
      const LoadStats& s = *pair;
      const bool hedged = pair == &on;
      std::printf("  %-8s nodes=3 coords=1  searches=%4" PRIu64
                  "  qps=%7.2f  p50=%7.2f ms  p99=%7.2f ms"
                  "  rpcs=%" PRIu64 " hedges=%" PRIu64 " wins=%" PRIu64 "\n",
                  hedged ? "hedge-on" : "hedge-off", s.searches, s.qps(),
                  percentile(s.latencies_ms, 0.50),
                  percentile(s.latencies_ms, 0.99), s.rpcs, s.hedges,
                  s.hedge_wins);
      report.add_row({{"mode", "slowtail"},
                      {"nodes", std::size_t{3}},
                      {"coordinators", std::size_t{1}},
                      {"hedge", hedged ? std::size_t{1} : std::size_t{0}},
                      {"stall_ms", static_cast<std::size_t>(stall_ms)},
                      {"searches", static_cast<std::size_t>(s.searches)},
                      {"qps", s.qps()},
                      {"p50_ms", percentile(s.latencies_ms, 0.50)},
                      {"p99_ms", percentile(s.latencies_ms, 0.99)},
                      {"rpcs", static_cast<std::size_t>(s.rpcs)},
                      {"hedges", static_cast<std::size_t>(s.hedges)},
                      {"hedge_wins", static_cast<std::size_t>(s.hedge_wins)}});
    }
    const double p99_off = percentile(off.latencies_ms, 0.99);
    const double p99_on = percentile(on.latencies_ms, 0.99);
    // The hedge budget bounds speculative extras: primaries (3 nodes) plus
    // at most `budget` hedges per search.
    const std::uint64_t rpc_cap = on.searches * (3 + 2);
    if (p99_on >= p99_off) {
      std::printf("  note: expected hedging to cut the slow-replica p99 "
                  "(off %.2f ms, on %.2f ms)\n", p99_off, p99_on);
    }
    if (on.rpcs > rpc_cap) {
      std::printf("  note: hedged RPCs (%" PRIu64 ") exceed the per-search "
                  "budget cap (%" PRIu64 ")\n", on.rpcs, rpc_cap);
    }
    std::printf("  slow-replica tail: hedging cut p99 %.2f -> %.2f ms "
                "(%.1fx) with %" PRIu64 " extra rpcs over %" PRIu64
                " searches\n",
                p99_off, p99_on, p99_on > 0 ? p99_off / p99_on : 0.0,
                on.rpcs - off.rpcs, on.searches);
  }

  if (args.json) (void)report.write(args.json_path);
  fs::remove_all(dir);
  return 0;
}
