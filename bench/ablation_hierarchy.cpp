// Section VII-C ablation: the m / k / d trade-off at fixed n.
//
// For the same vector length n there are several design points: flat
// fields with a large OR budget (m=9, d=5, k=1), deep hierarchies with
// single-node queries (m=9, d=1, k=5), or the paper's mixed layout
// (3 hierarchical fields at k=9... here: mixed flat/hierarchical at n=46).
// The crypto cost depends only on n — what changes is expressiveness: how
// wide a range one capability can cover. This bench measures both.
#include "bench/bench_util.h"

using namespace apks;
using namespace apks::bench;

namespace {

struct Config {
  const char* name;
  Schema schema;
  Query query;
  PlainIndex row;
};

}  // namespace

int main() {
  const Pairing pairing(default_type_a_params());
  ChaChaRng rng("ablation-h");
  const auto rows = nursery_rows();

  print_header(
      "Ablation (Sec. VII-C): m/k/d trade-off at equal n",
      "equal n => equal crypto cost; larger k buys wider ranges per single "
      "OR term (expressiveness), larger d buys more disjuncts per level");

  std::vector<Config> configs;
  // (a) m'=9 flat, d=5: n = 46. Query uses 5 ORs in one dimension.
  {
    Query q;
    q.terms.assign(9, QueryTerm::any());
    q.terms[1] = QueryTerm::subset({"proper", "less_proper", "improper",
                                    "critical", "very_crit"});
    configs.push_back(
        {"m=9, d=5, k=1 (flat, 5 ORs)", nursery_schema(5), q, rows[11]});
  }
  // (b) same n from a hierarchy: one numeric dimension expanded into k=5
  // sub-fields plus 40 flat fields, all at d=1, so n = 5 + 40 + 1 = 46.
  {
    auto tree = std::make_shared<AttributeHierarchy>(
        AttributeHierarchy::numeric("value", 0, 255, 4, 5));
    std::vector<Dimension> dims{{"value", tree, 1}};
    for (int i = 0; i < 40; ++i) {
      dims.push_back({"pad" + std::to_string(i), nullptr, 1});
    }
    Schema schema(std::move(dims));
    Query q;
    q.terms.assign(41, QueryTerm::any());
    // One level-2 node covers a 64-wide range with a single equality term.
    q.terms[0] = QueryTerm::range(0, 63, 2);
    PlainIndex row;
    row.values.push_back("17");
    for (int i = 0; i < 40; ++i) row.values.push_back("x");
    configs.push_back({"k=5 hierarchy, d=1 (range 0-63 = 1 term)",
                       std::move(schema), q, row});
  }

  std::printf("%-42s %4s %12s %12s %12s\n", "config", "n", "encrypt_s",
              "gencap_s", "search_s");
  for (auto& cfg : configs) {
    const Apks scheme(pairing, cfg.schema);
    ApksPublicKey pk;
    ApksMasterKey msk;
    scheme.setup(rng, pk, msk);
    EncryptedIndex enc;
    const double enc_s =
        time_op([&] { enc = scheme.gen_index(pk, cfg.row, rng); }, 1200, 4);
    Capability cap;
    const double cap_s =
        time_op([&] { cap = scheme.gen_cap(msk, cfg.query, rng); }, 1200, 4);
    const double search_s =
        time_op([&] { (void)scheme.search(cap, enc); }, 600, 10);
    std::printf("%-42s %4zu %12.3f %12.3f %12.4f\n", cfg.name, scheme.n(),
                enc_s, cap_s, search_s);
  }

  std::printf(
      "\nexpressiveness at d=1: flat schema covers 1 keyword per term; the "
      "k=5 hierarchy covers any aligned 4^l-wide range (up to 256 values) "
      "with a single term — the paper's motivation for attribute "
      "hierarchies.\n");
  return 0;
}
