// Section VII sizes table: serialized object sizes at n = 46 (l = 1
// delegation), against the paper's closed-form byte counts.
//
// Paper formulas (65-byte compressed elements, 20-byte scalars, n0 = n+3):
//   PK  = 65*[n0(n0-1)+3] B  (~153 KB at n=46)
//   MSK = 85*n0^2 B          (~204 KB)
//   encrypted index = 65*(n0+1) B (~3.25 KB)
//   capability      = 65*[n0^2+(l+3)n0] B (~169 KB at l=1)
// Our encodings add small explicit headers; element payloads match.
#include "bench/bench_util.h"
#include "hpe/serialize.h"
#include "mrqed/serialize.h"

using namespace apks;
using namespace apks::bench;

namespace {

double kb(std::size_t bytes) { return static_cast<double>(bytes) / 1024.0; }

}  // namespace

int main() {
  const Pairing pairing(default_type_a_params());
  ChaChaRng rng("sizes");
  constexpr std::size_t kFactor = 5;  // n = 46
  const Apks scheme(pairing, nursery_expanded_schema(kFactor, 1));
  const std::size_t n = scheme.n();
  const std::size_t n0 = n + 3;

  print_header("Sizes at n=46 (Section VII text)",
               "PK 153KB, MSK 204KB, index 3.25KB, capability(l=1) 169KB; "
               "MRQED: 22.5KB / 22.5KB / 11.6KB / 14.4KB");

  ApksPublicKey pk;
  ApksMasterKey msk;
  scheme.setup(rng, pk, msk);
  const auto rows = nursery_rows();
  const auto enc = scheme.gen_index(pk, expand_nursery_row(rows[7], kFactor),
                                    rng);
  Query q;
  q.terms.assign(scheme.schema().original_dims(), QueryTerm::any());
  q.terms[0] = QueryTerm::equals("usual");
  const auto cap = scheme.gen_cap(msk, q, rng);
  Query q2;
  q2.terms.assign(scheme.schema().original_dims(), QueryTerm::any());
  q2.terms[9] = QueryTerm::equals("proper");
  const auto delegated = scheme.delegate_cap(cap, q2, rng);

  const std::size_t pk_b = serialize_public_key(pairing, pk.hpe).size();
  const std::size_t msk_b = serialize_master_key(pairing, msk.hpe).size();
  const std::size_t ct_b = serialize_ciphertext(pairing, enc.ct).size();
  const std::size_t cap_b = serialize_key(pairing, delegated.key).size();

  std::printf("%-22s %12s %12s %14s\n", "object", "measured_KB", "paper_KB",
              "paper_formula_KB");
  std::printf("%-22s %12.1f %12s %14.1f\n", "APKS public key", kb(pk_b),
              "153", kb(65 * (n0 * (n0 - 1) + 3)));
  std::printf("%-22s %12.1f %12s %14.1f\n", "APKS master key", kb(msk_b),
              "204", kb(85 * n0 * n0));
  std::printf("%-22s %12.2f %12s %14.2f\n", "encrypted index", kb(ct_b),
              "3.25", kb(65 * (n0 + 1)));
  std::printf("%-22s %12.1f %12s %14.1f\n", "capability (l=1)", kb(cap_b),
              "169", kb(65 * (n0 * n0 + 4 * n0)));

  // MRQED sized to the same comparison point (9 dims, 5-level trees).
  const Mrqed mrqed(pairing, 9, kFactor);
  MrqedPublicKey mpk;
  MrqedMasterKey mmsk;
  mrqed.setup(rng, mpk, mmsk);
  const auto mct = mrqed.encrypt(
      mpk, std::vector<std::uint64_t>(9, 3), rng);
  // Key for a mid-size range per dimension.
  std::vector<MrqedRange> ranges(9, {1, (1u << kFactor) - 2});
  const auto mkey = mrqed.gen_key(mpk, mmsk, ranges, rng);
  std::printf("%-22s %12.1f %12s\n", "MRQED public key",
              kb(serialize_mrqed_public_key(pairing, mpk).size()), "22.5");
  std::printf("%-22s %12.1f %12s\n", "MRQED ciphertext",
              kb(serialize_mrqed_ciphertext(pairing, mct).size()), "11.6");
  std::printf("%-22s %12.1f %12s\n", "MRQED key",
              kb(serialize_mrqed_key(pairing, mkey).size()), "14.4");

  std::printf("\nnote: APKS measured sizes track the paper's formulas (the "
              "small excess is explicit length headers). The key contrast — "
              "APKS objects quadratic in n, index small, MRQED linear — is "
              "reproduced.\n");
  // Consistency check so the bench fails loudly if encodings drift:
  // c1 is a 4-byte count plus n0 compressed points, c2 one GT element.
  if (ct_b != 4 + 65 * n0 + 65) {
    std::printf("ERROR: ciphertext size deviates from layout formula\n");
    return 1;
  }
  return 0;
}
