// Shared helpers for the experiment-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper's Section
// VII and prints the measured series next to the paper's reported numbers.
// Absolute times differ (the paper used a 3.4 GHz Pentium D with PBC in
// 2011); the claims under test are the *shapes*: scaling exponents, who
// wins, and by roughly what factor. Iteration counts adapt to op cost so
// every binary finishes in minutes on one core.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/apks.h"
#include "data/nursery.h"
#include "data/workload.h"

namespace apks::bench {

using Clock = std::chrono::steady_clock;

// Times `fn` repeatedly until ~`budget_ms` elapsed (at least once, at most
// `max_iters`); returns mean seconds per call.
inline double time_op(const std::function<void()>& fn, double budget_ms = 500,
                      int max_iters = 20) {
  const auto start = Clock::now();
  int iters = 0;
  for (;;) {
    fn();
    ++iters;
    const double elapsed =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (elapsed >= budget_ms || iters >= max_iters) {
      return elapsed / 1000.0 / iters;
    }
  }
}

// Noise-robust variant: runs `batches` independent time_op measurements and
// returns the median — one-core machines see scheduler spikes that would
// otherwise put outliers into a published series.
inline double time_op_median(const std::function<void()>& fn,
                             double budget_ms = 300, int max_iters = 8,
                             int batches = 3) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(batches));
  for (int b = 0; b < batches; ++b) {
    samples.push_back(time_op(fn, budget_ms, max_iters));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

inline void print_header(const char* title, const char* paper_note) {
  std::printf("\n=== %s ===\n", title);
  std::printf("paper reference: %s\n", paper_note);
}

// The n values of the paper's sweeps: n = 9k + 1 for expansion factors
// k = 1..8 (Table III uses all eight; the figures stop at 46).
inline std::vector<std::size_t> paper_n_values(std::size_t max_k) {
  std::vector<std::size_t> out;
  for (std::size_t k = 1; k <= max_k; ++k) out.push_back(9 * k + 1);
  return out;
}

}  // namespace apks::bench
