// Shared helpers for the experiment-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper's Section
// VII and prints the measured series next to the paper's reported numbers.
// Absolute times differ (the paper used a 3.4 GHz Pentium D with PBC in
// 2011); the claims under test are the *shapes*: scaling exponents, who
// wins, and by roughly what factor. Iteration counts adapt to op cost so
// every binary finishes in minutes on one core.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/apks.h"
#include "data/nursery.h"
#include "data/workload.h"

namespace apks::bench {

using Clock = std::chrono::steady_clock;

// Times `fn` repeatedly until ~`budget_ms` elapsed (at least once, at most
// `max_iters`); returns mean seconds per call.
inline double time_op(const std::function<void()>& fn, double budget_ms = 500,
                      int max_iters = 20) {
  const auto start = Clock::now();
  int iters = 0;
  for (;;) {
    fn();
    ++iters;
    const double elapsed =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (elapsed >= budget_ms || iters >= max_iters) {
      return elapsed / 1000.0 / iters;
    }
  }
}

// Noise-robust variant: runs `batches` independent time_op measurements and
// returns the median — one-core machines see scheduler spikes that would
// otherwise put outliers into a published series.
inline double time_op_median(const std::function<void()>& fn,
                             double budget_ms = 300, int max_iters = 8,
                             int batches = 3) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(batches));
  for (int b = 0; b < batches; ++b) {
    samples.push_back(time_op(fn, budget_ms, max_iters));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

inline void print_header(const char* title, const char* paper_note) {
  std::printf("\n=== %s ===\n", title);
  std::printf("paper reference: %s\n", paper_note);
}

// The n values of the paper's sweeps: n = 9k + 1 for expansion factors
// k = 1..8 (Table III uses all eight; the figures stop at 46).
inline std::vector<std::size_t> paper_n_values(std::size_t max_k) {
  std::vector<std::size_t> out;
  for (std::size_t k = 1; k <= max_k; ++k) out.push_back(9 * k + 1);
  return out;
}

// Command-line switches shared by the bench binaries:
//   --smoke        shrink parameter sweeps + iteration budgets so the binary
//                  finishes in seconds (CI gate, not a measurement)
//   --json[=path]  additionally write the measured series as JSON (default
//                  path is per-binary, e.g. BENCH_msm.json)
struct BenchArgs {
  bool smoke = false;
  bool json = false;
  std::string json_path;
};

inline BenchArgs parse_bench_args(int argc, char** argv,
                                  const std::string& default_json_path) {
  BenchArgs args;
  args.json_path = default_json_path;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strcmp(a, "--json") == 0) {
      args.json = true;
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      args.json = true;
      args.json_path = a + 7;
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --smoke, --json[=path])\n",
                   a);
      std::exit(2);
    }
  }
  return args;
}

// A number-or-string JSON scalar. The benches only ever emit flat rows of
// these, so a tagged pair beats pulling in a JSON library.
struct JsonValue {
  enum class Kind { kNumber, kString } kind;
  double num = 0;
  std::string str;
  JsonValue(double v) : kind(Kind::kNumber), num(v) {}                // NOLINT
  JsonValue(int v) : kind(Kind::kNumber), num(v) {}                   // NOLINT
  JsonValue(unsigned v) : kind(Kind::kNumber), num(v) {}              // NOLINT
  JsonValue(std::size_t v)                                            // NOLINT
      : kind(Kind::kNumber), num(static_cast<double>(v)) {}
  JsonValue(const char* s) : kind(Kind::kString), str(s) {}           // NOLINT
  JsonValue(std::string s) : kind(Kind::kString), str(std::move(s)) {}// NOLINT
};

// Machine-readable bench output: one object with ordered meta fields and an
// ordered list of flat rows. Numbers render with %.9g, which round-trips
// timings and every integer the benches produce.
class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  void set_meta(const std::string& key, JsonValue value) {
    meta_.emplace_back(key, std::move(value));
  }
  void add_row(std::vector<std::pair<std::string, JsonValue>> row) {
    rows_.push_back(std::move(row));
  }

  // Returns false (and reports) when the file cannot be written.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": ");
    write_string(f, bench_);
    std::fprintf(f, ",\n  \"meta\": {");
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      std::fprintf(f, "%s", i == 0 ? "" : ", ");
      write_string(f, meta_[i].first);
      std::fprintf(f, ": ");
      write_value(f, meta_[i].second);
    }
    std::fprintf(f, "},\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "    {");
      for (std::size_t j = 0; j < rows_[i].size(); ++j) {
        std::fprintf(f, "%s", j == 0 ? "" : ", ");
        write_string(f, rows_[i][j].first);
        std::fprintf(f, ": ");
        write_value(f, rows_[i][j].second);
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    const bool ok = std::fclose(f) == 0;
    if (ok) std::printf("wrote %s\n", path.c_str());
    return ok;
  }

 private:
  static void write_string(std::FILE* f, const std::string& s) {
    std::fputc('"', f);
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        std::fputc('\\', f);
        std::fputc(c, f);
      } else if (c == '\n') {
        std::fputs("\\n", f);
      } else {
        std::fputc(c, f);
      }
    }
    std::fputc('"', f);
  }
  static void write_value(std::FILE* f, const JsonValue& v) {
    if (v.kind == JsonValue::Kind::kString) {
      write_string(f, v.str);
    } else {
      std::fprintf(f, "%.9g", v.num);
    }
  }

  std::string bench_;
  std::vector<std::pair<std::string, JsonValue>> meta_;
  std::vector<std::vector<std::pair<std::string, JsonValue>>> rows_;
};

// The engine triple every comparison bench sweeps, in report order.
inline const char* engine_name(ScalarEngine e) {
  switch (e) {
    case ScalarEngine::kNaive: return "naive";
    case ScalarEngine::kWindowed: return "windowed";
    case ScalarEngine::kPrecomputed: return "precomputed";
  }
  return "?";
}

}  // namespace apks::bench
