// Fig. 8(c): capability generation and first-level delegation time vs n.
//
// Paper, set 1 (worst case): no hierarchy (k=1), the query constrains all
// m' dimensions with d random keywords each, so the predicate vector has no
// zero entries. Set 2 (realistic): d=1, expansion factor k = 1..8, at most
// 9 constrained fields — the "don't care" zeros make both operations grow
// visibly slower with n. Delegation is cheaper than direct generation
// (~35 s at n=46 on the paper's hardware). Both are O(n0^2); MRQED key
// generation is O(n) (~2.3 s at n=46 there).
//
// Engine headline (this repo): GenCap/Delegate at the Nursery config n = 73
// (k = 8) under each scalar-multiplication engine; same outputs (seeded),
// only wall-clock moves.
#include "bench/bench_util.h"
#include "mrqed/mrqed.h"

using namespace apks;
using namespace apks::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "BENCH_fig8c.json");
  const Pairing pairing(default_type_a_params());
  ChaChaRng rng("fig8c");
  JsonReport report("fig8c_capability");
  report.set_meta("smoke", args.smoke ? 1 : 0);

  print_header(
      "Fig. 8(c): Capability generation & delegation vs n",
      "both O(n^2); set 2 grows slower than set 1 (don't-care zeros); "
      "delegation ~35s at n=46 on paper hardware, cheaper than GenCap; "
      "MRQED GenKey O(n) ~2.3s");

  const std::size_t max_d = args.smoke ? 2 : 5;
  const double budget = args.smoke ? 1 : 1500;
  const int iters = args.smoke ? 1 : 5;

  std::printf("\nset 1 (worst case): m'=9, d=1..%zu, all dims constrained\n",
              max_d);
  std::printf("%6s %6s %12s %14s\n", "n", "d", "GenCap_s", "Delegate_s");
  for (std::size_t d = 1; d <= max_d; ++d) {
    const Apks scheme(pairing, nursery_schema(d));
    ApksPublicKey pk;
    ApksMasterKey msk;
    scheme.setup(rng, pk, msk);
    scheme.warm_precomp(msk);
    Capability cap;
    const double gen_s = time_op(
        [&] { cap = scheme.gen_cap_naive(msk, nursery_worst_case_query(d, rng), rng); },
        budget, iters);
    const double del_s = time_op(
        [&] {
          (void)scheme.delegate_cap_naive(
              cap, nursery_worst_case_query(d, rng), rng);
        },
        budget, iters);
    std::printf("%6zu %6zu %12.3f %14.3f\n", scheme.n(), d, gen_s, del_s);
    report.add_row({{"section", "set1"},
                    {"n", scheme.n()},
                    {"d", d},
                    {"gen_cap_s", gen_s},
                    {"delegate_s", del_s}});
  }

  std::printf("\nset 2 (realistic): d=1, expansion k=1..%zu, <=9 active fields\n",
              max_d);
  std::printf("%6s %6s %12s %14s %14s\n", "n", "k", "GenCap_s", "Delegate_s",
              "MRQED_GenKey_s");
  std::size_t k = 0;
  for (const std::size_t n : paper_n_values(max_d)) {
    ++k;
    const Apks scheme(pairing, nursery_expanded_schema(k, 1));
    ApksPublicKey pk;
    ApksMasterKey msk;
    scheme.setup(rng, pk, msk);
    scheme.warm_precomp(msk);
    Capability cap;
    const double gen_s = time_op(
        [&] {
          cap = scheme.gen_cap_naive(
              msk, nursery_expanded_realistic_query(k, 1, rng), rng);
        },
        budget, iters);
    const double del_s = time_op(
        [&] {
          (void)scheme.delegate_cap_naive(
              cap, nursery_expanded_realistic_query(k, 1, rng), rng);
        },
        budget, iters);

    const Mrqed mrqed(pairing, 9, k);
    MrqedPublicKey mpk;
    MrqedMasterKey mmsk;
    mrqed.setup(rng, mpk, mmsk);
    const double mrqed_s = time_op(
        [&] {
          std::vector<MrqedRange> ranges(9);
          const std::uint64_t domain = std::uint64_t{1} << k;
          for (auto& r : ranges) {
            const std::uint64_t a = rng.next_below(domain);
            const std::uint64_t b = rng.next_below(domain);
            r = {std::min(a, b), std::max(a, b)};
          }
          (void)mrqed.gen_key(mpk, mmsk, ranges, rng);
        },
        args.smoke ? 1 : 1000, iters);
    std::printf("%6zu %6zu %12.3f %14.3f %14.3f\n", n, k, gen_s, del_s,
                mrqed_s);
    report.add_row({{"section", "set2"},
                    {"n", n},
                    {"k", k},
                    {"gen_cap_s", gen_s},
                    {"delegate_s", del_s},
                    {"mrqed_gen_key_s", mrqed_s}});
  }
  std::printf(
      "expectation: set 2 grows slower than set 1 at equal n; delegation <= "
      "generation; MRQED fastest (linear).\n");

  // --- engine headline: GenCap/Delegate at the Nursery config -------------
  const std::size_t hk = args.smoke ? 1 : 8;
  const std::size_t hn = 9 * hk + 1;
  std::printf("\nengine headline: GenCap/Delegate (naive variants) at k=%zu "
              "(n=%zu)\n", hk, hn);
  std::printf("%14s %12s %14s %9s\n", "engine", "GenCap_s", "Delegate_s",
              "speedup");
  double naive_gen = 0;
  for (const ScalarEngine engine :
       {ScalarEngine::kNaive, ScalarEngine::kWindowed,
        ScalarEngine::kPrecomputed}) {
    const Apks scheme(pairing, nursery_expanded_schema(hk, 1),
                      HpeOptions{engine});
    ChaChaRng hrng("fig8c-headline");
    ApksPublicKey pk;
    ApksMasterKey msk;
    scheme.setup(hrng, pk, msk);
    scheme.warm_precomp(msk);
    Capability cap;
    const double gen_s = time_op(
        [&] {
          cap = scheme.gen_cap_naive(
              msk, nursery_expanded_realistic_query(hk, 1, hrng), hrng);
        },
        args.smoke ? 1 : 2000, args.smoke ? 1 : 2);
    const double del_s = time_op(
        [&] {
          (void)scheme.delegate_cap_naive(
              cap, nursery_expanded_realistic_query(hk, 1, hrng), hrng);
        },
        args.smoke ? 1 : 2000, args.smoke ? 1 : 2);
    if (engine == ScalarEngine::kNaive) naive_gen = gen_s;
    std::printf("%14s %12.3f %14.3f %8.2fx\n", engine_name(engine), gen_s,
                del_s, naive_gen / gen_s);
    report.add_row({{"section", "engine_headline"},
                    {"k", hk},
                    {"n", hn},
                    {"engine", engine_name(engine)},
                    {"gen_cap_s", gen_s},
                    {"delegate_s", del_s},
                    {"speedup_vs_naive", naive_gen / gen_s}});
  }

  if (args.json && !report.write(args.json_path)) return 1;
  return 0;
}
