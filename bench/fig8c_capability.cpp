// Fig. 8(c): capability generation and first-level delegation time vs n.
//
// Paper, set 1 (worst case): no hierarchy (k=1), the query constrains all
// m' dimensions with d random keywords each, so the predicate vector has no
// zero entries. Set 2 (realistic): d=1, expansion factor k = 1..8, at most
// 9 constrained fields — the "don't care" zeros make both operations grow
// visibly slower with n. Delegation is cheaper than direct generation
// (~35 s at n=46 on the paper's hardware). Both are O(n0^2); MRQED key
// generation is O(n) (~2.3 s at n=46 there).
#include "bench/bench_util.h"
#include "mrqed/mrqed.h"

using namespace apks;
using namespace apks::bench;

int main() {
  const Pairing pairing(default_type_a_params());
  ChaChaRng rng("fig8c");

  print_header(
      "Fig. 8(c): Capability generation & delegation vs n",
      "both O(n^2); set 2 grows slower than set 1 (don't-care zeros); "
      "delegation ~35s at n=46 on paper hardware, cheaper than GenCap; "
      "MRQED GenKey O(n) ~2.3s");

  std::printf("\nset 1 (worst case): m'=9, d=1..5, all dims constrained\n");
  std::printf("%6s %6s %12s %14s\n", "n", "d", "GenCap_s", "Delegate_s");
  for (std::size_t d = 1; d <= 5; ++d) {
    const Apks scheme(pairing, nursery_schema(d));
    ApksPublicKey pk;
    ApksMasterKey msk;
    scheme.setup(rng, pk, msk);
    Capability cap;
    const double gen_s = time_op(
        [&] { cap = scheme.gen_cap_naive(msk, nursery_worst_case_query(d, rng), rng); },
        1500, 5);
    const double del_s = time_op(
        [&] {
          (void)scheme.delegate_cap_naive(
              cap, nursery_worst_case_query(d, rng), rng);
        },
        1500, 5);
    std::printf("%6zu %6zu %12.3f %14.3f\n", scheme.n(), d, gen_s, del_s);
  }

  std::printf("\nset 2 (realistic): d=1, expansion k=1..5, <=9 active fields\n");
  std::printf("%6s %6s %12s %14s %14s\n", "n", "k", "GenCap_s", "Delegate_s",
              "MRQED_GenKey_s");
  std::size_t k = 0;
  for (const std::size_t n : paper_n_values(5)) {
    ++k;
    const Apks scheme(pairing, nursery_expanded_schema(k, 1));
    ApksPublicKey pk;
    ApksMasterKey msk;
    scheme.setup(rng, pk, msk);
    Capability cap;
    const double gen_s = time_op(
        [&] {
          cap = scheme.gen_cap_naive(
              msk, nursery_expanded_realistic_query(k, 1, rng), rng);
        },
        1500, 5);
    const double del_s = time_op(
        [&] {
          (void)scheme.delegate_cap_naive(
              cap, nursery_expanded_realistic_query(k, 1, rng), rng);
        },
        1500, 5);

    const Mrqed mrqed(pairing, 9, k);
    MrqedPublicKey mpk;
    MrqedMasterKey mmsk;
    mrqed.setup(rng, mpk, mmsk);
    const double mrqed_s = time_op(
        [&] {
          std::vector<MrqedRange> ranges(9);
          const std::uint64_t domain = std::uint64_t{1} << k;
          for (auto& r : ranges) {
            const std::uint64_t a = rng.next_below(domain);
            const std::uint64_t b = rng.next_below(domain);
            r = {std::min(a, b), std::max(a, b)};
          }
          (void)mrqed.gen_key(mpk, mmsk, ranges, rng);
        },
        1000, 5);
    std::printf("%6zu %6zu %12.3f %14.3f %14.3f\n", n, k, gen_s, del_s,
                mrqed_s);
  }
  std::printf(
      "expectation: set 2 grows slower than set 1 at equal n; delegation <= "
      "generation; MRQED fastest (linear).\n");
  return 0;
}
