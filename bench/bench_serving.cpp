// End-to-end serving throughput and latency through the network layer:
// NetServer (epoll front end) + NetClient load generator over loopback.
//
// The paper's cost story stops at the scan (pairings per record); this
// bench measures what a deployment actually observes — wire round-trip
// latency percentiles and sustained QPS — and how the serving-side caches
// change them end-to-end:
//
//   cold: every connection authorizes its own fresh capability and runs
//         one search — full pairing scans, verdict-cache misses.
//   hot:  the same sessions repeat their searches — digest-keyed prepared
//         queries and per-segment verdict hits collapse the scan cost, so
//         the wire + framing overhead dominates.
//
// Closed-loop rows sweep connection counts (each connection issues its
// next request as soon as the previous response lands); one open-loop row
// schedules arrivals at a fixed rate against c=4 connections and reports
// queueing-inclusive latency. A final overload row (tiny engine admission
// budget + slowed scan + tight deadlines) checks that shed and expired
// requests surface as *distinct* wire statuses — kOverloaded vs
// kDeadlineExceeded — rather than a generic failure.
//
// JSON artifact (BENCH_serving.json): one row per (conns, mode) with
// p50/p99 latency (ms) and QPS, plus the overload status counts.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "cloud/search_engine.h"
#include "cloud/server.h"
#include "common/failpoint.h"
#include "core/apks_backend.h"
#include "net/client.h"
#include "net/server.h"
#include "store/sharded_store.h"

using namespace apks;
using namespace apks::bench;

namespace {

namespace fs = std::filesystem;

struct Timer {
  Clock::time_point start = Clock::now();
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start).count();
  }
};

double percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

struct LoadStats {
  std::vector<double> latencies_ms;  // sorted on finish()
  double wall_s = 0;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t deadline = 0;
  std::uint64_t other = 0;

  void finish() { std::sort(latencies_ms.begin(), latencies_ms.end()); }
  [[nodiscard]] double qps() const {
    return wall_s > 0 ? static_cast<double>(latencies_ms.size()) / wall_s : 0;
  }
};

void count_status(LoadStats& stats, net::WireStatus status) {
  switch (status) {
    case net::WireStatus::kOk: ++stats.ok; break;
    case net::WireStatus::kOverloaded: ++stats.overloaded; break;
    case net::WireStatus::kDeadlineExceeded: ++stats.deadline; break;
    default: ++stats.other; break;
  }
}

// One closed-loop pass: `conns` connections, each authorized for its own
// capability, each issuing `iters` back-to-back searches.
LoadStats closed_loop(const ApksBackend& backend, std::uint16_t port,
                      std::span<const Capability> caps, std::size_t conns,
                      std::size_t iters, std::uint64_t deadline_ms = 0) {
  LoadStats total;
  std::mutex merge_mutex;
  std::vector<std::thread> threads;
  Timer wall;
  for (std::size_t c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      LoadStats local;
      net::NetClient client;
      client.connect("127.0.0.1", port, /*timeout_ms=*/30000);
      (void)client.hello(SchemeKind::kApks);
      const Capability& cap = caps[c % caps.size()];
      (void)client.auth_unchecked(backend.encode_query(
          AnyQuery::ref(SchemeKind::kApks, &cap)));
      for (std::size_t i = 0; i < iters; ++i) {
        Timer t;
        const net::RemoteResult r =
            client.search(deadline_ms, /*partial_ok=*/true);
        local.latencies_ms.push_back(t.seconds() * 1e3);
        count_status(local, r.status);
      }
      const std::lock_guard<std::mutex> lock(merge_mutex);
      total.latencies_ms.insert(total.latencies_ms.end(),
                                local.latencies_ms.begin(),
                                local.latencies_ms.end());
      total.ok += local.ok;
      total.overloaded += local.overloaded;
      total.deadline += local.deadline;
      total.other += local.other;
    });
  }
  for (auto& t : threads) t.join();
  total.wall_s = wall.seconds();
  total.finish();
  return total;
}

// One open-loop pass: arrivals scheduled at `rate_qps` spread over `conns`
// connections; latency is measured from the *scheduled* arrival, so
// queueing delay counts (the closed-loop blind spot).
LoadStats open_loop(const ApksBackend& backend, std::uint16_t port,
                    const Capability& cap, std::size_t conns,
                    std::size_t total_requests, double rate_qps) {
  LoadStats total;
  std::mutex merge_mutex;
  std::vector<std::thread> threads;
  const double interval_s =
      static_cast<double>(conns) / std::max(rate_qps, 1e-9);
  Timer wall;
  const auto t0 = Clock::now();
  for (std::size_t c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      LoadStats local;
      net::NetClient client;
      client.connect("127.0.0.1", port, /*timeout_ms=*/30000);
      (void)client.hello(SchemeKind::kApks);
      (void)client.auth_unchecked(backend.encode_query(
          AnyQuery::ref(SchemeKind::kApks, &cap)));
      const std::size_t n = total_requests / conns;
      for (std::size_t i = 0; i < n; ++i) {
        // This connection's i-th arrival, interleaved across connections.
        const auto scheduled =
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(
                         interval_s * (static_cast<double>(i) +
                                       static_cast<double>(c) /
                                           static_cast<double>(conns))));
        std::this_thread::sleep_until(scheduled);  // late => send immediately
        const net::RemoteResult r = client.search(0, /*partial_ok=*/true);
        local.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - scheduled)
                .count());
        count_status(local, r.status);
      }
      const std::lock_guard<std::mutex> lock(merge_mutex);
      total.latencies_ms.insert(total.latencies_ms.end(),
                                local.latencies_ms.begin(),
                                local.latencies_ms.end());
      total.ok += local.ok;
      total.overloaded += local.overloaded;
      total.deadline += local.deadline;
      total.other += local.other;
    });
  }
  for (auto& t : threads) t.join();
  total.wall_s = wall.seconds();
  total.finish();
  return total;
}

void print_row(const char* mode, std::size_t conns, const LoadStats& s) {
  std::printf(
      "  %-8s conns=%2zu  reqs=%4zu  qps=%8.1f  p50=%7.2f ms  p99=%7.2f ms"
      "  ok=%" PRIu64 " shed=%" PRIu64 " deadline=%" PRIu64 "\n",
      mode, conns, s.latencies_ms.size(), s.qps(),
      percentile(s.latencies_ms, 0.50), percentile(s.latencies_ms, 0.99),
      s.ok, s.overloaded, s.deadline);
}

void add_row(JsonReport& report, const char* mode, std::size_t conns,
             const LoadStats& s, const SearchEngine& engine) {
  const VerdictCacheStats vs = engine.verdict_cache() != nullptr
                                   ? engine.verdict_cache()->stats()
                                   : VerdictCacheStats{};
  report.add_row({{"mode", mode},
                  {"conns", conns},
                  {"requests", s.latencies_ms.size()},
                  {"qps", s.qps()},
                  {"p50_ms", percentile(s.latencies_ms, 0.50)},
                  {"p99_ms", percentile(s.latencies_ms, 0.99)},
                  {"ok", static_cast<std::size_t>(s.ok)},
                  {"overloaded", static_cast<std::size_t>(s.overloaded)},
                  {"deadline_exceeded", static_cast<std::size_t>(s.deadline)},
                  {"verdict_hits", static_cast<std::size_t>(vs.hits)},
                  {"prepared_hits", engine.cache_hits()}});
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "BENCH_serving.json");
  const std::size_t kRecords = args.smoke ? 12 : 48;
  const std::size_t kHotIters = args.smoke ? 4 : 16;
  const std::vector<std::size_t> kConnCounts =
      args.smoke ? std::vector<std::size_t>{1, 4}
                 : std::vector<std::size_t>{1, 4, 16};
  const std::size_t kMaxConns =
      *std::max_element(kConnCounts.begin(), kConnCounts.end());

  const Pairing pairing(default_type_a_params());
  ChaChaRng rng("bench-serving");
  const Apks scheme(pairing, nursery_schema(1));
  ApksPublicKey pk;
  ApksMasterKey msk;
  scheme.setup(rng, pk, msk);
  const ApksBackend backend(scheme);

  print_header(
      "Network serving: loopback QPS + latency percentiles, hot vs cold",
      "the paper costs the scan in pairings/record; this adds the wire "
      "(framing, sessions, streaming) and the serving caches end-to-end");

  // Sealed-segment-dominated store so the verdict cache participates:
  // segment_max_bytes = 1 rotates before every append after the first.
  const std::vector<PlainIndex> rows = nursery_rows();
  const fs::path dir =
      fs::temp_directory_path() /
      ("apks-bench-serving-" + std::to_string(static_cast<unsigned>(getpid())));
  fs::remove_all(dir);
  ShardedStoreOptions store_opts;
  store_opts.shards = 2;
  store_opts.segment.segment_max_bytes = 1;
  ShardedStore store(pairing, dir, store_opts);
  for (std::size_t i = 0; i < kRecords; ++i) {
    (void)store.append("doc-" + std::to_string(i),
                       scheme.gen_index(pk, rows[(i * 739) % rows.size()], rng));
  }
  store.sync();

  CloudServer server(scheme, CapabilityVerifier(pairing, IbsPublicParams{}));
  const std::size_t loaded = server.load_from(store);

  // One distinct capability per connection slot: the cold pass is all
  // verdict-cache misses, the hot pass all hits.
  std::vector<Capability> caps;
  caps.reserve(kMaxConns);
  for (std::size_t i = 0; i < kMaxConns; ++i) {
    caps.push_back(scheme.gen_cap(msk, nursery_worst_case_query(1, rng), rng));
  }
  std::printf("records: %zu (%zu sealed segments), capabilities: %zu\n",
              loaded, server.segment_table().size(), caps.size());

  JsonReport report("serving");
  report.set_meta("records", loaded);
  report.set_meta("smoke", args.smoke ? 1 : 0);
  report.set_meta("hot_iters", kHotIters);

  // --- closed-loop sweep: cold then hot per connection count ---------------
  for (const std::size_t conns : kConnCounts) {
    // Fresh engine + server per row: each cold pass really is cold.
    SearchEngine engine(server, {.threads = 2,
                                 .verdict_cache_bytes = 4u << 20});
    net::NetServerOptions opts;
    opts.allow_unchecked = true;
    opts.io_threads = 2;
    opts.worker_threads = std::max<std::size_t>(2, conns / 2);
    net::NetServer net_server(engine, opts);

    const LoadStats cold =
        closed_loop(backend, net_server.port(), caps, conns, 1);
    print_row("cold", conns, cold);
    add_row(report, "cold", conns, cold, engine);

    const LoadStats hot =
        closed_loop(backend, net_server.port(), caps, conns, kHotIters);
    print_row("hot", conns, hot);
    add_row(report, "hot", conns, hot, engine);
  }

  // --- open-loop row: fixed arrival rate, queueing-inclusive latency -------
  {
    SearchEngine engine(server, {.threads = 2,
                                 .verdict_cache_bytes = 4u << 20});
    net::NetServerOptions opts;
    opts.allow_unchecked = true;
    net::NetServer net_server(engine, opts);
    // Warm the hot path once, then offer a fixed rate.
    const LoadStats warm =
        closed_loop(backend, net_server.port(), caps, 1, 1);
    const double rate = std::max(10.0, warm.qps() * 2.0);
    const std::size_t open_requests = args.smoke ? 16 : 64;
    const LoadStats open = open_loop(backend, net_server.port(), caps[0],
                                     /*conns=*/4, open_requests, rate);
    std::printf("  open-loop offered rate: %.1f qps\n", rate);
    print_row("open", 4, open);
    add_row(report, "open", 4, open, engine);
  }

  // --- overload row: shed vs deadline as distinct wire statuses ------------
  {
    SearchEngine engine(server, {.threads = 1,
                                 .block_records = 1,
                                 .max_inflight = 1});
    net::NetServerOptions opts;
    opts.allow_unchecked = true;
    opts.worker_threads = 4;
    net::NetServer net_server(engine, opts);

    FailpointPolicy slow;
    slow.action = FailAction::kDelay;
    slow.delay_ms = 10;
    Failpoints::instance().set("engine.scan_block", slow);
    const LoadStats overload =
        closed_loop(backend, net_server.port(), caps, /*conns=*/4,
                    args.smoke ? 4 : 8, /*deadline_ms=*/25);
    Failpoints::instance().clear_all();

    print_row("overload", 4, overload);
    add_row(report, "overload", 4, overload, engine);
    if (overload.overloaded == 0 || overload.deadline == 0) {
      std::printf(
          "  note: expected both kOverloaded (%" PRIu64
          ") and kDeadlineExceeded (%" PRIu64 ") under overload\n",
          overload.overloaded, overload.deadline);
    }
  }

  if (args.json) (void)report.write(args.json_path);
  fs::remove_all(dir);
  return 0;
}
