// Cross-scheme serving comparison (Table III shape): APKS, APKS+ and
// MRQED^D over the same Nursery workload, all served through the identical
// backend-driven CloudServer/SearchEngine path, so the numbers differ only
// in the cryptography — setup, index build, ingest (which for APKS+
// includes the proxy transformation chain), and the batched linear scan
// with its pairing-op counts.
//
// The paper's claim under test: per scanned record APKS pays ~2(n+1)
// Miller loops behind one multi-pairing (one final exponentiation), APKS+
// pays the same at serve time (the proxy cost is front-loaded at ingest),
// while MRQED^D pays 5 pairings per AIBE probe but over a D*(depth+1)
// node cover — a different latency/flexibility trade, not a strict order.
//
// MRQED's workload maps each Nursery row onto a D-dimensional point by
// hashing its first D attribute values into [0, 2^depth); its queries are
// the paper's "point on one dimension, don't-care elsewhere" shape (dim 0
// pinned, full domain on the rest).
#include "bench/bench_util.h"
#include "cloud/proxy.h"
#include "cloud/search_engine.h"
#include "cloud/server.h"
#include "core/apks_backend.h"
#include "core/apks_plus.h"
#include "mrqed/mrqed_backend.h"

using namespace apks;
using namespace apks::bench;

namespace {

struct Timer {
  Clock::time_point start = Clock::now();
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start).count();
  }
};

// Deterministic map from a categorical attribute value to the MRQED domain.
std::uint64_t attr_to_coord(const std::string& value, std::uint64_t domain) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const char c : value) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h % domain;
}

struct SchemeRun {
  const char* name = "";
  double setup_s = 0;
  double index_s = 0;    // building all encrypted indexes (owner side)
  double ingest_s = 0;   // server admission (APKS+: proxy chain + canary)
  double batch_wall_s = 0;
  std::size_t records = 0;
  std::size_t queries = 0;
  std::size_t matched = 0;
  std::uint64_t miller = 0;
  std::uint64_t multi_miller = 0;
  std::uint64_t final_exp = 0;
};

void report_run(const SchemeRun& r, JsonReport& report) {
  const double probes = static_cast<double>(r.records * r.queries);
  std::printf(
      "%-6s setup %7.3fs  index %7.3fs  ingest %7.3fs  batch %7.3fs  "
      "(%5.1f probes/s)  matched %3zu  miller %6llu  multi %5llu  "
      "final_exp %5llu\n",
      r.name, r.setup_s, r.index_s, r.ingest_s, r.batch_wall_s,
      r.batch_wall_s > 0 ? probes / r.batch_wall_s : 0.0, r.matched,
      static_cast<unsigned long long>(r.miller),
      static_cast<unsigned long long>(r.multi_miller),
      static_cast<unsigned long long>(r.final_exp));
  report.add_row({{"scheme", r.name},
                  {"records", r.records},
                  {"queries", r.queries},
                  {"setup_s", r.setup_s},
                  {"index_s", r.index_s},
                  {"ingest_s", r.ingest_s},
                  {"batch_wall_s", r.batch_wall_s},
                  {"probes_per_s",
                   r.batch_wall_s > 0 ? probes / r.batch_wall_s : 0.0},
                  {"matched", r.matched},
                  {"miller", static_cast<double>(r.miller)},
                  {"multi_miller", static_cast<double>(r.multi_miller)},
                  {"final_exp", static_cast<double>(r.final_exp)}});
}

// Runs the query batch through the unified engine and fills the serve-side
// numbers of `run` from the per-query metrics.
void serve_batch(const CloudServer& server, std::span<const AnyQuery> queries,
                 std::size_t threads, SchemeRun& run) {
  const SearchEngine engine(server, {.threads = threads});
  BatchMetrics metrics;
  const auto results = engine.search_batch_unchecked_any(queries, &metrics);
  run.batch_wall_s = metrics.wall_s;
  run.records = metrics.records;
  run.queries = metrics.queries;
  for (std::size_t i = 0; i < results.size(); ++i) {
    run.matched += results[i].size();
    run.miller += metrics.per_query[i].ops.miller;
    run.multi_miller += metrics.per_query[i].ops.multi_miller;
    run.final_exp += metrics.per_query[i].ops.final_exp;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "BENCH_schemes.json");
  const std::size_t kRecords = args.smoke ? 12 : 48;
  const std::size_t kQueries = args.smoke ? 3 : 6;
  const std::size_t kThreads = 2;
  const std::size_t kProxies = 2;
  const std::size_t kDims = 2;
  const std::size_t kDepth = 4;  // MRQED domain [0, 16) per dimension

  const Pairing e(default_type_a_params());
  ChaChaRng rng("bench-schemes");
  const std::vector<PlainIndex> rows = nursery_rows();
  const CapabilityVerifier stub_verifier(e, IbsPublicParams{});

  // The shared workload: which Nursery rows are stored, which are probed.
  std::vector<const PlainIndex*> workload;
  for (std::size_t i = 0; i < kRecords; ++i) {
    workload.push_back(&rows[(i * 739) % rows.size()]);
  }
  std::vector<std::size_t> probe_rows;
  for (std::size_t q = 0; q < kQueries; ++q) {
    probe_rows.push_back((q * 5) % kRecords);
  }

  print_header("Cross-scheme serving comparison (Table III shape)",
               "same Nursery workload through one CloudServer/SearchEngine; "
               "APKS ~2(n+1) Millers + 1 final-exp per record, APKS+ moves "
               "the r-rescale to ingest, MRQED^D pays 5 pairings per probe "
               "over its interval cover");
  std::printf("records: %zu, queries: %zu, threads: %zu\n\n", kRecords,
              kQueries, kThreads);

  JsonReport report("bench_schemes");
  report.set_meta("smoke", args.smoke ? 1 : 0);
  report.set_meta("records", kRecords);
  report.set_meta("queries", kQueries);
  report.set_meta("threads", kThreads);
  report.set_meta("mrqed_dims", kDims);
  report.set_meta("mrqed_depth", kDepth);

  // --- APKS (Section IV) --------------------------------------------------
  {
    SchemeRun run;
    run.name = "apks";
    const Apks scheme(e, nursery_schema(1));
    ApksPublicKey pk;
    ApksMasterKey msk;
    {
      Timer t;
      scheme.setup(rng, pk, msk);
      run.setup_s = t.seconds();
    }
    std::vector<EncryptedIndex> indexes;
    {
      Timer t;
      for (const PlainIndex* row : workload) {
        indexes.push_back(scheme.gen_index(pk, *row, rng));
      }
      run.index_s = t.seconds();
    }
    const ApksBackend backend(scheme);
    CloudServer server(backend, stub_verifier);
    {
      Timer t;
      for (std::size_t i = 0; i < indexes.size(); ++i) {
        (void)server.store(std::move(indexes[i]), "doc-" + std::to_string(i));
      }
      run.ingest_s = t.seconds();
    }
    std::vector<Capability> caps;
    std::vector<AnyQuery> queries;
    for (const std::size_t r : probe_rows) {
      caps.push_back(
          scheme.gen_cap(msk, nursery_point_query(*workload[r]), rng));
    }
    for (const Capability& cap : caps) {
      queries.push_back(AnyQuery::ref(SchemeKind::kApks, &cap));
    }
    serve_batch(server, queries, kThreads, run);
    report_run(run, report);
  }

  // --- APKS+ (Section V): proxy chain + canary at ingest ------------------
  {
    SchemeRun run;
    run.name = "apks+";
    const ApksPlus plus(e, nursery_schema(1));
    Timer setup_t;
    const ApksPlusSetupResult setup = plus.setup_plus(rng);
    run.setup_s = setup_t.seconds();

    std::vector<EncryptedIndex> partials;
    {
      Timer t;
      for (const PlainIndex* row : workload) {
        partials.push_back(plus.partial_gen_index(setup.pk, *row, rng));
      }
      run.index_s = t.seconds();
    }
    ApksPlusBackend backend(plus);
    ProxyPipeline pipeline = make_proxy_pipeline(plus, setup.r, kProxies, rng);
    attach_ingest_pipeline(backend, pipeline);
    backend.set_ingest_canary(
        plus.gen_cap(setup.msk, make_canary_query(plus.schema()), rng));
    CloudServer server(backend, stub_verifier);
    {
      Timer t;  // ingest = proxy transformations + canary admission check
      for (std::size_t i = 0; i < partials.size(); ++i) {
        (void)server.store(std::move(partials[i]), "doc-" + std::to_string(i));
      }
      run.ingest_s = t.seconds();
    }
    std::vector<Capability> caps;
    std::vector<AnyQuery> queries;
    for (const std::size_t r : probe_rows) {
      caps.push_back(
          plus.gen_cap(setup.msk, nursery_point_query(*workload[r]), rng));
    }
    for (const Capability& cap : caps) {
      queries.push_back(AnyQuery::ref(SchemeKind::kApksPlus, &cap));
    }
    serve_batch(server, queries, kThreads, run);
    report_run(run, report);
  }

  // --- MRQED^D (Section VII baseline) -------------------------------------
  {
    SchemeRun run;
    run.name = "mrqed";
    const Mrqed mrqed(e, kDims, kDepth);
    const std::uint64_t domain = 1ull << kDepth;
    MrqedPublicKey pk;
    MrqedMasterKey msk;
    {
      Timer t;
      mrqed.setup(rng, pk, msk);
      run.setup_s = t.seconds();
    }
    auto row_point = [&](const PlainIndex& row) {
      std::vector<std::uint64_t> point;
      for (std::size_t d = 0; d < kDims; ++d) {
        point.push_back(attr_to_coord(row.values[d], domain));
      }
      return point;
    };
    const MrqedBackend backend(mrqed);
    CloudServer server(backend, stub_verifier);
    {
      Timer t;
      std::size_t i = 0;
      for (const PlainIndex* row : workload) {
        const MrqedCiphertext ct = mrqed.encrypt(pk, row_point(*row), rng);
        (void)server.store_any(AnyIndex::own(SchemeKind::kMrqed, ct),
                               "doc-" + std::to_string(i++));
      }
      run.index_s = t.seconds();
    }
    std::vector<AnyQuery> queries;
    {
      for (const std::size_t r : probe_rows) {
        // Point on dim 0, don't-care (full domain) on the others.
        std::vector<MrqedRange> ranges;
        const std::uint64_t pinned = row_point(*workload[r])[0];
        ranges.push_back({pinned, pinned});
        for (std::size_t d = 1; d < kDims; ++d) {
          ranges.push_back({0, domain - 1});
        }
        queries.push_back(AnyQuery::own(SchemeKind::kMrqed,
                                        mrqed.gen_key(pk, msk, ranges, rng)));
      }
    }
    serve_batch(server, queries, kThreads, run);
    report_run(run, report);
  }

  if (args.json) {
    if (!report.write(args.json_path)) return 1;
  }
  return 0;
}
