// Table III: projected total search time over the 12,960-row Nursery
// dataset for n = 10..73, with pairing preprocessing.
//
// The paper *projects* the total by multiplying the measured per-index
// search time by 12,960 (and we do the same — the whole point of the table
// is that a full scan is heavy but tolerable for delay-tolerant
// applications). Paper row: 424 714 1016 1330 1625 1911 2194 2498 seconds.
#include "bench/bench_util.h"

using namespace apks;
using namespace apks::bench;

int main() {
  const Pairing pairing(default_type_a_params());
  ChaChaRng rng("table3");
  const auto rows = nursery_rows();
  constexpr std::size_t kDatasetSize = 12960;

  print_header(
      "Table III: Projected total search time, Nursery dataset (12,960 rows)",
      "paper (s): n=10:424 19:714 28:1016 37:1330 46:1625 55:1911 64:2194 "
      "73:2498 — linear in n, with preprocessing");
  std::printf("%6s %6s %16s %14s %12s\n", "n", "k", "per_index_ms",
              "projected_s", "paper_s");
  const double paper[] = {424, 714, 1016, 1330, 1625, 1911, 2194, 2498};

  std::size_t k = 0;
  for (const std::size_t n : paper_n_values(8)) {
    ++k;
    const Apks scheme(pairing, nursery_expanded_schema(k, 1));
    ApksPublicKey pk;
    ApksMasterKey msk;
    scheme.setup(rng, pk, msk);
    Query q;
    q.terms.assign(scheme.schema().original_dims(), QueryTerm::any());
    q.terms[0] = QueryTerm::equals("usual");
    const PreparedCapability cap =
        scheme.prepare(scheme.gen_cap(msk, q, rng));
    std::vector<EncryptedIndex> sample;
    for (std::size_t i = 0; i < 3; ++i) {
      sample.push_back(scheme.gen_index(
          pk, expand_nursery_row(rows[4321 * i % rows.size()], k), rng));
    }
    std::size_t at = 0;
    const double per_index_s = time_op_median(
        [&] { (void)scheme.search_prepared(cap, sample[++at % sample.size()]); },
        400, 12, 3);
    std::printf("%6zu %6zu %16.2f %14.0f %12.0f\n", n, k,
                per_index_s * 1e3, per_index_s * kDatasetSize, paper[k - 1]);
  }
  std::printf("expectation: projected_s grows linearly in n, same shape as "
              "the paper column (absolute scale differs with hardware).\n");
  return 0;
}
