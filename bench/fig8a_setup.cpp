// Fig. 8(a): system setup time against n, APKS vs MRQED^D.
//
// Paper: APKS setup is O(n0^2) exponentiations (~40 s at n=46 on its 2011
// hardware); MRQED setup is O(n) (~4.6 s at n=46). Expected shape: APKS
// grows quadratically and is one-plus orders of magnitude slower than
// MRQED at n=46. Setup is generator exponentiations (base_mul) only, so the
// scalar-multiplication engine does not move this figure — see bench_msm
// and fig8b/fig8c for the engine comparison.
#include "bench/bench_util.h"
#include "mrqed/mrqed.h"

using namespace apks;
using namespace apks::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "BENCH_fig8a.json");
  const Pairing pairing(default_type_a_params());
  ChaChaRng rng("fig8a");
  JsonReport report("fig8a_setup");
  report.set_meta("smoke", args.smoke ? 1 : 0);

  print_header("Fig. 8(a): Setup time vs n",
               "APKS ~40s at n=46 (O(n^2) exps); MRQED ~4.6s (O(n) exps); "
               "APKS/MRQED ~ 8.7x at n=46");
  std::printf("%6s %6s %14s %15s %12s\n", "n", "k", "APKS_setup_s",
              "MRQED_setup_s", "APKS/MRQED");

  const std::size_t max_k = args.smoke ? 2 : 5;
  std::size_t k = 0;
  for (const std::size_t n : paper_n_values(max_k)) {
    ++k;
    const Apks scheme(pairing, nursery_expanded_schema(k, 1));
    const double apks_s = time_op(
        [&] {
          ApksPublicKey pk;
          ApksMasterKey msk;
          scheme.setup(rng, pk, msk);
        },
        args.smoke ? 1 : 2000, args.smoke ? 1 : 3);

    // MRQED sized to the same comparison parameter: 9 dimensions, k+1 path
    // nodes per dimension (9(k+1) = n + 8 total node ids ~ n).
    const Mrqed mrqed(pairing, 9, k);
    const double mrqed_s = time_op(
        [&] {
          MrqedPublicKey pk;
          MrqedMasterKey msk;
          mrqed.setup(rng, pk, msk);
        },
        args.smoke ? 1 : 1000, args.smoke ? 1 : 5);

    std::printf("%6zu %6zu %14.3f %15.3f %12.1f\n", n, k, apks_s, mrqed_s,
                apks_s / mrqed_s);
    report.add_row({{"n", n},
                    {"k", k},
                    {"apks_setup_s", apks_s},
                    {"mrqed_setup_s", mrqed_s}});
  }
  std::printf("expectation: APKS column grows ~quadratically in n, MRQED "
              "~linearly; APKS slower throughout.\n");

  if (args.json && !report.write(args.json_path)) return 1;
  return 0;
}
