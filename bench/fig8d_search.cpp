// Fig. 8(d): per-index search time against n.
//
// Paper: search is n+3 pairings — linear in n and far cheaper than
// encryption; pairing preprocessing roughly halves it (5.5 ms -> 2.5 ms
// per pairing there). MRQED per-index search is ~5n pairings, about 5x
// APKS. Expected shape: all series linear; preprocessed ~2x under plain;
// MRQED ~5x over APKS.
#include "bench/bench_util.h"
#include "mrqed/mrqed.h"

using namespace apks;
using namespace apks::bench;

int main() {
  const Pairing pairing(default_type_a_params());
  ChaChaRng rng("fig8d");
  const auto rows = nursery_rows();

  print_header("Fig. 8(d): Per-index search time vs n",
               "APKS = n+3 pairings (linear); preprocessing ~2x faster; "
               "MRQED = 5n pairings ~ 5x APKS");
  std::printf("%6s %6s %12s %12s %12s %14s\n", "n", "k", "plain_s",
              "preproc_s", "MRQED_s", "MRQED/APKSpre");

  std::size_t k = 0;
  for (const std::size_t n : paper_n_values(5)) {
    ++k;
    const Apks scheme(pairing, nursery_expanded_schema(k, 1));
    ApksPublicKey pk;
    ApksMasterKey msk;
    scheme.setup(rng, pk, msk);
    // Mixed workload: a capability over one attribute; some indexes match.
    Query q;
    q.terms.assign(scheme.schema().original_dims(), QueryTerm::any());
    q.terms[0] = QueryTerm::equals("usual");
    const Capability cap = scheme.gen_cap(msk, q, rng);
    std::vector<EncryptedIndex> indexes;
    for (std::size_t i = 0; i < 4; ++i) {
      indexes.push_back(scheme.gen_index(
          pk, expand_nursery_row(rows[1711 * i % rows.size()], k), rng));
    }
    std::size_t at = 0;
    const double plain_s = time_op(
        [&] { (void)scheme.search(cap, indexes[++at % indexes.size()]); },
        800, 16);
    const PreparedCapability prepared = scheme.prepare(cap);
    const double pre_s = time_op(
        [&] {
          (void)scheme.search_prepared(prepared, indexes[++at % indexes.size()]);
        },
        800, 16);

    // MRQED at its deterministic worst case (the regime behind the paper's
    // 5n-pairings estimate): per-dimension range [1, domain-1], whose
    // canonical cover is maximal, and the point at the rightmost leaf so
    // every cover node is probed before the match.
    const Mrqed mrqed(pairing, 9, std::max<std::size_t>(k, 1));
    MrqedPublicKey mpk;
    MrqedMasterKey mmsk;
    mrqed.setup(rng, mpk, mmsk);
    const std::uint64_t domain = std::uint64_t{1} << std::max<std::size_t>(k, 1);
    const std::vector<std::uint64_t> point(9, domain - 1);
    const auto mct = mrqed.encrypt(mpk, point, rng);
    const std::vector<MrqedRange> ranges(9, {1, domain - 1});
    const auto mkey = mrqed.gen_key(mpk, mmsk, ranges, rng);
    const auto mprepared = mrqed.prepare(mkey);
    Mrqed::MatchStats stats;
    const double mrqed_s = time_op(
        [&] { (void)mrqed.match_prepared(mct, mprepared, &stats); }, 800, 16);

    std::printf("%6zu %6zu %12.4f %12.4f %12.4f(%3zup) %8.1f\n", n, k,
                plain_s, pre_s, mrqed_s, stats.pairings, mrqed_s / pre_s);
  }
  std::printf("expectation: linear growth in n for all series; preprocessed "
              "~2x faster than plain; MRQED several times slower.\n");
  return 0;
}
