// Implementation ablation: shared predicate-sum key generation.
//
// The OT09 key components all contain sigma_j * (sum_i v_i b*_i). The
// paper's measured GenCap/Delegate recompute that sum per component (which
// is why its Fig. 8(c) set 2 — sparse predicates — grows visibly slower
// than set 1). Computing the sum once and scaling it per component gives
// the same key distribution at a fraction of the exponentiations. This
// bench quantifies the speedup for dense (worst-case) and sparse
// (realistic) predicates.
#include "bench/bench_util.h"

using namespace apks;
using namespace apks::bench;

int main() {
  const Pairing pairing(default_type_a_params());
  ChaChaRng rng("ablation-shared");

  print_header("Ablation: shared-sum vs per-component key generation",
               "our optimization over the paper's implementation; identical "
               "output distribution (equivalence is unit-tested)");
  std::printf("%6s %10s %14s %12s %9s\n", "n", "workload", "naive_s",
              "shared_s", "speedup");

  for (const std::size_t k : {2u, 3u, 4u}) {
    const std::size_t d = k;  // dense workload at m'=9: n = 9d+1
    {
      const Apks scheme(pairing, nursery_schema(d));
      ApksPublicKey pk;
      ApksMasterKey msk;
      scheme.setup(rng, pk, msk);
      const Query q = nursery_worst_case_query(d, rng);
      const double naive_s = time_op(
          [&] { (void)scheme.gen_cap_naive(msk, q, rng); }, 1000, 3);
      const double shared_s =
          time_op([&] { (void)scheme.gen_cap(msk, q, rng); }, 1000, 3);
      std::printf("%6zu %10s %14.3f %12.3f %8.1fx\n", scheme.n(), "dense",
                  naive_s, shared_s, naive_s / shared_s);
    }
    {
      const Apks scheme(pairing, nursery_expanded_schema(k, 1));
      ApksPublicKey pk;
      ApksMasterKey msk;
      scheme.setup(rng, pk, msk);
      const Query q = nursery_expanded_realistic_query(k, 1, rng);
      const double naive_s = time_op(
          [&] { (void)scheme.gen_cap_naive(msk, q, rng); }, 1000, 3);
      const double shared_s =
          time_op([&] { (void)scheme.gen_cap(msk, q, rng); }, 1000, 3);
      std::printf("%6zu %10s %14.3f %12.3f %8.1fx\n", scheme.n(), "sparse",
                  naive_s, shared_s, naive_s / shared_s);
    }
  }
  std::printf("expectation: large speedup on dense predicates (the shared "
              "sum absorbs the O(n) per-component cost); smaller but real "
              "speedup on sparse ones.\n");
  return 0;
}
