// Section VI-B "Statistical Attacks", simulated on a skewed Nursery-shaped
// corpus.
//
// The server cannot read queries, but it sees which encrypted indexes every
// capability matches. If it also knows the keyword frequency distribution,
// it can guess the underlying query by matching the observed result-set
// size against the sizes every candidate query would produce. We measure how
// often that guess is unique — i.e., the attack succeeds — for queries with
// 1, 2 and 3 active dimensions. The paper's countermeasure (require a
// minimum number of active dimensions, our QueryPolicy) works exactly
// because the candidate space grows combinatorially with active
// dimensions. Pure plaintext combinatorics; no cryptography involved.
#include <functional>
#include <map>

#include "bench/bench_util.h"

using namespace apks;
using namespace apks::bench;

namespace {

// Result-set size of an equality-conjunction over chosen (dim, value)
// pairs. Nursery being a full product, this is a closed form, but we count
// over the real rows to stay honest.
std::size_t result_size(const std::vector<PlainIndex>& rows,
                        const std::vector<std::pair<std::size_t,
                                                    std::string>>& terms) {
  std::size_t n = 0;
  for (const auto& row : rows) {
    bool ok = true;
    for (const auto& [dim, value] : terms) {
      ok = ok && row.values[dim] == value;
    }
    n += ok ? 1 : 0;
  }
  return n;
}

}  // namespace

int main() {
  // A skewed corpus: the full-product Nursery has perfectly uniform value
  // frequencies (result sizes then only leak the dimension — a degenerate
  // best case). Real databases are skewed, so sample 3000 rows with
  // geometric value weights; that is the regime the paper's countermeasure
  // addresses.
  const auto& attrs = nursery_attributes();
  ChaChaRng rng("stat-attack");
  std::vector<PlainIndex> rows;
  for (int i = 0; i < 3000; ++i) {
    PlainIndex row;
    for (std::size_t a = 0; a < 9; ++a) {
      const std::size_t universe = attrs[a].values.size();
      // Geometric-ish skew: value j with weight ~ 2^-j.
      std::size_t j = 0;
      while (j + 1 < universe && rng.next_below(2) == 0) ++j;
      row.values.push_back(attrs[a].values[j]);
    }
    rows.push_back(std::move(row));
  }

  print_header(
      "Ablation (Sec. VI-B): statistical attack vs min-active-dims policy",
      "with frequency knowledge, result-set sizes fingerprint narrow "
      "queries; requiring more active dimensions explodes the candidate "
      "set");

  std::printf("%12s %14s %18s %16s\n", "active dims", "queries tried",
              "avg candidates", "uniquely IDed");
  for (std::size_t active = 1; active <= 3; ++active) {
    // Candidate universe: all equality conjunctions with `active` dims
    // (the attacker's hypothesis space), bucketed by result size.
    std::map<std::size_t, std::size_t> size_counts;
    std::vector<std::vector<std::pair<std::size_t, std::string>>> all;
    std::vector<std::size_t> dims(active);
    // Enumerate dimension combinations (first 8 input attributes).
    std::function<void(std::size_t, std::size_t)> enum_dims =
        [&](std::size_t start, std::size_t depth) {
          if (depth == active) {
            // Enumerate value choices.
            std::vector<std::pair<std::size_t, std::string>> terms(active);
            std::function<void(std::size_t)> enum_vals = [&](std::size_t d) {
              if (d == active) {
                all.push_back(terms);
                return;
              }
              for (const auto& v : attrs[dims[d]].values) {
                terms[d] = {dims[d], v};
                enum_vals(d + 1);
              }
            };
            enum_vals(0);
            return;
          }
          for (std::size_t i = start; i < 8; ++i) {
            dims[depth] = i;
            enum_dims(i + 1, depth + 1);
          }
        };
    enum_dims(0, 0);
    for (const auto& terms : all) {
      size_counts[result_size(rows, terms)]++;
    }

    // Attack trials: random victim queries; the attacker reduces to the
    // candidates sharing the observed result size.
    const int kTrials = 300;
    double sum_candidates = 0;
    int unique = 0;
    for (int t = 0; t < kTrials; ++t) {
      const auto& victim = all[rng.next_below(all.size())];
      const std::size_t observed = result_size(rows, victim);
      const std::size_t candidates = size_counts.at(observed);
      sum_candidates += static_cast<double>(candidates);
      unique += candidates == 1 ? 1 : 0;
    }
    std::printf("%12zu %14zu %18.1f %15.1f%%\n", active, all.size(),
                sum_candidates / kTrials, 100.0 * unique / kTrials);
  }
  std::printf(
      "\nreading: a QueryPolicy with min_active_dims >= 2 removes the "
      "high-confidence single-dimension fingerprints; anonymity sets grow "
      "with every additional required dimension. (Size-only attacker; "
      "intersection attacks over multiple capabilities remain out of "
      "scope, as in the paper.)\n");
  return 0;
}
