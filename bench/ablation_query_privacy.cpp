// Section V validation bench: what query privacy costs, and what it buys.
//
// Measures the APKS+ overhead over basic APKS (owner-side partial
// encryption is identical; the proxy transformation adds n0 scalar
// multiplications per index, multiplied by the proxy-chain length), and
// runs the dictionary attack against both schemes to report its success
// rate.
#include "bench/bench_util.h"
#include "cloud/proxy.h"
#include "core/apks_plus.h"

using namespace apks;
using namespace apks::bench;

int main() {
  const Pairing pairing(default_type_a_params());
  ChaChaRng rng("ablation-qp");

  print_header("Ablation (Sec. V): APKS+ query privacy",
               "proxy transform is O(n0) point mults per index per proxy; "
               "dictionary attack: recovers queries vs basic APKS, 0 hits "
               "vs APKS+");

  // Small schema so the attack enumeration is visible and fast.
  const Schema schema({{"illness", nullptr, 1}, {"sex", nullptr, 1}});
  const std::vector<std::string> illnesses{"flu", "diabetes", "asthma",
                                           "leukemia"};
  const std::vector<std::string> sexes{"Male", "Female"};

  const Apks basic(pairing, schema);
  const ApksPlus plus(pairing, schema);

  ApksPublicKey bpk;
  ApksMasterKey bmsk;
  basic.setup(rng, bpk, bmsk);
  const auto psetup = plus.setup_plus(rng);

  const PlainIndex row{{"diabetes", "Female"}};
  const double basic_enc =
      time_op([&] { (void)basic.gen_index(bpk, row, rng); }, 800, 10);
  const double plus_enc = time_op(
      [&] { (void)plus.partial_gen_index(psetup.pk, row, rng); }, 800, 10);

  std::printf("\nowner-side encryption (n=%zu): basic %.4fs, APKS+ partial "
              "%.4fs (expect equal)\n",
              basic.n(), basic_enc, plus_enc);

  std::printf("\nproxy pipeline overhead per index:\n%8s %16s\n", "proxies",
              "transform_s");
  for (const std::size_t nproxies : {1u, 2u, 4u}) {
    auto pipeline = make_proxy_pipeline(plus, psetup.r, nproxies, rng);
    const auto partial = plus.partial_gen_index(psetup.pk, row, rng);
    const double s =
        time_op([&] { (void)pipeline.process(partial); }, 800, 10);
    std::printf("%8zu %16.4f\n", nproxies, s);
  }

  // Dictionary attack success rate over 3 victim queries per scheme.
  auto attack = [&](auto&& search_forged) {
    std::size_t recovered = 0;
    for (const auto& victim_illness : {"flu", "asthma", "leukemia"}) {
      for (const auto& illness : illnesses) {
        for (const auto& sex : sexes) {
          if (search_forged(victim_illness, illness, sex)) {
            ++recovered;
          }
        }
      }
    }
    return recovered;
  };

  const std::size_t basic_hits = attack([&](const std::string& victim,
                                            const std::string& illness,
                                            const std::string& sex) {
    const Query q{{QueryTerm::equals(victim), QueryTerm::equals("Female")}};
    const Capability cap = basic.gen_cap(bmsk, q, rng);
    return basic.search(cap, basic.gen_index(bpk, {{illness, sex}}, rng));
  });
  const std::size_t plus_hits = attack([&](const std::string& victim,
                                           const std::string& illness,
                                           const std::string& sex) {
    const Query q{{QueryTerm::equals(victim), QueryTerm::equals("Female")}};
    const Capability cap = plus.gen_cap(psetup.msk, q, rng);
    return plus.search(cap,
                       plus.partial_gen_index(psetup.pk, {{illness, sex}},
                                              rng));
  });
  std::printf("\ndictionary attack (3 victim queries, 8 forged indexes "
              "each):\n");
  std::printf("  basic APKS: %zu forged matches -> every query recovered\n",
              basic_hits);
  std::printf("  APKS+     : %zu forged matches -> query privacy holds\n",
              plus_hits);
  return plus_hits == 0 && basic_hits > 0 ? 0 : 1;
}
