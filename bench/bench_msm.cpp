// Scalar-multiplication engine comparison (naive vs windowed vs
// precomputed) at three levels:
//   1. raw MSM: Curve::msm_naive vs the windowed shared-chain Curve::msm
//   2. DPVS lincomb: Dpvs::lincomb_terms under each ScalarEngine, with and
//      without cached fixed-base tables
//   3. APKS ops at the Nursery config: gen_index / gen_cap_naive per engine
// Always writes BENCH_msm.json (override with --json=path) so the perf
// trajectory of the engine is machine-readable across PRs. --smoke shrinks
// everything to a CI-sized pass.
#include "bench/bench_util.h"
#include "dpvs/precomp_basis.h"

using namespace apks;
using namespace apks::bench;

namespace {

constexpr ScalarEngine kEngines[] = {ScalarEngine::kNaive,
                                     ScalarEngine::kWindowed,
                                     ScalarEngine::kPrecomputed};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "BENCH_msm.json");
  const Pairing pairing(default_type_a_params());
  const Curve& curve = pairing.curve();
  const FqField& fq = pairing.fq();
  ChaChaRng rng("bench-msm");
  JsonReport report("bench_msm");
  report.set_meta("smoke", args.smoke ? 1 : 0);

  print_header("Scalar-multiplication engine: naive vs windowed vs precomp",
               "not in the paper; measures the PR's MSM layer. The paper's "
               "exponentiation *counts* are engine-invariant (see "
               "cost_model_check); only wall-clock moves");

  const double budget = args.smoke ? 80 : 800;
  const int iters = args.smoke ? 2 : 8;

  // --- 1. raw MSM ---------------------------------------------------------
  std::printf("\nraw MSM over m random points (seconds per call)\n");
  std::printf("%6s %12s %12s %9s\n", "m", "naive_s", "windowed_s", "speedup");
  const std::vector<std::size_t> sizes =
      args.smoke ? std::vector<std::size_t>{4, 12}
                 : std::vector<std::size_t>{4, 12, 28, 76};
  for (const std::size_t m : sizes) {
    std::vector<AffinePoint> pts;
    std::vector<Fq> ks;
    for (std::size_t i = 0; i < m; ++i) {
      pts.push_back(curve.random_point(rng));
      ks.push_back(fq.random(rng));
    }
    const double naive_s =
        time_op([&] { (void)curve.msm_naive(pts, ks); }, budget, iters);
    const double win_s =
        time_op([&] { (void)curve.msm(pts, ks); }, budget, iters);
    std::printf("%6zu %12.6f %12.6f %8.2fx\n", m, naive_s, win_s,
                naive_s / win_s);
    report.add_row({{"section", "msm"},
                    {"m", m},
                    {"naive_s", naive_s},
                    {"windowed_s", win_s}});
  }

  // --- 2. DPVS lincomb (the encrypt-shaped workload) ----------------------
  // dim = n+3 coordinates, dim-1 terms: exactly one ciphertext's lincomb.
  const std::size_t n = args.smoke ? 10 : 73;
  const std::size_t dim = n + 3;
  const Dpvs dpvs(pairing, dim);
  std::vector<GVec> rows(dim - 1);
  for (auto& r : rows) {
    r.reserve(dim);
    for (std::size_t j = 0; j < dim; ++j) r.push_back(curve.random_point(rng));
  }
  const auto basis = PrecomputedBasis::build(dpvs, rows,
                                             PrecomputedBasis::Options{});
  std::vector<Dpvs::LcTerm> terms;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    terms.push_back({fq.random(rng), basis.get(), i, nullptr});
  }
  std::printf("\nDPVS lincomb, dim=%zu (n=%zu), %zu terms (seconds per call)\n",
              dim, n, terms.size());
  std::printf("%14s %12s %9s\n", "engine", "seconds", "speedup");
  double lincomb_naive_s = 0;
  for (const ScalarEngine engine : kEngines) {
    const double s = time_op(
        [&] { (void)dpvs.lincomb_terms(terms, engine); }, budget,
        args.smoke ? 2 : 4);
    if (engine == ScalarEngine::kNaive) lincomb_naive_s = s;
    std::printf("%14s %12.4f %8.2fx\n", engine_name(engine), s,
                lincomb_naive_s / s);
    report.add_row({{"section", "lincomb"},
                    {"n", n},
                    {"engine", engine_name(engine)},
                    {"seconds", s}});
  }

  // --- 3. APKS operations at the Nursery config ---------------------------
  const std::size_t k = args.smoke ? 1 : 8;
  std::printf("\nAPKS ops, Nursery expanded k=%zu (n=%zu), seconds per call\n",
              k, 9 * k + 1);
  std::printf("%14s %12s %12s\n", "engine", "GenIndex_s", "GenCap_s");
  const auto all_rows = nursery_rows();
  for (const ScalarEngine engine : kEngines) {
    const Apks scheme(pairing, nursery_expanded_schema(k, 1),
                      HpeOptions{engine});
    ChaChaRng op_rng("bench-msm-ops");
    ApksPublicKey pk;
    ApksMasterKey msk;
    scheme.setup(op_rng, pk, msk);
    scheme.warm_precomp(pk);
    scheme.warm_precomp(msk);
    std::size_t row = 0;
    const double enc_s = time_op(
        [&] {
          (void)scheme.gen_index(
              pk, expand_nursery_row(all_rows[(row += 97) % all_rows.size()], k),
              op_rng);
        },
        args.smoke ? 1 : 1000, args.smoke ? 1 : 3);
    Query q;
    q.terms.assign(scheme.schema().original_dims(), QueryTerm::any());
    q.terms[0] = QueryTerm::equals("usual");
    const double cap_s = time_op(
        [&] { (void)scheme.gen_cap_naive(msk, q, op_rng); },
        args.smoke ? 1 : 1000, args.smoke ? 1 : 2);
    std::printf("%14s %12.3f %12.3f\n", engine_name(engine), enc_s, cap_s);
    report.add_row({{"section", "apks"},
                    {"k", k},
                    {"n", 9 * k + 1},
                    {"engine", engine_name(engine)},
                    {"gen_index_s", enc_s},
                    {"gen_cap_naive_s", cap_s}});
  }
  std::printf("expectation: windowed beats naive on every row; precomputed "
              "beats windowed wherever cached tables serve the terms.\n");

  // This binary always emits its JSON artifact — the whole point is a
  // machine-readable perf trajectory across PRs.
  return report.write(args.json_path) ? 0 : 1;
}
