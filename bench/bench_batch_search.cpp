// Batched multi-query serving: SearchEngine vs Q independent searches.
//
// The paper's server cost is per query: Q capabilities over N records cost
// Q preprocessings and Q*N index evaluations. The batch engine amortizes —
// signatures verified up front, preprocessing deduplicated through the
// LRU capability cache (a batch of Q identical hot-key capabilities runs
// ONE Apks::prepare instead of Q), and the whole batch shares a single
// blocked pass over the store. Expected shape: identical matches in
// identical order; prepare calls drop Q-fold on the hot-key batch; Miller /
// final-exp counts per query match the sequential path (the scan itself is
// not skippable — searchable encryption forces the linear scan).
#include <cinttypes>

#include "bench/bench_util.h"
#include "cloud/search_engine.h"
#include "cloud/server.h"

using namespace apks;
using namespace apks::bench;

namespace {

Schema small_schema() {
  return Schema({{"illness", nullptr, 2},
                 {"sex", nullptr, 1},
                 {"provider", nullptr, 1}});
}

Query q3(QueryTerm a, QueryTerm b = QueryTerm::any(),
         QueryTerm c = QueryTerm::any()) {
  return Query{{std::move(a), std::move(b), std::move(c)}};
}

}  // namespace

int main() {
  const Pairing pairing(default_type_a_params());
  ChaChaRng rng("bench-batch-search");
  const Apks scheme(pairing, small_schema());
  TrustedAuthority ta(scheme, rng);
  auto lta = ta.make_lta("hospital-A", q3(QueryTerm::any()), rng);
  UserAttributes user;
  user.values["illness"] = {"Diabetes", "Flu"};
  user.values["sex"] = {"Male"};
  user.values["provider"] = {"Hospital A"};
  lta->register_user("u", user);

  CapabilityVerifier verifier(pairing, ta.ibs_params());
  verifier.register_authority("hospital-A");
  CloudServer server(scheme, std::move(verifier));
  const char* illnesses[] = {"Diabetes", "Flu", "Cancer"};
  const std::size_t kRecords = 12;
  for (std::size_t i = 0; i < kRecords; ++i) {
    PlainIndex row{{illnesses[i % 3], i % 2 == 0 ? "Male" : "Female",
                    i % 4 == 0 ? "Hospital B" : "Hospital A"}};
    (void)server.store(scheme.gen_index(ta.public_key(), row, rng),
                       "doc-" + std::to_string(i));
  }

  print_header("Batch search: Q signed capabilities, one pass over N records",
               "batch == Q sequential searches (same matches, same order); "
               "hot-key batch needs 1 prepare instead of Q");

  const std::size_t kQ = 6;
  const SignedCapability hot =
      *lta->delegate_for_user("u", q3(QueryTerm::equals("Diabetes")), rng);
  std::vector<SignedCapability> mixed;
  mixed.push_back(hot);
  mixed.push_back(
      *lta->delegate_for_user("u", q3(QueryTerm::equals("Flu")), rng));
  mixed.push_back(*lta->delegate_for_user(
      "u", q3(QueryTerm::any(), QueryTerm::equals("Male")), rng));
  mixed.push_back(hot);  // repeats: the hot-key case
  mixed.push_back(hot);
  mixed.push_back(*lta->delegate_for_user("u", q3(QueryTerm::any()), rng));

  for (const bool hot_only : {true, false}) {
    const std::vector<SignedCapability> batch =
        hot_only ? std::vector<SignedCapability>(kQ, hot) : mixed;
    const char* label = hot_only ? "hot-key (Q identical)" : "mixed";

    // Baseline: Q independent verified searches (Q prepares by design).
    const PairingOpCounts seq_c0 = pairing.op_counts();
    std::vector<std::vector<std::string>> seq;
    for (const auto& cap : batch) seq.push_back(server.search(cap));
    const PairingOpCounts seq_ops = pairing.op_counts() - seq_c0;
    const double seq_s = time_op(
        [&] {
          for (const auto& cap : batch) (void)server.search(cap);
        },
        300, 4);

    // Engine: the first batch runs with a cold cache (its metrics hold the
    // prepare-call count the acceptance criterion is about); the timed
    // repeats then show the warm hot-key steady state.
    SearchEngine engine(server, {.threads = 2, .block_records = 4});
    BatchMetrics cold;
    const auto results = engine.search_batch(batch, &cold);
    BatchMetrics warm;
    const double batch_s =
        time_op([&] { (void)engine.search_batch(batch, &warm); }, 300, 4);

    if (results != seq) {
      std::printf("FAIL: batch results differ from sequential searches\n");
      return 1;
    }
    std::printf("\n[%s] Q=%zu N=%zu\n", label, batch.size(),
                server.record_count());
    std::printf("  sequential: %8.4f s/batch  (prepare calls: %zu)\n", seq_s,
                batch.size());
    std::printf("  engine:     %8.4f s/batch  (cold prepare calls: %zu, "
                "cold cache hits: %zu, warm prepare calls: %zu, threads: "
                "%zu)\n",
                batch_s, cold.prepare_calls, cold.cache_hits,
                warm.prepare_calls, cold.threads);
    std::printf("  prepare amortization: %zux fewer prepares than "
                "sequential\n",
                batch.size() / std::max<std::size_t>(1, cold.prepare_calls));
    std::printf("  %-8s %6s %8s %8s %10s %10s %6s\n", "query", "auth",
                "scanned", "matched", "miller", "final_exp", "cache");
    for (std::size_t i = 0; i < cold.per_query.size(); ++i) {
      const ServerMetrics& m = cold.per_query[i];
      std::printf("  q%-7zu %6s %8zu %8zu %10" PRIu64 " %10" PRIu64 " %6s\n",
                  i, m.authorized ? "yes" : "no", m.scanned, m.matched,
                  m.ops.miller, m.ops.final_exp, m.cache_hit ? "hit" : "miss");
    }
    std::printf("  batch pairing ops: %" PRIu64 " miller / %" PRIu64
                " final_exp (sequential baseline: %" PRIu64 " / %" PRIu64
                ")\n",
                cold.ops.miller, cold.ops.final_exp, seq_ops.miller,
                seq_ops.final_exp);
  }
  std::printf("\nexpectation: identical matches and order; hot-key batch "
              "reports Q-fold fewer prepare calls; per-query scan cost "
              "(miller/final_exp) roughly equal across authorized queries.\n");
  return 0;
}
