// Authorization-layer overhead (Section III machinery):
//  - IBS signing and verification cost per capability (server admission);
//  - how delegation depth affects capability size — and, crucially, that it
//    does NOT affect per-index search time (search pairs only the dec
//    component, whose dimension is fixed at n0 regardless of level).
#include "bench/bench_util.h"
#include "cloud/server.h"

using namespace apks;
using namespace apks::bench;

int main() {
  const Pairing pairing(default_type_a_params());
  ChaChaRng rng("auth-overhead");
  const Apks scheme(pairing, nursery_schema(1));  // n = 10

  print_header("Ablation: authorization overhead & delegation depth",
               "IBS admission is a constant ~2 pairings per query; search "
               "cost is level-independent (n+3 pairings pair only k_dec)");

  TrustedAuthority ta(scheme, rng);
  Query all_any;
  all_any.terms.assign(scheme.schema().original_dims(), QueryTerm::any());
  auto lta = ta.make_lta("lta-0", all_any, rng);

  // --- IBS costs. ----------------------------------------------------------
  CapabilityVerifier verifier(pairing, ta.ibs_params());
  verifier.register_authority("TA");
  SignedCapability cap = ta.issue(all_any, rng);
  const double sign_s = time_op([&] { cap = ta.issue(all_any, rng); }, 600, 8);
  const double verify_s = time_op([&] { (void)verifier.verify(cap); }, 400, 16);
  std::printf("\ncapability issue (GenCap + IBS sign): %.3f s\n", sign_s);
  std::printf("server-side IBS verification:          %.4f s  (amortized "
              "over a whole scan)\n",
              verify_s);

  // --- Delegation depth vs size and search time. ---------------------------
  std::printf("\n%7s %16s %16s %14s\n", "level", "capability_KB",
              "search_ms/idx", "matches");
  const auto enc = scheme.gen_index(
      ta.public_key(), nursery_rows()[0], rng);
  Capability chain = ta.issue(all_any, rng).cap;
  for (std::size_t level = 1; level <= 4; ++level) {
    const double kb =
        static_cast<double>(serialize_key(pairing, chain.key).size()) / 1024.0;
    const PreparedCapability prepared = scheme.prepare(chain);
    bool matched = false;
    const double search_s = time_op(
        [&] { matched = scheme.search_prepared(prepared, enc); }, 400, 16);
    std::printf("%7zu %16.1f %16.2f %14s\n", level, kb, search_s * 1e3,
                matched ? "yes" : "yes (all-any)");
    if (level < 4) {
      chain = scheme.delegate_cap(chain, all_any, rng);
    }
  }
  std::printf("expectation: capability size grows ~linearly with level (one "
              "extra randomizer per delegation); search time stays flat.\n");
  return 0;
}
