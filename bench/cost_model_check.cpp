// Exponentiation/pairing counts for every APKS operation across the paper's
// n sweep — the noise-free companion to the timing figures. The counted
// columns ARE the paper's complexity formulas:
//   Setup 2*n0^2 exps | GenIndex n0(n0-1) exps | Search n0 pairings
//   GenCap (paper's per-component model) Theta(n0^2) exps, sensitive to
//   don't-care sparsity; GenCap (shared-sum) much smaller.
#include "bench/bench_util.h"

using namespace apks;
using namespace apks::bench;

int main() {
  const Pairing pairing(default_type_a_params());
  ChaChaRng rng("cost-model-check");
  const auto rows = nursery_rows();

  print_header("Cost-model check: exact operation counts vs n",
               "count-based verification of the O(n^2)/O(n) claims behind "
               "Figs. 8(a)-(d)");
  std::printf("%5s %6s %12s %12s %14s %14s %12s\n", "n", "n0",
              "setup_exps", "enc_exps", "gencap_naive", "gencap_shared",
              "search_prs");

  std::size_t k = 0;
  for (const std::size_t n : paper_n_values(5)) {
    ++k;
    const Apks scheme(pairing, nursery_expanded_schema(k, 1));
    const std::size_t n0 = scheme.n() + 3;

    pairing.reset_op_counts();
    ApksPublicKey pk;
    ApksMasterKey msk;
    scheme.setup(rng, pk, msk);
    const std::uint64_t setup_exps =
        pairing.curve().base_mul_count() + pairing.curve().scalar_mul_count();

    pairing.reset_op_counts();
    (void)scheme.gen_index(pk, expand_nursery_row(rows[0], k), rng);
    const std::uint64_t enc_exps = pairing.curve().scalar_mul_count();

    const Query q = nursery_expanded_realistic_query(k, 1, rng);
    pairing.reset_op_counts();
    (void)scheme.gen_cap_naive(msk, q, rng);
    const std::uint64_t gencap_naive = pairing.curve().scalar_mul_count();
    pairing.reset_op_counts();
    const auto cap = scheme.gen_cap(msk, q, rng);
    const std::uint64_t gencap_shared = pairing.curve().scalar_mul_count();

    const auto enc = scheme.gen_index(pk, expand_nursery_row(rows[0], k),
                                      rng);
    pairing.reset_op_counts();
    (void)scheme.search(cap, enc);
    const std::uint64_t search_prs = pairing.miller_count();

    std::printf("%5zu %6zu %12lu %12lu %14lu %14lu %12lu\n", n, n0,
                static_cast<unsigned long>(setup_exps),
                static_cast<unsigned long>(enc_exps),
                static_cast<unsigned long>(gencap_naive),
                static_cast<unsigned long>(gencap_shared),
                static_cast<unsigned long>(search_prs));
    // Loud self-checks: the formulas must hold exactly.
    if (setup_exps != 2 * n0 * n0 || enc_exps != n0 * (n0 - 1) ||
        search_prs != n0) {
      std::printf("ERROR: counted costs deviate from the paper formulas!\n");
      return 1;
    }
  }
  std::printf("verified: setup == 2*n0^2, encrypt == n0*(n0-1), search == "
              "n0 pairings at every n; capability columns show the naive "
              "(paper) vs shared-sum (ours) Theta(n^2) constants.\n");
  return 0;
}
