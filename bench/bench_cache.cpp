// Verdict-cache speedup and equivalence: hot repeated queries over a
// sealed-segment-dominated store.
//
// The paper's search is pairing-bound (~tens of probes/s), and a sealed
// segment's record set never changes — so the per-segment verdict cache
// (cloud/verdict_cache.h) should turn a repeated hot query into binary
// searches over memoized id lists, paying pairings only for the active
// tail. This bench measures exactly that claim on a store where almost
// every record lives in a sealed segment (segment_max_bytes = 1 seals
// after every append):
//
//   cold: first batch through an engine with the cache enabled (misses,
//         full pairing scan, populates)
//   hot:  the same batch repeated (verdict hits, no pairings beyond the
//         active tail)
//
// Gate: hot probes_per_s >= 5x cold (the ISSUE acceptance bar; in
// practice it is orders of magnitude). Alongside the speedup, the bench
// asserts byte-identical results between cached and uncached engines
// across the events that change segment identities: more appends
// (rotations), compaction, and a crash-style store reopen — with ONE
// shared VerdictCache surviving all of them, so stale entries would be
// caught, not aged out.
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cloud/search_engine.h"
#include "cloud/server.h"
#include "core/serialize_apks.h"
#include "store/sharded_store.h"

using namespace apks;
using namespace apks::bench;

namespace {

namespace fs = std::filesystem;

struct Timer {
  Clock::time_point start = Clock::now();
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start).count();
  }
};

using Results = std::vector<std::vector<std::string>>;

bool same_results(const Results& a, const Results& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

// The uncached ground truth: a fresh engine with no verdict cache.
Results reference_results(const CloudServer& server,
                          std::span<const Capability> caps) {
  const SearchEngine plain(server);
  return plain.search_batch_unchecked(caps);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "BENCH_cache.json");
  const std::size_t kRecords = args.smoke ? 20 : 48;
  const std::size_t kExtra = args.smoke ? 4 : 8;  // appended later (rotations)
  const std::uint32_t kShards = 2;
  const std::size_t kHotIters = args.smoke ? 3 : 10;

  const Pairing pairing(default_type_a_params());
  ChaChaRng rng("bench-cache");
  const Apks scheme(pairing, nursery_schema(1));
  ApksPublicKey pk;
  ApksMasterKey msk;
  scheme.setup(rng, pk, msk);

  const std::vector<PlainIndex> rows = nursery_rows();
  auto make_index = [&](std::size_t i) {
    return scheme.gen_index(pk, rows[(i * 739) % rows.size()], rng);
  };
  const std::vector<Capability> caps = {
      scheme.gen_cap(msk, nursery_worst_case_query(1, rng), rng),
      scheme.gen_cap(msk, nursery_worst_case_query(1, rng), rng),
  };

  const fs::path dir =
      fs::temp_directory_path() /
      ("apks-bench-cache-" + std::to_string(static_cast<unsigned>(getpid())));
  fs::remove_all(dir);

  print_header("Per-segment verdict cache: hot-query speedup + equivalence",
               "search is pairing-bound (Sec. 5.2 linear scan); memoized "
               "sealed-segment verdicts should collapse repeated queries to "
               "binary searches");

  // Sealed-segment-dominated store: segment_max_bytes = 1 rotates before
  // every append after the first, so only the newest record per shard sits
  // in the (unsealed) active tail.
  ShardedStoreOptions opts;
  opts.shards = kShards;
  opts.segment.segment_max_bytes = 1;
  auto store = std::make_unique<ShardedStore>(pairing, dir, opts);
  for (std::size_t i = 0; i < kRecords; ++i) {
    (void)store->append("doc-" + std::to_string(i), make_index(i));
  }
  store->sync();

  CloudServer server(scheme, CapabilityVerifier(pairing, IbsPublicParams{}));
  const std::size_t loaded = server.load_from(*store);
  const std::size_t sealed_segments = server.segment_table().size();
  std::printf("records: %zu (%zu sealed segments), queries: %zu\n", loaded,
              sealed_segments, caps.size());

  JsonReport report("bench_cache");
  report.set_meta("smoke", args.smoke ? 1 : 0);
  report.set_meta("records", kRecords);
  report.set_meta("shards", kShards);
  report.set_meta("sealed_segments", sealed_segments);
  report.set_meta("queries", caps.size());

  // One cache shared by every cached engine below — it must stay correct
  // across rotations, compaction, and a store reopen.
  const auto vcache = std::make_shared<VerdictCache>(8u << 20);
  SearchEngine::Options eopts;
  eopts.verdict_cache = vcache;
  SearchEngine engine(server, eopts);
  store->set_invalidation_hook([&vcache](std::span<const SegmentId> retired) {
    vcache->invalidate(retired);
  });

  const Results expect = reference_results(server, caps);

  // --- Cold: first batch misses everywhere, runs the pairing scan, and
  // memoizes every (query, sealed segment) verdict.
  BatchMetrics cold_m;
  Timer cold_t;
  const Results cold = engine.search_batch_unchecked(caps, &cold_m);
  const double cold_s = cold_t.seconds();
  if (!same_results(cold, expect)) {
    std::fprintf(stderr, "FAIL: cold cached batch != uncached reference\n");
    return 1;
  }
  const double probes = static_cast<double>(loaded * caps.size());
  const double cold_pps = probes / cold_s;
  std::printf("cold: %.4f s (%.0f probes/s), %zu verdicts memoized\n", cold_s,
              cold_pps, cold_m.verdict_puts);
  report.add_row({{"phase", "cold"},
                  {"seconds", cold_s},
                  {"probes_per_s", cold_pps},
                  {"verdict_puts", cold_m.verdict_puts}});

  // --- Hot: identical batch; sealed records resolve from the cache.
  BatchMetrics hot_m;
  double hot_s = 0;
  Results hot;
  for (std::size_t i = 0; i < kHotIters; ++i) {
    Timer t;
    hot = engine.search_batch_unchecked(caps, &hot_m);
    const double s = t.seconds();
    if (i == 0 || s < hot_s) hot_s = s;  // best of N (hot path, no warmup)
  }
  if (!same_results(hot, expect)) {
    std::fprintf(stderr, "FAIL: hot cached batch != uncached reference\n");
    return 1;
  }
  const double hot_pps = probes / hot_s;
  const double speedup = hot_pps / cold_pps;
  std::printf("hot: %.6f s (%.0f probes/s) — %.1fx cold; %zu/%zu records "
              "from cache\n",
              hot_s, hot_pps, speedup, hot_m.verdict_hits,
              loaded * caps.size());
  report.add_row({{"phase", "hot"},
                  {"seconds", hot_s},
                  {"probes_per_s", hot_pps},
                  {"speedup_vs_cold", speedup},
                  {"verdict_hits", hot_m.verdict_hits}});

  bool ok = true;
  if (speedup < 5.0) {
    std::fprintf(stderr, "FAIL: hot speedup %.2fx below the 5x gate\n",
                 speedup);
    ok = false;
  }

  // --- Equivalence under rotation: more appends seal new segments (and
  // re-seal the old active tails); the reloaded server mixes old cached
  // identities with new ones.
  for (std::size_t i = 0; i < kExtra; ++i) {
    (void)store->append("doc-extra-" + std::to_string(i),
                        make_index(kRecords + i));
  }
  store->sync();
  (void)server.load_from(*store);
  {
    const Results got = engine.search_batch_unchecked(caps);
    const Results want = reference_results(server, caps);
    const bool same = same_results(got, want);
    std::printf("after rotations: %s\n", same ? "identical" : "MISMATCH");
    report.add_row({{"phase", "equiv_rotate"}, {"identical", same ? 1 : 0}});
    ok = ok && same;
  }

  // --- Equivalence under compaction: every segment identity is replaced;
  // the invalidation hook drops the retired verdicts.
  const VerdictCacheStats before_compact = vcache->stats();
  (void)store->compact();
  (void)server.load_from(*store);
  {
    const Results got = engine.search_batch_unchecked(caps);
    const Results want = reference_results(server, caps);
    const bool same = same_results(got, want);
    const VerdictCacheStats after = vcache->stats();
    std::printf("after compaction: %s (%" PRIu64 " verdicts invalidated)\n",
                same ? "identical" : "MISMATCH",
                after.invalidated - before_compact.invalidated);
    report.add_row({{"phase", "equiv_compact"},
                    {"identical", same ? 1 : 0},
                    {"invalidated", static_cast<std::size_t>(
                                        after.invalidated -
                                        before_compact.invalidated)}});
    ok = ok && same;
  }

  // --- Equivalence across a crash-style reopen: drop the store object
  // without any shutdown ceremony, reopen the directory, rebuild the
  // server — the SAME shared cache keeps serving (sealed identities are
  // durable, so its entries stay valid).
  store.reset();
  store = std::make_unique<ShardedStore>(pairing, dir, opts);
  CloudServer server2(scheme, CapabilityVerifier(pairing, IbsPublicParams{}));
  (void)server2.load_from(*store);
  {
    SearchEngine engine2(server2, eopts);  // same shared vcache
    BatchMetrics m2;
    const Results got = engine2.search_batch_unchecked(caps, &m2);
    const Results want = reference_results(server2, caps);
    const bool same = same_results(got, want);
    std::printf("after crash-reopen: %s (%zu records served from the "
                "surviving cache)\n",
                same ? "identical" : "MISMATCH", m2.verdict_hits);
    report.add_row({{"phase", "equiv_reopen"},
                    {"identical", same ? 1 : 0},
                    {"verdict_hits", m2.verdict_hits}});
    ok = ok && same;
  }

  const VerdictCacheStats vs = vcache->stats();
  report.add_row({{"phase", "cache_totals"},
                  {"hits", static_cast<std::size_t>(vs.hits)},
                  {"misses", static_cast<std::size_t>(vs.misses)},
                  {"insertions", static_cast<std::size_t>(vs.insertions)},
                  {"invalidated", static_cast<std::size_t>(vs.invalidated)},
                  {"entries", vs.entries},
                  {"bytes", static_cast<std::size_t>(vs.bytes)}});

  fs::remove_all(dir);
  if (args.json && !report.write(args.json_path)) return 1;
  return ok ? 0 : 1;
}
