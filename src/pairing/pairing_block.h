// Lane-parallel multi-pairing scan kernel.
//
// A BlockMultiPairing is the server-side compiled form of a prepared
// capability: the batch-normalized Miller line tables of its fixed first
// arguments, converted once into the lane engine's internal domain
// (FpLaneScalar), plus the engine itself. `run` drives a block of records —
// each an (n+3)-point ciphertext vector — through one shared Miller loop
// with every F_p operation executed across all lanes (records) at once,
// then finishes with a blocked final exponentiation whose norm inversions
// share a single batch_inv.
//
// Output contract: canonical Montgomery residues are unique, so the GT
// value per record is byte-identical to the scalar path
// final_exp(multi_miller_pre(...)) on every engine.
//
// Counters stay engine-invariant: each record costs dim() `miller` probes,
// one `multi_miller`, one `final_exp`, exactly as the scalar path counts.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "math/fp_lanes.h"
#include "pairing/pairing.h"

namespace apks {

class BlockMultiPairing {
 public:
  // Takes ownership of the preprocessed slots (slot i pairs with point i of
  // each record vector). `level` pins the lane engine; the default follows
  // the process-wide simd_level().
  BlockMultiPairing(const Pairing& pairing,
                    std::vector<PreprocessedPairing> pres, SimdLevel level);
  BlockMultiPairing(const Pairing& pairing,
                    std::vector<PreprocessedPairing> pres);

  [[nodiscard]] std::size_t dim() const noexcept { return pres_.size(); }
  [[nodiscard]] std::span<const PreprocessedPairing> pres() const noexcept {
    return pres_;
  }
  [[nodiscard]] const Pairing& pairing() const noexcept { return *e_; }
  [[nodiscard]] const char* engine_name() const noexcept {
    return engine_->name();
  }
  [[nodiscard]] SimdLevel engine_level() const noexcept {
    return engine_->level();
  }
  // Records per lane pass (callers may batch in any block size; `run`
  // chunks internally).
  [[nodiscard]] std::size_t lane_width() const noexcept {
    return engine_->width();
  }

  // out[r] = final_exp(prod_i miller(P_i, qvecs[r][i])) for r in [0, n).
  // qvecs[r] must point at dim() affine points. Thread-safe (all state is
  // read-only; scratch is per-call).
  void run(const AffinePoint* const* qvecs, std::size_t n, GtEl* out) const;

 private:
  struct LaneLine {
    FpLaneScalar a;
    FpLaneScalar b;
    bool one = false;
  };

  // Scalar-path fallback for chunks containing an infinity record point.
  void run_scalar(const AffinePoint* const* qvecs, std::size_t n,
                  GtEl* out) const;
  void run_lanes(const AffinePoint* const* qvecs, std::size_t n,
                 GtEl* out) const;

  const Pairing* e_;
  std::vector<PreprocessedPairing> pres_;
  std::unique_ptr<FpLaneEngine> engine_;
  // Slots with a non-empty trace (the others contribute the factor 1).
  std::vector<std::size_t> active_;
  // active_.size() x line_count lane-domain line tables, slot-major.
  std::vector<std::vector<LaneLine>> lane_lines_;
  FpLaneScalar one_s_{};   // engine-domain 1 (Montgomery R)
  FpLaneScalar zero_s_{};  // engine-domain 0
};

}  // namespace apks
