// Tate pairing on the type-A curve.
//
// e : G x G -> GT with G = E(F_p)[q] and GT the order-q subgroup of F_p^2*.
// The pairing is symmetric: e(P, Q) := t(P, phi(Q)) where t is the reduced
// Tate pairing and phi(x, y) = (-x, i y) is the distortion map. The Miller
// loop runs in Jacobian coordinates with denominator elimination (vertical
// lines evaluate into F_p and die in the final exponentiation
// z -> z^{(p^2-1)/q} = (z^{p-1})^h).
//
// PreprocessedPairing caches the Miller-loop line coefficients of a fixed
// first argument, roughly halving per-pairing cost — the "with
// preprocessing" mode the paper benchmarks (2.5 ms vs 5.5 ms on its 2011
// hardware).
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "ec/curve.h"
#include "math/fp2.h"

namespace apks {

// An element of GT (unitary subgroup of F_p^2*).
using GtEl = Fp2El;

// Coefficients of one Miller-loop line, pre-evaluated against the distortion
// map: line(Q) = (A * x_Q + B) + (C * y_Q) * i.
struct LineCoeffs {
  Fp A{};
  Fp B{};
  Fp C{};
  bool one = false;  // line degenerated to a vertical; contributes 1
};

class PreprocessedPairing;

// A snapshot of the pairing-operation counters (the cost unit of
// Fig. 8(d) / Table III). Subtract two snapshots to attribute the work of
// a region: `auto before = e.op_counts(); ...; auto cost = e.op_counts() -
// before;`. Counters are process-wide per Pairing instance and atomically
// updated, so deltas are exact even when worker threads pair concurrently.
struct PairingOpCounts {
  std::uint64_t miller = 0;
  std::uint64_t final_exp = 0;

  PairingOpCounts& operator+=(const PairingOpCounts& o) noexcept {
    miller += o.miller;
    final_exp += o.final_exp;
    return *this;
  }
  friend PairingOpCounts operator-(const PairingOpCounts& a,
                                   const PairingOpCounts& b) noexcept {
    return {a.miller - b.miller, a.final_exp - b.final_exp};
  }
  friend bool operator==(const PairingOpCounts& a,
                         const PairingOpCounts& b) noexcept {
    return a.miller == b.miller && a.final_exp == b.final_exp;
  }
};

class Pairing {
 public:
  explicit Pairing(const TypeAParams& params);

  [[nodiscard]] const Curve& curve() const noexcept { return curve_; }
  [[nodiscard]] const Fp2& fp2() const noexcept { return fp2_; }
  [[nodiscard]] const FpField& fp() const noexcept { return curve_.fp(); }
  [[nodiscard]] const FqField& fq() const noexcept { return curve_.fq(); }

  // The full pairing e(P, Q). Returns 1 if either input is infinity.
  [[nodiscard]] GtEl pair(const AffinePoint& p, const AffinePoint& q) const;

  // e(g, g) for the curve generator (cached).
  [[nodiscard]] const GtEl& gt_generator() const noexcept { return gt_gen_; }

  // GT group operations. Elements are unitary, so inversion is conjugation.
  [[nodiscard]] GtEl gt_mul(const GtEl& a, const GtEl& b) const {
    return fp2_.mul(a, b);
  }
  [[nodiscard]] GtEl gt_inv(const GtEl& a) const { return fp2_.conj(a); }
  [[nodiscard]] GtEl gt_pow(const GtEl& a, const Fq& e) const {
    return fp2_.pow(a, fq().to_int(e));
  }
  [[nodiscard]] GtEl gt_one() const { return fp2_.one(); }
  [[nodiscard]] bool gt_is_one(const GtEl& a) const { return fp2_.is_one(a); }

  // Uniform random GT element: gt_generator() ^ r.
  [[nodiscard]] GtEl gt_random(Rng& rng) const {
    return gt_pow(gt_gen_, fq().random(rng));
  }

  // 65-byte compressed GT encoding (unitary: a + sign-of-b).
  static constexpr std::size_t kGtCompressedSize = 65;
  void gt_serialize(const GtEl& a,
                    std::span<std::uint8_t, kGtCompressedSize> out) const;
  [[nodiscard]] GtEl gt_deserialize(
      std::span<const std::uint8_t, kGtCompressedSize> in) const;

  // Precompute the Miller line coefficients of `p` for repeated pairings.
  [[nodiscard]] PreprocessedPairing preprocess(const AffinePoint& p) const;

  // Pairing-operation counters (the cost unit of Fig. 8(d) / Table III).
  void reset_op_counts() const noexcept {
    miller_count_.store(0, std::memory_order_relaxed);
    final_exp_count_.store(0, std::memory_order_relaxed);
    curve_.reset_op_counts();
  }
  [[nodiscard]] std::uint64_t miller_count() const noexcept {
    return miller_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t final_exp_count() const noexcept {
    return final_exp_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] PairingOpCounts op_counts() const noexcept {
    return {miller_count(), final_exp_count()};
  }

  // Raw Miller loop without the final exponentiation. A product of Miller
  // values can share a single final_exp:
  //   prod_i e(P_i, Q_i) == final_exp(prod_i miller(P_i, Q_i)).
  // The DPVS layer uses this to pair (n+3)-element vectors at the cost of
  // n+3 Miller loops and one exponentiation.
  [[nodiscard]] Fp2El miller(const AffinePoint& p, const AffinePoint& q) const;

  // Final exponentiation z^{(p^2-1)/q}.
  [[nodiscard]] GtEl final_exp(const Fp2El& f) const;

 private:
  friend class PreprocessedPairing;

  // Jacobian doubling that also emits the tangent-line coefficients.
  JacPoint dbl_step(const JacPoint& t, LineCoeffs& line) const;
  // Mixed addition (t + p) emitting the chord-line coefficients.
  JacPoint add_step(const JacPoint& t, const AffinePoint& p,
                    LineCoeffs& line) const;
  // Evaluates a line at phi(Q).
  [[nodiscard]] Fp2El eval_line(const LineCoeffs& line,
                                const AffinePoint& q) const;

  Curve curve_;
  Fp2 fp2_;
  GtEl gt_gen_;

  mutable std::atomic<std::uint64_t> miller_count_{0};
  mutable std::atomic<std::uint64_t> final_exp_count_{0};
};

// The Miller-loop trace of a fixed first argument.
class PreprocessedPairing {
 public:
  // e(P, q) for the fixed P.
  [[nodiscard]] GtEl pair_with(const AffinePoint& q) const;

  // Raw Miller value for the fixed P (no final exponentiation).
  [[nodiscard]] Fp2El miller_with(const AffinePoint& q) const;

  [[nodiscard]] std::size_t line_count() const noexcept {
    return lines_.size();
  }

 private:
  friend class Pairing;
  PreprocessedPairing(const Pairing& parent, std::vector<LineCoeffs> lines)
      : parent_(&parent), lines_(std::move(lines)) {}

  const Pairing* parent_;
  // Flattened step list: each Miller iteration contributes its doubling line
  // and, when the scalar bit is set, the addition line, in order.
  std::vector<LineCoeffs> lines_;
};

}  // namespace apks
