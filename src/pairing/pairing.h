// Tate pairing on the type-A curve.
//
// e : G x G -> GT with G = E(F_p)[q] and GT the order-q subgroup of F_p^2*.
// The pairing is symmetric: e(P, Q) := t(P, phi(Q)) where t is the reduced
// Tate pairing and phi(x, y) = (-x, i y) is the distortion map. The Miller
// loop runs in Jacobian coordinates with denominator elimination (vertical
// lines evaluate into F_p and die in the final exponentiation
// z -> z^{(p^2-1)/q} = (z^{p-1})^h).
//
// PreprocessedPairing caches the Miller-loop line coefficients of a fixed
// first argument, roughly halving per-pairing cost — the "with
// preprocessing" mode the paper benchmarks (2.5 ms vs 5.5 ms on its 2011
// hardware).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ec/curve.h"
#include "math/fp2.h"

namespace apks {

// An element of GT (unitary subgroup of F_p^2*).
using GtEl = Fp2El;

// Coefficients of one Miller-loop line, pre-evaluated against the distortion
// map: line(Q) = (A * x_Q + B) + (C * y_Q) * i.
struct LineCoeffs {
  Fp A{};
  Fp B{};
  Fp C{};
  bool one = false;  // line degenerated to a vertical; contributes 1
};

// A preprocessed line with the y-coefficient normalized away: the stored
// (A, B) are the raw coefficients scaled by C^{-1}. C is an F_p (subfield)
// factor, so the scaling is killed by the final exponentiation and the
// evaluation at phi(Q) drops to a single multiplication:
//   line(Q) = (A * x_Q + B) + y_Q * i.
// All C's of a trace are inverted together with one batch_inv at
// preprocessing time.
struct NormLine {
  Fp A{};
  Fp B{};
  bool one = false;  // vertical line; contributes a subfield factor only
};

class PreprocessedPairing;

// One (P, Q) input slot of a multi-pairing.
struct MillerPair {
  AffinePoint p;
  AffinePoint q;
};

// A snapshot of the pairing-operation counters (the cost unit of
// Fig. 8(d) / Table III). Subtract two snapshots to attribute the work of
// a region: `auto before = e.op_counts(); ...; auto cost = e.op_counts() -
// before;`. Counters are process-wide per Pairing instance and atomically
// updated, so deltas are exact even when worker threads pair concurrently.
struct PairingOpCounts {
  std::uint64_t miller = 0;
  // Shared-accumulator multi-Miller evaluations. A multi-pairing of N slots
  // counts N `miller` probes (the cost unit stays engine-invariant) plus one
  // `multi_miller`, whichever engine — scalar or SIMD — ran it.
  std::uint64_t multi_miller = 0;
  std::uint64_t final_exp = 0;

  PairingOpCounts& operator+=(const PairingOpCounts& o) noexcept {
    miller += o.miller;
    multi_miller += o.multi_miller;
    final_exp += o.final_exp;
    return *this;
  }
  friend PairingOpCounts operator-(const PairingOpCounts& a,
                                   const PairingOpCounts& b) noexcept {
    return {a.miller - b.miller, a.multi_miller - b.multi_miller,
            a.final_exp - b.final_exp};
  }
  friend bool operator==(const PairingOpCounts& a,
                         const PairingOpCounts& b) noexcept {
    return a.miller == b.miller && a.multi_miller == b.multi_miller &&
           a.final_exp == b.final_exp;
  }
};

class Pairing {
 public:
  explicit Pairing(const TypeAParams& params);

  [[nodiscard]] const Curve& curve() const noexcept { return curve_; }
  [[nodiscard]] const Fp2& fp2() const noexcept { return fp2_; }
  [[nodiscard]] const FpField& fp() const noexcept { return curve_.fp(); }
  [[nodiscard]] const FqField& fq() const noexcept { return curve_.fq(); }

  // The full pairing e(P, Q). Returns 1 if either input is infinity.
  [[nodiscard]] GtEl pair(const AffinePoint& p, const AffinePoint& q) const;

  // e(g, g) for the curve generator (cached).
  [[nodiscard]] const GtEl& gt_generator() const noexcept { return gt_gen_; }

  // GT group operations. Elements are unitary, so inversion is conjugation.
  [[nodiscard]] GtEl gt_mul(const GtEl& a, const GtEl& b) const {
    return fp2_.mul(a, b);
  }
  [[nodiscard]] GtEl gt_inv(const GtEl& a) const { return fp2_.conj(a); }
  [[nodiscard]] GtEl gt_pow(const GtEl& a, const Fq& e) const {
    return fp2_.pow(a, fq().to_int(e));
  }
  [[nodiscard]] GtEl gt_one() const { return fp2_.one(); }
  [[nodiscard]] bool gt_is_one(const GtEl& a) const { return fp2_.is_one(a); }

  // Uniform random GT element: gt_generator() ^ r.
  [[nodiscard]] GtEl gt_random(Rng& rng) const {
    return gt_pow(gt_gen_, fq().random(rng));
  }

  // 65-byte compressed GT encoding (unitary: a + sign-of-b).
  static constexpr std::size_t kGtCompressedSize = 65;
  void gt_serialize(const GtEl& a,
                    std::span<std::uint8_t, kGtCompressedSize> out) const;
  [[nodiscard]] GtEl gt_deserialize(
      std::span<const std::uint8_t, kGtCompressedSize> in) const;

  // Precompute the Miller line coefficients of `p` for repeated pairings.
  [[nodiscard]] PreprocessedPairing preprocess(const AffinePoint& p) const;

  // Pairing-operation counters (the cost unit of Fig. 8(d) / Table III).
  void reset_op_counts() const noexcept {
    miller_count_.store(0, std::memory_order_relaxed);
    multi_miller_count_.store(0, std::memory_order_relaxed);
    final_exp_count_.store(0, std::memory_order_relaxed);
    curve_.reset_op_counts();
  }
  [[nodiscard]] std::uint64_t miller_count() const noexcept {
    return miller_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t multi_miller_count() const noexcept {
    return multi_miller_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t final_exp_count() const noexcept {
    return final_exp_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] PairingOpCounts op_counts() const noexcept {
    return {miller_count(), multi_miller_count(), final_exp_count()};
  }

  // Raw Miller loop without the final exponentiation. A product of Miller
  // values can share a single final_exp:
  //   prod_i e(P_i, Q_i) == final_exp(prod_i miller(P_i, Q_i)).
  // The DPVS layer uses this to pair (n+3)-element vectors at the cost of
  // n+3 Miller loops and one exponentiation.
  [[nodiscard]] Fp2El miller(const AffinePoint& p, const AffinePoint& q) const;

  // True multi-pairing: one shared accumulator squared once per scalar bit,
  // every slot's line evaluations folded into it per step. Algebraically
  // equal to prod_i miller(p_i, q_i) — and therefore bit-identical after
  // final_exp, since canonical residues are unique. Infinity slots
  // contribute 1. Counts pairs.size() `miller` probes + 1 `multi_miller`.
  [[nodiscard]] Fp2El multi_miller(std::span<const MillerPair> pairs) const;

  // Multi-pairing over preprocessed first arguments. pres[i] pairs with
  // qs[i]; slots with an empty trace (P at infinity) or q at infinity
  // contribute 1. All non-empty traces share one step structure (it depends
  // only on the group order), so a single index walks them in lockstep.
  [[nodiscard]] Fp2El multi_miller_pre(
      std::span<const PreprocessedPairing> pres,
      std::span<const AffinePoint> qs) const;

  // Final exponentiation z^{(p^2-1)/q}.
  [[nodiscard]] GtEl final_exp(const Fp2El& f) const;

  // x^h for unitary x, via the precomputed signed 4-bit recoding of
  // h = (p+1)/q (negative digits use conjugation). Exposed for the block
  // scan kernel, which runs the same digit schedule lane-parallel.
  [[nodiscard]] GtEl pow_unitary(const Fp2El& u) const;

  // Signed 4-bit digits of h, least-significant first, each in [-8, 8].
  [[nodiscard]] std::span<const std::int8_t> h_digits() const noexcept {
    return h_digits_;
  }

  // Counter hook for external kernels (the SIMD block scan) that perform
  // pairing work without routing through miller()/final_exp(). Keeps the
  // cost model engine-invariant.
  void note_block_ops(std::uint64_t millers, std::uint64_t multi_millers,
                      std::uint64_t final_exps) const noexcept {
    miller_count_.fetch_add(millers, std::memory_order_relaxed);
    multi_miller_count_.fetch_add(multi_millers, std::memory_order_relaxed);
    final_exp_count_.fetch_add(final_exps, std::memory_order_relaxed);
  }

 private:
  friend class PreprocessedPairing;

  // Jacobian doubling that also emits the tangent-line coefficients.
  JacPoint dbl_step(const JacPoint& t, LineCoeffs& line) const;
  // Mixed addition (t + p) emitting the chord-line coefficients.
  JacPoint add_step(const JacPoint& t, const AffinePoint& p,
                    LineCoeffs& line) const;
  // Evaluates a line at phi(Q).
  [[nodiscard]] Fp2El eval_line(const LineCoeffs& line,
                                const AffinePoint& q) const;

  Curve curve_;
  Fp2 fp2_;
  GtEl gt_gen_;
  // Signed 4-bit digits of h = (p+1)/q, least-significant first.
  std::vector<std::int8_t> h_digits_;

  mutable std::atomic<std::uint64_t> miller_count_{0};
  mutable std::atomic<std::uint64_t> multi_miller_count_{0};
  mutable std::atomic<std::uint64_t> final_exp_count_{0};
};

// The Miller-loop trace of a fixed first argument, with batch-normalized
// line coefficients (see NormLine).
class PreprocessedPairing {
 public:
  // e(P, q) for the fixed P.
  [[nodiscard]] GtEl pair_with(const AffinePoint& q) const;

  // Raw Miller value for the fixed P (no final exponentiation). With
  // normalized lines this differs from miller(P, q) by a subfield factor;
  // the difference vanishes under final_exp.
  [[nodiscard]] Fp2El miller_with(const AffinePoint& q) const;

  [[nodiscard]] std::size_t line_count() const noexcept {
    return lines_.size();
  }

  // Flattened step list: each Miller iteration contributes its doubling line
  // and, when the scalar bit is set, the addition line, in order. Empty when
  // the fixed P is the point at infinity.
  [[nodiscard]] std::span<const NormLine> lines() const noexcept {
    return lines_;
  }
  [[nodiscard]] const Pairing& parent() const noexcept { return *parent_; }

 private:
  friend class Pairing;
  PreprocessedPairing(const Pairing& parent, std::vector<NormLine> lines)
      : parent_(&parent), lines_(std::move(lines)) {}

  const Pairing* parent_;
  std::vector<NormLine> lines_;
};

}  // namespace apks
