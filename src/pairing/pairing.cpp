#include "pairing/pairing.h"

#include <cassert>
#include <stdexcept>

namespace apks {

namespace {

// Signed 4-bit recoding: e = sum_i d_i * 16^i with d_i in [-8, 8].
// Negative digits let the unitary exponentiation use conjugation instead of
// a second half of the multiplication table.
std::vector<std::int8_t> recode_signed4(const FpInt& e) {
  std::vector<std::int8_t> digits;
  const std::size_t nibs = (e.bit_length() + 3) / 4;
  digits.reserve(nibs + 1);
  unsigned carry = 0;
  for (std::size_t i = 0; i < nibs; ++i) {
    unsigned bits = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      if (e.bit(4 * i + j)) bits |= 1u << j;
    }
    const unsigned nib = bits + carry;  // can reach 16 (digit 0, carry out)
    if (nib > 8) {
      digits.push_back(static_cast<std::int8_t>(static_cast<int>(nib) - 16));
      carry = 1;
    } else {
      digits.push_back(static_cast<std::int8_t>(nib));
      carry = 0;
    }
  }
  if (carry != 0) digits.push_back(1);
  return digits;
}

}  // namespace

Pairing::Pairing(const TypeAParams& params)
    : curve_(params), fp2_(curve_.fp()), h_digits_(recode_signed4(params.h)) {
  gt_gen_ = pair(curve_.generator(), curve_.generator());
  if (fp2_.is_one(gt_gen_)) {
    throw std::logic_error("Pairing: degenerate generator pairing");
  }
}

JacPoint Pairing::dbl_step(const JacPoint& t, LineCoeffs& line) const {
  const FpField& fp = curve_.fp();
  if (t.is_infinity()) {
    line.one = true;
    return t;
  }
  const Fp Y2 = fp.sqr(t.Y);
  const Fp Z2 = fp.sqr(t.Z);
  const Fp X2 = fp.sqr(t.X);
  const Fp M = fp.add(fp.add(fp.dbl(X2), X2), fp.sqr(Z2));  // 3X^2 + Z^4
  const Fp S = fp.dbl(fp.dbl(fp.mul(t.X, Y2)));             // 4XY^2
  const Fp X3 = fp.sub(fp.sqr(M), fp.dbl(S));
  const Fp Y3 = fp.sub(fp.mul(M, fp.sub(S, X3)),
                       fp.dbl(fp.dbl(fp.dbl(fp.sqr(Y2)))));  // -8Y^4
  const Fp Z3 = fp.dbl(fp.mul(t.Y, t.Z));
  // Tangent at T, scaled by Z3*Z2 (subfield factor, killed by final exp):
  //   l = (M*Z2) * x + (M*X - 2Y^2) + (Z3*Z2) * y
  // evaluated at phi(Q) = (-x_Q, i y_Q) as (A x_Q + B) + (C y_Q) i.
  line.A = fp.mul(M, Z2);
  line.B = fp.sub(fp.mul(M, t.X), fp.dbl(Y2));
  line.C = fp.mul(Z3, Z2);
  line.one = false;
  return {X3, Y3, Z3};
}

JacPoint Pairing::add_step(const JacPoint& t, const AffinePoint& p,
                           LineCoeffs& line) const {
  const FpField& fp = curve_.fp();
  if (t.is_infinity()) {
    // Vertical line through P; contributes a subfield factor only.
    line.one = true;
    return {p.x, p.y, fp.one()};
  }
  const Fp Z2 = fp.sqr(t.Z);
  const Fp U = fp.mul(p.x, Z2);
  const Fp S = fp.mul(p.y, fp.mul(Z2, t.Z));
  const Fp H = fp.sub(U, t.X);
  const Fp R = fp.sub(S, t.Y);
  if (H.is_zero()) {
    if (R.is_zero()) {
      // T == P: fall back to the tangent line.
      return dbl_step(t, line);
    }
    // T == -P: the chord is vertical; T + P = infinity.
    line.one = true;
    return {fp.one(), fp.one(), fp.zero()};
  }
  const Fp H2 = fp.sqr(H);
  const Fp H3 = fp.mul(H2, H);
  const Fp XH2 = fp.mul(t.X, H2);
  const Fp X3 = fp.sub(fp.sub(fp.sqr(R), H3), fp.dbl(XH2));
  const Fp Y3 = fp.sub(fp.mul(R, fp.sub(XH2, X3)), fp.mul(t.Y, H3));
  const Fp Z3 = fp.mul(t.Z, H);
  // Chord through T and P, scaled by Z3:
  //   l = R * x + (R*x_P - Z3*y_P) ... evaluated at phi(Q):
  //   (R x_Q + R x_P - Z3 y_P) + (Z3 y_Q) i.
  line.A = R;
  line.B = fp.sub(fp.mul(R, p.x), fp.mul(Z3, p.y));
  line.C = Z3;
  line.one = false;
  return {X3, Y3, Z3};
}

Fp2El Pairing::eval_line(const LineCoeffs& line, const AffinePoint& q) const {
  const FpField& fp = curve_.fp();
  return {fp.add(fp.mul(line.A, q.x), line.B), fp.mul(line.C, q.y)};
}

GtEl Pairing::final_exp(const Fp2El& f) const {
  final_exp_count_.fetch_add(1, std::memory_order_relaxed);
  // z^{p-1} = conj(z) * z^{-1} = conj(z)^2 * norm(z)^{-1}: one base-field
  // inversion instead of a generic Fp2 inversion (which hides the same
  // norm-inverse plus two more multiplications).
  const FpField& fp = curve_.fp();
  const Fp n_inv = fp.inv(fp2_.norm(f));
  const Fp2El c2 = fp2_.sqr(fp2_.conj(f));
  const Fp2El unitary = {fp.mul(c2.a, n_inv), fp.mul(c2.b, n_inv)};
  return pow_unitary(unitary);
}

GtEl Pairing::pow_unitary(const Fp2El& u) const {
  // u^h with h's fixed signed 4-bit recoding; u^{-k} = conj(u)^k since u is
  // unitary. Table holds u^1..u^8.
  Fp2El table[9];
  table[1] = u;
  for (std::size_t k = 2; k <= 8; ++k) table[k] = fp2_.mul(table[k - 1], u);
  Fp2El acc = fp2_.one();
  bool started = false;
  for (std::size_t i = h_digits_.size(); i-- > 0;) {
    if (started) acc = fp2_.sqr(fp2_.sqr(fp2_.sqr(fp2_.sqr(acc))));
    const int d = h_digits_[i];
    if (d == 0) continue;
    const Fp2El& t = table[static_cast<std::size_t>(d > 0 ? d : -d)];
    const Fp2El term = d > 0 ? t : fp2_.conj(t);
    acc = started ? fp2_.mul(acc, term) : term;
    started = true;
  }
  return acc;
}

GtEl Pairing::pair(const AffinePoint& p, const AffinePoint& q) const {
  return final_exp(miller(p, q));
}

Fp2El Pairing::miller(const AffinePoint& p, const AffinePoint& q) const {
  miller_count_.fetch_add(1, std::memory_order_relaxed);
  if (p.inf || q.inf) return fp2_.one();
  Fp2El f = fp2_.one();
  JacPoint t = curve_.to_jac(p);
  const FqInt& order = curve_.params().q;
  const std::size_t bits = order.bit_length();
  LineCoeffs line;
  for (std::size_t i = bits - 1; i-- > 0;) {
    f = fp2_.sqr(f);
    t = dbl_step(t, line);
    if (!line.one) f = fp2_.mul(f, eval_line(line, q));
    if (order.bit(i)) {
      t = add_step(t, p, line);
      if (!line.one) f = fp2_.mul(f, eval_line(line, q));
    }
  }
  return f;
}

Fp2El Pairing::multi_miller(std::span<const MillerPair> pairs) const {
  miller_count_.fetch_add(pairs.size(), std::memory_order_relaxed);
  multi_miller_count_.fetch_add(1, std::memory_order_relaxed);
  // Active slots: infinity on either side contributes the factor 1.
  std::vector<std::size_t> act;
  std::vector<JacPoint> t;
  act.reserve(pairs.size());
  t.reserve(pairs.size());
  for (std::size_t s = 0; s < pairs.size(); ++s) {
    if (!pairs[s].p.inf && !pairs[s].q.inf) {
      act.push_back(s);
      t.push_back(curve_.to_jac(pairs[s].p));
    }
  }
  Fp2El f = fp2_.one();
  if (act.empty()) return f;
  const FqInt& order = curve_.params().q;
  const std::size_t bits = order.bit_length();
  LineCoeffs line;
  for (std::size_t i = bits - 1; i-- > 0;) {
    f = fp2_.sqr(f);  // one shared squaring per bit, whatever the slot count
    for (std::size_t j = 0; j < act.size(); ++j) {
      const MillerPair& mp = pairs[act[j]];
      t[j] = dbl_step(t[j], line);
      if (!line.one) f = fp2_.mul(f, eval_line(line, mp.q));
      if (order.bit(i)) {
        t[j] = add_step(t[j], mp.p, line);
        if (!line.one) f = fp2_.mul(f, eval_line(line, mp.q));
      }
    }
  }
  return f;
}

Fp2El Pairing::multi_miller_pre(std::span<const PreprocessedPairing> pres,
                                std::span<const AffinePoint> qs) const {
  assert(pres.size() == qs.size());
  miller_count_.fetch_add(pres.size(), std::memory_order_relaxed);
  multi_miller_count_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::size_t> act;
  act.reserve(pres.size());
  for (std::size_t s = 0; s < pres.size(); ++s) {
    if (pres[s].line_count() > 0 && !qs[s].inf) act.push_back(s);
  }
  Fp2El f = fp2_.one();
  if (act.empty()) return f;
  const FpField& fp = curve_.fp();
  const FqInt& order = curve_.params().q;
  const std::size_t bits = order.bit_length();
  // Every non-empty trace has the same step structure (it depends only on
  // the bits of q), so one index walks all of them.
  std::size_t idx = 0;
  for (std::size_t i = bits - 1; i-- > 0;) {
    f = fp2_.sqr(f);
    for (const std::size_t s : act) {
      const NormLine& dbl = pres[s].lines()[idx];
      if (!dbl.one) {
        f = fp2_.mul(f, {fp.add(fp.mul(dbl.A, qs[s].x), dbl.B), qs[s].y});
      }
    }
    ++idx;
    if (order.bit(i)) {
      for (const std::size_t s : act) {
        const NormLine& add = pres[s].lines()[idx];
        if (!add.one) {
          f = fp2_.mul(f, {fp.add(fp.mul(add.A, qs[s].x), add.B), qs[s].y});
        }
      }
      ++idx;
    }
  }
  return f;
}

PreprocessedPairing Pairing::preprocess(const AffinePoint& p) const {
  std::vector<NormLine> lines;
  if (p.inf) {
    return PreprocessedPairing(*this, std::move(lines));
  }
  const FqInt& order = curve_.params().q;
  const std::size_t bits = order.bit_length();
  std::vector<LineCoeffs> raw;
  raw.reserve(2 * bits);
  JacPoint t = curve_.to_jac(p);
  LineCoeffs line;
  for (std::size_t i = bits - 1; i-- > 0;) {
    t = dbl_step(t, line);
    raw.push_back(line);
    if (order.bit(i)) {
      t = add_step(t, p, line);
      raw.push_back(line);
    }
  }
  // Normalize by C^{-1} (one batch inversion for the whole trace). The
  // scaling is an F_p factor per folded line, killed by final_exp, and it
  // turns each eval into a single multiplication.
  const FpField& fp = curve_.fp();
  std::vector<Fp> cs;
  cs.reserve(raw.size());
  for (const LineCoeffs& l : raw) {
    if (!l.one) cs.push_back(l.C);
  }
  fp.batch_inv(cs);
  lines.reserve(raw.size());
  std::size_t ci = 0;
  for (const LineCoeffs& l : raw) {
    NormLine n;
    n.one = l.one;
    if (!l.one) {
      const Fp& cinv = cs[ci++];
      n.A = fp.mul(l.A, cinv);
      n.B = fp.mul(l.B, cinv);
    }
    lines.push_back(n);
  }
  return PreprocessedPairing(*this, std::move(lines));
}

GtEl PreprocessedPairing::pair_with(const AffinePoint& q) const {
  return parent_->final_exp(miller_with(q));
}

Fp2El PreprocessedPairing::miller_with(const AffinePoint& q) const {
  parent_->miller_count_.fetch_add(1, std::memory_order_relaxed);
  const Fp2& fp2 = parent_->fp2_;
  if (lines_.empty() || q.inf) return fp2.one();
  const FpField& fp = parent_->curve_.fp();
  const FqInt& order = parent_->curve_.params().q;
  const std::size_t bits = order.bit_length();
  Fp2El f = fp2.one();
  std::size_t idx = 0;
  for (std::size_t i = bits - 1; i-- > 0;) {
    f = fp2.sqr(f);
    const NormLine& dbl = lines_[idx++];
    if (!dbl.one) {
      f = fp2.mul(f, {fp.add(fp.mul(dbl.A, q.x), dbl.B), q.y});
    }
    if (order.bit(i)) {
      const NormLine& add = lines_[idx++];
      if (!add.one) {
        f = fp2.mul(f, {fp.add(fp.mul(add.A, q.x), add.B), q.y});
      }
    }
  }
  return f;
}

void Pairing::gt_serialize(const GtEl& a,
                           std::span<std::uint8_t, kGtCompressedSize> out) const {
  const FpField& fp = curve_.fp();
  const FpInt b_plain = fp.to_int(a.b);
  out[0] = static_cast<std::uint8_t>(2 + (b_plain.w[0] & 1));
  fp.to_int(a.a).to_bytes(std::span<std::uint8_t, 64>(out.data() + 1, 64));
}

GtEl Pairing::gt_deserialize(
    std::span<const std::uint8_t, kGtCompressedSize> in) const {
  if (in[0] != 2 && in[0] != 3) {
    throw std::invalid_argument("gt_deserialize: bad tag");
  }
  const FpField& fp = curve_.fp();
  const FpInt a_plain =
      FpInt::from_bytes(std::span<const std::uint8_t>(in.data() + 1, 64));
  if (a_plain >= fp.modulus()) {
    throw std::invalid_argument("gt_deserialize: value out of range");
  }
  const Fp a = fp.from_int(a_plain);
  // Unitary: a^2 + b^2 = 1 => b = sqrt(1 - a^2).
  Fp b;
  if (!fp.sqrt(fp.sub(fp.one(), fp.sqr(a)), b)) {
    throw std::invalid_argument("gt_deserialize: not a unitary element");
  }
  const bool want_odd = (in[0] == 3);
  if ((fp.to_int(b).w[0] & 1) != (want_odd ? 1u : 0u)) b = fp.neg(b);
  return {a, b};
}

}  // namespace apks
