#include "pairing/pairing.h"

#include <stdexcept>

namespace apks {

Pairing::Pairing(const TypeAParams& params)
    : curve_(params), fp2_(curve_.fp()) {
  gt_gen_ = pair(curve_.generator(), curve_.generator());
  if (fp2_.is_one(gt_gen_)) {
    throw std::logic_error("Pairing: degenerate generator pairing");
  }
}

JacPoint Pairing::dbl_step(const JacPoint& t, LineCoeffs& line) const {
  const FpField& fp = curve_.fp();
  if (t.is_infinity()) {
    line.one = true;
    return t;
  }
  const Fp Y2 = fp.sqr(t.Y);
  const Fp Z2 = fp.sqr(t.Z);
  const Fp X2 = fp.sqr(t.X);
  const Fp M = fp.add(fp.add(fp.dbl(X2), X2), fp.sqr(Z2));  // 3X^2 + Z^4
  const Fp S = fp.dbl(fp.dbl(fp.mul(t.X, Y2)));             // 4XY^2
  const Fp X3 = fp.sub(fp.sqr(M), fp.dbl(S));
  const Fp Y3 = fp.sub(fp.mul(M, fp.sub(S, X3)),
                       fp.dbl(fp.dbl(fp.dbl(fp.sqr(Y2)))));  // -8Y^4
  const Fp Z3 = fp.dbl(fp.mul(t.Y, t.Z));
  // Tangent at T, scaled by Z3*Z2 (subfield factor, killed by final exp):
  //   l = (M*Z2) * x + (M*X - 2Y^2) + (Z3*Z2) * y
  // evaluated at phi(Q) = (-x_Q, i y_Q) as (A x_Q + B) + (C y_Q) i.
  line.A = fp.mul(M, Z2);
  line.B = fp.sub(fp.mul(M, t.X), fp.dbl(Y2));
  line.C = fp.mul(Z3, Z2);
  line.one = false;
  return {X3, Y3, Z3};
}

JacPoint Pairing::add_step(const JacPoint& t, const AffinePoint& p,
                           LineCoeffs& line) const {
  const FpField& fp = curve_.fp();
  if (t.is_infinity()) {
    // Vertical line through P; contributes a subfield factor only.
    line.one = true;
    return {p.x, p.y, fp.one()};
  }
  const Fp Z2 = fp.sqr(t.Z);
  const Fp U = fp.mul(p.x, Z2);
  const Fp S = fp.mul(p.y, fp.mul(Z2, t.Z));
  const Fp H = fp.sub(U, t.X);
  const Fp R = fp.sub(S, t.Y);
  if (H.is_zero()) {
    if (R.is_zero()) {
      // T == P: fall back to the tangent line.
      return dbl_step(t, line);
    }
    // T == -P: the chord is vertical; T + P = infinity.
    line.one = true;
    return {fp.one(), fp.one(), fp.zero()};
  }
  const Fp H2 = fp.sqr(H);
  const Fp H3 = fp.mul(H2, H);
  const Fp XH2 = fp.mul(t.X, H2);
  const Fp X3 = fp.sub(fp.sub(fp.sqr(R), H3), fp.dbl(XH2));
  const Fp Y3 = fp.sub(fp.mul(R, fp.sub(XH2, X3)), fp.mul(t.Y, H3));
  const Fp Z3 = fp.mul(t.Z, H);
  // Chord through T and P, scaled by Z3:
  //   l = R * x + (R*x_P - Z3*y_P) ... evaluated at phi(Q):
  //   (R x_Q + R x_P - Z3 y_P) + (Z3 y_Q) i.
  line.A = R;
  line.B = fp.sub(fp.mul(R, p.x), fp.mul(Z3, p.y));
  line.C = Z3;
  line.one = false;
  return {X3, Y3, Z3};
}

Fp2El Pairing::eval_line(const LineCoeffs& line, const AffinePoint& q) const {
  const FpField& fp = curve_.fp();
  return {fp.add(fp.mul(line.A, q.x), line.B), fp.mul(line.C, q.y)};
}

GtEl Pairing::final_exp(const Fp2El& f) const {
  final_exp_count_.fetch_add(1, std::memory_order_relaxed);
  // z^{p-1} = conj(z) * z^{-1}, then raise to h = (p+1)/q.
  const Fp2El unitary = fp2_.mul(fp2_.conj(f), fp2_.inv(f));
  return fp2_.pow(unitary, curve_.params().h);
}

GtEl Pairing::pair(const AffinePoint& p, const AffinePoint& q) const {
  return final_exp(miller(p, q));
}

Fp2El Pairing::miller(const AffinePoint& p, const AffinePoint& q) const {
  miller_count_.fetch_add(1, std::memory_order_relaxed);
  if (p.inf || q.inf) return fp2_.one();
  Fp2El f = fp2_.one();
  JacPoint t = curve_.to_jac(p);
  const FqInt& order = curve_.params().q;
  const std::size_t bits = order.bit_length();
  LineCoeffs line;
  for (std::size_t i = bits - 1; i-- > 0;) {
    f = fp2_.sqr(f);
    t = dbl_step(t, line);
    if (!line.one) f = fp2_.mul(f, eval_line(line, q));
    if (order.bit(i)) {
      t = add_step(t, p, line);
      if (!line.one) f = fp2_.mul(f, eval_line(line, q));
    }
  }
  return f;
}

PreprocessedPairing Pairing::preprocess(const AffinePoint& p) const {
  std::vector<LineCoeffs> lines;
  if (p.inf) {
    return PreprocessedPairing(*this, std::move(lines));
  }
  const FqInt& order = curve_.params().q;
  const std::size_t bits = order.bit_length();
  lines.reserve(2 * bits);
  JacPoint t = curve_.to_jac(p);
  LineCoeffs line;
  for (std::size_t i = bits - 1; i-- > 0;) {
    t = dbl_step(t, line);
    lines.push_back(line);
    if (order.bit(i)) {
      t = add_step(t, p, line);
      lines.push_back(line);
    }
  }
  return PreprocessedPairing(*this, std::move(lines));
}

GtEl PreprocessedPairing::pair_with(const AffinePoint& q) const {
  return parent_->final_exp(miller_with(q));
}

Fp2El PreprocessedPairing::miller_with(const AffinePoint& q) const {
  parent_->miller_count_.fetch_add(1, std::memory_order_relaxed);
  const Fp2& fp2 = parent_->fp2_;
  if (lines_.empty() || q.inf) return fp2.one();
  const FqInt& order = parent_->curve_.params().q;
  const std::size_t bits = order.bit_length();
  Fp2El f = fp2.one();
  std::size_t idx = 0;
  for (std::size_t i = bits - 1; i-- > 0;) {
    f = fp2.sqr(f);
    const LineCoeffs& dbl = lines_[idx++];
    if (!dbl.one) f = fp2.mul(f, parent_->eval_line(dbl, q));
    if (order.bit(i)) {
      const LineCoeffs& add = lines_[idx++];
      if (!add.one) f = fp2.mul(f, parent_->eval_line(add, q));
    }
  }
  return f;
}

void Pairing::gt_serialize(const GtEl& a,
                           std::span<std::uint8_t, kGtCompressedSize> out) const {
  const FpField& fp = curve_.fp();
  const FpInt b_plain = fp.to_int(a.b);
  out[0] = static_cast<std::uint8_t>(2 + (b_plain.w[0] & 1));
  fp.to_int(a.a).to_bytes(std::span<std::uint8_t, 64>(out.data() + 1, 64));
}

GtEl Pairing::gt_deserialize(
    std::span<const std::uint8_t, kGtCompressedSize> in) const {
  if (in[0] != 2 && in[0] != 3) {
    throw std::invalid_argument("gt_deserialize: bad tag");
  }
  const FpField& fp = curve_.fp();
  const FpInt a_plain =
      FpInt::from_bytes(std::span<const std::uint8_t>(in.data() + 1, 64));
  if (a_plain >= fp.modulus()) {
    throw std::invalid_argument("gt_deserialize: value out of range");
  }
  const Fp a = fp.from_int(a_plain);
  // Unitary: a^2 + b^2 = 1 => b = sqrt(1 - a^2).
  Fp b;
  if (!fp.sqrt(fp.sub(fp.one(), fp.sqr(a)), b)) {
    throw std::invalid_argument("gt_deserialize: not a unitary element");
  }
  const bool want_odd = (in[0] == 3);
  if ((fp.to_int(b).w[0] & 1) != (want_odd ? 1u : 0u)) b = fp.neg(b);
  return {a, b};
}

}  // namespace apks
