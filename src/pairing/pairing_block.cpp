#include "pairing/pairing_block.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace apks {

BlockMultiPairing::BlockMultiPairing(const Pairing& pairing,
                                     std::vector<PreprocessedPairing> pres,
                                     SimdLevel level)
    : e_(&pairing),
      pres_(std::move(pres)),
      engine_(make_fp_lane_engine(pairing.fp(), level)) {
  std::size_t lines = 0;
  for (std::size_t s = 0; s < pres_.size(); ++s) {
    const std::size_t c = pres_[s].line_count();
    if (c == 0) continue;  // P at infinity: slot contributes 1
    if (lines == 0) {
      lines = c;
    } else if (lines != c) {
      // Cannot happen for traces of one Pairing (the structure depends only
      // on the group order), but fail loudly rather than walk out of bounds.
      throw std::logic_error("BlockMultiPairing: mismatched trace lengths");
    }
    active_.push_back(s);
  }
  lane_lines_.reserve(active_.size());
  for (const std::size_t s : active_) {
    std::vector<LaneLine> tab;
    tab.reserve(pres_[s].line_count());
    for (const NormLine& l : pres_[s].lines()) {
      LaneLine ll;
      ll.one = l.one;
      if (!l.one) {
        engine_->to_scalar(ll.a, l.A);
        engine_->to_scalar(ll.b, l.B);
      }
      tab.push_back(ll);
    }
    lane_lines_.push_back(std::move(tab));
  }
  engine_->to_scalar(one_s_, e_->fp().one());
  engine_->to_scalar(zero_s_, e_->fp().zero());
}

BlockMultiPairing::BlockMultiPairing(const Pairing& pairing,
                                     std::vector<PreprocessedPairing> pres)
    : BlockMultiPairing(pairing, std::move(pres), simd_level()) {}

void BlockMultiPairing::run(const AffinePoint* const* qvecs, std::size_t n,
                            GtEl* out) const {
  const std::size_t w = engine_->width();
  for (std::size_t start = 0; start < n; start += w) {
    const std::size_t chunk = std::min(w, n - start);
    bool exceptional = active_.empty();
    for (std::size_t r = 0; r < chunk && !exceptional; ++r) {
      for (const std::size_t s : active_) {
        if (qvecs[start + r][s].inf) {
          exceptional = true;
          break;
        }
      }
    }
    if (exceptional) {
      run_scalar(qvecs + start, chunk, out + start);
    } else {
      run_lanes(qvecs + start, chunk, out + start);
    }
  }
}

void BlockMultiPairing::run_scalar(const AffinePoint* const* qvecs,
                                   std::size_t n, GtEl* out) const {
  for (std::size_t r = 0; r < n; ++r) {
    out[r] = e_->final_exp(e_->multi_miller_pre(
        pres_, std::span<const AffinePoint>(qvecs[r], pres_.size())));
  }
}

void BlockMultiPairing::run_lanes(const AffinePoint* const* qvecs,
                                  std::size_t n, GtEl* out) const {
  const FpLaneEngine& eng = *engine_;
  const std::size_t w = eng.width();
  const std::size_t na = active_.size();
  assert(n >= 1 && n <= w);

  // Gather the record points SoA-style; tail lanes replicate the last
  // record so every lane carries valid (nonzero) field values throughout.
  std::vector<LaneFp> tx(w), ty(w);
  std::vector<FpLaneVec> qx(na), qy(na);
  for (std::size_t a = 0; a < na; ++a) {
    const std::size_t s = active_[a];
    for (std::size_t l = 0; l < w; ++l) {
      const AffinePoint& pt = qvecs[std::min(l, n - 1)][s];
      tx[l] = pt.x;
      ty[l] = pt.y;
    }
    eng.load(qx[a], tx.data(), w);
    eng.load(qy[a], ty.data(), w);
  }

  FpLaneVec t1, t2, t3, t4, t5, zero_v;
  eng.broadcast(zero_v, zero_s_);

  // Lane Fp2 primitives (Karatsuba mul, squaring as (a+b)(a-b) / 2ab) —
  // the exact operation sequence of the scalar Fp2 class, lane-parallel.
  const auto f2_mul = [&](FpLaneVec& ra, FpLaneVec& rb, const FpLaneVec& xa,
                          const FpLaneVec& xb, const FpLaneVec& ya,
                          const FpLaneVec& yb) {
    eng.mul(t1, xa, ya);  // ac
    eng.mul(t2, xb, yb);  // bd
    eng.add(t3, xa, xb);
    eng.add(t4, ya, yb);
    eng.mul(t3, t3, t4);  // cross
    eng.add(t4, t1, t2);  // ac + bd
    eng.sub(ra, t1, t2);
    eng.sub(rb, t3, t4);
  };
  const auto f2_sqr = [&](FpLaneVec& ra, FpLaneVec& rb, const FpLaneVec& xa,
                          const FpLaneVec& xb) {
    eng.add(t1, xa, xb);
    eng.sub(t2, xa, xb);
    eng.mul(t1, t1, t2);  // (a+b)(a-b)
    eng.mul(t2, xa, xb);  // ab
    ra = t1;
    eng.add(rb, t2, t2);
  };

  // Shared-accumulator Miller loop over the precompiled line tables.
  FpLaneVec fa, fb, va;
  eng.broadcast(fa, one_s_);
  fb = zero_v;
  const auto fold = [&](std::size_t a, const LaneLine& l) {
    // line value at phi(Q): (A * x_Q + B) + y_Q * i, one lane mul
    eng.broadcast(t5, l.a);
    eng.mul(va, t5, qx[a]);
    eng.broadcast(t5, l.b);
    eng.add(va, va, t5);
    f2_mul(fa, fb, fa, fb, va, qy[a]);
  };
  const FqInt& order = e_->curve().params().q;
  const std::size_t bits = order.bit_length();
  std::size_t idx = 0;
  for (std::size_t i = bits - 1; i-- > 0;) {
    f2_sqr(fa, fb, fa, fb);
    for (std::size_t a = 0; a < na; ++a) {
      const LaneLine& l = lane_lines_[a][idx];
      if (!l.one) fold(a, l);
    }
    ++idx;
    if (order.bit(i)) {
      for (std::size_t a = 0; a < na; ++a) {
        const LaneLine& l = lane_lines_[a][idx];
        if (!l.one) fold(a, l);
      }
      ++idx;
    }
  }

  // Blocked final exponentiation. z^{p-1} = conj(z)^2 * norm(z)^{-1}; the
  // W norm inversions collapse into one batch_inv.
  eng.mul(t1, fa, fa);
  eng.mul(t2, fb, fb);
  eng.add(t1, t1, t2);
  std::vector<LaneFp> norms(w);
  eng.store(norms.data(), t1, w);
  e_->fp().batch_inv(norms);
  FpLaneVec ninv;
  eng.load(ninv, norms.data(), w);
  eng.sub(fb, zero_v, fb);  // conj
  f2_sqr(fa, fb, fa, fb);
  eng.mul(fa, fa, ninv);
  eng.mul(fb, fb, ninv);

  // u^h via the pairing's fixed signed 4-bit digit schedule; u is unitary,
  // so negative digits multiply by the conjugate.
  FpLaneVec ta[9], tb[9];
  ta[1] = fa;
  tb[1] = fb;
  for (std::size_t k = 2; k <= 8; ++k) {
    f2_mul(ta[k], tb[k], ta[k - 1], tb[k - 1], fa, fb);
  }
  const std::span<const std::int8_t> hd = e_->h_digits();
  std::size_t top = hd.size();
  while (top > 0 && hd[top - 1] == 0) --top;
  FpLaneVec ua, ub;
  bool started = false;
  for (std::size_t i = top; i-- > 0;) {
    if (started) {
      f2_sqr(ua, ub, ua, ub);
      f2_sqr(ua, ub, ua, ub);
      f2_sqr(ua, ub, ua, ub);
      f2_sqr(ua, ub, ua, ub);
    }
    const int d = hd[i];
    if (d == 0) continue;
    const std::size_t k = static_cast<std::size_t>(d > 0 ? d : -d);
    if (d > 0) {
      if (started) {
        f2_mul(ua, ub, ua, ub, ta[k], tb[k]);
      } else {
        ua = ta[k];
        ub = tb[k];
      }
    } else {
      eng.sub(t5, zero_v, tb[k]);  // conj(table[k])
      if (started) {
        FpLaneVec ca = ta[k];
        FpLaneVec cb = t5;
        f2_mul(ua, ub, ua, ub, ca, cb);
      } else {
        ua = ta[k];
        ub = t5;
      }
    }
    started = true;
  }
  if (!started) {
    eng.broadcast(ua, one_s_);
    ub = zero_v;
  }

  std::vector<LaneFp> ra(w), rb(w);
  eng.store(ra.data(), ua, w);
  eng.store(rb.data(), ub, w);
  for (std::size_t r = 0; r < n; ++r) out[r] = GtEl{ra[r], rb[r]};

  // Engine-invariant cost attribution: dim miller probes + one multi_miller
  // + one final_exp per record, exactly as the scalar path counts.
  e_->note_block_ops(n * pres_.size(), n, n);
}

}  // namespace apks
