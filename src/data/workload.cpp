#include "data/workload.h"

#include <algorithm>
#include <stdexcept>

namespace apks {

std::vector<std::string> sample_values(
    const std::vector<std::string>& universe, std::size_t count, Rng& rng) {
  if (count > universe.size()) {
    throw std::invalid_argument("sample_values: count exceeds universe");
  }
  std::vector<std::string> pool = universe;
  // Partial Fisher-Yates.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng.next_below(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  return pool;
}

Query nursery_worst_case_query(std::size_t d, Rng& rng) {
  Query q;
  for (const auto& attr : nursery_attributes()) {
    const std::size_t count = std::min(d, attr.values.size());
    q.terms.push_back(QueryTerm::subset(sample_values(attr.values, count,
                                                      rng)));
  }
  return q;
}

Query nursery_expanded_worst_case_query(std::size_t factor, std::size_t d,
                                        Rng& rng) {
  Query q;
  for (const auto& attr : nursery_attributes()) {
    for (std::size_t k = 0; k < factor; ++k) {
      const std::size_t count = std::min(d, attr.values.size());
      q.terms.push_back(
          QueryTerm::subset(sample_values(attr.values, count, rng)));
    }
  }
  return q;
}

Query nursery_expanded_realistic_query(std::size_t factor, std::size_t d,
                                       Rng& rng) {
  Query q;
  for (const auto& attr : nursery_attributes()) {
    for (std::size_t k = 0; k < factor; ++k) {
      if (k == 0) {
        const std::size_t count = std::min(d, attr.values.size());
        q.terms.push_back(
            QueryTerm::subset(sample_values(attr.values, count, rng)));
      } else {
        q.terms.push_back(QueryTerm::any());
      }
    }
  }
  return q;
}

Query nursery_point_query(const PlainIndex& row) {
  Query q;
  for (const auto& value : row.values) {
    q.terms.push_back(QueryTerm::equals(value));
  }
  return q;
}

}  // namespace apks
