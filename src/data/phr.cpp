#include "data/phr.h"

#include "core/time_attr.h"

namespace apks {

namespace {

template <typename T>
const T& pick(const std::vector<T>& v, Rng& rng) {
  return v[rng.next_below(v.size())];
}

}  // namespace

std::shared_ptr<const AttributeHierarchy> phr_age_tree() {
  static const auto tree = std::make_shared<AttributeHierarchy>(
      AttributeHierarchy::numeric("age", 0, 100, 3, 3));
  return tree;
}

std::shared_ptr<const AttributeHierarchy> phr_region_tree() {
  static const auto tree = [] {
    AttributeHierarchy::Spec spec{
        "MA",
        {{"East MA",
          {{"Boston", {}}, {"Quincy", {}}, {"Cambridge", {}}}},
         {"Central MA",
          {{"Worcester", {}}, {"Framingham", {}}, {"Leominster", {}}}},
         {"West MA",
          {{"Springfield", {}}, {"Pittsfield", {}}, {"Holyoke", {}}}}}};
    return std::make_shared<AttributeHierarchy>(
        AttributeHierarchy::semantic("region", spec));
  }();
  return tree;
}

std::shared_ptr<const AttributeHierarchy> phr_illness_tree() {
  static const auto tree = [] {
    AttributeHierarchy::Spec spec{
        "any illness",
        {{"infectious", {{"flu", {}}, {"measles", {}}, {"covid", {}}}},
         {"chronic", {{"diabetes", {}}, {"hypertension", {}}, {"asthma", {}}}},
         {"oncological", {{"lung cancer", {}}, {"leukemia", {}},
                          {"melanoma", {}}}}}};
    return std::make_shared<AttributeHierarchy>(
        AttributeHierarchy::semantic("illness", spec));
  }();
  return tree;
}

Schema phr_schema(const PhrSchemaOptions& options) {
  std::vector<Dimension> dims{
      {"age", phr_age_tree(), options.max_or},
      {"sex", nullptr, 1},
      {"region", phr_region_tree(), options.max_or},
      {"illness", phr_illness_tree(), options.max_or},
      {"provider", nullptr, 1},
  };
  if (options.with_time) {
    dims.push_back(make_time_dimension(options.max_or));
  }
  return Schema(std::move(dims));
}

std::vector<PlainIndex> generate_phr_rows(std::size_t count, Rng& rng,
                                          const PhrSchemaOptions& options) {
  static const std::vector<std::string> sexes{"Male", "Female"};
  static const std::vector<std::string> providers{
      "Hospital A", "Hospital B", "Hospital C", "Clinic D"};
  const auto cities = phr_region_tree()->labels_at_level(3);
  const auto illnesses = phr_illness_tree()->labels_at_level(3);

  std::vector<PlainIndex> rows;
  rows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    PlainIndex row;
    row.values.push_back(std::to_string(rng.next_below(101)));  // age
    row.values.push_back(pick(sexes, rng));
    row.values.push_back(pick(cities, rng));
    row.values.push_back(pick(illnesses, rng));
    row.values.push_back(pick(providers, rng));
    if (options.with_time) {
      const unsigned year = 2008 + static_cast<unsigned>(rng.next_below(4));
      const unsigned month = 1 + static_cast<unsigned>(rng.next_below(12));
      row.values.push_back(time_value(year, month));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace apks
