// Synthetic Personal Health Record corpus — the paper's motivating
// application. Provides the PHR schema of the running examples (age and
// region hierarchical, the rest flat, optional time dimension for
// revocation) and a seeded patient generator.
#pragma once

#include <vector>

#include "common/rng.h"
#include "core/schema.h"

namespace apks {

struct PhrSchemaOptions {
  std::size_t max_or = 2;      // d for every dimension
  bool with_time = false;      // append the revocation time dimension
};

// Dimensions: age (numeric hierarchy 0-100), sex, region (semantic MA
// tree), illness (semantic tree), provider [, time].
[[nodiscard]] Schema phr_schema(const PhrSchemaOptions& options = {});

// The region and illness trees used by the schema (exposed so examples and
// tests can build semantic queries against known node labels).
[[nodiscard]] std::shared_ptr<const AttributeHierarchy> phr_region_tree();
[[nodiscard]] std::shared_ptr<const AttributeHierarchy> phr_illness_tree();
[[nodiscard]] std::shared_ptr<const AttributeHierarchy> phr_age_tree();

// Generates `count` random patient rows consistent with the schema.
[[nodiscard]] std::vector<PlainIndex> generate_phr_rows(
    std::size_t count, Rng& rng, const PhrSchemaOptions& options = {});

}  // namespace apks
