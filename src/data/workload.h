// Query workload generators for the benchmark harness.
//
// Reproduces the two experiment regimes of the paper's Section VII:
//  - worst case: every dimension constrained, exactly d OR keywords drawn
//    from the dimension's universe (no zero entries in the predicate);
//  - realistic case: at most `active` dimensions constrained, the rest
//    "don't care" (zero predicate blocks make capability generation and
//    delegation cheaper).
#pragma once

#include "common/rng.h"
#include "core/schema.h"
#include "data/nursery.h"

namespace apks {

// Draws `count` distinct values from a dimension's universe.
[[nodiscard]] std::vector<std::string> sample_values(
    const std::vector<std::string>& universe, std::size_t count, Rng& rng);

// Worst-case query over the flat nursery schema: every dimension gets a
// subset term with exactly min(d, |universe|) keywords.
[[nodiscard]] Query nursery_worst_case_query(std::size_t d, Rng& rng);

// Worst-case query over the duplicated-field schema of fig. 8(b)/(c).
[[nodiscard]] Query nursery_expanded_worst_case_query(std::size_t factor,
                                                      std::size_t d, Rng& rng);

// Realistic query over the duplicated-field schema: only the first
// duplicate of each original attribute is constrained (<= 9 active fields
// regardless of the expansion factor) — the paper's second experiment set.
[[nodiscard]] Query nursery_expanded_realistic_query(std::size_t factor,
                                                     std::size_t d, Rng& rng);

// A query matching one specific nursery row exactly (for hit-rate control).
[[nodiscard]] Query nursery_point_query(const PlainIndex& row);

}  // namespace apks
