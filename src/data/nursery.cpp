#include "data/nursery.h"

#include <stdexcept>

namespace apks {

const std::vector<NurseryAttribute>& nursery_attributes() {
  static const std::vector<NurseryAttribute> attrs = {
      {"parents", {"usual", "pretentious", "great_pret"}},
      {"has_nurs",
       {"proper", "less_proper", "improper", "critical", "very_crit"}},
      {"form", {"complete", "completed", "incomplete", "foster"}},
      {"children", {"1", "2", "3", "more"}},
      {"housing", {"convenient", "less_conv", "critical"}},
      {"finance", {"convenient", "inconv"}},
      {"social", {"nonprob", "slightly_prob", "problematic"}},
      {"health", {"recommended", "priority", "not_recom"}},
      {"class",
       {"not_recom", "recommend", "very_recom", "priority", "spec_prior"}},
  };
  return attrs;
}

std::string nursery_class(const std::array<std::size_t, 8>& v) {
  // Documented approximation of the DEX rules (see DESIGN.md):
  // health == not_recom dominates everything (exactly as in the original,
  // where it accounts for a third of the dataset); otherwise a monotone
  // unsuitability score buckets the remaining rows.
  const std::size_t health = v[7];
  if (health == 2) return "not_recom";  // not_recom
  std::size_t score = 0;
  score += v[0];          // parents: usual(0) .. great_pret(2)
  score += v[1];          // has_nurs: proper(0) .. very_crit(4)
  score += v[2];          // form: complete(0) .. foster(3)
  score += (v[3] >= 2) ? 1u : 0u;  // many children
  score += v[4];          // housing
  score += v[5];          // finance: inconv(1)
  score += v[6];          // social
  score += health;        // priority(1) adds pressure
  if (score == 0) return "recommend";
  if (score <= 2) return "very_recom";
  if (score <= 5) return "priority";
  return "spec_prior";
}

std::vector<PlainIndex> nursery_rows() {
  const auto& attrs = nursery_attributes();
  std::vector<PlainIndex> rows;
  rows.reserve(12960);
  std::array<std::size_t, 8> idx{};
  for (;;) {
    PlainIndex row;
    row.values.reserve(9);
    for (std::size_t a = 0; a < 8; ++a) {
      row.values.push_back(attrs[a].values[idx[a]]);
    }
    row.values.push_back(nursery_class(idx));
    rows.push_back(std::move(row));
    // Odometer increment over the 8 input attributes.
    std::size_t a = 8;
    while (a-- > 0) {
      if (++idx[a] < attrs[a].values.size()) break;
      idx[a] = 0;
      if (a == 0) return rows;
    }
  }
}

Schema nursery_schema(std::size_t d) {
  std::vector<Dimension> dims;
  for (const auto& attr : nursery_attributes()) {
    dims.push_back({attr.name, nullptr, d});
  }
  return Schema(std::move(dims));
}

Schema nursery_expanded_schema(std::size_t factor, std::size_t d) {
  if (factor == 0) throw std::invalid_argument("expanded schema: factor == 0");
  std::vector<Dimension> dims;
  for (const auto& attr : nursery_attributes()) {
    for (std::size_t k = 0; k < factor; ++k) {
      dims.push_back({attr.name + "@" + std::to_string(k), nullptr, d});
    }
  }
  return Schema(std::move(dims));
}

PlainIndex expand_nursery_row(const PlainIndex& row, std::size_t factor) {
  PlainIndex out;
  out.values.reserve(row.values.size() * factor);
  for (const auto& v : row.values) {
    for (std::size_t k = 0; k < factor; ++k) out.values.push_back(v);
  }
  return out;
}

}  // namespace apks
