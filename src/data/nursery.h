// The UCI Nursery dataset, regenerated.
//
// Nursery is the *complete Cartesian product* of its eight categorical
// attribute domains — 3*5*4*4*3*2*3*3 = 12,960 rows — plus a ninth "class"
// column originally produced by the DEX expert model. We regenerate the
// product exactly and re-derive the class with a documented approximation
// of the published rules (health = not_recom forces class not_recom; the
// rest is a monotone score). Row count, dimensionality and per-attribute
// keyword-universe sizes — the only properties the paper's benchmarks
// depend on — are identical to the original.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/schema.h"

namespace apks {

struct NurseryAttribute {
  std::string name;
  std::vector<std::string> values;
};

// The eight input attributes plus the derived class attribute (index 8).
[[nodiscard]] const std::vector<NurseryAttribute>& nursery_attributes();

// All 12,960 instances, in lexicographic order of the attribute domains.
// Each row has 9 values aligned with nursery_attributes().
[[nodiscard]] std::vector<PlainIndex> nursery_rows();

// The class label our approximation assigns to an 8-attribute combination.
[[nodiscard]] std::string nursery_class(
    const std::array<std::size_t, 8>& value_indexes);

// Flat schema over all 9 nursery columns with OR budget d per dimension —
// the configuration of the paper's experiments (m' = 9, d = 1..5).
[[nodiscard]] Schema nursery_schema(std::size_t d);

// The paper's fig. 8(b)/(c) trick: duplicate each original field `factor`
// times "to mimic the expansions of hierarchical attributes", giving
// m' = 9 * factor converted fields. Returns the schema and a converter that
// expands a 9-value row into the duplicated row.
[[nodiscard]] Schema nursery_expanded_schema(std::size_t factor,
                                             std::size_t d);
[[nodiscard]] PlainIndex expand_nursery_row(const PlainIndex& row,
                                            std::size_t factor);

}  // namespace apks
