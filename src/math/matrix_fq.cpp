#include "math/matrix_fq.h"

#include <cassert>
#include <stdexcept>

namespace apks {

MatrixFq MatrixFq::identity(std::size_t n, const FqField& fq) {
  MatrixFq m(n, n, fq);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = fq.one();
  return m;
}

MatrixFq MatrixFq::random(std::size_t rows, std::size_t cols,
                          const FqField& fq, Rng& rng) {
  MatrixFq m(rows, cols, fq);
  for (std::size_t i = 0; i < rows * cols; ++i) m.data_[i] = fq.random(rng);
  return m;
}

MatrixFq MatrixFq::random_invertible(std::size_t n, const FqField& fq,
                                     Rng& rng) {
  for (;;) {
    MatrixFq m = random(n, n, fq, rng);
    MatrixFq inv;
    if (m.inverse(fq, inv)) return m;
  }
}

MatrixFq MatrixFq::transpose() const {
  MatrixFq t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.data_.resize(data_.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t.at(c, r) = at(r, c);
    }
  }
  return t;
}

MatrixFq MatrixFq::mul(const MatrixFq& other, const FqField& fq) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("MatrixFq::mul: dimension mismatch");
  }
  MatrixFq r(rows_, other.cols_, fq);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const Fq aik = at(i, k);
      if (aik.is_zero()) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        r.at(i, j) = fq.add(r.at(i, j), fq.mul(aik, other.at(k, j)));
      }
    }
  }
  return r;
}

bool MatrixFq::inverse(const FqField& fq, MatrixFq& out) const {
  if (rows_ != cols_) {
    throw std::invalid_argument("MatrixFq::inverse: matrix not square");
  }
  const std::size_t n = rows_;
  MatrixFq a = *this;
  MatrixFq inv = identity(n, fq);
  for (std::size_t col = 0; col < n; ++col) {
    // Find pivot.
    std::size_t pivot = col;
    while (pivot < n && a.at(pivot, col).is_zero()) ++pivot;
    if (pivot == n) return false;
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a.at(pivot, j), a.at(col, j));
        std::swap(inv.at(pivot, j), inv.at(col, j));
      }
    }
    // Scale pivot row to 1.
    const Fq pinv = fq.inv(a.at(col, col));
    for (std::size_t j = 0; j < n; ++j) {
      a.at(col, j) = fq.mul(a.at(col, j), pinv);
      inv.at(col, j) = fq.mul(inv.at(col, j), pinv);
    }
    // Eliminate all other rows.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const Fq f = a.at(r, col);
      if (f.is_zero()) continue;
      for (std::size_t j = 0; j < n; ++j) {
        a.at(r, j) = fq.sub(a.at(r, j), fq.mul(f, a.at(col, j)));
        inv.at(r, j) = fq.sub(inv.at(r, j), fq.mul(f, inv.at(col, j)));
      }
    }
  }
  out = std::move(inv);
  return true;
}

std::vector<Fq> MatrixFq::apply(const std::vector<Fq>& x,
                                const FqField& fq) const {
  assert(x.size() == cols_);
  std::vector<Fq> y(rows_, fq.zero());
  for (std::size_t r = 0; r < rows_; ++r) {
    Fq acc = fq.zero();
    for (std::size_t c = 0; c < cols_; ++c) {
      acc = fq.add(acc, fq.mul(at(r, c), x[c]));
    }
    y[r] = acc;
  }
  return y;
}

}  // namespace apks
