// Lane-parallel Montgomery arithmetic for the 512-bit pairing base field.
//
// An FpLaneEngine runs W independent F_p values ("lanes") through one
// arithmetic operation at a time, SoA-style, so the pairing scan kernel can
// drive W records of a search block through the shared Miller loop with one
// instruction stream. Three engines implement the interface:
//
//   scalar  — portable reference: per-lane limb::mont_mul (W = 8)
//   avx2    — 4-wide CIOS over 32-bit limbs (vpmuludq), R = 2^512 native
//   avx512  — 8-wide CIOS over 52-bit limbs (vpmadd52lo/hi IFMA). The IFMA
//             Montgomery radix is R' = 2^520, so lane values live in a
//             shifted domain w = v * 2^8 mod p; load/store apply the shift
//             with one lane multiplication by 2^528 mod p / 2^512 mod p.
//
// Contract (what makes cross-engine bit-identity hold): every operation
// takes canonical Montgomery residues (< p) and produces canonical
// residues. There is no lazy reduction across the engine boundary, so a
// value stored by one engine equals — limb for limb — the value the scalar
// path computes, at every step, not just at the end.
#pragma once

#include <cstdint>
#include <memory>

#include "common/cpu_features.h"
#include "math/prime_field.h"

namespace apks {

inline constexpr std::size_t kLaneFpLimbs = 8;  // 512-bit F_p
using LaneFp = BigInt<kLaneFpLimbs>;
using LaneField = PrimeField<kLaneFpLimbs>;

// Engine-opaque SoA block of W field elements. Sized for the widest layout
// (avx512: 10 radix-52 limbs x 8 lanes); narrower engines use a prefix.
struct alignas(64) FpLaneVec {
  std::uint64_t w[80];
};

// One lane's worth of an engine-domain value: a field element already
// converted to the engine's internal radix/domain, ready to broadcast into
// all lanes with bit operations only. Prepared-query line tables store
// these so the per-block splat costs no multiplications.
struct FpLaneScalar {
  std::uint64_t w[10];
};

class FpLaneEngine {
 public:
  virtual ~FpLaneEngine() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
  [[nodiscard]] virtual SimdLevel level() const noexcept = 0;
  // Lanes processed per operation. Callers may load fewer; unloaded lanes
  // hold zero and stay zero.
  [[nodiscard]] virtual std::size_t width() const noexcept = 0;

  // Load n canonical Montgomery-form values into lanes 0..n-1 (n <= width);
  // remaining lanes are zeroed.
  virtual void load(FpLaneVec& out, const LaneFp* vals,
                    std::size_t n) const = 0;
  // Write lanes 0..n-1 back as canonical Montgomery-form values.
  virtual void store(LaneFp* out, const FpLaneVec& in, std::size_t n) const = 0;

  // One-time conversion of a value into the engine domain (may cost a
  // multiplication) + the per-use broadcast (bit operations only).
  virtual void to_scalar(FpLaneScalar& out, const LaneFp& v) const = 0;
  virtual void broadcast(FpLaneVec& out, const FpLaneScalar& s) const = 0;

  // Lanewise field operations; canonical in, canonical out. r may alias
  // a or b.
  virtual void mul(FpLaneVec& r, const FpLaneVec& a,
                   const FpLaneVec& b) const = 0;
  virtual void add(FpLaneVec& r, const FpLaneVec& a,
                   const FpLaneVec& b) const = 0;
  virtual void sub(FpLaneVec& r, const FpLaneVec& a,
                   const FpLaneVec& b) const = 0;
};

// Engine for `level`, falling back to the best one the build and CPU
// support. Never returns null.
[[nodiscard]] std::unique_ptr<FpLaneEngine> make_fp_lane_engine(
    const LaneField& field, SimdLevel level);
// Engine for the process-wide simd_level() (CPU detection + env override).
[[nodiscard]] std::unique_ptr<FpLaneEngine> make_fp_lane_engine(
    const LaneField& field);

namespace detail {
// Per-arch factories; return null when the binary was built without the
// instruction-set support (the dispatcher then falls back).
[[nodiscard]] std::unique_ptr<FpLaneEngine> make_fp_lanes_avx2(
    const LaneField& field);
[[nodiscard]] std::unique_ptr<FpLaneEngine> make_fp_lanes_avx512(
    const LaneField& field);
}  // namespace detail

}  // namespace apks
