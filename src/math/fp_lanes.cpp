#include "math/fp_lanes.h"

#include <cstring>

namespace apks {

namespace {

// Reference engine: 8 lanes, lane-major layout (lane l at w[8l..8l+8)),
// each operation a per-lane call into the scalar field. This is the
// bit-identity anchor the SIMD engines are tested against.
class ScalarLanes final : public FpLaneEngine {
 public:
  explicit ScalarLanes(const LaneField& field) : fp_(&field) {}

  [[nodiscard]] const char* name() const noexcept override { return "scalar"; }
  [[nodiscard]] SimdLevel level() const noexcept override {
    return SimdLevel::kScalar;
  }
  [[nodiscard]] std::size_t width() const noexcept override { return 8; }

  void load(FpLaneVec& out, const LaneFp* vals,
            std::size_t n) const override {
    std::memset(out.w, 0, sizeof(out.w));
    for (std::size_t l = 0; l < n; ++l) {
      std::memcpy(out.w + 8 * l, vals[l].w.data(), sizeof(LaneFp));
    }
  }

  void store(LaneFp* out, const FpLaneVec& in, std::size_t n) const override {
    for (std::size_t l = 0; l < n; ++l) {
      std::memcpy(out[l].w.data(), in.w + 8 * l, sizeof(LaneFp));
    }
  }

  void to_scalar(FpLaneScalar& out, const LaneFp& v) const override {
    std::memset(out.w, 0, sizeof(out.w));
    std::memcpy(out.w, v.w.data(), sizeof(LaneFp));
  }

  void broadcast(FpLaneVec& out, const FpLaneScalar& s) const override {
    for (std::size_t l = 0; l < 8; ++l) {
      std::memcpy(out.w + 8 * l, s.w, sizeof(LaneFp));
    }
  }

  void mul(FpLaneVec& r, const FpLaneVec& a,
           const FpLaneVec& b) const override {
    for (std::size_t l = 0; l < 8; ++l) {
      LaneFp x, y;
      std::memcpy(x.w.data(), a.w + 8 * l, sizeof(LaneFp));
      std::memcpy(y.w.data(), b.w + 8 * l, sizeof(LaneFp));
      const LaneFp z = fp_->mul(x, y);
      std::memcpy(r.w + 8 * l, z.w.data(), sizeof(LaneFp));
    }
  }

  void add(FpLaneVec& r, const FpLaneVec& a,
           const FpLaneVec& b) const override {
    for (std::size_t l = 0; l < 8; ++l) {
      LaneFp x, y;
      std::memcpy(x.w.data(), a.w + 8 * l, sizeof(LaneFp));
      std::memcpy(y.w.data(), b.w + 8 * l, sizeof(LaneFp));
      const LaneFp z = fp_->add(x, y);
      std::memcpy(r.w + 8 * l, z.w.data(), sizeof(LaneFp));
    }
  }

  void sub(FpLaneVec& r, const FpLaneVec& a,
           const FpLaneVec& b) const override {
    for (std::size_t l = 0; l < 8; ++l) {
      LaneFp x, y;
      std::memcpy(x.w.data(), a.w + 8 * l, sizeof(LaneFp));
      std::memcpy(y.w.data(), b.w + 8 * l, sizeof(LaneFp));
      const LaneFp z = fp_->sub(x, y);
      std::memcpy(r.w + 8 * l, z.w.data(), sizeof(LaneFp));
    }
  }

 private:
  const LaneField* fp_;
};

}  // namespace

std::unique_ptr<FpLaneEngine> make_fp_lane_engine(const LaneField& field,
                                                  SimdLevel level) {
  if (level >= SimdLevel::kAvx512) {
    if (auto e = detail::make_fp_lanes_avx512(field)) return e;
  }
  if (level >= SimdLevel::kAvx2) {
    if (auto e = detail::make_fp_lanes_avx2(field)) return e;
  }
  return std::make_unique<ScalarLanes>(field);
}

std::unique_ptr<FpLaneEngine> make_fp_lane_engine(const LaneField& field) {
  return make_fp_lane_engine(field, simd_level());
}

}  // namespace apks
