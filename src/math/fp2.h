// Quadratic extension F_p^2 = F_p[i] / (i^2 + 1), valid for p = 3 (mod 4).
//
// Hosts the pairing target group G_T (the order-q subgroup of F_p^2*).
#pragma once

#include "math/prime_field.h"

namespace apks {

inline constexpr std::size_t kFpLimbs = 8;
using FpInt = BigInt<kFpLimbs>;
using FpField = PrimeField<kFpLimbs>;
using Fp = FpInt;  // Montgomery-form element of F_p

struct Fp2El {
  Fp a;  // real part
  Fp b;  // coefficient of i

  friend bool operator==(const Fp2El&, const Fp2El&) = default;
};

class Fp2 {
 public:
  explicit Fp2(const FpField& fp) : fp_(&fp) {}

  [[nodiscard]] const FpField& base() const noexcept { return *fp_; }

  [[nodiscard]] Fp2El zero() const { return {fp_->zero(), fp_->zero()}; }
  [[nodiscard]] Fp2El one() const { return {fp_->one(), fp_->zero()}; }
  [[nodiscard]] Fp2El from_base(const Fp& a) const { return {a, fp_->zero()}; }

  [[nodiscard]] bool is_zero(const Fp2El& x) const {
    return x.a.is_zero() && x.b.is_zero();
  }
  [[nodiscard]] bool is_one(const Fp2El& x) const {
    return x.a == fp_->one() && x.b.is_zero();
  }

  [[nodiscard]] Fp2El add(const Fp2El& x, const Fp2El& y) const {
    return {fp_->add(x.a, y.a), fp_->add(x.b, y.b)};
  }
  [[nodiscard]] Fp2El sub(const Fp2El& x, const Fp2El& y) const {
    return {fp_->sub(x.a, y.a), fp_->sub(x.b, y.b)};
  }
  [[nodiscard]] Fp2El neg(const Fp2El& x) const {
    return {fp_->neg(x.a), fp_->neg(x.b)};
  }

  // Karatsuba: (a+bi)(c+di) = (ac - bd) + ((a+b)(c+d) - ac - bd) i.
  [[nodiscard]] Fp2El mul(const Fp2El& x, const Fp2El& y) const {
    const Fp ac = fp_->mul(x.a, y.a);
    const Fp bd = fp_->mul(x.b, y.b);
    const Fp cross = fp_->mul(fp_->add(x.a, x.b), fp_->add(y.a, y.b));
    return {fp_->sub(ac, bd), fp_->sub(cross, fp_->add(ac, bd))};
  }

  // (a+bi)^2 = (a+b)(a-b) + 2ab i.
  [[nodiscard]] Fp2El sqr(const Fp2El& x) const {
    const Fp t = fp_->mul(fp_->add(x.a, x.b), fp_->sub(x.a, x.b));
    const Fp ab = fp_->mul(x.a, x.b);
    return {t, fp_->add(ab, ab)};
  }

  [[nodiscard]] Fp2El conj(const Fp2El& x) const {
    return {x.a, fp_->neg(x.b)};
  }

  // Norm a^2 + b^2 (an F_p element).
  [[nodiscard]] Fp norm(const Fp2El& x) const {
    return fp_->add(fp_->sqr(x.a), fp_->sqr(x.b));
  }

  [[nodiscard]] Fp2El inv(const Fp2El& x) const {
    const Fp n_inv = fp_->inv(norm(x));
    return {fp_->mul(x.a, n_inv), fp_->neg(fp_->mul(x.b, n_inv))};
  }

  // x^e with plain (non-Montgomery) exponent; 4-bit fixed window.
  template <std::size_t EL>
  [[nodiscard]] Fp2El pow(const Fp2El& x, const BigInt<EL>& e) const {
    const std::size_t bits = e.bit_length();
    if (bits == 0) return one();
    Fp2El table[16];
    table[0] = one();
    table[1] = x;
    for (std::size_t i = 2; i < 16; ++i) table[i] = mul(table[i - 1], x);
    Fp2El acc = one();
    bool started = false;
    std::size_t i = (bits + 3) / 4;
    while (i-- > 0) {
      std::size_t nib = 0;
      for (std::size_t j = 0; j < 4; ++j) {
        const std::size_t b = 4 * i + (3 - j);
        nib = (nib << 1) | ((b < 64 * EL && e.bit(b)) ? 1u : 0u);
      }
      if (started) {
        acc = sqr(sqr(sqr(sqr(acc))));
        if (nib != 0) acc = mul(acc, table[nib]);
      } else if (nib != 0) {
        acc = table[nib];
        started = true;
      }
    }
    return acc;
  }

  // Frobenius endomorphism x -> x^p. For p = 3 (mod 4) this is conjugation.
  [[nodiscard]] Fp2El frobenius(const Fp2El& x) const { return conj(x); }

 private:
  const FpField* fp_;
};

}  // namespace apks
