// 8-wide AVX-512 IFMA lane engine: CIOS Montgomery multiplication over
// ten 52-bit limbs (R' = 2^520) with vpmadd52lo/hi accumulating eight
// independent products per instruction.
//
// Domain: because R' = 2^520 differs from the scalar R = 2^512, lane
// values are kept shifted by 2^8: w = v * 2^8 mod p. mont52(x, y) computes
// x*y*2^-520, so mont52(w1, w2) = (v1*v2*2^-512) * 2^8 — the lane domain
// is closed under multiplication and matches the scalar engine after the
// store-side unshift. Loads multiply by 2^528 mod p, stores by 2^512 mod p.
//
// Every operation ends with a full carry normalization and a lanewise
// conditional subtract, so lane values are always the canonical radix-52
// form of a residue < p — which is what makes store() bit-identical to the
// scalar engine at every boundary.
#include "math/fp_lanes.h"

#if defined(__AVX512F__) && defined(__AVX512IFMA__) && defined(__AVX512DQ__)

#include <immintrin.h>

#include <cstring>

namespace apks::detail {

namespace {

constexpr int kL52 = 10;  // 52-bit limbs covering 520 >= 512 bits
constexpr std::uint64_t kMask52 = (std::uint64_t{1} << 52) - 1;

// 512-bit (8x64) canonical value -> ten 52-bit limbs.
void to_radix52(std::uint64_t out[kL52], const LaneFp& v) {
  for (int k = 0; k < kL52; ++k) {
    const int bit = 52 * k;
    const int word = bit / 64;
    const int off = bit % 64;
    std::uint64_t limb = v.w[static_cast<std::size_t>(word)] >>
                         static_cast<unsigned>(off);
    if (off > 12 && word + 1 < 8) {
      limb |= v.w[static_cast<std::size_t>(word + 1)]
              << static_cast<unsigned>(64 - off);
    }
    out[k] = limb & kMask52;
  }
}

// Ten 52-bit limbs (canonical, < 2^512) -> 8x64.
void from_radix52(LaneFp& out, const std::uint64_t in[kL52]) {
  out = LaneFp::zero();
  for (int k = 0; k < kL52; ++k) {
    const int bit = 52 * k;
    const int word = bit / 64;
    const int off = bit % 64;
    out.w[static_cast<std::size_t>(word)] |= in[k] << static_cast<unsigned>(
        off);
    if (off > 12 && word + 1 < 8) {
      out.w[static_cast<std::size_t>(word + 1)] |=
          in[k] >> static_cast<unsigned>(64 - off);
    }
  }
}

class Avx512Lanes final : public FpLaneEngine {
 public:
  explicit Avx512Lanes(const LaneField& field) {
    const LaneFp& p = field.modulus();
    to_radix52(m52_, p);
    // -p^{-1} mod 2^52: the 64-bit Montgomery constant truncated (x*p = -1
    // mod 2^64 implies the same congruence mod 2^52).
    n0inv52_ = limb::mont_n0inv(p.w[0]) & kMask52;
    // Domain-shift multipliers (plain residues, converted to radix 52).
    BigInt<2 * kLaneFpLimbs> t;
    t.set_bit(528);
    to_radix52(to_lane52_, mod(t, p));
    to_radix52(from_lane52_, field.one());  // one() is R = 2^512 mod p
    for (int k = 0; k < kL52; ++k) {
      vm_[k] = _mm512_set1_epi64(static_cast<long long>(m52_[k]));
      vto_[k] = _mm512_set1_epi64(static_cast<long long>(to_lane52_[k]));
      vfrom_[k] = _mm512_set1_epi64(static_cast<long long>(from_lane52_[k]));
    }
    vn0_ = _mm512_set1_epi64(static_cast<long long>(n0inv52_));
    vmask_ = _mm512_set1_epi64(static_cast<long long>(kMask52));
  }

  [[nodiscard]] const char* name() const noexcept override { return "avx512"; }
  [[nodiscard]] SimdLevel level() const noexcept override {
    return SimdLevel::kAvx512;
  }
  [[nodiscard]] std::size_t width() const noexcept override { return 8; }

  void load(FpLaneVec& out, const LaneFp* vals,
            std::size_t n) const override {
    // Pack lanes in the native (unshifted) radix-52 form, then one lane
    // multiplication by 2^528 mod p applies the 2^8 domain shift.
    alignas(64) std::uint64_t packed[kL52][8] = {};
    std::uint64_t limbs[kL52];
    for (std::size_t l = 0; l < n; ++l) {
      to_radix52(limbs, vals[l]);
      for (int k = 0; k < kL52; ++k) packed[k][l] = limbs[k];
    }
    __m512i a[kL52];
    for (int k = 0; k < kL52; ++k) {
      a[k] = _mm512_load_si512(packed[k]);
    }
    __m512i* o = vec(out);
    mont_mul(o, a, vto_);
  }

  void store(LaneFp* out, const FpLaneVec& in, std::size_t n) const override {
    __m512i r[kL52];
    mont_mul(r, cvec(in), vfrom_);
    alignas(64) std::uint64_t packed[kL52][8];
    for (int k = 0; k < kL52; ++k) {
      _mm512_store_si512(packed[k], r[k]);
    }
    std::uint64_t limbs[kL52];
    for (std::size_t l = 0; l < n; ++l) {
      for (int k = 0; k < kL52; ++k) limbs[k] = packed[k][l];
      from_radix52(out[l], limbs);
    }
  }

  void to_scalar(FpLaneScalar& out, const LaneFp& v) const override {
    std::uint64_t a[kL52];
    to_radix52(a, v);
    mont_mul_1(out.w, a, to_lane52_);
  }

  void broadcast(FpLaneVec& out, const FpLaneScalar& s) const override {
    __m512i* o = vec(out);
    for (int k = 0; k < kL52; ++k) {
      o[k] = _mm512_set1_epi64(static_cast<long long>(s.w[k]));
    }
  }

  void mul(FpLaneVec& r, const FpLaneVec& a,
           const FpLaneVec& b) const override {
    __m512i out[kL52];
    mont_mul(out, cvec(a), cvec(b));
    std::memcpy(r.w, out, sizeof(out));
  }

  void add(FpLaneVec& r, const FpLaneVec& a,
           const FpLaneVec& b) const override {
    const __m512i* va = cvec(a);
    const __m512i* vb = cvec(b);
    __m512i s[kL52];
    __m512i c = _mm512_setzero_si512();
    for (int k = 0; k < kL52; ++k) {
      const __m512i t = _mm512_add_epi64(_mm512_add_epi64(va[k], vb[k]), c);
      s[k] = _mm512_and_epi64(t, vmask_);
      c = _mm512_srli_epi64(t, 52);
    }
    cond_sub(s);
    std::memcpy(r.w, s, sizeof(s));
  }

  void sub(FpLaneVec& r, const FpLaneVec& a,
           const FpLaneVec& b) const override {
    const __m512i* va = cvec(a);
    const __m512i* vb = cvec(b);
    __m512i d[kL52];
    __m512i bor = _mm512_setzero_si512();
    for (int k = 0; k < kL52; ++k) {
      const __m512i t = _mm512_sub_epi64(_mm512_sub_epi64(va[k], vb[k]), bor);
      bor = _mm512_srli_epi64(t, 63);
      d[k] = _mm512_and_epi64(t, vmask_);
    }
    // Where a < b, the wrapped digits plus m give a - b + p (the final
    // carry out of limb 9 cancels the wrap).
    __m512i dm[kL52];
    __m512i c = _mm512_setzero_si512();
    for (int k = 0; k < kL52; ++k) {
      const __m512i t = _mm512_add_epi64(_mm512_add_epi64(d[k], vm_[k]), c);
      dm[k] = _mm512_and_epi64(t, vmask_);
      c = _mm512_srli_epi64(t, 52);
    }
    const __mmask8 wrapped =
        _mm512_cmpneq_epu64_mask(bor, _mm512_setzero_si512());
    __m512i out[kL52];
    for (int k = 0; k < kL52; ++k) {
      out[k] = _mm512_mask_blend_epi64(wrapped, d[k], dm[k]);
    }
    std::memcpy(r.w, out, sizeof(out));
  }

 private:
  static __m512i* vec(FpLaneVec& v) noexcept {
    return reinterpret_cast<__m512i*>(v.w);
  }
  static const __m512i* cvec(const FpLaneVec& v) noexcept {
    return reinterpret_cast<const __m512i*>(v.w);
  }

  // r = a * b * 2^-520 mod p, canonical. r may alias a or b.
  void mont_mul(__m512i r[kL52], const __m512i a[kL52],
                const __m512i b[kL52]) const {
    const __m512i zero = _mm512_setzero_si512();
    __m512i t[2 * kL52 + 1];
    for (int k = 0; k < 2 * kL52 + 1; ++k) t[k] = zero;
    for (int j = 0; j < kL52; ++j) {
      const __m512i bj = b[j];
      for (int k = 0; k < kL52; ++k) {
        t[j + k] = _mm512_madd52lo_epu64(t[j + k], a[k], bj);
        t[j + k + 1] = _mm512_madd52hi_epu64(t[j + k + 1], a[k], bj);
      }
      const __m512i q = _mm512_madd52lo_epu64(zero, t[j], vn0_);
      for (int k = 0; k < kL52; ++k) {
        t[j + k] = _mm512_madd52lo_epu64(t[j + k], vm_[k], q);
        t[j + k + 1] = _mm512_madd52hi_epu64(t[j + k + 1], vm_[k], q);
      }
      // t[j] is now 0 mod 2^52; push its high part up and slide the window.
      t[j + 1] = _mm512_add_epi64(t[j + 1], _mm512_srli_epi64(t[j], 52));
    }
    __m512i c = zero;
    for (int k = 0; k < kL52; ++k) {
      const __m512i s = _mm512_add_epi64(t[kL52 + k], c);
      r[k] = _mm512_and_epi64(s, vmask_);
      c = _mm512_srli_epi64(s, 52);
    }
    cond_sub(r);
  }

  // Canonicalize a value < 2p held in ten 52-bit digits.
  void cond_sub(__m512i r[kL52]) const {
    __m512i d[kL52];
    __m512i bor = _mm512_setzero_si512();
    for (int k = 0; k < kL52; ++k) {
      const __m512i t = _mm512_sub_epi64(_mm512_sub_epi64(r[k], vm_[k]), bor);
      bor = _mm512_srli_epi64(t, 63);
      d[k] = _mm512_and_epi64(t, vmask_);
    }
    const __mmask8 ge =
        _mm512_cmpeq_epu64_mask(bor, _mm512_setzero_si512());
    for (int k = 0; k < kL52; ++k) {
      r[k] = _mm512_mask_blend_epi64(ge, r[k], d[k]);
    }
  }

  // One-lane reference of the same radix-52 CIOS (used by to_scalar; the
  // digit sequence matches the vector path exactly).
  void mont_mul_1(std::uint64_t r[kL52], const std::uint64_t a[kL52],
                  const std::uint64_t b[kL52]) const {
    using u128 = unsigned __int128;
    std::uint64_t t[2 * kL52 + 1] = {};
    for (int j = 0; j < kL52; ++j) {
      for (int k = 0; k < kL52; ++k) {
        const u128 p = static_cast<u128>(a[k]) * b[j];
        t[j + k] += static_cast<std::uint64_t>(p) & kMask52;
        t[j + k + 1] += static_cast<std::uint64_t>(p >> 52) & kMask52;
      }
      const std::uint64_t q =
          static_cast<std::uint64_t>(
              static_cast<u128>(t[j] & kMask52) * n0inv52_) &
          kMask52;
      for (int k = 0; k < kL52; ++k) {
        const u128 p = static_cast<u128>(m52_[k]) * q;
        t[j + k] += static_cast<std::uint64_t>(p) & kMask52;
        t[j + k + 1] += static_cast<std::uint64_t>(p >> 52) & kMask52;
      }
      t[j + 1] += t[j] >> 52;
    }
    std::uint64_t c = 0;
    for (int k = 0; k < kL52; ++k) {
      const std::uint64_t s = t[kL52 + k] + c;
      r[k] = s & kMask52;
      c = s >> 52;
    }
    // Conditional subtract (value < 2p).
    std::uint64_t d[kL52];
    std::uint64_t bor = 0;
    for (int k = 0; k < kL52; ++k) {
      const std::uint64_t s = r[k] - m52_[k] - bor;
      bor = s >> 63;
      d[k] = s & kMask52;
    }
    if (bor == 0) {
      for (int k = 0; k < kL52; ++k) r[k] = d[k];
    }
  }

  std::uint64_t m52_[kL52];
  std::uint64_t to_lane52_[kL52];
  std::uint64_t from_lane52_[kL52];
  std::uint64_t n0inv52_ = 0;
  __m512i vm_[kL52];
  __m512i vto_[kL52];
  __m512i vfrom_[kL52];
  __m512i vn0_;
  __m512i vmask_;
};

}  // namespace

std::unique_ptr<FpLaneEngine> make_fp_lanes_avx512(const LaneField& field) {
  return std::make_unique<Avx512Lanes>(field);
}

}  // namespace apks::detail

#else  // !(__AVX512F__ && __AVX512IFMA__ && __AVX512DQ__)

namespace apks::detail {
std::unique_ptr<FpLaneEngine> make_fp_lanes_avx512(const LaneField&) {
  return nullptr;
}
}  // namespace apks::detail

#endif
