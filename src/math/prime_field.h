// Prime field arithmetic on top of Montgomery contexts.
//
// Elements are BigInt<L> values in Montgomery form; the PrimeField object
// owns the modulus context and provides all operations. Callers never mix
// elements from different field instances.
#pragma once

#include <cassert>
#include <stdexcept>
#include <vector>

#include "common/bigint.h"
#include "common/montgomery.h"
#include "common/rng.h"

namespace apks {

template <std::size_t L>
class PrimeField {
 public:
  using El = BigInt<L>;

  explicit PrimeField(const El& p) : mont_(p) {
    if (!p.is_odd() || p < El{3}) {
      throw std::invalid_argument("PrimeField: modulus must be an odd prime");
    }
    legendre_exp_ = (p - El{1}).shr(1);          // (p-1)/2
    sqrt_exp_ = legendre_exp_.shr(1) + El{1};    // (p+1)/4 when p = 3 (mod 4)
  }

  [[nodiscard]] const El& modulus() const noexcept { return mont_.modulus(); }
  [[nodiscard]] El zero() const noexcept { return El::zero(); }
  [[nodiscard]] const El& one() const noexcept { return mont_.r(); }

  [[nodiscard]] El add(const El& a, const El& b) const noexcept {
    return mont_.add(a, b);
  }
  [[nodiscard]] El sub(const El& a, const El& b) const noexcept {
    return mont_.sub(a, b);
  }
  [[nodiscard]] El neg(const El& a) const noexcept { return mont_.neg(a); }
  [[nodiscard]] El mul(const El& a, const El& b) const noexcept {
    return mont_.mul(a, b);
  }
  [[nodiscard]] El sqr(const El& a) const noexcept { return mont_.sqr(a); }

  [[nodiscard]] El dbl(const El& a) const noexcept { return add(a, a); }

  // a^e with a in the field; e is a plain (non-Montgomery) integer.
  template <std::size_t EL>
  [[nodiscard]] El pow(const El& a, const BigInt<EL>& e) const noexcept {
    return mont_.pow(a, e);
  }

  // Multiplicative inverse; requires a != 0 (checked). Binary-EGCD based;
  // inv_fermat stays available on MontCtx for cross-checking.
  [[nodiscard]] El inv(const El& a) const {
    if (a.is_zero()) throw std::domain_error("PrimeField::inv of zero");
    return mont_.inv_binary(a);
  }

  // Montgomery's batch-inversion trick: inverts every element in place at
  // the cost of one field inversion plus 3(n-1) multiplications. All
  // elements must be nonzero (checked).
  void batch_inv(std::vector<El>& elems) const {
    if (elems.empty()) return;
    std::vector<El> prefix(elems.size());
    El acc = one();
    for (std::size_t i = 0; i < elems.size(); ++i) {
      if (elems[i].is_zero()) {
        throw std::domain_error("PrimeField::batch_inv of zero");
      }
      prefix[i] = acc;
      acc = mul(acc, elems[i]);
    }
    El inv_acc = inv(acc);
    for (std::size_t i = elems.size(); i-- > 0;) {
      const El this_inv = mul(inv_acc, prefix[i]);
      inv_acc = mul(inv_acc, elems[i]);
      elems[i] = this_inv;
    }
  }

  [[nodiscard]] El from_u64(std::uint64_t v) const noexcept {
    return mont_.to_mont(El{v});
  }
  [[nodiscard]] El from_int(const El& v) const noexcept {
    assert(v < modulus());
    return mont_.to_mont(v);
  }
  [[nodiscard]] El to_int(const El& a) const noexcept {
    return mont_.from_mont(a);
  }

  // Interprets big-endian bytes as an integer and reduces mod p.
  // Accepts up to 2*L*8 bytes.
  [[nodiscard]] El from_bytes_mod(std::span<const std::uint8_t> bytes) const {
    const auto wide = BigInt<2 * L>::from_bytes(bytes);
    return mont_.to_mont(mod(wide, modulus()));
  }

  // Uniform random field element in [0, p).
  [[nodiscard]] El random(Rng& rng) const {
    const std::size_t bits = modulus().bit_length();
    const std::size_t bytes = (bits + 7) / 8;
    std::array<std::uint8_t, 8 * L> buf{};
    for (;;) {
      rng.fill(std::span<std::uint8_t>(buf.data(), bytes));
      // Mask the excess top bits so rejection is fast.
      if (bits % 8 != 0) {
        buf[0] = static_cast<std::uint8_t>(
            buf[0] & ((1u << (bits % 8)) - 1u));
      }
      auto v = El::from_bytes(std::span<const std::uint8_t>(buf.data(), bytes));
      if (v < modulus()) return mont_.to_mont(v);
    }
  }

  // Uniform random nonzero element.
  [[nodiscard]] El random_nonzero(Rng& rng) const {
    for (;;) {
      auto v = random(rng);
      if (!v.is_zero()) return v;
    }
  }

  // Legendre symbol: +1 (QR), -1 (non-residue), 0 (zero). The exponent
  // (p-1)/2 is fixed per field and cached at construction.
  [[nodiscard]] int legendre(const El& a) const {
    if (a.is_zero()) return 0;
    const El r = pow(a, legendre_exp_);
    if (r == one()) return 1;
    return -1;
  }

  // Square root for p = 3 (mod 4): a^((p+1)/4), cached exponent. Returns
  // false if `a` is a non-residue.
  [[nodiscard]] bool sqrt(const El& a, El& out) const {
    assert(modulus().w[0] % 4 == 3);
    if (a.is_zero()) {
      out = zero();
      return true;
    }
    const El r = pow(a, sqrt_exp_);
    if (sqr(r) != a) return false;
    out = r;
    return true;
  }

 private:
  MontCtx<L> mont_;
  El legendre_exp_{};  // (p-1)/2
  El sqrt_exp_{};      // (p+1)/4 = (p-1)/4 + 1 for p = 3 (mod 4)
};

// Miller-Rabin primality test with `rounds` random bases.
template <std::size_t L>
[[nodiscard]] bool is_probable_prime(const BigInt<L>& n, Rng& rng,
                                     int rounds = 40) {
  if (n < BigInt<L>{2}) return false;
  for (const std::uint64_t sp : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull,
                                 19ull, 23ull, 29ull, 31ull, 37ull}) {
    const BigInt<L> spb{sp};
    if (n == spb) return true;
    BigInt<L> q, r;
    divrem(n, spb, q, r);
    if (r.is_zero()) return false;
  }
  // n - 1 = d * 2^s
  const BigInt<L> nm1 = n - BigInt<L>{1};
  BigInt<L> d = nm1;
  unsigned s = 0;
  while (!d.is_odd()) {
    d = d.shr(1);
    ++s;
  }
  MontCtx<L> mont(n);
  const BigInt<L> one_m = mont.r();
  const BigInt<L> nm1_m = mont.to_mont(nm1);
  const std::size_t bits = n.bit_length();
  const std::size_t bytes = (bits + 7) / 8;
  std::array<std::uint8_t, 8 * L> buf{};
  for (int round = 0; round < rounds; ++round) {
    BigInt<L> a;
    do {
      rng.fill(std::span<std::uint8_t>(buf.data(), bytes));
      if (bits % 8 != 0) {
        buf[0] = static_cast<std::uint8_t>(buf[0] & ((1u << (bits % 8)) - 1u));
      }
      a = BigInt<L>::from_bytes(
          std::span<const std::uint8_t>(buf.data(), bytes));
    } while (a < BigInt<L>{2} || a >= nm1);
    BigInt<L> x = mont.pow(mont.to_mont(a), d);
    if (x == one_m || x == nm1_m) continue;
    bool composite = true;
    for (unsigned i = 1; i < s; ++i) {
      x = mont.sqr(x);
      if (x == nm1_m) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

}  // namespace apks
