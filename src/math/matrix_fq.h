// Dense matrix algebra over F_q.
//
// Used by the DPVS layer: the master secret of HPE is a random X in
// GL(n, F_q); the dual basis uses (X^T)^{-1}.
#pragma once

#include <cstddef>
#include <vector>

#include "math/fq.h"

namespace apks {

class MatrixFq {
 public:
  MatrixFq() = default;
  MatrixFq(std::size_t rows, std::size_t cols, const FqField& fq)
      : rows_(rows), cols_(cols), data_(rows * cols, fq.zero()) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] Fq& at(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const Fq& at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] static MatrixFq identity(std::size_t n, const FqField& fq);
  [[nodiscard]] static MatrixFq random(std::size_t rows, std::size_t cols,
                                       const FqField& fq, Rng& rng);
  // Samples uniformly from GL(n, F_q) by rejection (a random matrix is
  // singular with probability ~ n/q, negligible for 160-bit q).
  [[nodiscard]] static MatrixFq random_invertible(std::size_t n,
                                                  const FqField& fq, Rng& rng);

  [[nodiscard]] MatrixFq transpose() const;
  [[nodiscard]] MatrixFq mul(const MatrixFq& other, const FqField& fq) const;

  // Gauss-Jordan inverse. Returns false if the matrix is singular.
  [[nodiscard]] bool inverse(const FqField& fq, MatrixFq& out) const;

  // y = M * x (column vector).
  [[nodiscard]] std::vector<Fq> apply(const std::vector<Fq>& x,
                                      const FqField& fq) const;

  friend bool operator==(const MatrixFq&, const MatrixFq&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Fq> data_;
};

}  // namespace apks
