// The 160-bit scalar field F_q (group order of the type-A pairing groups).
//
// Keywords, predicate-vector entries, matrix entries and exponents all live
// in F_q. Elements are Montgomery-form BigInt<3>.
#pragma once

#include <string_view>
#include <vector>

#include "common/sha1.h"
#include "math/prime_field.h"

namespace apks {

inline constexpr std::size_t kFqLimbs = 3;
using FqInt = BigInt<kFqLimbs>;
using FqField = PrimeField<kFqLimbs>;
using Fq = FqInt;  // Montgomery-form element of F_q

// The keyword hash from the paper: H : {0,1}* -> F_q using SHA-1 (the 160-bit
// digest is reduced mod q).
[[nodiscard]] inline Fq hash_to_fq(const FqField& fq, std::string_view keyword) {
  const auto digest = Sha1::hash(keyword);
  return fq.from_bytes_mod(digest);
}

// Inner product sum_i a_i * b_i over F_q. Sizes must match.
[[nodiscard]] inline Fq inner_product(const FqField& fq,
                                      const std::vector<Fq>& a,
                                      const std::vector<Fq>& b) {
  assert(a.size() == b.size());
  Fq acc = fq.zero();
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = fq.add(acc, fq.mul(a[i], b[i]));
  }
  return acc;
}

}  // namespace apks
