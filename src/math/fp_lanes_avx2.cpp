// 4-wide AVX2 lane engine: CIOS Montgomery multiplication over sixteen
// 32-bit limbs held in the 64-bit lanes of __m256i vectors (vpmuludq
// multiplies the low halves, so one 32x32->64 product per lane per
// instruction, with exact sequential carry propagation).
//
// R = 2^(32*16) = 2^512 equals the scalar Montgomery radix, so there is no
// domain shift: load/store are pure digit repacking, and a lane value is
// limb-for-limb the scalar engine's value at every step.
#include "math/fp_lanes.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

namespace apks::detail {

namespace {

constexpr int kL32 = 16;  // 32-bit limbs covering 512 bits
constexpr std::uint64_t kMask32 = 0xffffffffu;

void to_radix32(std::uint64_t out[kL32], const LaneFp& v) {
  for (int k = 0; k < 8; ++k) {
    out[2 * k] = v.w[static_cast<std::size_t>(k)] & kMask32;
    out[2 * k + 1] = v.w[static_cast<std::size_t>(k)] >> 32;
  }
}

void from_radix32(LaneFp& out, const std::uint64_t in[kL32]) {
  for (int k = 0; k < 8; ++k) {
    out.w[static_cast<std::size_t>(k)] = in[2 * k] | (in[2 * k + 1] << 32);
  }
}

class Avx2Lanes final : public FpLaneEngine {
 public:
  explicit Avx2Lanes(const LaneField& field) {
    const LaneFp& p = field.modulus();
    to_radix32(m32_, p);
    n0inv32_ = limb::mont_n0inv(p.w[0]) & kMask32;
    for (int k = 0; k < kL32; ++k) {
      vm_[k] = _mm256_set1_epi64x(static_cast<long long>(m32_[k]));
    }
    vn0_ = _mm256_set1_epi64x(static_cast<long long>(n0inv32_));
    vmask_ = _mm256_set1_epi64x(static_cast<long long>(kMask32));
  }

  [[nodiscard]] const char* name() const noexcept override { return "avx2"; }
  [[nodiscard]] SimdLevel level() const noexcept override {
    return SimdLevel::kAvx2;
  }
  [[nodiscard]] std::size_t width() const noexcept override { return 4; }

  void load(FpLaneVec& out, const LaneFp* vals,
            std::size_t n) const override {
    std::memset(out.w, 0, sizeof(out.w));
    std::uint64_t limbs[kL32];
    for (std::size_t l = 0; l < n && l < 4; ++l) {
      to_radix32(limbs, vals[l]);
      for (int k = 0; k < kL32; ++k) {
        out.w[static_cast<std::size_t>(k) * 4 + l] = limbs[k];
      }
    }
  }

  void store(LaneFp* out, const FpLaneVec& in, std::size_t n) const override {
    std::uint64_t limbs[kL32];
    for (std::size_t l = 0; l < n && l < 4; ++l) {
      for (int k = 0; k < kL32; ++k) {
        limbs[k] = in.w[static_cast<std::size_t>(k) * 4 + l];
      }
      from_radix32(out[l], limbs);
    }
  }

  void to_scalar(FpLaneScalar& out, const LaneFp& v) const override {
    std::memset(out.w, 0, sizeof(out.w));
    std::memcpy(out.w, v.w.data(), sizeof(LaneFp));
  }

  void broadcast(FpLaneVec& out, const FpLaneScalar& s) const override {
    LaneFp v;
    std::memcpy(v.w.data(), s.w, sizeof(LaneFp));
    std::uint64_t limbs[kL32];
    to_radix32(limbs, v);
    __m256i* o = vec(out);
    for (int k = 0; k < kL32; ++k) {
      o[k] = _mm256_set1_epi64x(static_cast<long long>(limbs[k]));
    }
  }

  void mul(FpLaneVec& r, const FpLaneVec& a,
           const FpLaneVec& b) const override {
    const __m256i* va = cvec(a);
    const __m256i* vb = cvec(b);
    const __m256i zero = _mm256_setzero_si256();
    __m256i t[2 * kL32 + 1];
    for (int k = 0; k < 2 * kL32 + 1; ++k) t[k] = zero;
    for (int j = 0; j < kL32; ++j) {
      const __m256i bj = vb[j];
      // t += a * b[j], exact sequential carries (each step fits 64 bits).
      __m256i c = zero;
      for (int k = 0; k < kL32; ++k) {
        const __m256i s = _mm256_add_epi64(
            _mm256_add_epi64(t[j + k], _mm256_mul_epu32(va[k], bj)), c);
        t[j + k] = _mm256_and_si256(s, vmask_);
        c = _mm256_srli_epi64(s, 32);
      }
      __m256i s = _mm256_add_epi64(t[j + kL32], c);
      t[j + kL32] = _mm256_and_si256(s, vmask_);
      t[j + kL32 + 1] = _mm256_add_epi64(t[j + kL32 + 1],
                                         _mm256_srli_epi64(s, 32));
      // Reduce one digit: q = t[j] * n0inv mod 2^32.
      const __m256i q =
          _mm256_and_si256(_mm256_mul_epu32(t[j], vn0_), vmask_);
      c = zero;
      for (int k = 0; k < kL32; ++k) {
        const __m256i s2 = _mm256_add_epi64(
            _mm256_add_epi64(t[j + k], _mm256_mul_epu32(vm_[k], q)), c);
        t[j + k] = _mm256_and_si256(s2, vmask_);
        c = _mm256_srli_epi64(s2, 32);
      }
      s = _mm256_add_epi64(t[j + kL32], c);
      t[j + kL32] = _mm256_and_si256(s, vmask_);
      t[j + kL32 + 1] = _mm256_add_epi64(t[j + kL32 + 1],
                                         _mm256_srli_epi64(s, 32));
      // t[j] is now zero; the window slides with j.
    }
    // Result digits t[16..31], plus a possible 2^512 bit in t[32].
    __m256i out[kL32];
    cond_sub(out, t + kL32, t[2 * kL32]);
    std::memcpy(r.w, out, sizeof(out));
  }

  void add(FpLaneVec& r, const FpLaneVec& a,
           const FpLaneVec& b) const override {
    const __m256i* va = cvec(a);
    const __m256i* vb = cvec(b);
    __m256i s[kL32];
    __m256i c = _mm256_setzero_si256();
    for (int k = 0; k < kL32; ++k) {
      const __m256i t = _mm256_add_epi64(_mm256_add_epi64(va[k], vb[k]), c);
      s[k] = _mm256_and_si256(t, vmask_);
      c = _mm256_srli_epi64(t, 32);
    }
    __m256i out[kL32];
    cond_sub(out, s, c);
    std::memcpy(r.w, out, sizeof(out));
  }

  void sub(FpLaneVec& r, const FpLaneVec& a,
           const FpLaneVec& b) const override {
    const __m256i* va = cvec(a);
    const __m256i* vb = cvec(b);
    __m256i d[kL32];
    __m256i bor = _mm256_setzero_si256();
    for (int k = 0; k < kL32; ++k) {
      const __m256i t = _mm256_sub_epi64(_mm256_sub_epi64(va[k], vb[k]), bor);
      bor = _mm256_srli_epi64(t, 63);
      d[k] = _mm256_and_si256(t, vmask_);
    }
    // Where a < b: wrapped digits + p (final carry cancels the wrap).
    __m256i dm[kL32];
    __m256i c = _mm256_setzero_si256();
    for (int k = 0; k < kL32; ++k) {
      const __m256i t = _mm256_add_epi64(_mm256_add_epi64(d[k], vm_[k]), c);
      dm[k] = _mm256_and_si256(t, vmask_);
      c = _mm256_srli_epi64(t, 32);
    }
    const __m256i wrapped =
        _mm256_xor_si256(_mm256_cmpeq_epi64(bor, _mm256_setzero_si256()),
                         _mm256_set1_epi64x(-1));
    __m256i out[kL32];
    for (int k = 0; k < kL32; ++k) {
      out[k] = _mm256_blendv_epi8(d[k], dm[k], wrapped);
    }
    std::memcpy(r.w, out, sizeof(out));
  }

 private:
  static __m256i* vec(FpLaneVec& v) noexcept {
    return reinterpret_cast<__m256i*>(v.w);
  }
  static const __m256i* cvec(const FpLaneVec& v) noexcept {
    return reinterpret_cast<const __m256i*>(v.w);
  }

  // out = canonical(value), where value = hi * 2^512 + digits (< 2p).
  void cond_sub(__m256i out[kL32], const __m256i digits[kL32],
                const __m256i hi) const {
    __m256i d[kL32];
    __m256i bor = _mm256_setzero_si256();
    for (int k = 0; k < kL32; ++k) {
      const __m256i t =
          _mm256_sub_epi64(_mm256_sub_epi64(digits[k], vm_[k]), bor);
      bor = _mm256_srli_epi64(t, 63);
      d[k] = _mm256_and_si256(t, vmask_);
    }
    const __m256i zero = _mm256_setzero_si256();
    // Take the subtracted form when hi != 0 (value >= 2^512 > p) or when
    // the low 512 bits alone are >= p (no final borrow).
    const __m256i ones = _mm256_set1_epi64x(-1);
    const __m256i hi_nz = _mm256_xor_si256(_mm256_cmpeq_epi64(hi, zero), ones);
    const __m256i no_borrow = _mm256_cmpeq_epi64(bor, zero);
    const __m256i take_sub = _mm256_or_si256(hi_nz, no_borrow);
    for (int k = 0; k < kL32; ++k) {
      out[k] = _mm256_blendv_epi8(digits[k], d[k], take_sub);
    }
  }

  std::uint64_t m32_[kL32];
  std::uint64_t n0inv32_ = 0;
  __m256i vm_[kL32];
  __m256i vn0_;
  __m256i vmask_;
};

}  // namespace

std::unique_ptr<FpLaneEngine> make_fp_lanes_avx2(const LaneField& field) {
  return std::make_unique<Avx2Lanes>(field);
}

}  // namespace apks::detail

#else  // !__AVX2__

namespace apks::detail {
std::unique_ptr<FpLaneEngine> make_fp_lanes_avx2(const LaneField&) {
  return nullptr;
}
}  // namespace apks::detail

#endif
