// Text syntax for multi-dimensional queries.
//
// A query is a ';'-separated list of per-dimension terms; dimensions not
// mentioned are "don't care". Term forms:
//
//   sex = Male                      equality
//   illness in diabetes, asthma    subset (OR of equalities)
//   age : 34-100 @ 2               numeric range at hierarchy level 2
//   region under East MA           semantic range (internal node[s])
//   provider = *                   explicit don't-care
//
// Whitespace around tokens is ignored. parse_query resolves dimension names
// against a schema and returns a Query aligned to it; errors carry a
// human-readable description.
#pragma once

#include <string_view>

#include "core/schema.h"

namespace apks {

// Throws std::invalid_argument with a descriptive message on syntax errors,
// unknown dimensions, duplicate terms, or malformed ranges.
[[nodiscard]] Query parse_query(const Schema& schema, std::string_view text);

// Renders a query back to the textual syntax (don't-care dims omitted).
[[nodiscard]] std::string format_query(const Schema& schema,
                                       const Query& query);

// Parses a comma-separated index row ("61, Male, Boston, diabetes, ...")
// aligned to the schema's dimensions.
[[nodiscard]] PlainIndex parse_index(const Schema& schema,
                                     std::string_view text);

}  // namespace apks
