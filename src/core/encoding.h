// The psi / phi vector encodings of Section IV-C.1.
//
// psi maps a converted index row to the plaintext vector
//   x = (z_1^{d_1}, ..., z_1, z_2^{d_2}, ..., z_2, ..., 1),
// phi maps a converted CNF query to the predicate vector of coefficients of
//   p(Z) = sum_i r_i (Z_i - w_{i,1}) ... (Z_i - w_{i,t_i}),
// so that x . v = sum_i r_i p_i(z_i), which is 0 iff every non-don't-care
// dimension matches (up to negligible cancellation probability over the
// random r_i).
#pragma once

#include <vector>

#include "core/schema.h"
#include "math/fq.h"

namespace apks {

// Per converted field: either "don't care" (contributes nothing) or the
// hashed OR-keywords (roots of the field's query polynomial).
struct FieldPredicate {
  bool dont_care = true;
  std::vector<Fq> roots;
};

// psi: hashed converted-index keywords -> plaintext vector (length n).
// `keywords[i]` is H(field_i : value_i); degrees come from the schema.
[[nodiscard]] std::vector<Fq> psi_encode(const FqField& fq,
                                         const Schema& schema,
                                         const std::vector<Fq>& keywords);

// phi: per-field predicates -> predicate vector (length n). Uses fresh
// random multipliers r_i for non-don't-care fields.
[[nodiscard]] std::vector<Fq> phi_encode(const FqField& fq,
                                         const Schema& schema,
                                         const std::vector<FieldPredicate>& preds,
                                         Rng& rng);

// Hashes a converted index into per-field F_q keywords.
[[nodiscard]] std::vector<Fq> hash_index(const FqField& fq,
                                         const Schema& schema,
                                         const ConvertedIndex& index);

// Hashes a converted query into per-field predicates.
[[nodiscard]] std::vector<FieldPredicate> hash_query(const FqField& fq,
                                                     const Schema& schema,
                                                     const ConvertedQuery& q);

// Expands prod_j (Z - roots[j]) into monomial coefficients c[0..t], where
// c[j] multiplies Z^j. Exposed for tests.
[[nodiscard]] std::vector<Fq> poly_from_roots(const FqField& fq,
                                              const std::vector<Fq>& roots);

}  // namespace apks
