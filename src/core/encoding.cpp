#include "core/encoding.h"

#include <stdexcept>

namespace apks {

std::vector<Fq> poly_from_roots(const FqField& fq,
                                const std::vector<Fq>& roots) {
  // Start with the constant polynomial 1, multiply by (Z - w) per root.
  std::vector<Fq> c{fq.one()};
  for (const Fq& w : roots) {
    std::vector<Fq> next(c.size() + 1, fq.zero());
    for (std::size_t j = 0; j < c.size(); ++j) {
      next[j + 1] = fq.add(next[j + 1], c[j]);            // Z * c_j
      next[j] = fq.sub(next[j], fq.mul(w, c[j]));         // -w * c_j
    }
    c = std::move(next);
  }
  return c;
}

std::vector<Fq> psi_encode(const FqField& fq, const Schema& schema,
                           const std::vector<Fq>& keywords) {
  const auto& fields = schema.fields();
  if (keywords.size() != fields.size()) {
    throw std::invalid_argument("psi_encode: keyword arity mismatch");
  }
  std::vector<Fq> x;
  x.reserve(schema.vector_length());
  for (std::size_t i = 0; i < fields.size(); ++i) {
    // Block (z^{d}, z^{d-1}, ..., z).
    std::vector<Fq> powers(fields[i].degree);
    Fq acc = keywords[i];
    for (std::size_t j = 0; j < fields[i].degree; ++j) {
      powers[j] = acc;  // z^{j+1}
      acc = fq.mul(acc, keywords[i]);
    }
    for (std::size_t j = fields[i].degree; j-- > 0;) {
      x.push_back(powers[j]);
    }
  }
  x.push_back(fq.one());
  return x;
}

std::vector<Fq> phi_encode(const FqField& fq, const Schema& schema,
                           const std::vector<FieldPredicate>& preds,
                           Rng& rng) {
  const auto& fields = schema.fields();
  if (preds.size() != fields.size()) {
    throw std::invalid_argument("phi_encode: predicate arity mismatch");
  }
  std::vector<Fq> v;
  v.reserve(schema.vector_length());
  Fq c0 = fq.zero();
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const std::size_t d = fields[i].degree;
    if (preds[i].dont_care) {
      for (std::size_t j = 0; j < d; ++j) v.push_back(fq.zero());
      continue;
    }
    if (preds[i].roots.empty() || preds[i].roots.size() > d) {
      throw std::invalid_argument("phi_encode: OR budget violated");
    }
    auto coeffs = poly_from_roots(fq, preds[i].roots);  // degree t <= d
    const Fq r = fq.random_nonzero(rng);
    for (auto& c : coeffs) c = fq.mul(c, r);
    // Slots hold coefficients of Z^d ... Z^1 (zero-padded above degree t).
    for (std::size_t j = d; j >= 1; --j) {
      v.push_back(j < coeffs.size() ? coeffs[j] : fq.zero());
    }
    c0 = fq.add(c0, coeffs[0]);
  }
  v.push_back(c0);
  return v;
}

std::vector<Fq> hash_index(const FqField& fq, const Schema& schema,
                           const ConvertedIndex& index) {
  const auto& fields = schema.fields();
  if (index.keywords.size() != fields.size()) {
    throw std::invalid_argument("hash_index: arity mismatch");
  }
  std::vector<Fq> out;
  out.reserve(fields.size());
  for (std::size_t i = 0; i < fields.size(); ++i) {
    out.push_back(hash_to_fq(fq, Schema::keyword(fields[i],
                                                 index.keywords[i])));
  }
  return out;
}

std::vector<FieldPredicate> hash_query(const FqField& fq, const Schema& schema,
                                       const ConvertedQuery& q) {
  const auto& fields = schema.fields();
  if (q.per_field.size() != fields.size()) {
    throw std::invalid_argument("hash_query: arity mismatch");
  }
  std::vector<FieldPredicate> out(fields.size());
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (q.per_field[i].empty()) continue;
    out[i].dont_care = false;
    for (const auto& value : q.per_field[i]) {
      out[i].roots.push_back(
          hash_to_fq(fq, Schema::keyword(fields[i], value)));
    }
  }
  return out;
}

}  // namespace apks
