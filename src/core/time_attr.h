// Revocation support via the paper's time attribute (Section IV-C).
//
// Every index carries a creation-time dimension; capabilities embed an
// authorized search period as a simple-range term over it. A capability
// whose period has passed cannot search newer indexes — revocation without
// re-keying. The hierarchy is a balanced quaternary tree over months since
// January 2000 (1024 leaves, covering 2000-2085), so periods of 1, 4, 16,
// 64 or 256 months are single simple ranges.
#pragma once

#include <memory>

#include "core/schema.h"

namespace apks {

inline constexpr std::uint64_t kTimeDomainSize = 1024;  // months
inline constexpr std::size_t kTimeHierarchyDepth = 6;   // 4^5 = 1024 leaves

// Months since 2000-01; month is 1-based.
[[nodiscard]] inline std::uint64_t month_index(unsigned year, unsigned month) {
  if (year < 2000 || month < 1 || month > 12) {
    throw std::invalid_argument("month_index: out of supported range");
  }
  const std::uint64_t idx =
      (static_cast<std::uint64_t>(year) - 2000) * 12 + (month - 1);
  if (idx >= kTimeDomainSize) {
    throw std::invalid_argument("month_index: beyond time domain");
  }
  return idx;
}

[[nodiscard]] inline std::shared_ptr<const AttributeHierarchy>
make_time_hierarchy() {
  return std::make_shared<AttributeHierarchy>(AttributeHierarchy::numeric(
      "time", 0, kTimeDomainSize - 1, 4, kTimeHierarchyDepth));
}

// The schema dimension owners and authorities share for revocation.
[[nodiscard]] inline Dimension make_time_dimension(std::size_t max_or) {
  return {"time", make_time_hierarchy(), max_or};
}

// Index-side value for a creation date.
[[nodiscard]] inline std::string time_value(unsigned year, unsigned month) {
  return std::to_string(month_index(year, month));
}

// Capability-side term authorizing searches over [from, to] (inclusive),
// expressed at hierarchy level `level` (defaults to the leaf level; use a
// coarser level for long periods so the OR budget is respected).
[[nodiscard]] inline QueryTerm time_period(unsigned from_year,
                                           unsigned from_month,
                                           unsigned to_year, unsigned to_month,
                                           std::size_t level =
                                               kTimeHierarchyDepth) {
  return QueryTerm::range(month_index(from_year, from_month),
                          month_index(to_year, to_month), level);
}

}  // namespace apks
