#include "core/apks.h"

namespace apks {

std::vector<Fq> Apks::encode_index_vector(const PlainIndex& index) const {
  const FqField& fq = hpe_.pairing().fq();
  const ConvertedIndex converted = schema_.convert_index(index);
  return psi_encode(fq, schema_, hash_index(fq, schema_, converted));
}

std::vector<Fq> Apks::encode_query_vector(const Query& query,
                                          Rng& rng) const {
  const FqField& fq = hpe_.pairing().fq();
  const ConvertedQuery converted = schema_.convert_query(query);
  return phi_encode(fq, schema_, hash_query(fq, schema_, converted), rng);
}

GtEl Apks::match_flag() const {
  const Pairing& e = hpe_.pairing();
  return e.gt_pow(e.gt_generator(), hash_to_fq(e.fq(), "apks:match-flag"));
}

EncryptedIndex Apks::gen_index(const ApksPublicKey& pk,
                               const PlainIndex& index, Rng& rng) const {
  return {hpe_.encrypt(pk.hpe, encode_index_vector(index), match_flag(), rng)};
}

Capability Apks::gen_cap(const ApksMasterKey& msk, const Query& query,
                         Rng& rng) const {
  Capability cap;
  cap.key = hpe_.gen_key(msk.hpe, encode_query_vector(query, rng), rng);
  cap.history.push_back(query);
  return cap;
}

bool Apks::search(const Capability& cap, const EncryptedIndex& index) const {
  return hpe_.decrypt(index.ct, cap.key) == match_flag();
}

PreparedCapability Apks::prepare(const Capability& cap) const {
  return {std::make_shared<BlockMultiPairing>(hpe_.pairing(),
                                              hpe_.preprocess_key(cap.key))};
}

bool Apks::search_prepared(const PreparedCapability& cap,
                           const EncryptedIndex& index) const {
  return hpe_.decrypt_pre(index.ct, cap.dec()) == match_flag();
}

void Apks::search_prepared_block(const PreparedCapability& cap,
                                 const EncryptedIndex* const* indexes,
                                 std::size_t n, bool* out) const {
  const GtEl flag = match_flag();
  std::vector<const HpeCiphertext*> cts(n);
  for (std::size_t r = 0; r < n; ++r) cts[r] = &indexes[r]->ct;
  std::vector<GtEl> dec(n);
  hpe_.decrypt_pre_block(*cap.kernel, cts.data(), n, dec.data());
  for (std::size_t r = 0; r < n; ++r) out[r] = dec[r] == flag;
}

Capability Apks::delegate_cap(const Capability& parent,
                              const Query& restriction, Rng& rng) const {
  Capability child;
  child.key =
      hpe_.delegate(parent.key, encode_query_vector(restriction, rng), rng);
  child.history = parent.history;
  child.history.push_back(restriction);
  return child;
}

Capability Apks::gen_cap_naive(const ApksMasterKey& msk, const Query& query,
                               Rng& rng) const {
  Capability cap;
  cap.key = hpe_.gen_key_naive(msk.hpe, encode_query_vector(query, rng), rng);
  cap.history.push_back(query);
  return cap;
}

Capability Apks::delegate_cap_naive(const Capability& parent,
                                    const Query& restriction, Rng& rng) const {
  Capability child;
  child.key = hpe_.delegate_naive(parent.key,
                                  encode_query_vector(restriction, rng), rng);
  child.history = parent.history;
  child.history.push_back(restriction);
  return child;
}

}  // namespace apks
