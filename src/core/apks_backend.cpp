#include "core/apks_backend.h"

#include <stdexcept>

#include "core/capability_digest.h"
#include "core/serialize_apks.h"
#include "hpe/serialize.h"

namespace apks {

std::vector<std::uint8_t> ApksBackend::encode_index(
    const AnyIndex& index) const {
  require_index(index);
  return serialize_index(pairing(), index.as<EncryptedIndex>());
}

AnyIndex ApksBackend::decode_index(std::span<const std::uint8_t> data) const {
  return AnyIndex::own(kind(), deserialize_index(pairing(), data));
}

std::vector<std::uint8_t> ApksBackend::encode_query(
    const AnyQuery& query) const {
  require_query(query);
  return serialize_capability(pairing(), query.as<Capability>());
}

AnyQuery ApksBackend::decode_query(std::span<const std::uint8_t> data) const {
  return AnyQuery::own(kind(), deserialize_capability(pairing(), data));
}

QueryDigest ApksBackend::digest(const AnyQuery& query) const {
  require_query(query);
  return capability_digest(pairing(), query.as<Capability>());
}

AnyPrepared ApksBackend::prepare(const AnyQuery& query) const {
  require_query(query);
  return AnyPrepared::own(kind(), scheme_->prepare(query.as<Capability>()));
}

bool ApksBackend::match(const AnyPrepared& prepared,
                        const AnyIndex& index) const {
  require_prepared(prepared);
  require_index(index);
  return scheme_->search_prepared(prepared.as<PreparedCapability>(),
                                  index.as<EncryptedIndex>());
}

void ApksBackend::match_block(const AnyPrepared& prepared,
                              const AnyIndex* const* indexes, std::size_t n,
                              bool* out) const {
  require_prepared(prepared);
  std::vector<const EncryptedIndex*> typed(n);
  for (std::size_t r = 0; r < n; ++r) {
    require_index(*indexes[r]);
    typed[r] = &indexes[r]->as<EncryptedIndex>();
  }
  scheme_->search_prepared_block(prepared.as<PreparedCapability>(),
                                 typed.data(), n, out);
}

std::vector<std::uint8_t> ApksBackend::query_message(
    const AnyQuery& query, const std::string& issuer) const {
  require_query(query);
  // Byte-identical to capability_message (auth/authority.h) so signatures
  // issued through the typed authority API verify through this path too.
  ByteWriter w;
  w.bytes(serialize_key(pairing(), query.as<Capability>().key));
  w.str(issuer);
  return w.take();
}

AnyIndex ApksPlusBackend::ingest_transform(AnyIndex index) const {
  require_index(index);
  if (!ingest_stage_) return index;
  return AnyIndex::own(kind(), ingest_stage_(index.as<EncryptedIndex>()));
}

void ApksPlusBackend::validate_ingest(const AnyIndex& index) const {
  require_index(index);
  if (!has_canary_) return;
  if (!scheme().search_prepared(canary_, index.as<EncryptedIndex>())) {
    throw std::invalid_argument(
        "apks+: rejecting partial (untransformed) index at ingest — the "
        "ciphertext does not decrypt under the blinded basis, which is the "
        "signature of an owner upload that skipped the proxy chain (or of "
        "a dictionary-attack forgery from pk alone)");
  }
}

Query make_canary_query(const Schema& schema) {
  Query q;
  q.terms.assign(schema.original_dims(), QueryTerm::any());
  return q;
}

}  // namespace apks
