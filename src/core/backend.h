// The scheme-agnostic serving interface: one SearchBackend per
// construction (APKS, APKS+, MRQED^D), so every layer above the crypto —
// CloudServer, SearchEngine, ShardedStore, the CLI — is written once
// against store -> prepare -> match -> stats and the paper's cross-scheme
// comparison (Fig. 8(d), Table III) runs through identical serving code.
//
// A backend bundles
//   - a scheme tag (SchemeKind) that the persistent store stamps into its
//     metadata, so a store ingested under one scheme is refused — never
//     silently mis-parsed — by another;
//   - the storage codec for its encrypted indexes and query keys;
//   - the serving primitives: digest (cache key), prepare (server-side
//     pairing preprocessing), match;
//   - ingest-stage hooks: ingest_transform (the APKS+ proxy chain rides
//     here instead of being a side door) and validate_ingest (APKS+
//     rejects owner-partial, untransformed indexes before they can reach
//     the record store);
//   - the byte string an authority's IBS signature covers for this
//     scheme's queries (query_message), so the admission check is also
//     scheme-agnostic.
//
// Indexes, queries and prepared queries cross the interface as type-erased
// handles (AnyIndex / AnyQuery / AnyPrepared) tagged with their scheme;
// every backend checks the tag before downcasting and throws
// std::invalid_argument on a mismatch — type confusion is an error, not UB.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/sha256.h"
#include "pairing/pairing.h"

namespace apks {

// --- Serving error taxonomy -------------------------------------------------
// Production failures cross layer boundaries as typed errors so callers can
// route them (retry, fail over, park, shed) instead of pattern-matching
// what() strings. Every class derives from std::runtime_error, so code
// written against the old untyped throws keeps working.

enum class ErrorCode : std::uint8_t {
  kIo = 1,            // a syscall failed (disk full, EIO, ...)
  kCorrupt,           // on-disk bytes fail validation (CRC, magic, counts)
  kUnavailable,       // a dependency (proxy replica) has no live instance
  kExhausted,         // a budget ran out (proxy rate limit)
  kOverloaded,        // admission control shed the request
  kDeadlineExceeded,  // the per-query deadline expired mid-serve
  kCancelled,         // the caller's cancellation token fired
};

[[nodiscard]] std::string_view error_code_name(ErrorCode code) noexcept;

class ServingError : public std::runtime_error {
 public:
  ServingError(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

// Store I/O and corruption (src/store). `path` names the file or directory
// the failing operation touched.
class StoreError : public ServingError {
 public:
  StoreError(ErrorCode code, const std::string& what, std::string path)
      : ServingError(code, what), path_(std::move(path)) {}
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

// Admission control rejected the request before any work ran.
class Overloaded : public ServingError {
 public:
  explicit Overloaded(const std::string& what)
      : ServingError(ErrorCode::kOverloaded, what) {}
};

// The per-query deadline expired; the scan stopped at a block boundary.
class DeadlineExceeded : public ServingError {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : ServingError(ErrorCode::kDeadlineExceeded, what) {}
};

// Per-request serving limits, honoured cooperatively at scan-block (or,
// for the disk scans, per-record) boundaries — a pairing evaluation is
// never interrupted mid-flight, so overshoot is bounded by one block's
// worth of match calls. Shared by CloudServer, SearchEngine, and
// ShardedStore's streamed disk scans.
struct ServeControl {
  // Wall-clock budget for the request, from entry to results. 0 = none
  // (SearchEngine falls back to its Options::deadline_ms default).
  std::uint64_t deadline_ms = 0;
  // Cooperative cancellation token: the caller sets it, the scan notices at
  // the next boundary. May be nullptr.
  const std::atomic<bool>* cancel = nullptr;
  // When true, a deadline/cancellation returns the matches found so far
  // (metrics flag the truncation) instead of throwing DeadlineExceeded /
  // ServingError(kCancelled). SearchEngine and ShardedStore scans only;
  // CloudServer's single-query path always throws.
  bool partial_ok = false;
};

// No live replica could apply a proxy share (r_i). `share` is the share's
// position in the chain.
class ProxyUnavailable : public ServingError {
 public:
  ProxyUnavailable(std::size_t share, const std::string& what)
      : ServingError(ErrorCode::kUnavailable, what), share_(share) {}
  [[nodiscard]] std::size_t share() const noexcept { return share_; }

 private:
  std::size_t share_;
};

// On-disk/scheme tags. Values are persisted (STORE meta, shard manifests);
// never renumber.
enum class SchemeKind : std::uint8_t {
  kApks = 1,      // basic APKS (Section IV)
  kApksPlus = 2,  // query-privacy enhanced APKS+ (Section V)
  kMrqed = 3,     // MRQED^D baseline (Section VII comparison)
};

[[nodiscard]] std::string_view scheme_name(SchemeKind kind) noexcept;
// Parses "apks" / "apks+" / "mrqed"; throws std::invalid_argument otherwise.
[[nodiscard]] SchemeKind parse_scheme_kind(std::string_view name);

namespace detail {

// Shared type-erasure shell: a scheme tag plus a shared const payload. The
// phantom Tag keeps indexes, queries and prepared queries distinct types.
template <typename Tag>
class Erased {
 public:
  Erased() = default;

  [[nodiscard]] SchemeKind kind() const noexcept { return kind_; }
  [[nodiscard]] bool empty() const noexcept { return ptr_ == nullptr; }

  // Takes ownership of `value`.
  template <typename T>
  [[nodiscard]] static Erased own(SchemeKind kind, T value) {
    return Erased(kind,
                  std::static_pointer_cast<const void>(
                      std::make_shared<const T>(std::move(value))));
  }

  // Non-owning view: the caller guarantees *value outlives every use
  // (batch entry points use this to avoid copying capabilities).
  template <typename T>
  [[nodiscard]] static Erased ref(SchemeKind kind, const T* value) {
    return Erased(kind, std::shared_ptr<const void>(
                            std::shared_ptr<const void>(), value));
  }

  // Unchecked downcast — callers (the backends) verify kind() first.
  template <typename T>
  [[nodiscard]] const T& as() const {
    return *static_cast<const T*>(ptr_.get());
  }

 private:
  Erased(SchemeKind kind, std::shared_ptr<const void> ptr)
      : kind_(kind), ptr_(std::move(ptr)) {}

  SchemeKind kind_{};
  std::shared_ptr<const void> ptr_;
};

struct IndexTag;
struct QueryTag;
struct PreparedTag;

}  // namespace detail

using AnyIndex = detail::Erased<detail::IndexTag>;     // encrypted index
using AnyQuery = detail::Erased<detail::QueryTag>;     // capability / key
using AnyPrepared = detail::Erased<detail::PreparedTag>;  // preprocessed

// Cache key for server-side preprocessing; equal iff the wire-format query
// keys are byte-identical (see core/capability_digest.h for the APKS
// instance).
using QueryDigest = Sha256::Digest;

// What every backend shares with the layers above the crypto: the pairing
// (and through it the PairingOpCounts every metrics layer snapshots — the
// paper's cost unit) plus an optional deployment RNG for ingest-stage
// hooks that need randomness. The fixed-base precomputation caches
// (BasisPrecompCache) ride the scheme key structs themselves and reach the
// backend through its wrapped scheme object.
struct SchemeContext {
  const Pairing* pairing = nullptr;
  Rng* rng = nullptr;  // may be null; only ingest-stage hooks use it

  [[nodiscard]] PairingOpCounts op_counts() const {
    return pairing->op_counts();
  }
};

class SearchBackend {
 public:
  virtual ~SearchBackend() = default;

  [[nodiscard]] virtual SchemeKind kind() const noexcept = 0;
  [[nodiscard]] std::string_view name() const noexcept {
    return scheme_name(kind());
  }
  [[nodiscard]] const SchemeContext& context() const noexcept {
    return context_;
  }
  [[nodiscard]] const Pairing& pairing() const noexcept {
    return *context_.pairing;
  }

  // --- storage codec (what ShardedStore frames carry) -------------------
  [[nodiscard]] virtual std::vector<std::uint8_t> encode_index(
      const AnyIndex& index) const = 0;
  [[nodiscard]] virtual AnyIndex decode_index(
      std::span<const std::uint8_t> data) const = 0;

  // --- query codec (CLI files, authority archives) ----------------------
  [[nodiscard]] virtual std::vector<std::uint8_t> encode_query(
      const AnyQuery& query) const = 0;
  [[nodiscard]] virtual AnyQuery decode_query(
      std::span<const std::uint8_t> data) const = 0;

  // --- ingest stage -----------------------------------------------------
  // Applied by the serving layer to every index before it is stored. The
  // default is the identity; APKS+ installs the proxy transformation chain
  // here so partial indexes are rescaled in-line on their way in.
  [[nodiscard]] virtual AnyIndex ingest_transform(AnyIndex index) const {
    return index;
  }
  // Admission check after ingest_transform; throws std::invalid_argument
  // to refuse the record. APKS+ uses this to reject owner-partial
  // (untransformed) indexes — the ciphertexts a dictionary attacker can
  // forge from pk alone — before they ever reach the record store.
  virtual void validate_ingest(const AnyIndex& index) const {
    require_index(index);
  }

  // --- serving primitives ----------------------------------------------
  [[nodiscard]] virtual QueryDigest digest(const AnyQuery& query) const = 0;
  [[nodiscard]] virtual AnyPrepared prepare(const AnyQuery& query) const = 0;
  [[nodiscard]] virtual bool match(const AnyPrepared& prepared,
                                   const AnyIndex& index) const = 0;
  // Batched match over one prepared query: out[r] = match(prepared,
  // *indexes[r]). Semantically identical to the record-at-a-time loop (the
  // default); backends whose verdict is a pure per-record pairing (APKS,
  // APKS+) override it with the lane-parallel scan kernel. Backends with
  // data-dependent early exits (MRQED) keep the default.
  virtual void match_block(const AnyPrepared& prepared,
                           const AnyIndex* const* indexes, std::size_t n,
                           bool* out) const {
    for (std::size_t r = 0; r < n; ++r) {
      out[r] = match(prepared, *indexes[r]);
    }
  }

  // --- authorization ----------------------------------------------------
  // The byte string the issuing authority's IBS signature covers for this
  // scheme's queries. For the APKS family this is byte-identical to
  // capability_message (auth/authority.h): wire key bytes, then issuer.
  [[nodiscard]] virtual std::vector<std::uint8_t> query_message(
      const AnyQuery& query, const std::string& issuer) const = 0;

 protected:
  explicit SearchBackend(SchemeContext context) : context_(context) {}

  // Tag checks before downcasting; throw std::invalid_argument naming both
  // schemes ("backend 'mrqed' given an index of scheme 'apks'").
  void require_index(const AnyIndex& index) const;
  void require_query(const AnyQuery& query) const;
  void require_prepared(const AnyPrepared& prepared) const;

 private:
  SchemeContext context_;
};

}  // namespace apks
