// A stable digest of a capability's HPE key, used by the cloud server to
// key caches of server-side preprocessing (Apks::prepare output). Two
// capabilities digest equal iff their wire-format keys are byte-identical,
// so a repeated query from the same capability (the hot-key case) hits the
// cache while fresh GenCap randomness — even for the same predicate —
// produces a distinct digest.
#pragma once

#include "common/sha256.h"
#include "core/apks.h"

namespace apks {

using CapabilityDigest = Sha256::Digest;

[[nodiscard]] CapabilityDigest capability_digest(const Pairing& pairing,
                                                 const Capability& cap);

// Hash functor so a CapabilityDigest can key unordered containers. The
// digest is already uniform, so the first eight bytes suffice.
struct CapabilityDigestHash {
  [[nodiscard]] std::size_t operator()(
      const CapabilityDigest& d) const noexcept {
    std::size_t out = 0;
    for (std::size_t i = 0; i < sizeof(out); ++i) {
      out = (out << 8) | d[i];
    }
    return out;
  }
};

}  // namespace apks
