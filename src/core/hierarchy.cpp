#include "core/hierarchy.h"

#include <algorithm>
#include <stdexcept>

namespace apks {

namespace {

std::string interval_label(std::uint64_t lo, std::uint64_t hi) {
  if (lo == hi) return std::to_string(lo);
  return std::to_string(lo) + "-" + std::to_string(hi);
}

}  // namespace

AttributeHierarchy AttributeHierarchy::numeric(std::string field,
                                               std::uint64_t lo,
                                               std::uint64_t hi,
                                               std::size_t branching,
                                               std::size_t depth) {
  if (hi < lo) throw std::invalid_argument("hierarchy: hi < lo");
  if (branching < 2) throw std::invalid_argument("hierarchy: branching < 2");
  if (depth < 1) throw std::invalid_argument("hierarchy: depth < 1");
  AttributeHierarchy h;
  h.field_ = std::move(field);
  h.numeric_ = true;
  h.height_ = depth;

  Node root;
  root.label = interval_label(lo, hi);
  root.level = 1;
  root.lo = lo;
  root.hi = hi;
  h.nodes_.push_back(root);

  // Breadth-first split; intervals of width < branching get one child per
  // value (keeping the tree balanced in depth by duplicating single-value
  // nodes down to the leaf level).
  std::vector<std::size_t> frontier{0};
  for (std::size_t level = 2; level <= depth; ++level) {
    std::vector<std::size_t> next;
    for (const std::size_t parent_idx : frontier) {
      const std::uint64_t plo = h.nodes_[parent_idx].lo;
      const std::uint64_t phi = h.nodes_[parent_idx].hi;
      const std::uint64_t width = phi - plo + 1;
      const std::uint64_t parts =
          std::min<std::uint64_t>(branching, width);
      for (std::uint64_t c = 0; c < parts; ++c) {
        const std::uint64_t clo = plo + (width * c) / parts;
        const std::uint64_t chi = plo + (width * (c + 1)) / parts - 1;
        Node child;
        child.lo = clo;
        child.hi = chi;
        child.level = level;
        child.parent = parent_idx;
        child.label = interval_label(clo, chi);
        if (parts == 1) {
          // Single-value chain: disambiguate repeated labels with depth tag.
          child.label += "@" + std::to_string(level);
        }
        h.nodes_.push_back(child);
        const std::size_t child_idx = h.nodes_.size() - 1;
        h.nodes_[parent_idx].children.push_back(child_idx);
        next.push_back(child_idx);
      }
    }
    frontier = std::move(next);
  }
  h.index_labels();
  return h;
}

AttributeHierarchy AttributeHierarchy::semantic(std::string field,
                                                const Spec& root) {
  AttributeHierarchy h;
  h.field_ = std::move(field);
  h.numeric_ = false;

  // Recursive insertion, tracking depth.
  struct Frame {
    const Spec* spec;
    std::size_t parent;
    std::size_t level;
  };
  std::vector<Frame> stack{{&root, kNoParent, 1}};
  std::size_t max_depth = 0;
  std::size_t min_leaf_depth = static_cast<std::size_t>(-1);
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    Node node;
    node.label = f.spec->label;
    node.level = f.level;
    node.parent = f.parent;
    h.nodes_.push_back(node);
    const std::size_t idx = h.nodes_.size() - 1;
    if (f.parent != kNoParent) h.nodes_[f.parent].children.push_back(idx);
    max_depth = std::max(max_depth, f.level);
    if (f.spec->children.empty()) {
      min_leaf_depth = std::min(min_leaf_depth, f.level);
    }
    for (const auto& c : f.spec->children) {
      stack.push_back({&c, idx, f.level + 1});
    }
  }
  if (min_leaf_depth != max_depth) {
    throw std::invalid_argument(
        "hierarchy: semantic tree must be balanced (all leaves at one depth)");
  }
  h.height_ = max_depth;
  h.index_labels();
  return h;
}

void AttributeHierarchy::index_labels() {
  label_index_.clear();
  label_index_.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    label_index_.emplace_back(nodes_[i].label, i);
  }
  std::sort(label_index_.begin(), label_index_.end());
  for (std::size_t i = 1; i < label_index_.size(); ++i) {
    if (label_index_[i].first == label_index_[i - 1].first) {
      throw std::invalid_argument("hierarchy: duplicate label " +
                                  label_index_[i].first);
    }
  }
}

std::optional<std::size_t> AttributeHierarchy::find(
    std::string_view label) const {
  const auto it = std::lower_bound(
      label_index_.begin(), label_index_.end(), label,
      [](const auto& entry, std::string_view l) { return entry.first < l; });
  if (it == label_index_.end() || it->first != label) return std::nullopt;
  return it->second;
}

std::vector<std::string> AttributeHierarchy::path_for_leaf(
    std::string_view leaf_label) const {
  const auto idx = find(leaf_label);
  if (!idx.has_value()) {
    throw std::invalid_argument("hierarchy: unknown label '" +
                                std::string(leaf_label) + "'");
  }
  const Node* node = &nodes_[*idx];
  if (!node->children.empty()) {
    throw std::invalid_argument("hierarchy: '" + std::string(leaf_label) +
                                "' is not a leaf");
  }
  std::vector<std::string> path(height_);
  std::size_t cur = *idx;
  for (std::size_t level = height_; level-- > 0;) {
    path[level] = nodes_[cur].label;
    cur = nodes_[cur].parent;
  }
  return path;
}

std::vector<std::string> AttributeHierarchy::path_for_value(
    std::uint64_t v) const {
  if (!numeric_) {
    throw std::logic_error("hierarchy: path_for_value on semantic tree");
  }
  if (v < nodes_[0].lo || v > nodes_[0].hi) {
    throw std::invalid_argument("hierarchy: value outside domain");
  }
  std::vector<std::string> path;
  path.reserve(height_);
  std::size_t cur = 0;
  for (;;) {
    path.push_back(nodes_[cur].label);
    if (nodes_[cur].children.empty()) break;
    bool found = false;
    for (const std::size_t c : nodes_[cur].children) {
      if (v >= nodes_[c].lo && v <= nodes_[c].hi) {
        cur = c;
        found = true;
        break;
      }
    }
    if (!found) throw std::logic_error("hierarchy: broken interval tree");
  }
  return path;
}

std::vector<std::string> AttributeHierarchy::labels_at_level(
    std::size_t level) const {
  std::vector<std::string> out;
  for (const auto& n : nodes_) {
    if (n.level == level) out.push_back(n.label);
  }
  return out;
}

std::vector<std::string> AttributeHierarchy::cover_range(
    std::uint64_t lo, std::uint64_t hi, std::size_t level) const {
  if (!numeric_) {
    throw std::logic_error("hierarchy: cover_range on semantic tree");
  }
  if (level < 1 || level > height_) {
    throw std::invalid_argument("hierarchy: bad level");
  }
  std::vector<std::string> out;
  for (const auto& n : nodes_) {
    if (n.level == level && n.hi >= lo && n.lo <= hi) {
      out.push_back(n.label);
    }
  }
  return out;
}

std::vector<std::size_t> AttributeHierarchy::multi_level_cover(
    std::uint64_t lo, std::uint64_t hi, bool* exact) const {
  if (!numeric_) {
    throw std::logic_error("hierarchy: multi_level_cover on semantic tree");
  }
  if (lo > hi || lo < nodes_[0].lo || hi > nodes_[0].hi) {
    throw std::invalid_argument("hierarchy: bad range");
  }
  std::vector<std::size_t> cover;
  bool tight = true;
  // Greedy descent: take any node fully inside the range; recurse into
  // partially overlapping internal nodes; partially overlapping leaves
  // force an over-approximation.
  std::vector<std::size_t> stack{0};
  while (!stack.empty()) {
    const std::size_t idx = stack.back();
    stack.pop_back();
    const Node& node = nodes_[idx];
    if (node.hi < lo || node.lo > hi) continue;
    if (node.lo >= lo && node.hi <= hi) {
      cover.push_back(idx);
      continue;
    }
    if (node.children.empty()) {
      cover.push_back(idx);  // partial leaf: cover is not tight
      tight = false;
      continue;
    }
    for (const std::size_t c : node.children) stack.push_back(c);
  }
  if (exact != nullptr) *exact = tight;
  return cover;
}

bool AttributeHierarchy::range_is_exact(std::uint64_t lo, std::uint64_t hi,
                                        std::size_t level) const {
  if (!numeric_) return false;
  std::uint64_t cover_lo = ~std::uint64_t{0};
  std::uint64_t cover_hi = 0;
  bool any = false;
  for (const auto& n : nodes_) {
    if (n.level == level && n.hi >= lo && n.lo <= hi) {
      cover_lo = std::min(cover_lo, n.lo);
      cover_hi = std::max(cover_hi, n.hi);
      any = true;
    }
  }
  return any && cover_lo == lo && cover_hi == hi;
}

}  // namespace apks
