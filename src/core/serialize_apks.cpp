#include "core/serialize_apks.h"

#include <stdexcept>

namespace apks {
namespace {

// Smallest possible encodings, used to bound hostile count fields.
constexpr std::size_t kMinTermBytes = 1 + 4 + 8 + 8 + 4;  // empty kAny term
constexpr std::size_t kMinQueryBytes = 4;                 // zero terms

}  // namespace

void write_query(const Query& q, ByteWriter& w) {
  w.u32(static_cast<std::uint32_t>(q.terms.size()));
  for (const QueryTerm& t : q.terms) {
    w.u8(static_cast<std::uint8_t>(t.kind));
    w.u32(static_cast<std::uint32_t>(t.values.size()));
    for (const std::string& v : t.values) w.str(v);
    w.u64(t.lo);
    w.u64(t.hi);
    w.u32(static_cast<std::uint32_t>(t.level));
  }
}

Query read_query(ByteReader& r) {
  Query q;
  const std::uint32_t nterms = r.u32();
  if (nterms > r.remaining() / kMinTermBytes) {
    throw std::invalid_argument("query: term count exceeds payload");
  }
  q.terms.reserve(nterms);
  for (std::uint32_t i = 0; i < nterms; ++i) {
    QueryTerm t;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(QueryTerm::Kind::kSemantic)) {
      throw std::invalid_argument("query term: unknown kind");
    }
    t.kind = static_cast<QueryTerm::Kind>(kind);
    const std::uint32_t nvalues = r.u32();
    if (nvalues > r.remaining() / 4) {
      throw std::invalid_argument("query term: value count exceeds payload");
    }
    t.values.reserve(nvalues);
    for (std::uint32_t j = 0; j < nvalues; ++j) t.values.push_back(r.str());
    t.lo = r.u64();
    t.hi = r.u64();
    t.level = r.u32();
    q.terms.push_back(std::move(t));
  }
  return q;
}

std::vector<std::uint8_t> serialize_index(const Pairing& e,
                                          const EncryptedIndex& index) {
  ByteWriter w;
  w.u8(kIndexCodecVersion);
  w.raw(serialize_ciphertext(e, index.ct));
  return w.take();
}

EncryptedIndex deserialize_index(const Pairing& e,
                                 std::span<const std::uint8_t> data) {
  if (data.empty()) {
    throw std::invalid_argument("index: empty buffer");
  }
  if (data[0] != kIndexCodecVersion) {
    throw std::invalid_argument("index: unsupported codec version");
  }
  EncryptedIndex index;
  index.ct = deserialize_ciphertext(e, data.subspan(1));
  return index;
}

std::vector<std::uint8_t> serialize_capability(const Pairing& e,
                                               const Capability& cap) {
  ByteWriter w;
  w.u8(kCapabilityCodecVersion);
  w.bytes(serialize_key(e, cap.key));
  w.u32(static_cast<std::uint32_t>(cap.history.size()));
  for (const Query& q : cap.history) write_query(q, w);
  return w.take();
}

Capability deserialize_capability(const Pairing& e,
                                  std::span<const std::uint8_t> data) {
  ByteReader r(data);
  if (r.u8() != kCapabilityCodecVersion) {
    throw std::invalid_argument("capability: unsupported codec version");
  }
  Capability cap;
  cap.key = deserialize_key(e, r.bytes());
  const std::uint32_t nqueries = r.u32();
  if (nqueries > r.remaining() / kMinQueryBytes) {
    throw std::invalid_argument("capability: history count exceeds payload");
  }
  cap.history.reserve(nqueries);
  for (std::uint32_t i = 0; i < nqueries; ++i) {
    cap.history.push_back(read_query(r));
  }
  if (!r.done()) {
    throw std::invalid_argument("capability: trailing bytes");
  }
  return cap;
}

}  // namespace apks
