#include "core/backend.h"

#include <stdexcept>

namespace apks {
namespace {

[[noreturn]] void throw_kind_mismatch(const SearchBackend& backend,
                                      const char* what, SchemeKind got) {
  throw std::invalid_argument("backend '" + std::string(backend.name()) +
                              "' given " + what + " of scheme '" +
                              std::string(scheme_name(got)) + "'");
}

}  // namespace

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kIo: return "io";
    case ErrorCode::kCorrupt: return "corrupt";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kExhausted: return "exhausted";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::kCancelled: return "cancelled";
  }
  return "?";
}

std::string_view scheme_name(SchemeKind kind) noexcept {
  switch (kind) {
    case SchemeKind::kApks: return "apks";
    case SchemeKind::kApksPlus: return "apks+";
    case SchemeKind::kMrqed: return "mrqed";
  }
  return "?";
}

SchemeKind parse_scheme_kind(std::string_view name) {
  if (name == "apks") return SchemeKind::kApks;
  if (name == "apks+" || name == "apksplus") return SchemeKind::kApksPlus;
  if (name == "mrqed") return SchemeKind::kMrqed;
  throw std::invalid_argument("unknown scheme '" + std::string(name) +
                              "' (use apks, apks+ or mrqed)");
}

void SearchBackend::require_index(const AnyIndex& index) const {
  if (index.empty()) {
    throw std::invalid_argument("backend '" + std::string(name()) +
                                "' given an empty index handle");
  }
  if (index.kind() != kind()) {
    throw_kind_mismatch(*this, "an index", index.kind());
  }
}

void SearchBackend::require_query(const AnyQuery& query) const {
  if (query.empty()) {
    throw std::invalid_argument("backend '" + std::string(name()) +
                                "' given an empty query handle");
  }
  if (query.kind() != kind()) {
    throw_kind_mismatch(*this, "a query", query.kind());
  }
}

void SearchBackend::require_prepared(const AnyPrepared& prepared) const {
  if (prepared.empty()) {
    throw std::invalid_argument("backend '" + std::string(name()) +
                                "' given an empty prepared-query handle");
  }
  if (prepared.kind() != kind()) {
    throw_kind_mismatch(*this, "a prepared query", prepared.kind());
  }
}

}  // namespace apks
