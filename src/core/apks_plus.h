// APKS+ — the query-privacy enhanced solution (paper Section V).
//
// Owners produce *partial* encrypted indexes with the public key; one or
// more proxy servers holding multiplicative shares of r^{-1} transform them
// before they reach the cloud. Capabilities are issued on the blinded basis
// r*B*, so ciphertexts forged from pk alone never match — defeating the
// dictionary attack that breaks query privacy in the basic solution.
#pragma once

#include "core/apks.h"
#include "hpe/hpe_plus.h"

namespace apks {

struct ApksPlusSetupResult {
  ApksPublicKey pk;
  ApksMasterKey msk;  // blinded: bstar holds r * B*
  Fq r{};             // TA-held transformation secret
};

class ApksPlus : public Apks {
 public:
  ApksPlus(const Pairing& pairing, Schema schema, HpeOptions opts = {})
      : Apks(pairing, std::move(schema), opts),
        plus_(pairing, schema_.vector_length(), opts) {}

  [[nodiscard]] ApksPlusSetupResult setup_plus(Rng& rng) const {
    auto s = plus_.setup(rng);
    return {{std::move(s.pk)}, {std::move(s.msk)}, s.r};
  }

  // Owner-side partial index generation (identical cost to basic GenIndex).
  [[nodiscard]] EncryptedIndex partial_gen_index(const ApksPublicKey& pk,
                                                 const PlainIndex& index,
                                                 Rng& rng) const {
    return gen_index(pk, index, rng);
  }

  // Proxy-side transformation with the proxy's share of r^{-1}.
  [[nodiscard]] EncryptedIndex proxy_transform(const Fq& inv_share,
                                               const EncryptedIndex& e) const {
    return {plus_.proxy_transform(inv_share, e.ct)};
  }

  // Splits r into multiplicative proxy shares (each proxy later applies the
  // inverse of its share).
  [[nodiscard]] std::vector<Fq> split_secret(const Fq& r, std::size_t proxies,
                                             Rng& rng) const {
    return HpePlus::split_secret(hpe_.pairing().fq(), r, proxies, rng);
  }

  // GenCap / Search / DelegateCap are inherited unchanged: the blinding
  // lives entirely inside the master key and the proxy transformation.

 private:
  HpePlus plus_;
};

}  // namespace apks
