// APKS — Authorized Private Keyword Search (the paper's basic solution,
// Section IV, Fig. 5).
//
// Setup       : HPE setup over n = sum_i d_i + 1 dimensional vectors.
// GenIndex    : convert + hash + psi-encode an owner's index, HPE-encrypt a
//               public match flag under it.
// GenCap      : convert + hash + phi-encode a query, issue the HPE key.
// Search      : HPE-decrypt; match iff the flag reappears.
// DelegateCap : HPE delegation — the child capability answers Q1 AND Q2.
#pragma once

#include "core/encoding.h"
#include "hpe/hpe.h"

namespace apks {

struct ApksPublicKey {
  HpePublicKey hpe;
};

struct ApksMasterKey {
  HpeMasterKey hpe;
};

struct EncryptedIndex {
  HpeCiphertext ct;
};

struct Capability {
  HpeKey key;
  // The conjunction of queries this capability answers (level i entry is
  // the i-th delegated restriction). Kept by the issuing authority and the
  // holder for bookkeeping/eligibility checks; the cloud server only needs
  // `key`.
  std::vector<Query> history;
};

// A capability with the server-side pairing preprocessing applied: the
// compiled scan kernel owns the preprocessed line tables (in both scalar
// and lane-engine form), so a prepared capability can serve records one at
// a time (`search_prepared`) or in SIMD blocks (`search_prepared_block`).
struct PreparedCapability {
  std::shared_ptr<const BlockMultiPairing> kernel;

  [[nodiscard]] std::span<const PreprocessedPairing> dec() const noexcept {
    return kernel->pres();
  }
};

class Apks {
 public:
  Apks(const Pairing& pairing, Schema schema, HpeOptions opts = {})
      : schema_(std::move(schema)),
        hpe_(pairing, schema_.vector_length(), opts) {}

  [[nodiscard]] const Schema& schema() const noexcept { return schema_; }
  [[nodiscard]] const Hpe& hpe() const noexcept { return hpe_; }
  // n of the paper (vector length, minus nothing: includes the +1 slot).
  [[nodiscard]] std::size_t n() const noexcept {
    return schema_.vector_length();
  }

  void setup(Rng& rng, ApksPublicKey& pk, ApksMasterKey& msk) const {
    hpe_.setup(rng, pk.hpe, msk.hpe);
  }

  // Force the lazy fixed-base table builds now, so the first gen_index /
  // gen_cap doesn't pay them (no-ops unless the engine is kPrecomputed).
  void warm_precomp(const ApksPublicKey& pk) const {
    hpe_.warm_precomp(pk.hpe);
  }
  void warm_precomp(const ApksMasterKey& msk) const {
    hpe_.warm_precomp(msk.hpe);
  }

  [[nodiscard]] EncryptedIndex gen_index(const ApksPublicKey& pk,
                                         const PlainIndex& index,
                                         Rng& rng) const;

  [[nodiscard]] Capability gen_cap(const ApksMasterKey& msk,
                                   const Query& query, Rng& rng) const;

  [[nodiscard]] bool search(const Capability& cap,
                            const EncryptedIndex& index) const;

  // Server-side: preprocess once, then search many indexes cheaper.
  [[nodiscard]] PreparedCapability prepare(const Capability& cap) const;
  [[nodiscard]] bool search_prepared(const PreparedCapability& cap,
                                     const EncryptedIndex& index) const;
  // Block variant: out[r] = search_prepared(cap, *indexes[r]), with the
  // pairing work running lane-parallel through the capability's kernel.
  void search_prepared_block(const PreparedCapability& cap,
                             const EncryptedIndex* const* indexes,
                             std::size_t n, bool* out) const;

  [[nodiscard]] Capability delegate_cap(const Capability& parent,
                                        const Query& restriction,
                                        Rng& rng) const;

  // Paper-faithful cost variants (see Hpe::gen_key_naive): identical output
  // distribution, per-component exponentiation counts matching the paper's
  // Fig. 8(c) measurements. The default gen_cap/delegate_cap share the
  // predicate-sum across components and are ~an order of magnitude faster.
  [[nodiscard]] Capability gen_cap_naive(const ApksMasterKey& msk,
                                         const Query& query, Rng& rng) const;
  [[nodiscard]] Capability delegate_cap_naive(const Capability& parent,
                                              const Query& restriction,
                                              Rng& rng) const;

  // The public GT flag encrypted into every index; Search tests for it.
  // (Stands in for the paper's Msg||0^lambda padding check — see DESIGN.md.)
  [[nodiscard]] GtEl match_flag() const;

 protected:
  [[nodiscard]] std::vector<Fq> encode_index_vector(
      const PlainIndex& index) const;
  [[nodiscard]] std::vector<Fq> encode_query_vector(const Query& query,
                                                    Rng& rng) const;

  Schema schema_;
  Hpe hpe_;
};

}  // namespace apks
