// Index/query schema and the conversion step of the paper's Fig. 4:
// hierarchical fields expand into k sub-fields carrying the root-to-leaf
// path; queries select one level per hierarchical dimension and become
// bounded-OR CNF over the converted fields.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/hierarchy.h"

namespace apks {

// One original dimension (attribute) of the searchable index.
struct Dimension {
  std::string name;
  // Null for flat fields (e.g. "sex", "provider"); non-null fields expand
  // into hierarchy->height() sub-fields.
  std::shared_ptr<const AttributeHierarchy> hierarchy;
  // d_i: maximum number of OR terms per converted sub-field of this
  // dimension (the paper's d).
  std::size_t max_or = 1;
};

// A converted (sub-)field of the index table.
struct ConvertedField {
  std::string name;       // "age#2" or "sex"
  std::size_t degree;     // d_i — OR budget == polynomial degree
  std::size_t orig_dim;   // index into Schema dimensions
  std::size_t level;      // hierarchy level (1-based); 0 for flat fields
};

// An owner's plaintext index row: one value per original dimension.
// Values of numeric hierarchical dimensions are decimal strings.
struct PlainIndex {
  std::vector<std::string> values;
};

// One query term over an original dimension.
struct QueryTerm {
  enum class Kind {
    kAny,       // "don't care" (Z_i = *)
    kEquality,  // Z_i = value (leaf granularity)
    kSubset,    // Z_i in {values} (<= d leaf values, flat fields)
    kRange,     // lo <= Z_i <= hi at a chosen hierarchy level (numeric)
    kSemantic,  // Z_i under one of {values} (internal nodes, one level)
  };
  Kind kind = Kind::kAny;
  std::vector<std::string> values;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::size_t level = 0;  // for kRange: hierarchy level of the simple ranges

  [[nodiscard]] static QueryTerm any() { return {}; }
  [[nodiscard]] static QueryTerm equals(std::string v);
  [[nodiscard]] static QueryTerm subset(std::vector<std::string> vs);
  [[nodiscard]] static QueryTerm range(std::uint64_t lo, std::uint64_t hi,
                                       std::size_t level);
  [[nodiscard]] static QueryTerm semantic(std::vector<std::string> nodes);
};

// A multi-dimensional keyword query: conjunction of per-dimension terms.
struct Query {
  std::vector<QueryTerm> terms;
};

// Converted index row: one keyword string per converted field.
struct ConvertedIndex {
  std::vector<std::string> keywords;
};

// Converted query (CNF): per converted field, either "don't care" (empty)
// or an OR-list of keyword strings, length <= that field's degree.
struct ConvertedQuery {
  std::vector<std::vector<std::string>> per_field;
};

class Schema {
 public:
  explicit Schema(std::vector<Dimension> dims);

  [[nodiscard]] std::size_t original_dims() const noexcept {
    return dims_.size();
  }
  [[nodiscard]] const Dimension& dim(std::size_t i) const {
    return dims_.at(i);
  }
  [[nodiscard]] const std::vector<ConvertedField>& fields() const noexcept {
    return fields_;
  }
  // m' of the paper.
  [[nodiscard]] std::size_t converted_dims() const noexcept {
    return fields_.size();
  }
  // n = sum_i d_i + 1 — the HPE vector length.
  [[nodiscard]] std::size_t vector_length() const noexcept { return n_; }

  // Index conversion (Fig. 4a): expand hierarchical values to their paths.
  [[nodiscard]] ConvertedIndex convert_index(const PlainIndex& index) const;

  // Query conversion (Fig. 4b). Validates that every OR list fits the
  // field's degree budget and that levels/kinds match the dimension type;
  // throws std::invalid_argument otherwise.
  [[nodiscard]] ConvertedQuery convert_query(const Query& query) const;

  // True when `index` satisfies `query` in plaintext — the reference
  // semantics the encrypted search must reproduce (used by tests/benches).
  [[nodiscard]] bool matches_plain(const PlainIndex& index,
                                   const Query& query) const;

  // True when a single attribute value satisfies a term over dimension
  // `dim`. This is what LTAs use for attribute-based eligibility checks
  // (Section III: a user may only request queries over keyword sets they
  // possess or are eligible for).
  [[nodiscard]] bool term_matches(std::size_t dim, const std::string& value,
                                  const QueryTerm& term) const;

  // Namespaced keyword for a converted field value ("age#2:31-60").
  [[nodiscard]] static std::string keyword(const ConvertedField& field,
                                           std::string_view value);

 private:
  std::vector<Dimension> dims_;
  std::vector<ConvertedField> fields_;
  std::vector<std::size_t> first_field_;  // first converted field per dim
  std::size_t n_ = 0;
};

}  // namespace apks
