#include "core/capability_digest.h"

#include "hpe/serialize.h"

namespace apks {

CapabilityDigest capability_digest(const Pairing& pairing,
                                   const Capability& cap) {
  return Sha256::hash(serialize_key(pairing, cap.key));
}

}  // namespace apks
