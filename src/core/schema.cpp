#include "core/schema.h"

#include <algorithm>
#include <charconv>
#include <stdexcept>

namespace apks {

QueryTerm QueryTerm::equals(std::string v) {
  QueryTerm t;
  t.kind = Kind::kEquality;
  t.values.push_back(std::move(v));
  return t;
}

QueryTerm QueryTerm::subset(std::vector<std::string> vs) {
  QueryTerm t;
  t.kind = Kind::kSubset;
  t.values = std::move(vs);
  return t;
}

QueryTerm QueryTerm::range(std::uint64_t lo, std::uint64_t hi,
                           std::size_t level) {
  QueryTerm t;
  t.kind = Kind::kRange;
  t.lo = lo;
  t.hi = hi;
  t.level = level;
  return t;
}

QueryTerm QueryTerm::semantic(std::vector<std::string> nodes) {
  QueryTerm t;
  t.kind = Kind::kSemantic;
  t.values = std::move(nodes);
  return t;
}

namespace {

std::uint64_t parse_numeric(const std::string& s, const std::string& dim) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::invalid_argument("Schema: dimension '" + dim +
                                "' expects a numeric value, got '" + s + "'");
  }
  return v;
}

}  // namespace

Schema::Schema(std::vector<Dimension> dims) : dims_(std::move(dims)) {
  if (dims_.empty()) throw std::invalid_argument("Schema: no dimensions");
  first_field_.reserve(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const auto& d = dims_[i];
    if (d.max_or == 0) {
      throw std::invalid_argument("Schema: max_or must be >= 1");
    }
    first_field_.push_back(fields_.size());
    if (d.hierarchy == nullptr) {
      fields_.push_back({d.name, d.max_or, i, 0});
    } else {
      for (std::size_t level = 1; level <= d.hierarchy->height(); ++level) {
        fields_.push_back({d.name + "#" + std::to_string(level), d.max_or, i,
                           level});
      }
    }
  }
  n_ = 1;
  for (const auto& f : fields_) n_ += f.degree;
}

std::string Schema::keyword(const ConvertedField& field,
                            std::string_view value) {
  return field.name + ":" + std::string(value);
}

ConvertedIndex Schema::convert_index(const PlainIndex& index) const {
  if (index.values.size() != dims_.size()) {
    throw std::invalid_argument("Schema: index arity mismatch");
  }
  ConvertedIndex out;
  out.keywords.reserve(fields_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const auto& d = dims_[i];
    const auto& value = index.values[i];
    if (d.hierarchy == nullptr) {
      out.keywords.push_back(value);
      continue;
    }
    const std::vector<std::string> path =
        d.hierarchy->is_numeric()
            ? d.hierarchy->path_for_value(parse_numeric(value, d.name))
            : d.hierarchy->path_for_leaf(value);
    for (auto& label : path) out.keywords.push_back(label);
  }
  return out;
}

ConvertedQuery Schema::convert_query(const Query& query) const {
  if (query.terms.size() != dims_.size()) {
    throw std::invalid_argument("Schema: query arity mismatch");
  }
  ConvertedQuery out;
  out.per_field.resize(fields_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const auto& d = dims_[i];
    const auto& term = query.terms[i];
    const std::size_t base = first_field_[i];
    using Kind = QueryTerm::Kind;
    switch (term.kind) {
      case Kind::kAny:
        break;  // all sub-fields stay "don't care"
      case Kind::kEquality:
      case Kind::kSubset: {
        if (term.values.empty() || term.values.size() > d.max_or) {
          throw std::invalid_argument("Schema: OR budget exceeded on '" +
                                      d.name + "'");
        }
        if (d.hierarchy == nullptr) {
          out.per_field[base] = term.values;
        } else {
          // Leaf-granularity constraint: target the deepest sub-field.
          const std::size_t leaf_field = base + d.hierarchy->height() - 1;
          std::vector<std::string> leaves;
          for (const auto& v : term.values) {
            // Normalize numeric values to their leaf label.
            if (d.hierarchy->is_numeric()) {
              leaves.push_back(d.hierarchy
                                   ->path_for_value(parse_numeric(v, d.name))
                                   .back());
            } else {
              leaves.push_back(d.hierarchy->path_for_leaf(v).back());
            }
          }
          out.per_field[leaf_field] = std::move(leaves);
        }
        break;
      }
      case Kind::kRange: {
        if (d.hierarchy == nullptr || !d.hierarchy->is_numeric()) {
          throw std::invalid_argument(
              "Schema: range query needs a numeric hierarchy on '" + d.name +
              "'");
        }
        const auto cover =
            d.hierarchy->cover_range(term.lo, term.hi, term.level);
        if (cover.empty()) {
          throw std::invalid_argument("Schema: empty range on '" + d.name +
                                      "'");
        }
        if (cover.size() > d.max_or) {
          throw std::invalid_argument(
              "Schema: range needs " + std::to_string(cover.size()) +
              " simple ranges, exceeding d=" + std::to_string(d.max_or) +
              " on '" + d.name + "' (choose a coarser level)");
        }
        out.per_field[base + term.level - 1] = cover;
        break;
      }
      case Kind::kSemantic: {
        if (d.hierarchy == nullptr) {
          throw std::invalid_argument(
              "Schema: semantic query needs a hierarchy on '" + d.name + "'");
        }
        if (term.values.empty() || term.values.size() > d.max_or) {
          throw std::invalid_argument("Schema: OR budget exceeded on '" +
                                      d.name + "'");
        }
        std::size_t level = 0;
        for (const auto& v : term.values) {
          const auto idx = d.hierarchy->find(v);
          if (!idx.has_value()) {
            throw std::invalid_argument("Schema: unknown node '" + v +
                                        "' in '" + d.name + "'");
          }
          const std::size_t node_level = d.hierarchy->node(*idx).level;
          if (level == 0) {
            level = node_level;
          } else if (level != node_level) {
            throw std::invalid_argument(
                "Schema: semantic OR terms must share one level on '" +
                d.name + "'");
          }
        }
        out.per_field[base + level - 1] = term.values;
        break;
      }
    }
  }
  return out;
}

bool Schema::matches_plain(const PlainIndex& index, const Query& query) const {
  const ConvertedIndex ci = convert_index(index);
  const ConvertedQuery cq = convert_query(query);
  for (std::size_t f = 0; f < fields_.size(); ++f) {
    if (cq.per_field[f].empty()) continue;  // don't care
    const auto& allowed = cq.per_field[f];
    if (std::find(allowed.begin(), allowed.end(), ci.keywords[f]) ==
        allowed.end()) {
      return false;
    }
  }
  return true;
}

bool Schema::term_matches(std::size_t dim, const std::string& value,
                          const QueryTerm& term) const {
  if (dim >= dims_.size()) {
    throw std::invalid_argument("Schema::term_matches: bad dimension");
  }
  if (term.kind == QueryTerm::Kind::kAny) return true;
  // Evaluate via the converted forms of a single-dimension probe: build a
  // query that is "any" everywhere except `dim` and an index row whose other
  // values are irrelevant — instead of synthesizing a full row, convert just
  // this dimension's value and term.
  const auto& d = dims_[dim];
  // Converted labels of the value across this dimension's sub-fields.
  std::vector<std::string> labels;
  if (d.hierarchy == nullptr) {
    labels.push_back(value);
  } else if (d.hierarchy->is_numeric()) {
    labels = d.hierarchy->path_for_value(parse_numeric(value, d.name));
  } else {
    labels = d.hierarchy->path_for_leaf(value);
  }
  // Converted term: reuse convert_query on a minimal probe query.
  Query probe;
  probe.terms.assign(dims_.size(), QueryTerm::any());
  probe.terms[dim] = term;
  const ConvertedQuery cq = convert_query(probe);
  const std::size_t base = first_field_[dim];
  for (std::size_t l = 0; l < labels.size(); ++l) {
    const auto& allowed = cq.per_field[base + l];
    if (allowed.empty()) continue;
    if (std::find(allowed.begin(), allowed.end(), labels[l]) ==
        allowed.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace apks
