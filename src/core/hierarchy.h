// Attribute hierarchies (paper Section IV-C, Fig. 3).
//
// A hierarchy over a keyword field is a balanced tree: each internal node is
// a "simple range" (numeric interval or semantic category) that is the union
// of its children. Level 1 is the root; leaves sit at level k (the
// "expansion factor"). Index conversion publishes the whole root-to-leaf
// path of a value; query conversion picks up to d same-level nodes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace apks {

class AttributeHierarchy {
 public:
  struct Node {
    std::string label;
    std::size_t level = 0;            // 1 = root
    std::size_t parent = kNoParent;   // index into nodes_
    std::vector<std::size_t> children;
    // Numeric coverage [lo, hi] (inclusive); unused for semantic trees.
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
  };
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  // Balanced numeric hierarchy over the integer domain [lo, hi]: `depth`
  // levels, each internal node splitting its interval into `branching`
  // near-equal children. Leaves are the finest simple ranges (for
  // branching^(depth-1) >= domain size, leaves are single values).
  [[nodiscard]] static AttributeHierarchy numeric(std::string field,
                                                  std::uint64_t lo,
                                                  std::uint64_t hi,
                                                  std::size_t branching,
                                                  std::size_t depth);

  // Semantic hierarchy from a nested spec, e.g.
  //   {"MA", {{"East MA", {{"Boston", {}}, {"Worcester", {}}}}, ...}}.
  struct Spec {
    std::string label;
    std::vector<Spec> children;
  };
  [[nodiscard]] static AttributeHierarchy semantic(std::string field,
                                                   const Spec& root);

  [[nodiscard]] const std::string& field() const noexcept { return field_; }
  // Height k: every root-to-leaf path has exactly k nodes (balanced).
  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const Node& node(std::size_t idx) const {
    return nodes_.at(idx);
  }

  // Finds a node by label; labels are unique within a hierarchy.
  [[nodiscard]] std::optional<std::size_t> find(std::string_view label) const;

  // Root-to-leaf path labels (size == height()) for a leaf label.
  // Throws std::invalid_argument for unknown or non-leaf labels.
  [[nodiscard]] std::vector<std::string> path_for_leaf(
      std::string_view leaf_label) const;

  // Numeric: path for the leaf whose interval contains v.
  [[nodiscard]] std::vector<std::string> path_for_value(std::uint64_t v) const;

  // All labels at a level (the "level-l attribute" T_l(Z) of the paper).
  [[nodiscard]] std::vector<std::string> labels_at_level(
      std::size_t level) const;

  // Numeric: the minimal set of level-`level` nodes covering [lo, hi].
  // Returns labels in domain order. Nodes partially overlapping the range
  // are included (the paper's simple-range queries align to node
  // boundaries; callers pick a level where the range is exactly
  // representable or accept the coarser cover).
  [[nodiscard]] std::vector<std::string> cover_range(std::uint64_t lo,
                                                     std::uint64_t hi,
                                                     std::size_t level) const;

  // True when [lo, hi] is exactly the union of some level-`level` nodes.
  [[nodiscard]] bool range_is_exact(std::uint64_t lo, std::uint64_t hi,
                                    std::size_t level) const;

  // Minimal exact cover of [lo, hi] using nodes from *any* level (the
  // MRQED-style decomposition the paper's Section IV declines to use: the
  // resulting nodes span several levels, so expressing them in one APKS
  // query needs an OR term in every touched sub-field and the OR budget
  // explodes — see bench/ablation_range_cover). `exact` reports whether the
  // cover is tight; when the tree's leaves are coarser than the range
  // endpoints the cover over-approximates at leaf granularity.
  [[nodiscard]] std::vector<std::size_t> multi_level_cover(
      std::uint64_t lo, std::uint64_t hi, bool* exact = nullptr) const;

  [[nodiscard]] bool is_numeric() const noexcept { return numeric_; }

 private:
  AttributeHierarchy() = default;
  void index_labels();

  std::string field_;
  std::vector<Node> nodes_;  // nodes_[0] is the root
  std::size_t height_ = 0;
  bool numeric_ = false;
  std::vector<std::pair<std::string, std::size_t>> label_index_;  // sorted
};

}  // namespace apks
