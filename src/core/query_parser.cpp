#include "core/query_parser.h"

#include <charconv>
#include <stdexcept>

namespace apks {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

[[noreturn]] void fail(const std::string& what, std::string_view term) {
  throw std::invalid_argument("query parse error: " + what + " in '" +
                              std::string(term) + "'");
}

std::uint64_t parse_u64(std::string_view s, std::string_view term) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    fail("expected a number, got '" + std::string(s) + "'", term);
  }
  return v;
}

// Finds the dimension index whose name is the longest prefix of `term`
// followed by an operator. Returns the operator position.
std::size_t find_dim(const Schema& schema, std::string_view term,
                     std::size_t& op_pos) {
  // Operators: '=', " in ", ':', " under ".
  std::size_t best = schema.original_dims();
  std::size_t best_len = 0;
  for (std::size_t i = 0; i < schema.original_dims(); ++i) {
    const auto& name = schema.dim(i).name;
    if (term.size() > name.size() &&
        term.substr(0, name.size()) == name &&
        name.size() > best_len) {
      const char next = term[name.size()];
      if (next == ' ' || next == '=' || next == ':') {
        best = i;
        best_len = name.size();
      }
    }
  }
  if (best == schema.original_dims()) {
    fail("unknown dimension", term);
  }
  op_pos = best_len;
  return best;
}

}  // namespace

Query parse_query(const Schema& schema, std::string_view text) {
  Query q;
  q.terms.assign(schema.original_dims(), QueryTerm::any());
  std::vector<bool> seen(schema.original_dims(), false);

  for (std::string_view raw : split(text, ';')) {
    const std::string_view term = trim(raw);
    if (term.empty()) continue;
    std::size_t op_pos = 0;
    const std::size_t dim = find_dim(schema, term, op_pos);
    if (seen[dim]) fail("duplicate dimension '" + schema.dim(dim).name + "'",
                        term);
    seen[dim] = true;
    std::string_view rest = trim(term.substr(op_pos));

    if (rest.size() >= 1 && rest[0] == '=') {
      const std::string_view value = trim(rest.substr(1));
      if (value.empty()) fail("missing value after '='", term);
      if (value == "*") continue;  // explicit don't-care
      q.terms[dim] = QueryTerm::equals(std::string(value));
    } else if (rest.size() >= 3 && rest.substr(0, 3) == "in ") {
      std::vector<std::string> values;
      for (const auto& v : split(rest.substr(3), ',')) {
        const auto t = trim(v);
        if (t.empty()) fail("empty value in subset", term);
        values.emplace_back(t);
      }
      q.terms[dim] = QueryTerm::subset(std::move(values));
    } else if (rest.size() >= 6 && rest.substr(0, 6) == "under ") {
      std::vector<std::string> nodes;
      for (const auto& v : split(rest.substr(6), ',')) {
        const auto t = trim(v);
        if (t.empty()) fail("empty node in semantic range", term);
        nodes.emplace_back(t);
      }
      q.terms[dim] = QueryTerm::semantic(std::move(nodes));
    } else if (rest.size() >= 1 && rest[0] == ':') {
      // "lo-hi@level" (level optional: defaults to the hierarchy height).
      std::string_view body = trim(rest.substr(1));
      std::size_t level = 0;
      if (const std::size_t at = body.rfind('@'); at != std::string_view::npos) {
        level = parse_u64(trim(body.substr(at + 1)), term);
        body = trim(body.substr(0, at));
      }
      const std::size_t dash = body.find('-');
      if (dash == std::string_view::npos) {
        fail("range must look like lo-hi[@level]", term);
      }
      const std::uint64_t lo = parse_u64(trim(body.substr(0, dash)), term);
      const std::uint64_t hi = parse_u64(trim(body.substr(dash + 1)), term);
      if (level == 0) {
        const auto& h = schema.dim(dim).hierarchy;
        if (h == nullptr) fail("range on a flat dimension", term);
        level = h->height();
      }
      q.terms[dim] = QueryTerm::range(lo, hi, level);
    } else {
      fail("expected '=', ':', 'in' or 'under'", term);
    }
  }
  return q;
}

std::string format_query(const Schema& schema, const Query& query) {
  if (query.terms.size() != schema.original_dims()) {
    throw std::invalid_argument("format_query: arity mismatch");
  }
  std::string out;
  for (std::size_t i = 0; i < query.terms.size(); ++i) {
    const auto& term = query.terms[i];
    if (term.kind == QueryTerm::Kind::kAny) continue;
    if (!out.empty()) out += "; ";
    out += schema.dim(i).name;
    switch (term.kind) {
      case QueryTerm::Kind::kEquality:
        out += " = " + term.values.front();
        break;
      case QueryTerm::Kind::kSubset:
      case QueryTerm::Kind::kSemantic: {
        out += term.kind == QueryTerm::Kind::kSubset ? " in " : " under ";
        for (std::size_t j = 0; j < term.values.size(); ++j) {
          if (j != 0) out += ", ";
          out += term.values[j];
        }
        break;
      }
      case QueryTerm::Kind::kRange:
        out += " : " + std::to_string(term.lo) + "-" + std::to_string(term.hi) +
               " @ " + std::to_string(term.level);
        break;
      case QueryTerm::Kind::kAny:
        break;
    }
  }
  return out;
}

PlainIndex parse_index(const Schema& schema, std::string_view text) {
  PlainIndex idx;
  for (const auto& part : split(text, ',')) {
    idx.values.emplace_back(trim(part));
  }
  if (idx.values.size() != schema.original_dims()) {
    throw std::invalid_argument(
        "index parse error: expected " +
        std::to_string(schema.original_dims()) + " values, got " +
        std::to_string(idx.values.size()));
  }
  return idx;
}

}  // namespace apks
