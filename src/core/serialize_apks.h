// Versioned wire formats for APKS-level objects, layered on the HPE
// encodings of src/hpe/serialize.h.
//
// The HPE codecs cover the raw cryptographic objects (ciphertexts, keys);
// these add the scheme-level wrappers the storage engine and the authority
// protocol ship around: an owner's EncryptedIndex (what the cloud persists
// in src/store/ segment files) and a Capability including its query
// history (what an issuing authority archives — the cloud-transit form
// with the IBS signature is serialize_signed_capability in
// auth/authority.h). Every format opens with a one-byte codec version so
// on-disk stores survive future layout changes.
//
// All deserializers validate counts against the bytes actually present
// (hostile length fields must not drive allocations) and throw
// std::invalid_argument / std::out_of_range on malformed input — never UB.
#pragma once

#include "core/apks.h"
#include "hpe/serialize.h"

namespace apks {

inline constexpr std::uint8_t kIndexCodecVersion = 1;
inline constexpr std::uint8_t kCapabilityCodecVersion = 1;

[[nodiscard]] std::vector<std::uint8_t> serialize_index(
    const Pairing& e, const EncryptedIndex& index);
[[nodiscard]] EncryptedIndex deserialize_index(
    const Pairing& e, std::span<const std::uint8_t> data);

// Capability with its full delegation history (one Query per level).
[[nodiscard]] std::vector<std::uint8_t> serialize_capability(
    const Pairing& e, const Capability& cap);
[[nodiscard]] Capability deserialize_capability(
    const Pairing& e, std::span<const std::uint8_t> data);

// Query/term codecs (shared by serialize_capability; exposed for tests and
// for authorities that archive query audit logs).
void write_query(const Query& q, ByteWriter& w);
[[nodiscard]] Query read_query(ByteReader& r);

}  // namespace apks
