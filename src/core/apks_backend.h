// SearchBackend adapters for the APKS family.
//
// ApksBackend serves the basic scheme (Section IV) — its ingest hooks are
// the identity, matching the paper's model where owners upload complete
// indexes directly.
//
// ApksPlusBackend serves the query-privacy enhanced APKS+ (Section V):
//   - an optional *ingest stage* applies the proxy transformation chain to
//     every index on its way into the store (cloud/proxy.h provides the
//     ProxyPipeline adapter), so partial indexes are rescaled in-line
//     instead of through a separate side-door code path;
//   - an optional *ingest canary* — an all-wildcard capability issued on
//     the blinded basis r*B* — powers validate_ingest: its zero predicate
//     vector decrypts every honestly-transformed ciphertext, while an
//     owner-partial (untransformed) index, i.e. exactly the ciphertexts a
//     dictionary attacker can forge from pk alone, fails the decryption
//     and is refused before it can reach the record store.
#pragma once

#include <functional>

#include "core/apks_plus.h"
#include "core/backend.h"

namespace apks {

class ApksBackend : public SearchBackend {
 public:
  explicit ApksBackend(const Apks& scheme, Rng* rng = nullptr)
      : ApksBackend(SchemeKind::kApks, scheme, rng) {}

  [[nodiscard]] SchemeKind kind() const noexcept override { return kind_; }
  [[nodiscard]] const Apks& scheme() const noexcept { return *scheme_; }

  // Typed-to-erased bridges for the legacy APKS-typed serving API.
  [[nodiscard]] AnyIndex wrap_index(EncryptedIndex index) const {
    return AnyIndex::own(kind(), std::move(index));
  }
  [[nodiscard]] AnyQuery wrap_query(Capability cap) const {
    return AnyQuery::own(kind(), std::move(cap));
  }
  [[nodiscard]] const EncryptedIndex& unwrap_index(
      const AnyIndex& index) const {
    require_index(index);
    return index.as<EncryptedIndex>();
  }
  [[nodiscard]] const Capability& unwrap_query(const AnyQuery& query) const {
    require_query(query);
    return query.as<Capability>();
  }

  [[nodiscard]] std::vector<std::uint8_t> encode_index(
      const AnyIndex& index) const override;
  [[nodiscard]] AnyIndex decode_index(
      std::span<const std::uint8_t> data) const override;
  [[nodiscard]] std::vector<std::uint8_t> encode_query(
      const AnyQuery& query) const override;
  [[nodiscard]] AnyQuery decode_query(
      std::span<const std::uint8_t> data) const override;

  [[nodiscard]] QueryDigest digest(const AnyQuery& query) const override;
  [[nodiscard]] AnyPrepared prepare(const AnyQuery& query) const override;
  [[nodiscard]] bool match(const AnyPrepared& prepared,
                           const AnyIndex& index) const override;
  // Routes through the prepared capability's lane-parallel scan kernel
  // (search_prepared_block); verdicts byte-identical to match per record.
  void match_block(const AnyPrepared& prepared, const AnyIndex* const* indexes,
                   std::size_t n, bool* out) const override;

  [[nodiscard]] std::vector<std::uint8_t> query_message(
      const AnyQuery& query, const std::string& issuer) const override;

 protected:
  ApksBackend(SchemeKind kind, const Apks& scheme, Rng* rng)
      : SearchBackend({&scheme.hpe().pairing(), rng}),
        kind_(kind),
        scheme_(&scheme) {}

 private:
  SchemeKind kind_;
  const Apks* scheme_;
};

class ApksPlusBackend : public ApksBackend {
 public:
  explicit ApksPlusBackend(const ApksPlus& scheme, Rng* rng = nullptr)
      : ApksBackend(SchemeKind::kApksPlus, scheme, rng) {}

  // Installs the ingest-stage transformation (normally the deployment's
  // ProxyPipeline — see attach_ingest_pipeline in cloud/proxy.h). In a
  // real deployment this hook is the owner->proxies->cloud RPC boundary;
  // in-process it makes every stored index traverse the chain.
  void set_ingest_stage(
      std::function<EncryptedIndex(const EncryptedIndex&)> stage) {
    ingest_stage_ = std::move(stage);
  }

  // Installs the admission canary: an all-wildcard capability issued on
  // the blinded basis (Apks::gen_cap under the APKS+ master key for a
  // query of QueryTerm::any() in every dimension). Prepared once here.
  void set_ingest_canary(const Capability& canary) {
    canary_ = scheme().prepare(canary);
    has_canary_ = true;
  }
  [[nodiscard]] bool has_ingest_canary() const noexcept {
    return has_canary_;
  }

  [[nodiscard]] AnyIndex ingest_transform(AnyIndex index) const override;
  void validate_ingest(const AnyIndex& index) const override;

 private:
  std::function<EncryptedIndex(const EncryptedIndex&)> ingest_stage_;
  PreparedCapability canary_;
  bool has_canary_ = false;
};

// The all-wildcard query whose capability serves as the APKS+ ingest
// canary (every dimension QueryTerm::any(): zero predicate vector, so the
// capability decrypts every honest ciphertext of the deployment).
[[nodiscard]] Query make_canary_query(const Schema& schema);

}  // namespace apks
