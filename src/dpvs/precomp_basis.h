// Precomputed fixed-basis tables for DPVS linear combinations.
//
// HPE's hot paths (encrypt, gen_key, delegate) all take linear combinations
// over bases that are FIXED across calls: the public Bhat, the master B*,
// or a parent key's components. PrecomputedBasis snapshots such a basis and
// builds signed fixed-window tables (src/ec/fixed_base.h) for every one of
// its rows*dim points, normalized with a single inversion. A lincomb served
// from the tables skips the per-term table build and runs wider windows —
// the generalization of the paper's "pairing preprocessing" (Fig. 8d) to
// the owner/authority side.
//
// Memory is bounded: the window width is auto-sized to the largest w whose
// table footprint fits `max_table_bytes`, and table building is skipped
// entirely when even the narrowest window does not fit (lincombs then fall
// back to ephemeral tables — still correct, just not amortized).
//
// BasisPrecompCache makes the precomputation lazy and thread-safe so it can
// live on copyable key material (HpePublicKey/HpeMasterKey): the first
// lincomb against a basis builds the tables, concurrent callers share them,
// and copies of the key start with a cold cache.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "dpvs/dpvs.h"
#include "ec/fixed_base.h"

namespace apks {

class PrecomputedBasis {
 public:
  // 64 MiB default: w = 7 tables for the Nursery-size bases (~75 vectors of
  // dimension ~76) of the paper's Fig. 8 evaluation.
  static constexpr std::size_t kDefaultMaxTableBytes = 64ull << 20;

  struct Options {
    unsigned window = 0;  // fixed window width; 0 = widest fitting the budget
    std::size_t max_table_bytes = kDefaultMaxTableBytes;
    bool build_tables = true;  // false: snapshot rows only (naive/windowed)
  };

  [[nodiscard]] static std::shared_ptr<const PrecomputedBasis> build(
      const Dpvs& dpvs, std::vector<GVec> rows, const Options& opts);
  // Convenience for ad-hoc bases ({&t, &w}, a parent key's components, ...).
  [[nodiscard]] static std::shared_ptr<const PrecomputedBasis> build(
      const Dpvs& dpvs, std::initializer_list<const GVec*> rows,
      const Options& opts);

  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] const GVec& row(std::size_t i) const { return rows_[i]; }
  [[nodiscard]] bool has_tables() const noexcept { return tables_ != nullptr; }
  [[nodiscard]] const WindowTables* tables() const noexcept {
    return tables_.get();
  }
  [[nodiscard]] unsigned window() const noexcept {
    return tables_ ? tables_->wbits() : 0;
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return tables_ ? tables_->memory_bytes() : 0;
  }
  // Flattened index of point j of row r in `tables()`.
  [[nodiscard]] std::size_t point_index(std::size_t r,
                                        std::size_t j) const noexcept {
    return r * dim_ + j;
  }

  // Widest window in [kMinWindow, kMaxWindow] whose tables for npts points
  // fit `budget`; 0 when none fits.
  [[nodiscard]] static unsigned pick_window(std::size_t npts,
                                            std::size_t budget) noexcept;

 private:
  PrecomputedBasis(const Dpvs& dpvs, std::vector<GVec> rows,
                   const Options& opts);

  std::size_t dim_ = 0;
  std::vector<GVec> rows_;
  std::unique_ptr<const WindowTables> tables_;
};

// Lazy, thread-safe, copy-resets cache of one PrecomputedBasis. Lives on
// key structs; copying a key (or assigning over it) yields a cold cache, so
// mutated copies (e.g. HPE+ rescaling B*) never see stale tables. As a
// second guard, get_or_build() spot-checks the cached snapshot against the
// caller's rows and rebuilds on any mismatch.
class BasisPrecompCache {
 public:
  BasisPrecompCache() = default;
  BasisPrecompCache(const BasisPrecompCache&) noexcept {}
  BasisPrecompCache& operator=(const BasisPrecompCache&) noexcept {
    reset();
    return *this;
  }

  [[nodiscard]] std::shared_ptr<const PrecomputedBasis> get_or_build(
      const Dpvs& dpvs, const std::vector<GVec>& rows,
      const PrecomputedBasis::Options& opts) const;

  void reset() const noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    cached_.reset();
  }

 private:
  mutable std::mutex mu_;
  mutable std::shared_ptr<const PrecomputedBasis> cached_;
};

}  // namespace apks
