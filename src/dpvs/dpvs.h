// Dual Pairing Vector Spaces (Okamoto-Takashima).
//
// V = G^N with canonical basis A (a_i = g in slot i, identity elsewhere).
// A random X in GL(N, F_q) defines B = X * A; the dual B* = (X^T)^{-1} * A*
// satisfies e(b_i, b*_j) = gT^{delta_ij}. HPE ciphertexts live in span(B),
// keys in span(B*), and vector pairing evaluates inner products in the
// exponent of gT.
//
// Basis vectors and all DPVS vectors are arrays of N curve points; linear
// combinations cost one multi-scalar multiplication per coordinate, which is
// what gives HPE its O(N^2) exponentiation counts for setup/encrypt/keygen.
#pragma once

#include <memory>
#include <vector>

#include "math/matrix_fq.h"
#include "pairing/pairing.h"

namespace apks {

// A vector in V: N points of E(F_p)[q].
using GVec = std::vector<AffinePoint>;

class Dpvs {
 public:
  Dpvs(const Pairing& pairing, std::size_t dim)
      : e_(&pairing), dim_(dim) {}

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] const Pairing& pairing() const noexcept { return *e_; }

  struct DualBases {
    std::vector<GVec> b;      // B = X * A (dim rows)
    std::vector<GVec> bstar;  // B* = (X^T)^{-1} * A*
    MatrixFq x;               // the basis-change matrix (part of HPE msk)
  };

  // Samples X <- GL(dim, F_q) and materializes both bases
  // (2 * dim^2 scalar multiplications).
  [[nodiscard]] DualBases gen_dual_bases(Rng& rng) const;

  // Materializes a basis from an explicit coefficient matrix (rows are
  // basis-vector exponents). Used by HPE+ where B* is re-scaled by r.
  [[nodiscard]] std::vector<GVec> basis_from_matrix(const MatrixFq& m) const;

  [[nodiscard]] GVec zero_vec() const {
    return GVec(dim_, AffinePoint::infinity());
  }

  [[nodiscard]] GVec add(const GVec& a, const GVec& b) const;
  [[nodiscard]] GVec scale(const Fq& k, const GVec& a) const;

  // sum_i coeffs[i] * vecs[i], one MSM per coordinate.
  [[nodiscard]] GVec lincomb(const std::vector<Fq>& coeffs,
                             const std::vector<const GVec*>& vecs) const;

  // prod_i e(x_i, y_i)  == gT^{<exponents(x), exponents(y)>}; N Miller loops
  // plus a single shared final exponentiation.
  [[nodiscard]] GtEl pair_vec(const GVec& x, const GVec& y) const;

  // Variant with preprocessed first argument (the cloud server preprocesses
  // a capability's decryption component once and reuses it per index).
  [[nodiscard]] std::vector<PreprocessedPairing> preprocess_vec(
      const GVec& x) const;
  [[nodiscard]] GtEl pair_vec_pre(const std::vector<PreprocessedPairing>& x,
                                  const GVec& y) const;

 private:
  const Pairing* e_;
  std::size_t dim_;
};

}  // namespace apks
