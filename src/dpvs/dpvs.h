// Dual Pairing Vector Spaces (Okamoto-Takashima).
//
// V = G^N with canonical basis A (a_i = g in slot i, identity elsewhere).
// A random X in GL(N, F_q) defines B = X * A; the dual B* = (X^T)^{-1} * A*
// satisfies e(b_i, b*_j) = gT^{delta_ij}. HPE ciphertexts live in span(B),
// keys in span(B*), and vector pairing evaluates inner products in the
// exponent of gT.
//
// Basis vectors and all DPVS vectors are arrays of N curve points; linear
// combinations cost one multi-scalar multiplication per coordinate, which is
// what gives HPE its O(N^2) exponentiation counts for setup/encrypt/keygen.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "math/matrix_fq.h"
#include "pairing/pairing.h"

namespace apks {

// A vector in V: N points of E(F_p)[q].
using GVec = std::vector<AffinePoint>;

class PrecomputedBasis;

// Which scalar-multiplication engine serves linear combinations. All three
// produce bit-identical vectors and the same paper-facing exponentiation
// counts; only wall-clock differs.
enum class ScalarEngine {
  kNaive,        // per-coordinate interleaved double-and-add (reference)
  kWindowed,     // shared-chain signed windows, ephemeral per-call tables
  kPrecomputed,  // windowed, served from cached PrecomputedBasis tables
};

class Dpvs {
 public:
  Dpvs(const Pairing& pairing, std::size_t dim)
      : e_(&pairing), dim_(dim) {}

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] const Pairing& pairing() const noexcept { return *e_; }

  struct DualBases {
    std::vector<GVec> b;      // B = X * A (dim rows)
    std::vector<GVec> bstar;  // B* = (X^T)^{-1} * A*
    MatrixFq x;               // the basis-change matrix (part of HPE msk)
  };

  // Samples X <- GL(dim, F_q) and materializes both bases
  // (2 * dim^2 scalar multiplications).
  [[nodiscard]] DualBases gen_dual_bases(Rng& rng) const;

  // Materializes a basis from an explicit coefficient matrix (rows are
  // basis-vector exponents). Used by HPE+ where B* is re-scaled by r.
  [[nodiscard]] std::vector<GVec> basis_from_matrix(const MatrixFq& m) const;

  [[nodiscard]] GVec zero_vec() const {
    return GVec(dim_, AffinePoint::infinity());
  }

  // Coordinate-wise sum / scalar multiple. Both run in Jacobian coordinates
  // and batch-normalize the whole vector: one field inversion per call
  // instead of one per coordinate.
  [[nodiscard]] GVec add(const GVec& a, const GVec& b) const;
  [[nodiscard]] GVec scale(const Fq& k, const GVec& a) const;

  // One term of a linear combination: coeff * (basis row | loose vector).
  // Exactly one of (basis, vec) is set; `row` indexes into `basis`.
  struct LcTerm {
    Fq coeff{};
    const PrecomputedBasis* basis = nullptr;
    std::size_t row = 0;
    const GVec* vec = nullptr;
  };

  // sum over terms, dispatched to the selected engine. The windowed and
  // precomputed engines run one shared doubling chain per coordinate and a
  // single batch normalization for the whole output vector; kPrecomputed
  // serves basis-backed terms from their cached tables (counted as
  // precomp_base_mul on top of the engine-independent scalar_mul).
  [[nodiscard]] GVec lincomb_terms(std::span<const LcTerm> terms,
                                   ScalarEngine engine) const;

  // sum_i coeffs[i] * vecs[i] via the windowed engine.
  [[nodiscard]] GVec lincomb(const std::vector<Fq>& coeffs,
                             const std::vector<const GVec*>& vecs) const;
  // Reference implementation: one naive MSM per coordinate, one inversion
  // per coordinate.
  [[nodiscard]] GVec lincomb_naive(const std::vector<Fq>& coeffs,
                                   const std::vector<const GVec*>& vecs) const;

  // prod_i e(x_i, y_i)  == gT^{<exponents(x), exponents(y)>}. Runs the true
  // multi-pairing: one shared Miller accumulator squared once per bit for
  // all N slots, plus a single final exponentiation.
  [[nodiscard]] GtEl pair_vec(const GVec& x, const GVec& y) const;

  // Variant with preprocessed first argument (the cloud server preprocesses
  // a capability's decryption component once and reuses it per index).
  [[nodiscard]] std::vector<PreprocessedPairing> preprocess_vec(
      const GVec& x) const;
  [[nodiscard]] GtEl pair_vec_pre(std::span<const PreprocessedPairing> x,
                                  const GVec& y) const;

 private:
  const Pairing* e_;
  std::size_t dim_;
};

}  // namespace apks
