#include "dpvs/precomp_basis.h"

#include <stdexcept>

namespace apks {

unsigned PrecomputedBasis::pick_window(std::size_t npts,
                                       std::size_t budget) noexcept {
  unsigned best = 0;
  for (unsigned w = WindowTables::kMinWindow; w <= WindowTables::kMaxWindow;
       ++w) {
    if (WindowTables::table_bytes(npts, w) <= budget) best = w;
  }
  return best;
}

PrecomputedBasis::PrecomputedBasis(const Dpvs& dpvs, std::vector<GVec> rows,
                                   const Options& opts)
    : dim_(dpvs.dim()), rows_(std::move(rows)) {
  for (const GVec& r : rows_) {
    if (r.size() != dim_) {
      throw std::invalid_argument("PrecomputedBasis: row dim mismatch");
    }
  }
  if (!opts.build_tables || rows_.empty()) return;
  const std::size_t npts = rows_.size() * dim_;
  unsigned w = opts.window;
  if (w == 0) w = pick_window(npts, opts.max_table_bytes);
  if (w == 0) return;  // budget too small even for the narrowest window
  std::vector<AffinePoint> flat;
  flat.reserve(npts);
  for (const GVec& r : rows_) flat.insert(flat.end(), r.begin(), r.end());
  tables_ = std::make_unique<const WindowTables>(dpvs.pairing().curve(), flat,
                                                 w, /*precomputed=*/true);
}

std::shared_ptr<const PrecomputedBasis> PrecomputedBasis::build(
    const Dpvs& dpvs, std::vector<GVec> rows, const Options& opts) {
  return std::shared_ptr<const PrecomputedBasis>(
      new PrecomputedBasis(dpvs, std::move(rows), opts));
}

std::shared_ptr<const PrecomputedBasis> PrecomputedBasis::build(
    const Dpvs& dpvs, std::initializer_list<const GVec*> rows,
    const Options& opts) {
  std::vector<GVec> copy;
  copy.reserve(rows.size());
  for (const GVec* r : rows) copy.push_back(*r);
  return build(dpvs, std::move(copy), opts);
}

namespace {

// Does the cached snapshot still describe `rows`? Spot-checks the first
// coordinate of every row: catches in-place basis mutation (HPE+ rescales
// B* after setup) without a full O(rows*dim) comparison.
bool basis_matches(const PrecomputedBasis& cached, const Dpvs& dpvs,
                   const std::vector<GVec>& rows) {
  if (cached.size() != rows.size() || cached.dim() != dpvs.dim()) return false;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].empty() || !(cached.row(r)[0] == rows[r][0])) return false;
  }
  return true;
}

}  // namespace

std::shared_ptr<const PrecomputedBasis> BasisPrecompCache::get_or_build(
    const Dpvs& dpvs, const std::vector<GVec>& rows,
    const PrecomputedBasis::Options& opts) const {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (cached_ && basis_matches(*cached_, dpvs, rows)) return cached_;
  }
  // Build outside the lock: table construction is the expensive part and
  // concurrent first callers would otherwise serialize on it. Losing the
  // race costs one redundant build; everyone converges on the pointer the
  // winner installed.
  auto built = PrecomputedBasis::build(dpvs, rows, opts);
  const std::lock_guard<std::mutex> lock(mu_);
  if (cached_ && basis_matches(*cached_, dpvs, rows)) return cached_;
  cached_ = std::move(built);
  return cached_;
}

}  // namespace apks
