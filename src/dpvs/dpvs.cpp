#include "dpvs/dpvs.h"

#include <stdexcept>

namespace apks {

std::vector<GVec> Dpvs::basis_from_matrix(const MatrixFq& m) const {
  if (m.rows() != dim_ || m.cols() != dim_) {
    throw std::invalid_argument("Dpvs: matrix dimension mismatch");
  }
  const Curve& curve = e_->curve();
  const FqField& fq = e_->fq();
  // Fixed-base comb per entry, one shared batch normalization for the whole
  // dim^2 table (a single field inversion instead of dim^2 of them).
  std::vector<JacPoint> jac;
  jac.reserve(dim_ * dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      jac.push_back(curve.mul_base_jac(fq.to_int(m.at(i, j))));
    }
  }
  const auto affine = curve.batch_normalize(jac);
  std::vector<GVec> basis(dim_, zero_vec());
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      basis[i][j] = affine[i * dim_ + j];
    }
  }
  return basis;
}

Dpvs::DualBases Dpvs::gen_dual_bases(Rng& rng) const {
  const FqField& fq = e_->fq();
  DualBases out;
  out.x = MatrixFq::random_invertible(dim_, fq, rng);
  MatrixFq xt_inv;
  if (!out.x.transpose().inverse(fq, xt_inv)) {
    throw std::logic_error("Dpvs: invertible matrix has singular transpose");
  }
  out.b = basis_from_matrix(out.x);
  out.bstar = basis_from_matrix(xt_inv);
  return out;
}

GVec Dpvs::add(const GVec& a, const GVec& b) const {
  if (a.size() != dim_ || b.size() != dim_) {
    throw std::invalid_argument("Dpvs::add: dimension mismatch");
  }
  const Curve& curve = e_->curve();
  GVec r(dim_);
  for (std::size_t i = 0; i < dim_; ++i) r[i] = curve.add(a[i], b[i]);
  return r;
}

GVec Dpvs::scale(const Fq& k, const GVec& a) const {
  if (a.size() != dim_) {
    throw std::invalid_argument("Dpvs::scale: dimension mismatch");
  }
  const Curve& curve = e_->curve();
  GVec r(dim_);
  for (std::size_t i = 0; i < dim_; ++i) r[i] = curve.mul_fq(a[i], k);
  return r;
}

GVec Dpvs::lincomb(const std::vector<Fq>& coeffs,
                   const std::vector<const GVec*>& vecs) const {
  if (coeffs.size() != vecs.size()) {
    throw std::invalid_argument("Dpvs::lincomb: size mismatch");
  }
  const Curve& curve = e_->curve();
  GVec r(dim_);
  std::vector<AffinePoint> column(vecs.size());
  for (std::size_t j = 0; j < dim_; ++j) {
    for (std::size_t i = 0; i < vecs.size(); ++i) {
      if (vecs[i]->size() != dim_) {
        throw std::invalid_argument("Dpvs::lincomb: vector dim mismatch");
      }
      column[i] = (*vecs[i])[j];
    }
    r[j] = curve.msm(column, coeffs);
  }
  return r;
}

GtEl Dpvs::pair_vec(const GVec& x, const GVec& y) const {
  if (x.size() != dim_ || y.size() != dim_) {
    throw std::invalid_argument("Dpvs::pair_vec: dimension mismatch");
  }
  const Fp2& fp2 = e_->fp2();
  Fp2El f = fp2.one();
  for (std::size_t i = 0; i < dim_; ++i) {
    f = fp2.mul(f, e_->miller(x[i], y[i]));
  }
  return e_->final_exp(f);
}

std::vector<PreprocessedPairing> Dpvs::preprocess_vec(const GVec& x) const {
  if (x.size() != dim_) {
    throw std::invalid_argument("Dpvs::preprocess_vec: dimension mismatch");
  }
  std::vector<PreprocessedPairing> out;
  out.reserve(dim_);
  for (const auto& pt : x) out.push_back(e_->preprocess(pt));
  return out;
}

GtEl Dpvs::pair_vec_pre(const std::vector<PreprocessedPairing>& x,
                        const GVec& y) const {
  if (x.size() != dim_ || y.size() != dim_) {
    throw std::invalid_argument("Dpvs::pair_vec_pre: dimension mismatch");
  }
  const Fp2& fp2 = e_->fp2();
  Fp2El f = fp2.one();
  for (std::size_t i = 0; i < dim_; ++i) {
    f = fp2.mul(f, x[i].miller_with(y[i]));
  }
  return e_->final_exp(f);
}

}  // namespace apks
