#include "dpvs/dpvs.h"

#include <stdexcept>

#include "dpvs/precomp_basis.h"
#include "ec/fixed_base.h"

namespace apks {

std::vector<GVec> Dpvs::basis_from_matrix(const MatrixFq& m) const {
  if (m.rows() != dim_ || m.cols() != dim_) {
    throw std::invalid_argument("Dpvs: matrix dimension mismatch");
  }
  const Curve& curve = e_->curve();
  const FqField& fq = e_->fq();
  // Fixed-base comb per entry, one shared batch normalization for the whole
  // dim^2 table (a single field inversion instead of dim^2 of them).
  std::vector<JacPoint> jac;
  jac.reserve(dim_ * dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      jac.push_back(curve.mul_base_jac(fq.to_int(m.at(i, j))));
    }
  }
  const auto affine = curve.batch_normalize(jac);
  std::vector<GVec> basis(dim_, zero_vec());
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      basis[i][j] = affine[i * dim_ + j];
    }
  }
  return basis;
}

Dpvs::DualBases Dpvs::gen_dual_bases(Rng& rng) const {
  const FqField& fq = e_->fq();
  DualBases out;
  out.x = MatrixFq::random_invertible(dim_, fq, rng);
  MatrixFq xt_inv;
  if (!out.x.transpose().inverse(fq, xt_inv)) {
    throw std::logic_error("Dpvs: invertible matrix has singular transpose");
  }
  out.b = basis_from_matrix(out.x);
  out.bstar = basis_from_matrix(xt_inv);
  return out;
}

GVec Dpvs::add(const GVec& a, const GVec& b) const {
  if (a.size() != dim_ || b.size() != dim_) {
    throw std::invalid_argument("Dpvs::add: dimension mismatch");
  }
  const Curve& curve = e_->curve();
  std::vector<JacPoint> jac;
  jac.reserve(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    jac.push_back(curve.jac_add_mixed(curve.to_jac(a[i]), b[i]));
  }
  return curve.batch_normalize(jac);
}

GVec Dpvs::scale(const Fq& k, const GVec& a) const {
  if (a.size() != dim_) {
    throw std::invalid_argument("Dpvs::scale: dimension mismatch");
  }
  const Curve& curve = e_->curve();
  const FqInt kp = e_->fq().to_int(k);
  std::vector<JacPoint> jac;
  jac.reserve(dim_);
  for (std::size_t i = 0; i < dim_; ++i) jac.push_back(curve.mul_jac(a[i], kp));
  return curve.batch_normalize(jac);
}

GVec Dpvs::lincomb_terms(std::span<const LcTerm> terms,
                         ScalarEngine engine) const {
  for (const LcTerm& t : terms) {
    if (t.basis == nullptr && t.vec == nullptr) {
      throw std::invalid_argument("Dpvs::lincomb_terms: empty term");
    }
    const std::size_t tdim = t.basis ? t.basis->dim() : t.vec->size();
    if (tdim != dim_ || (t.basis && t.row >= t.basis->size())) {
      throw std::invalid_argument("Dpvs::lincomb_terms: bad term");
    }
  }
  if (engine == ScalarEngine::kNaive) {
    std::vector<Fq> coeffs;
    std::vector<const GVec*> vecs;
    coeffs.reserve(terms.size());
    vecs.reserve(terms.size());
    for (const LcTerm& t : terms) {
      coeffs.push_back(t.coeff);
      vecs.push_back(t.basis ? &t.basis->row(t.row) : t.vec);
    }
    return lincomb_naive(coeffs, vecs);
  }

  const Curve& curve = e_->curve();
  const FqField& fq = e_->fq();
  if (terms.empty()) return zero_vec();

  // Resolve each term to a (tables, flat point index) source. Terms without
  // cached tables — loose vectors, table-less bases, or everything when the
  // engine is kWindowed — share one ephemeral narrow-window table built for
  // just this call.
  struct Source {
    const WindowTables* tables = nullptr;
    std::size_t base = 0;  // index of the term's coordinate-0 point
  };
  std::vector<Source> sources(terms.size());
  std::vector<AffinePoint> loose;
  std::vector<std::size_t> loose_term;  // term index per loose row
  for (std::size_t i = 0; i < terms.size(); ++i) {
    const LcTerm& t = terms[i];
    if (engine == ScalarEngine::kPrecomputed && t.basis &&
        t.basis->has_tables()) {
      sources[i] = {t.basis->tables(), t.basis->point_index(t.row, 0)};
    } else {
      const GVec& row = t.basis ? t.basis->row(t.row) : *t.vec;
      loose.insert(loose.end(), row.begin(), row.end());
      loose_term.push_back(i);
    }
  }
  constexpr unsigned kEphemeralWindow = 4;
  std::unique_ptr<const WindowTables> eph;
  if (!loose.empty()) {
    eph = std::make_unique<const WindowTables>(curve, loose, kEphemeralWindow,
                                               /*precomputed=*/false);
    for (std::size_t r = 0; r < loose_term.size(); ++r) {
      sources[loose_term[r]] = {eph.get(), r * dim_};
    }
  }

  // Paper accounting: one exponentiation per term per coordinate, however
  // it is served; table-served terms additionally count as precomputed.
  std::uint64_t npre = 0;
  for (const Source& s : sources) {
    if (s.tables->precomputed()) ++npre;
  }
  curve.note_scalar_muls(terms.size() * dim_);
  curve.note_precomp_base_muls(npre * dim_);

  // Recode every coefficient once at its source's window width; the digits
  // are reused by all dim coordinate chains.
  std::vector<RecodedScalar> recoded;
  recoded.reserve(terms.size());
  for (std::size_t i = 0; i < terms.size(); ++i) {
    recoded.push_back(RecodedScalar::recode(fq.to_int(terms[i].coeff),
                                            sources[i].tables->wbits()));
  }

  std::vector<ChainTerm> chain(terms.size());
  std::vector<JacPoint> jac;
  jac.reserve(dim_);
  for (std::size_t j = 0; j < dim_; ++j) {
    for (std::size_t i = 0; i < terms.size(); ++i) {
      chain[i] = {sources[i].tables, sources[i].base + j, &recoded[i]};
    }
    jac.push_back(windowed_chain(curve, chain));
  }
  return curve.batch_normalize(jac);
}

GVec Dpvs::lincomb(const std::vector<Fq>& coeffs,
                   const std::vector<const GVec*>& vecs) const {
  if (coeffs.size() != vecs.size()) {
    throw std::invalid_argument("Dpvs::lincomb: size mismatch");
  }
  std::vector<LcTerm> terms(coeffs.size());
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    terms[i] = {coeffs[i], nullptr, 0, vecs[i]};
  }
  return lincomb_terms(terms, ScalarEngine::kWindowed);
}

GVec Dpvs::lincomb_naive(const std::vector<Fq>& coeffs,
                         const std::vector<const GVec*>& vecs) const {
  if (coeffs.size() != vecs.size()) {
    throw std::invalid_argument("Dpvs::lincomb: size mismatch");
  }
  const Curve& curve = e_->curve();
  GVec r(dim_);
  std::vector<AffinePoint> column(vecs.size());
  for (std::size_t j = 0; j < dim_; ++j) {
    for (std::size_t i = 0; i < vecs.size(); ++i) {
      if (vecs[i]->size() != dim_) {
        throw std::invalid_argument("Dpvs::lincomb: vector dim mismatch");
      }
      column[i] = (*vecs[i])[j];
    }
    r[j] = curve.msm_naive(column, coeffs);
  }
  return r;
}

GtEl Dpvs::pair_vec(const GVec& x, const GVec& y) const {
  if (x.size() != dim_ || y.size() != dim_) {
    throw std::invalid_argument("Dpvs::pair_vec: dimension mismatch");
  }
  std::vector<MillerPair> pairs(dim_);
  for (std::size_t i = 0; i < dim_; ++i) pairs[i] = {x[i], y[i]};
  return e_->final_exp(e_->multi_miller(pairs));
}

std::vector<PreprocessedPairing> Dpvs::preprocess_vec(const GVec& x) const {
  if (x.size() != dim_) {
    throw std::invalid_argument("Dpvs::preprocess_vec: dimension mismatch");
  }
  std::vector<PreprocessedPairing> out;
  out.reserve(dim_);
  for (const auto& pt : x) out.push_back(e_->preprocess(pt));
  return out;
}

GtEl Dpvs::pair_vec_pre(std::span<const PreprocessedPairing> x,
                        const GVec& y) const {
  if (x.size() != dim_ || y.size() != dim_) {
    throw std::invalid_argument("Dpvs::pair_vec_pre: dimension mismatch");
  }
  return e_->final_exp(e_->multi_miller_pre(x, y));
}

}  // namespace apks
