// Montgomery modular arithmetic context for odd moduli.
//
// MontCtx<L> fixes an odd L-limb modulus and precomputes the constants for
// CIOS Montgomery multiplication (R = 2^{64L}). Values in "Montgomery form"
// are plain BigInt<L> holding a*R mod m; the context converts, multiplies,
// exponentiates and inverts them.
#pragma once

#include <cassert>

#include "common/bigint.h"
#include "common/limbs.h"

namespace apks {

template <std::size_t L>
class MontCtx {
 public:
  using Int = BigInt<L>;

  explicit MontCtx(const Int& modulus) : m_(modulus) {
    assert(modulus.is_odd());
    n0inv_ = limb::mont_n0inv(modulus.w[0]);
    // R mod m: set bit 64L via a (2L)-limb value and reduce.
    BigInt<2 * L> r2l;
    r2l.set_bit(64 * L);
    r_ = mod(r2l, m_);
    rr_ = mul_mod(r_, r_, m_);  // R^2 mod m
  }

  [[nodiscard]] const Int& modulus() const noexcept { return m_; }
  [[nodiscard]] const Int& r() const noexcept { return r_; }  // 1 in Mont form

  // r = a*b*R^{-1} mod m.
  [[nodiscard]] Int mul(const Int& a, const Int& b) const noexcept {
    Int r;
    limb::mont_mul(r.w.data(), a.w.data(), b.w.data(), m_.w.data(), n0inv_, L);
    return r;
  }
  [[nodiscard]] Int sqr(const Int& a) const noexcept { return mul(a, a); }

  [[nodiscard]] Int to_mont(const Int& a) const noexcept {
    return mul(a, rr_);
  }
  [[nodiscard]] Int from_mont(const Int& a) const noexcept {
    return mul(a, Int::one());
  }

  [[nodiscard]] Int add(const Int& a, const Int& b) const noexcept {
    return add_mod(a, b, m_);
  }
  [[nodiscard]] Int sub(const Int& a, const Int& b) const noexcept {
    return sub_mod(a, b, m_);
  }
  [[nodiscard]] Int neg(const Int& a) const noexcept {
    return a.is_zero() ? a : m_ - a;
  }

  // a^e mod m with a in Montgomery form; result in Montgomery form.
  // Square-and-multiply with a fixed 4-bit window.
  template <std::size_t EL>
  [[nodiscard]] Int pow(const Int& a, const BigInt<EL>& e) const noexcept {
    const std::size_t bits = e.bit_length();
    if (bits == 0) return r_;
    Int table[16];
    table[0] = r_;
    table[1] = a;
    for (std::size_t i = 2; i < 16; ++i) table[i] = mul(table[i - 1], a);
    Int acc = r_;
    bool started = false;
    std::size_t i = (bits + 3) / 4;
    while (i-- > 0) {
      std::size_t nib = 0;
      for (std::size_t j = 0; j < 4; ++j) {
        const std::size_t b = 4 * i + (3 - j);
        nib = (nib << 1) | ((b < 64 * EL && e.bit(b)) ? 1u : 0u);
      }
      if (started) {
        acc = sqr(sqr(sqr(sqr(acc))));
        if (nib != 0) acc = mul(acc, table[nib]);
      } else if (nib != 0) {
        acc = table[nib];
        started = true;
      }
    }
    return acc;
  }

  // Modular inverse of a (Montgomery form in, Montgomery form out) for prime
  // modulus via Fermat: a^{m-2}.
  [[nodiscard]] Int inv_fermat(const Int& a) const noexcept {
    return pow(a, m_ - Int{2});
  }

  // Binary extended GCD inverse — an order of magnitude faster than Fermat
  // for 512-bit moduli. Montgomery form in/out; `a` must be nonzero.
  [[nodiscard]] Int inv_binary(const Int& a) const noexcept {
    // Work on the plain representative, then restore Montgomery form with
    // one extra multiplication by R^2 (folded into to_mont).
    Int u = from_mont(a);
    Int v = m_;
    Int x1 = Int::one();
    Int x2 = Int::zero();
    auto halve_mod = [this](Int& x) {
      if (x.is_odd()) {
        Int t;
        const std::uint64_t carry = Int::add_carry(t, x, m_);
        t = t.shr(1);
        if (carry != 0) t.set_bit(64 * L - 1);
        x = t;
      } else {
        x = x.shr(1);
      }
    };
    while (!(u == Int::one()) && !(v == Int::one())) {
      while (!u.is_odd()) {
        u = u.shr(1);
        halve_mod(x1);
      }
      while (!v.is_odd()) {
        v = v.shr(1);
        halve_mod(x2);
      }
      if (u >= v) {
        Int::sub_borrow(u, u, v);
        x1 = sub_mod(x1, x2, m_);
      } else {
        Int::sub_borrow(v, v, u);
        x2 = sub_mod(x2, x1, m_);
      }
    }
    return to_mont(u == Int::one() ? x1 : x2);
  }

 private:
  Int m_;
  Int r_;    // R mod m
  Int rr_;   // R^2 mod m
  std::uint64_t n0inv_ = 0;
};

}  // namespace apks
