#include "common/sha1.h"

#include <cstring>

namespace apks {

namespace {
inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}
}  // namespace

void Sha1::reset() {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  buf_len_ = 0;
  total_len_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::update(std::span<const std::uint8_t> data) {
  total_len_ += data.size();
  std::size_t off = 0;
  if (buf_len_ != 0) {
    const std::size_t take = std::min(data.size(), 64 - buf_len_);
    std::memcpy(buf_.data() + buf_len_, data.data(), take);
    buf_len_ += take;
    off = take;
    if (buf_len_ == 64) {
      process_block(buf_.data());
      buf_len_ = 0;
    }
  }
  while (off + 64 <= data.size()) {
    process_block(data.data() + off);
    off += 64;
  }
  if (off < data.size()) {
    std::memcpy(buf_.data(), data.data() + off, data.size() - off);
    buf_len_ = data.size() - off;
  }
}

Sha1::Digest Sha1::finish() {
  const std::uint64_t bit_len = total_len_ * 8;
  const std::uint8_t pad = 0x80;
  update(std::span<const std::uint8_t>(&pad, 1));
  const std::uint8_t zero = 0;
  while (buf_len_ != 56) {
    update(std::span<const std::uint8_t>(&zero, 1));
  }
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(std::span<const std::uint8_t>(len_bytes, 8));
  Digest d;
  for (int i = 0; i < 5; ++i) {
    d[static_cast<std::size_t>(4 * i)] = static_cast<std::uint8_t>(h_[static_cast<std::size_t>(i)] >> 24);
    d[static_cast<std::size_t>(4 * i + 1)] = static_cast<std::uint8_t>(h_[static_cast<std::size_t>(i)] >> 16);
    d[static_cast<std::size_t>(4 * i + 2)] = static_cast<std::uint8_t>(h_[static_cast<std::size_t>(i)] >> 8);
    d[static_cast<std::size_t>(4 * i + 3)] = static_cast<std::uint8_t>(h_[static_cast<std::size_t>(i)]);
  }
  reset();
  return d;
}

}  // namespace apks
