// bytes.h is header-only; this translation unit exists to give the target a
// stable archive member and to hold future out-of-line helpers.
#include "common/bytes.h"
