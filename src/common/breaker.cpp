#include "common/breaker.h"

namespace apks {

CircuitBreaker::CircuitBreaker(BreakerOptions options) : options_(options) {}

CircuitBreaker::CircuitBreaker(const CircuitBreaker& other) {
  std::lock_guard lk(other.mu_);
  options_ = other.options_;
  consecutive_ = other.consecutive_;
  open_ = other.open_;
  open_until_ = other.open_until_;
  jitter_state_ = other.jitter_state_;
}

CircuitBreaker& CircuitBreaker::operator=(const CircuitBreaker& other) {
  if (this == &other) return *this;
  // Consistent order is unnecessary here (no call site copies breakers in
  // both directions concurrently) but scoped_lock is cheap and removes the
  // question.
  std::scoped_lock lk(mu_, other.mu_);
  options_ = other.options_;
  consecutive_ = other.consecutive_;
  open_ = other.open_;
  open_until_ = other.open_until_;
  jitter_state_ = other.jitter_state_;
  return *this;
}

void CircuitBreaker::seed_jitter(std::uint64_t seed) noexcept {
  std::lock_guard lk(mu_);
  jitter_state_ = seed * 0x9e3779b97f4a7c15ull + 0xbf58476d1ce4e5b9ull;
}

std::uint64_t CircuitBreaker::cooldown_span_locked() noexcept {
  std::uint64_t span = options_.cooldown_ops;
  if (options_.cooldown_jitter_ops != 0) {
    // Deterministic per-instance LCG (Knuth MMIX constants); the high bits
    // carry the quality.
    jitter_state_ =
        jitter_state_ * 6364136223846793005ull + 1442695040888963407ull;
    span += (jitter_state_ >> 33) % (options_.cooldown_jitter_ops + 1);
  }
  return span;
}

CircuitBreaker::Gate CircuitBreaker::admit(std::uint64_t now_op)
    const noexcept {
  std::lock_guard lk(mu_);
  if (!open_) return Gate::kClosed;
  return now_op < open_until_ ? Gate::kSkip : Gate::kProbe;
}

void CircuitBreaker::on_success() noexcept {
  std::lock_guard lk(mu_);
  consecutive_ = 0;
  open_ = false;  // a successful probe closes the breaker
}

bool CircuitBreaker::on_failure(std::uint64_t now_op) noexcept {
  std::lock_guard lk(mu_);
  ++consecutive_;
  if (open_) {
    // Failed half-open probe: start a fresh cooldown window.
    open_until_ = now_op + cooldown_span_locked();
    return false;
  }
  if (options_.threshold != 0 && consecutive_ >= options_.threshold) {
    open_ = true;
    open_until_ = now_op + cooldown_span_locked();
    return true;
  }
  return false;
}

bool CircuitBreaker::trip(std::uint64_t now_op) noexcept {
  std::lock_guard lk(mu_);
  if (options_.threshold == 0) return false;  // tripping disabled
  const bool was_open = open_;
  open_ = true;
  if (consecutive_ < options_.threshold) consecutive_ = options_.threshold;
  open_until_ = now_op + cooldown_span_locked();
  return !was_open;
}

bool CircuitBreaker::open_now(std::uint64_t now_op) const noexcept {
  std::lock_guard lk(mu_);
  return open_ && now_op < open_until_;
}

std::size_t CircuitBreaker::consecutive_failures() const noexcept {
  std::lock_guard lk(mu_);
  return consecutive_;
}

}  // namespace apks
