#include "common/breaker.h"

namespace apks {

CircuitBreaker::CircuitBreaker(BreakerOptions options) : options_(options) {}

CircuitBreaker::Gate CircuitBreaker::admit(std::uint64_t now_op)
    const noexcept {
  if (!open_) return Gate::kClosed;
  return now_op < open_until_ ? Gate::kSkip : Gate::kProbe;
}

void CircuitBreaker::on_success() noexcept {
  consecutive_ = 0;
  open_ = false;  // a successful probe closes the breaker
}

bool CircuitBreaker::on_failure(std::uint64_t now_op) noexcept {
  ++consecutive_;
  if (open_) {
    // Failed half-open probe: start a fresh cooldown window.
    open_until_ = now_op + options_.cooldown_ops;
    return false;
  }
  if (options_.threshold != 0 && consecutive_ >= options_.threshold) {
    open_ = true;
    open_until_ = now_op + options_.cooldown_ops;
    return true;
  }
  return false;
}

bool CircuitBreaker::open_now(std::uint64_t now_op) const noexcept {
  return open_ && now_op < open_until_;
}

}  // namespace apks
