// Hex encoding/decoding for byte buffers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace apks {

[[nodiscard]] std::string hex_encode(std::span<const std::uint8_t> data);

// Throws std::invalid_argument on non-hex input or odd length.
[[nodiscard]] std::vector<std::uint8_t> hex_decode(std::string_view hex);

}  // namespace apks
