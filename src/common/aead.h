// ChaCha20-Poly1305 AEAD (RFC 8439).
//
// The paper assumes the actual PHR documents are protected by separate
// encryption; this AEAD is the library's batteries-included choice for that
// layer (see cloud/docstore.h). Implemented from scratch like the rest of
// the crypto stack; validated against the RFC test vectors.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace apks {

// Poly1305 one-time authenticator. key = r || s (32 bytes).
[[nodiscard]] std::array<std::uint8_t, 16> poly1305(
    std::span<const std::uint8_t, 32> key,
    std::span<const std::uint8_t> message);

inline constexpr std::size_t kAeadKeySize = 32;
inline constexpr std::size_t kAeadNonceSize = 12;
inline constexpr std::size_t kAeadTagSize = 16;

// Returns ciphertext || tag.
[[nodiscard]] std::vector<std::uint8_t> aead_seal(
    std::span<const std::uint8_t, kAeadKeySize> key,
    std::span<const std::uint8_t, kAeadNonceSize> nonce,
    std::span<const std::uint8_t> aad, std::span<const std::uint8_t> plaintext);

// Verifies and decrypts ciphertext || tag; nullopt on authentication
// failure.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> aead_open(
    std::span<const std::uint8_t, kAeadKeySize> key,
    std::span<const std::uint8_t, kAeadNonceSize> nonce,
    std::span<const std::uint8_t> aad, std::span<const std::uint8_t> sealed);

}  // namespace apks
