// SHA-1 (FIPS 180-4). The paper maps attribute values into F_q with SHA-1;
// we also use it for identity hashing where 160-bit output matches the
// 160-bit group order of the type-A parameters.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace apks {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha1() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s) {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }
  [[nodiscard]] Digest finish();

  [[nodiscard]] static Digest hash(std::string_view s) {
    Sha1 h;
    h.update(s);
    return h.finish();
  }
  [[nodiscard]] static Digest hash(std::span<const std::uint8_t> data) {
    Sha1 h;
    h.update(data);
    return h.finish();
  }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_{};
  std::array<std::uint8_t, 64> buf_{};
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace apks
