// Simple length-prefixed binary serialization helpers.
//
// ByteWriter appends primitive values and raw buffers; ByteReader consumes
// them in the same order. Used to measure and round-trip the wire sizes of
// public keys, ciphertexts and capabilities (the paper reports these sizes
// in Section VII).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace apks {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void bytes(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    raw(data);
  }
  void str(std::string_view s) {
    bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() { return take(1)[0]; }
  [[nodiscard]] std::uint32_t u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[static_cast<std::size_t>(i)]) << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    const auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[static_cast<std::size_t>(i)]) << (8 * i);
    return v;
  }
  [[nodiscard]] std::span<const std::uint8_t> raw(std::size_t n) {
    return take(n);
  }
  [[nodiscard]] std::span<const std::uint8_t> bytes() { return take(u32()); }
  [[nodiscard]] std::string str() {
    const auto b = bytes();
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }

  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (pos_ + n > data_.size()) {
      throw std::out_of_range("ByteReader: truncated input");
    }
    const auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace apks
