// Deterministic fault injection for chaos testing (the repo-wide failpoint
// framework; see DESIGN.md §5e "Fault model & degradation").
//
// A *failpoint* is a named site compiled into production code paths —
// "fs.write", "proxy.s0.r1", "engine.scan_block" — that normally does
// nothing. Tests, the chaos suite and the CLI arm sites with a policy:
//
//   action   what happens when the site fires
//              error[:errno]  report a failed syscall (I/O shims only)
//              throw          throw FailpointError at the site
//              delay:MS       sleep MS milliseconds, then continue
//              short:BYTES    write only BYTES of the payload, then fail
//                             (fs.write only — leaves a torn frame on disk)
//   trigger  when it fires
//              every:N        on every Nth eligible evaluation (default 1)
//              after:N        skip the first N evaluations
//              p:X            with probability X per evaluation, drawn from
//                             a seeded deterministic stream (seed:S) — the
//                             same seed always yields the same schedule
//              limit:N        disarm after N fires (0 = unlimited)
//
// Configuration is programmatic (Failpoints::set / clear) or via the
// APKS_FAILPOINTS environment variable, a comma-separated list of
// `site=action;field:value;...` entries, e.g.
//
//   APKS_FAILPOINTS="fs.fsync=error;every:3,proxy.s0.r0=throw;p:0.5;seed:7"
//
// Cost model: a disarmed registry costs one relaxed atomic load per site
// evaluation (no lock, no map lookup, no string hashing); only armed
// registries take the registry mutex. Evaluation is thread-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace apks {

enum class FailAction : std::uint8_t {
  kOff = 0,
  kError,       // I/O shims report a failed call with `error_code` as errno
  kThrow,       // the site throws FailpointError
  kDelay,       // sleep `delay_ms`, then proceed normally
  kShortWrite,  // fs.write persists only `short_bytes`, then reports failure
};

[[nodiscard]] std::string_view fail_action_name(FailAction action) noexcept;

// Thrown by armed `throw` sites (and by I/O shims that translate injected
// errors into exceptions further up).
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(const std::string& site)
      : std::runtime_error("failpoint fired: " + site), site_(site) {}
  [[nodiscard]] const std::string& site() const noexcept { return site_; }

 private:
  std::string site_;
};

struct FailpointPolicy {
  FailAction action = FailAction::kOff;
  int error_code = 5;            // kError/kShortWrite: injected errno (EIO)
  std::uint32_t delay_ms = 0;    // kDelay
  std::uint64_t short_bytes = 0;  // kShortWrite: bytes actually persisted
  // Trigger: an evaluation is *eligible* once `after` evaluations have
  // passed; every `every`-th eligible evaluation fires, further gated by
  // `probability` (drawn from a splitmix64 stream seeded with `seed`), and
  // the site disarms after `max_hits` fires (0 = unlimited).
  std::uint64_t every = 1;
  std::uint64_t after = 0;
  double probability = 1.0;
  std::uint64_t seed = 0;
  std::uint64_t max_hits = 0;
};

// What a site evaluation decided. kThrow and kDelay are handled inside
// evaluate() (throw / sleep); callers only ever see kOff, kError or
// kShortWrite and only the I/O shims interpret the latter two.
struct FailpointFire {
  FailAction action = FailAction::kOff;
  int error_code = 0;
  std::uint64_t short_bytes = 0;
  [[nodiscard]] bool fired() const noexcept {
    return action != FailAction::kOff;
  }
};

struct FailpointSiteStats {
  std::string site;
  std::uint64_t evaluations = 0;
  std::uint64_t fires = 0;
};

class Failpoints {
 public:
  [[nodiscard]] static Failpoints& instance();

  // Arms (or re-arms, resetting trigger state) one site.
  void set(std::string_view site, FailpointPolicy policy);
  void clear(std::string_view site);
  void clear_all();

  // Parses the APKS_FAILPOINTS grammar above; returns the number of sites
  // armed. Throws std::invalid_argument on a malformed spec.
  std::size_t configure(std::string_view spec);
  // Reads APKS_FAILPOINTS (no-op when unset); returns sites armed.
  std::size_t configure_from_env();

  // The per-site evaluation: counts the evaluation, decides whether the
  // site fires, applies kThrow (throws FailpointError) and kDelay (sleeps)
  // inline, and returns the fire record otherwise.
  FailpointFire evaluate(std::string_view site);

  [[nodiscard]] std::uint64_t evaluations(std::string_view site) const;
  [[nodiscard]] std::uint64_t fires(std::string_view site) const;
  // Counters of every site that has been armed or evaluated while armed.
  [[nodiscard]] std::vector<FailpointSiteStats> stats() const;

  // True when any site is armed — the one-load hot-path gate.
  [[nodiscard]] static bool active() noexcept {
    return armed_sites_.load(std::memory_order_relaxed) != 0;
  }

 private:
  Failpoints() = default;

  static std::atomic<int> armed_sites_;
};

// The site macro-equivalent: free function so call sites stay one line.
// Disarmed cost is the single atomic load in Failpoints::active().
inline FailpointFire failpoint(std::string_view site) {
  if (!Failpoints::active()) return {};
  return Failpoints::instance().evaluate(site);
}

}  // namespace apks
