// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Frame checksum of the storage engine's segment files (src/store/): cheap
// enough to run on every append, and strong enough to detect the torn and
// bit-rotted records crash recovery must refuse to replay. Not a MAC —
// integrity against an adversary comes from the cryptographic layers above.
#pragma once

#include <cstdint>
#include <span>

namespace apks {

// One-shot CRC of `data`, or a running CRC when chaining: pass the previous
// return value as `seed` to extend a checksum across multiple buffers.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data,
                                  std::uint32_t seed = 0);

}  // namespace apks
