// Fixed-width little-endian big integers.
//
// BigInt<L> is a plain value type over L 64-bit limbs. Arithmetic helpers
// delegate to the limb-level routines in limbs.h. All operations are
// wrap-around unless documented otherwise; callers that need the carry use
// the *_carry variants.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>

#include "common/limbs.h"

namespace apks {

template <std::size_t L>
struct BigInt {
  static_assert(L >= 1 && L <= limb::kMaxDivLimbs / 2);
  static constexpr std::size_t kLimbs = L;
  static constexpr std::size_t kBytes = 8 * L;

  std::array<std::uint64_t, L> w{};

  constexpr BigInt() = default;
  constexpr explicit BigInt(std::uint64_t v) { w[0] = v; }

  [[nodiscard]] static BigInt zero() { return BigInt{}; }
  [[nodiscard]] static BigInt one() { return BigInt{1}; }

  [[nodiscard]] bool is_zero() const noexcept {
    return limb::is_zero(w.data(), L);
  }
  [[nodiscard]] bool is_odd() const noexcept { return (w[0] & 1) != 0; }

  [[nodiscard]] std::size_t bit_length() const noexcept {
    return limb::bit_length(w.data(), L);
  }
  [[nodiscard]] bool bit(std::size_t i) const noexcept {
    assert(i < 64 * L);
    return ((w[i / 64] >> (i % 64)) & 1) != 0;
  }
  void set_bit(std::size_t i) noexcept {
    assert(i < 64 * L);
    w[i / 64] |= std::uint64_t{1} << (i % 64);
  }

  friend bool operator==(const BigInt& a, const BigInt& b) noexcept {
    return limb::cmp(a.w.data(), b.w.data(), L) == 0;
  }
  friend auto operator<=>(const BigInt& a, const BigInt& b) noexcept {
    return limb::cmp(a.w.data(), b.w.data(), L) <=> 0;
  }

  // r = a + b mod 2^(64L); returns carry.
  static std::uint64_t add_carry(BigInt& r, const BigInt& a,
                                 const BigInt& b) noexcept {
    return limb::add_n(r.w.data(), a.w.data(), b.w.data(), L);
  }
  // r = a - b mod 2^(64L); returns borrow.
  static std::uint64_t sub_borrow(BigInt& r, const BigInt& a,
                                  const BigInt& b) noexcept {
    return limb::sub_n(r.w.data(), a.w.data(), b.w.data(), L);
  }

  friend BigInt operator+(const BigInt& a, const BigInt& b) noexcept {
    BigInt r;
    add_carry(r, a, b);
    return r;
  }
  friend BigInt operator-(const BigInt& a, const BigInt& b) noexcept {
    BigInt r;
    sub_borrow(r, a, b);
    return r;
  }

  // Full-width product.
  [[nodiscard]] static BigInt<2 * L> mul_wide(const BigInt& a,
                                              const BigInt& b) noexcept {
    BigInt<2 * L> r;
    limb::mul(r.w.data(), a.w.data(), L, b.w.data(), L);
    return r;
  }

  [[nodiscard]] BigInt shl(unsigned k) const noexcept {
    BigInt r;
    if (k >= 64 * L) return r;
    const unsigned limbs_shift = k / 64;
    const unsigned bits = k % 64;
    BigInt t{};
    for (std::size_t i = limbs_shift; i < L; ++i) t.w[i] = w[i - limbs_shift];
    limb::shl_small(r.w.data(), t.w.data(), L, bits);
    return r;
  }
  [[nodiscard]] BigInt shr(unsigned k) const noexcept {
    BigInt r;
    if (k >= 64 * L) return r;
    const unsigned limbs_shift = k / 64;
    const unsigned bits = k % 64;
    BigInt t{};
    for (std::size_t i = 0; i + limbs_shift < L; ++i) t.w[i] = w[i + limbs_shift];
    limb::shr_small(r.w.data(), t.w.data(), L, bits);
    return r;
  }

  // Big-endian byte conversion (kBytes bytes, most significant first).
  void to_bytes(std::span<std::uint8_t, kBytes> out) const noexcept {
    for (std::size_t i = 0; i < L; ++i) {
      const std::uint64_t v = w[L - 1 - i];
      for (std::size_t j = 0; j < 8; ++j) {
        out[8 * i + j] = static_cast<std::uint8_t>(v >> (56 - 8 * j));
      }
    }
  }
  [[nodiscard]] static BigInt from_bytes(
      std::span<const std::uint8_t> in) noexcept {
    // Interprets `in` (big-endian) mod 2^(64L); accepts up to kBytes bytes.
    assert(in.size() <= kBytes);
    BigInt r;
    std::size_t bit = 0;
    for (std::size_t i = in.size(); i-- > 0;) {
      r.w[bit / 64] |= static_cast<std::uint64_t>(in[i]) << (bit % 64);
      bit += 8;
    }
    return r;
  }
};

// Reduction: r = a mod m, where a has A limbs and m has L limbs (m != 0).
template <std::size_t A, std::size_t L>
[[nodiscard]] BigInt<L> mod(const BigInt<A>& a, const BigInt<L>& m) noexcept {
  static_assert(A >= L);
  // limb::divrem trims the divisor and writes only the trimmed width of the
  // remainder, so the buffer must start zeroed.
  std::uint64_t rem[L] = {};
  limb::divrem(nullptr, rem, a.w.data(), A, m.w.data(), L);
  BigInt<L> r;
  std::memcpy(r.w.data(), rem, L * sizeof(std::uint64_t));
  return r;
}

// q = a / b, r = a mod b over the same width.
template <std::size_t L>
void divrem(const BigInt<L>& a, const BigInt<L>& b, BigInt<L>& q,
            BigInt<L>& r) noexcept {
  // Zeroed: divrem writes only the significant limbs of each output.
  std::uint64_t qq[L] = {};
  std::uint64_t rr[L] = {};
  limb::divrem(qq, rr, a.w.data(), L, b.w.data(), L);
  std::memcpy(q.w.data(), qq, L * sizeof(std::uint64_t));
  std::memcpy(r.w.data(), rr, L * sizeof(std::uint64_t));
}

// Modular addition/subtraction for a, b < m.
template <std::size_t L>
[[nodiscard]] BigInt<L> add_mod(const BigInt<L>& a, const BigInt<L>& b,
                                const BigInt<L>& m) noexcept {
  BigInt<L> r;
  const std::uint64_t carry = BigInt<L>::add_carry(r, a, b);
  if (carry != 0 || r >= m) {
    BigInt<L>::sub_borrow(r, r, m);
  }
  return r;
}

template <std::size_t L>
[[nodiscard]] BigInt<L> sub_mod(const BigInt<L>& a, const BigInt<L>& b,
                                const BigInt<L>& m) noexcept {
  BigInt<L> r;
  const std::uint64_t borrow = BigInt<L>::sub_borrow(r, a, b);
  if (borrow != 0) {
    BigInt<L>::add_carry(r, r, m);
  }
  return r;
}

// r = a * b mod m (schoolbook + Knuth division; use Montgomery for hot paths).
template <std::size_t L>
[[nodiscard]] BigInt<L> mul_mod(const BigInt<L>& a, const BigInt<L>& b,
                                const BigInt<L>& m) noexcept {
  return mod(BigInt<L>::mul_wide(a, b), m);
}

// Hex round-trips (most significant digit first, no "0x" prefix).
template <std::size_t L>
[[nodiscard]] std::string to_hex(const BigInt<L>& a) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s;
  s.reserve(16 * L);
  for (std::size_t i = L; i-- > 0;) {
    for (int j = 60; j >= 0; j -= 4) {
      s.push_back(kDigits[(a.w[i] >> j) & 0xF]);
    }
  }
  const std::size_t pos = s.find_first_not_of('0');
  if (pos == std::string::npos) return "0";
  return s.substr(pos);
}

template <std::size_t L>
[[nodiscard]] BigInt<L> bigint_from_hex(std::string_view hex) {
  BigInt<L> r;
  std::size_t bit = 0;
  for (std::size_t i = hex.size(); i-- > 0 && bit < 64 * L;) {
    const char c = hex[i];
    std::uint64_t v = 0;
    if (c >= '0' && c <= '9') {
      v = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v = static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v = static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      continue;  // allow separators
    }
    r.w[bit / 64] |= v << (bit % 64);
    bit += 4;
  }
  return r;
}

}  // namespace apks
