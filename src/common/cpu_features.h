// Runtime CPU capability detection for the SIMD lane engines.
//
// The lane engines (math/fp_lanes.h) are selected once per process from the
// CPU's advertised extensions, overridable for testing and CI via
// environment variables:
//
//   APKS_SIMD=scalar|avx2|avx512   pin the engine (downgrades only: asking
//                                  for an engine the CPU lacks falls back
//                                  to the best supported one below it)
//   APKS_FORCE_SCALAR=1            shorthand for APKS_SIMD=scalar
//
// Every engine is bit-identical (canonical Montgomery residues at every
// operation boundary), so the override is a performance knob, never a
// correctness one — which is exactly what lets CI run the same tests under
// both settings and diff nothing.
#pragma once

namespace apks {

enum class SimdLevel {
  kScalar = 0,  // portable reference path (always available)
  kAvx2 = 1,    // 4-wide lanes, 32-bit-radix Montgomery
  kAvx512 = 2,  // 8-wide lanes, 52-bit-radix IFMA Montgomery
};

// The engine selected for this process: min(CPU capability, compiled-in
// support, environment override). Computed once, then cached.
[[nodiscard]] SimdLevel simd_level() noexcept;

// Raw CPU capability, ignoring the environment override (used by tests to
// decide which cross-engine comparisons can run on this machine).
[[nodiscard]] SimdLevel simd_level_detected() noexcept;

[[nodiscard]] const char* simd_level_name(SimdLevel level) noexcept;

}  // namespace apks
