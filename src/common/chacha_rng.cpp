#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/chacha.h"
#include "common/rng.h"
#include "common/sha256.h"

namespace apks {


std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Rejection sampling on the top of the range to avoid modulo bias.
  const std::uint64_t limit = bound * (~std::uint64_t{0} / bound);
  for (;;) {
    const std::uint64_t v = next_u64();
    if (v < limit) return v % bound;
  }
}

ChaChaRng::ChaChaRng(std::span<const std::uint8_t, 32> seed) {
  std::copy(seed.begin(), seed.end(), key_.begin());
}

ChaChaRng::ChaChaRng(std::string_view label, std::uint64_t counter) {
  Sha256 h;
  h.update(label);
  std::uint8_t cb[8];
  for (int i = 0; i < 8; ++i) {
    cb[i] = static_cast<std::uint8_t>(counter >> (8 * i));
  }
  h.update(std::span<const std::uint8_t>(cb, 8));
  const auto digest = h.finish();
  *this = ChaChaRng(std::span<const std::uint8_t, 32>(digest));
}

void ChaChaRng::refill() {
  static constexpr std::array<std::uint8_t, 12> kZeroNonce{};
  chacha20_block(key_, counter_++, kZeroNonce, block_);
  pos_ = 0;
}

void ChaChaRng::fill(std::span<std::uint8_t> out) {
  std::size_t off = 0;
  while (off < out.size()) {
    if (pos_ == 64) refill();
    const std::size_t take = std::min(out.size() - off, 64 - pos_);
    std::memcpy(out.data() + off, block_.data() + pos_, take);
    pos_ += take;
    off += take;
  }
}

void SystemRng::fill(std::span<std::uint8_t> out) {
  static FILE* f = std::fopen("/dev/urandom", "rb");
  if (f == nullptr) throw std::runtime_error("cannot open /dev/urandom");
  if (std::fread(out.data(), 1, out.size(), f) != out.size()) {
    throw std::runtime_error("short read from /dev/urandom");
  }
}

Rng& default_rng() {
  static SystemRng rng;
  return rng;
}

}  // namespace apks
