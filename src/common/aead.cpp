#include "common/aead.h"

#include "common/bigint.h"
#include "common/chacha.h"

namespace apks {

std::array<std::uint8_t, 16> poly1305(std::span<const std::uint8_t, 32> key,
                                      std::span<const std::uint8_t> message) {
  // p = 2^130 - 5; r clamped per RFC 8439. Accumulator arithmetic uses the
  // multiprecision core (3 limbs hold values < 2^131).
  using Acc = BigInt<3>;
  Acc p;
  p.set_bit(130);
  p = p - Acc{5};

  std::array<std::uint8_t, 16> rbytes{};
  std::copy(key.begin(), key.begin() + 16, rbytes.begin());
  rbytes[3] &= 15;
  rbytes[7] &= 15;
  rbytes[11] &= 15;
  rbytes[15] &= 15;
  rbytes[4] &= 252;
  rbytes[8] &= 252;
  rbytes[12] &= 252;
  // Little-endian load.
  Acc r;
  for (std::size_t i = 0; i < 16; ++i) {
    r.w[i / 8] |= static_cast<std::uint64_t>(rbytes[i]) << (8 * (i % 8));
  }

  Acc acc;
  std::size_t off = 0;
  while (off < message.size()) {
    const std::size_t take = std::min<std::size_t>(16, message.size() - off);
    Acc block;
    for (std::size_t i = 0; i < take; ++i) {
      block.w[i / 8] |= static_cast<std::uint64_t>(message[off + i])
                        << (8 * (i % 8));
    }
    block.set_bit(8 * take);  // the 0x01 pad byte
    acc = add_mod(acc, block, p);  // both < p after reduction below
    // acc = (acc * r) mod p
    const auto wide = Acc::mul_wide(acc, r);
    acc = mod(wide, p);
    off += take;
  }

  // tag = (acc + s) mod 2^128.
  Acc s;
  for (std::size_t i = 0; i < 16; ++i) {
    s.w[i / 8] |= static_cast<std::uint64_t>(key[16 + i]) << (8 * (i % 8));
  }
  Acc tag;
  Acc::add_carry(tag, acc, s);
  std::array<std::uint8_t, 16> out{};
  for (std::size_t i = 0; i < 16; ++i) {
    out[i] = static_cast<std::uint8_t>(tag.w[i / 8] >> (8 * (i % 8)));
  }
  return out;
}

namespace {

// Poly1305 input for AEAD: aad || pad || ct || pad || len(aad) || len(ct).
std::vector<std::uint8_t> mac_data(std::span<const std::uint8_t> aad,
                                   std::span<const std::uint8_t> ct) {
  std::vector<std::uint8_t> m;
  m.reserve(aad.size() + ct.size() + 32);
  m.insert(m.end(), aad.begin(), aad.end());
  m.resize((m.size() + 15) / 16 * 16, 0);
  m.insert(m.end(), ct.begin(), ct.end());
  m.resize((m.size() + 15) / 16 * 16, 0);
  auto push_len = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      m.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  push_len(aad.size());
  push_len(ct.size());
  return m;
}

std::array<std::uint8_t, 32> poly_key(
    std::span<const std::uint8_t, kAeadKeySize> key,
    std::span<const std::uint8_t, kAeadNonceSize> nonce) {
  std::array<std::uint8_t, 64> block{};
  chacha20_block(key, 0, nonce, block);
  std::array<std::uint8_t, 32> out{};
  std::copy(block.begin(), block.begin() + 32, out.begin());
  return out;
}

}  // namespace

std::vector<std::uint8_t> aead_seal(
    std::span<const std::uint8_t, kAeadKeySize> key,
    std::span<const std::uint8_t, kAeadNonceSize> nonce,
    std::span<const std::uint8_t> aad,
    std::span<const std::uint8_t> plaintext) {
  std::vector<std::uint8_t> out(plaintext.begin(), plaintext.end());
  chacha20_xor(key, 1, nonce, out);
  const auto otk = poly_key(key, nonce);
  const auto tag = poly1305(otk, mac_data(aad, out));
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

std::optional<std::vector<std::uint8_t>> aead_open(
    std::span<const std::uint8_t, kAeadKeySize> key,
    std::span<const std::uint8_t, kAeadNonceSize> nonce,
    std::span<const std::uint8_t> aad,
    std::span<const std::uint8_t> sealed) {
  if (sealed.size() < kAeadTagSize) return std::nullopt;
  const auto ct = sealed.first(sealed.size() - kAeadTagSize);
  const auto tag = sealed.last(kAeadTagSize);
  const auto otk = poly_key(key, nonce);
  const auto expect = poly1305(otk, mac_data(aad, ct));
  // Constant-time comparison.
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < kAeadTagSize; ++i) {
    diff = static_cast<std::uint8_t>(diff | (tag[i] ^ expect[i]));
  }
  if (diff != 0) return std::nullopt;
  std::vector<std::uint8_t> out(ct.begin(), ct.end());
  chacha20_xor(key, 1, nonce, out);
  return out;
}

}  // namespace apks
