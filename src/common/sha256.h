// SHA-256 (FIPS 180-4). Used for wide hash-to-field expansion and as the
// PRF inside the deterministic RNG seeding helpers.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace apks {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s) {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }
  [[nodiscard]] Digest finish();

  [[nodiscard]] static Digest hash(std::string_view s) {
    Sha256 h;
    h.update(s);
    return h.finish();
  }
  [[nodiscard]] static Digest hash(std::span<const std::uint8_t> data) {
    Sha256 h;
    h.update(data);
    return h.finish();
  }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> h_{};
  std::array<std::uint8_t, 64> buf_{};
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace apks
