#include "common/hex.h"

#include <stdexcept>

namespace apks {

std::string hex_encode(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s;
  s.reserve(2 * data.size());
  for (const std::uint8_t b : data) {
    s.push_back(kDigits[b >> 4]);
    s.push_back(kDigits[b & 0xF]);
  }
  return s;
}

namespace {
int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("invalid hex digit");
}
}  // namespace

std::vector<std::uint8_t> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("odd hex length");
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((nibble(hex[i]) << 4) |
                                            nibble(hex[i + 1])));
  }
  return out;
}

}  // namespace apks
