// Random number generation.
//
// All randomness in the library flows through the Rng interface so tests and
// benchmarks can inject a seeded deterministic generator (ChaCha20-based)
// while production callers can use OS entropy.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

namespace apks {

class Rng {
 public:
  virtual ~Rng() = default;
  // Fills `out` with random bytes.
  virtual void fill(std::span<std::uint8_t> out) = 0;

  [[nodiscard]] std::uint64_t next_u64() {
    std::array<std::uint8_t, 8> b{};
    fill(b);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    }
    return v;
  }

  // Uniform value in [0, bound) via rejection sampling. bound must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound);
};

// ChaCha20 block function based deterministic generator. Stream position is
// the (block counter, offset) pair; reseeding restarts the stream.
class ChaChaRng final : public Rng {
 public:
  // 32-byte key seed; deterministic stream.
  explicit ChaChaRng(std::span<const std::uint8_t, 32> seed);
  // Convenience: seed derived from SHA-256 of the label + counter.
  explicit ChaChaRng(std::string_view label, std::uint64_t counter = 0);

  void fill(std::span<std::uint8_t> out) override;

 private:
  void refill();

  std::array<std::uint8_t, 32> key_{};
  std::uint32_t counter_ = 0;
  std::array<std::uint8_t, 64> block_{};
  std::size_t pos_ = 64;
};

// Reads from the operating system entropy source (/dev/urandom).
// Throws std::runtime_error if the source is unavailable.
class SystemRng final : public Rng {
 public:
  void fill(std::span<std::uint8_t> out) override;
};

// Process-wide default generator (SystemRng), for convenience call sites.
[[nodiscard]] Rng& default_rng();

}  // namespace apks
