// ChaCha20 block function and stream cipher (RFC 8439), shared by the
// deterministic RNG and the AEAD construction.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace apks {

// One 64-byte keystream block for (key, counter, nonce).
void chacha20_block(std::span<const std::uint8_t, 32> key,
                    std::uint32_t counter,
                    std::span<const std::uint8_t, 12> nonce,
                    std::span<std::uint8_t, 64> out);

// XORs `data` in place with the keystream starting at block `counter`.
void chacha20_xor(std::span<const std::uint8_t, 32> key,
                  std::uint32_t counter,
                  std::span<const std::uint8_t, 12> nonce,
                  std::span<std::uint8_t> data);

}  // namespace apks
