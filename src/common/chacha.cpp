#include "common/chacha.h"

namespace apks {

namespace {

inline std::uint32_t rotl32(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b;
  d = rotl32(d ^ a, 16);
  c += d;
  b = rotl32(b ^ c, 12);
  a += b;
  d = rotl32(d ^ a, 8);
  c += d;
  b = rotl32(b ^ c, 7);
}

inline std::uint32_t load32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

void chacha20_block(std::span<const std::uint8_t, 32> key,
                    std::uint32_t counter,
                    std::span<const std::uint8_t, 12> nonce,
                    std::span<std::uint8_t, 64> out) {
  std::array<std::uint32_t, 16> state{};
  static constexpr std::uint32_t kSigma[4] = {0x61707865u, 0x3320646eu,
                                              0x79622d32u, 0x6b206574u};
  for (std::size_t i = 0; i < 4; ++i) state[i] = kSigma[i];
  for (std::size_t i = 0; i < 8; ++i) state[4 + i] = load32(&key[4 * i]);
  state[12] = counter;
  for (std::size_t i = 0; i < 3; ++i) state[13 + i] = load32(&nonce[4 * i]);

  std::array<std::uint32_t, 16> x = state;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (std::size_t i = 0; i < 16; ++i) {
    const std::uint32_t v = x[i] + state[i];
    out[4 * i] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

void chacha20_xor(std::span<const std::uint8_t, 32> key,
                  std::uint32_t counter,
                  std::span<const std::uint8_t, 12> nonce,
                  std::span<std::uint8_t> data) {
  std::array<std::uint8_t, 64> block{};
  std::size_t off = 0;
  while (off < data.size()) {
    chacha20_block(key, counter++, nonce, block);
    const std::size_t take = std::min<std::size_t>(64, data.size() - off);
    for (std::size_t i = 0; i < take; ++i) {
      data[off + i] = static_cast<std::uint8_t>(data[off + i] ^ block[i]);
    }
    off += take;
  }
}

}  // namespace apks
