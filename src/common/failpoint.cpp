#include "common/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace apks {

std::atomic<int> Failpoints::armed_sites_{0};

std::string_view fail_action_name(FailAction action) noexcept {
  switch (action) {
    case FailAction::kOff: return "off";
    case FailAction::kError: return "error";
    case FailAction::kThrow: return "throw";
    case FailAction::kDelay: return "delay";
    case FailAction::kShortWrite: return "short";
  }
  return "?";
}

namespace {

// splitmix64 — deterministic, seedable, and good enough for fault
// schedules (this is test machinery, not cryptography).
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double uniform01(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

struct SiteState {
  FailpointPolicy policy;
  bool armed = false;
  std::uint64_t evaluations = 0;
  std::uint64_t fires = 0;
  std::uint64_t rng = 0;  // probability stream state
};

// Registry storage lives behind the singleton accessor so static
// initialization order never bites callers that arm failpoints from other
// static contexts.
struct Registry {
  mutable std::mutex mutex;
  std::map<std::string, SiteState, std::less<>> sites;
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

Failpoints& Failpoints::instance() {
  static Failpoints fp;
  return fp;
}

void Failpoints::set(std::string_view site, FailpointPolicy policy) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  SiteState& s = reg.sites[std::string(site)];
  if (!s.armed && policy.action != FailAction::kOff) {
    armed_sites_.fetch_add(1, std::memory_order_relaxed);
  } else if (s.armed && policy.action == FailAction::kOff) {
    armed_sites_.fetch_sub(1, std::memory_order_relaxed);
  }
  s.policy = policy;
  s.armed = policy.action != FailAction::kOff;
  s.evaluations = 0;
  s.fires = 0;
  s.rng = policy.seed;
}

void Failpoints::clear(std::string_view site) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  const auto it = reg.sites.find(site);
  if (it == reg.sites.end()) return;
  if (it->second.armed) {
    armed_sites_.fetch_sub(1, std::memory_order_relaxed);
  }
  reg.sites.erase(it);
}

void Failpoints::clear_all() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  for (const auto& [name, s] : reg.sites) {
    if (s.armed) armed_sites_.fetch_sub(1, std::memory_order_relaxed);
  }
  reg.sites.clear();
}

FailpointFire Failpoints::evaluate(std::string_view site) {
  FailpointFire fire;
  std::uint32_t sleep_ms = 0;
  bool thrown = false;
  {
    Registry& reg = registry();
    std::lock_guard lock(reg.mutex);
    const auto it = reg.sites.find(site);
    if (it == reg.sites.end() || !it->second.armed) return {};
    SiteState& s = it->second;
    const FailpointPolicy& p = s.policy;
    ++s.evaluations;
    if (s.evaluations <= p.after) return {};
    if (p.max_hits != 0 && s.fires >= p.max_hits) return {};
    const std::uint64_t eligible = s.evaluations - p.after;
    if (p.every > 1 && eligible % p.every != 0) return {};
    if (p.probability < 1.0 && uniform01(s.rng) >= p.probability) return {};
    ++s.fires;
    switch (p.action) {
      case FailAction::kOff:
        return {};
      case FailAction::kThrow:
        thrown = true;
        break;
      case FailAction::kDelay:
        sleep_ms = p.delay_ms;
        break;
      case FailAction::kError:
      case FailAction::kShortWrite:
        fire = {p.action, p.error_code, p.short_bytes};
        break;
    }
  }
  // Throw/sleep outside the lock so a slow or throwing site never blocks
  // concurrent evaluations of other sites.
  if (thrown) throw FailpointError(std::string(site));
  if (sleep_ms != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return fire;
}

std::uint64_t Failpoints::evaluations(std::string_view site) const {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  const auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.evaluations;
}

std::uint64_t Failpoints::fires(std::string_view site) const {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  const auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.fires;
}

std::vector<FailpointSiteStats> Failpoints::stats() const {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  std::vector<FailpointSiteStats> out;
  out.reserve(reg.sites.size());
  for (const auto& [name, s] : reg.sites) {
    out.push_back({name, s.evaluations, s.fires});
  }
  return out;
}

namespace {

[[noreturn]] void bad_spec(std::string_view spec, const std::string& why) {
  throw std::invalid_argument("failpoint spec '" + std::string(spec) +
                              "': " + why);
}

std::uint64_t parse_u64(std::string_view spec, std::string_view v) {
  std::uint64_t out = 0;
  std::size_t used = 0;
  try {
    out = std::stoull(std::string(v), &used);
  } catch (const std::exception&) {
    bad_spec(spec, "expected a number, got '" + std::string(v) + "'");
  }
  if (used != v.size()) bad_spec(spec, "trailing junk in number");
  return out;
}

double parse_prob(std::string_view spec, std::string_view v) {
  double out = 0;
  std::size_t used = 0;
  try {
    out = std::stod(std::string(v), &used);
  } catch (const std::exception&) {
    bad_spec(spec, "expected a probability, got '" + std::string(v) + "'");
  }
  if (used != v.size() || out < 0.0 || out > 1.0) {
    bad_spec(spec, "probability must be in [0, 1]");
  }
  return out;
}

}  // namespace

std::size_t Failpoints::configure(std::string_view spec) {
  std::size_t armed = 0;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string_view entry = spec.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      bad_spec(entry, "expected site=action[;field:value...]");
    }
    const std::string_view site = entry.substr(0, eq);
    FailpointPolicy policy;
    bool first = true;
    std::size_t fpos = eq + 1;
    while (fpos <= entry.size()) {
      const std::size_t semi = entry.find(';', fpos);
      const std::string_view field = entry.substr(
          fpos, semi == std::string_view::npos ? std::string_view::npos
                                               : semi - fpos);
      fpos = semi == std::string_view::npos ? entry.size() + 1 : semi + 1;
      if (field.empty()) continue;
      const std::size_t colon = field.find(':');
      const std::string_view key = field.substr(0, colon);
      const std::string_view val =
          colon == std::string_view::npos ? std::string_view{}
                                          : field.substr(colon + 1);
      if (first) {
        first = false;
        if (key == "off") policy.action = FailAction::kOff;
        else if (key == "error") {
          policy.action = FailAction::kError;
          if (!val.empty()) {
            policy.error_code = static_cast<int>(parse_u64(entry, val));
          }
        } else if (key == "throw") {
          policy.action = FailAction::kThrow;
        } else if (key == "delay") {
          policy.action = FailAction::kDelay;
          if (val.empty()) bad_spec(entry, "delay needs delay:MS");
          policy.delay_ms = static_cast<std::uint32_t>(parse_u64(entry, val));
        } else if (key == "short") {
          policy.action = FailAction::kShortWrite;
          if (val.empty()) bad_spec(entry, "short needs short:BYTES");
          policy.short_bytes = parse_u64(entry, val);
        } else {
          bad_spec(entry, "unknown action '" + std::string(key) + "'");
        }
        continue;
      }
      if (val.empty()) bad_spec(entry, "field needs a value: " +
                                           std::string(key));
      if (key == "every") policy.every = parse_u64(entry, val);
      else if (key == "after") policy.after = parse_u64(entry, val);
      else if (key == "p") policy.probability = parse_prob(entry, val);
      else if (key == "seed") policy.seed = parse_u64(entry, val);
      else if (key == "limit") policy.max_hits = parse_u64(entry, val);
      else bad_spec(entry, "unknown field '" + std::string(key) + "'");
    }
    if (first) bad_spec(entry, "missing action");
    if (policy.every == 0) bad_spec(entry, "every must be at least 1");
    set(site, policy);
    if (policy.action != FailAction::kOff) ++armed;
  }
  return armed;
}

std::size_t Failpoints::configure_from_env() {
  const char* spec = std::getenv("APKS_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return 0;
  return configure(spec);
}

}  // namespace apks
