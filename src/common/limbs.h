// Low-level multiprecision limb arithmetic.
//
// All routines operate on little-endian arrays of 64-bit limbs. They are the
// non-template core underneath BigInt<L>; keeping them out-of-line keeps code
// size down and makes them independently testable.
#pragma once

#include <cstddef>
#include <cstdint>

namespace apks::limb {

// r = a + b (all n limbs). Returns the outgoing carry (0 or 1).
// r may alias a or b.
std::uint64_t add_n(std::uint64_t* r, const std::uint64_t* a,
                    const std::uint64_t* b, std::size_t n) noexcept;

// r = a - b (all n limbs). Returns the outgoing borrow (0 or 1).
// r may alias a or b.
std::uint64_t sub_n(std::uint64_t* r, const std::uint64_t* a,
                    const std::uint64_t* b, std::size_t n) noexcept;

// r = a + b where b is a single limb. Returns the carry.
std::uint64_t add_1(std::uint64_t* r, const std::uint64_t* a, std::size_t n,
                    std::uint64_t b) noexcept;

// r = a - b where b is a single limb. Returns the borrow.
std::uint64_t sub_1(std::uint64_t* r, const std::uint64_t* a, std::size_t n,
                    std::uint64_t b) noexcept;

// r[0..an+bn) = a[0..an) * b[0..bn). r must not alias a or b.
void mul(std::uint64_t* r, const std::uint64_t* a, std::size_t an,
         const std::uint64_t* b, std::size_t bn) noexcept;

// r += a * b (single limb b) over n limbs of a; returns the limb that would
// be added at position n (carry-out). r must have at least n limbs.
std::uint64_t addmul_1(std::uint64_t* r, const std::uint64_t* a, std::size_t n,
                       std::uint64_t b) noexcept;

// Compares a and b over n limbs: -1, 0, or +1.
int cmp(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) noexcept;

// True if all n limbs are zero.
bool is_zero(const std::uint64_t* a, std::size_t n) noexcept;

// Number of significant bits (0 for zero).
std::size_t bit_length(const std::uint64_t* a, std::size_t n) noexcept;

// r = a << k (k < 64), n limbs; returns the bits shifted out of the top limb.
std::uint64_t shl_small(std::uint64_t* r, const std::uint64_t* a, std::size_t n,
                        unsigned k) noexcept;

// r = a >> k (k < 64), n limbs.
void shr_small(std::uint64_t* r, const std::uint64_t* a, std::size_t n,
               unsigned k) noexcept;

// Knuth algorithm D division.
//   q[0..an-bn] = a / b,  r_out[0..bn) = a mod b.
// Requirements: bn >= 1, b[bn-1] != 0 after normalization handled internally,
// an >= bn. q may be null if only the remainder is wanted.
// a and b are not modified. Scratch-free interface; uses internal buffers up
// to kMaxDivLimbs limbs.
inline constexpr std::size_t kMaxDivLimbs = 40;
void divrem(std::uint64_t* q, std::uint64_t* r_out, const std::uint64_t* a,
            std::size_t an, const std::uint64_t* b, std::size_t bn) noexcept;

// -m^{-1} mod 2^64 for odd m (Montgomery n0'). Newton iteration.
std::uint64_t mont_n0inv(std::uint64_t m0) noexcept;

// Montgomery multiplication (CIOS): r = a * b * R^{-1} mod m, where
// R = 2^{64n}. m must be odd; a, b < m. r may alias a or b.
void mont_mul(std::uint64_t* r, const std::uint64_t* a, const std::uint64_t* b,
              const std::uint64_t* m, std::uint64_t n0inv,
              std::size_t n) noexcept;

}  // namespace apks::limb
