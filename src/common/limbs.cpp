#include "common/limbs.h"

#include <cassert>
#include <cstring>

namespace apks::limb {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

u64 add_n(u64* r, const u64* a, const u64* b, std::size_t n) noexcept {
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 t = static_cast<u128>(a[i]) + b[i] + carry;
    r[i] = static_cast<u64>(t);
    carry = static_cast<u64>(t >> 64);
  }
  return carry;
}

u64 sub_n(u64* r, const u64* a, const u64* b, std::size_t n) noexcept {
  u64 borrow = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 t = static_cast<u128>(a[i]) - b[i] - borrow;
    r[i] = static_cast<u64>(t);
    borrow = static_cast<u64>((t >> 64) & 1);
  }
  return borrow;
}

u64 add_1(u64* r, const u64* a, std::size_t n, u64 b) noexcept {
  u64 carry = b;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 t = static_cast<u128>(a[i]) + carry;
    r[i] = static_cast<u64>(t);
    carry = static_cast<u64>(t >> 64);
  }
  return carry;
}

u64 sub_1(u64* r, const u64* a, std::size_t n, u64 b) noexcept {
  u64 borrow = b;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 t = static_cast<u128>(a[i]) - borrow;
    r[i] = static_cast<u64>(t);
    borrow = static_cast<u64>((t >> 64) & 1);
  }
  return borrow;
}

u64 addmul_1(u64* r, const u64* a, std::size_t n, u64 b) noexcept {
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 t = static_cast<u128>(a[i]) * b + r[i] + carry;
    r[i] = static_cast<u64>(t);
    carry = static_cast<u64>(t >> 64);
  }
  return carry;
}

void mul(u64* r, const u64* a, std::size_t an, const u64* b,
         std::size_t bn) noexcept {
  std::memset(r, 0, (an + bn) * sizeof(u64));
  for (std::size_t i = 0; i < bn; ++i) {
    r[an + i] += addmul_1(r + i, a, an, b[i]);
  }
}

int cmp(const u64* a, const u64* b, std::size_t n) noexcept {
  for (std::size_t i = n; i-- > 0;) {
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
  }
  return 0;
}

bool is_zero(const u64* a, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != 0) return false;
  }
  return true;
}

std::size_t bit_length(const u64* a, std::size_t n) noexcept {
  for (std::size_t i = n; i-- > 0;) {
    if (a[i] != 0) {
      return 64 * i +
             (64 - static_cast<std::size_t>(__builtin_clzll(a[i])));
    }
  }
  return 0;
}

u64 shl_small(u64* r, const u64* a, std::size_t n, unsigned k) noexcept {
  assert(k < 64);
  if (k == 0) {
    std::memmove(r, a, n * sizeof(u64));
    return 0;
  }
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u64 v = a[i];
    r[i] = (v << k) | carry;
    carry = v >> (64 - k);
  }
  return carry;
}

void shr_small(u64* r, const u64* a, std::size_t n, unsigned k) noexcept {
  assert(k < 64);
  if (k == 0) {
    std::memmove(r, a, n * sizeof(u64));
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const u64 lo = a[i] >> k;
    const u64 hi = (i + 1 < n) ? (a[i + 1] << (64 - k)) : 0;
    r[i] = lo | hi;
  }
}

namespace {

// Divides the (possibly shorter) numerator by a single-limb divisor.
void divrem_1(u64* q, u64* r_out, const u64* a, std::size_t an,
              u64 d) noexcept {
  u128 rem = 0;
  for (std::size_t i = an; i-- > 0;) {
    const u128 cur = (rem << 64) | a[i];
    const u64 qi = static_cast<u64>(cur / d);
    rem = cur % d;
    if (q != nullptr) q[i] = qi;
  }
  if (r_out != nullptr) r_out[0] = static_cast<u64>(rem);
}

}  // namespace

void divrem(u64* q, u64* r_out, const u64* a, std::size_t an, const u64* b,
            std::size_t bn) noexcept {
  assert(an <= kMaxDivLimbs && bn <= kMaxDivLimbs && bn >= 1 && an >= bn);
  // Trim leading zero limbs of the divisor.
  while (bn > 1 && b[bn - 1] == 0) --bn;
  assert(!is_zero(b, bn));

  if (bn == 1) {
    divrem_1(q, r_out, a, an, b[0]);
    return;
  }

  // Normalize so the top limb of the divisor has its high bit set.
  const unsigned shift =
      static_cast<unsigned>(__builtin_clzll(b[bn - 1]));
  u64 u[kMaxDivLimbs + 1];  // normalized numerator, one extra limb
  u64 v[kMaxDivLimbs];      // normalized divisor
  u[an] = shl_small(u, a, an, shift);
  shl_small(v, b, bn, shift);

  const std::size_t m = an - bn;  // number of quotient limbs - 1
  const u64 vtop = v[bn - 1];
  const u64 vsecond = v[bn - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate quotient digit from the top two limbs of the current window.
    const u128 num = (static_cast<u128>(u[j + bn]) << 64) | u[j + bn - 1];
    u64 qhat;
    u128 rhat;
    if (u[j + bn] >= vtop) {
      qhat = ~static_cast<u64>(0);
      rhat = num - static_cast<u128>(qhat) * vtop;
    } else {
      qhat = static_cast<u64>(num / vtop);
      rhat = num % vtop;
    }
    while (rhat <= ~static_cast<u128>(0) >> 64 &&
           static_cast<u128>(qhat) * vsecond >
               ((rhat << 64) | u[j + bn - 2])) {
      --qhat;
      rhat += vtop;
    }
    // u[j..j+bn] -= qhat * v
    u64 borrow = 0;
    u64 carry = 0;
    for (std::size_t i = 0; i < bn; ++i) {
      const u128 p = static_cast<u128>(qhat) * v[i] + carry;
      carry = static_cast<u64>(p >> 64);
      const u128 t = static_cast<u128>(u[j + i]) - static_cast<u64>(p) - borrow;
      u[j + i] = static_cast<u64>(t);
      borrow = static_cast<u64>((t >> 64) & 1);
    }
    const u128 t = static_cast<u128>(u[j + bn]) - carry - borrow;
    u[j + bn] = static_cast<u64>(t);
    if ((t >> 64) & 1) {
      // qhat was one too large; add the divisor back.
      --qhat;
      u64 c = 0;
      for (std::size_t i = 0; i < bn; ++i) {
        const u128 s = static_cast<u128>(u[j + i]) + v[i] + c;
        u[j + i] = static_cast<u64>(s);
        c = static_cast<u64>(s >> 64);
      }
      u[j + bn] += c;
    }
    if (q != nullptr) q[j] = qhat;
  }

  if (r_out != nullptr) {
    shr_small(r_out, u, bn, shift);
  }
}

u64 mont_n0inv(u64 m0) noexcept {
  assert((m0 & 1) != 0);
  // Newton iteration: x_{k+1} = x_k (2 - m0 x_k); 6 steps give 64 bits.
  u64 x = m0;  // correct mod 2^3
  for (int i = 0; i < 6; ++i) {
    x *= 2 - m0 * x;
  }
  return ~x + 1;  // -(m0^{-1}) mod 2^64
}

void mont_mul(u64* r, const u64* a, const u64* b, const u64* m, u64 n0inv,
              std::size_t n) noexcept {
  assert(n <= kMaxDivLimbs);
  // CIOS: t has n+2 limbs.
  u64 t[kMaxDivLimbs + 2];
  std::memset(t, 0, (n + 2) * sizeof(u64));
  for (std::size_t i = 0; i < n; ++i) {
    // t += a * b[i]
    u64 carry = addmul_1(t, a, n, b[i]);
    u128 s = static_cast<u128>(t[n]) + carry;
    t[n] = static_cast<u64>(s);
    t[n + 1] += static_cast<u64>(s >> 64);
    // reduce one limb
    const u64 u_ = t[0] * n0inv;
    carry = addmul_1(t, m, n, u_);
    s = static_cast<u128>(t[n]) + carry;
    t[n] = static_cast<u64>(s);
    t[n + 1] += static_cast<u64>(s >> 64);
    // shift t right by one limb
    for (std::size_t k = 0; k <= n; ++k) t[k] = t[k + 1];
    t[n + 1] = 0;
  }
  // Final conditional subtraction.
  if (t[n] != 0 || cmp(t, m, n) >= 0) {
    sub_n(r, t, m, n);
  } else {
    std::memcpy(r, t, n * sizeof(u64));
  }
}

}  // namespace apks::limb
