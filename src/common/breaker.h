// CircuitBreaker — the per-endpoint failure-isolation state machine shared
// by every failover path in the tree (the APKS+ proxy pool's replicas, the
// cluster coordinator's shard owners, the cluster health monitor).
//
// The breaker counts *consecutive* failures against an endpoint; at the
// configured threshold it opens and the endpoint is skipped for a cooldown
// window, after which exactly one half-open probe is admitted. A probe that
// succeeds closes the breaker; a probe that fails re-arms a fresh cooldown
// without counting as a new open.
//
// Cooldowns are measured in caller-supplied operation counts, not wall
// time: the caller owns a monotone op counter (one tick per pipeline
// operation / per cluster search) and passes it to every decision. That
// keeps chaos schedules deterministic — a replayed failure sequence opens,
// skips and probes at exactly the same operations every run.
//
// Thread safety: every method takes an internal lock, so concurrent
// callers (the coordinator's scatter threads plus its heartbeat thread)
// may share one breaker without external locking. The lock protects the
// state machine's *consistency*; callers that need a check-then-act
// sequence to be atomic (none in the tree do — admit/on_failure are
// independently meaningful) still need their own coordination. Copying is
// supported (the proxy pool and coordinator build breakers into vectors);
// a copy snapshots the source's state under its lock and gets a fresh
// lock of its own.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>

namespace apks {

struct BreakerOptions {
  // Consecutive failures that trip the breaker open. 0 disables tripping
  // (the breaker then never skips an endpoint).
  std::size_t threshold = 3;
  // How many operations the breaker stays open before a half-open probe.
  std::uint64_t cooldown_ops = 4;
  // Uniform jitter added to every cooldown window: the actual cooldown is
  // cooldown_ops + U[0, cooldown_jitter_ops]. Breakers guarding replicas
  // of the same endpoint otherwise open and probe in lockstep, hammering
  // a recovering node with simultaneous probes. 0 (the default) keeps the
  // historical deterministic schedule; the jitter stream itself is a
  // deterministic per-instance LCG, so chaos replays stay reproducible
  // once seeded (see seed_jitter).
  std::uint64_t cooldown_jitter_ops = 0;
};

class CircuitBreaker {
 public:
  // Admission verdict for one attempt against the guarded endpoint.
  enum class Gate {
    kClosed,  // breaker closed: attempt normally
    kProbe,   // open past cooldown: attempt as the half-open probe
    kSkip,    // open and cooling down: do not attempt
  };

  CircuitBreaker() = default;
  explicit CircuitBreaker(BreakerOptions options);

  CircuitBreaker(const CircuitBreaker& other);
  CircuitBreaker& operator=(const CircuitBreaker& other);

  // Decorrelates this instance's jitter stream from its siblings (e.g. the
  // coordinator seeds each node's breaker with the node index). Without a
  // distinct seed, equal-option breakers draw identical jitter and still
  // probe in lockstep.
  void seed_jitter(std::uint64_t seed) noexcept;

  [[nodiscard]] Gate admit(std::uint64_t now_op) const noexcept;

  // A success closes the breaker (whether or not the attempt was a probe)
  // and resets the consecutive-failure count.
  void on_success() noexcept;

  // Records a failure at operation `now_op`. Returns true when THIS
  // failure tripped the breaker open (callers count their breaker_opens
  // stat on it); a failed half-open probe re-arms a fresh cooldown without
  // reporting a second open.
  bool on_failure(std::uint64_t now_op) noexcept;

  // Force-opens the breaker at `now_op` regardless of the failure count —
  // the failure detector calls this when heartbeats declare the endpoint
  // dead, so requests skip it *before* one has to fail. Returns true when
  // the breaker transitioned open (false if it was already open).
  bool trip(std::uint64_t now_op) noexcept;

  // Whether the breaker is open (still cooling down) as of `now_op`. A
  // breaker whose cooldown has elapsed reports closed here — it admits a
  // probe, which is the observable health contract.
  [[nodiscard]] bool open_now(std::uint64_t now_op) const noexcept;

  [[nodiscard]] std::size_t consecutive_failures() const noexcept;

 private:
  [[nodiscard]] std::uint64_t cooldown_span_locked() noexcept;

  mutable std::mutex mu_;
  BreakerOptions options_{};
  std::size_t consecutive_ = 0;
  bool open_ = false;
  std::uint64_t open_until_ = 0;  // op count at which a probe is allowed
  std::uint64_t jitter_state_ = 0x9e3779b97f4a7c15ull;
};

}  // namespace apks
