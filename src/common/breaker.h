// CircuitBreaker — the per-endpoint failure-isolation state machine shared
// by every failover path in the tree (the APKS+ proxy pool's replicas, the
// cluster coordinator's shard owners).
//
// The breaker counts *consecutive* failures against an endpoint; at the
// configured threshold it opens and the endpoint is skipped for a cooldown
// window, after which exactly one half-open probe is admitted. A probe that
// succeeds closes the breaker; a probe that fails re-arms a fresh cooldown
// without counting as a new open.
//
// Cooldowns are measured in caller-supplied operation counts, not wall
// time: the caller owns a monotone op counter (one tick per pipeline
// operation / per cluster search) and passes it to every decision. That
// keeps chaos schedules deterministic — a replayed failure sequence opens,
// skips and probes at exactly the same operations every run.
#pragma once

#include <cstddef>
#include <cstdint>

namespace apks {

struct BreakerOptions {
  // Consecutive failures that trip the breaker open. 0 disables tripping
  // (the breaker then never skips an endpoint).
  std::size_t threshold = 3;
  // How many operations the breaker stays open before a half-open probe.
  std::uint64_t cooldown_ops = 4;
};

class CircuitBreaker {
 public:
  // Admission verdict for one attempt against the guarded endpoint.
  enum class Gate {
    kClosed,  // breaker closed: attempt normally
    kProbe,   // open past cooldown: attempt as the half-open probe
    kSkip,    // open and cooling down: do not attempt
  };

  CircuitBreaker() = default;
  explicit CircuitBreaker(BreakerOptions options);

  [[nodiscard]] Gate admit(std::uint64_t now_op) const noexcept;

  // A success closes the breaker (whether or not the attempt was a probe)
  // and resets the consecutive-failure count.
  void on_success() noexcept;

  // Records a failure at operation `now_op`. Returns true when THIS
  // failure tripped the breaker open (callers count their breaker_opens
  // stat on it); a failed half-open probe re-arms a fresh cooldown without
  // reporting a second open.
  bool on_failure(std::uint64_t now_op) noexcept;

  // Whether the breaker is open (still cooling down) as of `now_op`. A
  // breaker whose cooldown has elapsed reports closed here — it admits a
  // probe, which is the observable health contract.
  [[nodiscard]] bool open_now(std::uint64_t now_op) const noexcept;

  [[nodiscard]] std::size_t consecutive_failures() const noexcept {
    return consecutive_;
  }

 private:
  BreakerOptions options_{};
  std::size_t consecutive_ = 0;
  bool open_ = false;
  std::uint64_t open_until_ = 0;  // op count at which a probe is allowed
};

}  // namespace apks
