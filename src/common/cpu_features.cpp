#include "common/cpu_features.h"

#include <cstdlib>
#include <cstring>

namespace apks {

namespace {

SimdLevel detect_hardware() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  __builtin_cpu_init();
  // The AVX-512 engine needs F (foundation), VL (256/128-bit forms), DQ
  // (vpmullq for digit extraction) and IFMA (vpmadd52).
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512ifma")) {
    return SimdLevel::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

SimdLevel apply_env(SimdLevel hw) noexcept {
  const char* force = std::getenv("APKS_FORCE_SCALAR");
  if (force != nullptr && force[0] == '1') return SimdLevel::kScalar;
  const char* pin = std::getenv("APKS_SIMD");
  if (pin == nullptr) return hw;
  if (std::strcmp(pin, "scalar") == 0) return SimdLevel::kScalar;
  if (std::strcmp(pin, "avx2") == 0) {
    return hw >= SimdLevel::kAvx2 ? SimdLevel::kAvx2 : hw;
  }
  if (std::strcmp(pin, "avx512") == 0) return hw;  // never upgrades past hw
  return hw;  // unknown value: ignore
}

}  // namespace

SimdLevel simd_level_detected() noexcept {
  static const SimdLevel hw = detect_hardware();
  return hw;
}

SimdLevel simd_level() noexcept {
  static const SimdLevel chosen = apply_env(simd_level_detected());
  return chosen;
}

const char* simd_level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kScalar:
      return "scalar";
  }
  return "scalar";
}

}  // namespace apks
