// Hierarchical Predicate Encryption for inner products
// (Okamoto-Takashima, ASIACRYPT 2009 — the general-delegation variant used
// by the paper, reviewed in its Appendix A).
//
// Semantics: a ciphertext encrypts plaintext vector x (and a GT message m);
// a level-L key embeds predicate vectors v_1..v_L and decrypts iff
// x . v_i = 0 for every i. Delegation appends a vector, so delegated keys
// are strictly more restrictive — the property APKS uses for capability
// delegation by local trusted authorities.
//
// Key structure (level L, predicate length n, space dimension N = n+3):
//   k_dec        — decryption component
//   k_ran[0..L]  — L+1 randomizers (decrypt to gT^0; used to re-randomize
//                  children during delegation)
//   k_del[0..n)  — delegation components (embed a fresh predicate vector)
// The paper's appendix truncates GenKey's output; the construction here is
// reconstructed from the listed randomness and verified by the correctness
// equations (see DESIGN.md "Substitutions").
#pragma once

#include <memory>
#include <vector>

#include "dpvs/dpvs.h"
#include "dpvs/precomp_basis.h"
#include "pairing/pairing_block.h"

namespace apks {

// How the scheme's linear combinations are served. The engines are
// output-equivalent (bit-identical ciphertexts/keys under the same RNG) and
// count the same paper-facing exponentiations; kPrecomputed additionally
// caches signed-window tables for the fixed bases (Bhat, B*) on the key
// structs, which is where encrypt/gen_key/delegate spend their time.
struct HpeOptions {
  ScalarEngine engine = ScalarEngine::kPrecomputed;
  // Table budget per cached basis (see PrecomputedBasis).
  std::size_t precomp_table_bytes = PrecomputedBasis::kDefaultMaxTableBytes;
};

struct HpePublicKey {
  std::size_t n = 0;  // predicate/plaintext vector length
  // Bhat = (b_1, ..., b_n, d_{n+1}, b_{n+3}) — n+2 vectors of dimension n+3.
  std::vector<GVec> bhat;
  // Lazily built window tables over bhat (cold on copies).
  BasisPrecompCache precomp;

  [[nodiscard]] std::size_t dim() const noexcept { return n + 3; }
};

struct HpeMasterKey {
  MatrixFq x;               // basis-change matrix X (GL(n+3, F_q))
  std::vector<GVec> bstar;  // dual basis B* (n+3 vectors; HPE+ stores r*B*)
  // Lazily built window tables over bstar (cold on copies).
  BasisPrecompCache precomp;
};

struct HpeCiphertext {
  GVec c1;   // vector component
  GtEl c2{};  // gT^zeta * m
};

struct HpeKey {
  std::size_t level = 0;     // number of predicate vectors embedded
  GVec dec;                  // k*_dec
  std::vector<GVec> ran;     // k*_ran (level+1 entries)
  std::vector<GVec> del;     // k*_del (n entries)
};

class Hpe {
 public:
  // Window width for per-call bases (a gen_key's {T, W}, a delegation's
  // parent components): wide enough to win within one key generation, cheap
  // enough that the build amortizes over the n+4 component lincombs.
  static constexpr unsigned kPerCallWindow = 5;

  // n: length of predicate vectors. The DPVS dimension is n+3.
  Hpe(const Pairing& pairing, std::size_t n, HpeOptions opts = {});

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t dim() const noexcept { return n_ + 3; }
  [[nodiscard]] const Pairing& pairing() const noexcept { return *e_; }
  [[nodiscard]] const Dpvs& dpvs() const noexcept { return dpvs_; }
  [[nodiscard]] const HpeOptions& options() const noexcept { return opts_; }

  // PrecomputedBasis options honoring this instance's table budget;
  // window = 0 auto-sizes (used for the cached Bhat/B* tables).
  [[nodiscard]] PrecomputedBasis::Options table_opts(
      unsigned window = 0) const noexcept {
    return {window, opts_.precomp_table_bytes,
            opts_.engine == ScalarEngine::kPrecomputed};
  }

  // Force the lazy table builds now (e.g. before benchmarking or serving).
  // No-ops unless the engine is kPrecomputed.
  void warm_precomp(const HpePublicKey& pk) const;
  void warm_precomp(const HpeMasterKey& msk) const;

  // Samples X <- GL(n+3, F_q), builds B and B*, publishes Bhat.
  void setup(Rng& rng, HpePublicKey& pk, HpeMasterKey& msk) const;

  // Level-1 key for predicate vector v (length n).
  [[nodiscard]] HpeKey gen_key(const HpeMasterKey& msk,
                               const std::vector<Fq>& v, Rng& rng) const;

  // Encrypts message m under plaintext vector x (length n).
  [[nodiscard]] HpeCiphertext encrypt(const HpePublicKey& pk,
                                      const std::vector<Fq>& x, const GtEl& m,
                                      Rng& rng) const;

  // Returns c2 / e(c1, k_dec): equals m iff x.v_i = 0 for all embedded
  // predicate vectors; a uniformly distributed GT element otherwise.
  [[nodiscard]] GtEl decrypt(const HpeCiphertext& ct, const HpeKey& key) const;

  // Server-side variant with a preprocessed decryption component (the
  // "pairing preprocessing" mode of the paper's evaluation).
  [[nodiscard]] std::vector<PreprocessedPairing> preprocess_key(
      const HpeKey& key) const;
  [[nodiscard]] GtEl decrypt_pre(const HpeCiphertext& ct,
                                 std::span<const PreprocessedPairing> pre)
      const;

  // Block variant over a compiled scan kernel: out[r] = c2_r / kernel(c1_r)
  // for each of the n ciphertexts. Byte-identical to decrypt_pre per record;
  // the kernel runs the records lane-parallel where the engine allows.
  void decrypt_pre_block(const BlockMultiPairing& kernel,
                         const HpeCiphertext* const* cts, std::size_t n,
                         GtEl* out) const;

  // Appends predicate vector v_next: the child key decrypts only ciphertexts
  // the parent could decrypt that additionally satisfy x.v_next = 0.
  [[nodiscard]] HpeKey delegate(const HpeKey& parent,
                                const std::vector<Fq>& v_next, Rng& rng) const;

  // Paper-faithful cost variants. gen_key/delegate above share the vector
  // sum T = sum_i v_i b*_i (resp. S = sum_i v_i k*_del,i) across all key
  // components — an optimization that makes key generation ~10x faster but
  // hides the sparsity effect of "don't care" dimensions that the paper's
  // Fig. 8(c) set 2 exhibits. The *_naive variants recompute the sum per
  // component, matching the per-component exponentiation counts behind the
  // paper's measurements. Outputs are distributed identically.
  [[nodiscard]] HpeKey gen_key_naive(const HpeMasterKey& msk,
                                     const std::vector<Fq>& v,
                                     Rng& rng) const;
  [[nodiscard]] HpeKey delegate_naive(const HpeKey& parent,
                                      const std::vector<Fq>& v_next,
                                      Rng& rng) const;

 private:
  const Pairing* e_;
  std::size_t n_;
  Dpvs dpvs_;
  HpeOptions opts_;
};

}  // namespace apks
