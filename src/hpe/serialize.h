// Wire encodings for HPE objects.
//
// Group elements use the 65-byte compressed form and F_q scalars 20 bytes,
// matching the size accounting of the paper's Section VII (PK =
// 65[n0(n0-1)+3] B, ciphertext = 65(n0+1) B, etc. — our layouts add small
// explicit headers on top of the element payloads).
#pragma once

#include <vector>

#include "common/bytes.h"
#include "hpe/hpe.h"

namespace apks {

void write_fq(const FqField& fq, const Fq& v, ByteWriter& w);
[[nodiscard]] Fq read_fq(const FqField& fq, ByteReader& r);

void write_point(const Curve& curve, const AffinePoint& pt, ByteWriter& w);
[[nodiscard]] AffinePoint read_point(const Curve& curve, ByteReader& r);

void write_gt(const Pairing& e, const GtEl& v, ByteWriter& w);
[[nodiscard]] GtEl read_gt(const Pairing& e, ByteReader& r);

void write_gvec(const Curve& curve, const GVec& v, ByteWriter& w);
[[nodiscard]] GVec read_gvec(const Curve& curve, ByteReader& r);

[[nodiscard]] std::vector<std::uint8_t> serialize_ciphertext(
    const Pairing& e, const HpeCiphertext& ct);
[[nodiscard]] HpeCiphertext deserialize_ciphertext(
    const Pairing& e, std::span<const std::uint8_t> data);

[[nodiscard]] std::vector<std::uint8_t> serialize_key(const Pairing& e,
                                                      const HpeKey& key);
[[nodiscard]] HpeKey deserialize_key(const Pairing& e,
                                     std::span<const std::uint8_t> data);

[[nodiscard]] std::vector<std::uint8_t> serialize_public_key(
    const Pairing& e, const HpePublicKey& pk);
[[nodiscard]] HpePublicKey deserialize_public_key(
    const Pairing& e, std::span<const std::uint8_t> data);

[[nodiscard]] std::vector<std::uint8_t> serialize_master_key(
    const Pairing& e, const HpeMasterKey& msk);
[[nodiscard]] HpeMasterKey deserialize_master_key(
    const Pairing& e, std::span<const std::uint8_t> data);

}  // namespace apks
